package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// fakeRunner builds a lightweight runner that sleeps (to shuffle finish
// order under parallelism) and records what the scheduler handed it.
func fakeRunner(name string, delay time.Duration, onRun func(*Ctx)) Runner {
	return Runner{Name: name, Run: func(ctx *Ctx) (*Result, error) {
		time.Sleep(delay)
		if onRun != nil {
			onRun(ctx)
		}
		res := newResult("T/"+name, "fake")
		res.addf("line from %s", name)
		ctx.Obs.Counter("fake.runs").Inc()
		return res, nil
	}}
}

// TestRunAllOrderedDelivery: OnResult must arrive in registry order at
// any parallelism, with no concurrent invocations, even when later
// tasks finish first.
func TestRunAllOrderedDelivery(t *testing.T) {
	var runners []Runner
	n := 8
	for i := 0; i < n; i++ {
		// Later tasks sleep less, so at parallelism n they finish in
		// roughly reverse order.
		runners = append(runners, fakeRunner(fmt.Sprintf("task%d", i), time.Duration(n-i)*3*time.Millisecond, nil))
	}
	var delivered []string
	var inFlight atomic.Int32
	outcomes, err := RunAll(context.Background(), RunOptions{
		Runners:     runners,
		Parallelism: n,
		OnResult: func(o *Outcome) {
			if inFlight.Add(1) != 1 {
				t.Error("OnResult invoked concurrently")
			}
			defer inFlight.Add(-1)
			delivered = append(delivered, o.Runner.Name)
		},
	})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(outcomes) != n || len(delivered) != n {
		t.Fatalf("got %d outcomes, %d deliveries, want %d", len(outcomes), len(delivered), n)
	}
	for i, name := range delivered {
		if want := fmt.Sprintf("task%d", i); name != want {
			t.Fatalf("delivery %d: got %s, want %s (full order %v)", i, name, want, delivered)
		}
	}
}

// TestRunAllSeedSplitting: with a root seed every task gets its own
// split seed and the worker budget; with none, tasks stay on the
// paper-pinned path (Ctx.Seed == 0).
func TestRunAllSeedSplitting(t *testing.T) {
	seeds := make(map[string]int64)
	budgets := make(map[string]int)
	runners := []Runner{
		fakeRunner("a", 0, func(c *Ctx) { seeds["a"] = c.Seed; budgets["a"] = c.Parallelism }),
		fakeRunner("b", 0, func(c *Ctx) { seeds["b"] = c.Seed; budgets["b"] = c.Parallelism }),
	}
	if _, err := RunAll(context.Background(), RunOptions{Runners: runners, Parallelism: 1, RootSeed: 99}); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if seeds["a"] != par.SplitSeed(99, "a") || seeds["b"] != par.SplitSeed(99, "b") {
		t.Fatalf("split seeds wrong: %v", seeds)
	}
	if seeds["a"] == seeds["b"] {
		t.Fatalf("tasks share a seed: %v", seeds)
	}
	if budgets["a"] != 1 {
		t.Fatalf("worker budget not threaded: %v", budgets)
	}
	seeds = map[string]int64{}
	if _, err := RunAll(context.Background(), RunOptions{Runners: runners, Parallelism: 2}); err != nil {
		t.Fatalf("RunAll (no root seed): %v", err)
	}
	if seeds["a"] != 0 || seeds["b"] != 0 {
		t.Fatalf("pinned-seed path should see Ctx.Seed==0, got %v", seeds)
	}
}

// TestRunAllError: a failing task is reported in its outcome and the
// run error, its telemetry is NOT merged, and the other tasks still
// complete and merge.
func TestRunAllError(t *testing.T) {
	boom := errors.New("boom")
	runners := []Runner{
		fakeRunner("ok1", 0, nil),
		{Name: "bad", Run: func(ctx *Ctx) (*Result, error) {
			ctx.Obs.Counter("fake.runs").Inc() // must not reach the merged registry
			return nil, boom
		}},
		fakeRunner("ok2", 0, nil),
	}
	reg := obs.NewRegistry()
	outcomes, err := RunAll(context.Background(), RunOptions{Runners: runners, Parallelism: 3, Obs: reg})
	if err == nil || err.Error() != "1 experiment(s) failed" {
		t.Fatalf("want aggregate failure error, got %v", err)
	}
	if !errors.Is(outcomes[1].Err, boom) {
		t.Fatalf("outcome[1].Err = %v, want boom", outcomes[1].Err)
	}
	if outcomes[0].Err != nil || outcomes[2].Err != nil {
		t.Fatalf("healthy tasks failed: %v, %v", outcomes[0].Err, outcomes[2].Err)
	}
	if got := reg.Snapshot().Counters["fake.runs"]; got != 2 {
		t.Fatalf("merged fake.runs = %d, want 2 (failed task excluded)", got)
	}
}

// TestRunAllCancelled: a pre-cancelled context fails every task with
// the context error and returns it.
func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outcomes, err := RunAll(ctx, RunOptions{Runners: []Runner{fakeRunner("a", 0, nil)}, Parallelism: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !errors.Is(outcomes[0].Err, context.Canceled) {
		t.Fatalf("outcome err = %v", outcomes[0].Err)
	}
}

// TestRunAllSmokeParallel runs the cheap real experiments wide. This is
// the -race target for the scheduler: real runners, real registries,
// high parallelism, small inputs.
func TestRunAllSmokeParallel(t *testing.T) {
	var runners []Runner
	for _, name := range []string{"fig2", "fig3", "aes", "memcpy"} {
		r, ok := Lookup(name)
		if !ok {
			t.Fatalf("unknown runner %s", name)
		}
		runners = append(runners, r)
	}
	reg := obs.NewRegistry()
	outcomes, err := RunAll(context.Background(), RunOptions{Runners: runners, Quick: true, Parallelism: 8, Obs: reg})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for _, o := range outcomes {
		if o.Manifest == nil || o.Result == nil {
			t.Fatalf("%s: missing manifest/result", o.Runner.Name)
		}
		if o.Manifest.Snapshot == nil || len(o.Result.Lines) == 0 {
			t.Fatalf("%s: empty manifest", o.Runner.Name)
		}
	}
}

// TestSchedulerDeterministic is the acceptance criterion: the full
// quick suite must produce byte-identical manifests and a
// byte-identical merged telemetry snapshot at parallelism 1 and 8.
func TestSchedulerDeterministic(t *testing.T) {
	run := func(parallelism int) ([][]byte, []byte) {
		reg := obs.NewRegistry()
		outcomes, err := RunAll(context.Background(), RunOptions{Quick: true, Parallelism: parallelism, Obs: reg})
		if err != nil {
			t.Fatalf("RunAll(parallel=%d): %v", parallelism, err)
		}
		var manifests [][]byte
		for _, o := range outcomes {
			b, err := o.Manifest.MarshalIndent()
			if err != nil {
				t.Fatalf("marshal %s: %v", o.Runner.Name, err)
			}
			manifests = append(manifests, b)
		}
		snap, err := reg.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		return manifests, snap
	}
	m1, s1 := run(1)
	m8, s8 := run(8)
	if len(m1) != len(m8) {
		t.Fatalf("manifest counts differ: %d vs %d", len(m1), len(m8))
	}
	for i := range m1 {
		if string(m1[i]) != string(m8[i]) {
			t.Errorf("manifest %d differs between parallel=1 and parallel=8:\n--- p1 ---\n%s\n--- p8 ---\n%s", i, m1[i], m8[i])
		}
	}
	if string(s1) != string(s8) {
		t.Errorf("merged snapshots differ between parallel=1 and parallel=8")
	}
}

// TestRunAllWorkerBudget: the scheduler splits the -parallel budget
// between the task pool and each task's inner fan-out instead of
// granting both the full width (the PR 2 oversubscription bug: 4 tasks
// × 4 inner workers on a 4-worker request).
func TestRunAllWorkerBudget(t *testing.T) {
	cases := []struct {
		parallelism, tasks, wantInner int
	}{
		{1, 5, 1},   // sequential: inner stays 1
		{4, 5, 1},   // pool soaks the budget
		{8, 2, 4},   // few tasks: leftover budget goes inward
		{6, 4, 1},   // non-divisible: round down, never oversubscribe
		{16, 1, 16}, // single task gets everything
	}
	for _, tc := range cases {
		var got atomic.Int64
		var runners []Runner
		for i := 0; i < tc.tasks; i++ {
			runners = append(runners, fakeRunner(fmt.Sprintf("task%d", i), 0, func(c *Ctx) {
				got.Store(int64(c.Parallelism))
			}))
		}
		if _, err := RunAll(context.Background(), RunOptions{Runners: runners, Parallelism: tc.parallelism}); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		if int(got.Load()) != tc.wantInner {
			t.Errorf("parallel=%d tasks=%d: inner budget %d, want %d",
				tc.parallelism, tc.tasks, got.Load(), tc.wantInner)
		}
	}
}

// TestRunAllParallelNoSlowdown guards the anti-scaling regression:
// running the quick suite with 4 workers must not be slower than with 1
// (modulo scheduling noise — on a single-CPU host the best case is a
// tie, so the guard allows a 25% band rather than demanding a speedup).
func TestRunAllParallelNoSlowdown(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped in -short")
	}
	wall := func(parallelism int) time.Duration {
		start := time.Now()
		if _, err := RunAll(context.Background(), RunOptions{Quick: true, Parallelism: parallelism}); err != nil {
			t.Fatalf("RunAll(parallel=%d): %v", parallelism, err)
		}
		return time.Since(start)
	}
	p1 := wall(1)
	p4 := wall(4)
	t.Logf("quick suite wall time: parallel=1 %v, parallel=4 %v", p1, p4)
	if p4 > p1+p1/4 {
		t.Errorf("parallel=4 (%v) is >1.25x slower than parallel=1 (%v): scheduler anti-scales", p4, p1)
	}
}
