// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md §4): the
// TaintChannel reports of Figs 2-4, the §IV survey summary, the AES and
// memcpy tool validations, the §V-E SGX attack headline with its
// ablations, the Fig 6 control-flow census, the Fig 7/8 fingerprinting
// confusion matrices, and the §VIII mitigation evaluation.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// Ctx is the execution context handed to every runner: the size variant
// and the observability registry collecting the run's telemetry. Obs may
// be nil (runners must pass it through, never dereference it).
type Ctx struct {
	// Quick selects a reduced-size variant suitable for tests/benches.
	Quick bool
	// Obs collects metrics across the experiment's simulations.
	Obs *obs.Registry
	// Parallelism is the worker budget for the runner's internal trial
	// fan-out (SGX attack repetitions and ablation variants, fingerprint
	// corpus entries, survey gadget sweeps). <= 1 runs trials
	// sequentially; results are byte-identical at any level.
	Parallelism int
	// Seed is the task seed the scheduler split from its root seed
	// (par.SplitSeed(rootSeed, runner name)). Zero — the default — keeps
	// every runner on its paper-pinned seeds, reproducing the published
	// figures; a nonzero value re-parameterizes the task's RNG streams
	// deterministically (see Ctx.taskSeed).
	Seed int64
}

// taskSeed selects an RNG stream for one purpose inside a runner: the
// paper-pinned constant when no task seed was assigned, else a
// purpose-specific stream split from the task seed. Two purposes never
// share a stream, so trial scheduling cannot perturb results.
func (c *Ctx) taskSeed(pinned int64, purpose string) int64 {
	if c.Seed == 0 {
		return pinned
	}
	return par.SplitSeed(c.Seed, purpose)
}

// Result is one regenerated experiment: human-readable lines plus the
// numeric outcomes benches and tests assert on.
type Result struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Lines []string `json:"lines"`
	// Metrics holds the headline numbers (accuracy fractions, counts).
	Metrics map[string]float64 `json:"metrics"`
	// Seed is the experiment's root RNG seed (0 when seeding is fixed
	// per-variant inside the runner).
	Seed int64 `json:"seed"`
	// Config records the principal simulation configuration, when the
	// runner has a single meaningful one.
	Config any `json:"config,omitempty"`
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: map[string]float64{}}
}

func (r *Result) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the experiment output.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("metrics:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.4f", k, r.Metrics[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is one registered experiment.
type Runner struct {
	Name string
	Run  func(ctx *Ctx) (*Result, error)
}

// All returns the experiment registry in paper order.
func All() []Runner {
	return []Runner{
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"aes", AESValidation},
		{"memcpy", MemcpyValidation},
		{"tools", ToolComparison},
		{"survey", Survey},
		{"sgx", SGXHeadline},
		{"sgx-ablate", SGXAblations},
		{"sgx-all-gadgets", AllGadgetsSGX},
		{"mitigation", Mitigation},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"pagestore", PageStoreAttack},
	}
}

// Lookup finds a runner by name.
func Lookup(name string) (Runner, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// renderConfusion formats a confusion matrix with row/column labels, in
// the layout of the paper's Figs 7 and 8 (rows = actual, columns =
// predicted).
func renderConfusion(labels []string, cm [][]float64) []string {
	short := make([]string, len(labels))
	width := 7
	for i, l := range labels {
		if len(l) > width {
			l = l[:width]
		}
		short[i] = l
	}
	var out []string
	header := strings.Repeat(" ", width+2)
	for _, l := range short {
		header += fmt.Sprintf("%*s ", width, l)
	}
	out = append(out, header)
	for i, row := range cm {
		line := fmt.Sprintf("%*s  ", width, short[i])
		for _, v := range row {
			line += fmt.Sprintf("%*.2f ", width, v)
		}
		out = append(out, line)
	}
	return out
}

func diagonalMean(cm [][]float64) float64 {
	if len(cm) == 0 {
		return 0
	}
	var sum float64
	for i := range cm {
		sum += cm[i][i]
	}
	return sum / float64(len(cm))
}
