package experiments

import (
	"encoding/json"
	"testing"
)

// TestExperimentsSmoke is the cross-layer acceptance check: the quick
// SGX experiment's manifest must carry cache hit/miss counts, stepper
// transition counts, and the recovery accuracy, all wired through one
// registry.
func TestExperimentsSmoke(t *testing.T) {
	r, ok := Lookup("sgx")
	if !ok {
		t.Fatal("sgx experiment not registered")
	}
	res, m, err := Execute(r, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Snapshot == nil {
		t.Fatal("manifest has no snapshot")
	}
	if m.Seed != 42 {
		t.Errorf("manifest seed = %d, want 42", m.Seed)
	}
	for _, key := range []string{"cache.hits", "cache.misses", "sgx.step.transitions", "vm.instructions"} {
		if m.Snapshot.Counters[key] == 0 {
			t.Errorf("snapshot counter %q missing or zero", key)
		}
	}
	if acc := m.Snapshot.Gauges["attack.bit_acc"]; acc < 0.9 {
		t.Errorf("attack.bit_acc gauge = %v, want >= 0.9", acc)
	}
	if res.Metrics["bitAcc"] < 0.9 {
		t.Errorf("bitAcc metric = %v, want >= 0.9", res.Metrics["bitAcc"])
	}

	b, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var round Manifest
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if round.Name != "sgx" || round.ID != res.ID {
		t.Errorf("round-trip lost identity: %+v", round)
	}
}
