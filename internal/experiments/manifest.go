package experiments

import (
	"encoding/json"
	"time"

	"github.com/zipchannel/zipchannel/internal/obs"
)

// Manifest is the machine-readable record of one experiment run: what
// ran, with which configuration and seed, the headline metrics, and the
// full telemetry snapshot. cmd/experiments -json emits these.
type Manifest struct {
	Name    string             `json:"name"`
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Quick   bool               `json:"quick"`
	Seed    int64              `json:"seed"`
	Config  any                `json:"config,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
	Lines   []string           `json:"lines"`
	// Snapshot is the canonical metric state after the run (counters,
	// gauges, histograms — see internal/obs). Deterministic under a
	// fixed seed.
	Snapshot *obs.Snapshot `json:"snapshot"`
	// Duration is the run's wall clock. It is deliberately excluded from
	// the JSON document so that -json output is byte-identical under a
	// fixed seed, at any -parallel level; the CLIs report it on stderr.
	Duration time.Duration `json:"-"`
}

// MarshalIndent renders the manifest as indented JSON with a trailing
// newline.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Execute runs one experiment under a fresh (or caller-provided)
// registry and returns the result together with its manifest. A nil reg
// creates a private registry, so the manifest always carries a snapshot.
func Execute(r Runner, quick bool, reg *obs.Registry) (*Result, *Manifest, error) {
	return ExecuteCtx(r, &Ctx{Quick: quick, Obs: reg})
}

// ExecuteCtx runs one experiment under a fully specified context (the
// scheduler's entry point: it carries the task seed and the trial
// parallelism budget). A nil c.Obs gets a private registry, so the
// manifest always carries a snapshot.
func ExecuteCtx(r Runner, c *Ctx) (*Result, *Manifest, error) {
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	start := time.Now()
	res, err := r.Run(c)
	if err != nil {
		return nil, nil, err
	}
	m := &Manifest{
		Name:     r.Name,
		ID:       res.ID,
		Title:    res.Title,
		Quick:    c.Quick,
		Seed:     res.Seed,
		Config:   res.Config,
		Metrics:  res.Metrics,
		Lines:    res.Lines,
		Snapshot: c.Obs.Snapshot(),
		Duration: time.Since(start),
	}
	return res, m, nil
}
