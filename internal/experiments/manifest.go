package experiments

import (
	"encoding/json"
	"time"

	"github.com/zipchannel/zipchannel/internal/obs"
)

// Manifest is the machine-readable record of one experiment run: what
// ran, with which configuration and seed, the headline metrics, and the
// full telemetry snapshot. cmd/experiments -json emits these.
type Manifest struct {
	Name    string             `json:"name"`
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Quick   bool               `json:"quick"`
	Seed    int64              `json:"seed"`
	Config  any                `json:"config,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
	Lines   []string           `json:"lines"`
	// Snapshot is the canonical metric state after the run (counters,
	// gauges, histograms — see internal/obs). Deterministic under a
	// fixed seed.
	Snapshot *obs.Snapshot `json:"snapshot"`
	// DurationMS is wall-clock and therefore NOT deterministic; it is
	// kept out of Snapshot so that remains byte-stable.
	DurationMS float64 `json:"duration_ms"`
}

// MarshalIndent renders the manifest as indented JSON with a trailing
// newline.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Execute runs one experiment under a fresh (or caller-provided)
// registry and returns the result together with its manifest. A nil reg
// creates a private registry, so the manifest always carries a snapshot.
func Execute(r Runner, quick bool, reg *obs.Registry) (*Result, *Manifest, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	start := time.Now()
	res, err := r.Run(&Ctx{Quick: quick, Obs: reg})
	if err != nil {
		return nil, nil, err
	}
	m := &Manifest{
		Name:       r.Name,
		ID:         res.ID,
		Title:      res.Title,
		Quick:      quick,
		Seed:       res.Seed,
		Config:     res.Config,
		Metrics:    res.Metrics,
		Lines:      res.Lines,
		Snapshot:   reg.Snapshot(),
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	return res, m, nil
}
