package experiments

import (
	"fmt"
	"math/rand"

	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

func randomInput(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// SGXHeadline regenerates the §V-E headline: leak randomly generated
// data from inside the enclave with the full attack (single-stepping +
// page channel + Prime+Probe + CAT + frame selection) at >99% bit
// accuracy. The paper leaks 10 KB in under 30 s of wall time on real
// hardware; the simulated attack's size is scaled for the quick variant.
func SGXHeadline(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	n := 10240
	if quick {
		n = 1024
	}
	seed := ctx.taskSeed(42, "input")
	input := randomInput(n, seed)
	cfg := zipchannel.DefaultConfig()
	cfg.Obs = ctx.Obs
	r, err := zipchannel.Attack(input, cfg)
	if err != nil {
		return nil, err
	}
	res := newResult("E7/§V-E", "SGX attack on randomly generated data (paper: >99% of bits, <30 s)")
	res.Seed = seed
	res.Config = cfg
	res.addf("input: %d random bytes (no redundancy, the hardest case)", n)
	res.addf("%s", r)
	res.Metrics["bitAcc"] = r.BitAcc
	res.Metrics["byteAcc"] = r.ByteAcc
	res.Metrics["unknownObs"] = float64(r.UnknownObs)
	res.Metrics["remaps"] = float64(r.Remaps)
	res.Metrics["knownBytes"] = float64(r.KnownBytes)
	res.Metrics["correctedBytes"] = float64(r.CorrectedBytes)
	res.Metrics["cacheHits"] = float64(r.CacheHits)
	res.Metrics["cacheMisses"] = float64(r.CacheMisses)
	res.Metrics["simSteps"] = float64(r.SimSteps)
	if r.BitAcc < 0.99 {
		return nil, fmt.Errorf("sgx: bit accuracy %.4f below the paper's 0.99", r.BitAcc)
	}
	return res, nil
}

// SGXAblations regenerates E7a: the same attack with CAT and/or frame
// selection disabled, quantifying each §V-C technique's contribution.
// The five configurations are independent repetitions of the attack, so
// they fan out across ctx.Parallelism workers; each writes only its own
// row, and rows are assembled in table order afterwards.
func SGXAblations(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	n := 4096
	if quick {
		n = 768
	}
	inputSeed := ctx.taskSeed(99, "input")
	input := randomInput(n, inputSeed)
	res := newResult("E7a", "ablations: Intel CAT (§V-C1) and frame selection (§V-C2)")
	res.Seed = inputSeed
	res.addf("%-32s %-10s %-10s %s", "configuration", "bits ok", "bytes ok", "unknown obs")
	variants := []struct {
		name     string
		cat, fs  bool
		metricID string
	}{
		{"full attack (CAT + frame sel.)", true, true, "full"},
		{"no frame selection", true, false, "noFS"},
		{"no CAT", false, true, "noCAT"},
		{"neither", false, false, "bare"},
	}
	cfgSeed := ctx.taskSeed(5, "cfg")
	type row struct {
		line     string
		metricID string
		bitAcc   float64
	}
	rows := make([]row, len(variants)+1)
	err := par.ForEach(ctx.Parallelism, len(rows), func(i int) error {
		if i == len(variants) {
			// The prior-work baseline: the controlled channel alone (Xu et
			// al.), page-granularity observations with no cache probing.
			pg, err := zipchannel.PageOnlyAttack(input, zipchannel.DefaultConfig())
			if err != nil {
				return fmt.Errorf("page-only baseline: %w", err)
			}
			rows[i] = row{
				line:     fmt.Sprintf("%-32s %8.3f%% %8.2f%% %8s", "page faults only (Xu et al.)", 100*pg.BitAcc, 100*pg.ByteAcc, "-"),
				metricID: "pageOnly",
				bitAcc:   pg.BitAcc,
			}
			return nil
		}
		v := variants[i]
		cfg := zipchannel.DefaultConfig()
		cfg.UseCAT = v.cat
		cfg.UseFrameSelection = v.fs
		cfg.Seed = cfgSeed
		r, err := zipchannel.Attack(input, cfg)
		if err != nil {
			return fmt.Errorf("ablation %q: %w", v.name, err)
		}
		rows[i] = row{
			line:     fmt.Sprintf("%-32s %8.3f%% %8.2f%% %8d/%d", v.name, 100*r.BitAcc, 100*r.ByteAcc, r.UnknownObs, r.Iterations),
			metricID: v.metricID,
			bitAcc:   r.BitAcc,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rw := range rows {
		res.Lines = append(res.Lines, rw.line)
		res.Metrics[rw.metricID+"BitAcc"] = rw.bitAcc
	}

	if res.Metrics["fullBitAcc"] < res.Metrics["bareBitAcc"] {
		return nil, fmt.Errorf("ablation: full attack lost to bare attack")
	}
	if res.Metrics["fullBitAcc"] <= res.Metrics["pageOnlyBitAcc"] {
		return nil, fmt.Errorf("ablation: the cache channel should add information over page faults alone")
	}
	return res, nil
}

// Mitigation regenerates E11 (§VIII): against the oblivious-histogram
// victim (every ftab cache line written per input byte), the same attack
// collapses to near-chance accuracy, at a measured victim overhead.
func Mitigation(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	n := 192
	if quick {
		n = 64
	}
	inputSeed := ctx.taskSeed(17, "input")
	input := randomInput(n, inputSeed)
	base := zipchannel.DefaultConfig()
	base.Seed = ctx.taskSeed(3, "cfg")

	// The two attacks and the two TaintChannel censuses are independent
	// trials. Each attack runs against a private registry; the registries
	// are merged into ctx.Obs in trial order afterwards, reproducing the
	// sequential shared-registry telemetry byte for byte.
	var (
		vuln, mit       *zipchannel.Result
		visVuln, visMit int
		regs            [2]*obs.Registry
	)
	err := par.ForEach(ctx.Parallelism, 4, func(i int) error {
		switch i {
		case 0:
			cfg := base
			regs[0] = obs.NewRegistry()
			cfg.Obs = regs[0]
			r, err := zipchannel.Attack(input, cfg)
			vuln = r
			return err
		case 1:
			cfg := base
			cfg.Oblivious = true
			regs[1] = obs.NewRegistry()
			cfg.Obs = regs[1]
			r, err := zipchannel.Attack(input, cfg)
			mit = r
			return err
		case 2:
			// TaintChannel's verdict on the two victims: the §VIII
			// variant's residual address dependence sits below cache-line
			// granularity.
			v, err := cacheVisibleGadgets(victims.BzipFtab(victims.BzipFtabOptions{FtabPad: 20}), input)
			visVuln = v
			return err
		default:
			v, err := cacheVisibleGadgets(victims.BzipFtabOblivious(victims.BzipFtabOptions{FtabPad: 20}), input)
			visMit = v
			return err
		}
	})
	if err != nil {
		return nil, err
	}
	for _, reg := range regs {
		ctx.Obs.Merge(reg)
	}

	res := newResult("E11/§VIII", "mitigation: oblivious histogram update vs the full attack")
	res.Seed = inputSeed
	res.Config = base
	res.addf("vulnerable victim:  %s", vuln)
	res.addf("oblivious victim:   %s", mit)
	overhead := float64(mit.CacheAccesses()) / float64(vuln.CacheAccesses()+1)
	res.addf("victim memory-traffic overhead: %.0fx", overhead)
	res.addf("TaintChannel cache-visible gadgets: vulnerable=%d, oblivious=%d", visVuln, visMit)
	res.Metrics["visVuln"] = float64(visVuln)
	res.Metrics["visMit"] = float64(visMit)
	if visMit != 0 {
		return nil, fmt.Errorf("mitigation: oblivious victim should have no cache-visible gadget")
	}
	res.Metrics["vulnBitAcc"] = vuln.BitAcc
	res.Metrics["mitBitAcc"] = mit.BitAcc
	res.Metrics["overheadX"] = overhead
	if mit.BitAcc > 0.80 {
		return nil, fmt.Errorf("mitigation: attack still recovers %.1f%% of bits", 100*mit.BitAcc)
	}
	// Short inputs give recovery less cross-iteration redundancy, so the
	// baseline floor is looser than E7's 10 KB headline.
	if vuln.BitAcc < 0.95 {
		return nil, fmt.Errorf("mitigation: baseline attack should succeed (got %.3f)", vuln.BitAcc)
	}
	return res, nil
}

// cacheVisibleGadgets counts a victim's gadgets observable at cache-line
// granularity, per TaintChannel.
func cacheVisibleGadgets(prog *isa.Program, input []byte) (int, error) {
	rep, _, err := runTaintChannel(prog, input, core.Config{MaxSamplesPerGadget: 2})
	if err != nil {
		return 0, err
	}
	return len(rep.CacheVisibleFindings()), nil
}
