package experiments

import (
	"fmt"
	"math/rand"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

// AllGadgetsSGX regenerates E13, our extension of the paper's §V attack
// to the other two surveyed gadgets: §IV-E proves that zlib and
// ncompress leak through the cache exactly like bzip2, and the
// generalized two-array stepper turns those survey results into
// end-to-end extractions with the same §V machinery.
//
// The four extractions are independent attack repetitions, so they fan
// out across ctx.Parallelism workers. Each runs against a private
// registry; the registries merge into ctx.Obs in table order, so the
// combined telemetry matches a sequential shared-registry run.
func AllGadgetsSGX(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	n := 2048
	if quick {
		n = 512
	}
	res := newResult("E13", "the §V attack generalized to all three surveyed gadgets")
	cfgSeed := ctx.taskSeed(8, "cfg")
	res.Seed = cfgSeed
	res.addf("%-22s %-10s %-10s %s", "victim gadget", "bits ok", "bytes ok", "notes")

	random := randomInput(n, ctx.taskSeed(61, "random"))
	rng := rand.New(rand.NewSource(ctx.taskSeed(62, "lower")))
	lower := make([]byte, n)
	for i := range lower {
		lower[i] = byte('a' + rng.Intn(26))
	}

	newCfg := func(reg *obs.Registry) zipchannel.Config {
		cfg := zipchannel.DefaultConfig()
		cfg.Seed = cfgSeed
		cfg.Obs = reg
		return cfg
	}
	attacks := []struct {
		run func(reg *obs.Registry) (*zipchannel.Result, error)
	}{
		// bzip2: the paper's own end-to-end target, for reference.
		{func(reg *obs.Registry) (*zipchannel.Result, error) {
			return zipchannel.Attack(random, newCfg(reg))
		}},
		// ncompress: full recovery via dictionary replay.
		{func(reg *obs.Registry) (*zipchannel.Result, error) {
			return zipchannel.LZWAttack(random, newCfg(reg))
		}},
		// zlib: charset-assisted recovery of lowercase text, plus the raw
		// 2-bits-per-byte floor on random data.
		{func(reg *obs.Registry) (*zipchannel.Result, error) {
			return zipchannel.ZlibAttack(lower, 0x60, true, newCfg(reg))
		}},
		{func(reg *obs.Registry) (*zipchannel.Result, error) {
			return zipchannel.ZlibAttack(random, 0, false, newCfg(reg))
		}},
	}
	results := make([]*zipchannel.Result, len(attacks))
	regs := make([]*obs.Registry, len(attacks))
	err := par.ForEach(ctx.Parallelism, len(attacks), func(i int) error {
		regs[i] = obs.NewRegistry()
		r, err := attacks[i].run(regs[i])
		results[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, reg := range regs {
		ctx.Obs.Merge(reg)
	}

	bz, lz, zlCharset, zlRaw := results[0], results[1], results[2], results[3]
	res.addf("%-22s %8.2f%% %8.2f%%  random data (paper's §V)", "bzip2 ftab[j]++", 100*bz.BitAcc, 100*bz.ByteAcc)
	res.Metrics["bzipBitAcc"] = bz.BitAcc
	res.addf("%-22s %8.2f%% %8.2f%%  random data, 8-candidate first byte", "ncompress htab[hp]", 100*lz.BitAcc, 100*lz.ByteAcc)
	res.Metrics["lzwByteAcc"] = lz.ByteAcc
	res.addf("%-22s %8.2f%% %8.2f%%  lowercase text, charset known (§IV-B)", "zlib head[ins_h]", 100*zlCharset.BitAcc, 100*zlCharset.ByteAcc)
	res.Metrics["zlibCharsetBitAcc"] = zlCharset.BitAcc
	res.addf("%-22s %8.2f%% %8s  random data, no charset (25%% direct)", "zlib head[ins_h]", 100*zlRaw.BitAcc, "-")
	res.Metrics["zlibRawBitAcc"] = zlRaw.BitAcc

	if bz.BitAcc < 0.98 || lz.ByteAcc < 0.97 || zlCharset.BitAcc < 0.9 {
		return nil, fmt.Errorf("allgadgets: accuracy below shape: bzip=%.3f lzw=%.3f zlib=%.3f",
			bz.BitAcc, lz.ByteAcc, zlCharset.BitAcc)
	}
	if zlRaw.BitAcc < 0.20 || zlRaw.BitAcc > 0.30 {
		return nil, fmt.Errorf("allgadgets: zlib raw leak %.3f outside the ~25%% band", zlRaw.BitAcc)
	}
	return res, nil
}
