package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// RunOptions configures a scheduled run of the experiment suite.
type RunOptions struct {
	// Runners is the task list; nil means All(), in paper order.
	Runners []Runner
	// Quick selects the reduced-size variants.
	Quick bool
	// Parallelism is the total worker budget, split between the task pool
	// and each runner's internal trial fan-out (a task's Ctx.Parallelism
	// is budget/poolWidth, at least 1), so the run never oversubscribes
	// the requested width; <= 0 means GOMAXPROCS. Results, manifests, and
	// the merged registry are byte-identical at any value.
	Parallelism int
	// RootSeed re-parameterizes every task's RNG deterministically: task
	// i runs with par.SplitSeed(RootSeed, runner name). Zero — the
	// default — keeps the paper-pinned per-runner seeds.
	RootSeed int64
	// Obs, when non-nil, receives every task's telemetry: per-task
	// registries are merged into it in registry order (obs.Registry.Merge
	// semantics), so its final snapshot matches a sequential shared-
	// registry run byte for byte.
	Obs *obs.Registry
	// OnResult streams outcomes in stable registry order — task i is
	// delivered only after tasks 0..i-1, whatever order they finished in
	// — so parallel runs never interleave or reorder output. Called from
	// worker goroutines, but never concurrently.
	OnResult func(*Outcome)
}

// Outcome is one scheduled task's result: exactly one of Err, or
// (Result, Manifest), is set. Duration is the task's wall clock (not
// deterministic; everything else is).
type Outcome struct {
	Runner   Runner
	Result   *Result
	Manifest *Manifest
	Err      error
	Duration time.Duration

	reg *obs.Registry // the task's private registry, for merging
}

// RunAll executes the tasks across a worker pool with deterministic
// seed-splitting: every task gets a private registry and its own RNG
// root, so no shared mutable state couples tasks, and outputs are
// byte-identical at any parallelism level. Outcomes come back in
// registry order. The returned error is non-nil when the context was
// cancelled or at least one task failed; partial results are still
// returned.
func RunAll(ctx context.Context, opts RunOptions) ([]*Outcome, error) {
	runners := opts.Runners
	if runners == nil {
		runners = All()
	}
	parallelism := par.Parallelism(opts.Parallelism)

	// Split the worker budget between the outer task pool and each task's
	// internal trial fan-out instead of granting both the full budget:
	// -parallel 4 used to run 4 tasks × 4 inner workers = 16 CPU-bound
	// goroutines, which anti-scaled on small hosts (GC pressure from four
	// oversubscribed heaps). Inner width does not affect outputs (ForEach
	// is deterministic at any width), so only wall time changes.
	outer := parallelism
	if outer > len(runners) {
		outer = len(runners)
	}
	inner := 1
	if outer > 0 {
		inner = parallelism / outer
		if inner < 1 {
			inner = 1
		}
	}

	outcomes := make([]*Outcome, len(runners))
	var mu sync.Mutex
	next := 0
	flush := func() { // with mu held: deliver+merge every ready prefix task
		for next < len(outcomes) && outcomes[next] != nil {
			o := outcomes[next]
			if o.Err == nil {
				opts.Obs.Merge(o.reg)
			}
			if opts.OnResult != nil {
				opts.OnResult(o)
			}
			next++
		}
	}

	par.ForEach(outer, len(runners), func(i int) error {
		r := runners[i]
		o := &Outcome{Runner: r}
		if err := ctx.Err(); err != nil {
			o.Err = err
		} else {
			start := time.Now()
			ec := &Ctx{
				Quick:       opts.Quick,
				Obs:         obs.NewRegistry(),
				Parallelism: inner,
			}
			if opts.RootSeed != 0 {
				ec.Seed = par.SplitSeed(opts.RootSeed, r.Name)
			}
			o.reg = ec.Obs
			o.Result, o.Manifest, o.Err = ExecuteCtx(r, ec)
			o.Duration = time.Since(start)
		}
		mu.Lock()
		outcomes[i] = o
		flush()
		mu.Unlock()
		return nil
	})

	if err := ctx.Err(); err != nil {
		return outcomes, err
	}
	failed := 0
	for _, o := range outcomes {
		if o.Err != nil {
			failed++
		}
	}
	if failed > 0 {
		return outcomes, fmt.Errorf("%d experiment(s) failed", failed)
	}
	return outcomes, nil
}
