package experiments

import (
	"fmt"

	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/corpus"
	"github.com/zipchannel/zipchannel/internal/fingerprint"
	"github.com/zipchannel/zipchannel/internal/nn"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// Fig6 regenerates the sorting control-flow census behind Fig 6: for
// every corpus file, which path each block takes (mainSort, abandon to
// fallbackSort, or direct fallbackSort for the short tail). Each file's
// compression is independent, so files fan out across ctx.Parallelism
// workers; each writes only its own counter slot, and rows/totals are
// assembled in corpus order afterwards.
func Fig6(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	files := corpus.BrotliLike(1)
	if quick {
		files = files[:6]
	}
	res := newResult("E10/Fig6", "bzip2 sorting control flow per input block")
	res.addf("%-20s %8s %8s %8s %8s", "file", "blocks", "mainSort", "abandon", "fallback")
	counters := make([]flowCounter, len(files))
	err := par.ForEach(ctx.Parallelism, len(files), func(i int) error {
		if _, err := bwt.Compress(files[i].Data, bwt.Options{Tracer: &counters[i]}); err != nil {
			return fmt.Errorf("fig6: %s: %w", files[i].Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var totalAbandons, totalFallbacks int
	for i, f := range files {
		c := &counters[i]
		res.addf("%-20s %8d %8d %8d %8d", f.Name, c.blocks, c.mains, c.abandons, c.fallbacks)
		totalAbandons += c.abandons
		totalFallbacks += c.fallbacks
	}
	res.Metrics["abandons"] = float64(totalAbandons)
	res.Metrics["fallbacks"] = float64(totalFallbacks)
	if totalFallbacks == 0 {
		return nil, fmt.Errorf("fig6: corpus exercised no fallbackSort path")
	}
	return res, nil
}

type flowCounter struct {
	bwt.BaseTracer
	blocks, mains, abandons, fallbacks int
}

func (c *flowCounter) BlockStart(int, int) { c.blocks++ }
func (c *flowCounter) MainSortEnter()      { c.mains++ }
func (c *flowCounter) MainSortAbandon(int) { c.abandons++ }
func (c *flowCounter) FallbackSortEnter()  { c.fallbacks++ }

// runFingerprint generates traces for the files (fanning trace
// simulation across parallelism workers), trains the classifier, and
// returns (labels, confusion matrix, test accuracy).
func runFingerprint(files []corpus.File, tracesPerFile int, jitter float64, seed int64, parallelism int, reg *obs.Registry) ([]string, [][]float64, float64, error) {
	ds, err := fingerprint.BuildDataset(files, fingerprint.DatasetConfig{
		TracesPerFile:    tracesPerFile,
		NoiseRate:        0.05,
		PeriodJitterFrac: jitter,
		Seed:             seed,
		Parallelism:      parallelism,
		Obs:              reg,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	// The paper states 90/10/10 ratios (which over-count by 10%); we use
	// 80/10/10 and note the divergence in EXPERIMENTS.md.
	train, _, test := nn.Split(ds, 0.8, 0.1, seed+1)
	m, err := nn.New(seed+2, 2*fingerprint.PoolWidth, 64, len(files))
	if err != nil {
		return nil, nil, 0, err
	}
	epochs := reg.Counter("nn.epochs")
	loss := reg.Gauge("nn.loss")
	trainCfg := nn.TrainConfig{Epochs: 30, LR: 0.02, LRDecay: 0.95,
		Verbose: func(epoch int, l float64) {
			epochs.Inc()
			loss.Set(l)
		}}
	if _, err := m.Train(train, trainCfg); err != nil {
		return nil, nil, 0, err
	}
	cm, err := m.ConfusionMatrix(test)
	if err != nil {
		return nil, nil, 0, err
	}
	acc, err := m.Accuracy(test)
	if err != nil {
		return nil, nil, 0, err
	}
	reg.Gauge("nn.test_acc").Set(acc)
	labels := make([]string, len(files))
	for i, f := range files {
		labels[i] = f.Name
	}
	return labels, cm, acc, nil
}

// Fig7 regenerates the 21-file fingerprinting confusion matrix: most
// files classify well; tiny files that go straight to fallbackSort
// confuse each other (the paper's file "x" at 20%).
func Fig7(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	files := corpus.BrotliLike(1)
	traces := 40
	if quick {
		files = files[:8]
		traces = 12
	}
	seed := ctx.taskSeed(7, "dataset")
	labels, cm, acc, err := runFingerprint(files, traces, 0.05, seed, ctx.Parallelism, ctx.Obs)
	if err != nil {
		return nil, err
	}
	res := newResult("E8/Fig7", fmt.Sprintf("fingerprinting %d corpus files (confusion matrix, rows=actual)", len(files)))
	res.Seed = seed
	res.Lines = append(res.Lines, renderConfusion(labels, cm)...)
	res.Metrics["testAcc"] = acc
	res.Metrics["diagMean"] = diagonalMean(cm)
	chance := 1.0 / float64(len(files))
	res.addf("test accuracy %.2f (chance %.3f)", acc, chance)
	if acc < 4*chance {
		return nil, fmt.Errorf("fig7: accuracy %.3f not meaningfully above chance %.3f", acc, chance)
	}
	return res, nil
}

// Fig8 regenerates the repetitiveness experiment: 5 same-size lipsum
// files drawing from i paragraphs each; the most repetitive file is
// nearly always identified, its neighbours are confused with each other.
func Fig8(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	size := 20000
	traces := 50
	if quick {
		traces = 15
	}
	files := corpus.RepetitivenessSeries(11, size)
	// Per-trace timing jitter models the run-to-run variation that makes
	// the paper's similar lipsum files confusable (Fig 8 off-diagonals).
	seed := ctx.taskSeed(13, "dataset")
	labels, cm, acc, err := runFingerprint(files, traces, 0.25, seed, ctx.Parallelism, ctx.Obs)
	if err != nil {
		return nil, err
	}
	res := newResult("E9/Fig8", "fingerprinting 5 lipsum files of increasing diversity")
	res.Seed = seed
	res.Lines = append(res.Lines, renderConfusion(labels, cm)...)
	res.Metrics["testAcc"] = acc
	res.Metrics["file1Diag"] = cm[0][0]
	res.addf("test accuracy %.2f (chance 0.200); file 1 diagonal %.2f (paper: 0.98)", acc, cm[0][0])
	if cm[0][0] < 0.6 {
		return nil, fmt.Errorf("fig8: the most repetitive file should classify reliably (got %.2f)", cm[0][0])
	}
	if acc <= 0.2 {
		return nil, fmt.Errorf("fig8: accuracy %.3f at or below chance", acc)
	}
	return res, nil
}
