package experiments

import (
	"fmt"
	"math/rand"

	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/victims"
)

// ToolComparison regenerates the §VII contrast between TaintChannel and
// trace-based differential tools (Microwalk/DATA-style): both flag the
// same gadget sites on the compression victims, but only TaintChannel
// yields the input-to-address relation (the bit matrices of Figs 2-4),
// and it needs a single execution where the baseline needs many.
func ToolComparison(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	n := 1024
	runs := 8
	if quick {
		n = 256
		runs = 4
	}
	rng := rand.New(rand.NewSource(12))
	input := make([]byte, n)
	for i := range input {
		input[i] = byte('a' + rng.Intn(26))
	}

	res := newResult("E12/§VII", "TaintChannel vs trace-correlation baseline")
	res.addf("%-8s %-12s %-10s %-12s %-12s %s",
		"victim", "TC gadget", "corr. PCs", "TC instrs", "corr instrs", "relation")

	targets := []struct {
		name string
		prog *isa.Program
	}{
		{"zlib", victims.ZlibInsertString()},
		{"lzw", victims.LZWHashProbe()},
		{"bzip2", victims.BzipFtab(victims.BzipFtabOptions{FtabPad: 20})},
	}
	agree := 0
	for _, v := range targets {
		tcRep, a, err := runTaintChannel(v.prog, input, core.Config{MaxSamplesPerGadget: 1})
		if err != nil {
			return nil, err
		}
		corr, err := core.Correlate(v.prog, input, runs, 9)
		if err != nil {
			return nil, err
		}
		df := tcRep.DataFlowFindings()
		if len(df) == 0 {
			return nil, fmt.Errorf("tools: TaintChannel found nothing in %s", v.name)
		}
		for _, pc := range corr.LeakyPCs() {
			if pc == df[0].PC {
				agree++
				break
			}
		}
		res.addf("%-8s pc %-9d %-10d %-12d %-12d TC: exact bits / corr: none",
			v.name, df[0].PC, len(corr.Findings), a.InstrCount(), corr.Instructions)
		res.Metrics[v.name+"CostRatio"] = float64(corr.Instructions) / float64(a.InstrCount())
	}
	res.Metrics["agreement"] = float64(agree)
	res.addf("agreement on the primary gadget site: %d/3; only TaintChannel emits the bit-level relation", agree)
	if agree != 3 {
		return nil, fmt.Errorf("tools: baseline missed a gadget TaintChannel found (%d/3)", agree)
	}
	return res, nil
}
