package experiments

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/compress/lz77"
	"github.com/zipchannel/zipchannel/internal/compress/lzw"
	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/par"
	"github.com/zipchannel/zipchannel/internal/recovery"
	"github.com/zipchannel/zipchannel/internal/victims"
)

// lz77Trace collects the zlib gadget's hash stream.
type lz77Trace struct {
	obs  []uint16
	seen map[int]bool
}

func (t *lz77Trace) HeadInsert(h uint32, pos int) {
	if t.seen[pos] {
		return
	}
	t.seen[pos] = true
	t.obs = append(t.obs, uint16(h>>5))
}

// lzwTrace collects the ncompress gadget's primary probe stream.
type lzwTrace struct{ obs []uint64 }

func (t *lzwTrace) Probe(hp uint64, primary bool) {
	if primary {
		t.obs = append(t.obs, hp>>3)
	}
}

// bwtTrace collects the bzip2 gadget's histogram index stream.
type bwtTrace struct {
	bwt.BaseTracer
	js []uint16
}

func (t *bwtTrace) FtabInc(j uint16) { t.js = append(t.js, j) }

// Survey regenerates the §IV survey summary (§IV-E): for each of the
// three algorithm families, run the real from-scratch compressor with
// its gadget instrumented, reduce the gadget stream to cache-line
// granularity, run the §IV recovery computation, and report the leaked
// fraction — alongside TaintChannel's gadget census on the assembly
// miniatures. The family set, its table order, and the printed labels all
// come from the shared codec registry (internal/compress/codec), so this
// table, cmd/zipcomp, and zipserverd can never drift apart on which
// algorithms exist. The family sweeps are independent, so they fan out
// across ctx.Parallelism workers; each writes only its own table row.
func Survey(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	n := 4096
	if quick {
		n = 512
	}
	res := newResult("E4/Survey", "leakage of the three major compression algorithms (§IV)")
	res.Seed = ctx.taskSeed(4, "input")
	res.addf("%-10s %-28s %-16s %s", "algorithm", "gadget (TaintChannel)", "channel", "recovered")

	rng := rand.New(rand.NewSource(res.Seed))
	random := make([]byte, n)
	rng.Read(random)
	lower := make([]byte, n)
	for i := range lower {
		lower[i] = byte('a' + rng.Intn(26))
	}

	var zlibRaw, zlibFull, lzwBytes, bzBits float64
	// One row recipe per registry codec; each returns its rendered line.
	rows := map[string]func(family string) (string, error){
		"lz77": func(family string) (string, error) {
			// --- LZ77 / zlib (§IV-B) ---
			zlibGadget, err := gadgetCensus(victims.ZlibInsertString(), lower)
			if err != nil {
				return "", err
			}
			var zt lz77Trace
			zt.seen = map[int]bool{}
			if _, err := lz77.Compress(lower, lz77.Options{Tracer: &zt}); err != nil {
				return "", err
			}
			recZ := recovery.RecoverZlib(zt.obs, len(lower), 0x60, true)
			zlibFull = recovery.ZlibLeakFraction(recZ, lower)
			var zt2 lz77Trace
			zt2.seen = map[int]bool{}
			if _, err := lz77.Compress(random, lz77.Options{Tracer: &zt2}); err != nil {
				return "", err
			}
			recZraw := recovery.RecoverZlib(zt2.obs, len(random), 0, false)
			zlibRaw = recovery.ZlibLeakFraction(recZraw, random)
			return fmt.Sprintf("%-10s %-28s %-16s raw %.1f%% of bits; %.1f%% for lowercase charset",
				family, zlibGadget, "head[ins_h]", 100*zlibRaw, 100*zlibFull), nil
		},
		"lzw": func(family string) (string, error) {
			// --- LZ78 / ncompress (§IV-C) ---
			lzwGadget, err := gadgetCensus(victims.LZWHashProbe(), lower)
			if err != nil {
				return "", err
			}
			var lt lzwTrace
			if _, err := lzw.Compress(random, &lt); err != nil {
				return "", err
			}
			cands, err := recovery.RecoverLZW(lt.obs, 3, func(first byte) recovery.EntReplayer {
				return lzw.NewReplayer(first)
			})
			if err != nil {
				return "", err
			}
			best, err := recovery.BestLZW(cands)
			if err != nil {
				return "", err
			}
			lzwBytes = fractionEqual(best.Plaintext, random)
			return fmt.Sprintf("%-10s %-28s %-16s %.1f%% of bytes (random data, 8-candidate first byte)",
				family, lzwGadget, "htab[hp]", 100*lzwBytes), nil
		},
		"bwt": func(family string) (string, error) {
			// --- BWT / bzip2 (§IV-D) ---
			bzGadget, err := gadgetCensus(victims.BzipFtab(victims.BzipFtabOptions{FtabPad: 20}), lower)
			if err != nil {
				return "", err
			}
			var bt bwtTrace
			if _, err := bwt.Compress(random, bwt.Options{Tracer: &bt, BlockSize: len(random)}); err != nil {
				return "", err
			}
			// Reduce to cache-line observations over a misaligned ftab.
			const phase = 20
			block := bt.js // iteration order, already i = n-1 .. 0
			trace := make(recovery.BzipTrace, len(block))
			base := uint64(0x40000 + phase)
			for k, j := range block {
				trace[k] = int64((base+4*uint64(j))&^63) - int64(base)
			}
			rleBlock := rle1OfRandom(random)
			recB, err := recovery.RecoverBzip(trace, len(rleBlock), 64)
			if err != nil {
				return "", err
			}
			_, bzBits = recB.Accuracy(rleBlock)
			return fmt.Sprintf("%-10s %-28s %-16s %.1f%% of bits (random data, misaligned ftab)",
				family, bzGadget, "ftab[j]++", 100*bzBits), nil
		},
	}

	algs := codec.All()
	lines := make([]string, len(algs))
	err := par.ForEach(ctx.Parallelism, len(algs), func(i int) error {
		row, ok := rows[algs[i].Name]
		if !ok {
			return fmt.Errorf("survey: registry codec %q has no survey row", algs[i].Name)
		}
		line, err := row(algs[i].Family)
		if err != nil {
			return err
		}
		lines[i] = line
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Lines = append(res.Lines, lines...)
	res.Metrics["zlibRawBits"] = zlibRaw
	res.Metrics["zlibCharsetBits"] = zlibFull
	res.Metrics["lzwBytes"] = lzwBytes
	res.Metrics["bzipBits"] = bzBits

	if zlibRaw < 0.20 || lzwBytes < 0.99 || bzBits < 0.99 {
		return nil, fmt.Errorf("survey: leak fractions below the paper's shape: zlib=%.2f lzw=%.2f bzip=%.2f",
			zlibRaw, lzwBytes, bzBits)
	}
	return res, nil
}

// gadgetCensus runs TaintChannel on the assembly miniature of a gadget
// and summarizes what it found, for the survey table's first column.
func gadgetCensus(prog *isa.Program, input []byte) (string, error) {
	rep, _, err := runTaintChannel(prog, input, core.Config{MaxSamplesPerGadget: 1})
	if err != nil {
		return "", err
	}
	df := rep.DataFlowFindings()
	if len(df) == 0 {
		return "none found", nil
	}
	return fmt.Sprintf("%s (x%d)", df[0].Instr.String(), df[0].Count), nil
}

func fractionEqual(a, b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	eq := 0
	for i := range b {
		if i < len(a) && a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(b))
}

// rle1OfRandom mirrors the compressor's RLE1 stage so the recovered block
// can be compared against ground truth. Random data has essentially no
// 4-byte runs, but we compute it exactly rather than assume.
func rle1OfRandom(src []byte) []byte {
	out := make([]byte, 0, len(src))
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 255 {
			run++
		}
		if run >= 4 {
			out = append(out, b, b, b, b, byte(run-4))
		} else {
			out = append(out, bytes.Repeat([]byte{b}, run)...)
		}
		i += run
	}
	return out
}
