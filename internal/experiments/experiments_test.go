package experiments

import (
	"strings"
	"testing"
)

// Every registered experiment must run green in its quick variant; the
// per-experiment assertions (accuracy floors, gadget counts) live inside
// the runners themselves.
func TestAllExperimentsQuick(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			res, err := r.Run(&Ctx{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			if res.ID == "" || res.Title == "" {
				t.Errorf("%s: missing ID/title", r.Name)
			}
			if len(res.Lines) == 0 {
				t.Errorf("%s: no output lines", r.Name)
			}
			if testing.Verbose() {
				t.Logf("\n%s", res)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig7"); !ok {
		t.Error("fig7 should be registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown name should not resolve")
	}
}

func TestResultString(t *testing.T) {
	r := newResult("X", "test")
	r.addf("line %d", 1)
	r.Metrics["m"] = 0.5
	s := r.String()
	for _, want := range []string{"=== X: test ===", "line 1", "m=0.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestRenderConfusion(t *testing.T) {
	lines := renderConfusion([]string{"aa", "bb"}, [][]float64{{0.9, 0.1}, {0.25, 0.75}})
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[1], "0.90") || !strings.Contains(lines[2], "0.75") {
		t.Errorf("matrix values missing:\n%s", strings.Join(lines, "\n"))
	}
}

func TestDiagonalMean(t *testing.T) {
	if diagonalMean(nil) != 0 {
		t.Error("empty matrix should give 0")
	}
	if got := diagonalMean([][]float64{{1, 0}, {0, 0.5}}); got != 0.75 {
		t.Errorf("diagonalMean = %f, want 0.75", got)
	}
}
