package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/taint"
	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// runTaintChannel executes a victim program under a fresh analyzer.
func runTaintChannel(prog *isa.Program, input []byte, cfg core.Config) (*core.Report, *core.Analyzer, error) {
	machine, err := vm.NewFlat(prog)
	if err != nil {
		return nil, nil, err
	}
	machine.SetInput(input)
	a := core.New(cfg)
	a.Attach(machine)
	if err := machine.Run(); err != nil {
		return nil, nil, err
	}
	return a.Report(prog.Name), a, nil
}

// Fig2 regenerates the paper's Fig 2: TaintChannel's report for the zlib
// INSERT_STRING gadget, showing three consecutive input bytes tainting
// the dereferenced address at bit ranges 1-8 / 6-13 / 11-15.
func Fig2(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	n := 6000
	if quick {
		n = 256
	}
	rng := rand.New(rand.NewSource(2))
	input := make([]byte, n)
	for i := range input {
		input[i] = byte('a' + rng.Intn(26))
	}
	rep, _, err := runTaintChannel(victims.ZlibInsertString(), input, core.Config{MaxSamplesPerGadget: 1})
	if err != nil {
		return nil, err
	}
	res := newResult("E1/Fig2", "TaintChannel on zlib INSERT_STRING (head[ins_h] store)")
	df := rep.DataFlowFindings()
	res.Metrics["gadgets"] = float64(len(df))
	for _, f := range df {
		res.Lines = append(res.Lines, strings.Split(strings.TrimRight(f.Render(), "\n"), "\n")...)
	}
	if len(df) != 1 {
		return nil, fmt.Errorf("fig2: found %d data-flow gadgets, want 1", len(df))
	}
	return res, nil
}

// Fig3 regenerates Fig 3: the propagation history of one input byte
// through the ncompress gadget (read -> shl 9 -> xor ent -> scaled
// dereference), plus the resulting taint matrix.
func Fig3(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	input := []byte{0x20, 0x20, 0x41, 0x42, 0x43}
	_ = quick
	trackedTag := taint.Tag(2) // the byte that Fig 3 follows
	rep, a, err := runTaintChannel(victims.LZWHashProbe(), input, core.Config{
		MaxSamplesPerGadget: 1,
		TrackTags:           map[taint.Tag]bool{trackedTag: true},
	})
	if err != nil {
		return nil, err
	}
	res := newResult("E2/Fig3", "taint propagation of one input byte through the ncompress htab probe")
	res.addf("history of input byte #%d:", trackedTag)
	for _, ev := range a.History(trackedTag) {
		res.addf("  step %6d  pc %4d  %-28s %s", ev.Step, ev.PC, ev.Instr, ev.Note)
	}
	df := rep.DataFlowFindings()
	res.Metrics["gadgets"] = float64(len(df))
	if len(df) == 0 {
		return nil, fmt.Errorf("fig3: no data-flow gadget found")
	}
	res.Lines = append(res.Lines, strings.Split(strings.TrimRight(df[0].Render(), "\n"), "\n")...)
	return res, nil
}

// Fig4 regenerates Fig 4: two consecutive ftab increments showing the
// same input byte first in the high half, then the low half of the index.
func Fig4(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	input := []byte("ILLINOIS")
	_ = quick
	rep, _, err := runTaintChannel(victims.BzipFtab(victims.BzipFtabOptions{FtabPad: 20}), input,
		core.Config{MaxSamplesPerGadget: 2})
	if err != nil {
		return nil, err
	}
	res := newResult("E3/Fig4", "two consecutive bzip2 ftab increments sharing input byte taint")
	df := rep.DataFlowFindings()
	res.Metrics["gadgets"] = float64(len(df))
	if len(df) != 1 {
		return nil, fmt.Errorf("fig4: found %d data-flow gadgets, want 1", len(df))
	}
	res.Lines = append(res.Lines, strings.Split(strings.TrimRight(df[0].Render(), "\n"), "\n")...)
	return res, nil
}

// AESValidation regenerates the §III-B check that TaintChannel
// rediscovers the Osvik et al. AES T-table gadget.
func AESValidation(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	_ = quick
	pt := make([]byte, 16)
	rand.New(rand.NewSource(7)).Read(pt)
	rep, _, err := runTaintChannel(victims.AESFirstRound(), pt, core.Config{MaxSamplesPerGadget: 1})
	if err != nil {
		return nil, err
	}
	res := newResult("E5", "TaintChannel validation: the AES T-table gadget (Osvik et al.)")
	df := rep.DataFlowFindings()
	res.Metrics["gadgets"] = float64(len(df))
	if len(df) != 1 {
		return nil, fmt.Errorf("aes: found %d gadgets, want 1 (Te0 lookup)", len(df))
	}
	res.addf("gadget: %s (triggered %d times = one per state byte)", df[0].Instr.String(), df[0].Count)
	res.Metrics["lookups"] = float64(df[0].Count)
	res.Lines = append(res.Lines, strings.Split(strings.TrimRight(df[0].Render(), "\n"), "\n")...)
	return res, nil
}

// MemcpyValidation regenerates the §III-B memcpy finding: a control-flow
// gadget on the copy size, with reduced traces diverging between a
// multiple-of-word and a ragged size.
func MemcpyValidation(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	_ = quick
	mk := func(n byte) []byte {
		in := make([]byte, int(n)+1)
		in[0] = n
		for i := range in[1:] {
			in[i+1] = byte(i)
		}
		return in
	}
	run := func(n byte) (*core.Report, []core.ReducedEvent, error) {
		rep, a, err := runTaintChannel(victims.Memcpy(), mk(n), core.Config{ReducedTrace: true})
		if err != nil {
			return nil, nil, err
		}
		return rep, a.Reduced(), nil
	}
	rep96, tr96, err := run(96)
	if err != nil {
		return nil, err
	}
	_, tr97, err := run(97)
	if err != nil {
		return nil, err
	}
	res := newResult("E6", "memcpy control-flow leak: vector path vs byte-tail path")
	cf := rep96.ControlFlowFindings()
	res.Metrics["controlFlowGadgets"] = float64(len(cf))
	for _, f := range cf {
		res.addf("tainted branch at pc %d: %s (x%d)", f.PC, f.Instr.String(), f.Count)
	}
	div := core.DiffTraces(tr96, tr97)
	res.Metrics["divergingPCs"] = float64(len(div))
	res.addf("reduced traces for sizes 96 vs 97 diverge at %d program points: %v", len(div), div)
	if len(cf) == 0 || len(div) == 0 {
		return nil, fmt.Errorf("memcpy: expected control-flow findings and trace divergence")
	}
	return res, nil
}
