package experiments

import (
	"fmt"
	"math/rand"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/nn"
	"github.com/zipchannel/zipchannel/internal/pagestore"
	"github.com/zipchannel/zipchannel/internal/par"
	"github.com/zipchannel/zipchannel/internal/zipchannel"
)

// PageStoreAttack regenerates the memory-compression channel against
// internal/pagestore (the Schwarzl et al. remote attacks, PAPERS.md):
//
//  1. secret recovery — attacker bytes co-located with a secret in one
//     compressed page, recovered byte by byte from store-time alone,
//     across several independently seeded trials (fanned over
//     ctx.Parallelism; slot-isolated, so results are byte-identical at
//     any worker count);
//  2. the same recovery under a 25%/±2000-step jittered timer, beaten
//     by median filtering over 27 readings per query;
//  3. dataset fingerprinting — an MLP classifying which corpus file a
//     page trace came from, with no co-located attacker bytes at all.
func PageStoreAttack(ctx *Ctx) (*Result, error) {
	quick := ctx.Quick
	trials, secretLen := 4, 16
	if quick {
		trials, secretLen = 2, 12
	}
	seed := ctx.taskSeed(23, "pages")
	res := newResult("E14/Pages", "compressed page store: remote compression-time oracle + fingerprinting")
	res.Seed = seed

	// 1. Clean recovery trials.
	type trial struct {
		acc     float64
		queries int
		bytes   int
		stores  int64
	}
	outs := make([]trial, trials)
	err := par.ForEach(ctx.Parallelism, trials, func(i int) error {
		s := pagestore.New(pagestore.Config{Obs: ctx.Obs})
		secret := pageTrialSecret(par.SplitSeed(seed, fmt.Sprintf("secret%d", i)), secretLen)
		if _, err := s.Plant("victim", 64, append([]byte("key="), secret...)); err != nil {
			return err
		}
		r, err := zipchannel.RecoverPageSecret(zipchannel.NewStoreOracle(s, "victim"),
			zipchannel.PageAttackConfig{KnownPrefix: "key=", SecretLen: secretLen, Obs: ctx.Obs})
		if err != nil {
			return err
		}
		outs[i] = trial{acc: r.Accuracy(secret), queries: r.Queries, bytes: secretLen, stores: int64(r.Queries) + 1}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var accSum, qpbSum float64
	var pageStores int64
	for _, o := range outs {
		accSum += o.acc
		qpbSum += float64(o.queries) / float64(o.bytes)
		pageStores += o.stores
	}
	byteAcc := accSum / float64(trials)
	queriesPerByte := qpbSum / float64(trials)
	res.addf("clean recovery: %d trials x %d bytes, byte accuracy %.3f, %.1f oracle queries/byte",
		trials, secretLen, byteAcc, queriesPerByte)

	// 2. Recovery under a jittered timer (the amplification headline).
	freg := fault.NewRegistry(par.SplitSeed(seed, "jitter"))
	if err := freg.ArmAll("attacker.oracle.timer=latency:0.25:2000"); err != nil {
		return nil, err
	}
	s := pagestore.New(pagestore.Config{Obs: ctx.Obs})
	secret := pageTrialSecret(par.SplitSeed(seed, "jitter-secret"), secretLen)
	if _, err := s.Plant("victim", 64, append([]byte("key="), secret...)); err != nil {
		return nil, err
	}
	jr, err := zipchannel.RecoverPageSecret(zipchannel.NewStoreOracle(s, "victim"),
		zipchannel.PageAttackConfig{KnownPrefix: "key=", SecretLen: secretLen,
			Obs: ctx.Obs, Faults: freg, TimerSamples: 27})
	if err != nil {
		return nil, err
	}
	jitterAcc := jr.Accuracy(secret)
	pageStores += int64(jr.Queries) + 1
	res.addf("jittered timer (25%%, +/-2000 steps): byte accuracy %.3f over median-of-27 filtering (%d noisy readings)",
		jitterAcc, jr.NoisyReads)

	// 3. Timing-trace fingerprinting (no co-located attacker bytes).
	files := zipchannel.PageFingerprintFiles(1, 6)
	ds, err := zipchannel.BuildPageTimingDataset(files, zipchannel.PageFingerprintConfig{
		Seed:        par.SplitSeed(seed, "fingerprint"),
		Parallelism: ctx.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	pageStores += int64(len(files)) * 8 // PagesPerFile stores per file
	train, _, test := nn.Split(ds, 0.8, 0.1, seed+1)
	m, err := nn.New(5, len(ds[0].X), 64, len(files))
	if err != nil {
		return nil, err
	}
	if _, err := m.Train(train, nn.TrainConfig{Epochs: 200, LR: 0.1, LRDecay: 0.99}); err != nil {
		return nil, err
	}
	fpAcc, err := m.Accuracy(test)
	if err != nil {
		return nil, err
	}
	chance := 1.0 / float64(len(files))
	res.addf("page-timing fingerprint: %d files, test accuracy %.3f (chance %.3f)", len(files), fpAcc, chance)

	res.Metrics["byteAcc"] = byteAcc
	res.Metrics["jitterAcc"] = jitterAcc
	res.Metrics["queriesPerByte"] = queriesPerByte
	res.Metrics["fpAcc"] = fpAcc
	res.Metrics["pageStores"] = float64(pageStores)

	if byteAcc < 1.0 {
		return nil, fmt.Errorf("pagestore: clean recovery accuracy %.3f, want 1.0", byteAcc)
	}
	if jitterAcc <= 0.99 {
		return nil, fmt.Errorf("pagestore: jittered recovery accuracy %.3f, want > 0.99", jitterAcc)
	}
	if fpAcc < 2*chance {
		return nil, fmt.Errorf("pagestore: fingerprint accuracy %.3f not meaningfully above chance %.3f", fpAcc, chance)
	}
	return res, nil
}

// pageTrialSecret draws a charset-only secret for one trial.
func pageTrialSecret(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = zipchannel.DefaultPageCharset[rng.Intn(len(zipchannel.DefaultPageCharset))]
	}
	return out
}
