package zipchannel

import (
	"fmt"
	"time"

	"github.com/zipchannel/zipchannel/internal/recovery"
	"github.com/zipchannel/zipchannel/internal/sgx"
	"github.com/zipchannel/zipchannel/internal/victims"
)

// This file extends the paper's §V attack to the other two surveyed
// gadgets. §IV-E establishes that zlib's head[ins_h] and ncompress's
// htab[hp] leak the input through the same channel; the paper
// demonstrates the end-to-end extraction only for bzip2. With the
// generalized two-array stepper (sgx.Stepper2) the identical machinery —
// controlled-channel single-stepping, page identification, Prime+Probe
// with CAT and frame selection — extracts their inputs too.

// runStepper2 drives a two-array single-stepping attack and returns, per
// loop iteration, the observed cache-line offset from tableVA
// (recovery.UnknownObservation for ambiguous probes).
func runStepper2(r *rig, st *sgx.Stepper2, tableVA uint64) ([]int64, error) {
	page, ok, err := st.Start()
	if err != nil {
		return nil, fmt.Errorf("zipchannel: start: %w", err)
	}
	var obs []int64
	for ok {
		ps, err := r.pageFor(page)
		if err != nil {
			return nil, err
		}
		curPage := page
		lineOff := recovery.UnknownObservation
		nextPage, done, err := st.Step(
			func() { r.prime(ps) },
			func() {
				if line := r.probeLine(ps); line >= 0 {
					lineVA := curPage + uint64(line*r.c.Config().LineSize)
					lineOff = int64(lineVA) - int64(tableVA)
				} else {
					r.unknownObs.Inc()
				}
				r.iterations.Inc()
			},
		)
		if err != nil {
			return nil, fmt.Errorf("zipchannel: step: %w", err)
		}
		obs = append(obs, lineOff)
		if done {
			break
		}
		page = nextPage
	}
	return obs, nil
}

// ZlibAttack extracts the input the enclave feeds through the zlib
// INSERT_STRING gadget (Listing 1): each single-stepped iteration leaks
// the cache line of head[ins_h], i.e. the rolling hash ins_h >> 5, which
// the §IV-B computation inverts. With charset knowledge (charsetHigh3 =
// the known top-3 bits pattern, e.g. 0x60 for lowercase ASCII) nearly
// every byte is recovered; without it, 2 bits per byte leak directly.
func ZlibAttack(input []byte, charsetHigh3 byte, haveCharset bool, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	prog := victims.ZlibInsertString()
	r, err := newRig(prog, input, cfg)
	if err != nil {
		return nil, err
	}
	st := sgx.NewStepper2(r.enc, "window", "head", true /* head is store-only */)
	st.AttachObs(r.reg)
	st.OnTransition = r.injectNoise
	r.dryTransition = st.DryTransition

	head := prog.MustSymbol("head")
	offs, err := runStepper2(r, st, head.Addr)
	if err != nil {
		return nil, err
	}

	// head entries are 2 bytes on a 64-aligned base: the observed line
	// offset is 64*(h>>5), so obs = lineOff/64 recovers h>>5 exactly.
	obsSeq := make([]uint16, len(offs))
	unknown := make([]bool, len(offs))
	for k, off := range offs {
		if off == recovery.UnknownObservation || off < 0 {
			unknown[k] = true
			continue
		}
		obsSeq[k] = uint16(off / 64)
	}
	rec := recovery.RecoverZlib(obsSeq, len(input), charsetHigh3, haveCharset)
	for k, u := range unknown {
		if u && k+1 < len(rec) {
			rec[k+1] = recovery.ZlibKnownBits{} // lost observation: no claim
		}
	}

	res := r.res
	res.Recovered = make([]byte, len(input))
	okBytes := 0
	for i, kb := range rec {
		res.Recovered[i] = kb.Value
		if kb.Mask == 0xff && kb.Value == input[i] {
			okBytes++
		}
	}
	if len(input) > 0 {
		res.ByteAcc = float64(okBytes) / float64(len(input))
	}
	res.BitAcc = recovery.ZlibLeakFraction(rec, input)
	res.Elapsed = time.Since(start)
	r.finish(res)
	return res, nil
}

// lzwGadgetReplay mirrors the asm victim's simplified dictionary rule
// (Listing 2's shape): on a hash hit the entry code is hash-derived, on a
// miss the pair is inserted and ent restarts at c. It implements
// recovery.EntReplayer for the end-to-end attack. (The lzw package's
// Replayer mirrors the full compressor instead.)
type lzwGadgetReplay struct {
	htab map[uint64]uint64
	ent  uint32
}

func newLZWGadgetReplay(first byte) *lzwGadgetReplay {
	return &lzwGadgetReplay{htab: map[uint64]uint64{}, ent: uint32(first)}
}

// Ent implements recovery.EntReplayer.
func (g *lzwGadgetReplay) Ent() uint32 { return g.ent }

// Push implements recovery.EntReplayer.
func (g *lzwGadgetReplay) Push(c byte) {
	hp := (uint64(c) << 9) ^ uint64(g.ent)
	fc := (uint64(g.ent) << 8) | uint64(c)
	if g.htab[hp] == fc {
		g.ent = uint32(hp & 0xffff)
	} else {
		g.htab[hp] = fc
		g.ent = uint32(c)
	}
}

// LZWAttack extracts the input the enclave feeds through the ncompress
// probe gadget (Listing 2): each single-stepped iteration leaks the
// cache line of htab[hp], i.e. hp >> 3, and the §IV-C dictionary replay
// inverts the whole stream (modulo the first byte's low 3 bits, brute
// forced over 8 candidates).
func LZWAttack(input []byte, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	prog := victims.LZWHashProbe()
	r, err := newRig(prog, input, cfg)
	if err != nil {
		return nil, err
	}
	st := sgx.NewStepper2(r.enc, "inputbuf", "htab", false /* probes are loads */)
	st.AttachObs(r.reg)
	st.OnTransition = r.injectNoise
	r.dryTransition = st.DryTransition

	htab := prog.MustSymbol("htab")
	offs, err := runStepper2(r, st, htab.Addr)
	if err != nil {
		return nil, err
	}

	// htab entries are 8 bytes on a 64-aligned base: the observed line
	// offset is 64*(hp>>3), so obs = lineOff/64 recovers hp>>3 exactly.
	obsSeq := make([]uint64, len(offs))
	for k, off := range offs {
		if off == recovery.UnknownObservation || off < 0 {
			// A lost observation breaks the replay locally; substitute 0
			// and let the accuracy metric account for the damage.
			continue
		}
		obsSeq[k] = uint64(off / 64)
	}
	cands, err := recovery.RecoverLZW(obsSeq, 3, func(first byte) recovery.EntReplayer {
		return newLZWGadgetReplay(first)
	})
	if err != nil {
		return nil, fmt.Errorf("zipchannel: recovery: %w", err)
	}
	best, err := recovery.BestLZW(cands)
	if err != nil {
		return nil, err
	}

	res := r.res
	res.Recovered = best.Plaintext
	okBytes, okBits := 0, 0
	for i := range input {
		var got byte
		if i < len(best.Plaintext) {
			got = best.Plaintext[i]
		}
		if got == input[i] {
			okBytes++
		}
		diff := got ^ input[i]
		for b := 0; b < 8; b++ {
			if diff&(1<<uint(b)) == 0 {
				okBits++
			}
		}
	}
	if len(input) > 0 {
		res.ByteAcc = float64(okBytes) / float64(len(input))
		res.BitAcc = float64(okBits) / float64(len(input)*8)
	}
	res.Elapsed = time.Since(start)
	r.finish(res)
	return res, nil
}
