package zipchannel

import (
	"reflect"
	"testing"

	"github.com/zipchannel/zipchannel/internal/corpus"
	"github.com/zipchannel/zipchannel/internal/nn"
)

// TestPageTimingFingerprint trains the MLP on jittered page-timing
// traces and checks it identifies which dataset occupies a page far
// above chance — the content-fingerprinting face of the channel.
func TestPageTimingFingerprint(t *testing.T) {
	files := PageFingerprintFiles(1, 6)
	ds, err := BuildPageTimingDataset(files, PageFingerprintConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 6*20 {
		t.Fatalf("dataset size %d, want 120", len(ds))
	}
	train, _, test := nn.Split(ds, 0.8, 0.1, 4)
	m, err := nn.New(5, len(ds[0].X), 64, len(files))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(train, nn.TrainConfig{Epochs: 200, LR: 0.1, LRDecay: 0.99}); err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 { // chance is ~0.17 for 6 classes
		t.Fatalf("timing-trace fingerprint accuracy %.3f, want >= 0.6", acc)
	}
	t.Logf("page timing fingerprint: %d files, test accuracy %.3f", len(files), acc)
}

// The dataset builder must be byte-identical at any worker count.
func TestPageTimingDatasetParallelDeterminism(t *testing.T) {
	files := corpus.BrotliLike(1)[:4]
	mk := func(workers int) []nn.Sample {
		ds, err := BuildPageTimingDataset(files, PageFingerprintConfig{
			Seed: 7, Parallelism: workers, TracesPerFile: 5})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	if !reflect.DeepEqual(mk(1), mk(4)) {
		t.Fatal("dataset diverged across worker counts")
	}
}
