package zipchannel

import (
	"fmt"
	"time"

	"github.com/zipchannel/zipchannel/internal/recovery"
	"github.com/zipchannel/zipchannel/internal/sgx"
	"github.com/zipchannel/zipchannel/internal/victims"
)

// PageOnlyAttack is the controlled-channel-only baseline (Xu et al.,
// §VII-C): it single-steps the enclave exactly like the full attack but
// uses nothing beyond the masked page-fault addresses — no Prime+Probe,
// no CAT, no frame selection. SGX hides the low 12 address bits, so each
// iteration constrains j to a 1024-value window (vs the full attack's
// 16), recovering only the top bits of each byte. This is the gap §V-C's
// techniques close.
func PageOnlyAttack(input []byte, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	prog := victims.BzipFtab(victims.BzipFtabOptions{FtabPad: cfg.FtabPad})
	alloc := sgx.NewFrameAllocator(0x1000, cfg.Frames)
	enc, err := sgx.NewEnclave(prog, alloc)
	if err != nil {
		return nil, fmt.Errorf("zipchannel: %w", err)
	}
	enc.VM.SetInput(input)
	cfg.Obs.SetSimClock(func() uint64 { return enc.VM.Steps })
	enc.AttachObs(cfg.Obs)
	enc.VM.AttachObs(cfg.Obs)
	iterations := cfg.Obs.Counter("attack.iterations")

	st := sgx.NewStepper(enc, "quadrant", "block", "ftab")
	st.AttachObs(cfg.Obs)
	ok, err := st.Start()
	if err != nil {
		return nil, fmt.Errorf("zipchannel: start: %w", err)
	}

	ftab := prog.MustSymbol("ftab")
	res := &Result{}
	var trace recovery.BzipTrace
	for ok {
		var pageVA uint64
		done, err := st.Step(func(page uint64) { pageVA = page }, func() {
			trace = append(trace, int64(pageVA)-int64(ftab.Addr))
			res.Iterations++
			iterations.Inc()
		})
		if err != nil {
			return nil, fmt.Errorf("zipchannel: step: %w", err)
		}
		if done {
			break
		}
	}

	rec, err := recovery.RecoverBzip(trace, len(input), sgx.PageSize)
	if err != nil {
		return nil, fmt.Errorf("zipchannel: recovery: %w", err)
	}
	res.Recovered = rec.Block
	res.ByteAcc, res.BitAcc = rec.Accuracy(input)
	res.KnownBytes = rec.KnownCount()
	res.CorrectedBytes = rec.Corrected
	res.SimSteps = enc.VM.Steps
	res.Elapsed = time.Since(start)
	cfg.Obs.Gauge("attack.byte_acc").Set(res.ByteAcc)
	cfg.Obs.Gauge("attack.bit_acc").Set(res.BitAcc)
	return res, nil
}
