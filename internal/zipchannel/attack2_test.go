package zipchannel

import (
	"bytes"
	"testing"
)

// E13a: the zlib gadget in SGX leaks lowercase text nearly completely
// (§IV-B's charset recovery, now demonstrated end to end).
func TestZlibAttackLowercaseText(t *testing.T) {
	input := []byte("meetmebehindtheoldclocktoweratmidnightbringthedocumentsandtellnoone")
	res, err := ZlibAttack(input, 0x60, true, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("zlib attack: %s", res)
	if res.BitAcc < 0.9 {
		t.Errorf("charset recovery = %.3f of bits, want >= 0.9", res.BitAcc)
	}
	// Interior bytes should be recovered exactly.
	mismatches := 0
	for i := 2; i < len(input)-2; i++ {
		if res.Recovered[i] != input[i] {
			mismatches++
		}
	}
	if mismatches > len(input)/20 {
		t.Errorf("%d interior bytes wrong: %q", mismatches, res.Recovered)
	}
}

// Without charset knowledge the direct leak is ~25% of bits (§IV-B).
func TestZlibAttackRawQuarter(t *testing.T) {
	input := randomInput(2048, 51)
	res, err := ZlibAttack(input, 0, false, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BitAcc < 0.20 || res.BitAcc > 0.30 {
		t.Errorf("raw leak = %.3f of bits, want ~0.25", res.BitAcc)
	}
}

// E13b: the ncompress gadget in SGX leaks its entire input (§IV-C, end
// to end).
func TestLZWAttackFullRecovery(t *testing.T) {
	input := []byte("the rain in spain falls mainly on the plain, again and again and again!")
	res, err := LZWAttack(input, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lzw attack: %s", res)
	if res.ByteAcc < 0.98 {
		t.Errorf("byte accuracy = %.3f, want >= 0.98\nrecovered: %q", res.ByteAcc, res.Recovered)
	}
}

func TestLZWAttackRandomData(t *testing.T) {
	input := randomInput(1500, 52)
	res, err := LZWAttack(input, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ByteAcc < 0.97 {
		t.Errorf("random-data byte accuracy = %.3f, want >= 0.97", res.ByteAcc)
	}
	if !bytes.Equal(res.Recovered[1:], input[1:]) && res.ByteAcc < 0.99 {
		t.Logf("note: %d/%d iterations unknown", res.UnknownObs, res.Iterations)
	}
}
