// Package zipchannel implements the paper's first end-to-end attack (§V):
// extracting the data Bzip2 compresses inside an SGX enclave by combining
//
//   - mprotect-based single-stepping over the ftab histogram gadget
//     (Fig 5's controlled-channel state machine),
//   - the masked page-fault address for the accessed virtual page (§V-B),
//   - Prime+Probe over the 64 line-sets of that page for the page offset
//     (§V-C), with
//   - Intel CAT partitioning to shut out other-core noise (§V-C1), and
//   - frame selection to dodge the kernel's fixed fault-handling cache
//     footprint (§V-C2),
//
// and finally inverting the observed line trace into plaintext (§V-D,
// implemented in the recovery package).
package zipchannel

import (
	"fmt"
	"time"

	"github.com/zipchannel/zipchannel/internal/cache"
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/recovery"
	"github.com/zipchannel/zipchannel/internal/sgx"
	"github.com/zipchannel/zipchannel/internal/victims"
)

// Actor ids on the shared cache.
const (
	actorVictim   = 1
	actorAttacker = 2
	actorKernel   = 3 // fault/mprotect handling on the attack core
	actorOther    = 4 // unrelated applications on other cores
)

// CAT classes of service.
const (
	cosAttack = 1 // victim + attacker + kernel: the attack core
	cosOther  = 2 // everything else
)

// Config tunes the attack and its ablations.
type Config struct {
	Cache cache.Config

	// UseCAT isolates the attack core's ways from other-application noise
	// (§V-C1). Disabling it is ablation E7a-1.
	UseCAT bool
	// UseFrameSelection vets/remaps ftab frames onto quiet cache sets
	// (§V-C2). Disabling it is ablation E7a-2.
	UseFrameSelection bool
	// MaxRemapsPerPage bounds the frame search (default 16).
	MaxRemapsPerPage int

	// KernelNoiseLines is how many fixed kernel lines each fault or
	// mprotect touches (default 32; 0 disables).
	KernelNoiseLines int
	// OtherNoiseRate is the expected number of other-application accesses
	// per transition (0 disables).
	OtherNoiseRate float64

	// FtabPad offsets ftab from cache-line alignment (default 20, the
	// paper's misaligned reality; 64 yields the aligned variant).
	FtabPad int

	// Oblivious attacks the §VIII mitigation variant of the victim (one
	// write per ftab cache line per input byte) instead of the vulnerable
	// gadget: experiment E11.
	Oblivious bool

	// Frames is the physical frame pool size (default 32768 = 128 MiB,
	// the paper's EPC bound).
	Frames uint64

	Seed int64

	// Obs receives the full attack telemetry (cache, VM, enclave,
	// stepper, Prime+Probe, and attack.* counters). The registry's sim
	// clock is wired to the victim VM's retired-instruction count. When
	// nil the attack keeps a private registry, so Result counters still
	// fill in.
	Obs *obs.Registry `json:"-"`

	// Faults is the chaos-run injection registry. The attack consults
	// attacker.pp.timer (latency kind: jittered timer readings, filtered
	// by the attacker's median-of-TimerSamples classifier),
	// sgx.stepper.protect (error kind: failed permission flips, retried
	// with extra kernel noise), and sgx.stepper.transition (latency kind:
	// injected noise storms in the measurement window). Nil — the default
	// — leaves every measurement path byte-identical to a fault-free
	// build. Excluded from manifests: arming faults is a property of a
	// chaos run, not of the attack configuration it perturbs.
	Faults *fault.Registry `json:"-"`
	// TimerSamples is the attacker's per-line timer-reading count for
	// median filtering (default attacker.DefaultTimerSamples; consulted
	// only when Faults arms attacker.pp.timer).
	TimerSamples int `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.MaxRemapsPerPage == 0 {
		c.MaxRemapsPerPage = 16
	}
	if c.FtabPad == 0 {
		c.FtabPad = 20
	}
	if c.Frames == 0 {
		c.Frames = 32768
	}
	return c
}

// DefaultConfig is the paper's full-strength configuration.
func DefaultConfig() Config {
	return Config{
		UseCAT:            true,
		UseFrameSelection: true,
		KernelNoiseLines:  32,
		OtherNoiseRate:    4,
		FtabPad:           20,
		Cache:             cache.Config{},
	}
}

// Result reports one attack run.
type Result struct {
	Recovered []byte
	ByteAcc   float64
	BitAcc    float64

	Iterations  int
	UnknownObs  int // iterations with zero or ambiguous hot sets
	Remaps      int // frame-selection remappings performed
	VettedPages int
	// KnownBytes and CorrectedBytes report recovery confidence: bytes
	// pinned to one candidate, and the subset only the cross-iteration
	// redundancy (§V-D) resolved. Filled by the bzip2 attacks.
	KnownBytes     int
	CorrectedBytes int
	// SimSteps is the victim's retired-instruction count — the attack's
	// deterministic duration. Elapsed is the wall clock, excluded from
	// String so that fixed-seed output stays byte-identical across runs
	// and parallelism levels.
	SimSteps uint64
	Elapsed  time.Duration

	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	CacheFlushes   uint64
}

// CacheAccesses returns hits+misses.
func (r *Result) CacheAccesses() uint64 { return r.CacheHits + r.CacheMisses }

func (r *Result) String() string {
	return fmt.Sprintf("recovered %d bytes: %.2f%% bytes, %.3f%% bits correct (%d/%d iterations unknown, %d remaps, %d sim steps)",
		len(r.Recovered), 100*r.ByteAcc, 100*r.BitAcc, r.UnknownObs, r.Iterations, r.Remaps, r.SimSteps)
}

// pageState is the attacker's bookkeeping for one vetted ftab page.
type pageState struct {
	frame   uint64
	sets    []int        // global set per line index 0..63
	evict   [][]uint64   // eviction set per line index
	exclude map[int]bool // sets known-noisy, treated as false positives
}

// Attack runs the end-to-end extraction of input while the enclave
// compresses it, and scores the recovery against the ground truth.
func Attack(input []byte, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	vopts := victims.BzipFtabOptions{FtabPad: cfg.FtabPad}
	prog := victims.BzipFtab(vopts)
	if cfg.Oblivious {
		prog = victims.BzipFtabOblivious(vopts)
	}
	r, err := newRig(prog, input, cfg)
	if err != nil {
		return nil, err
	}

	st := sgx.NewStepper(r.enc, "quadrant", "block", "ftab")
	st.AttachObs(r.reg)
	st.OnTransition = r.injectNoise
	st.FaultProtect = cfg.Faults.Point("sgx.stepper.protect")
	st.FaultTransition = cfg.Faults.Point("sgx.stepper.transition")
	r.dryTransition = st.DryTransition

	ftab := prog.MustSymbol("ftab")
	ok, err := st.Start()
	if err != nil {
		return nil, fmt.Errorf("zipchannel: start: %w", err)
	}

	var trace recovery.BzipTrace
	for ok {
		var (
			ps      *pageState
			pageVA  uint64
			stepErr error
		)
		done, err := st.Step(
			func(page uint64) {
				pageVA = page
				if ps, stepErr = r.pageFor(page); stepErr != nil {
					return
				}
				r.prime(ps)
			},
			func() {
				if ps == nil {
					return
				}
				if line := r.probeLine(ps); line >= 0 {
					lineVA := pageVA + uint64(line*r.c.Config().LineSize)
					trace = append(trace, int64(lineVA)-int64(ftab.Addr))
				} else {
					trace = append(trace, recovery.UnknownObservation)
					r.unknownObs.Inc()
				}
				r.iterations.Inc()
			},
		)
		if stepErr != nil {
			return nil, fmt.Errorf("zipchannel: vetting: %w", stepErr)
		}
		if err != nil {
			return nil, fmt.Errorf("zipchannel: step: %w", err)
		}
		if done {
			break
		}
	}

	rec, err := recovery.RecoverBzip(trace, len(input), r.c.Config().LineSize)
	if err != nil {
		return nil, fmt.Errorf("zipchannel: recovery: %w", err)
	}
	res := r.res
	res.Recovered = rec.Block
	res.ByteAcc, res.BitAcc = rec.Accuracy(input)
	res.KnownBytes = rec.KnownCount()
	res.CorrectedBytes = rec.Corrected
	res.Elapsed = time.Since(start)
	r.finish(res)
	return res, nil
}
