package zipchannel

import (
	"fmt"

	"github.com/zipchannel/zipchannel/internal/attacker"
	"github.com/zipchannel/zipchannel/internal/cache"
	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/sgx"
)

// rig is the shared attack harness: the cache with CAT partitioning, the
// enclave wired to it, the noise sources, the Prime+Probe attacker, and
// the frame-selection page vetting. All three end-to-end attacks (bzip2,
// zlib, ncompress) run on it.
type rig struct {
	cfg         Config
	c           *cache.Cache
	enc         *sgx.Enclave
	pp          *attacker.PrimeProbe
	monitorWays int
	injectNoise func()
	pages       map[uint64]*pageState
	res         *Result
	// dryTransition replays one permission-flip's worth of system noise
	// for frame vetting.
	dryTransition func()

	// reg is the attack's registry (cfg.Obs or a private one); the
	// attack.* counters below are the single storage for the run's
	// bookkeeping — Result copies them out in finish.
	reg            *obs.Registry
	span           obs.Span
	iterations     *obs.Counter
	unknownObs     *obs.Counter
	remaps         *obs.Counter
	vettedPages    *obs.Counter
	framesAccepted *obs.Counter
	framesRejected *obs.Counter
	vetTimeouts    *obs.Counter
}

// newRig builds the harness around a victim program.
func newRig(prog *isa.Program, input []byte, cfg Config) (*rig, error) {
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry() // private: Result counters still fill
	}
	cfg.Cache.Obs = reg
	c := cache.New(cfg.Cache)
	ways := c.Config().Ways
	monitorWays := ways
	if cfg.UseCAT {
		// Reduce the attack core to a single way (§V-C1) and fence the
		// rest of the system into the remaining ways.
		c.SetCoSMask(cosAttack, 0b1)
		c.SetCoSMask(cosOther, (uint64(1)<<uint(ways))-2)
		for _, a := range []int{actorVictim, actorAttacker, actorKernel} {
			c.AssignActor(a, cosAttack)
		}
		c.AssignActor(actorOther, cosOther)
		monitorWays = 1
	}

	alloc := sgx.NewFrameAllocator(0x1000, cfg.Frames)
	enc, err := sgx.NewEnclave(prog, alloc)
	if err != nil {
		return nil, fmt.Errorf("zipchannel: %w", err)
	}
	enc.VM.SetInput(input)
	enc.SetObserver(func(paddr uint64, _ int, _ bool) {
		c.Access(actorVictim, paddr)
	})
	// The victim's retired-instruction count is the run's sim clock:
	// spans and trace events are stamped with it, so fixed-seed runs
	// produce identical timelines.
	reg.SetSimClock(func() uint64 { return enc.VM.Steps })
	enc.AttachObs(reg)
	enc.VM.AttachObs(reg)

	kernel := cache.NewFixedNoise(actorKernel, cfg.KernelNoiseLines, 1<<40, 1<<40+1<<26, cfg.Seed+1)
	other := cache.NewNoise(actorOther, cfg.OtherNoiseRate, 1<<41, 1<<41+1<<28, cfg.Seed+2)
	injectNoise := func() {
		kernel.Tick(c)
		other.Tick(c)
	}
	enc.OnFault = injectNoise

	pp := attacker.NewPrimeProbe(c, actorAttacker, 1<<42, 1<<26)
	pp.AttachObs(reg)
	pp.Calibrate(128)
	// Chaos wiring happens after calibration: the threshold is learned
	// from clean probes (a real attacker calibrates offline), then every
	// live measurement goes through the noisy timer + median filter.
	if cfg.Faults != nil {
		cfg.Faults.AttachObs(reg)
		pp.TimerFault = cfg.Faults.Point("attacker.pp.timer")
		pp.TimerSamples = cfg.TimerSamples
	}

	return &rig{
		cfg:            cfg,
		c:              c,
		enc:            enc,
		pp:             pp,
		monitorWays:    monitorWays,
		injectNoise:    injectNoise,
		pages:          map[uint64]*pageState{},
		res:            &Result{},
		reg:            reg,
		span:           reg.StartSpan("attack.run"),
		iterations:     reg.Counter("attack.iterations"),
		unknownObs:     reg.Counter("attack.unknown_obs"),
		remaps:         reg.Counter("attack.remaps"),
		vettedPages:    reg.Counter("attack.vetted_pages"),
		framesAccepted: reg.Counter("attack.frames_accepted"),
		framesRejected: reg.Counter("attack.frames_rejected"),
		vetTimeouts:    reg.Counter("attack.vet_timeouts"),
	}, nil
}

// finish copies the run's counters into res, publishes the recovery
// confidence as gauges, and closes the attack.run span. Call once, after
// recovery scored the result.
func (r *rig) finish(res *Result) {
	res.SimSteps = r.enc.VM.Steps
	res.Iterations = int(r.iterations.Value())
	res.UnknownObs = int(r.unknownObs.Value())
	res.Remaps = int(r.remaps.Value())
	res.VettedPages = int(r.vettedPages.Value())
	res.CacheHits = r.c.Hits()
	res.CacheMisses = r.c.Misses()
	res.CacheEvictions = r.c.Evictions()
	res.CacheFlushes = r.c.Flushes()
	r.reg.Counter("attack.known_bytes").Add(uint64(res.KnownBytes))
	r.reg.Counter("attack.corrected_bytes").Add(uint64(res.CorrectedBytes))
	r.reg.Gauge("attack.byte_acc").Set(res.ByteAcc)
	r.reg.Gauge("attack.bit_acc").Set(res.BitAcc)
	r.reg.Emit("attack.result", map[string]any{
		"iterations":  res.Iterations,
		"unknown_obs": res.UnknownObs,
		"byte_acc":    res.ByteAcc,
		"bit_acc":     res.BitAcc,
	})
	r.c.EmitHeatmap()
	r.span.End()
}

// vetPage builds (and, with frame selection, searches for) the monitored
// eviction sets of one victim table page (§V-C2).
func (r *rig) vetPage(pageVA uint64) (*pageState, error) {
	ps := &pageState{exclude: map[int]bool{}}
	remaps := 0
	for {
		frame, ok := r.enc.FrameOf(pageVA)
		if !ok {
			return nil, fmt.Errorf("zipchannel: unmapped victim page %#x", pageVA)
		}
		ps.frame = frame
		ps.sets = ps.sets[:0]
		ps.evict = ps.evict[:0]
		for k := 0; k < sgx.PageSize/r.c.Config().LineSize; k++ {
			paddr := frame*sgx.PageSize + uint64(k*r.c.Config().LineSize)
			gs := r.c.GlobalSet(paddr)
			ps.sets = append(ps.sets, gs)
			ev, err := r.pp.EvictionSet(gs, r.monitorWays)
			if err != nil {
				return nil, err
			}
			ps.evict = append(ps.evict, ev)
		}
		if !r.cfg.UseFrameSelection {
			return ps, nil
		}
		// Dry-run: prime, replay the transition noise, probe (§V-C2).
		for _, ev := range ps.evict {
			r.pp.Prime(ev)
		}
		if r.dryTransition != nil {
			r.dryTransition()
		}
		r.injectNoise() // a fault delivery's worth of kernel traffic
		noisy := map[int]bool{}
		for k, ev := range ps.evict {
			if n, _ := r.pp.Probe(ev); n > 0 {
				noisy[ps.sets[k]] = true
			}
		}
		if len(noisy) == 0 {
			r.framesAccepted.Inc()
			return ps, nil
		}
		r.framesRejected.Inc()
		if remaps >= r.cfg.MaxRemapsPerPage || r.enc.FramesRemaining() == 0 {
			// Give up searching: log the noisy sets as known false
			// positives (the paper's timeout path).
			r.vetTimeouts.Inc()
			ps.exclude = noisy
			return ps, nil
		}
		if _, err := r.enc.RemapPage(pageVA); err != nil {
			r.vetTimeouts.Inc()
			ps.exclude = noisy
			return ps, nil
		}
		remaps++
		r.remaps.Inc()
		r.reg.Emit("attack.remap", map[string]any{"page": pageVA, "noisy_sets": len(noisy)})
	}
}

// pageFor returns (vetting on first use) the state for a victim page.
func (r *rig) pageFor(pageVA uint64) (*pageState, error) {
	if ps, ok := r.pages[pageVA]; ok {
		return ps, nil
	}
	ps, err := r.vetPage(pageVA)
	if err != nil {
		return nil, err
	}
	r.pages[pageVA] = ps
	r.vettedPages.Inc()
	return ps, nil
}

// prime fills the monitored sets of a vetted page.
func (r *rig) prime(ps *pageState) {
	for k, ev := range ps.evict {
		if !ps.exclude[ps.sets[k]] {
			r.pp.Prime(ev)
		}
	}
}

// probeLine measures the page's sets and returns the index (0-63) of the
// single hot line, or -1 when zero or multiple sets fired (an unknown
// observation).
func (r *rig) probeLine(ps *pageState) int {
	hot := -1
	count := 0
	for k, ev := range ps.evict {
		if ps.exclude[ps.sets[k]] {
			continue
		}
		if n, _ := r.pp.Probe(ev); n > 0 {
			hot = k
			count++
		}
	}
	if count != 1 {
		return -1
	}
	return hot
}
