package zipchannel

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/obs"
)

// runWithRegistry runs the bzip2 attack on a fixed input under a fresh
// registry and returns the marshalled snapshot.
func runWithRegistry(t *testing.T) (*Result, []byte) {
	t.Helper()
	input := make([]byte, 192)
	rand.New(rand.NewSource(21)).Read(input)
	cfg := DefaultConfig()
	cfg.Seed = 21
	cfg.Obs = obs.NewRegistry()
	res, err := Attack(input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Obs.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return res, b
}

// TestSnapshotDeterministic is the telemetry contract: two fixed-seed
// attack runs must produce byte-identical metric snapshots. Wall-clock
// data (span durations) lives only in the trace stream and the hidden
// wall table, never the snapshot.
func TestSnapshotDeterministic(t *testing.T) {
	_, snap1 := runWithRegistry(t)
	_, snap2 := runWithRegistry(t)
	if !bytes.Equal(snap1, snap2) {
		t.Errorf("fixed-seed snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", snap1, snap2)
	}
	if bytes.Contains(snap1, []byte("wall")) {
		t.Errorf("snapshot leaks wall-clock data:\n%s", snap1)
	}
}

// TestAttackTelemetry checks that the full attack populates every layer
// of the telemetry: VM, cache, SGX stepper, Prime+Probe, and recovery.
func TestAttackTelemetry(t *testing.T) {
	res, snap := runWithRegistry(t)
	for _, key := range []string{
		`"vm.instructions"`, `"vm.faults"`,
		`"cache.hits"`, `"cache.misses"`, `"cache.evictions"`,
		`"sgx.faults"`, `"sgx.step.transitions"`, `"sgx.step.iterations"`,
		`"pp.primes"`, `"pp.probes"`, `"pp.probe_latency"`,
		`"attack.iterations"`, `"attack.known_bytes"`,
		`"attack.bit_acc"`, `"attack.byte_acc"`,
	} {
		if !bytes.Contains(snap, []byte(key)) {
			t.Errorf("snapshot missing %s", key)
		}
	}
	if res.CacheAccesses() == 0 {
		t.Error("cache accessors returned nothing")
	}
	if res.KnownBytes == 0 {
		t.Error("KnownBytes not filled from recovery")
	}
}

// TestTraceStream checks the NDJSON trace of an attack run: events are
// sequenced, sim-stamped with the victim's retired-instruction clock,
// and include the span and heatmap emitted at finish.
func TestTraceStream(t *testing.T) {
	input := make([]byte, 128)
	rand.New(rand.NewSource(33)).Read(input)
	cfg := DefaultConfig()
	cfg.Seed = 33
	cfg.Obs = obs.NewRegistry()
	var buf bytes.Buffer
	sink := obs.NewTraceSink(&buf)
	cfg.Obs.SetTraceSink(sink)
	if _, err := Attack(input, cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected at least result+span events, got %d lines", len(lines))
	}
	for _, want := range []string{`"ev":"attack.result"`, `"ev":"span"`, `"ev":"cache.heatmap"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	for i, ln := range lines {
		if !strings.HasPrefix(ln, "{") || !strings.HasSuffix(ln, "}") {
			t.Fatalf("line %d is not a JSON object: %q", i, ln)
		}
	}
}
