package zipchannel

import (
	"os"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// chaosAttackFaults is the measurement-noise profile of make test-chaos:
// jittered timer readings big enough (±160 cycles against a ~120-cycle
// threshold) to flip an unfiltered hit/miss classification, occasional
// failed mprotects (retried with extra kernel noise), and injected noise
// storms inside the attack window.
const chaosAttackFaults = "attacker.pp.timer=latency:0.08:160," +
	"sgx.stepper.protect=error:0.01," +
	"sgx.stepper.transition=latency:0.02:4"

func chaosAttackConfig(t *testing.T, seed int64) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Obs = obs.NewRegistry()
	cfg.Faults = fault.NewRegistry(seed + 1)
	if err := cfg.Faults.ArmAll(chaosAttackFaults); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestChaosAttackRecoversUnderInjectedNoise: the paper's headline >99%
// recovery must survive the chaos profile — the median filter absorbs the
// timer jitter, protect retries absorb the failed flips, and the §V-D
// redundancy absorbs whatever the noise storms turn into unknown
// observations.
func TestChaosAttackRecoversUnderInjectedNoise(t *testing.T) {
	input := randomInput(2048, 42)
	cfg := chaosAttackConfig(t, 9)
	res, err := Attack(input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos result: %s", res)
	if res.BitAcc < 0.99 {
		t.Errorf("bit accuracy under injected noise = %.4f, want >= 0.99", res.BitAcc)
	}
	if res.Iterations != len(input) {
		t.Errorf("iterations = %d, want %d (protect retries must not drop steps)", res.Iterations, len(input))
	}

	// The faults must actually have fired — otherwise this test is
	// vacuously green.
	snap := cfg.Obs.Snapshot()
	for _, c := range []string{
		"fault.attacker.pp.timer.injected",
		"fault.sgx.stepper.protect.injected",
		"fault.sgx.stepper.transition.injected",
		"pp.noisy_reads",
		"sgx.step.protect_retries",
		"sgx.step.noise_storms",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s = 0; the chaos profile did not exercise its site", c)
		}
	}
}

// TestChaosAttackReplayDeterministic: one seed, two runs, identical
// injected faults and identical recovery — the whole point of driving
// injection from par.SplitSeed streams.
func TestChaosAttackReplayDeterministic(t *testing.T) {
	input := randomInput(1024, 7)
	run := func() (*Result, *obs.Snapshot) {
		res, err := Attack(input, chaosAttackConfig(t, 31))
		if err != nil {
			t.Fatal(err)
		}
		return res, nil
	}
	a, _ := run()
	b, _ := run()
	if string(a.Recovered) != string(b.Recovered) {
		t.Error("recovered bytes differ between identical chaos runs")
	}
	if a.Iterations != b.Iterations || a.UnknownObs != b.UnknownObs ||
		a.Remaps != b.Remaps || a.SimSteps != b.SimSteps ||
		a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses {
		t.Errorf("replay diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
}

// TestChaosMedianFilterCarriesTheAttack: ablation of the resilience
// mechanism itself. With a single unfiltered timer reading per line
// (TimerSamples=1) the same jitter must do real damage relative to the
// filtered run — otherwise the filter is dead code and the chaos profile
// proves nothing.
func TestChaosMedianFilterCarriesTheAttack(t *testing.T) {
	input := randomInput(1024, 13)

	filtered, err := Attack(input, chaosAttackConfig(t, 17))
	if err != nil {
		t.Fatal(err)
	}
	raw := chaosAttackConfig(t, 17)
	raw.TimerSamples = 1
	unfiltered, err := Attack(input, raw)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("filtered:   %s", filtered)
	t.Logf("unfiltered: %s", unfiltered)
	if filtered.BitAcc < 0.99 {
		t.Errorf("filtered bit accuracy = %.4f, want >= 0.99", filtered.BitAcc)
	}
	if unfiltered.UnknownObs <= filtered.UnknownObs {
		t.Errorf("unfiltered run saw %d unknown observations vs %d filtered — jitter had no effect to filter",
			unfiltered.UnknownObs, filtered.UnknownObs)
	}
}

// TestChaosAttackFull10KB is the acceptance run (>99% of a 10 KB buffer
// under injected cache noise). It costs tens of seconds, so tier-1 runs
// skip it; make test-chaos sets ZIPCHAOS_FULL=1.
func TestChaosAttackFull10KB(t *testing.T) {
	if os.Getenv("ZIPCHAOS_FULL") == "" {
		t.Skip("set ZIPCHAOS_FULL=1 to run the 10 KB chaos acceptance attack")
	}
	input := randomInput(10<<10, 1234)
	res, err := Attack(input, chaosAttackConfig(t, 99))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10 KB chaos result: %s", res)
	if res.BitAcc < 0.99 {
		t.Errorf("10 KB bit accuracy under injected noise = %.4f, want >= 0.99", res.BitAcc)
	}
}
