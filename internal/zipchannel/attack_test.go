package zipchannel

import (
	"math/rand"
	"testing"

	"github.com/zipchannel/zipchannel/internal/cache"
)

func randomInput(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// The headline result (§V-E): full-strength attack on random data leaks
// over 99% of the bits.
func TestAttackRandomDataOver99Percent(t *testing.T) {
	input := randomInput(2048, 42)
	res, err := Attack(input, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %s", res)
	if res.BitAcc < 0.99 {
		t.Errorf("bit accuracy = %.4f, want >= 0.99 (paper: >99%%)", res.BitAcc)
	}
	if res.Iterations != len(input) {
		t.Errorf("iterations = %d, want %d", res.Iterations, len(input))
	}
}

func TestAttackTextInput(t *testing.T) {
	input := []byte("Call me Ishmael. Some years ago - never mind how long precisely - " +
		"having little or no money in my purse, and nothing particular to interest me " +
		"on shore, I thought I would sail about a little and see the watery part of the world.")
	res, err := Attack(input, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ByteAcc < 0.95 {
		t.Errorf("byte accuracy = %.4f, want >= 0.95\nrecovered: %q", res.ByteAcc, res.Recovered)
	}
}

// Without noise at all, even the no-CAT/no-frame-selection attack is
// exact; with noise, the mitigations must close most of the gap.
func TestAttackNoiselessExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseCAT = false
	cfg.UseFrameSelection = false
	cfg.KernelNoiseLines = 0
	cfg.OtherNoiseRate = 0
	input := randomInput(1024, 7)
	res, err := Attack(input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitAcc < 0.999 {
		t.Errorf("noiseless bit accuracy = %.4f, want ~1.0", res.BitAcc)
	}
	if res.UnknownObs != 0 {
		t.Errorf("noiseless run had %d unknown observations", res.UnknownObs)
	}
}

// Ablation (E7a): the full attack must beat the version without CAT and
// without frame selection under the same noise.
func TestAblationTechniquesImproveAccuracy(t *testing.T) {
	input := randomInput(1024, 99)

	full := DefaultConfig()
	full.Seed = 5

	bare := full
	bare.UseCAT = false
	bare.UseFrameSelection = false

	resFull, err := Attack(input, full)
	if err != nil {
		t.Fatal(err)
	}
	resBare, err := Attack(input, bare)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full: %s", resFull)
	t.Logf("bare: %s", resBare)
	if resFull.BitAcc < resBare.BitAcc {
		t.Errorf("full attack (%.4f) should not lose to bare attack (%.4f)",
			resFull.BitAcc, resBare.BitAcc)
	}
	if resFull.BitAcc < 0.99 {
		t.Errorf("full attack bit accuracy = %.4f, want >= 0.99", resFull.BitAcc)
	}
}

func TestAttackAlignedFtab(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FtabPad = 64 // cache-line aligned: no off-by-one ambiguity at all
	input := randomInput(512, 3)
	res, err := Attack(input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitAcc < 0.99 {
		t.Errorf("aligned-ftab accuracy = %.4f, want >= 0.99", res.BitAcc)
	}
}

func TestAttackEmptyInput(t *testing.T) {
	res, err := Attack(nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recovered) != 0 || res.Iterations != 0 {
		t.Errorf("empty input should produce an empty result: %+v", res)
	}
}

func TestResultString(t *testing.T) {
	res := &Result{Recovered: make([]byte, 10), ByteAcc: 0.5, BitAcc: 0.9}
	if res.String() == "" {
		t.Error("String should render")
	}
}

// The controlled-channel-only baseline (page faults, no cache probing)
// recovers substantially less than the full attack: the gap §V-C's
// techniques close.
func TestPageOnlyBaselineWeaker(t *testing.T) {
	input := randomInput(1024, 21)
	pg, err := PageOnlyAttack(input, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Attack(input, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("page-only: %s", pg)
	t.Logf("full:      %s", full)
	if pg.BitAcc < 0.55 {
		t.Errorf("page channel alone should still beat guessing: %.3f", pg.BitAcc)
	}
	if pg.BitAcc > 0.97 {
		t.Errorf("page channel alone should not reach the full attack: %.3f", pg.BitAcc)
	}
	if full.BitAcc-pg.BitAcc < 0.05 {
		t.Errorf("cache channel should add information: full %.3f vs page-only %.3f",
			full.BitAcc, pg.BitAcc)
	}
}

// The §VIII oblivious victim defeats even a noiseless attacker.
func TestObliviousVictimDefeatsAttack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Oblivious = true
	cfg.KernelNoiseLines = 0
	cfg.OtherNoiseRate = 0
	input := randomInput(96, 33)
	res, err := Attack(input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitAcc > 0.8 {
		t.Errorf("oblivious victim leaked %.1f%% of bits", 100*res.BitAcc)
	}
	if res.UnknownObs != res.Iterations {
		t.Errorf("every iteration should be ambiguous: %d/%d", res.UnknownObs, res.Iterations)
	}
}

// Exhausting the frame pool must degrade gracefully, not fail.
func TestFramePoolExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frames = 150 // barely more than the enclave's own pages
	input := randomInput(512, 44)
	res, err := Attack(input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != len(input) {
		t.Errorf("attack should complete despite pool pressure: %d/%d", res.Iterations, len(input))
	}
	// Accuracy may drop (noisy sets can no longer be dodged) but the
	// excluded-set fallback keeps most of the signal.
	if res.BitAcc < 0.5 {
		t.Errorf("accuracy collapsed under pool pressure: %.3f", res.BitAcc)
	}
}

// The attack must hold up across LLC replacement policies: with CAT
// reducing the monitored region to one way, the policy choice cannot
// matter, and even without CAT the attack keeps a clear edge.
func TestAttackAcrossReplacementPolicies(t *testing.T) {
	input := randomInput(512, 77)
	for _, pol := range []cache.Policy{cache.LRU, cache.TreePLRU, cache.RandomRepl} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cache.Replacement = pol
			res, err := Attack(input, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.BitAcc < 0.99 {
				t.Errorf("policy %v: bit accuracy %.3f < 0.99 (CAT should neutralize policy)", pol, res.BitAcc)
			}
		})
	}
}
