package zipchannel

// The fingerprinting variant of the memory-compression channel: even
// when no attacker bytes share the victim's page, *which dataset* a
// page holds leaks through store/load timing alone — compressibility is
// content-specific, and the cost model makes store time track matcher
// work. An observer who can time page traffic (a co-tenant watching
// swap latency) classifies the victim's working set without reading a
// byte. The classifier is the repo's deterministic MLP (internal/nn),
// mirroring the Fig 7 bzip2 fingerprinting experiment but with timing
// traces instead of cache traces.

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/zipchannel/zipchannel/internal/corpus"
	"github.com/zipchannel/zipchannel/internal/nn"
	"github.com/zipchannel/zipchannel/internal/pagestore"
	"github.com/zipchannel/zipchannel/internal/par"
)

// PageFingerprintConfig tunes BuildPageTimingDataset.
type PageFingerprintConfig struct {
	// PageSize is the pagestore page size (default 1024 — small pages
	// keep the quick suite fast while preserving per-page variance).
	PageSize int
	// PagesPerFile is how many leading pages of each file form one
	// trace (default 8); files shorter than the window wrap around.
	PagesPerFile int
	// TracesPerFile is how many jittered observations to emit per file
	// (default 20).
	TracesPerFile int
	// JitterProb and JitterMax model the observer's noisy timer: each
	// reading is independently offset by uniform ±JitterMax with
	// probability JitterProb (defaults 0.25 and 2000 — the same noise
	// the recovery attack defeats).
	JitterProb float64
	JitterMax  int64
	// Codec selects the page codec (pagestore default when empty).
	Codec string
	// Seed drives trace jitter via par.SplitSeed streams.
	Seed int64
	// Parallelism fans files across workers (ForEach slots, so the
	// dataset is byte-identical at any worker count).
	Parallelism int
}

func (c PageFingerprintConfig) withDefaults() PageFingerprintConfig {
	if c.PageSize == 0 {
		c.PageSize = 1024
	}
	if c.PagesPerFile == 0 {
		c.PagesPerFile = 8
	}
	if c.TracesPerFile == 0 {
		c.TracesPerFile = 20
	}
	if c.JitterProb == 0 {
		c.JitterProb = 0.25
	}
	if c.JitterMax == 0 {
		c.JitterMax = 2000
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	return c
}

// BuildPageTimingDataset stores each file's leading pages and emits
// nn.Samples whose features are the jittered per-page store and load
// step readings (normalized per byte), labeled by file index.
func BuildPageTimingDataset(files []corpus.File, cfg PageFingerprintConfig) ([]nn.Sample, error) {
	cfg = cfg.withDefaults()
	perFile := make([][]nn.Sample, len(files))
	err := par.ForEach(cfg.Parallelism, len(files), func(fi int) error {
		f := files[fi]
		s := pagestore.New(pagestore.Config{PageSize: cfg.PageSize, Codec: cfg.Codec,
			PoolBytes: int64(cfg.PagesPerFile+1) * int64(cfg.PageSize)})
		// Deterministic base trace: store then load each page window.
		base := make([]int64, 0, 2*cfg.PagesPerFile)
		for p := 0; p < cfg.PagesPerFile; p++ {
			body := filePage(f.Data, p, cfg.PageSize)
			id := fmt.Sprintf("pg%d", p)
			wi, err := s.Write(id, body)
			if err != nil {
				return fmt.Errorf("fingerprint %s page %d: %w", f.Name, p, err)
			}
			_, ri, err := s.Read(id)
			if err != nil {
				return fmt.Errorf("fingerprint %s page %d: %w", f.Name, p, err)
			}
			base = append(base, wi.Steps, ri.Steps)
		}
		rng := rand.New(rand.NewSource(par.SplitSeed(cfg.Seed, "pagefp/"+f.Name)))
		samples := make([]nn.Sample, 0, cfg.TracesPerFile)
		for tr := 0; tr < cfg.TracesPerFile; tr++ {
			x := make([]float64, len(base))
			for j, steps := range base {
				reading := steps
				if rng.Float64() < cfg.JitterProb {
					reading += rng.Int63n(2*cfg.JitterMax+1) - cfg.JitterMax
				}
				// Per-byte normalization keeps features O(1) for the MLP.
				x[j] = float64(reading) / float64(cfg.PageSize) / 32.0
			}
			samples = append(samples, nn.Sample{X: x, Label: fi})
		}
		perFile[fi] = samples
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []nn.Sample
	for _, s := range perFile {
		out = append(out, s...)
	}
	standardize(out)
	return out, nil
}

// standardize zero-means and unit-scales each feature dimension over
// the whole dataset. Raw per-byte step readings sit in a narrow
// positive band (the MLP's plateau regime); the observer can always
// rescale its own measurements, so this leaks nothing extra. Applied
// to the assembled dataset, it is independent of worker count.
func standardize(ds []nn.Sample) {
	if len(ds) == 0 {
		return
	}
	d := len(ds[0].X)
	mean := make([]float64, d)
	std := make([]float64, d)
	for _, s := range ds {
		for j, v := range s.X {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(ds))
	}
	for _, s := range ds {
		for j, v := range s.X {
			std[j] += (v - mean[j]) * (v - mean[j])
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j]/float64(len(ds))) + 1e-9
	}
	for _, s := range ds {
		for j := range s.X {
			s.X[j] = (s.X[j] - mean[j]) / std[j]
		}
	}
}

// PageFingerprintFiles picks a compressibility-diverse corpus subset
// for the fingerprinting experiment. Page-granularity timing separates
// datasets by how their *content* compresses, so the interesting class
// set spans plain text, structured text, binary records, random bytes,
// and degenerate runs — not four near-identical English novels (whose
// per-page traces overlap by construction; full BrotliLike remains the
// honest stress case, quantified by the confusion matrix).
func PageFingerprintFiles(seed int64, n int) []corpus.File {
	want := []string{
		"alice29.txt", "random_org_10k.bin", "zeros", "numbers.csv",
		"html_like", "binary_struct", "ab_repetitive", "dictionary_words",
		"random_chunks", "backward65536", "quickfox_repeated", "ukkonooa",
	}
	byName := map[string]corpus.File{}
	for _, f := range corpus.BrotliLike(seed) {
		byName[f.Name] = f
	}
	if n > len(want) {
		n = len(want)
	}
	out := make([]corpus.File, 0, n)
	for _, name := range want[:n] {
		if f, ok := byName[name]; ok {
			out = append(out, f)
		}
	}
	return out
}

// filePage extracts the p-th PageSize window of data, wrapping so short
// files still fill every page in the trace window.
func filePage(data []byte, p, pageSize int) []byte {
	if len(data) == 0 {
		return make([]byte, pageSize)
	}
	out := make([]byte, pageSize)
	start := (p * pageSize) % len(data)
	for i := 0; i < pageSize; i++ {
		out[i] = data[(start+i)%len(data)]
	}
	return out
}
