package zipchannel

// The memory-compression timing attack (Schwarzl et al., PAPERS.md)
// against internal/pagestore: an attacker co-located with a secret in
// one compressed page rewrites its own region and observes only *how
// long the store took*. Because the page is compressed as a single LZ
// unit, a guess that matches the secret's prefix lengthens a back-
// reference by one byte, which removes one token from the stream —
// and one token's worth of encode time from the oracle reading. No
// cache probe, no shared memory reads: the channel is purely temporal,
// which is why it survives in settings where ZipChannel's cache channel
// is closed.
//
// Amplification mirrors the PR 6 Prime+Probe timer: the underlying
// store cost is deterministic, so under a jittered timer the attacker
// takes TimerSamples readings of one store and classifies by their
// median (attacker.FilteredReading — the shared filter).

import (
	"fmt"
	"math"

	"github.com/zipchannel/zipchannel/internal/attacker"
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/pagestore"
)

// DefaultPageCharset is the candidate alphabet for recovered secret
// bytes: the token-ish characters secrets in the wild (API keys,
// session ids) are drawn from.
const DefaultPageCharset = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// guessTerminator ends every planted guess. It is outside every sane
// charset, so a correct guess's back-reference extends exactly one byte
// past the candidate and stops — the next oracle round starts clean.
const guessTerminator = 0x01

// PageOracle is the attacker's entire view of the victim: write bytes
// into your own region of the shared page, learn the store's cost. The
// local implementation is NewStoreOracle; cmd/zippages implements the
// same interface over HTTP against a remote zipserverd.
type PageOracle interface {
	// Query rewrites the attacker region with guess and returns the
	// sim-step cost of the resulting page store.
	Query(guess []byte) (int64, error)
	// AttackerLen reports the size of the attacker-writable region.
	AttackerLen() (int, error)
}

// StoreOracle queries a local pagestore directly.
type StoreOracle struct {
	Store *pagestore.Store
	ID    string
}

// NewStoreOracle wraps a planted page of a local store.
func NewStoreOracle(s *pagestore.Store, id string) *StoreOracle {
	return &StoreOracle{Store: s, ID: id}
}

// Query implements PageOracle.
func (o *StoreOracle) Query(guess []byte) (int64, error) {
	info, err := o.Store.Write(o.ID, guess)
	if err != nil {
		return 0, err
	}
	return info.Steps, nil
}

// AttackerLen implements PageOracle.
func (o *StoreOracle) AttackerLen() (int, error) {
	data, _, err := o.Store.Read(o.ID)
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// PageAttackConfig tunes RecoverPageSecret.
type PageAttackConfig struct {
	// KnownPrefix is the plaintext format marker the attacker knows
	// precedes the secret (the CRIME trick: "key=", "Cookie: sid=").
	KnownPrefix string
	// SecretLen is how many bytes to recover.
	SecretLen int
	// Charset is the candidate alphabet (DefaultPageCharset if empty).
	Charset string

	// Obs receives pagestore_attack.* counters when non-nil.
	Obs *obs.Registry
	// Faults supplies the attacker.oracle.timer point: latency armings
	// jitter individual oracle readings, beaten by median filtering
	// over TimerSamples readings per query. Nil or disarmed leaves the
	// attack byte-identical to a fault-free build.
	Faults *fault.Registry
	// TimerSamples is the per-query reading count under a noisy timer
	// (default attacker.DefaultTimerSamples).
	TimerSamples int
}

// PageAttackResult is the outcome of one secret recovery.
type PageAttackResult struct {
	// Recovered is the attacker's reconstruction of the secret.
	Recovered []byte
	// Queries is the number of oracle stores issued.
	Queries int
	// NoisyReads counts timer readings that were jittered (0 in clean
	// runs).
	NoisyReads int
	// OracleSteps sums the filtered oracle readings — a deterministic
	// fingerprint of the run used by replay tests.
	OracleSteps int64
}

// QueriesPerByte is the attack's cost metric: oracle stores per
// recovered secret byte.
func (r *PageAttackResult) QueriesPerByte() float64 {
	if len(r.Recovered) == 0 {
		return 0
	}
	return float64(r.Queries) / float64(len(r.Recovered))
}

// Accuracy compares the recovery against the true secret byte-wise.
func (r *PageAttackResult) Accuracy(truth []byte) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := len(truth)
	if len(r.Recovered) < n {
		n = len(r.Recovered)
	}
	match := 0
	for i := 0; i < n; i++ {
		if r.Recovered[i] == truth[i] {
			match++
		}
	}
	return float64(match) / float64(len(truth))
}

// RecoverPageSecret runs the byte-by-byte recovery: for each position,
// store KnownPrefix + recovered-so-far + candidate into the attacker
// region and keep the candidate whose (median-filtered) store cost is
// minimal — the one whose trailing byte the compressor folded into the
// back-reference from the secret's position. The guess sits before the
// secret in the page, so LZ77's backward matching makes the *secret*
// reference the *guess*; the attacker never reads a byte it doesn't own.
func RecoverPageSecret(oracle PageOracle, cfg PageAttackConfig) (*PageAttackResult, error) {
	if cfg.SecretLen <= 0 {
		return nil, fmt.Errorf("zipchannel: SecretLen must be positive")
	}
	charset := cfg.Charset
	if charset == "" {
		charset = DefaultPageCharset
	}
	region, err := oracle.AttackerLen()
	if err != nil {
		return nil, fmt.Errorf("zipchannel: sizing attacker region: %w", err)
	}
	need := len(cfg.KnownPrefix) + cfg.SecretLen + 1 // +1 terminator
	if need > region {
		return nil, fmt.Errorf("zipchannel: attacker region %d too small for %d-byte guess", region, need)
	}

	var timer *fault.Point
	if cfg.Faults != nil {
		timer = cfg.Faults.Point("attacker.oracle.timer")
	}
	queriesC := cfg.Obs.Counter("pagestore_attack.queries")
	bytesC := cfg.Obs.Counter("pagestore_attack.bytes_recovered")
	noisyC := cfg.Obs.Counter("pagestore_attack.noisy_reads")

	res := &PageAttackResult{}
	recovered := make([]byte, 0, cfg.SecretLen)
	for i := 0; i < cfg.SecretLen; i++ {
		best := byte(0)
		bestSteps := int64(math.MaxInt64)
		for _, c := range []byte(charset) {
			guess := make([]byte, 0, need)
			guess = append(guess, cfg.KnownPrefix...)
			guess = append(guess, recovered...)
			guess = append(guess, c, guessTerminator)
			steps, err := oracle.Query(guess)
			if err != nil {
				return nil, fmt.Errorf("zipchannel: oracle query: %w", err)
			}
			res.Queries++
			queriesC.Inc()
			filtered, noisy := attacker.FilteredReading(int(steps), cfg.TimerSamples, timer)
			if noisy > 0 {
				res.NoisyReads += noisy
				noisyC.Add(uint64(noisy))
			}
			res.OracleSteps += int64(filtered)
			if int64(filtered) < bestSteps {
				bestSteps = int64(filtered)
				best = c
			}
		}
		recovered = append(recovered, best)
		bytesC.Inc()
	}
	res.Recovered = recovered
	return res, nil
}
