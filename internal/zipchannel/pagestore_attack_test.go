package zipchannel

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/pagestore"
	"github.com/zipchannel/zipchannel/internal/par"
)

// pageSecret derives a deterministic charset-only secret.
func pageSecret(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = DefaultPageCharset[rng.Intn(len(DefaultPageCharset))]
	}
	return out
}

func plantVictim(t *testing.T, seed int64, secretLen int, faults *fault.Registry, reg *obs.Registry) (*pagestore.Store, []byte) {
	t.Helper()
	s := pagestore.New(pagestore.Config{Obs: reg, Faults: faults})
	secret := pageSecret(seed, secretLen)
	planted := append([]byte("key="), secret...)
	if _, err := s.Plant("victim", 64, planted); err != nil {
		t.Fatal(err)
	}
	return s, secret
}

// TestPageSecretRecoveryClean is the attack under ideal conditions: a
// 16-byte planted secret recovered exactly, byte by byte, from store
// timing alone.
func TestPageSecretRecoveryClean(t *testing.T) {
	reg := obs.NewRegistry()
	s, secret := plantVictim(t, 11, 16, nil, reg)
	res, err := RecoverPageSecret(NewStoreOracle(s, "victim"), PageAttackConfig{
		KnownPrefix: "key=",
		SecretLen:   16,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Recovered, secret) {
		t.Fatalf("recovered %q, want %q (accuracy %.2f)", res.Recovered, secret, res.Accuracy(secret))
	}
	if res.Queries != 16*len(DefaultPageCharset) {
		t.Fatalf("queries = %d, want %d", res.Queries, 16*len(DefaultPageCharset))
	}
	if res.NoisyReads != 0 {
		t.Fatalf("clean run reported %d noisy reads", res.NoisyReads)
	}
	snap := reg.Snapshot()
	if snap.Counters["pagestore_attack.queries"] != uint64(res.Queries) {
		t.Fatal("query counter mismatch")
	}
	if snap.Counters["pagestore_attack.bytes_recovered"] != 16 {
		t.Fatal("bytes_recovered counter mismatch")
	}
}

// The attack works across victim pages that carry other co-resident
// content, not just zeros: fill the page tail with text before planting.
func TestPageSecretRecoveryOtherCodecsReject(t *testing.T) {
	// Guard: the oracle hands errors up, e.g. a region too small for
	// the guess.
	s := pagestore.New(pagestore.Config{})
	if _, err := s.Plant("victim", 8, []byte("key=ABCDEFGH")); err != nil {
		t.Fatal(err)
	}
	_, err := RecoverPageSecret(NewStoreOracle(s, "victim"), PageAttackConfig{
		KnownPrefix: "key=",
		SecretLen:   8,
	})
	if err == nil {
		t.Fatal("expected error for attacker region smaller than the guess")
	}
}

// TestChaosPageSecretRecoveryUnderJitter is the acceptance criterion:
// a >=16-byte planted secret recovered with >99% byte accuracy while
// every timer reading passes through an armed jitter fault (25%
// per-reading probability, ±2000 steps — two orders of magnitude above
// the one-token signal), beaten by median filtering over TimerSamples
// readings per query.
func TestChaosPageSecretRecoveryUnderJitter(t *testing.T) {
	freg := fault.NewRegistry(20260808)
	if err := freg.ArmAll("attacker.oracle.timer=latency:0.25:2000"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s, secret := plantVictim(t, 12, 16, nil, reg)
	res, err := RecoverPageSecret(NewStoreOracle(s, "victim"), PageAttackConfig{
		KnownPrefix:  "key=",
		SecretLen:    16,
		Obs:          reg,
		Faults:       freg,
		TimerSamples: 27,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoisyReads == 0 {
		t.Fatal("jitter armed at 25% but no reading was noisy — fault not exercised")
	}
	if acc := res.Accuracy(secret); acc <= 0.99 {
		t.Fatalf("accuracy %.4f under jitter, want > 0.99 (recovered %q, want %q)", acc, res.Recovered, secret)
	}
	if reg.Snapshot().Counters["pagestore_attack.noisy_reads"] == 0 {
		t.Fatal("noisy_reads counter not mirrored")
	}
}

// TestChaosPageAttackReplayDeterministic: with faults disarmed the
// attack is byte-identical run to run AND byte-identical to a build
// with no fault registry at all; with the same armed registry and seed
// it also replays identically (deterministic chaos).
func TestChaosPageAttackReplayDeterministic(t *testing.T) {
	run := func(freg *fault.Registry) *PageAttackResult {
		s, _ := plantVictim(t, 13, 12, nil, nil)
		res, err := RecoverPageSecret(NewStoreOracle(s, "victim"), PageAttackConfig{
			KnownPrefix:  "key=",
			SecretLen:    12,
			Faults:       freg,
			TimerSamples: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	nilRun := run(nil)
	disarmed := run(fault.NewRegistry(5))
	if !reflect.DeepEqual(nilRun, disarmed) {
		t.Fatalf("disarmed fault registry perturbed the attack: %+v vs %+v", nilRun, disarmed)
	}
	armed := func() *PageAttackResult {
		freg := fault.NewRegistry(5)
		freg.Arm("attacker.oracle.timer", fault.Spec{Kind: fault.KindLatency, Prob: 0.3, Param: 500})
		return run(freg)
	}
	a1, a2 := armed(), armed()
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("armed chaos replay diverged")
	}
}

// TestPageAttackParallelByteIdentity: N independent recoveries fanned
// out via par.ForEach produce identical results at any worker count —
// the scheduler-determinism contract for the pagestore experiment.
func TestPageAttackParallelByteIdentity(t *testing.T) {
	const n = 4
	run := func(workers int) []*PageAttackResult {
		out := make([]*PageAttackResult, n)
		err := par.ForEach(workers, n, func(i int) error {
			seed := par.SplitSeed(99, fmt.Sprintf("pageattack%d", i))
			s := pagestore.New(pagestore.Config{})
			secret := pageSecret(seed, 8)
			if _, err := s.Plant("victim", 64, append([]byte("key="), secret...)); err != nil {
				return err
			}
			res, err := RecoverPageSecret(NewStoreOracle(s, "victim"), PageAttackConfig{
				KnownPrefix: "key=",
				SecretLen:   8,
			})
			if err != nil {
				return err
			}
			if !bytes.Equal(res.Recovered, secret) {
				return fmt.Errorf("slot %d: recovered %q want %q", i, res.Recovered, secret)
			}
			out[i] = res
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); !reflect.DeepEqual(seq, got) {
			t.Fatalf("parallel run (workers=%d) diverged from sequential", workers)
		}
	}
}
