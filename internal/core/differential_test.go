package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/taint"
	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// The compiled engine's contract (DESIGN.md §12): for any program, the
// threaded-code fast path with block-level taint transfer functions must
// be observationally identical to the per-instruction interpreter — same
// machine state, same error, same leakage report, same taint histories,
// bit for bit. These tests enforce the contract differentially: every
// victim (and, in the fuzz target, random programs) runs under both
// engines and the two runs are compared field by field.

// diffRun is everything observable about one engine's execution.
type diffRun struct {
	machine *vm.VM
	ana     *core.Analyzer
	runErr  error
	mem     []byte
	report  string
}

// trackedTags is the set of input-byte tags whose propagation histories
// the differential runs record and compare.
var trackedTags = []taint.Tag{1, 2, 3, 7}

func runOneEngine(t testing.TB, prog *isa.Program, input []byte, eng vm.Engine, carry bool, maxSteps uint64) *diffRun {
	t.Helper()
	machine, err := vm.NewFlat(prog)
	if err != nil {
		t.Fatalf("NewFlat(%s): %v", prog.Name, err)
	}
	machine.Engine = eng
	machine.SetInput(input)
	if maxSteps > 0 {
		machine.MaxSteps = maxSteps
	}
	tags := make(map[taint.Tag]bool, len(trackedTags))
	for _, tg := range trackedTags {
		tags[tg] = true
	}
	ana := core.New(core.Config{CarryAware: carry, MaxSamplesPerGadget: 2, TrackTags: tags})
	ana.Attach(machine)
	runErr := machine.Run()

	flat := machine.Mem.(*vm.FlatMemory)
	mem, err := flat.ReadBytes(flat.Base(), int(flat.Size()))
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	return &diffRun{
		machine: machine,
		ana:     ana,
		runErr:  runErr,
		mem:     mem,
		report:  ana.Report(prog.Name).String(),
	}
}

// compareRuns asserts that an interp run and a compiled run are
// bit-identical in every observable dimension. Analyzer state is compared
// only when both runs succeeded: on a fatal error the two engines stop
// observing at slightly different points (the compiled engine batches
// instruction counts per block), which is the one documented divergence.
func compareRuns(t testing.TB, label string, interp, compiled *diffRun) {
	t.Helper()
	if (interp.runErr == nil) != (compiled.runErr == nil) ||
		(interp.runErr != nil && interp.runErr.Error() != compiled.runErr.Error()) {
		t.Errorf("%s: run error diverged:\n  interp:   %v\n  compiled: %v", label, interp.runErr, compiled.runErr)
		return
	}

	iv, cv := interp.machine, compiled.machine
	if iv.Regs != cv.Regs {
		t.Errorf("%s: registers diverged:\n  interp:   %v\n  compiled: %v", label, iv.Regs, cv.Regs)
	}
	if iv.PC != cv.PC || iv.Halted != cv.Halted || iv.ExitCode != cv.ExitCode || iv.Steps != cv.Steps {
		t.Errorf("%s: pc/halt/exit/steps diverged: interp pc=%d halted=%v exit=%d steps=%d, compiled pc=%d halted=%v exit=%d steps=%d",
			label, iv.PC, iv.Halted, iv.ExitCode, iv.Steps, cv.PC, cv.Halted, cv.ExitCode, cv.Steps)
	}
	if iv.ZF != cv.ZF || iv.SF != cv.SF || iv.CF != cv.CF {
		t.Errorf("%s: flags diverged: interp ZF=%v SF=%v CF=%v, compiled ZF=%v SF=%v CF=%v",
			label, iv.ZF, iv.SF, iv.CF, cv.ZF, cv.SF, cv.CF)
	}
	if !bytes.Equal(iv.Output(), cv.Output()) {
		t.Errorf("%s: output diverged (%d vs %d bytes)", label, len(iv.Output()), len(cv.Output()))
	}
	if !bytes.Equal(interp.mem, compiled.mem) {
		for i := range interp.mem {
			if interp.mem[i] != compiled.mem[i] {
				t.Errorf("%s: memory diverged at offset %#x: interp %#x, compiled %#x", label, i, interp.mem[i], compiled.mem[i])
				break
			}
		}
	}

	if interp.runErr != nil {
		return // analyzer state is only comparable on successful runs
	}

	if interp.report != compiled.report {
		t.Errorf("%s: reports diverged:\n--- interp ---\n%s\n--- compiled ---\n%s", label, interp.report, compiled.report)
	}
	ia, ca := interp.ana, compiled.ana
	if ia.InstrCount() != ca.InstrCount() {
		t.Errorf("%s: instruction counts diverged: interp %d, compiled %d", label, ia.InstrCount(), ca.InstrCount())
	}
	if ia.TaintOps() != ca.TaintOps() {
		t.Errorf("%s: taint-op counts diverged: interp %d, compiled %d", label, ia.TaintOps(), ca.TaintOps())
	}
	if ia.LiveShadowBytes() != ca.LiveShadowBytes() {
		t.Errorf("%s: live shadow bytes diverged: interp %d, compiled %d", label, ia.LiveShadowBytes(), ca.LiveShadowBytes())
	}
	for r := 0; r < isa.NumRegs; r++ {
		iw, cw := ia.RegTaint(isa.Reg(r)), ca.RegTaint(isa.Reg(r))
		if iw.Mask() != cw.Mask() {
			t.Errorf("%s: r%d taint mask diverged: interp %#x, compiled %#x", label, r, iw.Mask(), cw.Mask())
			continue
		}
		for b := 0; b < 64; b++ {
			// Sets are interned, so pointer equality is set equality.
			if iw.Bit(b) != cw.Bit(b) {
				t.Errorf("%s: r%d bit %d taint diverged: interp %v, compiled %v", label, r, b, iw.Bit(b), cw.Bit(b))
			}
		}
	}
	flat := iv.Mem.(*vm.FlatMemory)
	for addr := flat.Base(); addr < flat.Base()+flat.Size(); addr++ {
		if ia.MemTaint(addr) != ca.MemTaint(addr) {
			t.Errorf("%s: memory taint diverged at %#x", label, addr)
			break
		}
	}
	for _, tg := range trackedTags {
		ih, ch := ia.History(tg), ca.History(tg)
		if len(ih) != len(ch) {
			t.Errorf("%s: tag %d history length diverged: interp %d, compiled %d", label, tg, len(ih), len(ch))
			continue
		}
		for i := range ih {
			if ih[i] != ch[i] {
				t.Errorf("%s: tag %d history[%d] diverged:\n  interp:   %+v\n  compiled: %+v", label, tg, i, ih[i], ch[i])
				break
			}
		}
	}
}

// TestEngineDifferential runs every victim under both engines and both
// taint modes and demands bit-identical results. This is the acceptance
// gate for the compiled engine: any transfer-function shortcut that
// loses a gadget, a history event, or an instruction count fails here.
func TestEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	input := make([]byte, 768)
	rng.Read(input)
	short := []byte("attack at dawn: the quick brown fox jumps over the lazy dog")

	for name, prog := range victims.All() {
		for _, carry := range []bool{false, true} {
			for _, in := range [][]byte{input, short} {
				label := fmt.Sprintf("%s/carry=%v/input=%d", name, carry, len(in))
				t.Run(label, func(t *testing.T) {
					interp := runOneEngine(t, prog, in, vm.EngineInterp, carry, 0)
					compiled := runOneEngine(t, prog, in, vm.EngineCompiled, carry, 0)
					compareRuns(t, label, interp, compiled)
				})
			}
		}
	}
}
