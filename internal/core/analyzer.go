// Package core implements TaintChannel, the paper's tool for automatically
// detecting cache side-channel vulnerabilities (§III). It attaches to a vm
// execution as an instrumentation client (the DynamoRIO role), marks every
// byte returned by the read syscall with a sequential taint tag, propagates
// taint bit-granularly through direct data manipulation only (Fig 1's
// decision tree: no control-flow taint), and reports
//
//   - data-flow gadgets: memory dereferences whose address is tainted, and
//   - control-flow gadgets: conditional branches whose flags derive from
//     tainted data,
//
// together with the exact per-bit relation between input bytes and the
// dereferenced address (the ASCII matrices of Figs 2-4).
//
// The propagation hot path is allocation-free in steady state: taint words
// are manipulated through the in-place pointer API of internal/taint
// (hash-consed sets, memoized unions), and the analyzer reuses a small
// number of scratch words instead of passing 512-byte shadows by value.
package core

import (
	"math/bits"

	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/taint"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// Config tunes the analyzer.
type Config struct {
	// CarryAware selects the sound carry-propagating rule for add/sub/neg
	// instead of the paper-faithful per-bit rule (DESIGN.md §2).
	CarryAware bool
	// MaxSamplesPerGadget bounds how many concrete access samples are
	// retained per gadget site (default 4).
	MaxSamplesPerGadget int
	// TrackTags selects input-byte tags whose full propagation history is
	// recorded (Fig 3). Nil tracks none.
	TrackTags map[taint.Tag]bool
	// MaxHistoryPerTag bounds each tracked tag's history (default 64).
	MaxHistoryPerTag int
	// ReducedTrace records the sequence of taint-touching instructions,
	// the input to cross-input control-flow diffing (§VI). Default off.
	ReducedTrace bool
	// MaxReducedTrace bounds the reduced trace length (default 1<<20).
	MaxReducedTrace int
}

func (c Config) withDefaults() Config {
	if c.MaxSamplesPerGadget == 0 {
		c.MaxSamplesPerGadget = 4
	}
	if c.MaxHistoryPerTag == 0 {
		c.MaxHistoryPerTag = 64
	}
	if c.MaxReducedTrace == 0 {
		c.MaxReducedTrace = 1 << 20
	}
	return c
}

// GadgetKind classifies a finding.
type GadgetKind uint8

// Gadget kinds.
const (
	// DataFlow is a memory dereference with a tainted address (§IV).
	DataFlow GadgetKind = iota
	// ControlFlow is a conditional branch on tainted flags (§VI).
	ControlFlow
)

// String names the kind.
func (k GadgetKind) String() string {
	if k == DataFlow {
		return "data-flow"
	}
	return "control-flow"
}

// AccessSample is one concrete triggering of a gadget.
type AccessSample struct {
	Step      uint64
	Addr      uint64     // effective address (data-flow) or flag-setter pc (control-flow)
	AddrTaint taint.Word // per-bit taint of the address / compared value
	Taken     bool       // control-flow only: branch outcome
}

// Finding is one leakage gadget: a static instruction that performed at
// least one taint-dependent access or branch.
type Finding struct {
	Kind    GadgetKind
	PC      int
	Instr   isa.Instr
	Count   int
	Samples []AccessSample
}

// HistEvent is one step in a tracked tag's propagation history (Fig 3).
type HistEvent struct {
	Step  uint64
	PC    int
	Instr string
	Note  string
}

// ReducedEvent is one entry of the reduced (taint-touching-only) trace.
type ReducedEvent struct {
	PC    int
	Op    isa.Op
	Taken bool // meaningful for branches
}

type findingKey struct {
	kind GadgetKind
	pc   int
}

// byteShadow is the per-memory-byte shadow: one set per bit plus a bitmap
// of the non-empty positions, mirroring taint.Word's mask at byte grain.
type byteShadow struct {
	bits [8]*taint.Set
	mask uint8
}

func (b *byteShadow) clean() bool { return b.mask == 0 }

// Analyzer is a TaintChannel instance attached to one execution.
type Analyzer struct {
	cfg Config

	regs      [isa.NumRegs]taint.Word
	shadow    shadowMem
	flagTaint *taint.Set
	flagPC    int

	// transfers is the per-block taint transfer table of the attached
	// program (blocktaint.go), indexed like vm.Blocks. lastSkip is the
	// block ID whose skip verdict is still warm (see enterBlock), -1 if
	// none; any precise step or read syscall invalidates it.
	transfers *blockTable
	lastSkip  int

	findings map[findingKey]*Finding
	order    []findingKey
	history  map[taint.Tag][]HistEvent
	reduced  []ReducedEvent

	instrCount uint64
	taintOps   uint64

	// Scratch shadows reused across steps so propagation never passes
	// 512-byte words by value.
	tmpSrc  taint.Word
	tmpDst  taint.Word
	tmpAddr taint.Word
	tmpIdx  taint.Word
}

// New creates an analyzer.
func New(cfg Config) *Analyzer {
	return &Analyzer{
		cfg:      cfg.withDefaults(),
		findings: map[findingKey]*Finding{},
		history:  map[taint.Tag][]HistEvent{},
		lastSkip: -1,
	}
}

// Attach installs the analyzer's hooks on the machine. Existing hooks are
// replaced; TaintChannel assumes it is the only instrumentation client.
// Besides the per-instruction hooks it installs the block-level OnBlock
// handler (blocktaint.go) that lets the compiled engine run provably
// taint-free blocks uninstrumented, and sizes the flat shadow memory to
// the machine's memory range.
func (a *Analyzer) Attach(v *vm.VM) {
	v.Hooks.BeforeInstr = a.step
	v.Hooks.OnSyscallRead = a.onRead
	a.transfers = transfersFor(v.Prog)
	v.Hooks.OnBlock = a.enterBlock
	type sizedMem interface {
		Base() uint64
		Size() uint64
	}
	if m, ok := v.Mem.(sizedMem); ok {
		a.shadow.bound(m.Base(), m.Base()+m.Size())
	}
}

// InstrCount returns how many instructions the analyzer observed.
func (a *Analyzer) InstrCount() uint64 { return a.instrCount }

// TaintOps returns how many observed instructions touched tainted state.
func (a *Analyzer) TaintOps() uint64 { return a.taintOps }

// Reduced returns the reduced trace (only if Config.ReducedTrace).
func (a *Analyzer) Reduced() []ReducedEvent { return a.reduced }

// History returns the recorded propagation history for a tracked tag.
func (a *Analyzer) History(t taint.Tag) []HistEvent { return a.history[t] }

// onRead taints freshly read input bytes with sequential tags, the taint
// source of the whole analysis.
func (a *Analyzer) onRead(_ *vm.VM, bufAddr uint64, n, firstIndex int) {
	a.lastSkip = -1
	for i := 0; i < n; i++ {
		tag := taint.Tag(firstIndex + i)
		a.tmpSrc.SetByte(tag)
		a.storeShadow(bufAddr+uint64(i), 1, &a.tmpSrc)
		if a.cfg.TrackTags[tag] {
			a.recordHistory(tag, 0, -1, "read syscall", "byte enters memory")
		}
	}
}

// step performs taint propagation for one instruction; it runs before the
// instruction executes, so register values are pre-state.
func (a *Analyzer) step(v *vm.VM, in *isa.Instr) {
	a.instrCount++
	a.lastSkip = -1 // precise execution may change shadow state
	w := int(in.Width)
	touched := false

	switch in.Op {
	case isa.OpMov:
		a.operandShadow(&a.tmpSrc, in.Src, w)
		touched = !a.tmpSrc.IsClean() || !a.regs[in.Dst.Reg].IsClean()
		a.setReg(v, in, in.Dst.Reg, &a.tmpSrc)

	case isa.OpLea:
		a.addrShadow(&a.tmpAddr, in.Src.Mem)
		touched = !a.tmpAddr.IsClean() || !a.regs[in.Dst.Reg].IsClean()
		a.setReg(v, in, in.Dst.Reg, &a.tmpAddr)

	case isa.OpLd:
		addrT := a.addrTainted(in.Src.Mem)
		if addrT {
			a.recordGadget(v, in, DataFlow, v.EffectiveAddr(in.Src.Mem), in.Src.Mem)
		}
		a.loadShadow(&a.tmpSrc, v.EffectiveAddr(in.Src.Mem), w)
		touched = !a.tmpSrc.IsClean() || addrT || !a.regs[in.Dst.Reg].IsClean()
		a.setReg(v, in, in.Dst.Reg, &a.tmpSrc)

	case isa.OpSt:
		addrT := a.addrTainted(in.Dst.Mem)
		if addrT {
			a.recordGadget(v, in, DataFlow, v.EffectiveAddr(in.Dst.Mem), in.Dst.Mem)
		}
		a.operandShadow(&a.tmpSrc, in.Src, w)
		touched = !a.tmpSrc.IsClean() || addrT
		a.tmpSrc.TruncateIn(w)
		a.storeShadowTracked(v, in, v.EffectiveAddr(in.Dst.Mem), w, &a.tmpSrc)

	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar, isa.OpRol:
		touched = a.aluTaint(v, in)

	case isa.OpNot:
		reg := &a.regs[in.Dst.Reg]
		touched = !reg.IsClean()
		reg.TruncateIn(w)
		a.trackReg(v, in, in.Dst.Reg)

	case isa.OpNeg:
		reg := &a.regs[in.Dst.Reg]
		touched = !reg.IsClean()
		if a.cfg.CarryAware {
			var zero taint.Word
			reg.SetAddCarryAware(&zero, reg)
		}
		reg.TruncateIn(w)
		a.trackReg(v, in, in.Dst.Reg)

	case isa.OpCmp, isa.OpTest:
		a.tmpDst.CopyFrom(&a.regs[in.Dst.Reg])
		a.tmpDst.TruncateIn(w)
		a.operandShadow(&a.tmpSrc, in.Src, w)
		a.flagTaint = taint.Union(a.tmpDst.AllTags(), a.tmpSrc.AllTags())
		a.flagPC = v.PC
		touched = !a.flagTaint.IsEmpty()

	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge,
		isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
		if !a.flagTaint.IsEmpty() {
			a.recordBranch(v, in)
			touched = true
		}

	case isa.OpPush:
		a.operandShadow(&a.tmpSrc, in.Src, 8)
		touched = !a.tmpSrc.IsClean()
		a.storeShadow(v.Regs[isa.SP]-8, 8, &a.tmpSrc)

	case isa.OpPop:
		a.loadShadow(&a.tmpSrc, v.Regs[isa.SP], 8)
		touched = !a.tmpSrc.IsClean() || !a.regs[in.Dst.Reg].IsClean()
		a.setReg(v, in, in.Dst.Reg, &a.tmpSrc)

	case isa.OpCall:
		var zero taint.Word
		a.storeShadow(v.Regs[isa.SP]-8, 8, &zero)
	}

	if touched {
		a.taintOps++
		if a.cfg.ReducedTrace && len(a.reduced) < a.cfg.MaxReducedTrace {
			ev := ReducedEvent{PC: v.PC, Op: in.Op}
			if in.Op.IsCondJump() {
				ev.Taken = v.ZF // approximation only used for display
			}
			a.reduced = append(a.reduced, ev)
		}
	}
}

// aluTaint propagates taint for ALU instructions, including the
// read-modify-write memory-destination form. Returns whether taint moved.
func (a *Analyzer) aluTaint(v *vm.VM, in *isa.Instr) bool {
	w := int(in.Width)
	// A register source whose shadow has no bits above the operand width
	// needs no truncating copy: alias its live shadow directly. Excluded
	// when it is also the destination — combine mutates the destination
	// in place, and the post-combine `touched` test must see the
	// pre-instruction source.
	var src *taint.Word
	if in.Src.Kind == isa.KindReg &&
		(in.Dst.Kind != isa.KindReg || in.Dst.Reg != in.Src.Reg) &&
		(w == 8 || a.regs[in.Src.Reg].Mask()>>(uint(w)*8) == 0) {
		src = &a.regs[in.Src.Reg]
	} else {
		a.operandShadow(&a.tmpSrc, in.Src, w)
		src = &a.tmpSrc
	}

	// x86-style zeroing idiom: xor r, r produces a clean zero.
	if in.Op == isa.OpXor && in.Dst.Kind == isa.KindReg && in.Src.Kind == isa.KindReg &&
		in.Dst.Reg == in.Src.Reg {
		touched := !a.regs[in.Dst.Reg].IsClean()
		a.regs[in.Dst.Reg].Reset()
		a.trackReg(v, in, in.Dst.Reg)
		return touched
	}

	if in.Dst.Kind == isa.KindMem {
		addrT := a.addrTainted(in.Dst.Mem)
		addr := v.EffectiveAddr(in.Dst.Mem)
		if addrT {
			a.recordGadget(v, in, DataFlow, addr, in.Dst.Mem)
		}
		a.loadShadow(&a.tmpDst, addr, w)
		old := &a.tmpDst
		oldClean := old.IsClean()
		// Combine into tmpDst (aliasing old, which combine permits), then
		// derive the flag taint from the *untruncated* result, matching
		// the historical memory-destination rule.
		a.combine(old, in.Op, old, src, v, in, w)
		a.flagTaint = old.AllTags()
		a.flagPC = v.PC
		old.TruncateIn(w)
		a.storeShadowTracked(v, in, addr, w, old)
		return !oldClean || !src.IsClean() || addrT
	}

	// Combine straight into the register's shadow — the in-place Set*
	// forms permit the destination aliasing an operand, and src was
	// already copied into tmpSrc above, so a src==dst ALU still sees the
	// pre-instruction source shadow. Saves two full word copies (and
	// their pointer write barriers) per ALU instruction.
	d := &a.regs[in.Dst.Reg]
	d.TruncateIn(w)
	dClean := d.IsClean()
	a.combine(d, in.Op, d, src, v, in, w)
	d.TruncateIn(w)
	a.flagTaint = d.AllTags()
	a.flagPC = v.PC
	touched := !dClean || !src.IsClean()
	a.trackReg(v, in, in.Dst.Reg)
	return touched
}

// combine applies the per-opcode taint transfer function (the paper's
// Fig 1 decision tree plus the §III-B special cases for and-masks and
// shifts), storing the result into out. out may alias d; it must not
// alias s.
func (a *Analyzer) combine(out *taint.Word, op isa.Op, d, s *taint.Word, v *vm.VM, in *isa.Instr, w int) {
	switch op {
	case isa.OpAdd, isa.OpSub:
		if a.cfg.CarryAware {
			out.SetAddCarryAware(d, s)
			return
		}
		out.SetMergePerBit(d, s)
	case isa.OpXor:
		out.SetMergePerBit(d, s)
	case isa.OpOr:
		// Or with an untainted operand destroys taint where that operand
		// has 1 bits (forced to 1).
		if s.IsClean() {
			out.SetOrMask(d, a.srcValue(v, in, w))
			return
		}
		if d.IsClean() {
			out.SetOrMask(s, v.Regs[in.Dst.Reg])
			return
		}
		out.SetMergePerBit(d, s)
	case isa.OpAnd:
		// And with an untainted mask keeps taint only at the mask's 1 bits.
		if s.IsClean() {
			out.SetAndMask(d, a.srcValue(v, in, w))
			return
		}
		if d.IsClean() {
			out.SetAndMask(s, v.Regs[in.Dst.Reg])
			return
		}
		out.SetMergePerBit(d, s)
	case isa.OpShl, isa.OpShr, isa.OpSar, isa.OpRol:
		if !s.IsClean() {
			// Tainted shift count: conservatively smear everything.
			out.SetMergeAll(d, s)
			return
		}
		n := uint(a.srcValue(v, in, w))
		switch op {
		case isa.OpShl:
			out.SetShl(d, n)
		case isa.OpShr:
			out.SetShr(d, n)
		case isa.OpSar:
			out.SetSar(d, n, w)
		default:
			out.SetRol(d, n, w)
		}
	case isa.OpMul:
		// Multiplication by an untainted power of two is a shift.
		if s.IsClean() {
			val := a.srcValue(v, in, w)
			if val != 0 && val&(val-1) == 0 {
				out.SetShl(d, uint(bits.TrailingZeros64(val)))
				return
			}
		}
		if d.IsClean() && s.IsClean() {
			out.Reset()
			return
		}
		out.SetMergeAll(d, s)
	case isa.OpDiv, isa.OpMod:
		if d.IsClean() && s.IsClean() {
			out.Reset()
			return
		}
		out.SetMergeAll(d, s)
	default:
		out.SetMergePerBit(d, s)
	}
}

// srcValue returns the concrete (pre-instruction) value of the source
// operand, used for mask-aware taint rules.
func (a *Analyzer) srcValue(v *vm.VM, in *isa.Instr, w int) uint64 {
	switch in.Src.Kind {
	case isa.KindReg:
		return v.Regs[in.Src.Reg]
	case isa.KindImm:
		return uint64(in.Src.Imm)
	default:
		return 0
	}
}

// operandShadow stores the taint word of a register or immediate operand
// into dst, truncated to the operand width.
func (a *Analyzer) operandShadow(dst *taint.Word, o isa.Operand, w int) {
	if o.Kind == isa.KindReg {
		dst.CopyFrom(&a.regs[o.Reg])
		dst.TruncateIn(w)
		return
	}
	dst.Reset()
}

// addrTainted reports whether the effective address of m carries any
// taint, straight from the operand shadows' live-bit masks — the cheap
// emptiness test gating the per-access gadget checks, so the hot path
// never materializes the full address word (recordGadget builds it only
// while still collecting samples). It must agree with addrShadow's
// emptiness: shifting by the scale can push index taint off the top (the
// shift is applied to the mask too), and the carry-aware smear maps
// non-empty to non-empty, so one test covers both merge modes.
func (a *Analyzer) addrTainted(m isa.MemRef) bool {
	var mask uint64
	if m.HasBase {
		mask = a.regs[m.Base].Mask()
	}
	if m.HasIndex {
		mask |= a.regs[m.Index].Mask() << uint(bits.TrailingZeros8(m.Scale))
	}
	return mask != 0
}

// addrShadow computes the taint of a memory operand's effective address
// into dst: base + index*scale + disp, modelling the scale as a left shift
// (the pointer arithmetic that places ins_h<<1 inside rdx in Fig 2).
func (a *Analyzer) addrShadow(dst *taint.Word, m isa.MemRef) {
	if !m.HasBase && m.HasIndex && !a.cfg.CarryAware {
		// No base: merging the shifted index into a just-reset word is
		// exactly the shift, so compute it straight into dst. (Not valid
		// for the carry-aware ablation, whose merge smears tags upward
		// even against a clean operand.)
		dst.SetShl(&a.regs[m.Index], uint(bits.TrailingZeros8(m.Scale)))
		return
	}
	if m.HasBase {
		dst.CopyFrom(&a.regs[m.Base])
	} else {
		dst.Reset()
	}
	if m.HasIndex {
		a.tmpIdx.SetShl(&a.regs[m.Index], uint(bits.TrailingZeros8(m.Scale)))
		if a.cfg.CarryAware {
			dst.SetAddCarryAware(dst, &a.tmpIdx)
		} else {
			dst.SetMergePerBit(dst, &a.tmpIdx)
		}
	}
}

// setReg copies word into r's shadow. word may alias a scratch buffer; it
// is left untouched.
func (a *Analyzer) setReg(v *vm.VM, in *isa.Instr, r isa.Reg, word *taint.Word) {
	a.regs[r].CopyFrom(word)
	a.trackReg(v, in, r)
}

func (a *Analyzer) loadShadow(dst *taint.Word, addr uint64, w int) {
	dst.Reset()
	if a.shadow.live == 0 {
		return
	}
	if end := addr + uint64(w); end >= addr && (end <= a.shadow.taintLo || addr >= a.shadow.taintHi) {
		return // cannot intersect the ever-tainted range
	}
	for i := 0; i < w; i++ {
		b := a.shadow.get(addr + uint64(i))
		if b.mask == 0 {
			continue
		}
		m := b.mask
		for m != 0 {
			j := bits.TrailingZeros8(m)
			m &= m - 1
			dst.SetBit(i*8+j, b.bits[j])
		}
	}
}

func (a *Analyzer) storeShadow(addr uint64, w int, word *taint.Word) {
	mask := word.Mask()
	if mask == 0 && a.shadow.live == 0 {
		return // clean store while the whole shadow memory is clean
	}
	for i := 0; i < w; i++ {
		bm := uint8(mask >> uint(i*8))
		if bm == 0 {
			a.shadow.clear(addr + uint64(i))
			continue
		}
		var b byteShadow
		b.mask = bm
		m := bm
		for m != 0 {
			j := bits.TrailingZeros8(m)
			m &= m - 1
			b.bits[j] = word.Bit(i*8 + j)
		}
		a.shadow.set(addr+uint64(i), b)
	}
}

func (a *Analyzer) storeShadowTracked(v *vm.VM, in *isa.Instr, addr uint64, w int, word *taint.Word) {
	a.storeShadow(addr, w, word)
	a.trackWord(v, in, word, "-> memory")
}

// recordGadget records a tainted-address access. The caller has already
// established (via addrTainted) that mref's address shadow is non-empty;
// the full word is materialized only while the finding is still
// collecting samples, keeping steady-state gadget hits down to a counter
// bump.
func (a *Analyzer) recordGadget(v *vm.VM, in *isa.Instr, kind GadgetKind, addr uint64, mref isa.MemRef) {
	key := findingKey{kind, v.PC}
	f, ok := a.findings[key]
	if !ok {
		f = &Finding{Kind: kind, PC: v.PC, Instr: *in}
		a.findings[key] = f
		a.order = append(a.order, key)
	}
	f.Count++
	if len(f.Samples) < a.cfg.MaxSamplesPerGadget {
		a.addrShadow(&a.tmpAddr, mref)
		f.Samples = append(f.Samples, AccessSample{
			Step: v.Steps, Addr: addr,
		})
		f.Samples[len(f.Samples)-1].AddrTaint.CopyFrom(&a.tmpAddr)
	}
}

func (a *Analyzer) recordBranch(v *vm.VM, in *isa.Instr) {
	key := findingKey{ControlFlow, v.PC}
	f, ok := a.findings[key]
	if !ok {
		f = &Finding{Kind: ControlFlow, PC: v.PC, Instr: *in}
		a.findings[key] = f
		a.order = append(a.order, key)
	}
	f.Count++
	if len(f.Samples) < a.cfg.MaxSamplesPerGadget {
		var word taint.Word
		for i := 0; i < taint.WordBits; i++ {
			word.SetBit(i, a.flagTaint)
		}
		f.Samples = append(f.Samples, AccessSample{
			Step: v.Steps, Addr: uint64(a.flagPC), AddrTaint: word,
			Taken: v.Halted == false && a.branchTaken(v, in),
		})
	}
}

func (a *Analyzer) branchTaken(v *vm.VM, in *isa.Instr) bool {
	switch in.Op {
	case isa.OpJe:
		return v.ZF
	case isa.OpJne:
		return !v.ZF
	case isa.OpJl:
		return v.SF
	case isa.OpJle:
		return v.SF || v.ZF
	case isa.OpJg:
		return !v.SF && !v.ZF
	case isa.OpJge:
		return !v.SF
	case isa.OpJb:
		return v.CF
	case isa.OpJbe:
		return v.CF || v.ZF
	case isa.OpJa:
		return !v.CF && !v.ZF
	case isa.OpJae:
		return !v.CF
	}
	return false
}

// trackReg appends a history event for any tracked tag present in r's
// shadow.
func (a *Analyzer) trackReg(v *vm.VM, in *isa.Instr, r isa.Reg) {
	if len(a.cfg.TrackTags) == 0 {
		return
	}
	a.trackWord(v, in, &a.regs[r], "-> "+r.String())
}

// trackWord appends a history event for any tracked tag present in word.
func (a *Analyzer) trackWord(v *vm.VM, in *isa.Instr, word *taint.Word, note string) {
	if len(a.cfg.TrackTags) == 0 {
		return
	}
	tags := word.AllTags()
	if tags.IsEmpty() {
		return
	}
	for _, t := range tags.Tags() {
		if a.cfg.TrackTags[t] {
			a.recordHistory(t, v.Steps, v.PC, in.String(), note)
		}
	}
}

func (a *Analyzer) recordHistory(t taint.Tag, step uint64, pc int, instr, note string) {
	h := a.history[t]
	if len(h) >= a.cfg.MaxHistoryPerTag {
		return
	}
	a.history[t] = append(h, HistEvent{Step: step, PC: pc, Instr: instr, Note: note})
}

// RegTaint exposes a register's current shadow (tests, reports). The
// returned pointer aliases the analyzer's live state; callers must not
// mutate it.
func (a *Analyzer) RegTaint(r isa.Reg) *taint.Word { return &a.regs[r] }

// MemTaint exposes a memory byte's current shadow.
func (a *Analyzer) MemTaint(addr uint64) [8]*taint.Set {
	return a.shadow.get(addr).bits
}

// LiveShadowBytes returns how many memory bytes currently carry taint
// (tests, reports).
func (a *Analyzer) LiveShadowBytes() int { return a.shadow.live }
