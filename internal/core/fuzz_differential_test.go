package core_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// FuzzVMDifferential feeds random short programs through both engines and
// demands bit-identical machine state, output, memory, flags, taint
// shadow, and error strings. The generator maps fuzz bytes onto a small
// assembly palette — ALU ops, (partially masked) loads and stores, an
// index-without-base access, conditional jumps to arbitrary labels,
// write/exit syscalls — over a program that first reads tainted input, so
// the block-level transfer functions and their precise fallback both see
// real work. A tight MaxSteps (10k) keeps looping programs bounded; the runaway
// error must then also be identical between engines.

// fuzzProgram renders the fuzz input into assembly source. Every
// generated instruction carries a label so jumps can target any slot.
func fuzzProgram(data []byte) string {
	var b strings.Builder
	b.WriteString(".data buf 256 align=64\n")
	b.WriteString("main:\n")
	b.WriteString("  mov r0, 0\n")
	b.WriteString("  lea r2, [buf]\n")
	b.WriteString("  mov r3, 96\n")
	b.WriteString("  syscall\n")

	n := len(data) / 3
	if n > 48 {
		n = 48
	}
	conds := []string{"je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae"}
	alu := []string{"add", "sub", "and", "or", "xor", "mul"}
	for i := 0; i < n; i++ {
		op, x, y := data[3*i], data[3*i+1], data[3*i+2]
		rd := fmt.Sprintf("r%d", 1+x%12)
		rs := fmt.Sprintf("r%d", 1+y%12)
		fmt.Fprintf(&b, "L%d:\n", i)
		switch op % 19 {
		case 0:
			fmt.Fprintf(&b, "  mov %s, %s\n", rd, rs)
		case 1:
			fmt.Fprintf(&b, "  mov %s, %d\n", rd, y)
		case 2, 3:
			fmt.Fprintf(&b, "  %s %s, %s\n", alu[int(op)%len(alu)], rd, rs)
		case 4:
			fmt.Fprintf(&b, "  %s %s, %d\n", alu[int(y)%len(alu)], rd, x)
		case 5:
			fmt.Fprintf(&b, "  shl %s, %d\n", rd, y%24)
		case 6:
			fmt.Fprintf(&b, "  shr %s, %d\n", rd, y%24)
		case 7:
			fmt.Fprintf(&b, "  not %s\n", rd)
		case 8:
			fmt.Fprintf(&b, "  neg %s\n", rd)
		case 9:
			fmt.Fprintf(&b, "  cmp %s, %s\n", rd, rs)
		case 10:
			fmt.Fprintf(&b, "  test %s, %d\n", rd, y)
		case 11:
			fmt.Fprintf(&b, "  %s L%d\n", conds[int(y)%len(conds)], int(x)%n)
		case 12:
			fmt.Fprintf(&b, "  jmp L%d\n", int(y)%n)
		case 13: // masked load: in range by construction
			fmt.Fprintf(&b, "  and %s, 127\n", rs)
			fmt.Fprintf(&b, "  ld.%d %s, [buf + %s]\n", 1<<(y%4), rd, rs)
		case 14: // masked store
			fmt.Fprintf(&b, "  and %s, 127\n", rs)
			fmt.Fprintf(&b, "  st.%d [buf + %s], %s\n", 1<<(y%4), rs, rd)
		case 15: // masked ALU-to-memory with an index-without-base EA
			fmt.Fprintf(&b, "  and %s, 63\n", rs)
			fmt.Fprintf(&b, "  add.2 [buf + %s*2], %s\n", rs, rd)
		case 16: // unmasked load: usually out of range; error strings must match
			fmt.Fprintf(&b, "  ld.4 %s, [buf + %s]\n", rd, rs)
		case 17:
			fmt.Fprintf(&b, "  lea %s, [buf + %s*4 + %d]\n", rd, rs, y)
		case 18: // write back a slice of the buffer
			fmt.Fprintf(&b, "  mov r0, 1\n  lea r2, [buf]\n  mov r3, %d\n  syscall\n", 1+y%32)
		}
	}
	b.WriteString("  mov r0, 2\n")
	b.WriteString("  mov r1, r4\n")
	b.WriteString("  syscall\n")
	b.WriteString("  halt\n")
	return b.String()
}

func FuzzVMDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 13, 5, 9, 15, 3, 3, 11, 0, 4})
	f.Add([]byte{16, 200, 9, 18, 1, 7, 12, 0, 0})
	f.Add([]byte{13, 4, 4, 2, 4, 5, 14, 4, 6, 11, 9, 2, 5, 1, 9, 9, 1, 2, 11, 2, 6})
	f.Add([]byte{15, 8, 3, 13, 3, 1, 10, 3, 3, 11, 3, 5, 18, 0, 9, 12, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		src := fuzzProgram(data)
		prog, err := isa.Assemble("fuzz.zasm", src)
		if err != nil {
			t.Fatalf("generated program failed to assemble: %v\n%s", err, src)
		}
		input := []byte("fuzz secret input: 0123456789abcdefghijklmnopqrstuvwxyz")
		interp := runOneEngine(t, prog, input, vm.EngineInterp, false, 10000)
		compiled := runOneEngine(t, prog, input, vm.EngineCompiled, false, 10000)
		compareRuns(t, "fuzz", interp, compiled)
		if t.Failed() {
			t.Logf("program:\n%s", src)
		}
	})
}
