package core_test

import (
	"fmt"
	"log"

	"github.com/zipchannel/zipchannel/internal/core"
	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// Running TaintChannel over a victim takes three steps: build a machine,
// attach the analyzer, run. The report lists every memory dereference
// whose address depends on the input.
func Example() {
	prog := victims.AESFirstRound()
	machine, err := vm.NewFlat(prog)
	if err != nil {
		log.Fatal(err)
	}
	machine.SetInput([]byte("sixteen byte key"))

	analyzer := core.New(core.Config{})
	analyzer.Attach(machine)
	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}

	rep := analyzer.Report(prog.Name)
	for _, f := range rep.DataFlowFindings() {
		fmt.Printf("gadget: %s, triggered %d times\n", f.Instr.String(), f.Count)
	}
	// Output:
	// gadget: ld.4 r4, [te0+r2*4], triggered 16 times
}

// The cache-visibility filter separates exploitable gadgets from taint
// flows confined below cache-line granularity.
func ExampleFinding_CacheVisible() {
	machine, _ := vm.NewFlat(victims.BzipFtabOblivious(victims.BzipFtabOptions{}))
	machine.SetInput([]byte("secret"))
	analyzer := core.New(core.Config{})
	analyzer.Attach(machine)
	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}
	rep := analyzer.Report("oblivious")
	fmt.Printf("data-flow gadgets: %d, cache-visible: %d\n",
		len(rep.DataFlowFindings()), len(rep.CacheVisibleFindings()))
	// Output:
	// data-flow gadgets: 1, cache-visible: 0
}
