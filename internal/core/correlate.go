package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// This file implements the trace-based baseline the paper contrasts
// TaintChannel with (§VII-A2, tools like Microwalk and DATA): run the
// program repeatedly with mutated inputs, record the cache-line trace per
// program counter, and flag PCs whose traces vary with the input. Such
// tools detect THAT a leak exists but — unlike TaintChannel — "inherently
// cannot determine the exact relation between the input and the pointer".

// CorrelationFinding is one input-correlated program point.
type CorrelationFinding struct {
	PC    int
	Instr isa.Instr
	// DistinctTraces counts how many different line-address traces the
	// mutated runs produced at this PC.
	DistinctTraces int
	// Branch marks control-flow variation (differing execution counts)
	// rather than differing access addresses.
	Branch bool
}

// CorrelationReport is the baseline tool's output: leaky PCs, with no
// input-to-address computation attached.
type CorrelationReport struct {
	Program  string
	Runs     int
	Findings []CorrelationFinding
	// Instructions is the total executed across all runs: the cost side
	// of the comparison (TaintChannel needs a single run).
	Instructions uint64
}

// String renders the report.
func (r *CorrelationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace-correlation report for %q (%d mutated runs, %d instructions)\n",
		r.Program, r.Runs, r.Instructions)
	for _, f := range r.Findings {
		kind := "address"
		if f.Branch {
			kind = "count"
		}
		fmt.Fprintf(&b, "  pc %d: %s   (%s varies across inputs: %d distinct traces)\n",
			f.PC, f.Instr.String(), kind, f.DistinctTraces)
	}
	b.WriteString("  (no input-to-address relation available from this analysis)\n")
	return b.String()
}

// lineTrace is one run's observation at a PC: the ordered cache-line
// addresses it accessed.
type lineTrace struct {
	lines []uint64
}

func (t *lineTrace) key() string {
	var b strings.Builder
	for _, l := range t.lines {
		fmt.Fprintf(&b, "%x,", l)
	}
	return b.String()
}

// Correlate runs the baseline analysis with the standard mutation
// strategy: the program executes once on input and once on `runs-1`
// random single-byte mutations of it. Note the inherited weakness of
// differential tools: a leak is only found if the mutations happen to
// perturb the bytes it depends on (CorrelateInputs lets callers steer).
func Correlate(prog *isa.Program, input []byte, runs int, seed int64) (*CorrelationReport, error) {
	if runs < 2 {
		runs = 2
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]byte, runs)
	for run := 0; run < runs; run++ {
		in := append([]byte(nil), input...)
		if run > 0 && len(in) > 0 {
			// Mutate one byte, like the differential tools do.
			in[rng.Intn(len(in))] ^= byte(1 + rng.Intn(255))
		}
		inputs[run] = in
	}
	return CorrelateInputs(prog, inputs)
}

// CorrelateInputs runs the baseline analysis over an explicit input set.
func CorrelateInputs(prog *isa.Program, inputs [][]byte) (*CorrelationReport, error) {
	rep := &CorrelationReport{Program: prog.Name, Runs: len(inputs)}

	// traceKeys[pc] collects the distinct per-run trace fingerprints.
	traceKeys := map[int]map[string]bool{}
	instrs := map[int]isa.Instr{}

	for _, in := range inputs {
		machine, err := vm.NewFlat(prog)
		if err != nil {
			return nil, err
		}
		machine.SetInput(append([]byte(nil), in...))
		perPC := map[int]*lineTrace{}
		record := func(v *vm.VM, instr *isa.Instr, addr uint64) {
			t := perPC[v.PC]
			if t == nil {
				t = &lineTrace{}
				perPC[v.PC] = t
			}
			t.lines = append(t.lines, addr>>CacheLineOffsetBits)
			instrs[v.PC] = *instr
		}
		machine.Hooks.OnLoad = func(v *vm.VM, instr *isa.Instr, addr uint64, _ int, _ uint64) {
			record(v, instr, addr)
		}
		machine.Hooks.OnStore = func(v *vm.VM, instr *isa.Instr, addr uint64, _ int, _ uint64) {
			record(v, instr, addr)
		}
		if err := machine.Run(); err != nil {
			return nil, fmt.Errorf("correlate: %w", err)
		}
		rep.Instructions += machine.Steps
		for pc, t := range perPC {
			m := traceKeys[pc]
			if m == nil {
				m = map[string]bool{}
				traceKeys[pc] = m
			}
			m[t.key()] = true
		}
		// PCs absent in this run but present in others count as varying;
		// mark with an empty-key sentinel.
		for pc := range traceKeys {
			if _, ok := perPC[pc]; !ok {
				traceKeys[pc][""] = true
			}
		}
	}

	var pcs []int
	for pc, keys := range traceKeys {
		if len(keys) > 1 {
			pcs = append(pcs, pc)
		}
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		in := instrs[pc]
		rep.Findings = append(rep.Findings, CorrelationFinding{
			PC:             pc,
			Instr:          in,
			DistinctTraces: len(traceKeys[pc]),
			Branch:         traceKeys[pc][""],
		})
	}
	return rep, nil
}

// LeakyPCs returns the flagged program counters.
func (r *CorrelationReport) LeakyPCs() []int {
	out := make([]int, 0, len(r.Findings))
	for _, f := range r.Findings {
		out = append(out, f.PC)
	}
	return out
}
