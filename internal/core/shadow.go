package core

// Flat shadow memory. The analyzer used to keep per-byte shadows in a
// map[uint64]byteShadow; profiles put ~30% of TaintAnalysis in map
// operations, most of them deletes for clean stores (every store of an
// untainted value had to erase any stale shadow). This replaces the map
// with lazily allocated dense pages covering the machine's flat memory
// range, plus an overflow map for out-of-range addresses (paged/SGX
// memory, wild pointers), and a global count of live (tainted) shadow
// bytes so fully-clean states — the entire run before the first read
// syscall — cost one integer compare per access. The live count is also
// what the block-level transfer functions consult (blocktaint.go): while
// it is zero, memory-touching blocks are skippable.

// A page holds 8 tag-set pointers per byte, so page granularity is a
// space/scan trade-off: 1024 keeps a page at ~74KB — a typical tainted
// input buffer allocates one or two instead of the ~300KB a 4096-byte
// page would cost the GC every run.
const shadowPageBytes = 1024

type shadowPage [shadowPageBytes]byteShadow

type shadowMem struct {
	lo, hi   uint64 // dense range covered by pages
	pages    []*shadowPage
	overflow map[uint64]byteShadow
	live     int // shadow bytes with a non-empty mask, across pages and overflow

	// taintLo/taintHi bound every address that has EVER held taint
	// (monotonic; clears do not shrink them). Addresses outside the range
	// are clean without a lookup — the fast-reject behind rangeClean,
	// which lets block skipping prove that a loop sweeping a clean table
	// (bzip2's ftab) cannot intersect the tainted input buffer.
	taintLo, taintHi uint64
}

// bound installs the dense range [lo, hi). Only effective while the
// shadow is untouched (no pages allocated, nothing in overflow); the
// analyzer calls it at Attach time with the flat memory's bounds.
func (m *shadowMem) bound(lo, hi uint64) {
	if m.pages != nil || len(m.overflow) != 0 || hi <= lo {
		return
	}
	m.lo, m.hi = lo, hi
	m.pages = make([]*shadowPage, (hi-lo+shadowPageBytes-1)/shadowPageBytes)
}

func (m *shadowMem) get(addr uint64) byteShadow {
	if addr >= m.lo && addr < m.hi {
		p := m.pages[(addr-m.lo)/shadowPageBytes]
		if p == nil {
			return byteShadow{}
		}
		return p[(addr-m.lo)%shadowPageBytes]
	}
	return m.overflow[addr]
}

// rangeClean reports whether no byte of [addr, addr+w) carries taint.
func (m *shadowMem) rangeClean(addr uint64, w int) bool {
	if m.live == 0 {
		return true
	}
	if end := addr + uint64(w); end >= addr && (end <= m.taintLo || addr >= m.taintHi) {
		return true // cannot intersect the ever-tainted range
	}
	for i := 0; i < w; i++ {
		if m.get(addr+uint64(i)).mask != 0 {
			return false
		}
	}
	return true
}

// set installs a non-clean shadow for addr.
func (m *shadowMem) set(addr uint64, b byteShadow) {
	if m.live == 0 || addr < m.taintLo {
		m.taintLo = addr
	}
	if m.live == 0 || addr+1 > m.taintHi {
		m.taintHi = addr + 1
	}
	if addr >= m.lo && addr < m.hi {
		pi := (addr - m.lo) / shadowPageBytes
		p := m.pages[pi]
		if p == nil {
			p = new(shadowPage)
			m.pages[pi] = p
		}
		slot := &p[(addr-m.lo)%shadowPageBytes]
		if slot.mask == 0 {
			m.live++
		}
		*slot = b
		return
	}
	if m.overflow == nil {
		m.overflow = map[uint64]byteShadow{}
	}
	if old, ok := m.overflow[addr]; !ok || old.mask == 0 {
		m.live++
	}
	m.overflow[addr] = b
}

// clear erases addr's shadow (a clean store). Never allocates.
func (m *shadowMem) clear(addr uint64) {
	if m.live == 0 || addr < m.taintLo || addr >= m.taintHi {
		return // nothing was ever tainted here
	}
	if addr >= m.lo && addr < m.hi {
		p := m.pages[(addr-m.lo)/shadowPageBytes]
		if p == nil {
			return
		}
		slot := &p[(addr-m.lo)%shadowPageBytes]
		if slot.mask != 0 {
			m.live--
			*slot = byteShadow{}
		}
		return
	}
	if old, ok := m.overflow[addr]; ok {
		if old.mask != 0 {
			m.live--
		}
		delete(m.overflow, addr)
	}
}
