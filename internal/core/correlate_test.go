package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/victims"
)

func TestCorrelateFindsZlibGadget(t *testing.T) {
	input := []byte("the differential baseline should also flag the head store")
	rep, err := Correlate(victims.ZlibInsertString(), input, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("correlation found nothing")
	}
	// TaintChannel's finding must be among the correlated PCs.
	tcRep, _ := analyze(t, victims.ZlibInsertString(), input, Config{})
	want := tcRep.DataFlowFindings()[0].PC
	found := false
	for _, pc := range rep.LeakyPCs() {
		if pc == want {
			found = true
		}
	}
	if !found {
		t.Errorf("correlation PCs %v do not include TaintChannel's gadget pc %d",
			rep.LeakyPCs(), want)
	}
	if !strings.Contains(rep.String(), "no input-to-address relation") {
		t.Error("report should state its limitation")
	}
}

func TestCorrelateCleanOnConstantTime(t *testing.T) {
	input := make([]byte, 64)
	rand.New(rand.NewSource(2)).Read(input)
	rep, err := Correlate(victims.ConstantTime(), input, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("constant-time program flagged at %v", rep.LeakyPCs())
	}
}

func TestCorrelateControlFlowDetection(t *testing.T) {
	// memcpy's path depends on the first input byte. Random single-byte
	// mutation rarely hits it (an inherent weakness of differential
	// tools), so steer the input set explicitly.
	mk := func(n byte) []byte {
		in := make([]byte, 257)
		in[0] = n
		return in
	}
	rep, err := CorrelateInputs(victims.Memcpy(), [][]byte{mk(96), mk(97), mk(104), mk(33)})
	if err != nil {
		t.Fatal(err)
	}
	branchy := 0
	for _, f := range rep.Findings {
		if f.Branch {
			branchy++
		}
	}
	if branchy == 0 {
		t.Errorf("size-dependent paths should yield count-varying PCs: %+v", rep.Findings)
	}
}

func TestCorrelateNeedsMultipleRuns(t *testing.T) {
	input := []byte("abcdef")
	rep, err := Correlate(victims.ZlibInsertString(), input, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 2 {
		t.Errorf("runs clamped to %d, want 2", rep.Runs)
	}
	// A single-run cost comparison: correlation executed at least twice
	// the instructions a single TaintChannel pass needs.
	_, a := analyze(t, victims.ZlibInsertString(), input, Config{})
	if rep.Instructions < 2*a.InstrCount() {
		t.Errorf("correlation cost %d should exceed 2x single-run %d",
			rep.Instructions, a.InstrCount())
	}
}
