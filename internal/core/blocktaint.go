package core

import (
	"math/bits"
	"sync"

	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/taint"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// Block-level taint transfer functions. For each basic block of the
// program (vm.Blocks — the same partition the compiled engine dispatches
// on, so block IDs agree) the analyzer precomputes a taint.Transfer
// summarizing what its precise per-instruction path would do to shadow
// state. At run time the VM's compiled engine asks the analyzer, via the
// OnBlock hook, whether the upcoming block needs precise observation;
// when the transfer function proves the block is a taint no-op for the
// current shadow state, the analyzer applies the summary (instruction
// count, flag latch, register resets) and lets the block run on the
// uninstrumented threaded fast path.
//
// The summary must mirror analyzer.step exactly. The subtleties, each
// load-bearing for bit-identical reports:
//
//   - "Touch reads": step consults the destination's old shadow to decide
//     whether an instruction touched taint (taintOps, reduced trace), so
//     every written register is also a read at the writing instruction.
//     ReadRegs tracks live-in reads — reads before an earlier in-block
//     write — because in-block writes store provably clean shadows.
//   - Flag setters are cmp/test and the ALU ops except the xor r,r
//     zeroing idiom (aluTaint returns before touching the flag latch) and
//     not/neg (no flag update in the analyzer, unlike the VM).
//   - A conditional jump with no preceding in-block flag setter observes
//     the latch from before the block (StaleFlagJump); one after an
//     in-block setter always sees clean flags when inputs are clean.
//   - Syscalls are the taint source and end their block (vm.Blocks), and
//     their block never skips.
//   - Stores of clean values clear stale shadow bytes, so TouchesMem
//     covers writes (st/push/call) as well as loads (ld/pop/ALU-to-mem).
//     A memory-touching block can still skip while tainted shadow bytes
//     exist IF every access's effective address is computable at block
//     entry (its base/index registers are not written by an earlier
//     in-block instruction — "entry-resolvable") and the concrete
//     footprint provably misses every tainted byte (shadowMem.rangeClean,
//     backstopped by the ever-tainted address range). This is what lets
//     bzip2's 64K-iteration ftab-clearing loop, which runs AFTER the
//     tainted input is read, stay on the fast path: each iteration's
//     store lands provably outside the tainted input buffer. Blocks with
//     a non-resolvable access (including push/pop/call, whose SP-relative
//     addresses shift within the block) run precise while any shadow
//     memory is live.

// memAccess is one entry-resolvable data access of a block, with its
// MemRef pre-decoded (scale as a shift, like the VM's own decoder) so the
// per-entry footprint check indexes v.Regs directly instead of paying
// EffectiveAddr's flag branches on every loop iteration.
type memAccess struct {
	hasBase  bool
	hasIndex bool
	base     isa.Reg
	index    isa.Reg
	shift    uint8
	disp     uint64
	width    int
}

func decodeAccess(m isa.MemRef, w int) memAccess {
	ma := memAccess{hasBase: m.HasBase, hasIndex: m.HasIndex, disp: uint64(m.Disp), width: w}
	if m.HasBase {
		ma.base = m.Base
	}
	if m.HasIndex {
		ma.index = m.Index
		ma.shift = uint8(bits.TrailingZeros8(m.Scale))
	}
	return ma
}

// addr computes the access's effective address; it must agree with
// VM.EffectiveAddr (scale restricted to 1/2/4/8 by the assembler).
func (ma *memAccess) addr(v *vm.VM) uint64 {
	ea := ma.disp
	if ma.hasBase {
		ea += v.Regs[ma.base]
	}
	if ma.hasIndex {
		ea += v.Regs[ma.index] << ma.shift
	}
	return ea
}

// blockEntry is one basic block's skip record: its Transfer plus, when
// every access is entry-resolvable (memExact), the accesses to
// range-check at entry. A block with memExact=false and TouchesMem only
// skips while no shadow memory is live at all.
type blockEntry struct {
	t        taint.Transfer
	mem      []memAccess
	memExact bool
}

// blockTable is the per-program skip table, indexed like vm.Blocks.
type blockTable struct {
	entries []blockEntry
}

// transferCache memoizes per-program transfer tables, like the VM's
// decode and block caches: programs are assembled once and never mutated.
var transferCache sync.Map // *isa.Program -> *blockTable

func transfersFor(p *isa.Program) *blockTable {
	if t, ok := transferCache.Load(p); ok {
		return t.(*blockTable)
	}
	blocks := vm.Blocks(p)
	tab := &blockTable{entries: make([]blockEntry, len(blocks))}
	for i, b := range blocks {
		tab.entries[i].t, tab.entries[i].mem, tab.entries[i].memExact = computeTransfer(p, b)
	}
	actual, _ := transferCache.LoadOrStore(p, tab)
	return actual.(*blockTable)
}

func computeTransfer(p *isa.Program, b vm.Block) (taint.Transfer, []memAccess, bool) {
	t := taint.Transfer{Len: b.End - b.Start, FlagPC: -1}
	var written uint16
	var mem []memAccess
	exact := true
	access := func(m isa.MemRef, w int) {
		if (m.HasBase && written&(1<<uint(m.Base)) != 0) ||
			(m.HasIndex && written&(1<<uint(m.Index)) != 0) {
			exact = false // address depends on an in-block write
			return
		}
		mem = append(mem, decodeAccess(m, w))
	}
	read := func(r isa.Reg) {
		if written&(1<<uint(r)) == 0 {
			t.ReadRegs |= 1 << uint(r)
		}
	}
	readMem := func(m isa.MemRef) {
		if m.HasBase {
			read(m.Base)
		}
		if m.HasIndex {
			read(m.Index)
		}
	}
	readSrc := func(o isa.Operand) {
		if o.Kind == isa.KindReg {
			read(o.Reg)
		}
	}
	write := func(r isa.Reg) {
		written |= 1 << uint(r)
		t.WriteRegs |= 1 << uint(r)
	}

	for pc := b.Start; pc < b.End; pc++ {
		in := &p.Instrs[pc]
		switch in.Op {
		case isa.OpNop, isa.OpJmp, isa.OpRet, isa.OpHalt:
			// No analyzer effect (ret's stack read has no shadow read in
			// the precise path either).

		case isa.OpSyscall:
			t.HasSyscall = true

		case isa.OpMov:
			readSrc(in.Src)
			read(in.Dst.Reg) // touch read
			write(in.Dst.Reg)

		case isa.OpLea:
			readMem(in.Src.Mem)
			read(in.Dst.Reg)
			write(in.Dst.Reg)

		case isa.OpLd:
			readMem(in.Src.Mem)
			read(in.Dst.Reg)
			t.TouchesMem = true
			access(in.Src.Mem, int(in.Width))
			write(in.Dst.Reg)

		case isa.OpSt:
			readMem(in.Dst.Mem)
			readSrc(in.Src)
			t.TouchesMem = true
			access(in.Dst.Mem, int(in.Width))

		case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
			isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar, isa.OpRol:
			if in.Op == isa.OpXor && in.Dst.Kind == isa.KindReg &&
				in.Src.Kind == isa.KindReg && in.Dst.Reg == in.Src.Reg {
				// Zeroing idiom: clean result, flag latch untouched.
				read(in.Dst.Reg)
				write(in.Dst.Reg)
				break
			}
			readSrc(in.Src)
			if in.Dst.Kind == isa.KindMem {
				readMem(in.Dst.Mem)
				t.TouchesMem = true
				access(in.Dst.Mem, int(in.Width))
			} else {
				read(in.Dst.Reg)
				write(in.Dst.Reg)
			}
			t.FlagPC = int32(pc)

		case isa.OpNot, isa.OpNeg:
			// Truncates the dst shadow in place; no flag latch update.
			read(in.Dst.Reg)
			write(in.Dst.Reg)

		case isa.OpCmp, isa.OpTest:
			read(in.Dst.Reg)
			readSrc(in.Src)
			t.FlagPC = int32(pc)

		case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge,
			isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
			if t.FlagPC < 0 {
				t.StaleFlagJump = true
			}

		case isa.OpPush:
			readSrc(in.Src)
			t.TouchesMem = true
			exact = false // SP-relative address shifts within the block

		case isa.OpPop:
			read(in.Dst.Reg)
			t.TouchesMem = true
			exact = false
			write(in.Dst.Reg)

		case isa.OpCall:
			// Stores a clean return-address shadow at SP-8.
			t.TouchesMem = true
			exact = false

		default:
			t.Unsafe = true
		}
	}
	if !exact {
		mem = nil
	}
	return t, mem, exact
}

// enterBlock is the analyzer's Hooks.OnBlock handler: true keeps the
// precise path, false applies the block summary and waives observation.
// Register/flag/syscall conditions are delegated to Transfer.Skippable
// (memLive=false: memory is decided here); the memory condition uses the
// exact entry-resolved footprint when available, falling back to global
// shadow liveness.
//
// Consecutive skips of the same block (a hot self-loop like bzip2's ftab
// clear) take a re-entry fast path: a skipped execution cannot change
// shadow state, and the skip's own effects (flag latch cleaned, clean
// registers re-cleaned) keep every non-footprint condition satisfied, so
// only the memory footprint — whose addresses advance with the induction
// registers — needs re-checking. a.lastSkip is invalidated by anything
// that can mutate shadow state: a precise step or a read syscall.
func (a *Analyzer) enterBlock(v *vm.VM, blockID int) bool {
	e := &a.transfers.entries[blockID]
	if blockID != a.lastSkip {
		if !e.t.Skippable(&a.regs, false, !a.flagTaint.IsEmpty()) {
			return true
		}
		if e.t.TouchesMem && a.shadow.live > 0 && !e.memExact {
			return true
		}
	}
	if e.t.TouchesMem && a.shadow.live > 0 {
		for i := range e.mem {
			ma := &e.mem[i]
			if !a.shadow.rangeClean(ma.addr(v), ma.width) {
				a.lastSkip = -1
				return true
			}
		}
	}
	a.lastSkip = blockID
	a.instrCount += uint64(e.t.Len)
	if e.t.FlagPC >= 0 {
		a.flagTaint = nil
		a.flagPC = int(e.t.FlagPC)
	}
	e.t.Apply(&a.regs)
	return false
}
