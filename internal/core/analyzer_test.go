package core

import (
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/taint"
	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// analyze assembles nothing: it runs an already-built program under a
// fresh analyzer and returns the report.
func analyze(t *testing.T, prog *isa.Program, input []byte, cfg Config) (*Report, *Analyzer) {
	t.Helper()
	machine, err := vm.NewFlat(prog)
	if err != nil {
		t.Fatalf("NewFlat: %v", err)
	}
	machine.SetInput(input)
	a := New(cfg)
	a.Attach(machine)
	if err := machine.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return a.Report(prog.Name), a
}

func TestTaintPropagationThroughRegisters(t *testing.T) {
	prog := isa.MustAssemble("prop", `
.data buf 16
.data out 16
main:
  mov r0, 0
  lea r2, [buf]
  mov r3, 1
  syscall
  ld.1 r1, [buf]     ; tainted with tag 1
  mov r2, r1
  shl r2, 4
  st.2 [out], r2
  halt
`)
	_, a := analyze(t, prog, []byte{0xAB}, Config{})
	outAddr := prog.MustSymbol("out").Addr
	lo := a.MemTaint(outAddr)
	// Bits 4-7 of out[0] tainted with tag 1.
	for i := 0; i < 4; i++ {
		if !lo[i].IsEmpty() {
			t.Errorf("out bit %d should be clean", i)
		}
	}
	for i := 4; i < 8; i++ {
		if !lo[i].Contains(1) {
			t.Errorf("out bit %d should carry tag 1", i)
		}
	}
	hi := a.MemTaint(outAddr + 1)
	for i := 0; i < 4; i++ {
		if !hi[i].Contains(1) {
			t.Errorf("out+1 bit %d should carry tag 1", i)
		}
	}
}

func TestXorZeroingIdiomClearsTaint(t *testing.T) {
	prog := isa.MustAssemble("xz", `
.data buf 8
main:
  mov r0, 0
  lea r2, [buf]
  mov r3, 1
  syscall
  ld.1 r1, [buf]
  xor r1, r1       ; zeroing idiom: must clear taint
  st.1 [buf + 4], r1
  halt
`)
	_, a := analyze(t, prog, []byte{0xFF}, Config{})
	if !a.RegTaint(isa.R1).IsClean() {
		t.Error("xor r1, r1 should clear r1's taint")
	}
}

func TestAndMaskRestrictsTaint(t *testing.T) {
	prog := isa.MustAssemble("am", `
.data buf 8
main:
  mov r0, 0
  lea r2, [buf]
  mov r3, 1
  syscall
  ld.1 r1, [buf]
  and r1, 0x0f
  halt
`)
	_, a := analyze(t, prog, []byte{0xFF}, Config{})
	w := a.RegTaint(isa.R1)
	for i := 0; i < 4; i++ {
		if !w.Bit(i).Contains(1) {
			t.Errorf("bit %d should stay tainted", i)
		}
	}
	for i := 4; i < 8; i++ {
		if !w.Bit(i).IsEmpty() {
			t.Errorf("bit %d should be masked clean", i)
		}
	}
}

func TestConstantTimeProgramHasNoFindings(t *testing.T) {
	rep, _ := analyze(t, victims.ConstantTime(), []byte("the quick brown fox"), Config{})
	if len(rep.Findings) != 0 {
		t.Errorf("constant-time program produced %d findings:\n%s", len(rep.Findings), rep)
	}
}

// E1 / Fig 2: the zlib INSERT_STRING gadget must be found, with the
// address taint of three consecutive input bytes at bit ranges 1-8, 6-13,
// and 11-15 (the 15-bit rolling hash shifted by 1 for the 2-byte entry).
func TestZlibGadgetFig2BitPositions(t *testing.T) {
	input := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	rep, _ := analyze(t, victims.ZlibInsertString(), input, Config{MaxSamplesPerGadget: 16})
	df := rep.DataFlowFindings()
	if len(df) != 1 {
		t.Fatalf("got %d data-flow findings, want 1 (the head store):\n%s", len(df), rep)
	}
	f := df[0]
	if f.Instr.Op != isa.OpSt || f.Instr.Width != 2 {
		t.Errorf("gadget instr = %s, want a 2-byte store", f.Instr.String())
	}
	if f.Count != len(input)-2 {
		t.Errorf("gadget triggered %d times, want %d", f.Count, len(input)-2)
	}
	// Sample k corresponds to loop iteration i=k inserting bytes k..k+2
	// (tags k+1..k+3). Check the third sample: tags 3,4,5.
	s := f.Samples[2]
	checks := []struct {
		tag    taint.Tag
		lo, hi int // inclusive tainted bit range in the address
	}{
		{5, 1, 8},   // newest byte: hash bits 0-7, shifted by 1
		{4, 6, 13},  // middle byte: hash bits 5-12, shifted by 1
		{3, 11, 15}, // oldest byte: hash bits 10-14 (mask 0x7fff), shifted by 1
	}
	for _, c := range checks {
		for bit := 0; bit < 20; bit++ {
			has := s.AddrTaint.Bit(bit).Contains(c.tag)
			want := bit >= c.lo && bit <= c.hi
			if has != want {
				t.Errorf("tag %d at bit %d: tainted=%v, want %v", c.tag, bit, has, want)
			}
		}
	}
}

// E2 / Fig 3: the LZW htab probe must be found with the newest input byte
// at bits 9-16 of the hash (c << 9), i.e. bits 12-19 of the byte-scaled
// address (scale 8 adds 3 more).
func TestLZWGadgetFig3BitPositions(t *testing.T) {
	input := []byte{0x20, 0x20, 0x41, 0x42}
	rep, _ := analyze(t, victims.LZWHashProbe(), input, Config{MaxSamplesPerGadget: 16})
	df := rep.DataFlowFindings()
	if len(df) < 1 {
		t.Fatalf("no data-flow findings:\n%s", rep)
	}
	// The first finding is the htab load probe.
	f := df[0]
	if f.Instr.Op != isa.OpLd {
		t.Errorf("first gadget = %s, want the htab load", f.Instr.String())
	}
	s := f.Samples[0] // i=1: c = input[1] (tag 2), ent = input[0] (tag 1)
	for bit := 12; bit <= 19; bit++ {
		if !s.AddrTaint.Bit(bit).Contains(2) {
			t.Errorf("address bit %d should carry tag 2 (c << 9 << 3)", bit)
		}
	}
	for bit := 3; bit <= 10; bit++ {
		if !s.AddrTaint.Bit(bit).Contains(1) {
			t.Errorf("address bit %d should carry tag 1 (ent << 3)", bit)
		}
	}
	if s.AddrTaint.Bit(0).Contains(1) || s.AddrTaint.Bit(2).Contains(2) {
		t.Error("bits 0-2 must be clean: scale-8 pointer arithmetic")
	}
}

// E3 / Fig 4: the bzip2 ftab increment must show two consecutive input
// bytes in the address: block[i] at hash bits 8-15 and block[i+1] at bits
// 0-7, shifted left 2 by the 4-byte scale.
func TestBzipGadgetFig4BitPositions(t *testing.T) {
	input := []byte("ILLINOIS")
	rep, _ := analyze(t, victims.BzipFtabAligned(), input, Config{MaxSamplesPerGadget: 16})
	df := rep.DataFlowFindings()
	if len(df) != 1 {
		t.Fatalf("got %d data-flow findings, want 1 (ftab increment):\n%s", len(df), rep)
	}
	f := df[0]
	if f.Instr.Op != isa.OpAdd || f.Instr.Dst.Kind != isa.KindMem {
		t.Errorf("gadget = %s, want add [ftab+...], 1", f.Instr.String())
	}
	if f.Count != len(input) {
		t.Errorf("triggered %d times, want %d", f.Count, len(input))
	}
	// Iteration order is i = n-1 .. 0. First sample: i=7, j = (block[0]<<8
	// after shr)|(block[7]<<8): actually j = block[7]<<8 | block[0].
	// Tags are 1-based: block[7] = tag 8 at hash bits 8-15; block[0] = tag
	// 1 at hash bits 0-7. Address = ftab + j*4: shift everything by 2.
	s := f.Samples[0]
	for bit := 10; bit <= 17; bit++ {
		if !s.AddrTaint.Bit(bit).Contains(8) {
			t.Errorf("addr bit %d should carry tag 8 (block[i]<<8, scaled)", bit)
		}
	}
	for bit := 2; bit <= 9; bit++ {
		if !s.AddrTaint.Bit(bit).Contains(1) {
			t.Errorf("addr bit %d should carry tag 1 (block[i+1], scaled)", bit)
		}
	}
	// Second sample: i=6 pairs block[6] (tag 7) with block[7] (tag 8):
	// tag 8 moves from the high half to the low half, as in Fig 4.
	s2 := f.Samples[1]
	for bit := 2; bit <= 9; bit++ {
		if !s2.AddrTaint.Bit(bit).Contains(8) {
			t.Errorf("2nd iter addr bit %d should carry tag 8 in low half", bit)
		}
	}
	for bit := 10; bit <= 17; bit++ {
		if !s2.AddrTaint.Bit(bit).Contains(7) {
			t.Errorf("2nd iter addr bit %d should carry tag 7 in high half", bit)
		}
	}
}

// E5: TaintChannel rediscovers the Osvik et al. AES T-table gadget.
func TestAESGadgetFound(t *testing.T) {
	pt := make([]byte, 16)
	for i := range pt {
		pt[i] = byte(i * 17)
	}
	rep, _ := analyze(t, victims.AESFirstRound(), pt, Config{})
	df := rep.DataFlowFindings()
	if len(df) != 1 {
		t.Fatalf("got %d data-flow findings, want 1 (Te0 lookup):\n%s", len(df), rep)
	}
	f := df[0]
	if f.Count != 16 {
		t.Errorf("Te0 lookup triggered %d times, want 16", f.Count)
	}
	// Each lookup's address is tainted by exactly one plaintext byte at
	// bits 2-9 (byte << 2 for the 4-byte entries).
	s := f.Samples[0]
	for bit := 2; bit <= 9; bit++ {
		if !s.AddrTaint.Bit(bit).Contains(1) {
			t.Errorf("addr bit %d should carry tag 1", bit)
		}
	}
	if s.AddrTaint.Bit(1).Contains(1) || s.AddrTaint.Bit(10).Contains(1) {
		t.Error("taint outside bits 2-9")
	}
}

// E6: the memcpy length branch is flagged as a control-flow gadget, and
// reduced traces differ between a multiple-of-8 and a non-multiple size.
func TestMemcpyControlFlowGadget(t *testing.T) {
	mk := func(n byte) []byte {
		in := make([]byte, int(n)+1)
		in[0] = n
		return in
	}
	rep8, a8 := analyze(t, victims.Memcpy(), mk(96), Config{ReducedTrace: true})
	rep9, a9 := analyze(t, victims.Memcpy(), mk(97), Config{ReducedTrace: true})
	if len(rep8.ControlFlowFindings()) == 0 {
		t.Fatalf("no control-flow findings for size 96:\n%s", rep8)
	}
	if len(rep9.ControlFlowFindings()) == 0 {
		t.Fatalf("no control-flow findings for size 97:\n%s", rep9)
	}
	div := DiffTraces(a8.Reduced(), a9.Reduced())
	if len(div) == 0 {
		t.Error("reduced traces for 96 vs 97 bytes should diverge")
	}
}

func TestTagHistoryTracking(t *testing.T) {
	input := []byte{0x20, 0x20, 0x41, 0x42}
	_, a := analyze(t, victims.LZWHashProbe(), input, Config{
		TrackTags: map[taint.Tag]bool{2: true},
	})
	h := a.History(2)
	if len(h) < 4 {
		t.Fatalf("history for tag 2 too short: %d events", len(h))
	}
	if h[0].Instr != "read syscall" {
		t.Errorf("first event = %q, want read syscall", h[0].Instr)
	}
	var sawShl, sawXor bool
	for _, e := range h {
		if strings.HasPrefix(e.Instr, "shl") {
			sawShl = true
		}
		if strings.HasPrefix(e.Instr, "xor") {
			sawXor = true
		}
	}
	if !sawShl || !sawXor {
		t.Errorf("history should include shl and xor steps: %+v", h)
	}
}

func TestReportRendering(t *testing.T) {
	input := []byte("abcdefgh")
	rep, _ := analyze(t, victims.ZlibInsertString(), input, Config{})
	text := rep.String()
	for _, want := range []string{
		"Taint-dependent memory access",
		"head", // symbolic operand
		"| x",  // matrix marks
		"(tainted)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestRenderTaintMatrixLayout(t *testing.T) {
	var w taint.Word
	for i := 1; i <= 8; i++ {
		w.SetBit(i, taint.NewSet(5752))
	}
	for i := 6; i <= 13; i++ {
		w.SetBit(i, taint.Union(w.Bit(i), taint.NewSet(5751)))
	}
	out := RenderTaintMatrix(&w)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // two tag rows + footer
		t.Fatalf("matrix has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "5751:") {
		t.Errorf("rows should be sorted by tag: %q", lines[0])
	}
	if !strings.Contains(lines[2], "15") || !strings.Contains(lines[2], " 0") {
		t.Errorf("footer should show bit indices 15..0: %q", lines[2])
	}
}

func TestCarryAwareModeSmearsUpward(t *testing.T) {
	prog := isa.MustAssemble("carry", `
.data buf 8
main:
  mov r0, 0
  lea r2, [buf]
  mov r3, 1
  syscall
  ld.1 r1, [buf]
  add r1, 100        ; carries can flow upward
  halt
`)
	_, def := analyze(t, prog, []byte{0x7F}, Config{})
	_, snd := analyze(t, prog, []byte{0x7F}, Config{CarryAware: true})
	if def.RegTaint(isa.R1).Bit(20).Contains(1) {
		t.Error("default mode should not taint bit 20")
	}
	if !snd.RegTaint(isa.R1).Bit(20).Contains(1) {
		t.Error("carry-aware mode should taint bit 20")
	}
}

func TestAnalyzerCounters(t *testing.T) {
	rep, a := analyze(t, victims.ConstantTime(), []byte("xyz"), Config{})
	if a.InstrCount() == 0 {
		t.Error("InstrCount should be > 0")
	}
	if rep.InstrCount != a.InstrCount() {
		t.Error("report should carry the instruction count")
	}
	if a.TaintOps() == 0 {
		t.Error("loading tainted bytes still touches taint")
	}
}

// The §VIII oblivious histogram variant still performs a taint-dependent
// store (bits 2-5 of the address carry the input's low nibble), but the
// dependence sits entirely below cache-line granularity: TaintChannel
// must flag it as invisible to the cache channel, while the vulnerable
// variant is visible.
func TestCacheVisibilityFilter(t *testing.T) {
	input := []byte("ILLINOIS")
	repVuln, _ := analyze(t, victims.BzipFtab(victims.BzipFtabOptions{FtabPad: 20}), input, Config{})
	repObl, _ := analyze(t, victims.BzipFtabOblivious(victims.BzipFtabOptions{FtabPad: 20}), input, Config{})

	if len(repVuln.CacheVisibleFindings()) == 0 {
		t.Error("vulnerable ftab gadget should be cache-visible")
	}
	oblDF := repObl.DataFlowFindings()
	if len(oblDF) == 0 {
		t.Fatal("oblivious variant still has a tainted-address store to find")
	}
	for _, f := range oblDF {
		if f.CacheVisible(CacheLineOffsetBits) {
			t.Errorf("oblivious gadget %s should be below line granularity", f.Instr.String())
		}
	}
	if len(repObl.CacheVisibleFindings()) != 0 {
		t.Errorf("oblivious victim should have no cache-visible findings, got %d",
			len(repObl.CacheVisibleFindings()))
	}
	if !strings.Contains(repObl.String(), "invisible at cache-line granularity") {
		t.Error("report should annotate sub-line gadgets")
	}
}

// The oblivious victim must still compute the correct histogram: the
// mitigation preserves semantics.
func TestObliviousVictimSemantics(t *testing.T) {
	prog := victims.BzipFtabOblivious(victims.BzipFtabOptions{FtabPad: 20})
	machine, err := vm.NewFlat(prog)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("abracadabra")
	machine.SetInput(input)
	if err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	n := len(input)
	want := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		j := uint64(input[i])<<8 | uint64(input[(i+1)%n])
		want[j]++
	}
	ftab := prog.MustSymbol("ftab")
	flat := machine.Mem.(*vm.FlatMemory)
	for j := uint64(0); j < 65536; j++ {
		got, err := flat.Load(ftab.Addr+4*j, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[j] {
			t.Fatalf("ftab[%#x] = %d, want %d", j, got, want[j])
		}
	}
}
