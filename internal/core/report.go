package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/zipchannel/zipchannel/internal/taint"
)

// Report is the human-readable output of an analysis run, mirroring the
// paper's Fig 2-4: one entry per gadget with the taint breakdown of the
// dereferenced address.
type Report struct {
	Program    string
	Findings   []*Finding
	InstrCount uint64
	TaintOps   uint64
}

// Report finalizes the analysis and returns findings in discovery order.
func (a *Analyzer) Report(programName string) *Report {
	r := &Report{
		Program:    programName,
		InstrCount: a.instrCount,
		TaintOps:   a.taintOps,
	}
	for _, k := range a.order {
		r.Findings = append(r.Findings, a.findings[k])
	}
	return r
}

// CacheLineOffsetBits is log2 of the cache line size: the address bits a
// cache side channel cannot observe (§IV-A, "the 6 least significant
// bits are not visible to the attacker").
const CacheLineOffsetBits = 6

// CacheVisible reports whether the gadget leaks through a cache channel
// of the given line granularity: a data-flow gadget whose address taint
// is confined to the line-offset bits is real taint flow but invisible
// to Prime+Probe/Flush+Reload. Control-flow gadgets are always visible
// (the executed code line itself is the signal). This is how the §VIII
// oblivious-histogram mitigation shows up as safe: its remaining
// address dependence sits entirely below bit 6.
func (f *Finding) CacheVisible(lineOffsetBits int) bool {
	if f.Kind == ControlFlow {
		return true
	}
	for _, s := range f.Samples {
		if s.AddrTaint.AnyTainted(lineOffsetBits, taint.WordBits) {
			return true
		}
	}
	return false
}

// DataFlowFindings returns only the tainted-address gadgets.
func (r *Report) DataFlowFindings() []*Finding {
	return r.byKind(DataFlow)
}

// CacheVisibleFindings returns only the gadgets observable at standard
// 64-byte-line granularity.
func (r *Report) CacheVisibleFindings() []*Finding {
	var out []*Finding
	for _, f := range r.Findings {
		if f.CacheVisible(CacheLineOffsetBits) {
			out = append(out, f)
		}
	}
	return out
}

// ControlFlowFindings returns only the tainted-branch gadgets.
func (r *Report) ControlFlowFindings() []*Finding {
	return r.byKind(ControlFlow)
}

func (r *Report) byKind(k GadgetKind) []*Finding {
	var out []*Finding
	for _, f := range r.Findings {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// String renders the whole report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TaintChannel report for %q\n", r.Program)
	fmt.Fprintf(&b, "  instructions executed: %d (taint-touching: %d)\n", r.InstrCount, r.TaintOps)
	fmt.Fprintf(&b, "  leakage gadgets found: %d\n\n", len(r.Findings))
	for _, f := range r.Findings {
		b.WriteString(f.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// Render renders one finding in the style of the paper's Fig 2: the
// instruction, then for each retained sample the tainted operand value and
// the per-tag bit matrix.
func (f *Finding) Render() string {
	var b strings.Builder
	switch f.Kind {
	case DataFlow:
		b.WriteString("Taint-dependent memory access\n")
	case ControlFlow:
		b.WriteString("Taint-dependent branch\n")
	}
	fmt.Fprintf(&b, "  pc %d: %s   (triggered %d times)\n", f.PC, f.Instr.String(), f.Count)
	if !f.CacheVisible(CacheLineOffsetBits) {
		b.WriteString("  NOTE: address taint confined to bits 0-5; invisible at cache-line granularity\n")
	}
	for i, s := range f.Samples {
		if f.Kind == DataFlow {
			fmt.Fprintf(&b, "  sample %d: step %d, address = 0x%x (tainted)\n", i, s.Step, s.Addr)
			b.WriteString(indent(RenderTaintMatrix(&s.AddrTaint), "    "))
		} else {
			fmt.Fprintf(&b, "  sample %d: step %d, flags set at pc %d, tags %s\n",
				i, s.Step, s.Addr, s.AddrTaint.Bit(0).String())
		}
	}
	return b.String()
}

// RenderTaintMatrix renders the per-bit taint of a word exactly in the
// layout of the paper's Fig 2: one row per contributing input byte with
// 'x' marks at its bit positions, and a footer row of bit indices
// (most-significant on the left).
func RenderTaintMatrix(w *taint.Word) string {
	// Collect tags and the highest tainted bit.
	tagBits := map[taint.Tag][]int{}
	hi := 15 // show at least 16 bit positions, like Fig 2
	for i := 0; i < taint.WordBits; i++ {
		s := w.Bit(i)
		if s.IsEmpty() {
			continue
		}
		if i > hi {
			hi = i
		}
		for _, t := range s.Tags() {
			tagBits[t] = append(tagBits[t], i)
		}
	}
	if len(tagBits) == 0 {
		return "(untainted)\n"
	}
	tags := make([]taint.Tag, 0, len(tagBits))
	for t := range tagBits {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })

	// Label column width.
	labelW := 0
	for _, t := range tags {
		if n := len(fmt.Sprintf("%d", t)); n > labelW {
			labelW = n
		}
	}

	var b strings.Builder
	for _, t := range tags {
		set := map[int]bool{}
		for _, bit := range tagBits[t] {
			set[bit] = true
		}
		fmt.Fprintf(&b, "%*d: ", labelW, t)
		for bit := hi; bit >= 0; bit-- {
			if set[bit] {
				b.WriteString("| x")
			} else {
				b.WriteString("|  ")
			}
		}
		b.WriteString("|\n")
	}
	// Footer: bit indices.
	b.WriteString(strings.Repeat(" ", labelW+2))
	for bit := hi; bit >= 0; bit-- {
		fmt.Fprintf(&b, "|%2d", bit)
	}
	b.WriteString("|\n")
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// DiffTraces compares two reduced traces (same program, different inputs)
// and returns the PCs where the executions diverge in their
// taint-touching instruction sequence. This is how TaintChannel discovered
// the mainSort/fallbackSort control-flow divergence (§VI): different
// inputs light up different gadget sites.
func DiffTraces(a, b []ReducedEvent) []int {
	seen := map[int]bool{}
	var diverging []int
	count := func(tr []ReducedEvent) map[int]int {
		m := map[int]int{}
		for _, e := range tr {
			m[e.PC]++
		}
		return m
	}
	ca, cb := count(a), count(b)
	for pc := range ca {
		if ca[pc] != cb[pc] && !seen[pc] {
			seen[pc] = true
			diverging = append(diverging, pc)
		}
	}
	for pc := range cb {
		if ca[pc] != cb[pc] && !seen[pc] {
			seen[pc] = true
			diverging = append(diverging, pc)
		}
	}
	sort.Ints(diverging)
	return diverging
}

// FindingAt returns the finding for a given kind and pc, if present.
func (r *Report) FindingAt(kind GadgetKind, pc int) (*Finding, bool) {
	for _, f := range r.Findings {
		if f.Kind == kind && f.PC == pc {
			return f, true
		}
	}
	return nil, false
}

// GadgetInstrs lists, per finding, the disassembled instruction; useful
// for compact summaries (§IV survey table).
func (r *Report) GadgetInstrs() []string {
	out := make([]string, 0, len(r.Findings))
	for _, f := range r.Findings {
		out = append(out, fmt.Sprintf("[%s] pc %d: %s (x%d)", f.Kind, f.PC, f.Instr.String(), f.Count))
	}
	return out
}
