// Package victims contains the leakage-gadget programs that TaintChannel
// analyzes, written in the isa assembly. Each program is a faithful
// miniature of the code the paper studies:
//
//   - ZlibInsertString: zlib's INSERT_STRING/UPDATE_HASH hash-head update
//     (paper Listing 1, Fig 2),
//   - LZWHashProbe: ncompress's htab probe with hp = (c<<9) ^ ent
//     (paper Listing 2, Fig 3),
//   - BzipFtab: bzip2's two-byte frequency-table construction including
//     the quadrant zeroing (paper Listing 3, Figs 4-5),
//   - AESFirstRound: the Osvik et al. T-table gadget TaintChannel is
//     validated against (§III-B),
//   - Memcpy: the size-dependent vector/byte-tail control-flow leak in
//     memcpy (§III-B),
//   - ConstantTime: a negative control with no input-dependent accesses.
package victims

import (
	"fmt"

	"github.com/zipchannel/zipchannel/internal/isa"
)

// MaxInput is the input-buffer capacity of every victim program.
const MaxInput = 65536

// zlibSrc is the INSERT_STRING loop of the zlib/DEFLATE compressor
// (Listing 1). head is an array of 2-byte entries indexed by the rolling
// 15-bit hash ins_h of the 3 latest input bytes:
//
//	ins_h = ((ins_h << 5) ^ window[i+2]) & 0x7fff
//	head[ins_h] = i
const zlibSrc = `
.const MASK 0x7fff
.data window 65536
.data head 65536 align=64
main:
  mov r0, 0              ; read(0, window, 65536)
  lea r2, [window]
  mov r3, 65536
  syscall
  mov r10, r0            ; n = bytes read
  cmp r10, 3
  jl done
  ld.1 r4, [window]      ; ins_h = window[0] << 5
  shl r4, 5
  ld.1 r5, [window + 1]
  xor r4, r5             ; ins_h ^= window[1]
  mov r1, 0              ; i = 0
loop:
  shl r4, 5              ; UPDATE_HASH(window[i+2])
  mov r6, r1
  add r6, 2
  ld.1 r5, [window + r6]
  xor r4, r5
  and r4, MASK
  st.2 [head + r4*2], r1 ; head[ins_h] = i  <-- leakage gadget
  add r1, 1
  mov r7, r10
  sub r7, 2
  cmp r1, r7
  jl loop
done:
  halt
`

// lzwSrc is the hash-table probe of ncompress (Listing 2):
//
//	hp = ((long)c << 9) ^ ent
//	if (htab[hp] == fc) goto hfound;
//
// ent starts as the first input byte and is updated deterministically, so
// an attacker replaying the dictionary recovers each c from hp (§IV-C).
const lzwSrc = `
.data inputbuf 65536
.data htab 1048576 align=64    ; 131072 entries x 8 bytes: hp < 2^17
main:
  mov r0, 0              ; read(0, inputbuf, 65536)
  lea r2, [inputbuf]
  mov r3, 65536
  syscall
  mov r10, r0
  cmp r10, 2
  jl done
  ld.1 r4, [inputbuf]    ; ent = first byte
  mov r1, 1              ; i = 1
loop:
  ld.1 r5, [inputbuf + r1]  ; c = next byte
  mov r6, r5
  shl r6, 9
  xor r6, r4             ; hp = (c << 9) ^ ent
  ld.8 r7, [htab + r6*8] ; probe htab[hp]  <-- leakage gadget
  mov r8, r4             ; fc = (ent << 8) | c
  shl r8, 8
  or r8, r5
  cmp r7, r8
  je found
  st.8 [htab + r6*8], r8 ; insert (simplified: always insert)
  mov r4, r5             ; ent = c
  jmp next
found:
  mov r4, r6             ; ent = hash-derived code (simplified)
  and r4, 0xffff
next:
  add r1, 1
  cmp r1, r10
  jl loop
done:
  halt
`

// bzipSrcTemplate is the frequency-table construction of bzip2's mainSort
// (Listing 3), including the quadrant zeroing that makes single-stepping
// reliable (§V). The ftab array of 65537 4-byte counters is deliberately
// placed after a pad so its base is NOT cache-line aligned, reproducing
// the off-by-one ambiguity of §IV-D; pass pad=0 for an aligned variant.
const bzipSrcTemplate = `
.data block 65536 align=4096
.data quadrant 131072 align=4096
.data pad %d
.data ftab 262148 align=%d
main:
  mov r0, 0              ; read(0, block, 65536)
  lea r2, [block]
  mov r3, 65536
  syscall
  mov r10, r0            ; nblock
  cmp r10, 1
  jl done
  mov r1, 0              ; clear ftab
zf:
  st.4 [ftab + r1*4], 0
  add r1, 1
  cmp r1, 65537
  jl zf
  ld.1 r2, [block]       ; j = block[0] << 8
  shl r2, 8
  mov r1, r10            ; i = nblock - 1
  sub r1, 1
loop:
  st.2 [quadrant + r1*2], 0   ; quadrant[i] = 0
  ld.1 r3, [block + r1]
  shl r3, 8
  shr r2, 8
  or r2, r3              ; j = (j >> 8) | (block[i] << 8)
  add.4 [ftab + r2*4], 1 ; ftab[j]++  <-- leakage gadget
  sub r1, 1
  cmp r1, 0
  jge loop
done:
  halt
`

// bzipObliviousSrcTemplate is the §VIII mitigation variant: instead of a
// single data-dependent ftab increment, every loop iteration touches one
// entry in EVERY cache line of ftab, adding 1 only at the line containing
// j (computed branchlessly) and 0 elsewhere. The fault address and the
// cache footprint are input-independent; only the low 4 index bits (below
// cache-line granularity) depend on j.
const bzipObliviousSrcTemplate = `
.data block 65536 align=4096
.data quadrant 131072 align=4096
.data pad %d
.data ftab 262148 align=%d
main:
  mov r0, 0              ; read(0, block, 65536)
  lea r2, [block]
  mov r3, 65536
  syscall
  mov r10, r0            ; nblock
  cmp r10, 1
  jl done
  mov r1, 0              ; clear ftab
zf:
  st.4 [ftab + r1*4], 0
  add r1, 1
  cmp r1, 65537
  jl zf
  ld.1 r2, [block]       ; j = block[0] << 8
  shl r2, 8
  mov r1, r10            ; i = nblock - 1
  sub r1, 1
loop:
  st.2 [quadrant + r1*2], 0
  ld.1 r3, [block + r1]
  shl r3, 8
  shr r2, 8
  or r2, r3              ; j = (j >> 8) | (block[i] << 8)
  ; oblivious histogram update: touch one entry per line, all lines
  mov r11, r2
  shr r11, 4             ; target line = j >> 4
  mov r12, r2
  and r12, 15            ; in-line slot = j & 15
  mov r4, 0              ; k = line counter
oblv:
  mov r5, r4
  xor r5, r11            ; diff = k ^ (j>>4)
  mov r6, r5
  neg r6
  or r6, r5
  shr r6, 63             ; 1 if diff != 0
  mov r7, 1
  sub r7, r6             ; increment: 1 only at the target line
  mov r8, r4
  shl r8, 4
  add r8, r12            ; entry index = k*16 + (j & 15)
  add.4 [ftab + r8*4], r7
  add r4, 1
  cmp r4, 4096           ; lines 0..4095 cover every reachable entry
  jl oblv                ; (j is 16-bit, so entry 65536 is never hit)
  sub r1, 1
  cmp r1, 0
  jge loop
done:
  halt
`

// aesSrc is the first AddRoundKey+SubBytes table lookup of a T-table AES:
// the classic Osvik et al. gadget, Te0[pt[i] ^ key[i]]. The key is enclave
// data (clean); the plaintext is attacker-observed input (tainted).
const aesSrc = `
.data pt 16
.data key 16
.init key 0x2b 0x7e 0x15 0x16 0x28 0xae 0xd2 0xa6 0xab 0xf7 0x15 0x88 0x09 0xcf 0x4f 0x3c
.data te0 1024 align=64
.data out 64
main:
  mov r0, 0              ; read(0, pt, 16)
  lea r2, [pt]
  mov r3, 16
  syscall
  mov r1, 0
loop:
  ld.1 r2, [pt + r1]
  ld.1 r3, [key + r1]
  xor r2, r3             ; s = pt[i] ^ key[i]
  ld.4 r4, [te0 + r2*4]  ; Te0[s]  <-- leakage gadget
  st.4 [out + r1*4], r4
  add r1, 1
  cmp r1, 16
  jl loop
  halt
`

// memcpySrc copies n bytes where n is the first input byte: when n is a
// multiple of 8 it takes a word-copy path, otherwise it falls into a
// byte-tail loop, leaking the size via control flow (§III-B's AVX
// multiple-of-register-size observation, scaled to our 8-byte words).
const memcpySrc = `
.data buf 4096
.data dst 4096
main:
  mov r0, 0              ; read(0, buf, 256)
  lea r2, [buf]
  mov r3, 256
  syscall
  ld.1 r3, [buf]         ; n = buf[0] (tainted length)
  mov r4, r3
  and r4, 7
  cmp r4, 0              ; n % 8 == 0 ?
  jne tail               ; <-- control-flow leakage gadget
  mov r1, 0              ; vector path: 8-byte chunks
vec:
  cmp r1, r3
  jae done
  ld.8 r5, [buf + r1 + 1]
  st.8 [dst + r1], r5
  add r1, 8
  jmp vec
tail:
  mov r1, 0              ; byte path
bloop:
  cmp r1, r3
  jae done
  ld.1 r5, [buf + r1 + 1]
  st.1 [dst + r1], r5
  add r1, 1
  jmp bloop
done:
  halt
`

// constantTimeSrc is the negative control: it reads input, then performs
// only fixed-address accesses and input-independent branches. TaintChannel
// must report zero gadgets for it.
const constantTimeSrc = `
.data buf 65536
.data acc 8
main:
  mov r0, 0
  lea r2, [buf]
  mov r3, 65536
  syscall
  mov r10, r0
  cmp r10, 1
  jl done
  mov r1, 0
  mov r2, 0
loop:
  ld.1 r3, [buf + r1]    ; address depends only on i, not on data
  add r2, r3
  add r1, 1
  cmp r1, r10
  jl loop
  st.8 [acc], r2
done:
  halt
`

// ZlibInsertString returns the zlib INSERT_STRING gadget program.
func ZlibInsertString() *isa.Program {
	return isa.MustAssemble("zlib_insert_string", zlibSrc)
}

// LZWHashProbe returns the ncompress htab-probe gadget program.
func LZWHashProbe() *isa.Program {
	return isa.MustAssemble("lzw_hash_probe", lzwSrc)
}

// BzipFtabOptions controls the ftab layout of the bzip2 victim.
type BzipFtabOptions struct {
	// FtabPad inserts this many bytes before ftab, de-aligning its base
	// from cache lines; the paper's off-by-one ambiguity appears whenever
	// FtabPad % 64 != 0. Use 0 (with Align 64) for the aligned variant.
	FtabPad int
	// Align is ftab's alignment directive; defaults to 4.
	Align int
}

// BzipFtab returns the bzip2 frequency-table gadget program. The paper's
// configuration (misaligned ftab) is BzipFtab(BzipFtabOptions{FtabPad: 20}).
func BzipFtab(opts BzipFtabOptions) *isa.Program {
	pad := opts.FtabPad
	if pad <= 0 {
		pad = 64 // keep a symbol; 64 keeps alignment when Align=64
	}
	align := opts.Align
	if align <= 0 {
		align = 4
	}
	return isa.MustAssemble("bzip2_ftab", fmt.Sprintf(bzipSrcTemplate, pad, align))
}

// BzipFtabAligned returns the cache-line-aligned ftab variant, where every
// block byte maps unambiguously to cache lines.
func BzipFtabAligned() *isa.Program {
	return BzipFtab(BzipFtabOptions{FtabPad: 64, Align: 64})
}

// BzipFtabOblivious returns the §VIII mitigation variant of the histogram
// gadget: per input byte it writes one entry in every ftab cache line
// (adding 0 except at j's line), so neither the fault address nor the
// cache footprint depends on the input.
func BzipFtabOblivious(opts BzipFtabOptions) *isa.Program {
	pad := opts.FtabPad
	if pad <= 0 {
		pad = 64
	}
	align := opts.Align
	if align <= 0 {
		align = 4
	}
	return isa.MustAssemble("bzip2_ftab_oblivious", fmt.Sprintf(bzipObliviousSrcTemplate, pad, align))
}

// AESFirstRound returns the AES T-table validation gadget.
func AESFirstRound() *isa.Program {
	return isa.MustAssemble("aes_first_round", aesSrc)
}

// Memcpy returns the size-dependent memcpy control-flow gadget.
func Memcpy() *isa.Program {
	return isa.MustAssemble("memcpy", memcpySrc)
}

// ConstantTime returns the leakage-free negative control.
func ConstantTime() *isa.Program {
	return isa.MustAssemble("constant_time", constantTimeSrc)
}

// All returns every victim keyed by name, for the CLI.
func All() map[string]*isa.Program {
	return map[string]*isa.Program{
		"zlib":          ZlibInsertString(),
		"lzw":           LZWHashProbe(),
		"bzip2":         BzipFtab(BzipFtabOptions{FtabPad: 20}),
		"bzip2-aligned": BzipFtabAligned(),
		"aes":           AESFirstRound(),
		"memcpy":        Memcpy(),
		"constant-time": ConstantTime(),
	}
}
