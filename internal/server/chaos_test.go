package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// chaosFaults arms the server's full injection-point inventory at roughly
// a 10% aggregate fault rate (the make test-chaos profile).
func chaosFaults(t *testing.T, seed int64) *fault.Registry {
	t.Helper()
	reg := fault.NewRegistry(seed)
	err := reg.ArmAll(strings.Join([]string{
		"server.codec.compress=error:0.04",
		"server.codec.compress=panic:0.02",
		"server.codec.compress=corrupt:0.02",
		"server.codec.decompress=error:0.04",
		"server.codec.decompress=panic:0.02",
		"server.cache.get=corrupt:0.04",
		"server.cache.get=error:0.02",
		"server.cache.put=error:0.02",
		"server.gate.acquire=latency:0.05:500",
		"server.gate.acquire=error:0.02",
	}, ","))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestChaosConcurrentFaultedLoad is the server's chaos contract, run under
// -race by `make race` and `make test-chaos`: ~10% injected faults across
// codec workers, the cache, and pool admission, with a deliberately tiny
// cache so eviction churns concurrently with hits, misses, corruption
// detection, and degraded bypasses. Every client round-trips every body
// with bounded retries; the test fails on any wrong byte (corruption must
// never escape), any unrecovered request, or inconsistent cache counters.
func TestChaosConcurrentFaultedLoad(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Workers:    4,
		CacheBytes: 16 << 10, // tiny: forces evictions under load
		Registry:   reg,
		Faults:     chaosFaults(t, 7),
		// No server-side retries: every injected failure surfaces as a
		// 5xx, so this test proves the *client* retry loop carries the
		// recovery (the server-retry path is covered by cmd/zipload's
		// chaos test, which leaves them on).
		CodecRetries: -1,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A body pool small enough to produce cache hits but larger than the
	// budget in aggregate, so eviction and re-fill both happen.
	rng := rand.New(rand.NewSource(11))
	bodies := make([][]byte, 12)
	for i := range bodies {
		b := make([]byte, 1500+rng.Intn(1500))
		for j := range b {
			b[j] = byte('a' + rng.Intn(6))
		}
		bodies[i] = b
	}
	names := codec.Names()

	const clients = 16
	const requestsPerClient = 25
	results := make([]chaosSlot, clients)
	err := par.ForEach(clients, clients, func(ci int) error {
		crng := rand.New(rand.NewSource(par.SplitSeed(3, fmt.Sprintf("chaos-client-%d", ci))))
		cl := ts.Client()
		for n := 0; n < requestsPerClient; n++ {
			name := names[crng.Intn(len(names))]
			body := bodies[crng.Intn(len(bodies))]
			comp, ok := postRetry(cl, ts.URL+"/v1/"+name+"/compress", body, &results[ci])
			if !ok {
				results[ci].failures++
				continue
			}
			back, ok := postRetry(cl, ts.URL+"/v1/"+name+"/decompress", comp, &results[ci])
			if !ok {
				results[ci].failures++
				continue
			}
			if !bytes.Equal(back, body) {
				return fmt.Errorf("client %d: round-trip corruption through %s (%d bytes in, %d back)",
					ci, name, len(body), len(back))
			}
			results[ci].roundTrips++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err) // corruption is an immediate failure, retries or not
	}

	var trips, retries, failures int
	for _, r := range results {
		trips += r.roundTrips
		retries += r.retries
		failures += r.failures
	}
	total := clients * requestsPerClient
	t.Logf("chaos load: %d/%d round trips ok, %d client retries, %d unrecovered", trips, total, retries, failures)
	// Bounded error rate: with bounded client retries over ~10% injected
	// faults, the vast majority of requests must still land.
	if failures > total/20 {
		t.Errorf("%d of %d requests unrecovered (want <= 5%%)", failures, total)
	}
	if retries == 0 {
		t.Error("no client retries happened — faults were not actually exercised")
	}

	snap := reg.Snapshot()
	hits := snap.Counters["server.cache.hits"]
	misses := snap.Counters["server.cache.misses"]
	evictions := snap.Counters["server.cache.evictions"]
	if hits == 0 || misses == 0 {
		t.Errorf("cache counters flat: hits=%d misses=%d (want both > 0)", hits, misses)
	}
	if evictions == 0 {
		t.Error("no evictions despite a 16 KiB budget under multi-MB traffic")
	}
	if got := snap.Counters["server.cache.corruptions_detected"]; got == 0 {
		t.Error("no corruption detections despite server.cache.get=corrupt being armed")
	}
	if got := snap.Counters["server.errors.codec_panic"]; got == 0 {
		t.Error("no contained codec panics despite panic faults armed")
	}
	if snap.Counters["server.errors.panic"] != 0 {
		t.Error("a panic escaped to the outer middleware; codec panics must be contained at the worker")
	}
	// The gauges track the accounting exactly (entries and bytes within
	// budget even after corruption-evictions).
	if b := snap.Gauges["server.cache.bytes"]; b < 0 || b > 16<<10 {
		t.Errorf("cache bytes gauge %v outside [0, budget]", b)
	}
	// The server must still be alive and serving after the storm.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v / %v", err, resp)
	}
	resp.Body.Close()
}

type chaosSlot struct{ roundTrips, retries, failures int }

// postRetry POSTs with up to 6 attempts on 5xx/transport errors, counting
// retries into the client's slot. Returns ok=false when attempts run out.
func postRetry(cl *http.Client, url string, body []byte, sl *chaosSlot) ([]byte, bool) {
	for attempt := 0; attempt < 6; attempt++ {
		if attempt > 0 {
			sl.retries++
			time.Sleep(time.Duration(1<<attempt) * time.Millisecond)
		}
		resp, err := cl.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			continue
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode >= 500 {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, false // 4xx: not retryable
		}
		return out, true
	}
	return nil, false
}

// TestChaosBreakerServesCachedWhileOpen pins the degraded mode: with the
// compress worker hard-down (error on every attempt, no retries), cached
// responses keep flowing while uncached requests see 500s until the
// breaker opens, then fast 503s, then a trial 500 after the cooldown.
func TestChaosBreakerServesCachedWhileOpen(t *testing.T) {
	faults := fault.NewRegistry(1)
	if err := faults.ArmAll("server.codec.compress=error@1"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(Config{
		Workers:          2,
		Registry:         reg,
		Faults:           faults,
		CodecRetries:     -1, // every attempt fails; retries would only consume hits
		BreakerThreshold: 3,
		BreakerCooldown:  4,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Seed the cache directly (white box): the breaker guards the codec,
	// not the cache, so this entry must stay servable throughout.
	cachedBody := []byte("the body that was compressed before the outage")
	cachedOut := []byte("previously-computed compressed bytes")
	s.cache.Put(cacheKey("compress", "lz77", "", cachedBody), cachedOut)

	postStatus := func(body []byte) (int, []byte, string) {
		resp, err := http.Post(ts.URL+"/v1/lz77/compress", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, out, resp.Header.Get("X-Cache")
	}

	uncached := []byte("a body with no cache entry")
	// Three consecutive transient failures open the breaker...
	for i := 0; i < 3; i++ {
		if code, _, _ := postStatus(uncached); code != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d, want 500", i+1, code)
		}
	}
	// ...after which uncached requests fast-fail for the cooldown window.
	for i := 0; i < 4; i++ {
		if code, _, _ := postStatus(uncached); code != http.StatusServiceUnavailable {
			t.Fatalf("cooldown request %d: status %d, want 503", i+1, code)
		}
		// The cached entry keeps being served from inside the outage.
		code, out, xc := postStatus(cachedBody)
		if code != http.StatusOK || !bytes.Equal(out, cachedOut) || xc != "HIT" {
			t.Fatalf("cached request during open breaker: status %d, X-Cache %q", code, xc)
		}
	}
	// Cooldown over: the trial request reaches the (still broken) codec.
	if code, _, _ := postStatus(uncached); code != http.StatusInternalServerError {
		t.Fatalf("trial request: status %d, want 500", code)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["server.breaker.trips"]; got < 2 {
		t.Errorf("breaker.trips = %d, want >= 2 (initial trip + failed trial)", got)
	}
	if got := snap.Counters["server.breaker.rejected"]; got != 4 {
		t.Errorf("breaker.rejected = %d, want exactly 4 (the cooldown window)", got)
	}
}

// TestChaosDeadlineOnSaturatedPool: with one worker held by a slow
// (latency-faulted) request, a second request whose deadline expires while
// queued gets a clean 504, not an unbounded wait.
func TestChaosDeadlineOnSaturatedPool(t *testing.T) {
	faults := fault.NewRegistry(2)
	// 300 ms of injected latency on every codec execution.
	if err := faults.ArmAll("server.codec.compress=latency@1:300000"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(Config{
		Workers:        1,
		Registry:       reg,
		Faults:         faults,
		CacheBytes:     -1, // no cache: every request must take a slot
		RequestTimeout: 120 * time.Millisecond,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := make(chan int)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/lz77/compress", "application/octet-stream",
			bytes.NewReader([]byte("slow request holding the only worker")))
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	time.Sleep(30 * time.Millisecond) // let the first request take the slot

	resp, err := http.Post(ts.URL+"/v1/lz77/compress", "application/octet-stream",
		bytes.NewReader([]byte("queued request that must time out")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued request: status %d, want 504", resp.StatusCode)
	}
	if code := <-first; code != http.StatusOK {
		t.Fatalf("slot-holding request: status %d, want 200 (latency, not failure)", code)
	}
	if got := reg.Snapshot().Counters["server.errors.deadline"]; got != 1 {
		t.Errorf("server.errors.deadline = %d, want 1", got)
	}
}

// TestDisarmedFaultsAreInvisible: a server built with an empty fault
// registry must not leak any fault/resilience counters into its metrics
// snapshot and must behave byte-identically to a no-faults server.
func TestDisarmedFaultsAreInvisible(t *testing.T) {
	body := []byte(strings.Repeat("determinism check ", 40))
	run := func(cfg Config) (*obs.Snapshot, []byte) {
		reg := obs.NewRegistry()
		cfg.Registry = reg
		ts := httptest.NewServer(New(cfg))
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/bwt/compress", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return reg.Snapshot(), out
	}

	plainSnap, plainOut := run(Config{Workers: 2})
	armedSnap, armedOut := run(Config{Workers: 2, Faults: fault.NewRegistry(99)})

	if !bytes.Equal(plainOut, armedOut) {
		t.Fatal("compressed bytes differ between no-faults and disarmed-faults servers")
	}
	// Self-check runs when a fault registry is present but must not
	// change any counted behavior; latency histograms are wall-clock and
	// excluded from the comparison.
	for _, snap := range []*obs.Snapshot{plainSnap, armedSnap} {
		delete(snap.Histograms, "server.request_latency_us")
	}
	a, err := plainSnap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := armedSnap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("metric snapshots diverge with a disarmed fault registry:\n--- plain\n%s\n--- disarmed\n%s", a, b)
	}
	// Disarmed fault points stay invisible (AttachObs declares counters
	// only for armed points); breaker counters are different — they are
	// declared for every build so scrapers see them from zero — but a
	// disarmed run must never actually count on them.
	for name, v := range armedSnap.Counters {
		if strings.HasPrefix(name, "fault.") {
			t.Errorf("disarmed run leaked counter %s", name)
		}
		if strings.HasPrefix(name, "server.breaker.") && v != 0 {
			t.Errorf("disarmed run incremented %s = %d, want 0", name, v)
		}
	}
	for _, want := range []string{"server.breaker.rejected", "server.breaker.trips"} {
		if _, ok := armedSnap.Counters[want]; !ok {
			t.Errorf("declared-at-zero counter %s missing from snapshot", want)
		}
	}
}
