package server

// Backend chaos scenarios (picked up by `make test-chaos` via the
// TestChaos name prefix): a failing disk, a hanging peer, and a
// corrupted cold tier. The contract under every one of them is the
// same — the hierarchy degrades (skipped store, miss, slower path),
// it never serves corrupt bytes and never takes the request down.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// TestChaosDiskWriteErrorDegradesToUncached: every disk write fails;
// puts are absorbed (counted, skipped), reads miss, and a tiered
// hierarchy above the failing disk keeps serving from its hot tier.
func TestChaosDiskWriteErrorDegradesToUncached(t *testing.T) {
	faults := fault.NewRegistry(3)
	if err := faults.ArmAll(FaultDiskWrite + "=error:1"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	disk, err := NewDiskBackend(t.TempDir(), 1<<20, reg, "server.cache.cold", faults)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	key := cacheKey("compress", "lz77", "", []byte("doomed store"))
	disk.Put(key, []byte("value"))
	if _, ok := disk.Get(key); ok {
		t.Fatal("a failed write must not produce a readable entry")
	}
	if entries, bytes := disk.Stats(); entries != 0 || bytes != 0 {
		t.Fatalf("failed writes leaked accounting: %d entries, %d bytes", entries, bytes)
	}
	if got := reg.Snapshot().Counters["server.cache.cold.write_errors"]; got == 0 {
		t.Fatal("write errors not counted")
	}

	// The hierarchy above the failing disk: hot tier still serves.
	hot := NewLRUBackend(1<<20, reg, "server.cache.hot")
	tiered := NewTiered(hot, disk, reg, "server.cache")
	val := []byte("still served from the hot tier")
	tiered.Put(key, val)
	got, ok := tiered.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatal("tiered backend stopped serving because its cold tier cannot write")
	}
}

// TestChaosPeerTimeoutIsAMiss: a peer that answers slower than the
// client's deadline degrades to a miss within ~the timeout — a cold
// tier slower than recomputing must never stall the request path.
func TestChaosPeerTimeoutIsAMiss(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer slow.Close()

	reg := obs.NewRegistry()
	peer := NewPeerBackend(slow.URL, 30*time.Millisecond, reg, "server.cache.peer", nil)
	defer peer.Close()

	key := cacheKey("compress", "lzw", "", []byte("slow peer"))
	start := time.Now()
	_, ok := peer.Get(key)
	elapsed := time.Since(start)
	if ok {
		t.Fatal("timed-out peer read reported a hit")
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("peer miss took %v — the timeout did not bound the exchange", elapsed)
	}
	snap := reg.Snapshot()
	if snap.Counters["server.cache.peer.errors"] == 0 || snap.Counters["server.cache.peer.misses"] == 0 {
		t.Fatalf("peer timeout not accounted: %v", snap.Counters)
	}

	// The injected flavor: a latency fault plus short timeout, same
	// degradation without a slow server in the loop.
	faults := fault.NewRegistry(5)
	if err := faults.ArmAll(FaultPeerGet + "=error:1"); err != nil {
		t.Fatal(err)
	}
	peerDown := NewPeerBackend("http://127.0.0.1:1", 30*time.Millisecond, reg, "server.cache.peer", faults)
	defer peerDown.Close()
	if _, ok := peerDown.Get(key); ok {
		t.Fatal("injected peer failure reported a hit")
	}
}

// TestChaosCorruptColdTierEntry: a bit-flip lands on the only remaining
// copy (the cold tier); the read detects it, degrades to a miss, and the
// caller's re-put heals the entry. At no point do corrupt bytes surface.
func TestChaosCorruptColdTierEntry(t *testing.T) {
	reg := obs.NewRegistry()
	hot := NewLRUBackend(1<<10, reg, "server.cache.hot") // 1 KB: easy to flush
	cold, err := NewDiskBackend(t.TempDir(), 1<<20, reg, "server.cache.cold", nil)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(hot, cold, reg, "server.cache")
	defer tiered.Close()

	key := cacheKey("compress", "bwt", "", []byte("victim entry"))
	val := bytes.Repeat([]byte("payload "), 64) // 512 B
	tiered.Put(key, val)

	// Flush the hot tier so the cold copy is the only one left.
	for i := 0; i < 8; i++ {
		tiered.Put(cacheKey("compress", "bwt", "", []byte{byte(i)}), bytes.Repeat([]byte{byte(i)}, 256))
	}
	if _, ok := hot.Get(key); ok {
		t.Fatal("test setup: victim still in the hot tier")
	}

	tiered.CorruptStored(key, fault.Injection{Point: "chaos", Kind: fault.KindCorrupt, Rand: 424242})
	if got, ok := tiered.Get(key); ok {
		t.Fatalf("corrupt cold entry served (%d bytes)", len(got))
	}
	if got := reg.Snapshot().Counters["server.cache.cold.corruptions_detected"]; got != 1 {
		t.Fatalf("cold-tier corruption not detected/counted: %d", got)
	}

	// Heal: the caller recomputes and re-puts; subsequent reads serve
	// the correct bytes again.
	tiered.Put(key, val)
	got, ok := tiered.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatal("re-put did not heal the corrupted entry")
	}
}

// TestChaosTieredServerEndToEnd: a live server running the full
// hot/disk hierarchy with disk faults armed at high rates keeps
// answering /v1 with byte-correct responses — storage chaos shows up
// only in counters, never in response bodies.
func TestChaosTieredServerEndToEnd(t *testing.T) {
	faults := fault.NewRegistry(11)
	if err := faults.ArmAll(FaultDiskWrite + "=error:0.3," + FaultDiskRead + "=error:0.3"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	hot := NewLRUBackend(1<<12, reg, "server.cache.hot")
	cold, err := NewDiskBackend(t.TempDir(), 1<<20, reg, "server.cache.cold", faults)
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(hot, cold, reg, "server.cache")
	s := New(Config{Registry: reg, Cache: tiered, Faults: faults, Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Three passes over 24 distinct bodies: pass 1 populates both tiers,
	// and with ~500 B responses against a 4 KB hot tier, passes 2 and 3
	// mostly read through to the faulty disk. Every response must equal
	// its pass-1 twin regardless of which tier (or fault) it crossed.
	post := func(i int) []byte {
		body := bytes.Repeat([]byte{byte('a' + i%24)}, 400+16*(i%24))
		resp, err := ts.Client().Post(ts.URL+"/v1/lz77/compress", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		return out.Bytes()
	}
	want := make([][]byte, 24)
	for i := 0; i < 24; i++ {
		want[i] = post(i)
	}
	for i := 24; i < 72; i++ {
		if out := post(i); !bytes.Equal(out, want[i%24]) {
			t.Fatalf("request %d returned different bytes under storage chaos", i)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["server.cache.cold.write_errors"]+snap.Counters["server.cache.cold.read_errors"] == 0 {
		t.Fatal("chaos profile never fired — the test proved nothing")
	}
}
