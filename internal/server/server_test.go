package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("POST %s: read body: %v", url, err)
	}
	return resp, out
}

// TestRoundTripAllCodecs pushes a mixed payload through compress then
// decompress over HTTP for every registered codec.
func TestRoundTripAllCodecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := []byte(strings.Repeat("zipserverd round trip payload. ", 100) + "\x00\x01\xfe\xff")
	for _, name := range codec.Names() {
		resp, comp := post(t, ts.URL+"/v1/"+name+"/compress", src)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s compress: status %d: %s", name, resp.StatusCode, comp)
		}
		if got := resp.Header.Get("X-Codec"); got != name {
			t.Fatalf("%s compress: X-Codec = %q", name, got)
		}
		resp, back := post(t, ts.URL+"/v1/"+name+"/decompress", comp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s decompress: status %d: %s", name, resp.StatusCode, back)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("%s: round trip mismatch (%d bytes in, %d back)", name, len(src), len(back))
		}
	}
}

// TestUnknownCodec404 covers both unknown algorithm and unknown operation.
func TestUnknownCodec404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/gzip/compress", []byte("x"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown codec: status %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(body), "lz77, lzw, bwt") {
		t.Fatalf("unknown codec error should list registry names, got %q", body)
	}
	resp, _ = post(t, ts.URL+"/v1/lz77/transmogrify", []byte("x"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown op: status %d, want 404", resp.StatusCode)
	}
}

// TestOversizedBody413 checks the request size cap.
func TestOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	resp, _ := post(t, ts.URL+"/v1/lz77/compress", make([]byte, 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// At the cap is still fine.
	resp, _ = post(t, ts.URL+"/v1/lz77/compress", make([]byte, 1024))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body at cap: status %d, want 200", resp.StatusCode)
	}
}

// TestCorruptDecompress400 feeds truncated streams to every codec's
// decompress endpoint.
func TestCorruptDecompress400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := []byte(strings.Repeat("corrupt me please ", 50))
	for _, c := range codec.All() {
		comp, err := c.Compress(src)
		if err != nil {
			t.Fatalf("%s: compress: %v", c.Name, err)
		}
		resp, body := post(t, ts.URL+"/v1/"+c.Name+"/decompress", comp[:len(comp)/2])
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s corrupt decompress: status %d, want 400 (%s)", c.Name, resp.StatusCode, body)
		}
	}
}

// TestCacheHitAndCounters sends the same body twice and checks the second
// response is served from cache, with counters visible in the registry.
func TestCacheHitAndCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := []byte(strings.Repeat("cache me ", 200))
	resp, first := post(t, ts.URL+"/v1/bwt/compress", body)
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first request X-Cache = %q, want MISS", got)
	}
	resp, second := post(t, ts.URL+"/v1/bwt/compress", body)
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached response differs from computed response")
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.cache.hits"] != 1 || snap.Counters["server.cache.misses"] != 1 {
		t.Fatalf("cache counters = hits %d misses %d, want 1/1",
			snap.Counters["server.cache.hits"], snap.Counters["server.cache.misses"])
	}
	if snap.Counters["server.requests"] != 2 {
		t.Fatalf("server.requests = %d, want 2", snap.Counters["server.requests"])
	}
}

// TestCacheDisabled runs with a negative budget: everything is a miss and
// nothing breaks.
func TestCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheBytes: -1})
	body := []byte("no cache for you")
	for i := 0; i < 2; i++ {
		resp, _ := post(t, ts.URL+"/v1/lzw/compress", body)
		if got := resp.Header.Get("X-Cache"); got != "MISS" {
			t.Fatalf("request %d with cache disabled: X-Cache = %q, want MISS", i, got)
		}
	}
}

// TestMetricsEndpoint checks /metrics is a canonical obs snapshot: parseable
// as obs.Snapshot, containing cache counters and the latency histogram.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/lz77/compress", []byte(strings.Repeat("metrics ", 64)))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics is not a canonical snapshot: %v", err)
	}
	for _, c := range []string{"server.cache.hits", "server.cache.misses", "server.cache.evictions",
		"server.requests", "server.bytes_in", "server.bytes_out"} {
		if _, ok := snap.Counters[c]; !ok {
			t.Fatalf("/metrics missing counter %q (have %v)", c, snap.Counters)
		}
	}
	h, ok := snap.Histograms["server.request_latency_us"]
	if !ok {
		t.Fatal("/metrics missing server.request_latency_us histogram")
	}
	if h.Count == 0 {
		t.Fatal("latency histogram recorded no observations")
	}
}

// TestHealthz checks the liveness probe returns the structured JSON
// health report: build identity, uptime counters, and cache occupancy.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d body %q", resp.StatusCode, body)
	}
	var h struct {
		Status         string            `json:"status"`
		Version        string            `json:"version"`
		Go             string            `json:"go"`
		Codecs         []string          `json:"codecs"`
		Workers        int               `json:"workers"`
		UptimeSimSteps uint64            `json:"uptime_sim_steps"`
		Breakers       map[string]string `json:"breakers"`
		Cache          struct {
			Enabled bool `json:"enabled"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Version == "" || h.Go == "" {
		t.Fatalf("healthz identity fields: %+v", h)
	}
	if len(h.Codecs) == 0 || h.Workers < 1 || !h.Cache.Enabled {
		t.Fatalf("healthz capacity fields: %+v", h)
	}
	if h.UptimeSimSteps != 0 {
		t.Fatalf("healthz before traffic: uptime_sim_steps = %d, want 0 (probes advance no sim step)", h.UptimeSimSteps)
	}
	if len(h.Breakers) != 0 {
		t.Fatalf("healthz before traffic: breakers = %v, want empty", h.Breakers)
	}
}

// TestWorkersConfig checks the gate picks up -workers style config.
func TestWorkersConfig(t *testing.T) {
	s := New(Config{Workers: 3})
	if s.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", s.Workers())
	}
}
