package server

// Adaptive overload protection (DESIGN.md §13): an admission controller
// in front of the worker gate. The gate bounds how many codec executions
// run; this bounds how many may *wait*. Without it, overload queues
// requests unboundedly until each one burns a full request deadline and
// comes back as a 504 — the slowest possible way to say no. With it, a
// request that would only ever time out in the queue is refused up front
// with 503 + Retry-After, so clients back off and admitted requests keep
// a bounded queue (and therefore bounded latency) in front of them.
//
// Two shedding triggers, both cheap enough for the hot path:
//
//   - queue depth: more than queueLimit requests already waiting beyond
//     the gate's capacity (the classic bounded-queue rule);
//   - deadline awareness: the estimated queue wait — queue position over
//     capacity times an EWMA of recent codec execution time — exceeds
//     the request's remaining deadline, i.e. admission would be a
//     promise the server already knows it cannot keep.
//
// The controller is accounting plus two atomic comparisons; it never
// alters response bytes, so runs that stay under the limit (every
// baseline and bench in this repo at defaults) are byte-identical to a
// build without it.

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"github.com/zipchannel/zipchannel/internal/obs"
)

const (
	// DefaultQueueLimitFactor sizes the default admission queue: factor ×
	// gate capacity requests may wait beyond the ones executing. 8× keeps
	// short bursts absorbed (a queue that sheds on the first blip is
	// worse than brief queueing) while capping queue latency near
	// 8 × mean execution time.
	DefaultQueueLimitFactor = 8
	// retryAfterCapSeconds bounds the Retry-After hint: past ~30s a
	// client should re-resolve, not sleep.
	retryAfterCapSeconds = 30
)

// errShed marks a request refused by the admission controller. The
// handler maps it to 503 + Retry-After; singleflight followers sharing a
// shed leader map it identically.
var errShed = errors.New("admission: overloaded, request shed")

// admission is the controller state. nil *admission (shedding disabled)
// admits everything and records nothing.
type admission struct {
	capacity int // gate capacity (executing slots)
	limit    int // max requests waiting beyond capacity

	// inSystem counts requests between acquire and release: executing
	// plus queued. Queue depth is max(0, inSystem - capacity).
	inSystem atomic.Int64
	// execUS is an EWMA (α = 1/8) of one codec execution's wall
	// microseconds — the unit the queue-wait estimate is denominated in.
	execUS atomic.Uint64

	admitted *obs.Counter
	shed     *obs.Counter
	queueG   *obs.Gauge
	burnG    *obs.Gauge
}

// newAdmission builds a controller for a gate of the given capacity.
// limit 0 means DefaultQueueLimitFactor × capacity; negative disables
// shedding entirely (returns nil).
func newAdmission(capacity, limit int, reg *obs.Registry) *admission {
	if limit < 0 {
		return nil
	}
	if limit == 0 {
		limit = DefaultQueueLimitFactor * capacity
	}
	return &admission{
		capacity: capacity,
		limit:    limit,
		admitted: reg.Counter("server.admission.admitted"),
		shed:     reg.Counter("server.admission.shed"),
		queueG:   reg.Gauge("server.admission.queue_depth"),
		burnG:    reg.Gauge("server.admission.burn_rate"),
	}
}

// acquire admits or sheds one codec-execution request. On admission it
// returns a release func the caller must run once the gate work (queue
// wait + execution + retries) is over. On shedding it returns errShed;
// the caller converts it to 503 + Retry-After seconds from
// retryAfterSeconds.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	n := a.inSystem.Add(1)
	queued := int(n) - a.capacity
	if queued > a.limit {
		a.inSystem.Add(-1)
		a.recordShed()
		return nil, errShed
	}
	// Deadline awareness: shed a request whose estimated queue wait
	// already exceeds its remaining lifetime — admitting it only converts
	// a fast 503 into a slow 504 while it blocks the queue for others.
	if queued > 0 {
		if deadline, ok := ctx.Deadline(); ok {
			if est := a.estimatedWait(queued); est > 0 && est > time.Until(deadline) {
				a.inSystem.Add(-1)
				a.recordShed()
				return nil, errShed
			}
		}
	}
	a.admitted.Inc()
	if queued > 0 {
		a.queueG.Set(float64(queued))
	} else {
		a.queueG.Set(0)
	}
	a.updateBurn()
	return func() {
		left := a.inSystem.Add(-1)
		if q := int(left) - a.capacity; q > 0 {
			a.queueG.Set(float64(q))
		} else {
			a.queueG.Set(0)
		}
	}, nil
}

// estimatedWait predicts how long a request entering the queue at the
// given depth will wait: its queue position over capacity, times the
// recent mean execution time. Zero until the first execution has been
// observed (no data beats a wrong guess).
func (a *admission) estimatedWait(queued int) time.Duration {
	mean := a.execUS.Load()
	if mean == 0 || a.capacity <= 0 {
		return 0
	}
	rounds := float64(queued)/float64(a.capacity) + 1
	return time.Duration(rounds*float64(mean)) * time.Microsecond
}

// observeExec feeds one codec execution's wall time into the EWMA.
func (a *admission) observeExec(d time.Duration) {
	if a == nil {
		return
	}
	us := uint64(d.Microseconds())
	for {
		old := a.execUS.Load()
		next := us
		if old != 0 {
			next = old - old/8 + us/8
			if next == 0 {
				next = 1
			}
		}
		if a.execUS.CompareAndSwap(old, next) {
			return
		}
	}
}

// recordShed counts one refusal and refreshes the burn-rate gauge.
func (a *admission) recordShed() {
	a.shed.Inc()
	a.updateBurn()
}

// updateBurn mirrors the shed ratio into a burn-rate gauge on the same
// scale as the SLO burn rates: observed shed ratio divided by the
// DefaultSLOBudget error budget, so burn rate > 1 means the server is
// refusing more than its 1% budget of traffic.
func (a *admission) updateBurn() {
	shed := a.shed.Value()
	total := shed + a.admitted.Value()
	if total == 0 {
		return
	}
	a.burnG.Set(float64(shed) / float64(total) / DefaultSLOBudget)
}

// retryAfterSeconds is the Retry-After hint on a shed response: the
// estimated time for the current queue to drain (floor 1s, capped), so a
// well-behaved client's first retry lands when a slot is plausible
// rather than immediately re-joining the stampede.
func (a *admission) retryAfterSeconds() int {
	if a == nil {
		return 1
	}
	queued := int(a.inSystem.Load()) - a.capacity
	if queued < 0 {
		queued = 0
	}
	est := a.estimatedWait(queued)
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > retryAfterCapSeconds {
		secs = retryAfterCapSeconds
	}
	return secs
}

// queueDepth reports the current number of waiting requests (healthz).
func (a *admission) queueDepth() int {
	if a == nil {
		return 0
	}
	if q := int(a.inSystem.Load()) - a.capacity; q > 0 {
		return q
	}
	return 0
}

// healthOverload is the healthz "overload" section.
type healthOverload struct {
	State      string `json:"state"` // "ok" or "saturated"
	QueueDepth int    `json:"queue_depth"`
	QueueLimit int    `json:"queue_limit"`
	Capacity   int    `json:"capacity"`
	Admitted   uint64 `json:"admitted_total"`
	Shed       uint64 `json:"shed_total"`
	MeanExecUS uint64 `json:"mean_exec_us"`
}

// health renders the controller for /healthz (nil when shedding is
// disabled, keeping the section absent).
func (a *admission) health() *healthOverload {
	if a == nil {
		return nil
	}
	h := &healthOverload{
		State:      "ok",
		QueueDepth: a.queueDepth(),
		QueueLimit: a.limit,
		Capacity:   a.capacity,
		Admitted:   a.admitted.Value(),
		Shed:       a.shed.Value(),
		MeanExecUS: a.execUS.Load(),
	}
	if h.QueueDepth >= h.QueueLimit {
		h.State = "saturated"
	}
	return h
}
