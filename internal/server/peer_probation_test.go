package server

// Peer probation tests (DESIGN.md §13): a dead peer must cost ~zero after
// the breaker opens, probes must be rationed, and a recovered peer must
// close the breaker — the open→trial→closed cycle the chaos-cluster
// harness asserts end to end.

import (
	"crypto/sha256"
	"encoding/hex"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// deadAddr reserves a localhost port and releases it, yielding an address
// that refuses connections (until the test rebinds it).
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestPeerProbationOpensAndRations: consecutive transport failures open
// the breaker; while open, every operation short-circuits without
// touching the network (fast, counted as skipped) until the probe ration
// admits one more attempt.
func TestPeerProbationOpensAndRations(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPeerBackend("http://"+deadAddr(t), 200*time.Millisecond,
		reg, "peer", fault.NewRegistry(0))
	defer p.Close()

	var key Key
	copy(key[:], []byte("probation-key-0123456789abcdef"))

	// Threshold consecutive transport failures trip the breaker.
	for i := 0; i < DefaultPeerFailureThreshold; i++ {
		if state, _ := p.PeerState(); state != "closed" {
			t.Fatalf("before failure %d: state %q, want closed", i, state)
		}
		if _, ok := p.Get(key); ok {
			t.Fatalf("Get %d against dead peer reported a hit", i)
		}
	}
	if state, _ := p.PeerState(); state != "open" {
		t.Fatalf("after %d failures: state %q, want open", DefaultPeerFailureThreshold, state)
	}
	if got := reg.Counter("peer.probation.opens").Value(); got != 1 {
		t.Fatalf("probation.opens = %d, want 1", got)
	}

	// While open, operations are short-circuited — and fast: no dial, no
	// timeout. The whole cooldown's worth of lookups must take a small
	// fraction of a single 200ms connect timeout.
	start := time.Now()
	for i := 0; i < DefaultPeerProbeAfter; i++ {
		if _, ok := p.Get(key); ok {
			t.Fatalf("skip %d: hit from a peer on probation", i)
		}
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("%d probation skips took %v, want ~zero cost", DefaultPeerProbeAfter, d)
	}
	if got := reg.Counter("peer.probation.skipped").Value(); got != DefaultPeerProbeAfter {
		t.Fatalf("probation.skipped = %d, want %d", got, DefaultPeerProbeAfter)
	}
	if state, _ := p.PeerState(); state != "trial" {
		t.Fatalf("after cooldown: state %q, want trial", state)
	}

	// The trial probe reaches the (still dead) peer and re-opens.
	if _, ok := p.Get(key); ok {
		t.Fatal("trial probe against dead peer reported a hit")
	}
	if state, _ := p.PeerState(); state != "open" {
		t.Fatalf("after failed probe: state %q, want open", state)
	}
	if got := reg.Counter("peer.probation.opens").Value(); got != 2 {
		t.Fatalf("probation.opens after failed probe = %d, want 2", got)
	}

	// Puts and Stats are rationed the same way: no network, no growth in
	// the error counter.
	errsBefore := reg.Counter("peer.errors").Value()
	p.Put(key, []byte("value"))
	if e, b := p.Stats(); e != 0 || b != 0 {
		t.Fatalf("Stats on probation = (%d, %d), want zeros", e, b)
	}
	if got := reg.Counter("peer.errors").Value(); got != errsBefore {
		t.Fatalf("probationed ops touched the network: errors %d → %d", errsBefore, got)
	}
}

// TestPeerProbationRecovers: once the peer is reachable again, the first
// admitted probe closes the breaker and normal service resumes.
func TestPeerProbationRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	addr := deadAddr(t)
	p := NewPeerBackend("http://"+addr, 200*time.Millisecond,
		reg, "peer", fault.NewRegistry(0))
	defer p.Close()

	var key Key
	copy(key[:], []byte("recovery-key-0123456789abcdefgh"))

	for i := 0; i < DefaultPeerFailureThreshold; i++ {
		p.Get(key)
	}
	if state, _ := p.PeerState(); state != "open" {
		t.Fatalf("state %q, want open", state)
	}
	for i := 0; i < DefaultPeerProbeAfter; i++ {
		p.Get(key)
	}

	// Resurrect the peer on the same address: a minimal cache surface
	// that answers 404 (alive, entry absent).
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	defer ts.Close()

	// The admitted trial probe answers (a 404 means the peer is alive) and
	// closes the breaker.
	if _, ok := p.Get(key); ok {
		t.Fatal("404 probe reported a hit")
	}
	if state, _ := p.PeerState(); state != "closed" {
		t.Fatalf("after successful probe: state %q, want closed", state)
	}
	if got := reg.Gauge("peer.probation.state").Value(); got != 0 {
		t.Fatalf("probation.state gauge = %v, want 0 (closed)", got)
	}
}

// TestPeerProbationChecksumMismatchNotCounted: a peer that answers with
// damaged bytes is alive — integrity failures must not open probation.
func TestPeerProbationChecksumMismatchNotCounted(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sum := sha256.Sum256([]byte("original"))
		w.Header().Set("X-Content-SHA256", hex.EncodeToString(sum[:]))
		w.Write([]byte("tampered"))
	}))
	defer ts.Close()
	p := NewPeerBackend(ts.URL, 0, reg, "peer", fault.NewRegistry(0))
	defer p.Close()

	var key Key
	for i := 0; i < 3*DefaultPeerFailureThreshold; i++ {
		if _, ok := p.Get(key); ok {
			t.Fatalf("Get %d accepted tampered bytes", i)
		}
	}
	if state, _ := p.PeerState(); state != "closed" {
		t.Fatalf("checksum mismatches opened probation: state %q", state)
	}
	if got := reg.Counter("peer.corruptions_detected").Value(); got == 0 {
		t.Fatal("tampered responses not counted as corruption")
	}
}
