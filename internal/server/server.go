// Package server is the repository's network surface: zipserverd's HTTP
// compression service wrapping the three paper-faithful codecs
// (internal/compress/codec) behind POST /v1/{codec}/{compress|decompress}
// endpoints, with
//
//   - a per-request body cap enforced before buffering (413 via
//     Content-Length or an io.LimitReader, never reading past the cap),
//   - a content-addressed (SHA-256 keyed), byte-budgeted LRU response cache
//     with hit/miss/eviction counters and per-entry integrity checksums
//     (corrupted stored responses degrade to misses, never to wrong bytes),
//   - a bounded worker gate (internal/par.Gate) so concurrent codec
//     executions are capped at an explicit -workers regardless of open
//     connections,
//   - per-request deadlines and panic-recovery middleware (a crashing codec
//     worker is a 500 and a counter, never a dead process),
//   - a deterministic circuit breaker per codec/op: consecutive transient
//     codec failures trip it open, cached responses keep flowing while
//     uncached requests fast-fail 503 until a trial succeeds,
//   - named fault-injection points (internal/fault) on the codec workers,
//     the cache, and pool admission, so chaos runs (make test-chaos) can
//     rehearse all of the above deterministically,
//   - per-request obs.Registry instances merged into the server registry
//     (obs.Registry.Merge), exposed at GET /metrics as a canonical obs
//     snapshot, plus GET /healthz for liveness probes.
//
// Unlike the simulation layers, the server's registry knowingly contains a
// wall-clock-derived histogram (server.request_latency_us): a live network
// service has no simulation clock, and observed latency is exactly what a
// load test wants. Everything else in the snapshot (request, byte, cache
// counters) is deterministic for a fixed request sequence, and every
// resilience counter is registered lazily on its first event, so a run with
// faults disarmed produces a snapshot byte-identical to a fault-free build.
//
// The deployment shape is deliberate: real compression side channels live
// inside shared services (Schwarzl et al.; Debreach — see PAPERS.md), and a
// cross-request, content-addressed cache gives Attack-2-style fingerprinting
// a realistic setting to exercise in later PRs.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/pagestore"
	"github.com/zipchannel/zipchannel/internal/par"
)

// Version identifies the server build in /healthz; bumped when the HTTP
// surface changes shape.
const Version = "0.9.0"

// Default limits; all overridable via Config.
const (
	DefaultMaxBodyBytes = 8 << 20  // 8 MiB per request body
	DefaultCacheBytes   = 64 << 20 // 64 MiB of cached responses
	// DefaultRequestTimeout bounds one request end to end: gate wait,
	// codec execution, and transient retries.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultBreakerThreshold is how many consecutive transient codec
	// failures open the circuit breaker for that codec/op.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how many uncached requests an open
	// breaker rejects before admitting a trial request.
	DefaultBreakerCooldown = 16
	// DefaultCodecRetries is how many times a transient codec failure
	// (injected fault, codec panic, failed self-check) is retried within
	// one request before it becomes a 500.
	DefaultCodecRetries = 2
)

// errTransient classifies failures that say nothing about the input —
// injected faults, codec panics, failed self-checks. They are retried
// within the request deadline and, if persistent, surface as 500s (and
// breaker failures) rather than 400s.
var errTransient = errors.New("transient codec failure")

// errBreakerOpen marks a request rejected by an open circuit breaker, so
// a singleflight follower sharing the leader's outcome maps it to the
// same 503 the leader sent.
var errBreakerOpen = errors.New("circuit open")

// Config parameterizes a Server. The zero value is fully usable: default
// caps, GOMAXPROCS workers, a fresh registry, no fault injection.
type Config struct {
	// MaxBodyBytes caps each request body; <= 0 means DefaultMaxBodyBytes.
	// Oversized requests get 413.
	MaxBodyBytes int64
	// CacheBytes budgets the response cache; 0 means DefaultCacheBytes,
	// negative disables caching entirely. Ignored when Cache is set.
	CacheBytes int64
	// Cache overrides the default single-LRU backend with any
	// CacheBackend composition (sharded, disk, tiered, peer — see
	// DESIGN.md §10). Nil means a byte-budgeted LRU of CacheBytes.
	Cache CacheBackend
	// PeerView is the backend served to other zipserverd instances on
	// GET/PUT /internal/cache/{key}. Nil means Cache. A tiered setup
	// whose cold tier is a remote peer MUST set PeerView to its local
	// tiers only, or two instances peered at each other would recurse.
	PeerView CacheBackend
	// CacheMaxAge is the max-age (seconds) advertised in the
	// Cache-Control response header on /v1 responses; 0 means
	// DefaultCacheMaxAge, negative disables the header.
	CacheMaxAge int
	// Workers caps concurrent codec executions; <= 0 means GOMAXPROCS.
	Workers int
	// QueueLimit caps how many codec-execution requests may wait for a
	// worker beyond the ones executing; past it the admission controller
	// sheds with 503 + Retry-After instead of queueing (DESIGN.md §13).
	// 0 means DefaultQueueLimitFactor × Workers; negative disables
	// shedding entirely (the pre-0.9 unbounded-queue behavior).
	QueueLimit int
	// Registry receives merged per-request metrics and serves /metrics.
	// Created if nil.
	Registry *obs.Registry
	// RequestTimeout bounds each request (gate wait + codec run +
	// retries); 0 means DefaultRequestTimeout, negative disables.
	RequestTimeout time.Duration
	// Faults arms deterministic fault injection at the server's named
	// points (server.codec.{compress,decompress}, server.cache.{get,put},
	// server.gate.acquire). Nil disables injection entirely and leaves
	// every output byte identical to a fault-free build.
	Faults *fault.Registry
	// BreakerThreshold is the consecutive-transient-failure count that
	// opens a codec/op breaker; 0 means DefaultBreakerThreshold, negative
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how many requests an open breaker rejects before
	// trialing; 0 means DefaultBreakerCooldown.
	BreakerCooldown int
	// CodecRetries caps transient-failure retries per request; 0 means
	// DefaultCodecRetries, negative disables retries.
	CodecRetries int
	// SelfCheck makes the server verify every compress response by
	// decompressing it before it leaves the process (corruption can then
	// only reach clients as a 500, never as wrong bytes). Forced on when
	// Faults is non-nil.
	SelfCheck bool
	// Tracer records a span tree per /v1 request (server.request plus
	// gate/breaker/codec/cache children), honoring incoming traceparent
	// headers and echoing the request's traceparent on responses. Nil
	// disables tracing entirely — a nil tracer is a total no-op, so the
	// registry and snapshots stay byte-identical to an untraced build.
	Tracer *obs.Tracer
	// AccessLog, when non-nil, receives one NDJSON record per /v1
	// request (trace ID, codec, op, status, byte counts, sim steps, wall
	// latency, cache tier, breaker state, gate wait).
	AccessLog io.Writer
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/. Off by
	// default: profiling endpoints are opt-in on a production surface.
	EnablePprof bool
	// SLOLatency is the per-request wall-latency objective backing the
	// server.slo.* counters; 0 means DefaultSLOLatency, negative
	// disables latency-based breach counting (5xx still breaches).
	SLOLatency time.Duration
	// PageStore, when non-nil, mounts the compressed page store on
	// PUT/GET /v1/pages/{id} (see pages.go). The store brings its own
	// obs registry and fault points via pagestore.Config; pass the same
	// Registry/Faults there to fold them into this server's surface.
	PageStore *pagestore.Store
}

// Server is the http.Handler. Create with New.
type Server struct {
	maxBody    int64
	reg        *obs.Registry
	gate       *par.Gate
	admission  *admission
	cache      CacheBackend
	peerView   CacheBackend
	flight     flightGroup
	maxAge     int
	mux        *http.ServeMux
	reqTimeout time.Duration
	retries    int
	selfCheck  bool
	tracer     *obs.Tracer
	accessSink *obs.TraceSink
	sloLatency time.Duration
	pages      *pagestore.Store
	started    time.Time
	// simSteps is the server's simulation clock: one step per /v1
	// request accepted. It stamps trace events, span sim durations, and
	// the /healthz uptime — a logical clock that is a pure function of
	// the request sequence, unlike wall time.
	simSteps atomic.Uint64

	// Fault points (nil when injection is disabled; nil points are clean).
	fpCompress   *fault.Point
	fpDecompress *fault.Point
	fpCacheGet   *fault.Point
	fpCachePut   *fault.Point

	breakerThreshold int
	breakerCooldown  int
	bkMu             sync.Mutex
	breakers         map[string]*breaker
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.CodecRetries == 0 {
		cfg.CodecRetries = DefaultCodecRetries
	} else if cfg.CodecRetries < 0 {
		cfg.CodecRetries = 0
	}
	if cfg.SLOLatency == 0 {
		cfg.SLOLatency = DefaultSLOLatency
	}
	if cfg.CacheMaxAge == 0 {
		cfg.CacheMaxAge = DefaultCacheMaxAge
	} else if cfg.CacheMaxAge < 0 {
		cfg.CacheMaxAge = 0
	}
	cache := cfg.Cache
	if cache == nil {
		// The typed-nil guard matters: a disabled LRU is a nil
		// *LRUBackend, which must become a nil interface, not a non-nil
		// interface wrapping nil.
		if lru := NewLRUBackend(cfg.CacheBytes, cfg.Registry, "server.cache"); lru != nil {
			cache = lru
		}
	}
	peerView := cfg.PeerView
	if peerView == nil {
		peerView = cache
	}
	s := &Server{
		maxBody:          cfg.MaxBodyBytes,
		reg:              cfg.Registry,
		gate:             par.NewGate(cfg.Workers),
		cache:            cache,
		peerView:         peerView,
		maxAge:           cfg.CacheMaxAge,
		mux:              http.NewServeMux(),
		reqTimeout:       cfg.RequestTimeout,
		retries:          cfg.CodecRetries,
		selfCheck:        cfg.SelfCheck || cfg.Faults != nil,
		tracer:           cfg.Tracer,
		sloLatency:       cfg.SLOLatency,
		pages:            cfg.PageStore,
		started:          time.Now(),
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cfg.BreakerCooldown,
		breakers:         map[string]*breaker{},
	}
	s.admission = newAdmission(s.gate.Capacity(), cfg.QueueLimit, cfg.Registry)
	s.reg.SetSimClock(s.simSteps.Load)
	if cfg.AccessLog != nil {
		s.accessSink = obs.NewTraceSink(cfg.AccessLog)
	}
	if cfg.Faults != nil {
		cfg.Faults.AttachObs(cfg.Registry)
		s.fpCompress = cfg.Faults.Point("server.codec.compress")
		s.fpDecompress = cfg.Faults.Point("server.codec.decompress")
		s.fpCacheGet = cfg.Faults.Point("server.cache.get")
		s.fpCachePut = cfg.Faults.Point("server.cache.put")
		fpGate := cfg.Faults.Point("server.gate.acquire")
		s.gate.SetAdmit(func() error {
			in := fpGate.Hit()
			switch in.Kind {
			case fault.KindPanic:
				panic(fmt.Sprintf("fault: injected panic at %s", in.Point))
			case fault.KindLatency:
				time.Sleep(time.Duration(in.Param) * time.Microsecond)
			case fault.KindError:
				return fmt.Errorf("%w: %v", errTransient, in.Error())
			}
			return nil
		})
	}
	// Every operational series (cache, breaker, SLO, per-codec request
	// counters) is declared up front so scrapers see zeros from the
	// first scrape; armed fault points are declared by AttachObs above.
	s.declareMetrics()
	s.mux.HandleFunc("POST /v1/{codec}/{op}", s.handleCodec)
	if s.pages != nil {
		s.declarePageMetrics()
		s.mux.HandleFunc("PUT /v1/pages/{id}", s.handlePagePut)
		s.mux.HandleFunc("GET /v1/pages/{id}", s.handlePageGet)
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	// The peer cache surface: other zipserverd instances mount this
	// server's cache as their cold tier (PeerBackend). Stays outside the
	// traced /v1 path — peer exchanges advance no sim step.
	s.mux.HandleFunc("GET /internal/cache", s.handleCacheIndex)
	s.mux.HandleFunc("GET /internal/cache/{key}", s.handleCacheFetch)
	s.mux.HandleFunc("PUT /internal/cache/{key}", s.handleCacheStore)
	if cfg.Faults != nil {
		// The chaos surface: lets a chaos driver (or a PeerBackend's
		// CorruptStored) flip a byte in this instance's stored entry.
		// Mounted only when the process opted into fault injection.
		s.mux.HandleFunc("POST /internal/cache/{key}/corrupt", s.handleCacheCorrupt)
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Registry returns the server's metric registry (the merge target for
// per-request registries).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Workers reports the codec-execution concurrency cap.
func (s *Server) Workers() int { return s.gate.Capacity() }

// ServeHTTP applies the resilience and observability middleware — per-
// request deadline, panic recovery, and (for /v1 codec requests) trace
// context, access logging, and SLO accounting — then dispatches to the
// server's routes. A panic anywhere below (a codec worker, an injected
// fault, a bug) is converted into a 500 and a server.errors.panic
// counter; the process never dies with a request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			s.reg.Counter("server.errors.panic").Inc()
			http.Error(w, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
		}
	}()
	if s.reqTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		// Scrapes and probes stay outside the traced path: they advance
		// no sim step, mint no trace, and write no access-log line.
		s.mux.ServeHTTP(w, r)
		return
	}
	s.serveTraced(w, r)
}

// serveTraced wraps one /v1 request in the observability envelope: one
// sim step, a server.request root span continuing any incoming
// traceparent (echoed back on the response), a status-recording writer,
// and — via finishRequest — the latency histogram with trace exemplar,
// SLO counters, and the access-log record. Panics are contained here so
// the access log still records the 500.
func (s *Server) serveTraced(w http.ResponseWriter, r *http.Request) {
	s.simSteps.Add(1)
	start := time.Now()
	ctx := r.Context()
	if tp := r.Header.Get("traceparent"); tp != "" {
		if sc, ok := obs.ParseTraceparent(tp); ok {
			ctx = obs.ContextWithRemote(ctx, sc)
		}
	}
	ctx, sp := s.tracer.StartSpan(ctx, "server.request")
	ri := &reqInfo{span: sp}
	if sp != nil {
		w.Header().Set("Traceparent", sp.Context().Traceparent())
	}
	ctx = context.WithValue(ctx, reqInfoKey{}, ri)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	func() {
		defer func() {
			if v := recover(); v != nil {
				s.reg.Counter("server.errors.panic").Inc()
				http.Error(rec, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
			}
		}()
		s.mux.ServeHTTP(rec, r.WithContext(ctx))
	}()
	s.finishRequest(ri, rec, time.Since(start))
}

// breakerFor returns (creating if needed) the circuit breaker guarding one
// codec/op pair; nil when breakers are disabled.
func (s *Server) breakerFor(key string) *breaker {
	if s.breakerThreshold < 0 {
		return nil
	}
	s.bkMu.Lock()
	defer s.bkMu.Unlock()
	b, ok := s.breakers[key]
	if !ok {
		b = newBreaker(s.breakerThreshold, s.breakerCooldown)
		s.breakers[key] = b
	}
	return b
}

// handleCodec serves POST /v1/{codec}/{compress|decompress}: stream in the
// body (capped), consult the content-addressed cache, otherwise run the
// codec under the worker gate — retrying transient failures within the
// request deadline and feeding the outcome to the codec's circuit breaker —
// and stream the result back. Each request accumulates metrics in a private
// registry that is merged into the server registry exactly once on the way
// out.
func (s *Server) handleCodec(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("codec")
	op := r.PathValue("op")
	ri := reqInfoFrom(r.Context())
	if ri == nil {
		ri = &reqInfo{} // direct mux dispatch in tests: keep the path nil-safe
	}

	cd, ok := codec.Lookup(name)
	if !ok {
		s.reg.Counter("server.errors.unknown_codec").Inc()
		http.Error(w, fmt.Sprintf("unknown codec %q (have %s)", name, codec.NamesString()),
			http.StatusNotFound)
		return
	}
	var run func([]byte) ([]byte, error)
	var fp *fault.Point
	switch op {
	case "compress":
		run, fp = cd.Compress, s.fpCompress
	case "decompress":
		run, fp = cd.Decompress, s.fpDecompress
	default:
		s.reg.Counter("server.errors.unknown_op").Inc()
		http.Error(w, fmt.Sprintf("unknown operation %q (have compress, decompress)", op),
			http.StatusNotFound)
		return
	}

	ri.codec, ri.op = name, op
	req := obs.NewRegistry()
	defer s.reg.Merge(req)
	req.Counter("server.requests").Inc()
	req.Counter("server.codec." + name + "." + op).Inc()

	level, err := parseLevel(r.Header.Get(LevelHeader))
	if err != nil {
		req.Counter("server.errors.bad_level").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	body, ok := s.readBody(w, r, req)
	if !ok {
		return
	}
	req.Counter("server.bytes_in").Add(uint64(len(body)))
	ri.bytesIn = len(body)

	// The content address doubles as the strong ETag: a deterministic
	// codec makes the hash of the request a validator of the response,
	// so If-None-Match revalidation costs zero codec work.
	key := cacheKey(op, name, level, body)
	etag := etagFor(key)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		req.Counter("server.http.not_modified").Inc()
		ri.cacheTier = "revalidated"
		s.setCacheHeaders(w.Header(), name, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	reqCC := parseCacheControl(r.Header.Get("Cache-Control"))
	useCache := s.cache != nil && !reqCC.NoStore
	lookup := useCache && !reqCC.NoCache
	if in := s.fpCacheGet.Hit(); in.Fired() {
		switch in.Kind {
		case fault.KindCorrupt:
			// A storage bit-flip lands on this key's entry; the integrity
			// check below turns it into a detected corruption + miss.
			if s.cache != nil {
				s.cache.CorruptStored(key, in)
			}
		default:
			// Cache backend unavailable: degrade to a full bypass for
			// this request (no lookup, no store) instead of failing it.
			useCache, lookup = false, false
			ri.cacheTier = "bypass"
			req.Counter("server.cache.bypass").Inc()
		}
	}
	var out []byte
	cached := false
	if lookup {
		_, csp := s.tracer.StartSpan(r.Context(), "server.cache.lookup")
		out, cached = s.cache.Get(key)
		csp.SetAttr("hit", cached)
		csp.End()
		if cached {
			ri.cacheTier = "hit"
		} else {
			ri.cacheTier = "miss"
		}
	}
	if !cached {
		// Miss path: coalesce concurrent misses on this key so a storm
		// costs one codec execution; the leader runs breaker + codec +
		// store, followers share the outcome (including failure).
		flightOut, shared, codecErr := s.flight.do(key, func() ([]byte, error) {
			return s.missOnce(r, req, ri, cd, name, op, fp, run, body, key, useCache)
		})
		if shared {
			req.Counter("server.flight.shared").Inc()
			ri.cacheTier = "coalesced"
		}
		out = flightOut
		if codecErr != nil {
			switch {
			case errors.Is(codecErr, errShed):
				// Overload: refuse with a drain-time hint so a retrying
				// client's next attempt lands when a slot is plausible.
				ri.cacheTier = "shed"
				w.Header().Set("Retry-After", fmt.Sprint(s.admission.retryAfterSeconds()))
				http.Error(w, fmt.Sprintf("%s %s overloaded (queue full), retry later", name, op),
					http.StatusServiceUnavailable)
			case errors.Is(codecErr, errBreakerOpen):
				req.Counter("server.breaker.rejected").Inc()
				// The breaker's cooldown is counted in requests, not
				// seconds; 1s is the floor hint for a backoff client.
				w.Header().Set("Retry-After", "1")
				http.Error(w, fmt.Sprintf("%s %s temporarily unavailable (circuit open)", name, op),
					http.StatusServiceUnavailable)
			case errors.Is(codecErr, context.DeadlineExceeded) || errors.Is(codecErr, context.Canceled):
				// Load, not codec health: no breaker record.
				req.Counter("server.errors.deadline").Inc()
				http.Error(w, "request deadline exceeded", http.StatusGatewayTimeout)
			case errors.Is(codecErr, errTransient):
				req.Counter("server.errors.transient").Inc()
				http.Error(w, fmt.Sprintf("%s %s: %v", name, op, codecErr), http.StatusInternalServerError)
			default:
				// Genuine codec error: the input is bad, the codec is
				// healthy.
				req.Counter("server.errors.codec").Inc()
				http.Error(w, fmt.Sprintf("%s %s: %v", name, op, codecErr), http.StatusBadRequest)
			}
			return
		}
	}

	hdr := w.Header()
	hdr.Set("Content-Type", "application/octet-stream")
	s.setCacheHeaders(hdr, name, etag)
	switch {
	case cached:
		hdr.Set("X-Cache", "HIT")
	case ri.cacheTier == "coalesced":
		hdr.Set("X-Cache", "COALESCED")
	default:
		hdr.Set("X-Cache", "MISS")
	}
	hdr.Set("Content-Length", fmt.Sprint(len(out)))
	if _, err := w.Write(out); err != nil {
		req.Counter("server.errors.write_response").Inc()
		return
	}
	req.Counter("server.bytes_out").Add(uint64(len(out)))
}

// setCacheHeaders stamps the HTTP cache envelope on a cacheable /v1
// response: the strong ETag, the freshness lifetime, and the Vary
// partition (the codec level header; the codec itself is in the URL, so
// the URL already partitions on it).
func (s *Server) setCacheHeaders(hdr http.Header, name, etag string) {
	hdr.Set("X-Codec", name)
	hdr.Set("ETag", etag)
	hdr.Set("Vary", LevelHeader)
	if s.maxAge > 0 {
		hdr.Set("Cache-Control", fmt.Sprintf("public, max-age=%d", s.maxAge))
	}
}

// missOnce is the singleflight leader's path for one cache miss: breaker
// admission, codec execution with retries, breaker bookkeeping, and the
// write-back to the cache hierarchy. Followers coalesced onto this call
// share its return value verbatim.
func (s *Server) missOnce(r *http.Request, req *obs.Registry, ri *reqInfo, cd codec.Codec,
	name, op string, fp *fault.Point, run func([]byte) ([]byte, error), body []byte,
	key Key, store bool) ([]byte, error) {
	bk := s.breakerFor(name + "/" + op)
	_, bsp := s.tracer.StartSpan(r.Context(), "server.breaker.check")
	allowed := bk.allow()
	ri.breaker = bk.stateName()
	bsp.SetAttr("state", ri.breaker)
	bsp.SetAttr("allowed", allowed)
	bsp.End()
	s.updateBreakerGauge(name, op, bk)
	if !allowed {
		return nil, errBreakerOpen
	}
	out, codecErr := s.runCodec(r.Context(), req, cd, op, fp, run, body)
	if codecErr != nil {
		if errors.Is(codecErr, errTransient) {
			if bk.record(false) {
				req.Counter("server.breaker.trips").Inc()
			}
		} else if !errors.Is(codecErr, context.DeadlineExceeded) && !errors.Is(codecErr, context.Canceled) &&
			!errors.Is(codecErr, errShed) {
			// Genuine codec error (bad input): the codec is healthy.
			// Deadline and shed rejections are load, not codec health —
			// they feed neither side of the breaker.
			bk.record(true)
		}
		ri.breaker = bk.stateName()
		s.updateBreakerGauge(name, op, bk)
		return nil, codecErr
	}
	bk.record(true)
	ri.breaker = bk.stateName()
	s.updateBreakerGauge(name, op, bk)
	if store {
		if in := s.fpCachePut.Hit(); in.Fired() {
			// Store unavailable: serve the response uncached.
			req.Counter("server.cache.bypass").Inc()
		} else {
			_, psp := s.tracer.StartSpan(r.Context(), "server.cache.store")
			s.cache.Put(key, out)
			psp.SetAttr("bytes", len(out))
			psp.End()
		}
	}
	return out, nil
}

// readBody streams in at most maxBody bytes, rejecting oversized requests
// with 413 before buffering past the cap: a declared Content-Length above
// the limit is refused without reading the body at all, and chunked or
// lying uploads are cut off by an io.LimitReader one byte past the cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, req *obs.Registry) ([]byte, bool) {
	tooLarge := func() {
		req.Counter("server.errors.body_too_large").Inc()
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.maxBody),
			http.StatusRequestEntityTooLarge)
	}
	if r.ContentLength > s.maxBody {
		tooLarge()
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		req.Counter("server.errors.read_body").Inc()
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if int64(len(body)) > s.maxBody {
		tooLarge()
		return nil, false
	}
	return body, true
}

// runCodec executes one codec operation under the worker gate, retrying
// transient failures (injected faults, codec panics, failed self-checks,
// injected pool-admission errors) up to s.retries times while the request
// deadline lives. Genuine codec errors (bad input) are returned on the
// first attempt — retrying a deterministic parse failure only burns a
// worker slot.
func (s *Server) runCodec(ctx context.Context, req *obs.Registry, cd codec.Codec, op string,
	fp *fault.Point, run func([]byte) ([]byte, error), body []byte) ([]byte, error) {
	// Overload admission covers the whole gate interaction — queue wait,
	// execution, and retries hold one admission slot, so the controller's
	// inSystem count is exactly the load the gate is carrying.
	release, admErr := s.admission.acquire(ctx)
	if admErr != nil {
		return nil, admErr
	}
	defer release()
	var lastErr error
	for attempt := 0; ; attempt++ {
		var out []byte
		var execErr error
		_, gsp := s.tracer.StartSpan(ctx, "server.gate.wait")
		wait, gateErr := s.gate.DoCtxWait(ctx, func() {
			gsp.End() // admission: the wait is over once fn starts
			_, csp := s.tracer.StartSpan(ctx, "server.codec.run")
			csp.SetAttr("op", op)
			csp.SetAttr("attempt", attempt)
			defer csp.End()
			execStart := time.Now()
			out, execErr = s.execOnce(req, fp, run, body, csp)
			s.admission.observeExec(time.Since(execStart))
		})
		gsp.End() // idempotent: closes the span on the rejected path too
		if ri := reqInfoFrom(ctx); ri != nil {
			ri.gateWait += wait
		}
		switch {
		case gateErr != nil:
			lastErr = gateErr
		case execErr != nil:
			lastErr = execErr
		default:
			if s.selfCheck && op == "compress" {
				if back, err := cd.Decompress(out); err != nil || !bytes.Equal(back, body) {
					req.Counter("server.errors.selfcheck").Inc()
					lastErr = fmt.Errorf("%w: compress output failed decompression self-check", errTransient)
					break
				}
			}
			return out, nil
		}
		if !errors.Is(lastErr, errTransient) || attempt >= s.retries || ctx.Err() != nil {
			return nil, lastErr
		}
		req.Counter("server.codec.retries").Inc()
	}
}

// execOnce runs the codec once inside a worker slot, applying the codec
// fault point and containing panics — injected or genuine — as transient
// errors so the retry loop and the breaker see them instead of the client.
// A fired injection is recorded on the codec-run span (nil-safe).
func (s *Server) execOnce(req *obs.Registry, fp *fault.Point,
	run func([]byte) ([]byte, error), body []byte, sp *obs.TraceSpan) (out []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			req.Counter("server.errors.codec_panic").Inc()
			out, err = nil, fmt.Errorf("%w: codec panic: %v", errTransient, v)
		}
	}()
	req.Counter("server.codec.executions").Inc()
	in := fp.Hit()
	if in.Fired() {
		sp.SetAttr("fault", in.Kind.String())
	}
	switch in.Kind {
	case fault.KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", in.Point))
	case fault.KindError:
		return nil, fmt.Errorf("%w: %v", errTransient, in.Error())
	case fault.KindLatency:
		time.Sleep(time.Duration(in.Param) * time.Microsecond)
	}
	out, err = run(body)
	if err != nil {
		return nil, err
	}
	// Injected output corruption: the compress self-check (or, for cached
	// entries, the integrity checksum) is what must catch this.
	return in.CorruptCopy(out), nil
}

// handleMetrics serves the server registry: the canonical obs snapshot by
// default (byte-identical to earlier builds), or Prometheus text
// exposition with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		b, err := s.reg.Snapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	case "prom":
		w.Header().Set("Content-Type", obs.PromContentType)
		if err := s.reg.WritePrometheus(w); err != nil {
			s.reg.Counter("server.errors.write_response").Inc()
		}
	default:
		http.Error(w, fmt.Sprintf("unknown metrics format %q (have json, prom)", f),
			http.StatusBadRequest)
	}
}

// healthResponse is the GET /healthz body: build identity, logical (sim
// step) and wall uptime, per-codec/op breaker states, and cache occupancy.
type healthResponse struct {
	Status         string            `json:"status"`
	Version        string            `json:"version"`
	Go             string            `json:"go"`
	Codecs         []string          `json:"codecs"`
	Workers        int               `json:"workers"`
	UptimeSimSteps uint64            `json:"uptime_sim_steps"`
	UptimeSeconds  float64           `json:"uptime_seconds"`
	Breakers       map[string]string `json:"breakers"`
	Overload       *healthOverload   `json:"overload,omitempty"`
	Cache          healthCache       `json:"cache"`
	Pages          *healthPages      `json:"pages,omitempty"`
}

type healthCache struct {
	Enabled bool   `json:"enabled"`
	Backend string `json:"backend,omitempty"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	// PeerState reports the peer tier's probation breaker when the
	// hierarchy contains one ("closed", "open", "trial"); absent
	// otherwise.
	PeerState string `json:"peer_state,omitempty"`
}

// healthPages reports the mounted page store; absent when the server
// runs without one, keeping pre-pagestore health bodies unchanged.
type healthPages struct {
	PageSize  int   `json:"page_size"`
	Pages     int   `json:"pages"`
	PoolBytes int64 `json:"pool_bytes"`
	SimSteps  int64 `json:"sim_steps"`
}

// handleHealthz is the liveness probe: a structured JSON health report.
// Breakers appear once their codec/op pair has seen traffic; states are
// "closed", "open", or "trial".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	breakers := map[string]string{}
	s.bkMu.Lock()
	for key, b := range s.breakers {
		breakers[key] = b.stateName()
	}
	s.bkMu.Unlock()
	cacheHealth := healthCache{}
	if s.cache != nil {
		entries, storedBytes := s.cache.Stats()
		cacheHealth = healthCache{
			Enabled: true,
			Backend: s.cache.Name(),
			Entries: entries,
			Bytes:   storedBytes,
		}
		if ph, ok := s.cache.(PeerHealth); ok {
			if state, has := ph.PeerState(); has {
				cacheHealth.PeerState = state
			}
		}
	}
	resp := healthResponse{
		Status:         "ok",
		Version:        Version,
		Go:             runtime.Version(),
		Codecs:         codec.Names(),
		Workers:        s.gate.Capacity(),
		UptimeSimSteps: s.simSteps.Load(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Breakers:       breakers,
		Overload:       s.admission.health(),
		Cache:          cacheHealth,
	}
	if s.pages != nil {
		resp.Pages = &healthPages{
			PageSize:  s.pages.PageSize(),
			Pages:     s.pages.Pages(),
			PoolBytes: s.pages.PoolBytes(),
			SimSteps:  s.pages.Steps(),
		}
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}
