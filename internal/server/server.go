// Package server is the repository's network surface: zipserverd's HTTP
// compression service wrapping the three paper-faithful codecs
// (internal/compress/codec) behind POST /v1/{codec}/{compress|decompress}
// endpoints, with
//
//   - a per-request body cap (413 on overflow),
//   - a content-addressed (SHA-256 keyed), byte-budgeted LRU response cache
//     with hit/miss/eviction counters,
//   - a bounded worker gate (internal/par.Gate) so concurrent codec
//     executions are capped at an explicit -workers regardless of open
//     connections,
//   - per-request obs.Registry instances merged into the server registry
//     (obs.Registry.Merge), exposed at GET /metrics as a canonical obs
//     snapshot, plus GET /healthz for liveness probes.
//
// Unlike the simulation layers, the server's registry knowingly contains a
// wall-clock-derived histogram (server.request_latency_us): a live network
// service has no simulation clock, and observed latency is exactly what a
// load test wants. Everything else in the snapshot (request, byte, cache
// counters) is deterministic for a fixed request sequence.
//
// The deployment shape is deliberate: real compression side channels live
// inside shared services (Schwarzl et al.; Debreach — see PAPERS.md), and a
// cross-request, content-addressed cache gives Attack-2-style fingerprinting
// a realistic setting to exercise in later PRs.
package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// Default limits; all overridable via Config.
const (
	DefaultMaxBodyBytes = 8 << 20  // 8 MiB per request body
	DefaultCacheBytes   = 64 << 20 // 64 MiB of cached responses
)

// Config parameterizes a Server. The zero value is fully usable: default
// caps, GOMAXPROCS workers, a fresh registry.
type Config struct {
	// MaxBodyBytes caps each request body; <= 0 means DefaultMaxBodyBytes.
	// Oversized requests get 413.
	MaxBodyBytes int64
	// CacheBytes budgets the response cache; 0 means DefaultCacheBytes,
	// negative disables caching entirely.
	CacheBytes int64
	// Workers caps concurrent codec executions; <= 0 means GOMAXPROCS.
	Workers int
	// Registry receives merged per-request metrics and serves /metrics.
	// Created if nil.
	Registry *obs.Registry
}

// Server is the http.Handler. Create with New.
type Server struct {
	maxBody int64
	reg     *obs.Registry
	gate    *par.Gate
	cache   *lruCache
	mux     *http.ServeMux
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := &Server{
		maxBody: cfg.MaxBodyBytes,
		reg:     cfg.Registry,
		gate:    par.NewGate(cfg.Workers),
		cache:   newLRUCache(cfg.CacheBytes, cfg.Registry),
		mux:     http.NewServeMux(),
	}
	// Touch the cache counters so /metrics shows them from the first
	// request even before any cacheable traffic arrives.
	s.reg.Counter("server.cache.hits")
	s.reg.Counter("server.cache.misses")
	s.reg.Counter("server.cache.evictions")
	s.mux.HandleFunc("POST /v1/{codec}/{op}", s.handleCodec)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Registry returns the server's metric registry (the merge target for
// per-request registries).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Workers reports the codec-execution concurrency cap.
func (s *Server) Workers() int { return s.gate.Capacity() }

// ServeHTTP dispatches to the server's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleCodec serves POST /v1/{codec}/{compress|decompress}: stream in the
// body (capped), consult the content-addressed cache, otherwise run the
// codec under the worker gate, and stream the result back. Each request
// accumulates metrics in a private registry that is merged into the server
// registry exactly once on the way out.
func (s *Server) handleCodec(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("codec")
	op := r.PathValue("op")

	cd, ok := codec.Lookup(name)
	if !ok {
		s.reg.Counter("server.errors.unknown_codec").Inc()
		http.Error(w, fmt.Sprintf("unknown codec %q (have %s)", name, codec.NamesString()),
			http.StatusNotFound)
		return
	}
	var run func([]byte) ([]byte, error)
	switch op {
	case "compress":
		run = cd.Compress
	case "decompress":
		run = cd.Decompress
	default:
		s.reg.Counter("server.errors.unknown_op").Inc()
		http.Error(w, fmt.Sprintf("unknown operation %q (have compress, decompress)", op),
			http.StatusNotFound)
		return
	}

	req := obs.NewRegistry()
	defer s.reg.Merge(req)
	req.Counter("server.requests").Inc()
	req.Counter("server.codec." + name + "." + op).Inc()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			req.Counter("server.errors.body_too_large").Inc()
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.maxBody),
				http.StatusRequestEntityTooLarge)
		} else {
			req.Counter("server.errors.read_body").Inc()
			http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		}
		return
	}
	req.Counter("server.bytes_in").Add(uint64(len(body)))

	key := cacheKey(op, name, body)
	out, cached := s.cache.get(key)
	if !cached {
		var codecErr error
		s.gate.Do(func() { out, codecErr = run(body) })
		if codecErr != nil {
			req.Counter("server.errors.codec").Inc()
			http.Error(w, fmt.Sprintf("%s %s: %v", name, op, codecErr), http.StatusBadRequest)
			return
		}
		s.cache.put(key, out)
	}

	hdr := w.Header()
	hdr.Set("Content-Type", "application/octet-stream")
	hdr.Set("X-Codec", name)
	if cached {
		hdr.Set("X-Cache", "HIT")
	} else {
		hdr.Set("X-Cache", "MISS")
	}
	hdr.Set("Content-Length", fmt.Sprint(len(out)))
	if _, err := w.Write(out); err != nil {
		req.Counter("server.errors.write_response").Inc()
		return
	}
	req.Counter("server.bytes_out").Add(uint64(len(out)))
	req.Histogram("server.request_latency_us").Observe(time.Since(start).Microseconds())
}

// handleMetrics serves the canonical obs snapshot of the server registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := s.reg.Snapshot().MarshalIndent()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}
