// Package server is the repository's network surface: zipserverd's HTTP
// compression service wrapping the three paper-faithful codecs
// (internal/compress/codec) behind POST /v1/{codec}/{compress|decompress}
// endpoints, with
//
//   - a per-request body cap enforced before buffering (413 via
//     Content-Length or an io.LimitReader, never reading past the cap),
//   - a content-addressed (SHA-256 keyed), byte-budgeted LRU response cache
//     with hit/miss/eviction counters and per-entry integrity checksums
//     (corrupted stored responses degrade to misses, never to wrong bytes),
//   - a bounded worker gate (internal/par.Gate) so concurrent codec
//     executions are capped at an explicit -workers regardless of open
//     connections,
//   - per-request deadlines and panic-recovery middleware (a crashing codec
//     worker is a 500 and a counter, never a dead process),
//   - a deterministic circuit breaker per codec/op: consecutive transient
//     codec failures trip it open, cached responses keep flowing while
//     uncached requests fast-fail 503 until a trial succeeds,
//   - named fault-injection points (internal/fault) on the codec workers,
//     the cache, and pool admission, so chaos runs (make test-chaos) can
//     rehearse all of the above deterministically,
//   - per-request obs.Registry instances merged into the server registry
//     (obs.Registry.Merge), exposed at GET /metrics as a canonical obs
//     snapshot, plus GET /healthz for liveness probes.
//
// Unlike the simulation layers, the server's registry knowingly contains a
// wall-clock-derived histogram (server.request_latency_us): a live network
// service has no simulation clock, and observed latency is exactly what a
// load test wants. Everything else in the snapshot (request, byte, cache
// counters) is deterministic for a fixed request sequence, and every
// resilience counter is registered lazily on its first event, so a run with
// faults disarmed produces a snapshot byte-identical to a fault-free build.
//
// The deployment shape is deliberate: real compression side channels live
// inside shared services (Schwarzl et al.; Debreach — see PAPERS.md), and a
// cross-request, content-addressed cache gives Attack-2-style fingerprinting
// a realistic setting to exercise in later PRs.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// Default limits; all overridable via Config.
const (
	DefaultMaxBodyBytes = 8 << 20  // 8 MiB per request body
	DefaultCacheBytes   = 64 << 20 // 64 MiB of cached responses
	// DefaultRequestTimeout bounds one request end to end: gate wait,
	// codec execution, and transient retries.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultBreakerThreshold is how many consecutive transient codec
	// failures open the circuit breaker for that codec/op.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how many uncached requests an open
	// breaker rejects before admitting a trial request.
	DefaultBreakerCooldown = 16
	// DefaultCodecRetries is how many times a transient codec failure
	// (injected fault, codec panic, failed self-check) is retried within
	// one request before it becomes a 500.
	DefaultCodecRetries = 2
)

// errTransient classifies failures that say nothing about the input —
// injected faults, codec panics, failed self-checks. They are retried
// within the request deadline and, if persistent, surface as 500s (and
// breaker failures) rather than 400s.
var errTransient = errors.New("transient codec failure")

// Config parameterizes a Server. The zero value is fully usable: default
// caps, GOMAXPROCS workers, a fresh registry, no fault injection.
type Config struct {
	// MaxBodyBytes caps each request body; <= 0 means DefaultMaxBodyBytes.
	// Oversized requests get 413.
	MaxBodyBytes int64
	// CacheBytes budgets the response cache; 0 means DefaultCacheBytes,
	// negative disables caching entirely.
	CacheBytes int64
	// Workers caps concurrent codec executions; <= 0 means GOMAXPROCS.
	Workers int
	// Registry receives merged per-request metrics and serves /metrics.
	// Created if nil.
	Registry *obs.Registry
	// RequestTimeout bounds each request (gate wait + codec run +
	// retries); 0 means DefaultRequestTimeout, negative disables.
	RequestTimeout time.Duration
	// Faults arms deterministic fault injection at the server's named
	// points (server.codec.{compress,decompress}, server.cache.{get,put},
	// server.gate.acquire). Nil disables injection entirely and leaves
	// every output byte identical to a fault-free build.
	Faults *fault.Registry
	// BreakerThreshold is the consecutive-transient-failure count that
	// opens a codec/op breaker; 0 means DefaultBreakerThreshold, negative
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how many requests an open breaker rejects before
	// trialing; 0 means DefaultBreakerCooldown.
	BreakerCooldown int
	// CodecRetries caps transient-failure retries per request; 0 means
	// DefaultCodecRetries, negative disables retries.
	CodecRetries int
	// SelfCheck makes the server verify every compress response by
	// decompressing it before it leaves the process (corruption can then
	// only reach clients as a 500, never as wrong bytes). Forced on when
	// Faults is non-nil.
	SelfCheck bool
}

// Server is the http.Handler. Create with New.
type Server struct {
	maxBody    int64
	reg        *obs.Registry
	gate       *par.Gate
	cache      *lruCache
	mux        *http.ServeMux
	reqTimeout time.Duration
	retries    int
	selfCheck  bool

	// Fault points (nil when injection is disabled; nil points are clean).
	fpCompress   *fault.Point
	fpDecompress *fault.Point
	fpCacheGet   *fault.Point
	fpCachePut   *fault.Point

	breakerThreshold int
	breakerCooldown  int
	bkMu             sync.Mutex
	breakers         map[string]*breaker
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.CodecRetries == 0 {
		cfg.CodecRetries = DefaultCodecRetries
	} else if cfg.CodecRetries < 0 {
		cfg.CodecRetries = 0
	}
	s := &Server{
		maxBody:          cfg.MaxBodyBytes,
		reg:              cfg.Registry,
		gate:             par.NewGate(cfg.Workers),
		cache:            newLRUCache(cfg.CacheBytes, cfg.Registry),
		mux:              http.NewServeMux(),
		reqTimeout:       cfg.RequestTimeout,
		retries:          cfg.CodecRetries,
		selfCheck:        cfg.SelfCheck || cfg.Faults != nil,
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cfg.BreakerCooldown,
		breakers:         map[string]*breaker{},
	}
	if cfg.Faults != nil {
		cfg.Faults.AttachObs(cfg.Registry)
		s.fpCompress = cfg.Faults.Point("server.codec.compress")
		s.fpDecompress = cfg.Faults.Point("server.codec.decompress")
		s.fpCacheGet = cfg.Faults.Point("server.cache.get")
		s.fpCachePut = cfg.Faults.Point("server.cache.put")
		fpGate := cfg.Faults.Point("server.gate.acquire")
		s.gate.SetAdmit(func() error {
			in := fpGate.Hit()
			switch in.Kind {
			case fault.KindPanic:
				panic(fmt.Sprintf("fault: injected panic at %s", in.Point))
			case fault.KindLatency:
				time.Sleep(time.Duration(in.Param) * time.Microsecond)
			case fault.KindError:
				return fmt.Errorf("%w: %v", errTransient, in.Error())
			}
			return nil
		})
	}
	// Touch the cache counters so /metrics shows them from the first
	// request even before any cacheable traffic arrives.
	s.reg.Counter("server.cache.hits")
	s.reg.Counter("server.cache.misses")
	s.reg.Counter("server.cache.evictions")
	s.mux.HandleFunc("POST /v1/{codec}/{op}", s.handleCodec)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Registry returns the server's metric registry (the merge target for
// per-request registries).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Workers reports the codec-execution concurrency cap.
func (s *Server) Workers() int { return s.gate.Capacity() }

// ServeHTTP applies the resilience middleware — per-request deadline and
// panic recovery — and dispatches to the server's routes. A panic anywhere
// below (a codec worker, an injected fault, a bug) is converted into a 500
// and a server.errors.panic counter; the process never dies with a request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			s.reg.Counter("server.errors.panic").Inc()
			http.Error(w, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
		}
	}()
	if s.reqTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

// breakerFor returns (creating if needed) the circuit breaker guarding one
// codec/op pair; nil when breakers are disabled.
func (s *Server) breakerFor(key string) *breaker {
	if s.breakerThreshold < 0 {
		return nil
	}
	s.bkMu.Lock()
	defer s.bkMu.Unlock()
	b, ok := s.breakers[key]
	if !ok {
		b = newBreaker(s.breakerThreshold, s.breakerCooldown)
		s.breakers[key] = b
	}
	return b
}

// handleCodec serves POST /v1/{codec}/{compress|decompress}: stream in the
// body (capped), consult the content-addressed cache, otherwise run the
// codec under the worker gate — retrying transient failures within the
// request deadline and feeding the outcome to the codec's circuit breaker —
// and stream the result back. Each request accumulates metrics in a private
// registry that is merged into the server registry exactly once on the way
// out.
func (s *Server) handleCodec(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("codec")
	op := r.PathValue("op")

	cd, ok := codec.Lookup(name)
	if !ok {
		s.reg.Counter("server.errors.unknown_codec").Inc()
		http.Error(w, fmt.Sprintf("unknown codec %q (have %s)", name, codec.NamesString()),
			http.StatusNotFound)
		return
	}
	var run func([]byte) ([]byte, error)
	var fp *fault.Point
	switch op {
	case "compress":
		run, fp = cd.Compress, s.fpCompress
	case "decompress":
		run, fp = cd.Decompress, s.fpDecompress
	default:
		s.reg.Counter("server.errors.unknown_op").Inc()
		http.Error(w, fmt.Sprintf("unknown operation %q (have compress, decompress)", op),
			http.StatusNotFound)
		return
	}

	req := obs.NewRegistry()
	defer s.reg.Merge(req)
	req.Counter("server.requests").Inc()
	req.Counter("server.codec." + name + "." + op).Inc()

	body, ok := s.readBody(w, r, req)
	if !ok {
		return
	}
	req.Counter("server.bytes_in").Add(uint64(len(body)))

	key := cacheKey(op, name, body)
	useCache := s.cache != nil
	if in := s.fpCacheGet.Hit(); in.Fired() {
		switch in.Kind {
		case fault.KindCorrupt:
			// A storage bit-flip lands on this key's entry; the integrity
			// check below turns it into a detected corruption + miss.
			s.cache.corruptStored(key, in)
		default:
			// Cache backend unavailable: degrade to a full bypass for
			// this request (no lookup, no store) instead of failing it.
			useCache = false
			req.Counter("server.cache.bypass").Inc()
		}
	}
	var out []byte
	cached := false
	if useCache {
		out, cached = s.cache.get(key)
	}
	if !cached {
		bk := s.breakerFor(name + "/" + op)
		if !bk.allow() {
			req.Counter("server.breaker.rejected").Inc()
			http.Error(w, fmt.Sprintf("%s %s temporarily unavailable (circuit open)", name, op),
				http.StatusServiceUnavailable)
			return
		}
		var codecErr error
		out, codecErr = s.runCodec(r.Context(), req, cd, op, fp, run, body)
		if codecErr != nil {
			switch {
			case errors.Is(codecErr, context.DeadlineExceeded) || errors.Is(codecErr, context.Canceled):
				// Load, not codec health: no breaker record.
				req.Counter("server.errors.deadline").Inc()
				http.Error(w, "request deadline exceeded", http.StatusGatewayTimeout)
			case errors.Is(codecErr, errTransient):
				req.Counter("server.errors.transient").Inc()
				if bk.record(false) {
					req.Counter("server.breaker.trips").Inc()
				}
				http.Error(w, fmt.Sprintf("%s %s: %v", name, op, codecErr), http.StatusInternalServerError)
			default:
				// Genuine codec error: the input is bad, the codec is
				// healthy.
				bk.record(true)
				req.Counter("server.errors.codec").Inc()
				http.Error(w, fmt.Sprintf("%s %s: %v", name, op, codecErr), http.StatusBadRequest)
			}
			return
		}
		bk.record(true)
		if useCache {
			if in := s.fpCachePut.Hit(); in.Fired() {
				// Store unavailable: serve the response uncached.
				req.Counter("server.cache.bypass").Inc()
			} else {
				s.cache.put(key, out)
			}
		}
	}

	hdr := w.Header()
	hdr.Set("Content-Type", "application/octet-stream")
	hdr.Set("X-Codec", name)
	if cached {
		hdr.Set("X-Cache", "HIT")
	} else {
		hdr.Set("X-Cache", "MISS")
	}
	hdr.Set("Content-Length", fmt.Sprint(len(out)))
	if _, err := w.Write(out); err != nil {
		req.Counter("server.errors.write_response").Inc()
		return
	}
	req.Counter("server.bytes_out").Add(uint64(len(out)))
	req.Histogram("server.request_latency_us").Observe(time.Since(start).Microseconds())
}

// readBody streams in at most maxBody bytes, rejecting oversized requests
// with 413 before buffering past the cap: a declared Content-Length above
// the limit is refused without reading the body at all, and chunked or
// lying uploads are cut off by an io.LimitReader one byte past the cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, req *obs.Registry) ([]byte, bool) {
	tooLarge := func() {
		req.Counter("server.errors.body_too_large").Inc()
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", s.maxBody),
			http.StatusRequestEntityTooLarge)
	}
	if r.ContentLength > s.maxBody {
		tooLarge()
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		req.Counter("server.errors.read_body").Inc()
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if int64(len(body)) > s.maxBody {
		tooLarge()
		return nil, false
	}
	return body, true
}

// runCodec executes one codec operation under the worker gate, retrying
// transient failures (injected faults, codec panics, failed self-checks,
// injected pool-admission errors) up to s.retries times while the request
// deadline lives. Genuine codec errors (bad input) are returned on the
// first attempt — retrying a deterministic parse failure only burns a
// worker slot.
func (s *Server) runCodec(ctx context.Context, req *obs.Registry, cd codec.Codec, op string,
	fp *fault.Point, run func([]byte) ([]byte, error), body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var out []byte
		var execErr error
		gateErr := s.gate.DoCtx(ctx, func() {
			out, execErr = s.execOnce(req, fp, run, body)
		})
		switch {
		case gateErr != nil:
			lastErr = gateErr
		case execErr != nil:
			lastErr = execErr
		default:
			if s.selfCheck && op == "compress" {
				if back, err := cd.Decompress(out); err != nil || !bytes.Equal(back, body) {
					req.Counter("server.errors.selfcheck").Inc()
					lastErr = fmt.Errorf("%w: compress output failed decompression self-check", errTransient)
					break
				}
			}
			return out, nil
		}
		if !errors.Is(lastErr, errTransient) || attempt >= s.retries || ctx.Err() != nil {
			return nil, lastErr
		}
		req.Counter("server.codec.retries").Inc()
	}
}

// execOnce runs the codec once inside a worker slot, applying the codec
// fault point and containing panics — injected or genuine — as transient
// errors so the retry loop and the breaker see them instead of the client.
func (s *Server) execOnce(req *obs.Registry, fp *fault.Point,
	run func([]byte) ([]byte, error), body []byte) (out []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			req.Counter("server.errors.codec_panic").Inc()
			out, err = nil, fmt.Errorf("%w: codec panic: %v", errTransient, v)
		}
	}()
	in := fp.Hit()
	switch in.Kind {
	case fault.KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", in.Point))
	case fault.KindError:
		return nil, fmt.Errorf("%w: %v", errTransient, in.Error())
	case fault.KindLatency:
		time.Sleep(time.Duration(in.Param) * time.Microsecond)
	}
	out, err = run(body)
	if err != nil {
		return nil, err
	}
	// Injected output corruption: the compress self-check (or, for cached
	// entries, the integrity checksum) is what must catch this.
	return in.CorruptCopy(out), nil
}

// handleMetrics serves the canonical obs snapshot of the server registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := s.reg.Snapshot().MarshalIndent()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}
