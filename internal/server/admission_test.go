package server

// Tests for the adaptive admission controller (DESIGN.md §13): under
// sustained traffic at several times gate capacity the server must shed
// with 503 + Retry-After instead of queuing unboundedly, every admitted
// request must still answer correctly with bounded latency, and with
// shedding disabled or idle defaults nothing may change.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// slowCompressFaults arms a deterministic 20ms latency on every compress
// execution so a tiny worker pool saturates under concurrent load.
func slowCompressFaults(t *testing.T) *fault.Registry {
	t.Helper()
	reg := fault.NewRegistry(1)
	if err := reg.ArmAll("server.codec.compress=latency:1:20000"); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestAdmissionShedsOverload drives 8× gate capacity of concurrent
// traffic at a 2-worker server with a 2-deep admission queue. The
// contract: excess traffic is refused fast with 503 + a positive integer
// Retry-After, admitted requests all succeed with correct bytes and
// bounded latency (no slow-504 path), and the shed/admitted counters and
// healthz overload section account for every request.
func TestAdmissionShedsOverload(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		Workers:    2,
		QueueLimit: 2,
		CacheBytes: -1, // no cache: every request must execute
		Registry:   reg,
		Faults:     slowCompressFaults(t),
	})

	const concurrent = 16 // 8× the 2-worker capacity
	type result struct {
		status     int
		retryAfter string
		elapsed    time.Duration
		ok         bool
	}
	results := make([]result, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct bodies: no cache hits, no singleflight coalescing.
			body := []byte(strings.Repeat(fmt.Sprintf("overload body %d. ", i), 40))
			start := time.Now()
			resp, err := http.Post(ts.URL+"/v1/lz77/compress",
				"application/octet-stream", bytes.NewReader(body))
			if err != nil {
				return
			}
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results[i] = result{
				status:     resp.StatusCode,
				retryAfter: resp.Header.Get("Retry-After"),
				elapsed:    time.Since(start),
				ok:         resp.StatusCode == http.StatusOK && len(out) > 0,
			}
		}(i)
	}
	wg.Wait()

	var admitted, shed int
	var maxAdmitted time.Duration
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			admitted++
			if !r.ok {
				t.Errorf("request %d: 200 with empty body", i)
			}
			if r.elapsed > maxAdmitted {
				maxAdmitted = r.elapsed
			}
		case http.StatusServiceUnavailable:
			shed++
			secs, err := strconv.Atoi(r.retryAfter)
			if err != nil || secs < 1 {
				t.Errorf("request %d: shed without usable Retry-After (%q)", i, r.retryAfter)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, r.status)
		}
	}
	// With at most capacity+queue = 4 requests in the system, a 16-wide
	// burst must shed most of itself; exact counts depend on goroutine
	// arrival order, so assert the floor.
	if shed < concurrent/2 {
		t.Fatalf("shed %d of %d, want at least %d", shed, concurrent, concurrent/2)
	}
	if admitted == 0 {
		t.Fatal("no request admitted under overload")
	}
	// Admitted-latency bound: 4 in-system slots × 20ms each leaves the
	// worst queue wait around 2 execution rounds; 5s is an order of
	// magnitude of slack for CI scheduling.
	if maxAdmitted > 5*time.Second {
		t.Fatalf("admitted p100 latency %v: queue not bounded", maxAdmitted)
	}

	if got := reg.Counter("server.admission.shed").Value(); got != uint64(shed) {
		t.Fatalf("shed counter %d, want %d", got, shed)
	}
	if got := reg.Counter("server.admission.admitted").Value(); got != uint64(admitted) {
		t.Fatalf("admitted counter %d, want %d", got, admitted)
	}

	// healthz must expose the overload section with matching accounting.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Overload *struct {
			State    string `json:"state"`
			Limit    int    `json:"queue_limit"`
			Capacity int    `json:"capacity"`
			Admitted uint64 `json:"admitted_total"`
			Shed     uint64 `json:"shed_total"`
		} `json:"overload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Overload == nil {
		t.Fatal("healthz: overload section missing")
	}
	if health.Overload.Capacity != 2 || health.Overload.Limit != 2 {
		t.Fatalf("healthz overload: capacity=%d limit=%d, want 2/2",
			health.Overload.Capacity, health.Overload.Limit)
	}
	if health.Overload.Shed != uint64(shed) || health.Overload.Admitted != uint64(admitted) {
		t.Fatalf("healthz overload: admitted=%d shed=%d, want %d/%d",
			health.Overload.Admitted, health.Overload.Shed, admitted, shed)
	}
}

// TestAdmissionDisabled: QueueLimit -1 turns the controller off — no
// shedding no matter the load, and no overload section in healthz.
func TestAdmissionDisabled(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueLimit: -1,
		CacheBytes: -1,
		Registry:   reg,
		Faults:     slowCompressFaults(t),
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("disabled body %d", i))
			resp, err := http.Post(ts.URL+"/v1/lz77/compress",
				"application/octet-stream", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d with shedding disabled", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if bytes.Contains(raw, []byte(`"overload"`)) {
		t.Fatalf("healthz advertises overload section with shedding disabled: %s", raw)
	}
}

// TestAdmissionDefaultQuiet: at defaults (8× capacity queue) a serial
// workload never sheds and the overload section reports "ok".
func TestAdmissionDefaultQuiet(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})
	for i := 0; i < 5; i++ {
		resp, _ := post(t, ts.URL+"/v1/lz77/compress",
			[]byte(fmt.Sprintf("quiet body %d", i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("serial request %d: status %d", i, resp.StatusCode)
		}
	}
	if got := reg.Counter("server.admission.shed").Value(); got != 0 {
		t.Fatalf("serial workload shed %d requests", got)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Overload *healthOverload `json:"overload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Overload == nil || health.Overload.State != "ok" {
		t.Fatalf("healthz overload = %+v, want state ok", health.Overload)
	}
}

// TestAdmissionEWMA exercises the execution-time estimator directly:
// first observation seeds the mean, later ones move it by 1/8 per step,
// and the queue-wait estimate scales with queue depth over capacity.
func TestAdmissionEWMA(t *testing.T) {
	a := newAdmission(2, 4, obs.NewRegistry())
	if est := a.estimatedWait(3); est != 0 {
		t.Fatalf("estimate before any observation = %v, want 0", est)
	}
	a.observeExec(8 * time.Millisecond)
	if got := a.execUS.Load(); got != 8000 {
		t.Fatalf("first observation mean = %dµs, want 8000", got)
	}
	a.observeExec(16 * time.Millisecond)
	if got := a.execUS.Load(); got != 8000-1000+2000 {
		t.Fatalf("EWMA after 16ms = %dµs, want 9000", got)
	}
	// Queue depth 4 at capacity 2 → 3 execution rounds' wait.
	want := time.Duration(3*9000) * time.Microsecond
	if got := a.estimatedWait(4); got != want {
		t.Fatalf("estimatedWait(4) = %v, want %v", got, want)
	}
	if secs := a.retryAfterSeconds(); secs != 1 {
		t.Fatalf("retryAfterSeconds idle = %d, want floor 1", secs)
	}
}
