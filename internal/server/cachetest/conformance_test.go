package cachetest_test

// The backend roster: every CacheBackend implementation the server
// ships, plus the two-tier composite, run through the full conformance
// battery. Adding a future backend to the suite is one Factory literal
// in this table.

import (
	"net/http/httptest"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/server"
	"github.com/zipchannel/zipchannel/internal/server/cachetest"
)

func TestBackendConformance(t *testing.T) {
	factories := []cachetest.Factory{
		{Name: "lru", Prefix: "server.cache", New: newLRU},
		{Name: "sharded", Prefix: "server.cache", New: newSharded},
		{Name: "disk", Prefix: "server.cache", New: newDisk},
		{Name: "peer", Prefix: "server.cache", New: newPeer},
		{Name: "tiered", Prefix: "server.cache", New: newTiered},
	}
	for _, f := range factories {
		t.Run(f.Name, func(t *testing.T) { cachetest.Run(t, f) })
	}
}

// TestCrashConformance runs the crash-consistency battery against every
// backend with a durable tier: abandon-without-Close, tear entry files,
// reopen the same directory — torn entries quarantined, intact entries
// byte-exact, recovered index race-safe.
func TestCrashConformance(t *testing.T) {
	factories := []cachetest.CrashFactory{
		{Name: "disk", New: newDiskAt},
		{Name: "tiered", New: newTieredAt},
	}
	for _, f := range factories {
		t.Run(f.Name, func(t *testing.T) { cachetest.RunCrash(t, f) })
	}
}

func newDiskAt(t *testing.T, reg *obs.Registry, budget int64, dir string) server.CacheBackend {
	d, err := server.NewDiskBackend(dir, budget, reg, "server.cache", nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// newTieredAt pins the durable cold tier to dir; the hot tier is
// in-memory and (like real RAM) does not survive the crash — each New is
// a fresh process image over the same disk.
func newTieredAt(t *testing.T, reg *obs.Registry, budget int64, dir string) server.CacheBackend {
	hot := server.NewLRUBackend(budget/4, reg, "server.cache.hot")
	cold, err := server.NewDiskBackend(dir, budget-budget/4, reg, "server.cache.cold", nil)
	if err != nil {
		t.Fatal(err)
	}
	return server.NewTiered(hot, cold, reg, "server.cache")
}

func newLRU(t *testing.T, reg *obs.Registry, budget int64) server.CacheBackend {
	return server.NewLRUBackend(budget, reg, "server.cache")
}

func newSharded(t *testing.T, reg *obs.Registry, budget int64) server.CacheBackend {
	return server.NewShardedBackend(budget, 8, reg, "server.cache")
}

func newDisk(t *testing.T, reg *obs.Registry, budget int64) server.CacheBackend {
	d, err := server.NewDiskBackend(t.TempDir(), budget, reg, "server.cache", nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// newPeer boots a real zipserverd core whose cache surface the
// PeerBackend fronts — the remote store is an LRU on the shared
// registry (under its own prefix), and the peer process runs with a
// fault registry so its chaos corrupt hook is mounted.
func newPeer(t *testing.T, reg *obs.Registry, budget int64) server.CacheBackend {
	remote := server.NewLRUBackend(budget, reg, "remote.cache")
	srv := server.New(server.Config{
		Registry: reg,
		Cache:    remote,
		PeerView: remote,
		Faults:   fault.NewRegistry(99),
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return server.NewPeerBackend(ts.URL, 0, reg, "server.cache", nil)
}

// newTiered composes the default hierarchy: in-memory hot quarter over a
// disk cold remainder, budget split so the composite's total stays
// within what the harness asked for.
func newTiered(t *testing.T, reg *obs.Registry, budget int64) server.CacheBackend {
	hot := server.NewLRUBackend(budget/4, reg, "server.cache.hot")
	cold, err := server.NewDiskBackend(t.TempDir(), budget-budget/4, reg, "server.cache.cold", nil)
	if err != nil {
		t.Fatal(err)
	}
	return server.NewTiered(hot, cold, reg, "server.cache")
}
