// Package cachetest is the conformance suite every server.CacheBackend
// implementation must pass — the executable contract of the interface.
// A backend author registers a Factory (one literal in the suite's
// factory table, or a direct cachetest.Run call in their own tests) and
// gets the full battery: get/put/overwrite accounting, byte-budget
// eviction, hit/miss counters, integrity ("degrade to a miss, never to
// wrong bytes"), deterministic iteration, concurrent access (meaningful
// under -race), and close semantics.
package cachetest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/server"
)

// Budget is the total value budget (bytes) the harness asks a Factory
// for. Factories composing tiers split it across them; the suite holds
// the composite to the sum.
const Budget = 64 << 10

// CrashFactory builds a backend rooted at an explicit directory, so the
// crash battery (RunCrash) can abandon one instance without Close — the
// SIGKILL model — and reopen a second on the same files. Only backends
// with a durable tier (disk, tiered-over-disk) qualify.
type CrashFactory struct {
	Name string
	// New returns a backend whose durable tier lives under dir. Register
	// cleanups on t; the harness calls Close on the *reopened* instance
	// only (the first is deliberately abandoned).
	New func(t *testing.T, reg *obs.Registry, budgetBytes int64, dir string) server.CacheBackend
}

// Factory builds one backend under test.
type Factory struct {
	// Name labels the subtest tree.
	Name string
	// Prefix is the metric prefix the backend (or its composing
	// aggregate) reports hits/misses under.
	Prefix string
	// New returns a backend holding at most budgetBytes of values in
	// total across whatever tiers it composes, with counters on reg.
	// Register cleanups on t; the harness calls Close itself.
	New func(t *testing.T, reg *obs.Registry, budgetBytes int64) server.CacheBackend
}

// key derives the i-th test key (keys are opaque 32-byte addresses; the
// suite never needs real request material).
func key(i int) server.Key {
	return sha256.Sum256([]byte(fmt.Sprintf("cachetest-key-%d", i)))
}

// val derives a deterministic value for the i-th key.
func val(i, size int) []byte {
	b := make([]byte, size)
	seed := byte(i*31 + 7)
	for j := range b {
		b[j] = seed + byte(j)
	}
	return b
}

// Run executes the full conformance battery against f. Every subtest
// builds a fresh backend and registry, so counter assertions are exact
// and failures are independent.
func Run(t *testing.T, f Factory) {
	t.Run("GetPutAccounting", func(t *testing.T) {
		reg := obs.NewRegistry()
		be := f.New(t, reg, Budget)
		defer be.Close()

		if _, ok := be.Get(key(0)); ok {
			t.Fatal("hit on an empty cache")
		}
		v1 := val(0, 256)
		be.Put(key(0), v1)
		got, ok := be.Get(key(0))
		if !ok || !bytes.Equal(got, v1) {
			t.Fatalf("get after put: ok=%v, equal=%v", ok, bytes.Equal(got, v1))
		}
		// entriesPerPut is how many copies one Put materializes (1 for a
		// single store, one per tier for write-through composites); byte
		// accounting must be exact in those units.
		entriesPerPut, b1 := be.Stats()
		if entriesPerPut < 1 {
			t.Fatalf("entries = %d after one put", entriesPerPut)
		}
		if want := int64(len(v1)) * int64(entriesPerPut); b1 != want {
			t.Fatalf("bytes = %d after one %d-byte put across %d copies, want %d", b1, len(v1), entriesPerPut, want)
		}

		// Overwrite: same key, new size — accounting must track the delta,
		// not accumulate.
		v2 := val(1, 300)
		be.Put(key(0), v2)
		got, ok = be.Get(key(0))
		if !ok || !bytes.Equal(got, v2) {
			t.Fatal("overwrite did not replace the value")
		}
		e2, b2 := be.Stats()
		if e2 != entriesPerPut {
			t.Fatalf("overwrite changed entry count %d → %d", entriesPerPut, e2)
		}
		if want := int64(len(v2)) * int64(entriesPerPut); b2 != want {
			t.Fatalf("bytes = %d after overwrite, want %d", b2, want)
		}
	})

	t.Run("EvictOnBudget", func(t *testing.T) {
		reg := obs.NewRegistry()
		be := f.New(t, reg, Budget)
		defer be.Close()

		const n, size = 600, 256 // ~150 KB of values into a 64 KB budget
		for i := 0; i < n; i++ {
			be.Put(key(i), val(i, size))
		}
		if _, b := be.Stats(); b > Budget {
			t.Fatalf("stored %d bytes over the %d budget", b, Budget)
		}
		if _, ok := be.Get(key(n - 1)); !ok {
			t.Fatal("most recent entry was evicted")
		}
		if _, ok := be.Get(key(0)); ok {
			t.Fatal("oldest untouched entry survived a 2.3x budget overflow")
		}
	})

	t.Run("Counters", func(t *testing.T) {
		reg := obs.NewRegistry()
		be := f.New(t, reg, Budget)
		defer be.Close()

		be.Get(key(0)) // miss
		be.Put(key(0), val(0, 64))
		be.Get(key(0)) // hit
		snap := reg.Snapshot()
		if snap.Counters[f.Prefix+".misses"] == 0 {
			t.Fatalf("%s.misses not counted: %v", f.Prefix, snap.Counters)
		}
		if snap.Counters[f.Prefix+".hits"] == 0 {
			t.Fatalf("%s.hits not counted: %v", f.Prefix, snap.Counters)
		}
	})

	t.Run("IntegrityNeverWrongBytes", func(t *testing.T) {
		reg := obs.NewRegistry()
		be := f.New(t, reg, Budget)
		defer be.Close()

		orig := val(3, 512)
		be.Put(key(3), orig)
		be.CorruptStored(key(3), fault.Injection{Point: "cachetest", Kind: fault.KindCorrupt, Rand: 12345})

		// The universal contract: after storage damage a backend may still
		// serve (an undamaged tier), or miss — but it may never return
		// bytes that differ from what was stored.
		got, ok := be.Get(key(3))
		if ok {
			if !bytes.Equal(got, orig) {
				t.Fatalf("backend served corrupted bytes (%d bytes, want %d original)", len(got), len(orig))
			}
			return
		}
		// A miss must be a *detected* corruption, counted somewhere in the
		// hierarchy (tier prefixes differ; scan rather than hardcode).
		var detected uint64
		for name, v := range reg.Snapshot().Counters {
			if strings.HasSuffix(name, ".corruptions_detected") {
				detected += v
			}
		}
		if detected == 0 {
			t.Fatal("corruption degraded to a miss without being counted")
		}
	})

	t.Run("DeterministicKeys", func(t *testing.T) {
		reg := obs.NewRegistry()
		be := f.New(t, reg, Budget)
		defer be.Close()

		const n = 5
		want := map[server.Key]bool{}
		for i := 0; i < n; i++ {
			be.Put(key(i), val(i, 128))
			want[key(i)] = true
		}
		be.Get(key(2)) // recency churn must not break determinism

		a, b := be.Keys(), be.Keys()
		if len(a) != n || len(b) != n {
			t.Fatalf("Keys() lengths %d/%d, want %d", len(a), len(b), n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("two consecutive Keys() calls disagree at %d", i)
			}
			if !want[a[i]] {
				t.Fatalf("Keys() listed an unknown key at %d", i)
			}
			delete(want, a[i])
		}
	})

	t.Run("Concurrent", func(t *testing.T) {
		reg := obs.NewRegistry()
		be := f.New(t, reg, Budget)
		defer be.Close()

		const workers, ops, keys = 4, 50, 16
		done := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				for n := 0; n < ops; n++ {
					i := (w + n) % keys
					if n%3 == 0 {
						be.Put(key(i), val(i, 200))
						continue
					}
					if got, ok := be.Get(key(i)); ok && !bytes.Equal(got, val(i, 200)) {
						done <- fmt.Errorf("worker %d read wrong bytes for key %d", w, i)
						return
					}
				}
				done <- nil
			}(w)
		}
		for w := 0; w < workers; w++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
	})

	runCloseBattery(t, f)
}

// RunCrash executes the crash-consistency battery against a durable
// backend (DESIGN.md §13): entries written before an unclean shutdown
// must either survive byte-exact or miss cleanly after reopen — torn and
// truncated files are scrub-quarantined, orphaned temps removed, and the
// recovered index must stay correct under concurrent readers (-race).
func RunCrash(t *testing.T, f CrashFactory) {
	const n, size = 8, 300

	t.Run("TornEntriesMissCleanly", func(t *testing.T) {
		dir := t.TempDir()
		be := f.New(t, obs.NewRegistry(), Budget, dir)
		for i := 0; i < n; i++ {
			be.Put(key(i), val(i, size))
		}
		// Abandon be without Close: the crash. Then tear every other entry
		// file — one mid-value (checksum mismatch), and make sure at least
		// one is shorter than its checksum header (structurally invalid).
		torn := map[server.Key]bool{}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		idx := 0
		for _, de := range ents {
			name := de.Name()
			if de.IsDir() || !strings.HasSuffix(name, ".zc") {
				continue
			}
			if idx%2 == 0 {
				path := filepath.Join(dir, name)
				info, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				cut := info.Size() / 2
				if idx == 0 {
					cut = sha256.Size / 2 // torn inside the checksum header
				}
				if err := os.Truncate(path, cut); err != nil {
					t.Fatal(err)
				}
				raw, err := hex.DecodeString(strings.TrimSuffix(name, ".zc"))
				if err != nil || len(raw) != sha256.Size {
					t.Fatalf("entry file %q is not named by its hex key", name)
				}
				var k server.Key
				copy(k[:], raw)
				torn[k] = true
			}
			idx++
		}
		if len(torn) == 0 {
			t.Fatal("no durable entry files found to tear — factory has no disk tier?")
		}
		// Plus an orphaned temp from a crash mid-Put.
		if err := os.WriteFile(filepath.Join(dir, "put-crash-orphan"), val(0, 40), 0o644); err != nil {
			t.Fatal(err)
		}

		reg := obs.NewRegistry()
		be2 := f.New(t, reg, Budget, dir)
		defer be2.Close()
		for i := 0; i < n; i++ {
			got, ok := be2.Get(key(i))
			if torn[key(i)] {
				if ok {
					t.Fatalf("torn entry %d served %d bytes after reopen", i, len(got))
				}
				continue
			}
			// An intact entry may miss (recovery eviction) but must never
			// serve wrong bytes.
			if ok && !bytes.Equal(got, val(i, size)) {
				t.Fatalf("recovered entry %d served wrong bytes", i)
			}
		}
		var quarantined, temps uint64
		for name, v := range reg.Snapshot().Counters {
			if strings.HasSuffix(name, ".scrub.quarantined") {
				quarantined += v
			}
			if strings.HasSuffix(name, ".scrub.temps_removed") {
				temps += v
			}
		}
		if quarantined != uint64(len(torn)) {
			t.Fatalf("scrub quarantined %d entries, want %d", quarantined, len(torn))
		}
		if temps != 1 {
			t.Fatalf("scrub removed %d temps, want 1", temps)
		}
	})

	t.Run("RecoveredConcurrentReads", func(t *testing.T) {
		dir := t.TempDir()
		be := f.New(t, obs.NewRegistry(), Budget, dir)
		for i := 0; i < n; i++ {
			be.Put(key(i), val(i, size))
		}
		// Crash (no Close), reopen, then hammer the recovered index from
		// concurrent readers and writers — the -race half of the battery.
		be2 := f.New(t, obs.NewRegistry(), Budget, dir)
		defer be2.Close()
		const workers, ops = 4, 50
		done := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				for op := 0; op < ops; op++ {
					i := (w + op) % n
					if op%5 == 0 {
						be2.Put(key(i), val(i, size))
						continue
					}
					if got, ok := be2.Get(key(i)); ok && !bytes.Equal(got, val(i, size)) {
						done <- fmt.Errorf("worker %d: wrong bytes for recovered key %d", w, i)
						return
					}
				}
				done <- nil
			}(w)
		}
		for w := 0; w < workers; w++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
	})
}

func runCloseBattery(t *testing.T, f Factory) {
	t.Run("Close", func(t *testing.T) {
		reg := obs.NewRegistry()
		be := f.New(t, reg, Budget)
		be.Put(key(0), val(0, 64))
		if err := be.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Double close and post-close access must not panic; post-close
		// reads may miss but must not serve garbage.
		if err := be.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if got, ok := be.Get(key(0)); ok && !bytes.Equal(got, val(0, 64)) {
			t.Fatal("post-close read returned wrong bytes")
		}
	})
}
