package server

import "sync"

// flightGroup coalesces concurrent codec executions for one content
// address: when a miss storm lands on a single key (the Zipf-head case
// the cluster bench drives), exactly one request — the leader — runs the
// codec; every other request joins the in-flight call and shares its
// result. This is the standard singleflight shape (x/sync/singleflight),
// reimplemented here because the repo vendors nothing: a map of in-flight
// calls keyed by content address, each with a done channel.
//
// Error results are shared too: if the leader's execution fails, the
// followers fail the same way rather than stampeding the codec pool with
// N retries of the same doomed input.
type flightGroup struct {
	mu    sync.Mutex
	calls map[Key]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// do runs fn under the key's flight, returning fn's result, whether this
// caller shared a leader's result instead of executing (shared=true for
// followers), and fn's error. fn runs exactly once per flight however
// many callers pile on.
func (g *flightGroup) do(key Key, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[Key]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
