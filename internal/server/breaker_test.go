package server

import "testing"

func TestBreakerTripAndRecover(t *testing.T) {
	b := newBreaker(3, 4)

	// Failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if tripped := b.record(false); tripped {
			t.Fatalf("tripped after %d failures, threshold 3", i+1)
		}
		if !b.allow() {
			t.Fatal("breaker opened early")
		}
	}
	// A success resets the consecutive count.
	b.record(true)
	b.record(false)
	b.record(false)
	if !b.allow() {
		t.Fatal("success did not reset the consecutive-failure count")
	}

	// The third consecutive failure trips it.
	if !b.record(false) {
		t.Fatal("threshold reached but record did not report a trip")
	}
	// Open: exactly cooldown rejections, then a trial is allowed.
	for i := 0; i < 4; i++ {
		if b.allow() {
			t.Fatalf("allow() = true during cooldown (rejection %d)", i+1)
		}
	}
	if !b.allow() {
		t.Fatal("trial request not admitted after cooldown")
	}

	// A failed trial re-opens immediately.
	if !b.record(false) {
		t.Fatal("failed trial should re-trip the breaker")
	}
	for i := 0; i < 4; i++ {
		if b.allow() {
			t.Fatal("allow() = true during second cooldown")
		}
	}
	if !b.allow() {
		t.Fatal("second trial not admitted")
	}

	// A successful trial closes it for good.
	b.record(true)
	for i := 0; i < 10; i++ {
		if !b.allow() {
			t.Fatal("breaker should be closed after a successful trial")
		}
	}
}

func TestBreakerDisabled(t *testing.T) {
	var b *breaker // nil = disabled
	for i := 0; i < 20; i++ {
		if !b.allow() {
			t.Fatal("nil breaker must always allow")
		}
		if b.record(false) {
			t.Fatal("nil breaker must never trip")
		}
	}
	if newBreaker(0, 8) != nil {
		t.Fatal("threshold <= 0 should disable the breaker")
	}
}
