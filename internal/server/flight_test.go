package server

// Singleflight regression: a miss storm on one key must cost exactly one
// codec execution — the leader computes under an injected slowdown while
// every concurrent duplicate either coalesces onto its flight or hits
// the entry the leader stored. This is the economic point of the cache
// hierarchy: a stampede can never multiply codec work.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

func TestFlightMissStormSingleExecution(t *testing.T) {
	faults := fault.NewRegistry(1)
	// Hold the leader in the codec for 150ms so all duplicates arrive
	// while its flight is open.
	if err := faults.ArmAll("server.codec.compress=latency:1:150000"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, Faults: faults, Workers: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const storm = 32
	body := []byte("one hot key, thirty-two requests")
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		bad   []string
		first []byte
	)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := ts.Client().Post(ts.URL+"/v1/lz77/compress", "application/octet-stream", bytes.NewReader(body))
			if err != nil {
				mu.Lock()
				bad = append(bad, err.Error())
				mu.Unlock()
				return
			}
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode != http.StatusOK {
				bad = append(bad, resp.Status)
				return
			}
			if first == nil {
				first = out
			} else if !bytes.Equal(first, out) {
				bad = append(bad, "response bytes diverged within the storm")
			}
		}()
	}
	close(start)
	wg.Wait()
	if len(bad) > 0 {
		t.Fatalf("%d failed requests, first: %s", len(bad), bad[0])
	}

	snap := reg.Snapshot()
	if got := snap.Counters["server.codec.executions"]; got != 1 {
		t.Fatalf("server.codec.executions = %d for a %d-request miss storm, want exactly 1", got, storm)
	}
	// Every non-leader either coalesced onto the open flight or hit the
	// stored entry; nothing fell through to a second execution.
	shared := snap.Counters["server.flight.shared"]
	hits := snap.Counters["server.cache.hits"]
	if shared+hits != storm-1 {
		t.Fatalf("flight.shared (%d) + cache.hits (%d) = %d, want %d followers accounted for",
			shared, hits, shared+hits, storm-1)
	}
	if shared == 0 {
		t.Fatal("no request coalesced — the storm never overlapped the leader's flight")
	}
}

// TestFlightSharesFailures: followers coalesced onto a flight whose
// leader fails share that failure instead of retrying the codec
// themselves — an error storm is also exactly one execution.
func TestFlightSharesFailures(t *testing.T) {
	var g flightGroup
	key := cacheKey("compress", "lz77", "", []byte("doomed"))
	const n = 8
	var (
		wg      sync.WaitGroup
		started = make(chan struct{})
		release = make(chan struct{})
		mu      sync.Mutex
		execs   int
		shares  int
		errs    int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.do(key, func() ([]byte, error) {
			close(started)
			<-release
			mu.Lock()
			execs++
			mu.Unlock()
			return nil, io.ErrUnexpectedEOF
		})
		if err != io.ErrUnexpectedEOF {
			t.Errorf("leader error = %v", err)
		}
	}()
	<-started
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, shared, err := g.do(key, func() ([]byte, error) {
				mu.Lock()
				execs++
				mu.Unlock()
				return nil, nil
			})
			mu.Lock()
			defer mu.Unlock()
			if shared {
				shares++
			}
			if err == io.ErrUnexpectedEOF {
				errs++
			}
		}()
	}
	// Give the followers time to join the held flight before releasing
	// the leader; a straggler that arrives after completion becomes its
	// own leader (counted below), so the assertions allow it but require
	// at least one genuine share.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if execs == 0 || execs > 1+n {
		t.Fatalf("execs = %d", execs)
	}
	if shares == 0 || shares != errs {
		t.Fatalf("shares = %d, shared errors = %d — followers did not share the leader's failure", shares, errs)
	}
}
