package server

import "sync"

// breaker is a deterministic, count-based circuit breaker guarding one
// codec/op pair. Transient codec failures (injected faults, codec panics,
// failed self-checks) count against it; client errors (bad input) and
// deadline rejections do not — they say nothing about codec health.
//
// States: closed (normal), open (fast-fail), trial (half-open). The
// breaker trips open after `threshold` consecutive failures; while open it
// rejects `cooldown` requests outright, then admits trial traffic: one
// success closes it, one failure re-opens it. Counting requests instead of
// wall-clock keeps the breaker's behavior a pure function of the request
// sequence — chaos runs with a fixed fault seed replay exactly.
//
// A nil *breaker (breaker disabled) always allows and records nothing, so
// call sites need no conditionals.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  int

	state    breakerState
	consec   int // consecutive transient failures while closed
	openLeft int // rejections remaining before trial
}

type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkTrial
)

func newBreaker(threshold, cooldown int) *breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether the request may execute the codec. While open it
// counts down the cooldown and moves to trial once it elapses (the
// rejected request itself is not retried here — the client's backoff
// spans the cooldown window).
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkOpen:
		b.openLeft--
		if b.openLeft <= 0 {
			b.state = bkTrial
		}
		return false
	default: // closed or trial
		return true
	}
}

// stateName reports the breaker's current state for health endpoints
// and dashboards: "closed", "open", "trial", or "disabled" for a nil
// breaker.
func (b *breaker) stateName() string {
	if b == nil {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkOpen:
		return "open"
	case bkTrial:
		return "trial"
	default:
		return "closed"
	}
}

// stateCode is stateName as a gauge value: 0 closed, 1 open, 2 trial
// (and 0 for disabled — a disabled breaker never impedes traffic).
func (b *breaker) stateCode() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.state)
}

// record feeds one execution outcome back. ok=true means the codec
// actually ran to completion (including returning a clean client error);
// ok=false means a transient/injected failure. Returns true when this
// record tripped the breaker open.
func (b *breaker) record(ok bool) (tripped bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.consec = 0
		if b.state == bkTrial {
			b.state = bkClosed
		}
		return false
	}
	b.consec++
	if b.state == bkTrial || (b.state == bkClosed && b.consec >= b.threshold) {
		b.state = bkOpen
		b.openLeft = b.cooldown
		b.consec = 0
		return true
	}
	return false
}
