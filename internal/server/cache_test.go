package server

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/zipchannel/zipchannel/internal/obs"
)

func key(s string) Key { return cacheKey("compress", "lz77", "", []byte(s)) }

// TestCacheKeySeparation guards the NUL-separated domain: op/codec/body
// boundaries must not be ambiguous.
func TestCacheKeySeparation(t *testing.T) {
	a := cacheKey("compress", "lz77", "", []byte("x"))
	b := cacheKey("compres", "slz77", "", []byte("x"))
	c := cacheKey("compress", "lz77x", "", []byte(""))
	if a == b || a == c || b == c {
		t.Fatal("cache keys collide across field boundaries")
	}
	if a != cacheKey("compress", "lz77", "", []byte("x")) {
		t.Fatal("cache key not deterministic")
	}
}

// TestLRUEviction fills a small cache past its budget and checks the
// least-recently-used entry goes first, with counters tracking.
func TestLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewLRUBackend(100, reg, "server.cache")

	val := bytes.Repeat([]byte("v"), 40)
	c.Put(key("a"), val)
	c.Put(key("b"), val)
	// Touch "a" so "b" is now least recently used.
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a should be cached")
	}
	// 40 more bytes pushes size to 120 > 100: "b" must be evicted.
	c.Put(key("c"), val)
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(key(k)); !ok {
			t.Fatalf("%s should still be cached", k)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["server.cache.evictions"] != 1 {
		t.Fatalf("evictions = %d, want 1", snap.Counters["server.cache.evictions"])
	}
	if got := snap.Gauges["server.cache.bytes"]; got != 80 {
		t.Fatalf("cache.bytes gauge = %v, want 80", got)
	}
	if got := snap.Gauges["server.cache.entries"]; got != 2 {
		t.Fatalf("cache.entries gauge = %v, want 2", got)
	}
}

// TestOversizedValueNotCached: a value bigger than the whole budget is
// passed through without evicting everything else.
func TestOversizedValueNotCached(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewLRUBackend(100, reg, "server.cache")
	c.Put(key("small"), []byte("tiny"))
	c.Put(key("huge"), bytes.Repeat([]byte("h"), 200))
	if _, ok := c.Get(key("huge")); ok {
		t.Fatal("oversized value should not be cached")
	}
	if _, ok := c.Get(key("small")); !ok {
		t.Fatal("small value should have survived the oversized put")
	}
}

// TestNilCacheIsAlwaysMiss: disabled caching must be safe to call.
func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *LRUBackend
	c.Put(key("x"), []byte("y"))
	if _, ok := c.Get(key("x")); ok {
		t.Fatal("nil cache returned a hit")
	}
}

// TestRePutRefreshesRecency: writing an existing key must not double-count
// its size, and must move it to the front.
func TestRePutRefreshesRecency(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewLRUBackend(100, reg, "server.cache")
	val := bytes.Repeat([]byte("v"), 40)
	c.Put(key("a"), val)
	c.Put(key("b"), val)
	c.Put(key("a"), val) // refresh, no size change
	if c.size != 80 {
		t.Fatalf("size = %d after re-put, want 80", c.size)
	}
	c.Put(key("c"), val) // evicts b, not a
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a should have been refreshed by re-put")
	}
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
}

// TestManyEntries churns enough keys to force repeated evictions and keeps
// the budget invariant.
func TestManyEntries(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewLRUBackend(1000, reg, "server.cache")
	for i := 0; i < 200; i++ {
		c.Put(key(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("x"), 90))
	}
	if c.size > 1000 {
		t.Fatalf("cache size %d exceeds budget 1000", c.size)
	}
	if snap := reg.Snapshot(); snap.Counters["server.cache.evictions"] == 0 {
		t.Fatal("expected evictions under churn")
	}
}
