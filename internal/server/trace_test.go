package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// spanRecord mirrors the NDJSON "span" event shape the trace sink emits.
type spanRecord struct {
	Ev     string         `json:"ev"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace"`
	Span   string         `json:"span"`
	Parent string         `json:"parent"`
	Attrs  map[string]any `json:"attrs"`
}

// decodeSpans parses every span event out of an NDJSON buffer.
func decodeSpans(t *testing.T, raw []byte) []spanRecord {
	t.Helper()
	var spans []spanRecord
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if rec.Ev == "span" {
			spans = append(spans, rec)
		}
	}
	return spans
}

// lockedBuffer lets the HTTP client goroutines and the test read the
// sink's output without racing the sink's own writes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestTracePropagation drives concurrent requests — half carrying an
// incoming traceparent, half without — and checks the resulting NDJSON
// span forest: every request yields a complete tree sharing one trace ID,
// child spans link to the server.request root, the root continues the
// remote parent when one was supplied, and the response echoes a
// traceparent in the request's trace. Run under -race this doubles as the
// tracer's concurrency test.
func TestTracePropagation(t *testing.T) {
	reg := obs.NewRegistry()
	var sinkBuf lockedBuffer
	reg.SetTraceSink(obs.NewTraceSink(&sinkBuf))
	_, ts := newTestServer(t, Config{
		Registry: reg,
		Tracer:   obs.NewTracer(reg, 42),
		Workers:  4,
	})

	const half = 8
	remoteTrace := func(i int) string { return fmt.Sprintf("%032x", 0xabc00+i) }
	remoteSpan := "00f067aa0ba902b7"

	respTraces := make([]string, 2*half)
	var wg sync.WaitGroup
	for i := 0; i < 2*half; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/v1/lzw/compress",
				strings.NewReader(fmt.Sprintf("trace propagation payload %d", i)))
			if err != nil {
				t.Error(err)
				return
			}
			if i < half {
				req.Header.Set("traceparent", "00-"+remoteTrace(i)+"-"+remoteSpan+"-01")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			respTraces[i] = resp.Header.Get("Traceparent")
		}(i)
	}
	wg.Wait()

	spans := decodeSpans(t, sinkBuf.Bytes())
	byTrace := map[string][]spanRecord{}
	for _, sp := range spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	if len(byTrace) != 2*half {
		t.Fatalf("got %d distinct traces, want %d", len(byTrace), 2*half)
	}

	checkTree := func(trace string, wantRootParent string) {
		t.Helper()
		tree := byTrace[trace]
		var root *spanRecord
		names := map[string]int{}
		for i := range tree {
			names[tree[i].Name]++
			if tree[i].Name == "server.request" {
				root = &tree[i]
			}
		}
		if root == nil {
			t.Fatalf("trace %s: no server.request root (have %v)", trace, names)
		}
		if root.Parent != wantRootParent {
			t.Fatalf("trace %s: root parent = %q, want %q", trace, root.Parent, wantRootParent)
		}
		// A compress miss visits the cache, breaker, gate, and codec: the
		// complete span taxonomy for an uncached request.
		for _, want := range []string{"server.cache.lookup", "server.breaker.check",
			"server.gate.wait", "server.codec.run", "server.cache.store"} {
			if names[want] == 0 {
				t.Errorf("trace %s: missing %s span (have %v)", trace, want, names)
			}
		}
		for _, sp := range tree {
			if sp.Name == "server.request" {
				continue
			}
			if sp.Parent != root.Span {
				t.Errorf("trace %s: span %s parent = %q, want root %q", trace, sp.Name, sp.Parent, root.Span)
			}
		}
	}

	for i := 0; i < half; i++ {
		// Incoming traceparent: the server continues our trace and links
		// its root to our span.
		checkTree(remoteTrace(i), remoteSpan)
		if want := remoteTrace(i); !strings.Contains(respTraces[i], want) {
			t.Errorf("request %d: response traceparent %q not in trace %s", i, respTraces[i], want)
		}
	}
	for i := half; i < 2*half; i++ {
		// No incoming header: the response named a fresh root trace.
		sc, ok := obs.ParseTraceparent(respTraces[i])
		if !ok {
			t.Fatalf("request %d: bad response traceparent %q", i, respTraces[i])
		}
		if _, exists := byTrace[sc.Trace.String()]; !exists {
			t.Errorf("request %d: response trace %s has no recorded spans", i, sc.Trace)
		}
		checkTree(sc.Trace.String(), "")
	}
}

// TestUntracedRunsAreByteIdentical is the tracing half of the determinism
// contract: with no tracer configured, identical request sequences produce
// byte-identical snapshots, the snapshot contains no span-derived series,
// and responses carry no traceparent.
func TestUntracedRunsAreByteIdentical(t *testing.T) {
	run := func() ([]byte, http.Header) {
		reg := obs.NewRegistry()
		_, ts := newTestServer(t, Config{Registry: reg, Workers: 2})
		var hdr http.Header
		for i := 0; i < 4; i++ {
			resp, _ := post(t, ts.URL+"/v1/lz77/compress", []byte(strings.Repeat("payload", 50)))
			hdr = resp.Header
		}
		snap := reg.Snapshot()
		delete(snap.Histograms, "server.request_latency_us") // wall clock
		for name := range snap.Counters {
			if strings.HasSuffix(name, ".calls") {
				t.Errorf("untraced run grew span counter %s", name)
			}
		}
		b, err := snap.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b, hdr
	}
	a, hdr := run()
	b, _ := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("untraced snapshots diverge:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if tp := hdr.Get("Traceparent"); tp != "" {
		t.Fatalf("untraced response carries traceparent %q", tp)
	}
}

// TestMetricsPromFormat checks GET /metrics?format=prom emits valid
// Prometheus text exposition (via the repo's own parser) with the
// canonical JSON snapshot untouched at the default, and unknown formats
// rejected.
func TestMetricsPromFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/bwt/compress", []byte("prom exposition payload"))

	resp, body := get(t, ts.URL+"/metrics?format=prom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?format=prom: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("?format=prom content type = %q", ct)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	samples, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, s := range samples {
		found[s.Name] = true
	}
	for _, want := range []string{"server_requests", "server_request_latency_us_bucket",
		"server_breaker_rejected", "server_slo_bwt_compress_good"} {
		if !found[want] {
			t.Errorf("exposition missing %s", want)
		}
	}

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("default /metrics: status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("default /metrics is not a JSON snapshot: %v", err)
	}

	if resp, _ := get(t, ts.URL+"/metrics?format=xml"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?format=xml: status %d, want 400", resp.StatusCode)
	}
}

// TestPprofOptIn: the profiling surface exists only when asked for.
func TestPprofOptIn(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if resp, _ := get(t, off.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: /debug/pprof/ status %d, want 404", resp.StatusCode)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	if resp, _ := get(t, on.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on: /debug/pprof/ status %d, want 200", resp.StatusCode)
	}
}

// TestHealthzBreakerTransitions arms an always-failing codec fault and
// watches the breaker's state transitions appear in /healthz: closed while
// failures accumulate, open once tripped, trial after the cooldown.
func TestHealthzBreakerTransitions(t *testing.T) {
	freg := fault.NewRegistry(1)
	if err := freg.ArmAll("server.codec.compress=error:1"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Faults:           freg,
		BreakerThreshold: 2,
		BreakerCooldown:  1,
		CodecRetries:     -1,
	})

	breakerState := func() string {
		t.Helper()
		_, body := get(t, ts.URL+"/healthz")
		var h struct {
			Breakers map[string]string `json:"breakers"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz: %v\n%s", err, body)
		}
		return h.Breakers["lz77/compress"]
	}

	payload := []byte("breaker transition payload")
	if resp, _ := post(t, ts.URL+"/v1/lz77/compress", payload); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first injected failure: status %d, want 500", resp.StatusCode)
	}
	if st := breakerState(); st != "closed" {
		t.Fatalf("after 1 failure: breaker %q, want closed", st)
	}
	if resp, _ := post(t, ts.URL+"/v1/lz77/compress", payload); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("second injected failure: status %d, want 500", resp.StatusCode)
	}
	if st := breakerState(); st != "open" {
		t.Fatalf("after %d failures: breaker %q, want open", 2, st)
	}
	// The open breaker rejects one request (the cooldown), then trials.
	if resp, _ := post(t, ts.URL+"/v1/lz77/compress", payload); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", resp.StatusCode)
	}
	if st := breakerState(); st != "trial" {
		t.Fatalf("after cooldown: breaker %q, want trial", st)
	}
}

// TestAccessLog checks every /v1 request writes one structured NDJSON
// record carrying the fields a log pipeline joins on.
func TestAccessLog(t *testing.T) {
	var buf lockedBuffer
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		Registry:  reg,
		Tracer:    obs.NewTracer(reg, 7),
		AccessLog: &buf,
	})
	post(t, ts.URL+"/v1/lzw/compress", []byte("access log payload"))
	get(t, ts.URL+"/metrics") // scrapes must NOT be access-logged

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines, want 1:\n%s", len(lines), buf.Bytes())
	}
	var rec struct {
		Ev       string `json:"ev"`
		Trace    string `json:"trace"`
		Codec    string `json:"codec"`
		Op       string `json:"op"`
		Status   int    `json:"status"`
		BytesIn  int    `json:"bytes_in"`
		BytesOut int    `json:"bytes_out"`
		SimSteps uint64 `json:"sim_steps"`
		WallUS   *int64 `json:"wall_us"`
		Cache    string `json:"cache"`
		Breaker  string `json:"breaker"`
	}
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("access record: %v\n%s", err, lines[0])
	}
	if rec.Ev != "access" || rec.Codec != "lzw" || rec.Op != "compress" || rec.Status != 200 {
		t.Fatalf("access record fields: %+v", rec)
	}
	if rec.Trace == "" || len(rec.Trace) != 32 {
		t.Fatalf("access record trace = %q, want 32-hex trace ID", rec.Trace)
	}
	if rec.BytesIn != len("access log payload") || rec.BytesOut == 0 {
		t.Fatalf("access record byte counts: %+v", rec)
	}
	if rec.SimSteps != 1 || rec.WallUS == nil || rec.Cache != "miss" || rec.Breaker != "closed" {
		t.Fatalf("access record envelope: %+v", rec)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body := readAll(t, resp)
	return resp, body
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
