package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/pagestore"
)

func pagePut(t *testing.T, base, id string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/pages/"+id, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT %s: %v", id, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func pageGet(t *testing.T, base, id string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/pages/" + id)
	if err != nil {
		t.Fatalf("GET %s: %v", id, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestPagesRoundTrip stores and loads a page over HTTP, checking the
// compression envelope headers and the returned bytes.
func TestPagesRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	ps := pagestore.New(pagestore.Config{PageSize: 512, Obs: reg})
	_, ts := newTestServer(t, Config{Registry: reg, PageStore: ps})

	body := bytes.Repeat([]byte("page over http "), 20)
	resp, out := pagePut(t, ts.URL, "p1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: status %d: %s", resp.StatusCode, out)
	}
	steps, err := strconv.ParseInt(resp.Header.Get(PageStepsHeader), 10, 64)
	if err != nil || steps <= 0 {
		t.Fatalf("PUT: bad %s header %q", PageStepsHeader, resp.Header.Get(PageStepsHeader))
	}
	if resp.Header.Get(PageCodecHeader) != "lz77" {
		t.Fatalf("PUT: codec header %q", resp.Header.Get(PageCodecHeader))
	}
	var info pagestore.PageInfo
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatalf("PUT: body is not PageInfo JSON: %v (%s)", err, out)
	}
	if info.Steps != steps {
		t.Fatalf("PUT: body steps %d != header steps %d", info.Steps, steps)
	}

	resp, got := pageGet(t, ts.URL, "p1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got[:len(body)], body) {
		t.Fatal("GET returned wrong bytes")
	}
	if resp.Header.Get(PageStepsHeader) == "" {
		t.Fatal("GET: missing steps header")
	}

	snap := reg.Snapshot()
	if snap.Counters["server.codec.pages.put"] != 1 || snap.Counters["server.codec.pages.get"] != 1 {
		t.Fatalf("pages request counters wrong: %v", snap.Counters)
	}
	if snap.Counters["server.slo.pages.put.good"] != 1 {
		t.Fatal("pages.put SLO good counter not incremented")
	}
	if snap.Counters["pagestore.stores"] != 1 {
		t.Fatal("pagestore metrics not folded into the server registry")
	}
}

// TestPagesErrors covers the HTTP error mapping: 404 for a page never
// stored, 413 for a body larger than the page.
func TestPagesErrors(t *testing.T) {
	ps := pagestore.New(pagestore.Config{PageSize: 256})
	_, ts := newTestServer(t, Config{PageStore: ps})

	resp, _ := pageGet(t, ts.URL, "nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing page: status %d, want 404", resp.StatusCode)
	}
	resp, _ = pagePut(t, ts.URL, "big", make([]byte, 300))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized page: status %d, want 413", resp.StatusCode)
	}
}

// TestPagesDisabledWithoutStore pins the opt-in contract: without
// Config.PageStore the routes don't exist and /healthz carries no pages
// section — a pagestore-free build is byte-identical to earlier versions.
func TestPagesDisabledWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// The generic POST /v1/{codec}/{op} pattern still owns the path
	// shape, so the mux answers 405 (method) or 404 — never a page.
	resp, _ := pageGet(t, ts.URL, "p1")
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("pages route without store: status %d, want 404/405", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if strings.Contains(string(body), `"pages"`) {
		t.Fatal("healthz advertises pages without a store")
	}
}

// TestPagesPlantedSecretNeverServed mounts a planted page and checks the
// HTTP surface returns only the attacker region: the co-located secret
// is reachable solely through the timing channel.
func TestPagesPlantedSecretNeverServed(t *testing.T) {
	ps := pagestore.New(pagestore.Config{})
	if _, err := ps.Plant("victim", 64, []byte("key=SUPERSECRET0")); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{PageStore: ps})

	resp, got := pageGet(t, ts.URL, "victim")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET planted: status %d", resp.StatusCode)
	}
	if len(got) != 64 {
		t.Fatalf("GET planted returned %d bytes, want the 64-byte attacker region", len(got))
	}
	if bytes.Contains(got, []byte("SUPERSECRET0")) {
		t.Fatal("planted secret leaked through GET")
	}
	// Writes are confined to the attacker region too: 413 past it.
	resp, _ = pagePut(t, ts.URL, "victim", make([]byte, 65))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized planted write: status %d, want 413", resp.StatusCode)
	}
	resp, _ = pagePut(t, ts.URL, "victim", []byte("key=GUESS"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-region planted write: status %d", resp.StatusCode)
	}
}

// TestPagesHealthz checks the pages section appears with live numbers
// when a store is mounted.
func TestPagesHealthz(t *testing.T) {
	ps := pagestore.New(pagestore.Config{PageSize: 512})
	_, ts := newTestServer(t, Config{PageStore: ps})
	if resp, out := pagePut(t, ts.URL, "p", []byte("x")); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: %d %s", resp.StatusCode, out)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Version string `json:"version"`
		Pages   *struct {
			PageSize int   `json:"page_size"`
			Pages    int   `json:"pages"`
			SimSteps int64 `json:"sim_steps"`
		} `json:"pages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Pages == nil {
		t.Fatal("healthz missing pages section")
	}
	if health.Pages.PageSize != 512 || health.Pages.Pages != 1 || health.Pages.SimSteps <= 0 {
		t.Fatalf("healthz pages section wrong: %+v", *health.Pages)
	}
}

// TestChaosPagesTransientCorruptRetries drives the chaos contract end to
// end over HTTP: an every-2nd load corruption maps to a 500, and the
// clean retry serves the original bytes — the recovery loop zipload runs.
func TestChaosPagesTransientCorruptRetries(t *testing.T) {
	freg := fault.NewRegistry(9)
	freg.Arm("pagestore.load", fault.Spec{Kind: fault.KindCorrupt, Every: 2})
	ps := pagestore.New(pagestore.Config{Faults: freg})
	_, ts := newTestServer(t, Config{PageStore: ps, Faults: freg})

	body := bytes.Repeat([]byte("retry me "), 30)
	if resp, out := pagePut(t, ts.URL, "p", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: %d %s", resp.StatusCode, out)
	}
	var saw500, sawOK bool
	for i := 0; i < 6; i++ {
		resp, got := pageGet(t, ts.URL, "p")
		switch resp.StatusCode {
		case http.StatusInternalServerError:
			saw500 = true
		case http.StatusOK:
			if !bytes.Equal(got[:len(body)], body) {
				t.Fatal("retry served wrong bytes")
			}
			sawOK = true
		default:
			t.Fatalf("iteration %d: unexpected status %d: %s", i, resp.StatusCode, got)
		}
	}
	if !saw500 || !sawOK {
		t.Fatalf("every-2nd corrupt over HTTP: saw500=%v sawOK=%v", saw500, sawOK)
	}
}

// TestPagesRemoteOracle is the end-to-end remote attack at the package
// boundary: an HTTP client that sees only PUT status + X-Page-Steps can
// rank candidate guesses against a planted page (the full recovery loop
// lives in cmd/zippages).
func TestPagesRemoteOracle(t *testing.T) {
	ps := pagestore.New(pagestore.Config{})
	if _, err := ps.Plant("victim", 64, []byte("key=Q")); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{PageStore: ps})

	cost := func(guess string) int64 {
		resp, out := pagePut(t, ts.URL, "victim", []byte(guess))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %q: %d %s", guess, resp.StatusCode, out)
		}
		v, err := strconv.ParseInt(resp.Header.Get(PageStepsHeader), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	right := cost("key=Q\x01")
	var wrongMin int64 = 1 << 62
	for _, c := range "ABCDEF" {
		if w := cost(fmt.Sprintf("key=%c\x01", c)); w < wrongMin {
			wrongMin = w
		}
	}
	if right >= wrongMin {
		t.Fatalf("remote oracle carries no signal: right=%d wrongMin=%d", right, wrongMin)
	}
}
