package server

// Fuzz targets for the request-header parsers. These parse
// attacker-controlled input on every /v1 request, so the bar is total
// robustness: no panic on any input, and the structural invariants below
// hold unconditionally. Seeds cover quoted tags, weak validators, comma
// lists, wildcard, quoted directive values, and malformed junk.

import (
	"strings"
	"testing"
)

func FuzzParseCacheControl(f *testing.F) {
	for _, seed := range []string{
		"",
		"no-cache",
		"no-store, max-age=60",
		`max-age="30"`,
		"NO-CACHE,Max-Age=0",
		"max-age=99999999999999999999",
		"max-age=-1",
		"=,,=;===",
		"private, immutable, stale-while-revalidate=7",
		"no-cache=\"field\", no-store",
		strings.Repeat("a,", 100),
		"max-age=\xc3\xa9\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cc := parseCacheControl(s)
		if cc.MaxAge < -1 {
			t.Fatalf("MaxAge = %d, below the -1 'absent' sentinel", cc.MaxAge)
		}
		if again := parseCacheControl(s); again != cc {
			t.Fatal("parseCacheControl is not deterministic")
		}
	})
}

func FuzzParseIfNoneMatch(f *testing.F) {
	for _, seed := range []string{
		"",
		`"abc"`,
		`W/"abc", "def"`,
		`w/"x"`,
		"*",
		`"a", *, "b"`,
		`"unterminated`,
		`W/`,
		`garbage, "ok", more garbage`,
		`""`,
		strings.Repeat(`W/"t",`, 50),
		"\"\x00\xff\"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tags, wildcard := parseIfNoneMatch(s)
		for i, tag := range tags {
			if strings.ContainsRune(tag, '"') {
				t.Fatalf("tag %d %q contains a quote — quotes must be stripped", i, tag)
			}
		}
		// etagMatches must be total over the same input space and agree
		// with its own parser: a wildcard matches anything.
		if m := etagMatches(s, `"deadbeef"`); wildcard && !m {
			t.Fatal("wildcard header did not match")
		}
		tags2, wc2 := parseIfNoneMatch(s)
		if wc2 != wildcard || len(tags2) != len(tags) {
			t.Fatal("parseIfNoneMatch is not deterministic")
		}
	})
}
