package server

// This file is the server's request-scoped observability: the
// per-request info carrier the middleware and handlers share, the
// structured NDJSON access log, SLO accounting, and the startup metric
// declarations that make every operational series visible (at zero)
// from the first scrape.

import (
	"context"
	"net/http"
	"time"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// SLO defaults; overridable via Config.
const (
	// DefaultSLOLatency is the per-request wall-latency objective: a /v1
	// request slower than this (or failing with a 5xx) is an SLO breach.
	DefaultSLOLatency = 500 * time.Millisecond
	// DefaultSLOBudget is the tolerated breach ratio (1%): the burn-rate
	// gauge reports observed breach ratio divided by this budget, so
	// burn rate > 1 means the error budget is being consumed faster than
	// it refills.
	DefaultSLOBudget = 0.01
)

// reqInfo is the per-request carrier threaded through the handler chain
// via context: the middleware creates it, handlers fill it in, and the
// middleware turns it into the access-log record, the SLO counters, and
// the root span's attributes on the way out.
type reqInfo struct {
	span      *obs.TraceSpan // root server.request span (nil when tracing off)
	codec     string
	op        string
	bytesIn   int
	cacheTier string // "hit", "miss", "bypass", or "" before the cache decision
	breaker   string // breaker state observed at the admission decision
	gateWait  time.Duration
}

type reqInfoKey struct{}

// reqInfoFrom returns the request's carrier, or nil outside the traced
// path (so handler instrumentation is nil-safe by construction).
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// statusRecorder captures the status code and body bytes a handler
// writes, for the access log and SLO accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// declareMetrics pre-registers every operational series the server can
// emit, so counters appear at zero on the first scrape instead of
// popping into existence mid-run (a rate() over a counter needs its
// zero point). Fault counters are declared separately by
// fault.Registry.AttachObs — but only for armed points, keeping
// disarmed runs byte-identical.
func (s *Server) declareMetrics() {
	s.reg.DeclareCounters(
		"server.requests",
		"server.bytes_in",
		"server.bytes_out",
		"server.cache.hits",
		"server.cache.misses",
		"server.cache.evictions",
		"server.breaker.rejected",
		"server.breaker.trips",
		"server.codec.executions",
		"server.flight.shared",
		"server.http.not_modified",
	)
	s.reg.DeclareGauges("server.cache.bytes", "server.cache.entries")
	s.reg.DeclareHistograms("server.request_latency_us")
	for _, name := range codec.Names() {
		for _, op := range []string{"compress", "decompress"} {
			key := name + "." + op
			s.reg.DeclareCounters(
				"server.codec."+key,
				"server.slo."+key+".good",
				"server.slo."+key+".breach",
			)
			s.reg.DeclareGauges(
				"server.slo."+key+".burn_rate",
				"server.breaker."+name+"."+op+".state",
			)
		}
	}
}

// updateBreakerGauge mirrors a breaker's state into its gauge (0 closed,
// 1 open, 2 trial) after every decision that can move it.
func (s *Server) updateBreakerGauge(name, op string, b *breaker) {
	s.reg.Gauge("server.breaker." + name + "." + op + ".state").Set(float64(b.stateCode()))
}

// finishRequest closes out one /v1 request: latency histogram (with the
// trace ID as exemplar), SLO counters and burn rate, root-span
// attributes, and the access-log record. Runs for every /v1 request,
// success or failure.
func (s *Server) finishRequest(ri *reqInfo, rec *statusRecorder, lat time.Duration) {
	latUS := lat.Microseconds()
	s.reg.Histogram("server.request_latency_us").ObserveExemplar(latUS, ri.span.TraceIDString())

	if ri.codec != "" && ri.op != "" {
		key := ri.codec + "." + ri.op
		breach := (s.sloLatency > 0 && lat > s.sloLatency) || rec.status >= 500
		if breach {
			s.reg.Counter("server.slo." + key + ".breach").Inc()
		} else {
			s.reg.Counter("server.slo." + key + ".good").Inc()
		}
		good := s.reg.Counter("server.slo." + key + ".good").Value()
		bad := s.reg.Counter("server.slo." + key + ".breach").Value()
		if total := good + bad; total > 0 {
			ratio := float64(bad) / float64(total)
			s.reg.Gauge("server.slo."+key+".burn_rate").Set(ratio / DefaultSLOBudget)
		}
	}

	if sp := ri.span; sp != nil {
		sp.SetAttr("codec", ri.codec)
		sp.SetAttr("op", ri.op)
		sp.SetAttr("status", rec.status)
		sp.SetAttr("bytes_in", ri.bytesIn)
		sp.SetAttr("bytes_out", rec.bytes)
		if ri.cacheTier != "" {
			sp.SetAttr("cache", ri.cacheTier)
		}
		sp.End()
	}

	if s.accessSink != nil {
		s.accessSink.Emit("access", s.simSteps.Load(), map[string]any{
			"trace":        ri.span.TraceIDString(),
			"codec":        ri.codec,
			"op":           ri.op,
			"status":       rec.status,
			"bytes_in":     ri.bytesIn,
			"bytes_out":    rec.bytes,
			"sim_steps":    s.simSteps.Load(),
			"wall_us":      latUS,
			"cache":        ri.cacheTier,
			"breaker":      ri.breaker,
			"gate_wait_us": ri.gateWait.Microseconds(),
		})
	}
}
