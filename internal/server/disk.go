package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// Fault-point names the disk backend consults (armed via the same -faults
// DSL as every other point; disarmed points cost one nil/len check).
const (
	// FaultDiskWrite fires on Put: an error injection makes the write
	// fail, which the backend absorbs as a skipped store (degrade to
	// uncached, never to a broken entry).
	FaultDiskWrite = "server.cache.disk.write"
	// FaultDiskRead fires on Get: an error injection makes the read
	// fail, which the backend absorbs as a miss.
	FaultDiskRead = "server.cache.disk.read"
)

// DiskBackend spills codec responses to files under a directory — the
// cold tier of the default hierarchy: slower and bigger than the
// in-memory LRU, surviving entry churn above it. Each entry is one file
// (hex key + ".zc") laid out as a 32-byte SHA-256 of the value followed
// by the value, so integrity survives the process: a Get re-hashes what
// it read and a mismatch (torn write, chaos bit-flip) is a detected
// corruption + miss, never wrong bytes. An in-memory index (map + LRU
// list) keeps recency and strict byte accounting; eviction unlinks files.
type DiskBackend struct {
	mu    sync.Mutex
	dir   string
	max   int64
	size  int64
	order *list.List // front = most recently used; values are *diskEntry
	items map[Key]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bytes     *obs.Gauge
	entries   *obs.Gauge
	reg       *obs.Registry
	prefix    string

	fpWrite *fault.Point
	fpRead  *fault.Point
}

type diskEntry struct {
	key Key
	len int64
}

// NewDiskBackend creates (mkdir -p) a disk cache rooted at dir with a
// maxBytes value budget, counters under prefix, and fault points
// registered on faults (nil disables injection). The directory is
// scrubbed on open (ScrubDir): leftover put-* temps from a crash are
// removed, torn entries are quarantined, and every intact entry is
// re-indexed in sorted-key order — so a restart after SIGKILL warm-starts
// from whatever the previous process durably wrote, never from a lie.
// A fresh/empty directory scrubs to an empty index at no cost.
func NewDiskBackend(dir string, maxBytes int64, reg *obs.Registry, prefix string, faults *fault.Registry) (*DiskBackend, error) {
	if maxBytes <= 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DiskBackend{
		dir:       dir,
		max:       maxBytes,
		order:     list.New(),
		items:     map[Key]*list.Element{},
		hits:      reg.Counter(prefix + ".hits"),
		misses:    reg.Counter(prefix + ".misses"),
		evictions: reg.Counter(prefix + ".evictions"),
		bytes:     reg.Gauge(prefix + ".bytes"),
		entries:   reg.Gauge(prefix + ".entries"),
		reg:       reg,
		prefix:    prefix,
		fpWrite:   faults.Point(FaultDiskWrite),
		fpRead:    faults.Point(FaultDiskRead),
	}
	if err := d.recover(reg, prefix); err != nil {
		return nil, err
	}
	return d, nil
}

// recover runs the startup scrub and rebuilds the index from intact
// entries. Sorted-key order becomes the recovered recency order (there is
// no durable recency to restore; any deterministic order keeps restarts
// reproducible), and entries beyond the byte budget are evicted from the
// LRU end like any other over-budget state.
func (d *DiskBackend) recover(reg *obs.Registry, prefix string) error {
	rep, err := ScrubDir(d.dir)
	if err != nil {
		return err
	}
	reg.Counter(prefix + ".scrub.recovered").Add(uint64(rep.Recovered))
	reg.Counter(prefix + ".scrub.quarantined").Add(uint64(len(rep.Quarantined)))
	reg.Counter(prefix + ".scrub.temps_removed").Add(uint64(rep.TempsRemoved))
	for _, ent := range rep.Entries {
		d.items[ent.Key] = d.order.PushFront(&diskEntry{key: ent.Key, len: ent.Bytes})
		d.size += ent.Bytes
	}
	for d.size > d.max {
		back := d.order.Back()
		if back == nil {
			break
		}
		d.removeLocked(back, back.Value.(*diskEntry))
		d.evictions.Inc()
	}
	d.bytes.Set(float64(d.size))
	d.entries.Set(float64(len(d.items)))
	return nil
}

func (d *DiskBackend) path(key Key) string {
	return filepath.Join(d.dir, hex.EncodeToString(key[:])+".zc")
}

// Name implements CacheBackend.
func (d *DiskBackend) Name() string { return "disk" }

// Get implements CacheBackend: an indexed entry is read back from its
// file and integrity-checked. A read error (ENOENT after external
// tampering, injected fault) is a miss; a checksum mismatch additionally
// counts a detected corruption. Either way the entry is dropped so the
// caller's re-put heals it.
func (d *DiskBackend) Get(key Key) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.items[key]
	if !ok {
		d.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*diskEntry)
	if in := d.fpRead.Hit(); in.Kind == fault.KindError {
		d.reg.Counter(d.prefix + ".read_errors").Inc()
		d.misses.Inc()
		return nil, false
	}
	raw, err := os.ReadFile(d.path(key))
	if err != nil || len(raw) < sha256.Size {
		d.removeLocked(el, ent)
		d.reg.Counter(d.prefix + ".read_errors").Inc()
		d.misses.Inc()
		return nil, false
	}
	var sum [sha256.Size]byte
	copy(sum[:], raw[:sha256.Size])
	val := raw[sha256.Size:]
	if sha256.Sum256(val) != sum {
		d.removeLocked(el, ent)
		d.reg.Counter(d.prefix + ".corruptions_detected").Inc()
		d.misses.Inc()
		return nil, false
	}
	d.order.MoveToFront(el)
	d.hits.Inc()
	return val, true
}

// Put implements CacheBackend: value written as sum||val via a temp file
// + rename so a crash mid-write can never leave a half entry under a
// valid name. A failed write (disk full, injected fault) skips the store
// — the response was already computed, so the degradation is "uncached",
// never "broken".
func (d *DiskBackend) Put(key Key, val []byte) {
	if d == nil || int64(len(val)) > d.max {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if in := d.fpWrite.Hit(); in.Kind == fault.KindError {
		d.reg.Counter(d.prefix + ".write_errors").Inc()
		return
	}
	if err := d.writeEntry(key, val); err != nil {
		d.reg.Counter(d.prefix + ".write_errors").Inc()
		return
	}
	if el, ok := d.items[key]; ok {
		ent := el.Value.(*diskEntry)
		d.size += int64(len(val)) - ent.len
		ent.len = int64(len(val))
		d.order.MoveToFront(el)
	} else {
		d.items[key] = d.order.PushFront(&diskEntry{key: key, len: int64(len(val))})
		d.size += int64(len(val))
	}
	for d.size > d.max {
		back := d.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*diskEntry)
		d.removeLocked(back, ent)
		d.evictions.Inc()
	}
	d.bytes.Set(float64(d.size))
	d.entries.Set(float64(len(d.items)))
}

func (d *DiskBackend) writeEntry(key Key, val []byte) error {
	sum := sha256.Sum256(val)
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err = tmp.Write(sum[:]); err == nil {
		_, err = tmp.Write(val)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), d.path(key))
}

// CorruptStored implements CacheBackend: the file's value region is
// damaged while the stored checksum keeps the original digest — the next
// Get must detect it.
func (d *DiskBackend) CorruptStored(key Key, in fault.Injection) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.items[key]; !ok {
		return
	}
	raw, err := os.ReadFile(d.path(key))
	if err != nil || len(raw) <= sha256.Size {
		return
	}
	bad := append(raw[:sha256.Size:sha256.Size], in.CorruptCopy(raw[sha256.Size:])...)
	os.WriteFile(d.path(key), bad, 0o644)
}

// Stats implements CacheBackend.
func (d *DiskBackend) Stats() (entries int, bytes int64) {
	if d == nil {
		return 0, 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items), d.size
}

// Keys implements CacheBackend (MRU→LRU).
func (d *DiskBackend) Keys() []Key {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]Key, 0, len(d.items))
	for el := d.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*diskEntry).key)
	}
	return keys
}

// Close implements CacheBackend: drops the index and deletes the entry
// files (the cache directory is disposable state, usually a temp dir).
func (d *DiskBackend) Close() error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for el := d.order.Front(); el != nil; el = el.Next() {
		if err := os.Remove(d.path(el.Value.(*diskEntry).key)); err != nil && first == nil {
			first = err
		}
	}
	d.order.Init()
	d.items = map[Key]*list.Element{}
	d.size = 0
	d.bytes.Set(0)
	d.entries.Set(0)
	return first
}

// removeLocked unlinks one entry (index + file) and updates accounting.
func (d *DiskBackend) removeLocked(el *list.Element, ent *diskEntry) {
	d.order.Remove(el)
	delete(d.items, ent.key)
	d.size -= ent.len
	os.Remove(d.path(ent.key))
	d.bytes.Set(float64(d.size))
	d.entries.Set(float64(len(d.items)))
}
