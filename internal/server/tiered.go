package server

import (
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// TieredBackend composes a small fast hot tier over a large slow cold
// tier (in the default hierarchy: in-memory LRU over disk; in a cluster:
// local tiers over a remote peer). Semantics:
//
//   - Get: hot hit wins; a cold hit is promoted into the hot tier on its
//     way out (so a re-hit is cheap); a double miss is a miss.
//   - Put: write-through to both tiers, so hot evictions never lose a
//     still-warm entry that the cold tier can hold.
//   - Integrity: each tier carries its own SHA-256 verification. A
//     corrupt hot entry degrades to the cold tier; a corrupt cold entry
//     degrades to a miss. Corrupt bytes can never cross a tier boundary
//     because promotion re-verifies on the cold tier's Get.
//
// The composite maintains the aggregate hits/misses series under its own
// prefix (the classic "server.cache" names, so single-LRU dashboards and
// zipload's hit-rate report keep working unchanged), while each tier
// keeps its per-tier series (server.cache.hot.*, server.cache.cold.*) —
// the per-tier hit rates the cluster bench reports.
type TieredBackend struct {
	hot, cold CacheBackend

	hits       *obs.Counter
	misses     *obs.Counter
	promotions *obs.Counter
}

// NewTiered composes hot over cold with aggregate counters under prefix.
// Either tier may be nil (the composite degrades to the other); both nil
// yields a nil composite (caching disabled).
func NewTiered(hot, cold CacheBackend, reg *obs.Registry, prefix string) *TieredBackend {
	if hot == nil && cold == nil {
		return nil
	}
	return &TieredBackend{
		hot:        hot,
		cold:       cold,
		hits:       reg.Counter(prefix + ".hits"),
		misses:     reg.Counter(prefix + ".misses"),
		promotions: reg.Counter(prefix + ".promotions"),
	}
}

// Name implements CacheBackend.
func (t *TieredBackend) Name() string {
	n := "tiered("
	if t.hot != nil {
		n += t.hot.Name()
	}
	n += "/"
	if t.cold != nil {
		n += t.cold.Name()
	}
	return n + ")"
}

// Get implements CacheBackend: hot, then cold with promotion.
func (t *TieredBackend) Get(key Key) ([]byte, bool) {
	if t.hot != nil {
		if val, ok := t.hot.Get(key); ok {
			t.hits.Inc()
			return val, true
		}
	}
	if t.cold != nil {
		if val, ok := t.cold.Get(key); ok {
			if t.hot != nil {
				t.hot.Put(key, val)
				t.promotions.Inc()
			}
			t.hits.Inc()
			return val, true
		}
	}
	t.misses.Inc()
	return nil, false
}

// Put implements CacheBackend (write-through).
func (t *TieredBackend) Put(key Key, val []byte) {
	if t.hot != nil {
		t.hot.Put(key, val)
	}
	if t.cold != nil {
		t.cold.Put(key, val)
	}
}

// CorruptStored implements CacheBackend. The chaos target is the cold
// tier when present ("corrupt cold-tier entry" is the scenario the
// hierarchy must absorb: the hot copy — if any — still serves, and once
// it evicts, the cold read must detect the damage rather than serve it).
func (t *TieredBackend) CorruptStored(key Key, in fault.Injection) {
	if t.cold != nil {
		t.cold.CorruptStored(key, in)
		return
	}
	t.hot.CorruptStored(key, in)
}

// Stats implements CacheBackend: occupancy summed over tiers (a
// write-through entry counts in each tier holding it, matching what the
// tiers' own gauges report).
func (t *TieredBackend) Stats() (entries int, bytes int64) {
	for _, b := range []CacheBackend{t.hot, t.cold} {
		if b != nil {
			e, n := b.Stats()
			entries += e
			bytes += n
		}
	}
	return entries, bytes
}

// Keys implements CacheBackend: hot tier MRU→LRU, then cold-tier keys not
// already listed — one deterministic view of the hierarchy.
func (t *TieredBackend) Keys() []Key {
	var keys []Key
	seen := map[Key]bool{}
	for _, b := range []CacheBackend{t.hot, t.cold} {
		if b == nil {
			continue
		}
		for _, k := range b.Keys() {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// PeerState implements PeerHealth by delegating to whichever tier fronts
// a remote peer (cold first — the usual cluster composition — then hot).
// ok is false when no tier is peer-backed.
func (t *TieredBackend) PeerState() (string, bool) {
	for _, b := range []CacheBackend{t.cold, t.hot} {
		if ph, ok := b.(PeerHealth); ok {
			if state, has := ph.PeerState(); has {
				return state, true
			}
		}
	}
	return "", false
}

// Close implements CacheBackend.
func (t *TieredBackend) Close() error {
	var first error
	for _, b := range []CacheBackend{t.hot, t.cold} {
		if b != nil {
			if err := b.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
