package server

// Unit coverage for the RFC 9110/9111 request-header parsers plus
// end-to-end proof of the cache envelope on /v1: strong ETags,
// If-None-Match revalidation to 304 before any codec work, Cache-Control
// request directives, and Vary partitioning on the level header.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/obs"
)

func TestParseLevel(t *testing.T) {
	for _, ok := range []string{"", "0", "5", "9"} {
		if got, err := parseLevel(ok); err != nil || got != ok {
			t.Fatalf("parseLevel(%q) = %q, %v", ok, got, err)
		}
	}
	for _, bad := range []string{"a", "10", " 1", "-1", "3.5"} {
		if _, err := parseLevel(bad); err == nil {
			t.Fatalf("parseLevel(%q) should fail", bad)
		}
	}
}

func TestParseCacheControl(t *testing.T) {
	cases := []struct {
		in   string
		want cacheControl
	}{
		{"", cacheControl{MaxAge: -1}},
		{"no-cache", cacheControl{NoCache: true, MaxAge: -1}},
		{"No-Store , max-age=60", cacheControl{NoStore: true, MaxAge: 60}},
		{`max-age="30"`, cacheControl{MaxAge: 30}},
		{"max-age=-5", cacheControl{MaxAge: -1}},  // negative: ignored
		{"max-age=abc", cacheControl{MaxAge: -1}}, // junk value: ignored
		{"max-age", cacheControl{MaxAge: -1}},     // valueless: ignored
		{"private, immutable, stale-while-revalidate=7", cacheControl{MaxAge: -1}}, // unknown directives
		{"=,, =;===,no-cache", cacheControl{NoCache: true, MaxAge: -1}},            // garbage + real
	}
	for _, c := range cases {
		if got := parseCacheControl(c.in); got != c.want {
			t.Fatalf("parseCacheControl(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseIfNoneMatch(t *testing.T) {
	cases := []struct {
		in       string
		tags     []string
		wildcard bool
	}{
		{`"abc"`, []string{"abc"}, false},
		{`W/"abc", "def"`, []string{"abc", "def"}, false},
		{`w/"abc"`, []string{"abc"}, false},
		{`*`, nil, true},
		{`"a", *, "b"`, []string{"a", "b"}, true},
		{``, nil, false},
		{`W/`, nil, false},
		{`garbage, "ok"`, []string{"ok"}, false},
		{`"unterminated`, nil, false},
		{`""`, []string{""}, false},
	}
	for _, c := range cases {
		tags, wc := parseIfNoneMatch(c.in)
		if wc != c.wildcard || len(tags) != len(c.tags) {
			t.Fatalf("parseIfNoneMatch(%q) = %v, %v; want %v, %v", c.in, tags, wc, c.tags, c.wildcard)
		}
		for i := range tags {
			if tags[i] != c.tags[i] {
				t.Fatalf("parseIfNoneMatch(%q) tag %d = %q, want %q", c.in, i, tags[i], c.tags[i])
			}
		}
	}
}

func TestEtagForAndMatches(t *testing.T) {
	key := cacheKey("compress", "lz77", "", []byte("hello"))
	etag := etagFor(key)
	if len(etag) != 66 || etag[0] != '"' || etag[65] != '"' {
		t.Fatalf("etag %q is not a quoted 64-hex string", etag)
	}
	if !etagMatches(etag, etag) {
		t.Fatal("strong self-match failed")
	}
	if !etagMatches("W/"+etag, etag) {
		t.Fatal("weak comparison should match a W/ validator")
	}
	if !etagMatches("*", etag) {
		t.Fatal("wildcard should match")
	}
	if etagMatches(`"deadbeef"`, etag) {
		t.Fatal("mismatched tag should not match")
	}
}

// postV1 issues one /v1 request with optional headers and returns the
// response (body drained into resp-independent storage).
func postV1(t *testing.T, ts *httptest.Server, path string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPCacheEnvelopeE2E drives the full conditional-request flow
// against a live server: envelope on first response, HIT on repeat,
// 304 on revalidation (counted, no body), 200 on a stale validator.
func TestHTTPCacheEnvelopeE2E(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := []byte("the quick brown fox jumps over the lazy dog")
	resp, out := postV1(t, ts, "/v1/lz77/compress", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if len(etag) != 66 {
		t.Fatalf("ETag %q is not a quoted sha256", etag)
	}
	if got := resp.Header.Get("Vary"); got != LevelHeader {
		t.Fatalf("Vary = %q, want %q", got, LevelHeader)
	}
	if got := resp.Header.Get("Cache-Control"); got != "public, max-age=300" {
		t.Fatalf("Cache-Control = %q", got)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first request X-Cache = %q", got)
	}

	resp2, out2 := postV1(t, ts, "/v1/lz77/compress", body, nil)
	if resp2.Header.Get("X-Cache") != "HIT" || !bytes.Equal(out, out2) {
		t.Fatalf("repeat request: X-Cache=%q, bytes equal=%v", resp2.Header.Get("X-Cache"), bytes.Equal(out, out2))
	}
	if resp2.Header.Get("ETag") != etag {
		t.Fatalf("ETag changed across identical requests: %q vs %q", etag, resp2.Header.Get("ETag"))
	}

	// Revalidation: matching validator → 304, empty body, envelope kept.
	resp3, out3 := postV1(t, ts, "/v1/lz77/compress", body, map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusNotModified || len(out3) != 0 {
		t.Fatalf("revalidation: status %d, %d body bytes", resp3.StatusCode, len(out3))
	}
	if resp3.Header.Get("ETag") != etag {
		t.Fatalf("304 must carry the ETag, got %q", resp3.Header.Get("ETag"))
	}
	if got := reg.Counter("server.http.not_modified").Value(); got != 1 {
		t.Fatalf("server.http.not_modified = %d, want 1", got)
	}

	// Weak validator and wildcard also revalidate.
	if resp, _ := postV1(t, ts, "/v1/lz77/compress", body, map[string]string{"If-None-Match": "W/" + etag}); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak validator: status %d", resp.StatusCode)
	}
	if resp, _ := postV1(t, ts, "/v1/lz77/compress", body, map[string]string{"If-None-Match": "*"}); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("wildcard validator: status %d", resp.StatusCode)
	}

	// A stale validator falls through to a full (cached) response.
	resp4, out4 := postV1(t, ts, "/v1/lz77/compress", body, map[string]string{"If-None-Match": `"0000"`})
	if resp4.StatusCode != http.StatusOK || !bytes.Equal(out4, out) {
		t.Fatalf("stale validator: status %d", resp4.StatusCode)
	}
}

// TestVaryOnLevelE2E: the level header partitions the key space — same
// body, different level, different ETag and separate cache entries —
// and an invalid level is a 400, not a silent default.
func TestVaryOnLevelE2E(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := []byte("partition me by level")
	respDefault, _ := postV1(t, ts, "/v1/lzw/compress", body, nil)
	respLeveled, _ := postV1(t, ts, "/v1/lzw/compress", body, map[string]string{LevelHeader: "7"})
	if respDefault.Header.Get("ETag") == respLeveled.Header.Get("ETag") {
		t.Fatal("level header did not partition the ETag space")
	}
	if respLeveled.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("leveled first request X-Cache = %q", respLeveled.Header.Get("X-Cache"))
	}
	respLeveled2, _ := postV1(t, ts, "/v1/lzw/compress", body, map[string]string{LevelHeader: "7"})
	if respLeveled2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("leveled repeat X-Cache = %q", respLeveled2.Header.Get("X-Cache"))
	}

	respBad, out := postV1(t, ts, "/v1/lzw/compress", body, map[string]string{LevelHeader: "fast"})
	if respBad.StatusCode != http.StatusBadRequest || !strings.Contains(string(out), LevelHeader) {
		t.Fatalf("bad level: status %d, body %q", respBad.StatusCode, out)
	}
	if got := reg.Counter("server.errors.bad_level").Value(); got != 1 {
		t.Fatalf("server.errors.bad_level = %d, want 1", got)
	}
}

// TestCacheControlDirectivesE2E: no-store leaves no trace in the cache;
// no-cache recomputes but still stores (so a later plain request hits).
func TestCacheControlDirectivesE2E(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	ts := httptest.NewServer(s)
	defer ts.Close()

	noStore := map[string]string{"Cache-Control": "no-store"}
	body := []byte("never stored")
	for i := 0; i < 2; i++ {
		resp, _ := postV1(t, ts, "/v1/lz77/compress", body, noStore)
		if resp.Header.Get("X-Cache") != "MISS" {
			t.Fatalf("no-store request %d: X-Cache = %q", i, resp.Header.Get("X-Cache"))
		}
	}
	if entries, _ := s.cache.Stats(); entries != 0 {
		t.Fatalf("no-store left %d cache entries", entries)
	}

	// no-cache: bypasses the lookup but writes back, so the third plain
	// request is a hit against the entry the second request stored.
	body2 := []byte("recompute but store")
	postV1(t, ts, "/v1/lz77/compress", body2, map[string]string{"Cache-Control": "no-cache"})
	resp, _ := postV1(t, ts, "/v1/lz77/compress", body2, map[string]string{"Cache-Control": "no-cache"})
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("no-cache repeat should recompute, X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	resp2, _ := postV1(t, ts, "/v1/lz77/compress", body2, nil)
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("plain request after no-cache should hit, X-Cache = %q", resp2.Header.Get("X-Cache"))
	}
}

// TestCacheMaxAgeConfig: the advertised freshness lifetime follows
// Config.CacheMaxAge, including the negative=disabled convention.
func TestCacheMaxAgeConfig(t *testing.T) {
	s := New(Config{CacheMaxAge: 60})
	ts := httptest.NewServer(s)
	resp, _ := postV1(t, ts, "/v1/lz77/compress", []byte("x"), nil)
	ts.Close()
	if got := resp.Header.Get("Cache-Control"); got != "public, max-age=60" {
		t.Fatalf("Cache-Control = %q", got)
	}

	s2 := New(Config{CacheMaxAge: -1})
	ts2 := httptest.NewServer(s2)
	resp2, _ := postV1(t, ts2, "/v1/lz77/compress", []byte("x"), nil)
	ts2.Close()
	if got := resp2.Header.Get("Cache-Control"); got != "" {
		t.Fatalf("disabled max-age still advertises %q", got)
	}
	if resp2.Header.Get("ETag") == "" {
		t.Fatal("ETag should survive max-age disablement")
	}
}
