package server

// The /internal/cache surface: what one zipserverd instance exposes so
// another instance's PeerBackend can mount it as a cold tier. Deliberately
// minimal — content-addressed GET/PUT plus an index — and served from
// Config.PeerView, which a tiered instance points at its *local* tiers
// only, so two instances peered at each other terminate instead of
// recursing. The chaos corrupt hook is mounted only when the process runs
// with a fault registry.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/zipchannel/zipchannel/internal/fault"
)

// parseCacheKeyPath decodes the {key} path value (64 hex chars).
func parseCacheKeyPath(r *http.Request) (Key, bool) {
	var key Key
	raw, err := hex.DecodeString(r.PathValue("key"))
	if err != nil || len(raw) != sha256.Size {
		return key, false
	}
	copy(key[:], raw)
	return key, true
}

// handleCacheFetch serves GET /internal/cache/{key}: the stored value
// with its SHA-256 in X-Content-SHA256 (computed over the integrity-
// verified bytes, so the caller can detect transport damage), or 404.
func (s *Server) handleCacheFetch(w http.ResponseWriter, r *http.Request) {
	key, ok := parseCacheKeyPath(r)
	if !ok {
		http.Error(w, "bad cache key (want 64 hex chars)", http.StatusBadRequest)
		return
	}
	if s.peerView == nil {
		http.Error(w, "cache disabled", http.StatusNotFound)
		return
	}
	val, ok := s.peerView.Get(key)
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.reg.Counter("server.peerapi.served").Inc()
	sum := sha256.Sum256(val)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Content-SHA256", hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Length", fmt.Sprint(len(val)))
	w.Write(val)
}

// handleCacheStore serves PUT /internal/cache/{key}: stores the body
// under the key. The key hashes the *request* that produced the value,
// not the value itself, so the store cannot verify the binding — it
// enforces only the size cap. A peer storing garbage poisons only
// entries it alone addresses, and every read path re-verifies integrity
// before serving.
func (s *Server) handleCacheStore(w http.ResponseWriter, r *http.Request) {
	key, ok := parseCacheKeyPath(r)
	if !ok {
		http.Error(w, "bad cache key (want 64 hex chars)", http.StatusBadRequest)
		return
	}
	if s.peerView == nil {
		http.Error(w, "cache disabled", http.StatusServiceUnavailable)
		return
	}
	val, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody*2+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(val)) > s.maxBody*2 {
		// Compressed responses can exceed the request cap (incompressible
		// input + framing), but never by 2x.
		http.Error(w, "entry exceeds peer store cap", http.StatusRequestEntityTooLarge)
		return
	}
	s.peerView.Put(key, val)
	s.reg.Counter("server.peerapi.stored").Inc()
	w.WriteHeader(http.StatusNoContent)
}

// handleCacheIndex serves GET /internal/cache: occupancy and the
// deterministic MRU→LRU key listing (the peer Stats/Keys view).
func (s *Server) handleCacheIndex(w http.ResponseWriter, r *http.Request) {
	idx := peerIndex{Backend: "disabled"}
	if s.peerView != nil {
		idx.Backend = s.peerView.Name()
		idx.Entries, idx.Bytes = s.peerView.Stats()
		keys := s.peerView.Keys()
		idx.Keys = make([]string, len(keys))
		for i, k := range keys {
			idx.Keys[i] = hex.EncodeToString(k[:])
		}
	}
	b, err := json.Marshal(idx)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// handleCacheCorrupt serves POST /internal/cache/{key}/corrupt — the
// chaos hook behind PeerBackend.CorruptStored, mounted only when this
// process runs with a fault registry. The rand query parameter carries
// the injection's deterministic payload so the flipped byte is
// reproducible across runs.
func (s *Server) handleCacheCorrupt(w http.ResponseWriter, r *http.Request) {
	key, ok := parseCacheKeyPath(r)
	if !ok {
		http.Error(w, "bad cache key (want 64 hex chars)", http.StatusBadRequest)
		return
	}
	if s.peerView == nil {
		http.Error(w, "cache disabled", http.StatusServiceUnavailable)
		return
	}
	rnd, err := strconv.ParseUint(r.URL.Query().Get("rand"), 10, 64)
	if err != nil {
		http.Error(w, "bad rand parameter", http.StatusBadRequest)
		return
	}
	s.peerView.CorruptStored(key, fault.Injection{Kind: fault.KindCorrupt, Point: "peerapi", Rand: rnd})
	s.reg.Counter("server.peerapi.corruptions_injected").Inc()
	w.WriteHeader(http.StatusNoContent)
}
