package server

// Crash-recovery tests for the disk tier (DESIGN.md §13): after an
// unclean shutdown, reopening the same directory must re-index every
// intact entry, quarantine torn ones, delete orphaned temps — and above
// all never serve wrong bytes.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// populateDisk fills a fresh disk backend with n entries and returns the
// key→value map. The backend is NOT closed (Close deletes the files) —
// dropping it models a crash.
func populateDisk(t *testing.T, dir string, n int) map[Key][]byte {
	t.Helper()
	d, err := NewDiskBackend(dir, 1<<20, obs.NewRegistry(), "disk", fault.NewRegistry(0))
	if err != nil {
		t.Fatal(err)
	}
	vals := map[Key][]byte{}
	for i := 0; i < n; i++ {
		val := []byte(fmt.Sprintf("crash-survivor value %d", i))
		key := sha256.Sum256(val)
		d.Put(key, val)
		vals[key] = val
	}
	return vals
}

// TestScrubRecoversIntactEntries: SIGKILL-style abandonment, then reopen:
// every durably written entry is indexed and serves its exact bytes.
func TestScrubRecoversIntactEntries(t *testing.T) {
	dir := t.TempDir()
	vals := populateDisk(t, dir, 5)

	reg := obs.NewRegistry()
	d, err := NewDiskBackend(dir, 1<<20, reg, "disk", fault.NewRegistry(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	entries, _ := d.Stats()
	if entries != len(vals) {
		t.Fatalf("recovered %d entries, want %d", entries, len(vals))
	}
	if got := reg.Counter("disk.scrub.recovered").Value(); got != uint64(len(vals)) {
		t.Fatalf("scrub.recovered = %d, want %d", got, len(vals))
	}
	for key, want := range vals {
		got, ok := d.Get(key)
		if !ok {
			t.Fatalf("recovered entry %x missing", key[:4])
		}
		if string(got) != string(want) {
			t.Fatalf("recovered entry %x: wrong bytes", key[:4])
		}
	}
}

// TestScrubQuarantinesTornEntries: a truncated entry (torn write, bad
// sector) is detected at reopen, moved to quarantine/, and reads as a
// clean miss — never wrong bytes.
func TestScrubQuarantinesTornEntries(t *testing.T) {
	dir := t.TempDir()
	vals := populateDisk(t, dir, 4)

	// Tear one entry mid-value and truncate another inside the checksum
	// header (shorter than a checksum at all).
	var torn []Key
	i := 0
	for key := range vals {
		path := filepath.Join(dir, hex.EncodeToString(key[:])+".zc")
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 0:
			if err := os.Truncate(path, info.Size()-5); err != nil {
				t.Fatal(err)
			}
			torn = append(torn, key)
		case 1:
			if err := os.Truncate(path, sha256.Size/2); err != nil {
				t.Fatal(err)
			}
			torn = append(torn, key)
		}
		i++
		if i == 2 {
			break
		}
	}
	// Plus an orphaned temp file from a crash mid-Put.
	if err := os.WriteFile(filepath.Join(dir, "put-orphan123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	d, err := NewDiskBackend(dir, 1<<20, reg, "disk", fault.NewRegistry(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if got := reg.Counter("disk.scrub.quarantined").Value(); got != 2 {
		t.Fatalf("scrub.quarantined = %d, want 2", got)
	}
	if got := reg.Counter("disk.scrub.temps_removed").Value(); got != 1 {
		t.Fatalf("scrub.temps_removed = %d, want 1", got)
	}
	for _, key := range torn {
		if val, ok := d.Get(key); ok {
			t.Fatalf("torn entry %x served %d bytes after scrub", key[:4], len(val))
		}
		// The damaged file must be out of the cache directory proper.
		if _, err := os.Stat(filepath.Join(dir, hex.EncodeToString(key[:])+".zc")); !os.IsNotExist(err) {
			t.Fatalf("torn entry %x still under a valid name (err=%v)", key[:4], err)
		}
		qpath := filepath.Join(dir, QuarantineDir, hex.EncodeToString(key[:])+".zc")
		if _, err := os.Stat(qpath); err != nil {
			t.Fatalf("torn entry %x not quarantined: %v", key[:4], err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "put-orphan123")); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived the scrub")
	}
	// Intact entries still serve.
	intact := 0
	for key, want := range vals {
		skip := false
		for _, tk := range torn {
			if tk == key {
				skip = true
			}
		}
		if skip {
			continue
		}
		got, ok := d.Get(key)
		if !ok || string(got) != string(want) {
			t.Fatalf("intact entry %x lost in scrub (ok=%v)", key[:4], ok)
		}
		intact++
	}
	if intact != len(vals)-2 {
		t.Fatalf("served %d intact entries, want %d", intact, len(vals)-2)
	}
}

// TestScrubDirReport: the standalone report (the `zipserverd -cache-scrub`
// surface) is deterministic — entries sorted by filename — and idempotent.
func TestScrubDirReport(t *testing.T) {
	dir := t.TempDir()
	vals := populateDisk(t, dir, 3)
	// One file with a non-key name is left alone.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := ScrubDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != len(vals) || len(rep.Entries) != len(vals) {
		t.Fatalf("recovered %d (entries %d), want %d", rep.Recovered, len(rep.Entries), len(vals))
	}
	for i := 1; i < len(rep.Entries); i++ {
		if hex.EncodeToString(rep.Entries[i-1].Key[:]) >= hex.EncodeToString(rep.Entries[i].Key[:]) {
			t.Fatal("scrub report entries not sorted by key")
		}
	}
	var wantBytes int64
	for _, v := range vals {
		wantBytes += int64(len(v))
	}
	if rep.RecoveredBytes != wantBytes {
		t.Fatalf("RecoveredBytes = %d, want %d", rep.RecoveredBytes, wantBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("scrub removed an unrelated file")
	}

	// Idempotent: a second pass finds the same inventory, nothing new to
	// clean.
	rep2, err := ScrubDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Recovered != rep.Recovered || len(rep2.Quarantined) != 0 || rep2.TempsRemoved != 0 {
		t.Fatalf("second scrub not idempotent: %+v", rep2)
	}
}

// TestScrubBudgetEviction: recovery respects the byte budget — an
// over-budget directory is trimmed deterministically at reopen.
func TestScrubBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	populateDisk(t, dir, 6) // ~25 bytes each

	d, err := NewDiskBackend(dir, 80, obs.NewRegistry(), "disk", fault.NewRegistry(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	entries, bytes := d.Stats()
	if bytes > 80 {
		t.Fatalf("recovered %d bytes over the 80-byte budget", bytes)
	}
	if entries == 0 {
		t.Fatal("budget eviction removed everything")
	}
}
