package server

import (
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// ShardedBackend partitions the key space across N independent LRU shards
// by key prefix (the first byte of the SHA-256 content address, uniformly
// distributed by construction), so concurrent Get/Put traffic contends on
// per-shard locks instead of one global mutex — the in-memory scaling
// step between the single LRU and the multi-process tiers. All shards
// hang their counters off the same prefix, so the registry sees one
// aggregate hits/misses/evictions series; the per-shard split is a lock
// architecture, not an observability boundary.
//
// The byte budget divides evenly across shards. Eviction is therefore
// per-shard LRU, which can evict earlier than a global LRU would when the
// key distribution is skewed within a shard — the documented (and
// conformance-tested) semantic difference is bounded: the total budget is
// never exceeded, and a shard never evicts while it has spare budget.
type ShardedBackend struct {
	shards []*LRUBackend
}

// NewShardedBackend creates an nShards-way sharded cache with maxBytes
// total budget, counters under prefix. nShards < 1 is clamped to 1;
// maxBytes <= 0 (or a per-shard budget of zero) returns nil.
func NewShardedBackend(maxBytes int64, nShards int, reg *obs.Registry, prefix string) *ShardedBackend {
	if nShards < 1 {
		nShards = 1
	}
	per := maxBytes / int64(nShards)
	if per <= 0 {
		return nil
	}
	s := &ShardedBackend{shards: make([]*LRUBackend, nShards)}
	for i := range s.shards {
		s.shards[i] = NewLRUBackend(per, reg, prefix)
	}
	return s
}

func (s *ShardedBackend) shard(key Key) *LRUBackend {
	return s.shards[int(key[0])%len(s.shards)]
}

// Name implements CacheBackend.
func (s *ShardedBackend) Name() string { return "sharded" }

// Get implements CacheBackend.
func (s *ShardedBackend) Get(key Key) ([]byte, bool) { return s.shard(key).Get(key) }

// Put implements CacheBackend.
func (s *ShardedBackend) Put(key Key, val []byte) { s.shard(key).Put(key, val) }

// CorruptStored implements CacheBackend.
func (s *ShardedBackend) CorruptStored(key Key, in fault.Injection) {
	s.shard(key).CorruptStored(key, in)
}

// Stats implements CacheBackend: occupancy summed across shards.
func (s *ShardedBackend) Stats() (entries int, bytes int64) {
	for _, sh := range s.shards {
		e, b := sh.Stats()
		entries += e
		bytes += b
	}
	return entries, bytes
}

// Keys implements CacheBackend: shard order, then each shard's MRU→LRU
// order — deterministic for a fixed operation history.
func (s *ShardedBackend) Keys() []Key {
	var keys []Key
	for _, sh := range s.shards {
		keys = append(keys, sh.Keys()...)
	}
	return keys
}

// Close implements CacheBackend.
func (s *ShardedBackend) Close() error { return nil }
