package server

// Crash recovery for the disk tier (DESIGN.md §13). Entries are written
// atomically (temp file + rename), so a crash can leave only two kinds of
// debris in a cache directory: orphaned "put-*" temp files (crash before
// rename) and — if the filesystem or an external writer tore an entry —
// a *.zc file whose sum||value layout no longer verifies. A scrub walks
// the directory once, deletes temps, quarantines anything that fails the
// SHA-256 check into a "quarantine/" subdirectory (kept, not deleted, so
// a torn entry stays inspectable), and reports every intact entry in
// sorted-by-filename order — a deterministic inventory that doubles as
// the warm-start index for NewDiskBackend and the `zipserverd
// -cache-scrub` report.

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
)

// QuarantineDir is the subdirectory of a disk-cache directory that scrub
// moves damaged entry files into.
const QuarantineDir = "quarantine"

// ScrubEntry is one intact cache entry found by ScrubDir.
type ScrubEntry struct {
	Key   Key
	Bytes int64 // value bytes (file size minus the 32-byte checksum header)
}

// ScrubReport summarizes one scrub pass over a disk-cache directory.
type ScrubReport struct {
	Dir            string
	Recovered      int   // intact entries (also listed in Entries)
	RecoveredBytes int64 // sum of Entries[i].Bytes
	TempsRemoved   int   // orphaned put-* temp files deleted
	Quarantined    []string
	Entries        []ScrubEntry // sorted by filename (= hex key)
}

// ScrubDir verifies every entry file under dir: the filename must be a
// 64-hex key + ".zc" and the contents must be a 32-byte SHA-256 followed
// by a value that hashes to it. Damaged files move to dir/quarantine/,
// leftover put-* temps are removed, and intact entries are reported in
// sorted filename order. Safe to run on an empty or fresh directory.
func ScrubDir(dir string) (*ScrubReport, error) {
	rep := &ScrubReport{Dir: dir}
	ents, err := os.ReadDir(dir) // sorted by filename
	if err != nil {
		return nil, err
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "put-") {
			if os.Remove(filepath.Join(dir, name)) == nil {
				rep.TempsRemoved++
			}
			continue
		}
		if !strings.HasSuffix(name, ".zc") {
			continue
		}
		key, n, ok := verifyEntryFile(dir, name)
		if !ok {
			quarantineFile(dir, name)
			rep.Quarantined = append(rep.Quarantined, name)
			continue
		}
		rep.Recovered++
		rep.RecoveredBytes += n
		rep.Entries = append(rep.Entries, ScrubEntry{Key: key, Bytes: n})
	}
	return rep, nil
}

// verifyEntryFile checks one *.zc file's name and sum||value layout,
// returning the decoded key and value length when intact.
func verifyEntryFile(dir, name string) (key Key, valBytes int64, ok bool) {
	hexKey := strings.TrimSuffix(name, ".zc")
	raw, err := hex.DecodeString(hexKey)
	if err != nil || len(raw) != sha256.Size {
		return key, 0, false
	}
	copy(key[:], raw)
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil || len(data) < sha256.Size {
		return key, 0, false
	}
	var sum [sha256.Size]byte
	copy(sum[:], data[:sha256.Size])
	if sha256.Sum256(data[sha256.Size:]) != sum {
		return key, 0, false
	}
	return key, int64(len(data) - sha256.Size), true
}

// quarantineFile moves one damaged file into dir/quarantine/, falling
// back to deletion if the move fails — a bad entry must never stay under
// a valid name either way.
func quarantineFile(dir, name string) {
	qdir := filepath.Join(dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(filepath.Join(dir, name), filepath.Join(qdir, name)) == nil {
			return
		}
	}
	os.Remove(filepath.Join(dir, name))
}
