package server

// This file defines the pluggable cache-backend contract (DESIGN.md §10).
// The server composes backends into a hot/cold hierarchy; every
// implementation — in-memory LRU, sharded LRU, disk, remote peer, tiered
// composite — obeys the same observable semantics, pinned by the
// internal/server/cachetest conformance suite:
//
//   - content-addressed Get/Put under a byte budget with LRU-order
//     eviction and hit/miss/eviction counters,
//   - per-entry SHA-256 integrity: a corrupted stored value is detected
//     on Get, counted, dropped, and reported as a miss — a backend can
//     degrade to a miss but never to wrong bytes,
//   - deterministic Keys() iteration (most- to least-recently used), so
//     snapshots and tests see a reproducible view,
//   - safety under concurrent use (the conformance suite runs every
//     backend under -race).
//
// Backends register their fault points (server.cache.disk.*,
// server.cache.peer.*) with the same internal/fault registry the rest of
// the server uses; with faults disarmed a backend's byte behavior is
// identical to a fault-free build.

import (
	"crypto/sha256"

	"github.com/zipchannel/zipchannel/internal/fault"
)

// Key is a content address: SHA-256 over (op, codec, level, body) — see
// cacheKey.
type Key = [sha256.Size]byte

// CacheBackend is the storage contract behind the server's response
// cache. Implementations must be safe for concurrent use. The server
// treats a nil CacheBackend as "caching disabled"; implementations do not
// need to support nil receivers through the interface.
type CacheBackend interface {
	// Name identifies the backend ("lru", "sharded", "disk", "peer",
	// "tiered") for /healthz and logs.
	Name() string
	// Get returns the value stored under key and whether it was present
	// and intact. The returned slice is shared; callers must not mutate
	// it. A value failing its integrity check is dropped and reported as
	// a miss.
	Get(key Key) ([]byte, bool)
	// Put stores val under key, evicting least-recently-used entries to
	// hold the byte budget. Values larger than the whole budget are not
	// stored. Re-putting an existing key refreshes recency and heals the
	// stored bytes.
	Put(key Key, val []byte)
	// Stats reports current occupancy (entries, stored value bytes).
	Stats() (entries int, bytes int64)
	// Keys returns the stored keys in deterministic most- to least-
	// recently-used order (the snapshot/debug view).
	Keys() []Key
	// CorruptStored simulates a storage bit-flip on key's entry (chaos
	// runs only): the stored value is damaged while the recorded
	// integrity checksum keeps the original digest, so the next Get must
	// detect it. No-op when key is absent.
	CorruptStored(key Key, in fault.Injection)
	// Close releases backend resources (files, idle connections).
	// Backends remain usable as always-miss stores after Close.
	Close() error
}

// PeerHealth is the optional interface a backend (or a composite
// containing one) implements when it fronts a remote peer: PeerState
// reports the peer probation breaker's state ("closed", "open",
// "trial") and whether a peer tier exists at all. /healthz surfaces it
// so a fleet dashboard — and the chaos-cluster harness — can watch a
// dead peer's breaker open and recover without scraping metrics.
type PeerHealth interface {
	PeerState() (state string, ok bool)
}

