package server

// The pagestore surface: PUT/GET /v1/pages/{id} mounts an
// internal/pagestore.Store behind the same middleware stack as the
// codec endpoints — worker gate, request deadline, tracing, SLO
// accounting, and the access log (codec "pages", op "put"/"get").
//
// The response deliberately leaks the page's store cost in the
// X-Page-Steps header: a remote attacker co-located with a secret in
// one page (pagestore.Store.Plant) needs nothing more than this number
// to run the compression-time oracle (internal/zipchannel, cmd/zippages).
// In a real deployment the same quantity leaks through wall-clock
// response time; surfacing it explicitly keeps the reproduction
// deterministic.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/pagestore"
)

// Page response headers: the oracle-visible cost plus the compression
// envelope of the stored page.
const (
	PageStepsHeader   = "X-Page-Steps"
	PageCodecHeader   = "X-Page-Codec"
	PageCompLenHeader = "X-Page-Compressed-Len"
	PageRatioHeader   = "X-Page-Ratio"
)

// declarePageMetrics mirrors declareMetrics for the pages surface, so a
// pagestore-enabled server exposes its request/SLO series at zero from
// the first scrape.
func (s *Server) declarePageMetrics() {
	for _, op := range []string{"put", "get"} {
		s.reg.DeclareCounters(
			"server.codec.pages."+op,
			"server.slo.pages."+op+".good",
			"server.slo.pages."+op+".breach",
		)
		s.reg.DeclareGauges("server.slo.pages." + op + ".burn_rate")
	}
}

// setPageHeaders stamps the page envelope on a response.
func setPageHeaders(hdr http.Header, info pagestore.PageInfo) {
	hdr.Set(PageStepsHeader, strconv.FormatInt(info.Steps, 10))
	hdr.Set(PageCodecHeader, info.Codec)
	hdr.Set(PageCompLenHeader, strconv.Itoa(info.CompressedLen))
	hdr.Set(PageRatioHeader, strconv.FormatFloat(info.Ratio, 'f', 4, 64))
}

// pageError maps a pagestore error onto the HTTP surface, counting it
// under the req registry like the codec error paths.
func (s *Server) pageError(w http.ResponseWriter, req *obs.Registry, err error) {
	switch {
	case errors.Is(err, pagestore.ErrNotFound):
		req.Counter("server.errors.page_not_found").Inc()
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, pagestore.ErrTooLarge), errors.Is(err, pagestore.ErrBadPlant):
		req.Counter("server.errors.page_too_large").Inc()
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
	case errors.Is(err, pagestore.ErrCorrupt):
		// Detected corruption is a 500: the stored copy may be intact (a
		// transient read-path fault), so clients retry — the zipload
		// recovery path depends on exactly this mapping.
		req.Counter("server.errors.page_corrupt").Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
	case errors.Is(err, fault.ErrInjected):
		req.Counter("server.errors.transient").Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		req.Counter("server.errors.deadline").Inc()
		http.Error(w, "request deadline exceeded", http.StatusGatewayTimeout)
	default:
		req.Counter("server.errors.page").Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// runPageOp executes one store operation inside a worker slot — page
// compression is codec work, so it shares the same bounded gate as the
// /v1/{codec} endpoints — containing panics (injected pagestore faults
// included) as errors.
func (s *Server) runPageOp(ctx context.Context, req *obs.Registry, op string, fn func() error) error {
	var opErr error
	_, gsp := s.tracer.StartSpan(ctx, "server.gate.wait")
	wait, gateErr := s.gate.DoCtxWait(ctx, func() {
		gsp.End()
		_, psp := s.tracer.StartSpan(ctx, "server.pages.run")
		psp.SetAttr("op", op)
		defer psp.End()
		defer func() {
			if v := recover(); v != nil {
				req.Counter("server.errors.codec_panic").Inc()
				opErr = fmt.Errorf("%w: pagestore panic: %v", fault.ErrInjected, v)
			}
		}()
		opErr = fn()
	})
	gsp.End()
	if ri := reqInfoFrom(ctx); ri != nil {
		ri.gateWait += wait
	}
	if gateErr != nil {
		return gateErr
	}
	return opErr
}

// handlePagePut serves PUT /v1/pages/{id}: store the request body into
// the page (only the attacker-owned region of a planted page is
// writable) and report the store's compression envelope — including the
// oracle-visible step cost.
func (s *Server) handlePagePut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ri := reqInfoFrom(r.Context())
	if ri == nil {
		ri = &reqInfo{}
	}
	ri.codec, ri.op = "pages", "put"
	req := obs.NewRegistry()
	defer s.reg.Merge(req)
	req.Counter("server.requests").Inc()
	req.Counter("server.codec.pages.put").Inc()

	body, ok := s.readBody(w, r, req)
	if !ok {
		return
	}
	req.Counter("server.bytes_in").Add(uint64(len(body)))
	ri.bytesIn = len(body)

	var info pagestore.PageInfo
	err := s.runPageOp(r.Context(), req, "put", func() (err error) {
		info, err = s.pages.Write(id, body)
		return err
	})
	if err != nil {
		s.pageError(w, req, err)
		return
	}

	hdr := w.Header()
	hdr.Set("Content-Type", "application/json")
	setPageHeaders(hdr, info)
	b, merr := json.Marshal(info)
	if merr != nil {
		http.Error(w, merr.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	hdr.Set("Content-Length", fmt.Sprint(len(b)))
	if _, err := w.Write(b); err != nil {
		req.Counter("server.errors.write_response").Inc()
		return
	}
	req.Counter("server.bytes_out").Add(uint64(len(b)))
}

// handlePageGet serves GET /v1/pages/{id}: decompress, verify, and
// return the caller-visible bytes (the attacker region for a planted
// page — the co-located secret never crosses the HTTP surface either).
func (s *Server) handlePageGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ri := reqInfoFrom(r.Context())
	if ri == nil {
		ri = &reqInfo{}
	}
	ri.codec, ri.op = "pages", "get"
	req := obs.NewRegistry()
	defer s.reg.Merge(req)
	req.Counter("server.requests").Inc()
	req.Counter("server.codec.pages.get").Inc()

	var (
		data []byte
		info pagestore.PageInfo
	)
	err := s.runPageOp(r.Context(), req, "get", func() (err error) {
		data, info, err = s.pages.Read(id)
		return err
	})
	if err != nil {
		s.pageError(w, req, err)
		return
	}

	hdr := w.Header()
	hdr.Set("Content-Type", "application/octet-stream")
	setPageHeaders(hdr, info)
	hdr.Set("Content-Length", fmt.Sprint(len(data)))
	if _, err := w.Write(data); err != nil {
		req.Counter("server.errors.write_response").Inc()
		return
	}
	req.Counter("server.bytes_out").Add(uint64(len(data)))
}
