package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// FaultPeerGet fires on PeerBackend.Get: error injections skip the
// network call entirely (peer down), latency injections delay it (slow
// peer; combined with a short client timeout this is the peer-timeout
// chaos scenario). Either degradation is a miss, never a failure.
const FaultPeerGet = "server.cache.peer.get"

// DefaultPeerTimeout bounds every peer cache exchange: a cold-tier
// lookup that is slower than recomputing the response is worse than a
// miss.
const DefaultPeerTimeout = 2 * time.Second

// Peer probation defaults (DESIGN.md §13). Without probation a dead peer
// costs one connection failure — worst case a full DefaultPeerTimeout —
// on *every* cold-tier lookup; with it, consecutive transport failures
// open a breaker and the dead peer costs one atomic check until a probe
// succeeds.
const (
	// DefaultPeerFailureThreshold is how many consecutive transport
	// failures put the peer on probation (open).
	DefaultPeerFailureThreshold = 3
	// DefaultPeerProbeAfter is how many peer operations are skipped
	// while on probation before one probe request is let through.
	DefaultPeerProbeAfter = 16
)

// PeerBackend fronts another zipserverd instance's cache over HTTP (the
// /internal/cache surface served by every Server), making a fleet
// member's cache a cold tier of this one — the cross-instance sharing
// that turns N processes into one logical cache, and (deliberately,
// for this repo's research goal) extends the shared-compression-state
// attack surface across tenants on different machines: a content-
// addressed hit is observable fleet-wide.
//
// Every value read from a peer is integrity-checked against the
// X-Content-SHA256 trailer the peer computed at store time; a mismatch
// (peer corruption, transport damage) is a detected corruption + miss.
// Network failures and timeouts degrade to misses and a counter.
// A dead peer is handled with failure-count probation: the same
// deterministic count-based breaker that guards the codecs. After
// DefaultPeerFailureThreshold consecutive transport failures the breaker
// opens and every peer operation (Get, Put, Stats, Keys) short-circuits
// to a local miss/no-op — ~zero cost instead of a timeout per lookup —
// until DefaultPeerProbeAfter skipped operations admit one probe; a
// successful probe closes the breaker. Checksum mismatches and 404s do
// NOT count against probation (the peer answered; the entry is just bad
// or absent).
type PeerBackend struct {
	base   string
	client *http.Client

	hits    *obs.Counter
	misses  *obs.Counter
	errors  *obs.Counter
	opens   *obs.Counter // probation trips
	skipped *obs.Counter // operations short-circuited while open
	stateG  *obs.Gauge   // 0 closed, 1 open, 2 trial
	reg     *obs.Registry
	prefix  string
	fpGet   *fault.Point
	timeout time.Duration
	bk      *breaker
}

// NewPeerBackend creates a backend fronting the zipserverd instance at
// baseURL (scheme://host:port, no trailing slash needed). timeout <= 0
// means DefaultPeerTimeout.
func NewPeerBackend(baseURL string, timeout time.Duration, reg *obs.Registry, prefix string, faults *fault.Registry) *PeerBackend {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &PeerBackend{
		base:    baseURL,
		client:  &http.Client{Timeout: timeout},
		hits:    reg.Counter(prefix + ".hits"),
		misses:  reg.Counter(prefix + ".misses"),
		errors:  reg.Counter(prefix + ".errors"),
		opens:   reg.Counter(prefix + ".probation.opens"),
		skipped: reg.Counter(prefix + ".probation.skipped"),
		stateG:  reg.Gauge(prefix + ".probation.state"),
		reg:     reg,
		prefix:  prefix,
		fpGet:   faults.Point(FaultPeerGet),
		timeout: timeout,
		bk:      newBreaker(DefaultPeerFailureThreshold, DefaultPeerProbeAfter),
	}
}

// admit consults the probation breaker before a network exchange. A
// false return means the peer is on probation and the caller must
// degrade locally (miss / skipped store) without touching the network.
func (p *PeerBackend) admit() bool {
	if p.bk.allow() {
		return true
	}
	p.skipped.Inc()
	p.syncState()
	return false
}

// recordFailure counts one transport failure, incrementing the
// probation-open counter when this failure trips the breaker.
func (p *PeerBackend) recordFailure() {
	if p.bk.record(false) {
		p.opens.Inc()
	}
	p.syncState()
}

// recordSuccess marks the peer reachable (closing a trial breaker).
func (p *PeerBackend) recordSuccess() {
	p.bk.record(true)
	p.syncState()
}

func (p *PeerBackend) syncState() {
	p.stateG.Set(float64(p.bk.stateCode()))
}

// PeerState implements PeerHealth.
func (p *PeerBackend) PeerState() (string, bool) {
	if p == nil {
		return "", false
	}
	return p.bk.stateName(), true
}

func (p *PeerBackend) url(key Key) string {
	return p.base + "/internal/cache/" + hex.EncodeToString(key[:])
}

// Name implements CacheBackend.
func (p *PeerBackend) Name() string { return "peer" }

// Get implements CacheBackend: one GET against the peer's cache surface.
// Anything short of a verified 200 — connection refused, timeout, 404,
// checksum mismatch, injected fault, probation — is a miss.
func (p *PeerBackend) Get(key Key) ([]byte, bool) {
	if p == nil {
		return nil, false
	}
	switch in := p.fpGet.Hit(); in.Kind {
	case fault.KindError:
		// Injected "peer down": feed probation exactly like a real
		// transport failure, so chaos runs rehearse the breaker.
		p.errors.Inc()
		p.misses.Inc()
		p.recordFailure()
		return nil, false
	case fault.KindLatency:
		time.Sleep(time.Duration(in.Param) * time.Microsecond)
	}
	if !p.admit() {
		p.misses.Inc()
		return nil, false
	}
	resp, err := p.client.Get(p.url(key))
	if err != nil {
		p.errors.Inc()
		p.misses.Inc()
		p.recordFailure()
		return nil, false
	}
	defer resp.Body.Close()
	p.recordSuccess()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			p.errors.Inc()
		}
		p.misses.Inc()
		return nil, false
	}
	val, err := io.ReadAll(resp.Body)
	if err != nil {
		p.errors.Inc()
		p.misses.Inc()
		return nil, false
	}
	sum := sha256.Sum256(val)
	if hex.EncodeToString(sum[:]) != resp.Header.Get("X-Content-SHA256") {
		p.reg.Counter(p.prefix + ".corruptions_detected").Inc()
		p.misses.Inc()
		return nil, false
	}
	p.hits.Inc()
	return val, true
}

// Put implements CacheBackend: one PUT against the peer. Store failures
// degrade to "uncached on the peer" plus a counter; a peer on probation
// is skipped without touching the network.
func (p *PeerBackend) Put(key Key, val []byte) {
	if p == nil {
		return
	}
	if !p.admit() {
		return
	}
	req, err := http.NewRequest(http.MethodPut, p.url(key), bytes.NewReader(val))
	if err != nil {
		p.errors.Inc()
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		p.errors.Inc()
		p.recordFailure()
		return
	}
	p.recordSuccess()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		p.errors.Inc()
	}
}

// CorruptStored implements CacheBackend by asking the peer to damage its
// stored entry (the peer's chaos surface; enabled there only when the
// peer runs with a fault registry). Chaos-only, like every
// CorruptStored.
func (p *PeerBackend) CorruptStored(key Key, in fault.Injection) {
	if p == nil || in.Kind != fault.KindCorrupt {
		return
	}
	req, err := http.NewRequest(http.MethodPost,
		p.url(key)+"/corrupt?rand="+fmt.Sprint(in.Rand), nil)
	if err != nil {
		return
	}
	if resp, err := p.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// peerIndex is the GET /internal/cache listing: occupancy plus keys in
// the peer's deterministic MRU→LRU order.
type peerIndex struct {
	Backend string   `json:"backend"`
	Entries int      `json:"entries"`
	Bytes   int64    `json:"bytes"`
	Keys    []string `json:"keys"`
}

func (p *PeerBackend) index() (peerIndex, bool) {
	var idx peerIndex
	if !p.admit() {
		return idx, false
	}
	resp, err := p.client.Get(p.base + "/internal/cache")
	if err != nil {
		p.errors.Inc()
		p.recordFailure()
		return idx, false
	}
	defer resp.Body.Close()
	p.recordSuccess()
	if resp.StatusCode != http.StatusOK {
		p.errors.Inc()
		return idx, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		p.errors.Inc()
		return idx, false
	}
	return idx, true
}

// Stats implements CacheBackend (zeros when the peer is unreachable).
func (p *PeerBackend) Stats() (entries int, bytes int64) {
	if p == nil {
		return 0, 0
	}
	idx, ok := p.index()
	if !ok {
		return 0, 0
	}
	return idx.Entries, idx.Bytes
}

// Keys implements CacheBackend: the peer's own deterministic order (nil
// when unreachable).
func (p *PeerBackend) Keys() []Key {
	if p == nil {
		return nil
	}
	idx, ok := p.index()
	if !ok {
		return nil
	}
	keys := make([]Key, 0, len(idx.Keys))
	for _, s := range idx.Keys {
		raw, err := hex.DecodeString(s)
		if err != nil || len(raw) != sha256.Size {
			continue
		}
		var k Key
		copy(k[:], raw)
		keys = append(keys, k)
	}
	return keys
}

// Close implements CacheBackend.
func (p *PeerBackend) Close() error {
	if p != nil {
		p.client.CloseIdleConnections()
	}
	return nil
}
