package server

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// cacheKey addresses a response by content: SHA-256 over (op, codec, body)
// with NUL separators so ("compress","lz77x") and ("compressx","lz77") can
// never collide. Identical bodies through the same codec+op always map to
// the same entry regardless of which client sent them — the
// content-addressed sharing that makes the cache a realistic stage for
// cross-request compression side channels (see PAPERS.md: Schwarzl et al.,
// Debreach).
func cacheKey(op, codecName string, body []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(codecName))
	h.Write([]byte{0})
	h.Write(body)
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// lruCache is a byte-budgeted LRU of codec responses, modeled on the
// MemoryCache of the httpcache reference repo but with strict size
// accounting, obs counters, and end-to-end integrity: every entry stores a
// SHA-256 of its value, verified on each hit, so a corrupted stored
// response (a flipped bit in "storage", injected via internal/fault in
// chaos runs) is detected and re-fetched instead of served — a cache can
// degrade to a miss but never to wrong bytes. A nil *lruCache is a valid
// always-miss cache, so the server can run with caching disabled without
// conditionals.
type lruCache struct {
	mu    sync.Mutex
	max   int64      // byte budget for stored values
	size  int64      // current stored bytes
	order *list.List // front = most recently used
	items map[[sha256.Size]byte]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bytes     *obs.Gauge
	entries   *obs.Gauge
	// reg backs the lazily-registered corruption counter, so a run that
	// never sees corruption keeps its metrics snapshot byte-identical to
	// a pre-integrity build.
	reg *obs.Registry
}

type cacheEntry struct {
	key [sha256.Size]byte
	val []byte
	sum [sha256.Size]byte // integrity checksum of val, fixed at put time
}

// newLRUCache creates a cache holding at most maxBytes of values, hanging
// its counters off reg. maxBytes <= 0 returns nil (caching disabled).
func newLRUCache(maxBytes int64, reg *obs.Registry) *lruCache {
	if maxBytes <= 0 {
		return nil
	}
	return &lruCache{
		max:       maxBytes,
		order:     list.New(),
		items:     map[[sha256.Size]byte]*list.Element{},
		hits:      reg.Counter("server.cache.hits"),
		misses:    reg.Counter("server.cache.misses"),
		evictions: reg.Counter("server.cache.evictions"),
		bytes:     reg.Gauge("server.cache.bytes"),
		entries:   reg.Gauge("server.cache.entries"),
		reg:       reg,
	}
}

// get returns the cached value and marks the entry most recently used. A
// stored value that fails its integrity check is dropped and counted as a
// corruption plus a miss — the caller recomputes and re-puts. The returned
// slice is shared; callers must not mutate it.
func (c *lruCache) get(key [sha256.Size]byte) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if sha256.Sum256(ent.val) != ent.sum {
		c.removeLocked(el, ent)
		c.reg.Counter("server.cache.corruptions_detected").Inc()
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return ent.val, true
}

// corruptStored simulates a storage bit-flip on the entry under key (the
// server.cache.get KindCorrupt fault): the stored value is replaced with a
// corrupted copy while its checksum keeps the original digest, so the next
// get detects the damage. In-flight responses holding the old slice are
// unaffected (the flip lands in storage, not in buffers already handed
// out). No-op when the key is absent.
func (c *lruCache) corruptStored(key [sha256.Size]byte, in fault.Injection) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return
	}
	ent := el.Value.(*cacheEntry)
	ent.val = in.CorruptCopy(ent.val)
}

// put inserts val under key, evicting least-recently-used entries until the
// byte budget holds. Values larger than the whole budget are not cached.
// Re-putting an existing key refreshes its recency and heals its stored
// bytes (the value is correct by construction: the key hashes the full
// input, and a corrupted entry was just recomputed by the caller).
func (c *lruCache) put(key [sha256.Size]byte, val []byte) {
	if c == nil || int64(len(val)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val, sum: sha256.Sum256(val)})
	c.size += int64(len(val))
	for c.size > c.max {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.removeLocked(back, ent)
		c.evictions.Inc()
	}
	c.bytes.Set(float64(c.size))
	c.entries.Set(float64(len(c.items)))
}

// stats reports the current entry count and stored bytes (0, 0 for a
// nil/disabled cache) — the health endpoint's view of the cache.
func (c *lruCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.size
}

// removeLocked unlinks one entry and updates the size accounting and
// gauges. Callers hold c.mu.
func (c *lruCache) removeLocked(el *list.Element, ent *cacheEntry) {
	c.order.Remove(el)
	delete(c.items, ent.key)
	c.size -= int64(len(ent.val))
	c.bytes.Set(float64(c.size))
	c.entries.Set(float64(len(c.items)))
}
