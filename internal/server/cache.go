package server

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// cacheKey addresses a response by content: SHA-256 over (op, codec,
// level, body) with NUL separators so ("compress","lz77x") and
// ("compressx","lz77") can never collide. Identical bodies through the
// same codec+op+level always map to the same entry regardless of which
// client sent them — the content-addressed sharing that makes the cache a
// realistic stage for cross-request compression side channels (see
// PAPERS.md: Schwarzl et al., Debreach). The level dimension backs the
// Vary: X-Zip-Level HTTP semantics: a level-partitioned entry can never
// be served for a different level.
func cacheKey(op, codecName, level string, body []byte) Key {
	h := sha256.New()
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(codecName))
	h.Write([]byte{0})
	h.Write([]byte(level))
	h.Write([]byte{0})
	h.Write(body)
	var k Key
	h.Sum(k[:0])
	return k
}

// LRUBackend is a byte-budgeted in-memory LRU of codec responses, modeled
// on the MemoryCache of the httpcache reference repo but with strict size
// accounting, obs counters, and end-to-end integrity: every entry stores a
// SHA-256 of its value, verified on each hit, so a corrupted stored
// response (a flipped bit in "storage", injected via internal/fault in
// chaos runs) is detected and re-fetched instead of served — a cache can
// degrade to a miss but never to wrong bytes. It is the reference
// CacheBackend implementation and the hot tier of the default hierarchy.
type LRUBackend struct {
	mu    sync.Mutex
	max   int64      // byte budget for stored values
	size  int64      // current stored bytes
	order *list.List // front = most recently used
	items map[Key]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bytes     *obs.Gauge
	entries   *obs.Gauge
	// reg and prefix back the lazily-registered corruption counter, so a
	// run that never sees corruption keeps its metrics snapshot
	// byte-identical to a pre-integrity build.
	reg    *obs.Registry
	prefix string
}

type cacheEntry struct {
	key Key
	val []byte
	sum [sha256.Size]byte // integrity checksum of val, fixed at put time
}

// NewLRUBackend creates a cache holding at most maxBytes of values,
// hanging its counters off reg under prefix (e.g. "server.cache" →
// server.cache.hits; the single-backend default keeps the metric names
// every earlier build used). maxBytes <= 0 returns nil (caching
// disabled); note New wraps the nil in a nil CacheBackend interface, not
// a typed nil.
func NewLRUBackend(maxBytes int64, reg *obs.Registry, prefix string) *LRUBackend {
	if maxBytes <= 0 {
		return nil
	}
	return &LRUBackend{
		max:       maxBytes,
		order:     list.New(),
		items:     map[Key]*list.Element{},
		hits:      reg.Counter(prefix + ".hits"),
		misses:    reg.Counter(prefix + ".misses"),
		evictions: reg.Counter(prefix + ".evictions"),
		bytes:     reg.Gauge(prefix + ".bytes"),
		entries:   reg.Gauge(prefix + ".entries"),
		reg:       reg,
		prefix:    prefix,
	}
}

// Name implements CacheBackend.
func (c *LRUBackend) Name() string { return "lru" }

// Get returns the cached value and marks the entry most recently used. A
// stored value that fails its integrity check is dropped and counted as a
// corruption plus a miss — the caller recomputes and re-puts. The returned
// slice is shared; callers must not mutate it.
func (c *LRUBackend) Get(key Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if sha256.Sum256(ent.val) != ent.sum {
		c.removeLocked(el, ent)
		c.reg.Counter(c.prefix + ".corruptions_detected").Inc()
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return ent.val, true
}

// CorruptStored simulates a storage bit-flip on the entry under key (the
// server.cache.get KindCorrupt fault): the stored value is replaced with a
// corrupted copy while its checksum keeps the original digest, so the next
// Get detects the damage. In-flight responses holding the old slice are
// unaffected (the flip lands in storage, not in buffers already handed
// out). No-op when the key is absent.
func (c *LRUBackend) CorruptStored(key Key, in fault.Injection) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return
	}
	ent := el.Value.(*cacheEntry)
	ent.val = in.CorruptCopy(ent.val)
}

// Put inserts val under key, evicting least-recently-used entries until the
// byte budget holds. Values larger than the whole budget are not cached.
// Re-putting an existing key refreshes its recency and heals its stored
// bytes (the value is correct by construction: the key hashes the full
// input, and a corrupted entry was just recomputed by the caller).
func (c *LRUBackend) Put(key Key, val []byte) {
	if c == nil || int64(len(val)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.size += int64(len(val)) - int64(len(ent.val))
		ent.val, ent.sum = val, sha256.Sum256(val)
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val, sum: sha256.Sum256(val)})
		c.size += int64(len(val))
	}
	for c.size > c.max {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.removeLocked(back, ent)
		c.evictions.Inc()
	}
	c.bytes.Set(float64(c.size))
	c.entries.Set(float64(len(c.items)))
}

// Stats reports the current entry count and stored bytes (0, 0 for a
// nil/disabled cache) — the health endpoint's view of the cache.
func (c *LRUBackend) Stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.size
}

// Keys returns stored keys most- to least-recently used — the
// deterministic iteration order the conformance suite and snapshot
// tooling rely on.
func (c *LRUBackend) Keys() []Key {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]Key, 0, len(c.items))
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry).key)
	}
	return keys
}

// Close implements CacheBackend; an in-memory store has nothing to release.
func (c *LRUBackend) Close() error { return nil }

// removeLocked unlinks one entry and updates the size accounting and
// gauges. Callers hold c.mu.
func (c *LRUBackend) removeLocked(el *list.Element, ent *cacheEntry) {
	c.order.Remove(el)
	delete(c.items, ent.key)
	c.size -= int64(len(ent.val))
	c.bytes.Set(float64(c.size))
	c.entries.Set(float64(len(c.items)))
}
