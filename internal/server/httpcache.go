package server

// HTTP cache semantics for the /v1 endpoints (DESIGN.md §10). The
// content-addressed design makes real HTTP caching nearly free: the
// SHA-256 cache key of (op, codec, level, body) is a strong validator of
// the response by construction — identical inputs through a
// deterministic codec produce identical outputs — so it serves as the
// ETag, If-None-Match can be answered before running any codec, and
// intermediaries can cache under Cache-Control with Vary partitioning on
// the codec-level request header.

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// DefaultCacheMaxAge is the max-age (seconds) advertised on cacheable
// /v1 responses; content-addressed responses never go stale (the address
// pins the bytes), so this bounds client memory, not correctness.
const DefaultCacheMaxAge = 300

// LevelHeader is the request header selecting a compression level. The
// codecs currently implement a single level, but the header partitions
// the cache key space and the response Vary, so clients, peers, and
// intermediaries can never conflate responses across levels once
// leveled codecs land. Valid values: "" (default) or "0".."9".
const LevelHeader = "X-Zip-Level"

// etagFor renders the strong ETag for a content address: the full hex
// SHA-256, quoted per RFC 9110.
func etagFor(key Key) string {
	return `"` + hex.EncodeToString(key[:]) + `"`
}

// parseLevel validates the X-Zip-Level request header: empty (default
// level) or a single digit. Anything else is a 400 — a typo'd level
// silently mapping to the default would poison the Vary partition.
func parseLevel(s string) (string, error) {
	if s == "" {
		return "", nil
	}
	if len(s) == 1 && s[0] >= '0' && s[0] <= '9' {
		return s, nil
	}
	return "", fmt.Errorf("invalid %s %q (want empty or 0-9)", LevelHeader, s)
}

// cacheControl is the parsed request Cache-Control directives the server
// honors (RFC 9111 §5.2.1). Unknown directives are ignored, as the RFC
// requires.
type cacheControl struct {
	NoCache bool  // "no-cache": bypass the cache lookup, recompute, still store
	NoStore bool  // "no-store": bypass lookup and store entirely
	MaxAge  int64 // "max-age=N" seconds; -1 when absent
}

// parseCacheControl parses a Cache-Control header value: a comma-
// separated directive list, each directive a token optionally followed
// by =value where value may be a quoted string. Parsing is forgiving
// (bad directives are skipped) because a request header must never be
// able to 500 the server — the fuzz target holds it to that.
func parseCacheControl(s string) cacheControl {
	cc := cacheControl{MaxAge: -1}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, hasVal := strings.Cut(part, "=")
		name = strings.ToLower(strings.TrimSpace(name))
		val = strings.TrimSpace(val)
		if len(val) >= 2 && val[0] == '"' && val[len(val)-1] == '"' {
			val = val[1 : len(val)-1]
		}
		switch name {
		case "no-cache":
			cc.NoCache = true
		case "no-store":
			cc.NoStore = true
		case "max-age":
			if !hasVal {
				continue
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				continue
			}
			cc.MaxAge = n
		}
	}
	return cc
}

// parseIfNoneMatch parses an If-None-Match validator list (RFC 9110
// §8.8.3 / §13.1.2): `*`, or a comma-separated list of entity tags,
// each optionally weak (`W/"..."`). Returns the list of opaque tags
// (quotes stripped, weakness dropped — weak comparison is correct for
// If-None-Match) and whether the wildcard was present. Malformed
// members are skipped; the parser must be total over arbitrary input
// (fuzzed).
func parseIfNoneMatch(s string) (tags []string, wildcard bool) {
	rest := s
	for {
		rest = strings.TrimLeft(rest, " \t,")
		if rest == "" {
			return tags, wildcard
		}
		if rest[0] == '*' {
			wildcard = true
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "W/") || strings.HasPrefix(rest, "w/") {
			rest = rest[2:]
		}
		if rest == "" || rest[0] != '"' {
			// Not a valid entity-tag: skip to the next comma.
			if i := strings.IndexByte(rest, ','); i >= 0 {
				rest = rest[i+1:]
				continue
			}
			return tags, wildcard
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			// Unterminated tag: ignore the remainder.
			return tags, wildcard
		}
		tags = append(tags, rest[1:1+end])
		rest = rest[2+end:]
	}
}

// etagMatches reports whether the request's If-None-Match header matches
// the response's strong ETag (weak comparison: W/ prefixes were already
// dropped by the parser).
func etagMatches(header, etag string) bool {
	tags, wildcard := parseIfNoneMatch(header)
	if wildcard {
		return true
	}
	want := strings.Trim(etag, `"`)
	for _, tag := range tags {
		if tag == want {
			return true
		}
	}
	return false
}
