package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/par"
)

// TestConcurrentClients hammers a single server with ~32 concurrent clients
// mixing codecs, round trips, cache hits (shared bodies), and error paths,
// then checks the merged registry accounting. Run under -race this is the
// server's concurrency contract: per-request registries, the worker gate,
// and the LRU cache must all be safe together.
func TestConcurrentClients(t *testing.T) {
	const clients = 32
	const requestsPerClient = 8

	s := New(Config{Workers: 4, CacheBytes: 1 << 20, MaxBodyBytes: 1 << 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A small shared body pool guarantees cross-client cache hits.
	bodies := make([][]byte, 5)
	rng := rand.New(rand.NewSource(42))
	for i := range bodies {
		b := make([]byte, 2048)
		for j := range b {
			b[j] = byte('a' + rng.Intn(4))
		}
		bodies[i] = b
	}
	names := codec.Names()

	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(par.SplitSeed(7, fmt.Sprintf("client-%d", c))))
			for r := 0; r < requestsPerClient; r++ {
				name := names[rng.Intn(len(names))]
				body := bodies[rng.Intn(len(bodies))]
				comp, status, err := doPost(ts.URL+"/v1/"+name+"/compress", body)
				if err != nil {
					errs[c] = err
					return
				}
				if status != http.StatusOK {
					errs[c] = fmt.Errorf("compress %s: status %d", name, status)
					return
				}
				back, status, err := doPost(ts.URL+"/v1/"+name+"/decompress", comp)
				if err != nil {
					errs[c] = err
					return
				}
				if status != http.StatusOK || !bytes.Equal(back, body) {
					errs[c] = fmt.Errorf("round trip %s: status %d, %d bytes back", name, status, len(back))
					return
				}
				// Sprinkle error paths into the mix.
				switch rng.Intn(3) {
				case 0:
					if _, status, _ := doPost(ts.URL+"/v1/nope/compress", body); status != http.StatusNotFound {
						errs[c] = fmt.Errorf("unknown codec: status %d", status)
						return
					}
				case 1:
					if _, status, _ := doPost(ts.URL+"/v1/"+name+"/decompress", comp[:len(comp)/3]); status != http.StatusBadRequest {
						errs[c] = fmt.Errorf("corrupt decompress: status %d", status)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	snap := s.Registry().Snapshot()
	wantOK := uint64(clients * requestsPerClient * 2) // compress + decompress per loop
	if got := snap.Counters["server.requests"]; got < wantOK {
		t.Fatalf("server.requests = %d, want >= %d", got, wantOK)
	}
	if snap.Counters["server.cache.hits"] == 0 {
		t.Fatal("expected cross-client cache hits with a 5-body pool")
	}
	if h := snap.Histograms["server.request_latency_us"]; h.Count < wantOK {
		t.Fatalf("latency histogram count = %d, want >= %d", h.Count, wantOK)
	}
}

func doPost(url string, body []byte) ([]byte, int, error) {
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return out, resp.StatusCode, nil
}
