// Package aescipher is a from-scratch T-table implementation of AES-128
// encryption, the validation target for TaintChannel (§III-B): its
// first-round lookups Te[pt[i] ^ key[i]] are the classic Osvik et al.
// cache-attack gadget. The implementation exists to be attacked and
// analyzed, not to be used as a cipher — use crypto/aes for real work.
package aescipher

import (
	"errors"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// ErrKeySize reports a key that is not 16 bytes.
var ErrKeySize = errors.New("aescipher: key must be 16 bytes")

// sbox is the AES S-box, generated from the finite-field inverse.
var sbox = buildSBox()

// te0..te3 are the four T-tables combining SubBytes, ShiftRows, and
// MixColumns.
var te0, te1, te2, te3 = buildTTables()

func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

func buildSBox() [256]byte {
	// Multiplicative inverses in GF(2^8) by brute force, then the affine
	// transform.
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	var s [256]byte
	for i := 0; i < 256; i++ {
		x := inv[i]
		s[i] = x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
	}
	return s
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

func buildTTables() (t0, t1, t2, t3 [256]uint32) {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		t0[i] = uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		t1[i] = uint32(s3)<<24 | uint32(s2)<<16 | uint32(s)<<8 | uint32(s)
		t2[i] = uint32(s)<<24 | uint32(s3)<<16 | uint32(s2)<<8 | uint32(s)
		t3[i] = uint32(s)<<24 | uint32(s)<<16 | uint32(s3)<<8 | uint32(s2)
	}
	return t0, t1, t2, t3
}

// Tracer observes the cipher's secret-dependent table lookups.
type Tracer interface {
	// TableLookup fires per T-table access with the table id (0-3), the
	// index (the secret-dependent byte), and the round.
	TableLookup(table int, index byte, round int)
}

// Cipher is an expanded AES-128 key.
type Cipher struct {
	rk [44]uint32
}

// New expands a 16-byte key.
func New(key []byte) (*Cipher, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("%w: got %d", ErrKeySize, len(key))
	}
	c := &Cipher{}
	for i := 0; i < 4; i++ {
		c.rk[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1)
	for i := 4; i < 44; i++ {
		t := c.rk[i-1]
		if i%4 == 0 {
			t = subWord(rotWord(t)) ^ rcon<<24
			rcon = uint32(xtime(byte(rcon)))
		}
		c.rk[i] = c.rk[i-4] ^ t
	}
	return c, nil
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// Encrypt encrypts one 16-byte block with the T-table rounds, reporting
// every table lookup to the tracer (which may be nil).
func (c *Cipher) Encrypt(dst, src []byte, tr Tracer) error {
	if len(src) < BlockSize || len(dst) < BlockSize {
		return fmt.Errorf("aescipher: block must be %d bytes", BlockSize)
	}
	var s [4]uint32
	for i := 0; i < 4; i++ {
		s[i] = uint32(src[4*i])<<24 | uint32(src[4*i+1])<<16 |
			uint32(src[4*i+2])<<8 | uint32(src[4*i+3])
		s[i] ^= c.rk[i]
	}
	look := func(tbl int, idx byte, round int) uint32 {
		if tr != nil {
			tr.TableLookup(tbl, idx, round)
		}
		switch tbl {
		case 0:
			return te0[idx]
		case 1:
			return te1[idx]
		case 2:
			return te2[idx]
		default:
			return te3[idx]
		}
	}
	var t [4]uint32
	for round := 1; round < 10; round++ {
		for i := 0; i < 4; i++ {
			t[i] = look(0, byte(s[i]>>24), round) ^
				look(1, byte(s[(i+1)%4]>>16), round) ^
				look(2, byte(s[(i+2)%4]>>8), round) ^
				look(3, byte(s[(i+3)%4]), round) ^
				c.rk[4*round+i]
		}
		s = t
	}
	// Final round: SubBytes + ShiftRows (no MixColumns), via the S-box.
	for i := 0; i < 4; i++ {
		t[i] = uint32(sbox[s[i]>>24])<<24 |
			uint32(sbox[s[(i+1)%4]>>16&0xff])<<16 |
			uint32(sbox[s[(i+2)%4]>>8&0xff])<<8 |
			uint32(sbox[s[(i+3)%4]&0xff])
		t[i] ^= c.rk[40+i]
	}
	for i := 0; i < 4; i++ {
		dst[4*i] = byte(t[i] >> 24)
		dst[4*i+1] = byte(t[i] >> 16)
		dst[4*i+2] = byte(t[i] >> 8)
		dst[4*i+3] = byte(t[i])
	}
	return nil
}

// FirstRoundIndices returns the 16 first-round T-table indices for a
// plaintext: pt[i] ^ key[i], the values the Osvik attack observes. Used
// by the survey experiment to cross-check TaintChannel's finding.
func (c *Cipher) FirstRoundIndices(pt []byte) ([]byte, error) {
	if len(pt) < BlockSize {
		return nil, fmt.Errorf("aescipher: plaintext must be %d bytes", BlockSize)
	}
	out := make([]byte, BlockSize)
	for i := 0; i < 4; i++ {
		w := c.rk[i]
		out[4*i] = pt[4*i] ^ byte(w>>24)
		out[4*i+1] = pt[4*i+1] ^ byte(w>>16)
		out[4*i+2] = pt[4*i+2] ^ byte(w>>8)
		out[4*i+3] = pt[4*i+3] ^ byte(w)
	}
	return out, nil
}
