package aescipher

import (
	"bytes"
	"crypto/aes"
	"encoding/hex"
	"errors"
	"math/rand"
	"testing"
)

// FIPS-197 Appendix C.1 vector.
func TestFIPS197Vector(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	want, _ := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if err := c.Encrypt(got, pt, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x, want %x", got, want)
	}
}

// Cross-check against the standard library on random inputs.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		ours, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		want := make([]byte, 16)
		if err := ours.Encrypt(got, pt, nil); err != nil {
			t.Fatal(err)
		}
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("iteration %d: %x != %x", i, got, want)
		}
	}
}

func TestKeySizeValidation(t *testing.T) {
	if _, err := New(make([]byte, 24)); !errors.Is(err, ErrKeySize) {
		t.Errorf("24-byte key should be rejected: %v", err)
	}
}

type lookupTrace struct {
	round1 []byte
	total  int
}

func (l *lookupTrace) TableLookup(_ int, idx byte, round int) {
	if round == 1 {
		l.round1 = append(l.round1, idx)
	}
	l.total++
}

// The first-round lookup indices must be exactly pt ^ roundkey0: the
// Osvik gadget's leaked values.
func TestFirstRoundIndicesMatchTrace(t *testing.T) {
	key := []byte("0123456789abcdef")
	pt := []byte("the secret block")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	var tr lookupTrace
	out := make([]byte, 16)
	if err := c.Encrypt(out, pt, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.round1) != 16 {
		t.Fatalf("round 1 performed %d lookups, want 16", len(tr.round1))
	}
	if tr.total != 9*16 {
		t.Errorf("total lookups = %d, want 144 (9 T-table rounds)", tr.total)
	}
	want, err := c.FirstRoundIndices(pt)
	if err != nil {
		t.Fatal(err)
	}
	// The trace interleaves the 4 state words; compare as sets per word
	// layout: t[i] uses bytes of words i, i+1, i+2, i+3.
	got := map[byte]int{}
	for _, b := range tr.round1 {
		got[b]++
	}
	wantCount := map[byte]int{}
	for _, b := range want {
		wantCount[b]++
	}
	for b, n := range wantCount {
		if got[b] != n {
			t.Errorf("index %#x appears %d times in trace, want %d", b, got[b], n)
		}
	}
}

// Leaking the first round at cache-line granularity (top 4 bits of each
// index) recovers the top 4 bits of every plaintext byte given the key:
// the §III-B validation that the gadget is exploitable.
func TestCacheLineLeakRecoversPlaintextNibbles(t *testing.T) {
	key := []byte("fedcba9876543210")
	pt := []byte("attack at dawn!!")
	c, _ := New(key)
	idx, err := c.FirstRoundIndices(pt)
	if err != nil {
		t.Fatal(err)
	}
	rk, _ := New(key)
	recovered, _ := rk.FirstRoundIndices(make([]byte, 16)) // = round key bytes
	for i := 0; i < 16; i++ {
		lineIdx := idx[i] >> 4                            // 16 4-byte entries per 64-byte line
		ptHigh := (lineIdx << 4) ^ (recovered[i] &^ 0x0f) // undo key's high nibble
		if ptHigh&0xf0 != pt[i]&0xf0 {
			t.Errorf("byte %d: recovered high nibble %#x, want %#x", i, ptHigh&0xf0, pt[i]&0xf0)
		}
	}
}

func TestEncryptShortBuffers(t *testing.T) {
	c, _ := New(make([]byte, 16))
	if err := c.Encrypt(make([]byte, 8), make([]byte, 16), nil); err == nil {
		t.Error("short dst should error")
	}
	if err := c.Encrypt(make([]byte, 16), make([]byte, 8), nil); err == nil {
		t.Error("short src should error")
	}
}
