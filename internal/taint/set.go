// Package taint implements bit-granular taint labels and the shadow-value
// arithmetic that TaintChannel uses to track how program input flows into
// dereferenced memory addresses.
//
// A Tag identifies one input byte by its 1-based sequential read order,
// exactly as the paper's TaintChannel numbers the bytes returned by the
// read system call. A Set is an immutable collection of tags attached to a
// single bit of machine state; a Word is the 64-bit shadow of a register or
// memory word, holding one Set per bit.
//
// Sets are hash-consed: every constructor routes through a process-wide
// interning pool, so structurally equal sets are the same pointer, Equal
// degenerates to a pointer comparison, and Union of two already-seen
// operands is a memo lookup instead of a merge (DESIGN.md §7). Both pools
// are sharded and safe for concurrent use by parallel experiment tasks.
package taint

import (
	"sort"
	"strconv"
	"strings"
)

// Tag identifies a single input byte by its 1-based sequential index in the
// order the program read it.
type Tag uint32

// Set is an immutable sorted set of tags. The nil *Set is the valid empty
// set; all methods are nil-safe. Sets obtained from NewSet/Union are
// interned: structural equality implies pointer equality.
type Set struct {
	tags []Tag
	hash uint64 // interning hash of tags, fixed at construction
}

// NewSet returns a set holding the given tags. Duplicates are removed.
// NewSet() returns nil, the canonical empty set.
func NewSet(tags ...Tag) *Set {
	if len(tags) == 0 {
		return nil
	}
	if len(tags) == 1 {
		return singleton(tags[0])
	}
	dup := make([]Tag, len(tags))
	copy(dup, tags)
	sort.Slice(dup, func(i, j int) bool { return dup[i] < dup[j] })
	out := dup[:1]
	for _, t := range dup[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return intern(out)
}

// IsEmpty reports whether the set holds no tags.
func (s *Set) IsEmpty() bool {
	return s == nil || len(s.tags) == 0
}

// Len returns the number of tags in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.tags)
}

// Tags returns a copy of the tags in ascending order.
func (s *Set) Tags() []Tag {
	if s == nil {
		return nil
	}
	out := make([]Tag, len(s.tags))
	copy(out, s.tags)
	return out
}

// rawTags exposes the interned tag slice for same-package iteration.
// Callers must not mutate it.
func (s *Set) rawTags() []Tag {
	if s == nil {
		return nil
	}
	return s.tags
}

// Contains reports whether t is a member of the set.
func (s *Set) Contains(t Tag) bool {
	if s == nil {
		return false
	}
	i := sort.Search(len(s.tags), func(i int) bool { return s.tags[i] >= t })
	return i < len(s.tags) && s.tags[i] == t
}

// Equal reports whether two sets hold the same tags. Interned sets compare
// by pointer; the structural walk below only runs for sets constructed
// outside the pool (there are none in-repo, but the fallback keeps the
// method total).
func (s *Set) Equal(o *Set) bool {
	if s == o {
		return true
	}
	if s.Len() != o.Len() {
		return false
	}
	if s == nil {
		return true
	}
	for i, t := range s.tags {
		if o.tags[i] != t {
			return false
		}
	}
	return true
}

// Union returns the set of tags present in either input. It returns one of
// its inputs unchanged when possible; the merge path is memoized on the
// (pointer, pointer) pair, so steady-state propagation of already-seen set
// combinations never allocates.
func Union(a, b *Set) *Set {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	if a == b {
		return a
	}
	if u, ok := unionMemoGet(a, b); ok {
		return u
	}
	u := unionSlow(a, b)
	unionMemoPut(a, b, u)
	return u
}

func unionSlow(a, b *Set) *Set {
	if subset(a, b) {
		return b
	}
	if subset(b, a) {
		return a
	}
	merged := make([]Tag, 0, len(a.tags)+len(b.tags))
	i, j := 0, 0
	for i < len(a.tags) && j < len(b.tags) {
		switch {
		case a.tags[i] < b.tags[j]:
			merged = append(merged, a.tags[i])
			i++
		case a.tags[i] > b.tags[j]:
			merged = append(merged, b.tags[j])
			j++
		default:
			merged = append(merged, a.tags[i])
			i++
			j++
		}
	}
	merged = append(merged, a.tags[i:]...)
	merged = append(merged, b.tags[j:]...)
	return intern(merged)
}

func subset(inner, outer *Set) bool {
	if inner.Len() > outer.Len() {
		return false
	}
	j := 0
	for _, t := range inner.tags {
		for j < len(outer.tags) && outer.tags[j] < t {
			j++
		}
		if j >= len(outer.tags) || outer.tags[j] != t {
			return false
		}
	}
	return true
}

// String renders the set as a comma-separated tag list, e.g. "{5750,5751}".
func (s *Set) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.tags {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(t), 10))
	}
	b.WriteByte('}')
	return b.String()
}
