package taint

import "sync"

// The interning pool and the union memo. Both are process-wide and
// sharded: parallel experiment tasks share canonical sets (they are
// immutable), and a shard's mutex is only ever held for a hash lookup or
// a small insert, so cross-task contention stays negligible.
//
// Hash-consing gives three properties the hot path leans on:
//
//   - structural equality is pointer equality (Set.Equal fast path),
//   - Union can be memoized on the operand *pointers*: the same pair of
//     canonical sets always unions to the same canonical set,
//   - steady-state propagation (the same tag combinations recurring for
//     every input byte) performs no allocation at all.
//
// The memo is a bounded cache (a shard is reset when full), so long
// server-style processes cannot grow it without bound; the intern pool
// itself retains every distinct set ever built, which is bounded by the
// number of distinct tag combinations the analyzed program produces.

const (
	internShards    = 64
	unionMemoShards = 64
	// unionMemoMax bounds one memo shard; on overflow the shard is
	// dropped and refilled (plain cache semantics, correctness is
	// unaffected).
	unionMemoMax = 1 << 14
)

// hashTags is FNV-1a over the tag words, mixed per 32-bit tag.
func hashTags(tags []Tag) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, t := range tags {
		h ^= uint64(t)
		h *= prime64
	}
	return h
}

type internShard struct {
	mu sync.RWMutex
	m  map[uint64][]*Set // hash -> candidates (collision chain)
}

var internPool [internShards]*internShard

// singletons caches single-tag sets, the shadow of every freshly read
// input byte; indexed by tag value within a small direct-mapped window,
// falling back to the general pool for large tags.
var singletonCache struct {
	mu sync.RWMutex
	m  map[Tag]*Set
}

func init() {
	for i := range internPool {
		internPool[i] = &internShard{m: map[uint64][]*Set{}}
	}
	singletonCache.m = map[Tag]*Set{}
}

// singleton returns the canonical one-tag set.
func singleton(t Tag) *Set {
	singletonCache.mu.RLock()
	s := singletonCache.m[t]
	singletonCache.mu.RUnlock()
	if s != nil {
		return s
	}
	s = intern([]Tag{t})
	singletonCache.mu.Lock()
	if prev := singletonCache.m[t]; prev != nil {
		s = prev
	} else {
		singletonCache.m[t] = s
	}
	singletonCache.mu.Unlock()
	return s
}

// intern canonicalizes a sorted, deduplicated tag slice. The slice is
// adopted (not copied) when it becomes the canonical set, so callers must
// not retain it.
func intern(tags []Tag) *Set {
	if len(tags) == 0 {
		return nil
	}
	h := hashTags(tags)
	sh := internPool[h%internShards]

	sh.mu.RLock()
	if s := sh.find(h, tags); s != nil {
		sh.mu.RUnlock()
		return s
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s := sh.find(h, tags); s != nil {
		return s
	}
	s := &Set{tags: tags, hash: h}
	sh.m[h] = append(sh.m[h], s)
	return s
}

// find returns the canonical set for tags under the shard lock, or nil.
func (sh *internShard) find(h uint64, tags []Tag) *Set {
	for _, cand := range sh.m[h] {
		if tagsEqual(cand.tags, tags) {
			return cand
		}
	}
	return nil
}

func tagsEqual(a, b []Tag) bool {
	if len(a) != len(b) {
		return false
	}
	for i, t := range a {
		if b[i] != t {
			return false
		}
	}
	return true
}

// unionKey is an ordered operand pair; Union normalizes (a, b) and (b, a)
// to the same key so the memo is direction-independent.
type unionKey struct{ a, b *Set }

type unionShard struct {
	mu sync.RWMutex
	m  map[unionKey]*Set
}

var unionMemo [unionMemoShards]*unionShard

func init() {
	for i := range unionMemo {
		unionMemo[i] = &unionShard{m: map[unionKey]*Set{}}
	}
}

func unionMemoKey(a, b *Set) (unionKey, *unionShard) {
	if a.hash > b.hash || (a.hash == b.hash && len(a.tags) > len(b.tags)) {
		a, b = b, a
	}
	k := unionKey{a, b}
	return k, unionMemo[(a.hash^(b.hash*31))%unionMemoShards]
}

func unionMemoGet(a, b *Set) (*Set, bool) {
	k, sh := unionMemoKey(a, b)
	sh.mu.RLock()
	u, ok := sh.m[k]
	sh.mu.RUnlock()
	return u, ok
}

func unionMemoPut(a, b *Set, u *Set) {
	k, sh := unionMemoKey(a, b)
	sh.mu.Lock()
	if len(sh.m) >= unionMemoMax {
		sh.m = make(map[unionKey]*Set, unionMemoMax/4)
	}
	sh.m[k] = u
	sh.mu.Unlock()
}
