package taint

import (
	"math/rand"
	"sort"
	"testing"
)

// This file checks the interned Set/Union machinery and every Word
// operation against a naive reference model (plain sorted tag slices,
// one per bit), including the in-place aliasing forms the analyzer
// relies on. The reference implementations are deliberately the dumbest
// possible transcription of each documented rule.

// --- reference model ---

// refTags is a sorted, duplicate-free tag slice; nil/empty is clean.
type refTags []Tag

func refNorm(tags []Tag) refTags {
	if len(tags) == 0 {
		return nil
	}
	dup := append([]Tag(nil), tags...)
	sort.Slice(dup, func(i, j int) bool { return dup[i] < dup[j] })
	out := dup[:1]
	for _, t := range dup[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return refTags(out)
}

func refUnion(a, b refTags) refTags {
	return refNorm(append(append([]Tag(nil), a...), b...))
}

func refEqual(a, b refTags) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refWord shadows a Word: one tag slice per bit.
type refWord [WordBits]refTags

func (r *refWord) allTags() refTags {
	var u refTags
	for i := range r {
		u = refUnion(u, r[i])
	}
	return u
}

func refMergePerBit(a, b *refWord) refWord {
	var out refWord
	for i := range out {
		out[i] = refUnion(a[i], b[i])
	}
	return out
}

func refMergeAll(a, b *refWord) refWord {
	var out refWord
	u := refUnion(a.allTags(), b.allTags())
	if len(u) == 0 {
		return out
	}
	for i := range out {
		out[i] = u
	}
	return out
}

func refAddCarryAware(a, b *refWord) refWord {
	var out refWord
	var run refTags
	for i := range out {
		run = refUnion(run, refUnion(a[i], b[i]))
		out[i] = run
	}
	return out
}

func refAndMask(a *refWord, mask uint64) refWord {
	var out refWord
	for i := range out {
		if mask&(1<<uint(i)) != 0 {
			out[i] = a[i]
		}
	}
	return out
}

func refShl(a *refWord, n uint) refWord {
	var out refWord
	if n >= WordBits {
		return out
	}
	for i := int(n); i < WordBits; i++ {
		out[i] = a[i-int(n)]
	}
	return out
}

func refShr(a *refWord, n uint) refWord {
	var out refWord
	if n >= WordBits {
		return out
	}
	for i := 0; i+int(n) < WordBits; i++ {
		out[i] = a[i+int(n)]
	}
	return out
}

func refTruncate(a *refWord, widthBytes int) refWord {
	out := *a
	for i := widthBytes * 8; i < WordBits; i++ {
		out[i] = nil
	}
	return out
}

func refSar(a *refWord, n uint, widthBytes int) refWord {
	top := widthBytes*8 - 1
	if int(n) > top {
		n = uint(top)
	}
	out := refShr(a, n)
	out = refTruncate(&out, widthBytes)
	for i := top - int(n) + 1; i <= top; i++ {
		out[i] = a[top]
	}
	return out
}

func refRol(a *refWord, n uint, widthBytes int) refWord {
	var out refWord
	nbits := widthBytes * 8
	n %= uint(nbits)
	for i := 0; i < nbits; i++ {
		if len(a[i]) > 0 {
			out[(i+int(n))%nbits] = a[i]
		}
	}
	return out
}

// --- harness ---

// checkWord compares an implementation word against its reference
// mirror and enforces the internal invariants the package documents:
// the live mask has a bit set exactly where the bit's set is non-empty,
// and AllTags is the union of every bit.
func checkWord(t *testing.T, label string, w *Word, ref *refWord) {
	t.Helper()
	for i := 0; i < WordBits; i++ {
		got := refNorm(w.Bit(i).Tags())
		if !refEqual(got, refNorm(ref[i])) {
			t.Fatalf("%s: bit %d = %v, want %v", label, i, got, ref[i])
		}
		maskBit := w.Mask()&(1<<uint(i)) != 0
		if maskBit != (len(ref[i]) > 0) {
			t.Fatalf("%s: mask bit %d is %v but reference set has %d tags",
				label, i, maskBit, len(ref[i]))
		}
	}
	if got, want := refNorm(w.AllTags().Tags()), refNorm(ref.allTags()); !refEqual(got, want) {
		t.Fatalf("%s: AllTags = %v, want %v", label, got, want)
	}
	if w.IsClean() != (len(ref.allTags()) == 0) {
		t.Fatalf("%s: IsClean = %v disagrees with reference", label, w.IsClean())
	}
}

// randomWord builds an implementation/reference word pair bit by bit.
func randomWord(rng *rand.Rand) (Word, refWord) {
	var w Word
	var ref refWord
	// A handful of tainted bits with small sets, biased toward the low
	// bytes (where the analyzer's byte-granular loads land).
	for k := rng.Intn(10); k > 0; k-- {
		i := rng.Intn(WordBits)
		if rng.Intn(2) == 0 {
			i = rng.Intn(16)
		}
		tags := make([]Tag, 1+rng.Intn(4))
		for j := range tags {
			tags[j] = Tag(1 + rng.Intn(12))
		}
		w.SetBit(i, NewSet(tags...))
		ref[i] = refNorm(tags)
	}
	return w, ref
}

// --- Set-level properties ---

func TestSetPropertiesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 4000; trial++ {
		raw := make([]Tag, rng.Intn(8))
		for i := range raw {
			raw[i] = Tag(1 + rng.Intn(10))
		}
		s := NewSet(raw...)
		want := refNorm(raw)
		if !refEqual(refNorm(s.Tags()), want) {
			t.Fatalf("NewSet(%v).Tags() = %v, want %v", raw, s.Tags(), want)
		}
		if len(want) == 0 && s != nil {
			t.Fatalf("NewSet(%v) should canonicalize to nil", raw)
		}

		// Interning: a permutation (plus duplicates) of the same tags must
		// come back as the same pointer, and Equal must agree.
		perm := append([]Tag(nil), raw...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if len(raw) > 0 {
			perm = append(perm, raw[rng.Intn(len(raw))])
		}
		if s2 := NewSet(perm...); s2 != s {
			t.Fatalf("interning failed: NewSet(%v) != NewSet(%v)", raw, perm)
		}

		// Union against the reference, plus pointer-level laws.
		other := make([]Tag, rng.Intn(8))
		for i := range other {
			other[i] = Tag(1 + rng.Intn(10))
		}
		o := NewSet(other...)
		u := Union(s, o)
		if !refEqual(refNorm(u.Tags()), refUnion(want, refNorm(other))) {
			t.Fatalf("Union(%v, %v) = %v", s, o, u)
		}
		if Union(s, o) != u || Union(o, s) != u {
			t.Fatalf("Union not pointer-stable/commutative for %v, %v", s, o)
		}
		if Union(u, s) != u || Union(u, nil) != u {
			t.Fatalf("Union absorption failed for %v", u)
		}
		for _, tag := range []Tag{0, 1, 5, 11} {
			if s.Contains(tag) != want.contains(tag) {
				t.Fatalf("Contains(%d) disagrees for %v", tag, s)
			}
		}
	}
	if Union(nil, nil) != nil || NewSet() != nil {
		t.Fatal("empty-set canonicalization broken")
	}
}

func (r refTags) contains(t Tag) bool {
	for _, x := range r {
		if x == t {
			return true
		}
	}
	return false
}

// --- Word-level properties ---

func TestWordOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	widths := []int{1, 2, 4, 8}
	for trial := 0; trial < 2500; trial++ {
		a, refA := randomWord(rng)
		b, refB := randomWord(rng)
		checkWord(t, "input a", &a, &refA)

		var out Word
		var want refWord
		var label string
		aliased := rng.Intn(2) == 0 // exercise the w-aliases-a contract

		switch op := rng.Intn(8); op {
		case 0:
			label = "MergePerBit"
			want = refMergePerBit(&refA, &refB)
			if aliased {
				out.CopyFrom(&a)
				out.SetMergePerBit(&out, &b)
			} else {
				out = MergePerBit(a, b)
			}
		case 1:
			label = "MergeAll"
			want = refMergeAll(&refA, &refB)
			out = MergeAll(a, b)
		case 2:
			label = "AddCarryAware"
			want = refAddCarryAware(&refA, &refB)
			if aliased {
				out.CopyFrom(&b)
				out.SetAddCarryAware(&a, &out)
			} else {
				out = AddCarryAware(a, b)
			}
		case 3:
			mask := rng.Uint64()
			label = "AndMask"
			want = refAndMask(&refA, mask)
			if aliased {
				out.CopyFrom(&a)
				out.SetAndMask(&out, mask)
			} else {
				out = AndMask(a, mask)
			}
		case 4:
			mask := rng.Uint64()
			label = "OrMask"
			want = refAndMask(&refA, ^mask)
			out = OrMask(a, mask)
		case 5:
			n := uint(rng.Intn(80)) // include >= WordBits overshift
			label = "Shl"
			want = refShl(&refA, n)
			if aliased {
				out.CopyFrom(&a)
				out.SetShl(&out, n)
			} else {
				out = Shl(a, n)
			}
		case 6:
			n := uint(rng.Intn(80))
			label = "Shr"
			want = refShr(&refA, n)
			if aliased {
				out.CopyFrom(&a)
				out.SetShr(&out, n)
			} else {
				out = Shr(a, n)
			}
		case 7:
			label = "Truncate"
			width := widths[rng.Intn(len(widths))]
			want = refTruncate(&refA, width)
			out.CopyFrom(&a)
			out.TruncateIn(width)
		}
		checkWord(t, label, &out, &want)

		// Width-scoped ops require inputs already confined to the width.
		width := widths[rng.Intn(len(widths))]
		aw := a.Truncate(width)
		refAW := refTruncate(&refA, width)
		n := uint(rng.Intn(width*8 + 2))
		sar := Sar(aw, n, width)
		wantSar := refSar(&refAW, n, width)
		checkWord(t, "Sar", &sar, &wantSar)
		rol := Rol(aw, n, width)
		wantRol := refRol(&refAW, n, width)
		checkWord(t, "Rol", &rol, &wantRol)

		// Equal must agree with the reference comparison.
		if got := a.Equal(&b); got != refEqualWord(&refA, &refB) {
			t.Fatalf("Word.Equal = %v disagrees with reference", got)
		}
		aa := a
		if !a.Equal(&aa) {
			t.Fatal("Word.Equal(copy) = false")
		}

		// AnyTainted over a random range.
		lo := rng.Intn(WordBits)
		hi := lo + rng.Intn(WordBits-lo) + 1
		wantAny := false
		for i := lo; i < hi; i++ {
			if len(refA[i]) > 0 {
				wantAny = true
			}
		}
		if a.AnyTainted(lo, hi) != wantAny {
			t.Fatalf("AnyTainted(%d,%d) = %v, want %v", lo, hi, a.AnyTainted(lo, hi), wantAny)
		}
	}
}

func refEqualWord(a, b *refWord) bool {
	for i := range a {
		if !refEqual(refNorm(a[i]), refNorm(b[i])) {
			return false
		}
	}
	return true
}

// FuzzSetUnion drives NewSet/Union from an arbitrary byte tape and
// cross-checks the reference merge, so `go test -fuzz FuzzSetUnion`
// explores tag patterns the seeded property test never generates.
func FuzzSetUnion(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 2, 1})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 1, 0, 0, 0, 7})
	f.Fuzz(func(t *testing.T, tape []byte) {
		half := len(tape) / 2
		ta := make([]Tag, 0, half)
		for _, c := range tape[:half] {
			ta = append(ta, Tag(c))
		}
		tb := make([]Tag, 0, len(tape)-half)
		for _, c := range tape[half:] {
			tb = append(tb, Tag(c))
		}
		a, b := NewSet(ta...), NewSet(tb...)
		u := Union(a, b)
		if want := refUnion(refNorm(ta), refNorm(tb)); !refEqual(refNorm(u.Tags()), want) {
			t.Fatalf("Union(%v, %v) = %v, want %v", a, b, u, want)
		}
		if Union(b, a) != u {
			t.Fatalf("Union(%v, %v) not commutative at pointer level", a, b)
		}
		if a2 := NewSet(append(tb, ta...)...); a2 != u && !a2.Equal(u) {
			// NewSet over the concatenation must equal the union (and by
			// interning, be the same pointer).
			t.Fatalf("NewSet(a++b) = %v differs from Union = %v", a2, u)
		}
	})
}
