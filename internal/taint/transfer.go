package taint

import "math/bits"

// Transfer is a basic block's taint transfer function, precomputed once
// per program block (internal/core builds one per vm.Blocks entry). It
// summarizes, at word granularity, everything the analyzer's precise
// per-instruction path could do to shadow state when executing the block:
// which register shadows it consults, which it overwrites, whether it
// touches shadow memory or the flag-taint latch, and whether it contains
// ops (syscalls) whose effects cannot be summarized.
//
// The payoff is the Skippable test: when a block's inputs are provably
// clean — every consulted register shadow empty, no live shadow memory if
// the block touches memory, no stale tainted flags reaching a conditional
// jump — the precise path is a guaranteed no-op on taint state except for
// a handful of counter/latch updates, so the whole block can run on the
// VM's uninstrumented fast path and the analyzer applies the net effect
// as a few word operations. Clean prologue loops (bzip2's 64K-entry ftab
// zeroing runs before the first input byte is read) collapse from
// millions of hook invocations to one mask test per loop iteration.
type Transfer struct {
	// ReadRegs is a bitmask of registers whose shadow the precise path
	// would consult before the block first overwrites them (live-in).
	// This includes "touch reads": the analyzer checks the destination's
	// old shadow to decide whether an instruction touched taint, so a
	// register being merely overwritten still counts as consulted at the
	// overwriting instruction.
	ReadRegs uint16
	// WriteRegs is a bitmask of registers the block overwrites. When the
	// block is skippable every write stores a provably clean shadow, so
	// the net effect is Reset on each (a no-op unless state drifted).
	WriteRegs uint16
	// Len is the number of instructions in the block, the block's
	// contribution to the analyzer's observed-instruction count.
	Len int
	// FlagPC is the pc of the last flag-taint-setting instruction in the
	// block (cmp/test/ALU; not the xor zeroing idiom, which the analyzer
	// leaves out of the flag latch), or -1 if the block sets no flags.
	// A skipped block with FlagPC >= 0 leaves the flag latch clean and
	// pointing at FlagPC.
	FlagPC int32
	// TouchesMem reports any shadow-memory access: loads would read
	// possibly-tainted bytes, and stores/pushes/calls would clear
	// previously tainted bytes, so the block is only skippable while no
	// shadow memory is live.
	TouchesMem bool
	// StaleFlagJump reports a conditional jump not preceded by a
	// flag-setter within the block: it observes flag taint latched before
	// the block, so skipping additionally requires clean incoming flags.
	StaleFlagJump bool
	// HasSyscall marks blocks containing a syscall; the read syscall is
	// the taint source, so these always run precise.
	HasSyscall bool
	// Unsafe marks blocks with an opcode the summary does not model;
	// always run precise. Defensive — no current opcode sets it.
	Unsafe bool
}

// Skippable reports whether executing the block is a no-op on taint state
// (beyond the Len/FlagPC bookkeeping) given the current shadow inputs:
// the analyzer's register shadows, whether any shadow memory byte is
// live, and whether the flag latch currently carries taint.
func (t *Transfer) Skippable(regs *[16]Word, memLive, flagsTainted bool) bool {
	if t.Unsafe || t.HasSyscall {
		return false
	}
	if t.TouchesMem && memLive {
		return false
	}
	if t.StaleFlagJump && flagsTainted {
		return false
	}
	m := t.ReadRegs
	for m != 0 {
		r := bits.TrailingZeros16(m)
		m &= m - 1
		if !regs[r].IsClean() {
			return false
		}
	}
	return true
}

// Apply applies the block's net register effect for a skipped execution:
// every overwritten register ends clean. Under the Skippable precondition
// each of these is already clean, so this is cheap (mask test per reg)
// and exists to keep the summary self-contained.
func (t *Transfer) Apply(regs *[16]Word) {
	m := t.WriteRegs
	for m != 0 {
		r := bits.TrailingZeros16(m)
		m &= m - 1
		regs[r].Reset()
	}
}
