package taint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSetDedupAndSort(t *testing.T) {
	s := NewSet(5, 3, 5, 1, 3)
	want := []Tag{1, 3, 5}
	got := s.Tags()
	if len(got) != len(want) {
		t.Fatalf("Tags() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tags() = %v, want %v", got, want)
		}
	}
}

func TestEmptySet(t *testing.T) {
	var s *Set
	if !s.IsEmpty() {
		t.Error("nil set should be empty")
	}
	if s.Len() != 0 {
		t.Errorf("Len() = %d, want 0", s.Len())
	}
	if s.Contains(1) {
		t.Error("nil set should not contain 1")
	}
	if NewSet() != nil {
		t.Error("NewSet() should return nil")
	}
	if s.String() != "{}" {
		t.Errorf("String() = %q, want {}", s.String())
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(2, 4, 6)
	for _, tag := range []Tag{2, 4, 6} {
		if !s.Contains(tag) {
			t.Errorf("Contains(%d) = false, want true", tag)
		}
	}
	for _, tag := range []Tag{1, 3, 5, 7} {
		if s.Contains(tag) {
			t.Errorf("Contains(%d) = true, want false", tag)
		}
	}
}

func TestUnionBasic(t *testing.T) {
	a := NewSet(1, 3)
	b := NewSet(2, 3, 4)
	u := Union(a, b)
	want := []Tag{1, 2, 3, 4}
	got := u.Tags()
	if len(got) != len(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Union = %v, want %v", got, want)
		}
	}
}

func TestUnionIdentity(t *testing.T) {
	a := NewSet(1, 2)
	if Union(a, nil) != a {
		t.Error("Union(a, nil) should return a unchanged")
	}
	if Union(nil, a) != a {
		t.Error("Union(nil, a) should return a unchanged")
	}
	if Union(nil, nil) != nil {
		t.Error("Union(nil, nil) should be nil")
	}
	if Union(a, a) != a {
		t.Error("Union(a, a) should return a unchanged")
	}
}

func TestUnionSubsetReuse(t *testing.T) {
	small := NewSet(2)
	big := NewSet(1, 2, 3)
	if Union(small, big) != big {
		t.Error("Union with superset should return the superset pointer")
	}
	if Union(big, small) != big {
		t.Error("Union with subset should return the superset pointer")
	}
}

func TestSetString(t *testing.T) {
	if got := NewSet(7, 5).String(); got != "{5,7}" {
		t.Errorf("String() = %q, want {5,7}", got)
	}
}

func randomSet(r *rand.Rand) *Set {
	n := r.Intn(6)
	tags := make([]Tag, n)
	for i := range tags {
		tags[i] = Tag(r.Intn(16))
	}
	return NewSet(tags...)
}

func TestUnionProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Commutativity.
	comm := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		return Union(a, b).Equal(Union(b, a))
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	// Associativity.
	assoc := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomSet(r), randomSet(r), randomSet(r)
		return Union(Union(a, b), c).Equal(Union(a, Union(b, c)))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("union not associative: %v", err)
	}
	// Idempotence.
	idem := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r)
		return Union(a, a).Equal(a)
	}
	if err := quick.Check(idem, cfg); err != nil {
		t.Errorf("union not idempotent: %v", err)
	}
	// Membership: union contains exactly the members of both.
	member := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		u := Union(a, b)
		for tag := Tag(0); tag < 16; tag++ {
			if u.Contains(tag) != (a.Contains(tag) || b.Contains(tag)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(member, cfg); err != nil {
		t.Errorf("union membership wrong: %v", err)
	}
}

func TestSetEqual(t *testing.T) {
	if !NewSet(1, 2).Equal(NewSet(2, 1)) {
		t.Error("order should not matter for Equal")
	}
	if NewSet(1).Equal(NewSet(2)) {
		t.Error("{1} should not equal {2}")
	}
	var empty *Set
	if !empty.Equal(NewSet()) {
		t.Error("nil should equal empty")
	}
}
