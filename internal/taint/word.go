package taint

// WordBits is the width in bits of a shadow Word.
const WordBits = 64

// Word is the 64-bit shadow of a register or memory word: one tag set per
// bit, with bit 0 the least significant. The zero Word is fully untainted.
type Word struct {
	bits [WordBits]*Set
}

// Bit returns the tag set attached to bit i (0 = LSB).
func (w Word) Bit(i int) *Set {
	return w.bits[i]
}

// SetBit replaces the tag set attached to bit i.
func (w *Word) SetBit(i int, s *Set) {
	w.bits[i] = s
}

// IsClean reports whether no bit of the word carries taint.
func (w Word) IsClean() bool {
	for _, s := range w.bits {
		if !s.IsEmpty() {
			return false
		}
	}
	return true
}

// AnyTainted reports whether any of bits [lo, hi) carries taint.
func (w Word) AnyTainted(lo, hi int) bool {
	for i := lo; i < hi && i < WordBits; i++ {
		if !w.bits[i].IsEmpty() {
			return true
		}
	}
	return false
}

// AllTags returns the union of every bit's tag set.
func (w Word) AllTags() *Set {
	var u *Set
	for _, s := range w.bits {
		u = Union(u, s)
	}
	return u
}

// Equal reports whether two words carry identical per-bit taint.
func (w Word) Equal(o Word) bool {
	for i := range w.bits {
		if !w.bits[i].Equal(o.bits[i]) {
			return false
		}
	}
	return true
}

// ByteWord returns a word whose low 8 bits all carry the single tag t, the
// shadow of a freshly read input byte.
func ByteWord(t Tag) Word {
	var w Word
	s := NewSet(t)
	for i := 0; i < 8; i++ {
		w.bits[i] = s
	}
	return w
}

// Truncate zeroes the taint of all bits at or above width*8, modelling a
// narrow (1/2/4-byte) write that discards high bits.
func (w Word) Truncate(widthBytes int) Word {
	for i := widthBytes * 8; i < WordBits; i++ {
		w.bits[i] = nil
	}
	return w
}

// MergePerBit unions the taint of two operands bit by bit. This is
// TaintChannel's rule for xor, or, and and-with-two-tainted-operands, and
// the default (carry-ignoring) rule for add/sub, matching the per-bit
// layouts of the paper's Figs 2-4.
func MergePerBit(a, b Word) Word {
	var out Word
	for i := range out.bits {
		out.bits[i] = Union(a.bits[i], b.bits[i])
	}
	return out
}

// MergeAll gives every bit of the result the union of all tags of both
// operands: the conservative rule for instructions (general multiply,
// division) whose per-bit flow is not tracked.
func MergeAll(a, b Word) Word {
	u := Union(a.AllTags(), b.AllTags())
	var out Word
	if u.IsEmpty() {
		return out
	}
	for i := range out.bits {
		out.bits[i] = u
	}
	return out
}

// AddCarryAware is the sound mode for addition/subtraction: result bit i
// depends on both operands' bits 0..i through the carry chain, so it
// receives the union of those tag sets. The paper's tool uses the per-bit
// rule instead; this mode exists as a documented ablation (DESIGN.md §2).
func AddCarryAware(a, b Word) Word {
	var out Word
	var run *Set
	for i := 0; i < WordBits; i++ {
		run = Union(run, Union(a.bits[i], b.bits[i]))
		out.bits[i] = run
	}
	return out
}

// AndMask keeps taint only at bit positions where the untainted mask has a
// 1 bit: an and with a clean mask zeroes the masked-out bits, destroying
// their taint (paper §III-B, "special handling").
func AndMask(a Word, mask uint64) Word {
	var out Word
	for i := 0; i < WordBits; i++ {
		if mask&(1<<uint(i)) != 0 {
			out.bits[i] = a.bits[i]
		}
	}
	return out
}

// OrMask keeps taint only at positions where the untainted mask has a 0
// bit: or-ing with a constant 1 forces the bit, destroying its taint.
func OrMask(a Word, mask uint64) Word {
	var out Word
	for i := 0; i < WordBits; i++ {
		if mask&(1<<uint(i)) == 0 {
			out.bits[i] = a.bits[i]
		}
	}
	return out
}

// Shl shifts taint left by n bits; shifted-in bits are untainted.
func Shl(a Word, n uint) Word {
	var out Word
	if n >= WordBits {
		return out
	}
	for i := WordBits - 1; i >= int(n); i-- {
		out.bits[i] = a.bits[i-int(n)]
	}
	return out
}

// Shr shifts taint right by n bits (logical); shifted-in bits are untainted.
func Shr(a Word, n uint) Word {
	var out Word
	if n >= WordBits {
		return out
	}
	for i := 0; i < WordBits-int(n); i++ {
		out.bits[i] = a.bits[i+int(n)]
	}
	return out
}

// Sar shifts taint right by n bits arithmetically for the given operand
// width: the sign bit's taint is replicated into the shifted-in positions.
func Sar(a Word, n uint, widthBytes int) Word {
	top := widthBytes*8 - 1
	if n == 0 {
		return a
	}
	var out Word
	if int(n) > top {
		n = uint(top)
	}
	for i := 0; i <= top-int(n); i++ {
		out.bits[i] = a.bits[i+int(n)]
	}
	sign := a.bits[top]
	for i := top - int(n) + 1; i <= top; i++ {
		out.bits[i] = sign
	}
	return out
}

// Rol rotates taint left by n bits within the given operand width.
func Rol(a Word, n uint, widthBytes int) Word {
	bits := widthBytes * 8
	n %= uint(bits)
	var out Word
	for i := 0; i < bits; i++ {
		out.bits[(i+int(n))%bits] = a.bits[i]
	}
	return out
}

// Bytes splits the word into 8 per-byte shadows, little-endian.
func (w Word) Bytes() [8][8]*Set {
	var out [8][8]*Set
	for i := 0; i < WordBits; i++ {
		out[i/8][i%8] = w.bits[i]
	}
	return out
}

// FromBytes assembles a word from up to 8 per-byte shadows, little-endian.
// Missing bytes are untainted.
func FromBytes(bs [][8]*Set) Word {
	var w Word
	for bi, b := range bs {
		if bi >= 8 {
			break
		}
		for j := 0; j < 8; j++ {
			w.bits[bi*8+j] = b[j]
		}
	}
	return w
}
