package taint

import "math/bits"

// WordBits is the width in bits of a shadow Word.
const WordBits = 64

// Word is the 64-bit shadow of a register or memory word: one tag set per
// bit, with bit 0 the least significant. The zero Word is fully untainted.
//
// Alongside the per-bit sets the word maintains mask, a bitmap of the
// positions whose set is non-empty. Every operation consults the mask
// first, so clean words cost O(1) and a typical tainted word (one input
// byte: 8 live bits) costs 8 pointer operations instead of 64.
//
// Invariant: a slot whose mask bit is clear is DEAD and may hold a stale
// pointer from an earlier value. Sets are interned for the process
// lifetime, so a stale pointer retains nothing, and it lets clearing be a
// mask update instead of a nil-store sweep — Reset is one store, and the
// shift/merge/truncate operations skip their dead-slot scrubbing (and its
// GC write barriers) entirely. Everything reading a slot must check the
// mask first; within this file the mask-guided walks do so implicitly.
//
// The pointer-receiver Set* operations below compute in place and may
// alias their destination with a source; the value-based helpers at the
// bottom of the file are thin wrappers kept for tests and report
// rendering.
type Word struct {
	mask uint64
	bits [WordBits]*Set
}

// Bit returns the tag set attached to bit i (0 = LSB).
func (w *Word) Bit(i int) *Set {
	if w.mask&(1<<uint(i)) == 0 {
		return nil
	}
	return w.bits[i]
}

// SetBit replaces the tag set attached to bit i. Empty sets are
// canonicalized to nil.
func (w *Word) SetBit(i int, s *Set) {
	if s.IsEmpty() {
		w.mask &^= 1 << uint(i)
		return
	}
	w.bits[i] = s
	w.mask |= 1 << uint(i)
}

// Mask returns the bitmap of tainted bit positions.
func (w *Word) Mask() uint64 { return w.mask }

// IsClean reports whether no bit of the word carries taint.
func (w *Word) IsClean() bool { return w.mask == 0 }

// AnyTainted reports whether any of bits [lo, hi) carries taint.
func (w *Word) AnyTainted(lo, hi int) bool {
	if hi > WordBits {
		hi = WordBits
	}
	if lo >= hi {
		return false
	}
	span := (^uint64(0) >> uint(WordBits-(hi-lo))) << uint(lo)
	return w.mask&span != 0
}

// AllTags returns the union of every bit's tag set. Hash-consing makes
// identical sets pointer-identical, and taint usually arrives in byte
// runs (8 bits sharing one set), so the walk skips bits whose set is the
// one just merged or the running union — the common word costs a couple
// of pointer compares per byte instead of a memoized Union per bit.
func (w *Word) AllTags() *Set {
	m := w.mask
	if m == 0 {
		return nil
	}
	var u, last *Set
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		s := w.bits[i]
		if s == last || s == u {
			continue
		}
		last = s
		u = Union(u, s)
	}
	return u
}

// Equal reports whether two words carry identical per-bit taint.
func (w *Word) Equal(o *Word) bool {
	if w.mask != o.mask {
		return false
	}
	m := w.mask
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		if !w.bits[i].Equal(o.bits[i]) {
			return false
		}
	}
	return true
}

// Reset clears the word in place (dead slots keep stale pointers).
func (w *Word) Reset() {
	w.mask = 0
}

// CopyFrom makes w an exact copy of src, touching only live bits.
func (w *Word) CopyFrom(src *Word) {
	if w == src {
		return
	}
	m := src.mask
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		// The compare dodges the write barrier when the slot already holds
		// the set — steady-state loops recopy mostly-unchanged words.
		if s := src.bits[i]; w.bits[i] != s {
			w.bits[i] = s
		}
	}
	w.mask = src.mask
}

// TruncateIn zeroes the taint of all bits at or above width*8 in place,
// modelling a narrow (1/2/4-byte) write that discards high bits.
func (w *Word) TruncateIn(widthBytes int) {
	if widthBytes >= 8 {
		return
	}
	w.mask &= (uint64(1) << uint(widthBytes*8)) - 1
}

// SetByte makes w the shadow of a freshly read input byte carrying tag t
// in its low 8 bits.
func (w *Word) SetByte(t Tag) {
	w.Reset()
	s := singleton(t)
	for i := 0; i < 8; i++ {
		w.bits[i] = s
	}
	w.mask = 0xff
}

// SetMergePerBit stores into w the per-bit union of a and b (w may alias
// either): TaintChannel's rule for xor, or, and and-with-two-tainted-
// operands, and the default (carry-ignoring) rule for add/sub, matching
// the per-bit layouts of the paper's Figs 2-4.
func (w *Word) SetMergePerBit(a, b *Word) {
	if a.mask == 0 {
		w.CopyFrom(b)
		return
	}
	if b.mask == 0 {
		w.CopyFrom(a)
		return
	}
	union := a.mask | b.mask
	both := a.mask & b.mask
	// Consecutive bits usually carry the same operand pair (taint spreads
	// in byte runs), so remember the last pair's union instead of hitting
	// the memo per bit.
	var la, lb, lu *Set
	m := union
	for m != 0 {
		i := bits.TrailingZeros64(m)
		bit := uint64(1) << uint(i)
		m &= m - 1
		switch {
		case both&bit != 0:
			ai, bi := a.bits[i], b.bits[i]
			if ai != la || bi != lb {
				la, lb = ai, bi
				lu = Union(ai, bi)
			}
			w.bits[i] = lu
		case a.mask&bit != 0:
			w.bits[i] = a.bits[i]
		default:
			w.bits[i] = b.bits[i]
		}
	}
	w.mask = union
}

// SetMergeAll gives every bit of w the union of all tags of both
// operands: the conservative rule for instructions (general multiply,
// division) whose per-bit flow is not tracked.
func (w *Word) SetMergeAll(a, b *Word) {
	u := Union(a.AllTags(), b.AllTags())
	if u.IsEmpty() {
		w.Reset()
		return
	}
	for i := 0; i < WordBits; i++ {
		w.bits[i] = u
	}
	w.mask = ^uint64(0)
}

// SetAddCarryAware stores the sound add/sub rule into w: result bit i
// depends on both operands' bits 0..i through the carry chain, so it
// receives the union of those tag sets. The paper's tool uses the per-bit
// rule instead; this mode exists as a documented ablation (DESIGN.md §2).
func (w *Word) SetAddCarryAware(a, b *Word) {
	var run *Set
	var mask uint64
	live := a.mask | b.mask
	if live == 0 {
		w.Reset()
		return
	}
	for i := 0; i < WordBits; i++ {
		bit := uint64(1) << uint(i)
		if a.mask&bit != 0 {
			run = Union(run, a.bits[i])
		}
		if b.mask&bit != 0 {
			run = Union(run, b.bits[i])
		}
		if run != nil {
			w.bits[i] = run
			mask |= bit
		}
	}
	w.mask = mask
}

// SetAndMask keeps taint of a only at bit positions where the untainted
// mask value has a 1 bit: an and with a clean mask zeroes the masked-out
// bits, destroying their taint (paper §III-B, "special handling").
func (w *Word) SetAndMask(a *Word, mask uint64) {
	keep := a.mask & mask
	m := keep
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		w.bits[i] = a.bits[i]
	}
	w.mask = keep
}

// SetOrMask keeps taint of a only at positions where the untainted mask
// value has a 0 bit: or-ing with a constant 1 forces the bit, destroying
// its taint.
func (w *Word) SetOrMask(a *Word, mask uint64) {
	w.SetAndMask(a, ^mask)
}

// SetShl stores a's taint shifted left by n bits into w (w may alias a);
// shifted-in bits are untainted.
func (w *Word) SetShl(a *Word, n uint) {
	if n == 0 {
		w.CopyFrom(a)
		return
	}
	if n >= WordBits {
		w.Reset()
		return
	}
	newMask := a.mask << n
	// Copy descending so w may alias a: each target reads a source n bits
	// below it, which a descending walk has not yet overwritten.
	m := newMask
	for m != 0 {
		i := WordBits - 1 - bits.LeadingZeros64(m)
		m &^= 1 << uint(i)
		w.bits[i] = a.bits[i-int(n)]
	}
	w.mask = newMask
}

// SetShr stores a's taint shifted right (logically) by n bits into w;
// shifted-in bits are untainted.
func (w *Word) SetShr(a *Word, n uint) {
	if n == 0 {
		w.CopyFrom(a)
		return
	}
	if n >= WordBits {
		w.Reset()
		return
	}
	newMask := a.mask >> n
	// Copy ascending so w may alias a: each target reads a source n bits
	// above it, which an ascending walk has not yet overwritten.
	m := newMask
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		w.bits[i] = a.bits[i+int(n)]
	}
	w.mask = newMask
}

// --- Value-based API (wrappers over the in-place forms) ---

// ByteWord returns a word whose low 8 bits all carry the single tag t, the
// shadow of a freshly read input byte.
func ByteWord(t Tag) Word {
	var w Word
	w.SetByte(t)
	return w
}

// Truncate zeroes the taint of all bits at or above width*8, modelling a
// narrow (1/2/4-byte) write that discards high bits.
func (w Word) Truncate(widthBytes int) Word {
	w.TruncateIn(widthBytes)
	return w
}

// MergePerBit unions the taint of two operands bit by bit.
func MergePerBit(a, b Word) Word {
	var out Word
	out.SetMergePerBit(&a, &b)
	return out
}

// MergeAll gives every bit of the result the union of all tags of both
// operands.
func MergeAll(a, b Word) Word {
	var out Word
	out.SetMergeAll(&a, &b)
	return out
}

// AddCarryAware is the sound mode for addition/subtraction.
func AddCarryAware(a, b Word) Word {
	var out Word
	out.SetAddCarryAware(&a, &b)
	return out
}

// AndMask keeps taint only at bit positions where the untainted mask has a
// 1 bit.
func AndMask(a Word, mask uint64) Word {
	var out Word
	out.SetAndMask(&a, mask)
	return out
}

// OrMask keeps taint only at positions where the untainted mask has a 0
// bit.
func OrMask(a Word, mask uint64) Word {
	var out Word
	out.SetOrMask(&a, mask)
	return out
}

// Shl shifts taint left by n bits; shifted-in bits are untainted.
func Shl(a Word, n uint) Word {
	var out Word
	out.SetShl(&a, n)
	return out
}

// Shr shifts taint right by n bits (logical); shifted-in bits are untainted.
func Shr(a Word, n uint) Word {
	var out Word
	out.SetShr(&a, n)
	return out
}

// SetSar stores a's taint shifted right arithmetically by n bits for the
// given operand width into w: the sign bit's taint is replicated into the
// shifted-in positions.
func (w *Word) SetSar(a *Word, n uint, widthBytes int) {
	if n == 0 {
		w.CopyFrom(a)
		return
	}
	top := widthBytes*8 - 1
	if int(n) > top {
		n = uint(top)
	}
	var sign *Set
	if a.mask&(1<<uint(top)) != 0 {
		sign = a.bits[top]
	}
	var scratch Word
	scratch.SetShr(a, n)
	scratch.TruncateIn(widthBytes) // drop any bits above width (none expected)
	if sign != nil {
		for i := top - int(n) + 1; i <= top; i++ {
			scratch.SetBit(i, sign)
		}
	} else {
		for i := top - int(n) + 1; i <= top; i++ {
			scratch.SetBit(i, nil)
		}
	}
	w.CopyFrom(&scratch)
}

// Sar shifts taint right by n bits arithmetically for the given operand
// width: the sign bit's taint is replicated into the shifted-in positions.
func Sar(a Word, n uint, widthBytes int) Word {
	var out Word
	out.SetSar(&a, n, widthBytes)
	return out
}

// SetRol stores a's taint rotated left by n bits within the given operand
// width into w.
func (w *Word) SetRol(a *Word, n uint, widthBytes int) {
	nbits := widthBytes * 8
	n %= uint(nbits)
	var scratch Word
	for i := 0; i < nbits; i++ {
		if a.mask&(1<<uint(i)) != 0 {
			scratch.SetBit((i+int(n))%nbits, a.bits[i])
		}
	}
	w.CopyFrom(&scratch)
}

// Rol rotates taint left by n bits within the given operand width.
func Rol(a Word, n uint, widthBytes int) Word {
	var out Word
	out.SetRol(&a, n, widthBytes)
	return out
}

// Bytes splits the word into 8 per-byte shadows, little-endian.
func (w Word) Bytes() [8][8]*Set {
	var out [8][8]*Set
	m := w.mask
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		out[i/8][i%8] = w.bits[i]
	}
	return out
}

// FromBytes assembles a word from up to 8 per-byte shadows, little-endian.
// Missing bytes are untainted.
func FromBytes(bs [][8]*Set) Word {
	var w Word
	for bi, b := range bs {
		if bi >= 8 {
			break
		}
		for j := 0; j < 8; j++ {
			if b[j] != nil && !b[j].IsEmpty() {
				w.SetBit(bi*8+j, b[j])
			}
		}
	}
	return w
}
