package taint

import "testing"

func TestTransferSkippable(t *testing.T) {
	var regs [16]Word
	base := Transfer{ReadRegs: 1 << 3, WriteRegs: 1 << 4, Len: 5, FlagPC: 2}

	if !base.Skippable(&regs, false, false) {
		t.Fatal("clean state: block should be skippable")
	}
	if !base.Skippable(&regs, true, false) {
		t.Fatal("memLive without TouchesMem should not block skipping")
	}
	if !base.Skippable(&regs, false, true) {
		t.Fatal("tainted flags without StaleFlagJump should not block skipping")
	}

	regs[3].SetByte(1)
	if base.Skippable(&regs, false, false) {
		t.Fatal("tainted live-in register must force the precise path")
	}
	regs[3].Reset()
	regs[4].SetByte(1)
	if !base.Skippable(&regs, false, false) {
		t.Fatal("taint only in an overwritten (non-read) register should not block skipping")
	}

	mem := base
	mem.TouchesMem = true
	regs[4].Reset()
	if !mem.Skippable(&regs, false, false) || mem.Skippable(&regs, true, false) {
		t.Fatal("TouchesMem must gate on live shadow memory")
	}

	jmp := base
	jmp.StaleFlagJump = true
	if !jmp.Skippable(&regs, false, false) || jmp.Skippable(&regs, false, true) {
		t.Fatal("StaleFlagJump must gate on incoming flag taint")
	}

	sys := base
	sys.HasSyscall = true
	if sys.Skippable(&regs, false, false) {
		t.Fatal("syscall blocks are never skippable")
	}
	unsafe := base
	unsafe.Unsafe = true
	if unsafe.Skippable(&regs, false, false) {
		t.Fatal("unsafe blocks are never skippable")
	}
}

func TestTransferApply(t *testing.T) {
	var regs [16]Word
	regs[2].SetByte(7)
	regs[5].SetByte(8)

	tr := Transfer{WriteRegs: 1<<2 | 1<<9}
	tr.Apply(&regs)
	if !regs[2].IsClean() {
		t.Fatal("Apply must reset written register r2")
	}
	if regs[5].IsClean() {
		t.Fatal("Apply must not touch unwritten register r5")
	}
	if !regs[9].IsClean() {
		t.Fatal("writing an already-clean register stays clean")
	}
}
