package taint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestByteWord(t *testing.T) {
	w := ByteWord(42)
	for i := 0; i < 8; i++ {
		if !w.Bit(i).Contains(42) {
			t.Errorf("bit %d should carry tag 42", i)
		}
	}
	for i := 8; i < WordBits; i++ {
		if !w.Bit(i).IsEmpty() {
			t.Errorf("bit %d should be clean", i)
		}
	}
	if w.IsClean() {
		t.Error("ByteWord should not be clean")
	}
}

func TestTruncate(t *testing.T) {
	w := ByteWord(1)
	w = Shl(w, 12) // taint in bits 12..19
	got := w.Truncate(2)
	for i := 12; i < 16; i++ {
		if !got.Bit(i).Contains(1) {
			t.Errorf("bit %d lost taint after 2-byte truncate", i)
		}
	}
	for i := 16; i < 24; i++ {
		if !got.Bit(i).IsEmpty() {
			t.Errorf("bit %d should have been truncated", i)
		}
	}
}

func TestShlShrInverse(t *testing.T) {
	w := ByteWord(7)
	round := Shr(Shl(w, 20), 20)
	if !round.Equal(&w) {
		t.Error("Shr(Shl(w,20),20) should restore w for low-byte taint")
	}
}

func TestShlDropsHighBits(t *testing.T) {
	w := ByteWord(3)
	shifted := Shl(w, 60)
	// Bits 60..63 tainted, the rest clean.
	for i := 0; i < 60; i++ {
		if !shifted.Bit(i).IsEmpty() {
			t.Errorf("bit %d should be clean after Shl 60", i)
		}
	}
	for i := 60; i < 64; i++ {
		if !shifted.Bit(i).Contains(3) {
			t.Errorf("bit %d should carry tag 3", i)
		}
	}
	if out := Shl(w, 64); !out.IsClean() {
		t.Error("Shl by 64 should clear all taint")
	}
	if out := Shr(w, 64); !out.IsClean() {
		t.Error("Shr by 64 should clear all taint")
	}
}

func TestSarReplicatesSignTaint(t *testing.T) {
	var w Word
	w.SetBit(31, NewSet(9)) // sign bit of a 4-byte operand
	out := Sar(w, 4, 4)
	for i := 27; i <= 31; i++ {
		if !out.Bit(i).Contains(9) {
			t.Errorf("bit %d should carry the sign taint", i)
		}
	}
	if !out.Bit(26).IsEmpty() {
		t.Error("bit 26 should be clean")
	}
}

func TestAndMask(t *testing.T) {
	w := ByteWord(5)
	// Mask 0b1010: keeps bits 1 and 3 only.
	out := AndMask(w, 0xA)
	if !out.Bit(1).Contains(5) || !out.Bit(3).Contains(5) {
		t.Error("bits 1 and 3 should keep taint")
	}
	if !out.Bit(0).IsEmpty() || !out.Bit(2).IsEmpty() || !out.Bit(4).IsEmpty() {
		t.Error("masked-out bits should lose taint")
	}
}

func TestOrMask(t *testing.T) {
	w := ByteWord(5)
	out := OrMask(w, 0x3) // bits 0,1 forced to 1, lose taint
	if !out.Bit(0).IsEmpty() || !out.Bit(1).IsEmpty() {
		t.Error("or with constant 1 should destroy taint")
	}
	if !out.Bit(2).Contains(5) {
		t.Error("bit 2 should keep taint")
	}
}

func TestMergePerBit(t *testing.T) {
	a := ByteWord(1)
	b := Shl(ByteWord(2), 4)
	m := MergePerBit(a, b)
	if !m.Bit(0).Contains(1) || m.Bit(0).Contains(2) {
		t.Error("bit 0 should carry only tag 1")
	}
	for i := 4; i < 8; i++ {
		if !m.Bit(i).Contains(1) || !m.Bit(i).Contains(2) {
			t.Errorf("bit %d should carry tags 1 and 2", i)
		}
	}
	if !m.Bit(10).Contains(2) || m.Bit(10).Contains(1) {
		t.Error("bit 10 should carry only tag 2")
	}
}

func TestMergeAll(t *testing.T) {
	a := ByteWord(1)
	var b Word
	m := MergeAll(a, b)
	for i := 0; i < WordBits; i++ {
		if !m.Bit(i).Contains(1) {
			t.Errorf("bit %d should carry tag 1 after MergeAll", i)
		}
	}
	var c, d Word
	if out := MergeAll(c, d); !out.IsClean() {
		t.Error("MergeAll of clean words should be clean")
	}
}

func TestAddCarryAwareUpwardOnly(t *testing.T) {
	var a, b Word
	a.SetBit(3, NewSet(1))
	b.SetBit(5, NewSet(2))
	out := AddCarryAware(a, b)
	if !out.Bit(2).IsEmpty() {
		t.Error("bits below lowest tainted bit must stay clean")
	}
	if !out.Bit(3).Contains(1) || out.Bit(3).Contains(2) {
		t.Error("bit 3 should carry only tag 1")
	}
	if !out.Bit(4).Contains(1) {
		t.Error("carry propagates tag 1 to bit 4")
	}
	if !out.Bit(63).Contains(1) || !out.Bit(63).Contains(2) {
		t.Error("top bit should carry both tags through the carry chain")
	}
}

func TestRol(t *testing.T) {
	w := ByteWord(4) // bits 0..7
	out := Rol(w, 3, 1)
	// 1-byte rotate left 3: bits 3..7 and 0..2 tainted (all 8 still).
	for i := 0; i < 8; i++ {
		if !out.Bit(i).Contains(4) {
			t.Errorf("bit %d should stay tainted after full-byte rotate", i)
		}
	}
	var one Word
	one.SetBit(7, NewSet(1))
	out = Rol(one, 1, 1)
	if !out.Bit(0).Contains(1) {
		t.Error("bit 7 should wrap to bit 0 in 1-byte rotate")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var w Word
		for i := 0; i < WordBits; i++ {
			if r.Intn(3) == 0 {
				w.SetBit(i, NewSet(Tag(r.Intn(100))))
			}
		}
		bs := w.Bytes()
		back := FromBytes(bs[:])
		return back.Equal(&w)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("Bytes/FromBytes not inverse: %v", err)
	}
}

func TestAnyTainted(t *testing.T) {
	var w Word
	w.SetBit(13, NewSet(2))
	if !w.AnyTainted(8, 16) {
		t.Error("range covering bit 13 should be tainted")
	}
	if w.AnyTainted(0, 8) {
		t.Error("range 0-8 should be clean")
	}
	if w.AnyTainted(14, 64) {
		t.Error("range 14-64 should be clean")
	}
}

func TestAllTags(t *testing.T) {
	var w Word
	w.SetBit(0, NewSet(1))
	w.SetBit(40, NewSet(2, 3))
	u := w.AllTags()
	for _, tag := range []Tag{1, 2, 3} {
		if !u.Contains(tag) {
			t.Errorf("AllTags missing %d", tag)
		}
	}
	if u.Len() != 3 {
		t.Errorf("AllTags len = %d, want 3", u.Len())
	}
}

// Shift laws, property-checked: Shl distributes over per-bit merge.
func TestShiftMergeCommute(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := uint(nRaw % 64)
		var a, b Word
		for i := 0; i < WordBits; i++ {
			if r.Intn(4) == 0 {
				a.SetBit(i, NewSet(Tag(r.Intn(8))))
			}
			if r.Intn(4) == 0 {
				b.SetBit(i, NewSet(Tag(8+r.Intn(8))))
			}
		}
		lhs := Shl(MergePerBit(a, b), n)
		rhs := MergePerBit(Shl(a, n), Shl(b, n))
		return lhs.Equal(&rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("Shl does not distribute over merge: %v", err)
	}
}
