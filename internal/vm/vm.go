package vm

import (
	"errors"
	"fmt"

	"github.com/zipchannel/zipchannel/internal/isa"
)

// Syscall numbers (in r0 at the syscall instruction; arguments r1..r3,
// result in r0).
const (
	SysRead  = 0 // read(fd, buf, len) -> bytes read from the VM input
	SysWrite = 1 // write(fd, buf, len) -> bytes appended to the VM output
	SysExit  = 2 // exit(code) -> halts the machine
)

// ErrRunaway reports that the step budget was exhausted, guarding against
// victim programs that fail to terminate.
var ErrRunaway = errors.New("vm: step budget exhausted")

// ErrHalted reports a step attempt on a halted machine.
var ErrHalted = errors.New("vm: machine is halted")

// Hooks are the instrumentation callbacks, the simulated analogue of
// DynamoRIO's instruction and memory-event instrumentation. All hooks are
// optional.
type Hooks struct {
	// BeforeInstr runs before each instruction executes, with register
	// state still pre-instruction. TaintChannel does all taint propagation
	// here.
	BeforeInstr func(v *VM, in *isa.Instr)
	// OnLoad and OnStore run after a successful data memory access.
	OnLoad  func(v *VM, in *isa.Instr, addr uint64, width int, val uint64)
	OnStore func(v *VM, in *isa.Instr, addr uint64, width int, val uint64)
	// OnSyscallRead runs after a read syscall copied n input bytes to
	// bufAddr; firstIndex is the 1-based index of the first byte in the
	// overall input stream (TaintChannel's tag origin).
	OnSyscallRead func(v *VM, bufAddr uint64, n int, firstIndex int)
	// OnBlock is consulted by the compiled engine (compile.go) when an
	// instrumented machine reaches the start of basic block blockID
	// (indexing Blocks(v.Prog)). Returning true keeps the precise
	// per-instruction path; returning false runs the whole block on the
	// threaded fast path with NO per-instruction hooks fired — the client
	// asserts it does not need to observe this block execution. Ignored by
	// the interpreter and on machines with no per-instruction hooks.
	OnBlock func(v *VM, blockID int) bool
}

// VM is one simulated hardware thread executing a Program.
type VM struct {
	Prog  *isa.Program
	Mem   Memory
	Hooks Hooks

	Regs [isa.NumRegs]uint64
	PC   int
	ZF   bool // zero flag
	SF   bool // sign flag (at the width of the setting instruction)
	CF   bool // carry flag (unsigned borrow for cmp/sub)

	Halted   bool
	ExitCode uint64
	Steps    uint64
	MaxSteps uint64

	// Engine selects the Run execution strategy (compile.go). The zero
	// value EngineAuto means compiled whenever the machine is eligible
	// (flat memory); New seeds it from the process default.
	Engine Engine

	input    []byte
	inputPos int
	output   []byte

	// dec is the pre-decoded form of Prog.Instrs (decode.go); flat is the
	// memory devirtualized once at construction so the hot path can call
	// *FlatMemory methods directly instead of through the interface.
	dec  []dec
	flat *FlatMemory

	obs  vmObs
	pair *pairProfile
}

// DefaultMaxSteps bounds Run against non-terminating programs.
const DefaultMaxSteps = 500_000_000

// New creates a VM for prog with the given memory, copying the program's
// .init data into place.
func New(prog *isa.Program, mem Memory) (*VM, error) {
	v := &VM{Prog: prog, Mem: mem, PC: prog.Entry, MaxSteps: DefaultMaxSteps, Engine: DefaultEngine()}
	v.dec = decodeProgram(prog)
	v.flat, _ = mem.(*FlatMemory)
	type rawWriter interface{ WriteBytes(uint64, []byte) error }
	for _, init := range prog.Init {
		w, ok := mem.(rawWriter)
		if !ok {
			return nil, fmt.Errorf("vm: memory type %T cannot hold .init data", mem)
		}
		if err := w.WriteBytes(init.Addr, init.Bytes); err != nil {
			return nil, fmt.Errorf("vm: init data: %w", err)
		}
	}
	return v, nil
}

// NewFlat creates a VM with a flat memory sized for the program's data
// segment plus a stack region above it.
func NewFlat(prog *isa.Program) (*VM, error) {
	const stack = 64 * 1024
	mem := NewFlatMemory(prog.DataBase, prog.DataSize+stack)
	v, err := New(prog, mem)
	if err != nil {
		return nil, err
	}
	v.Regs[isa.SP] = prog.DataBase + prog.DataSize + stack
	return v, nil
}

// SetInput installs the bytes the read syscall will serve.
func (v *VM) SetInput(b []byte) {
	v.input = b
	v.inputPos = 0
}

// InputPos returns how many input bytes have been consumed.
func (v *VM) InputPos() int { return v.inputPos }

// Output returns the bytes written via the write syscall.
func (v *VM) Output() []byte { return v.output }

// Run executes until halt, fault, or error. A *Fault return leaves the
// machine resumable: the faulting instruction has had no effect and will
// re-execute on the next Run or Step.
//
// Run dispatches to the compiled (threaded-code) engine when the machine
// is eligible — flat memory, engine not forced to interp, no pair
// profiler attached — and to the interpreter loop otherwise. Both
// produce bit-identical machine state, output, errors, and obs totals.
func (v *VM) Run() error {
	if v.useCompiled() {
		return v.runCompiled(engineFor(v.Prog))
	}
	for !v.Halted {
		if err := v.Step(); err != nil {
			return err
		}
	}
	return nil
}

// useCompiled reports whether Run should take the compiled engine. Paged
// (SGX) memory always interprets: the fast path has no fault/resume
// story. The opcode-pair profiler is interpreter-only by design.
func (v *VM) useCompiled() bool {
	if v.flat == nil || v.pair != nil {
		return false
	}
	return v.Engine != EngineInterp
}

// Step executes a single instruction. On *Fault the PC is unchanged.
func (v *VM) Step() error {
	if v.Halted {
		return ErrHalted
	}
	if v.Steps >= v.MaxSteps {
		return fmt.Errorf("%w after %d steps", ErrRunaway, v.Steps)
	}
	if v.PC < 0 || v.PC >= len(v.Prog.Instrs) {
		return fmt.Errorf("vm: pc %d outside program (%d instrs)", v.PC, len(v.Prog.Instrs))
	}
	in := &v.Prog.Instrs[v.PC]
	d := &v.dec[v.PC]
	if v.Hooks.BeforeInstr != nil {
		v.Hooks.BeforeInstr(v, in)
	}
	next := v.PC + 1
	var err error
	switch d.op {
	case isa.OpNop:
	case isa.OpHalt:
		v.Halted = true
	case isa.OpMov:
		v.Regs[d.dstReg] = v.srcVal(d) & d.wmask
	case isa.OpLea:
		v.Regs[d.dstReg] = v.ea(&d.ea)
	case isa.OpLd:
		addr := v.ea(&d.ea)
		var val uint64
		val, err = v.load(addr, int(d.width))
		if err == nil {
			v.Regs[d.dstReg] = val
			if v.Hooks.OnLoad != nil {
				v.Hooks.OnLoad(v, in, addr, int(d.width), val)
			}
		}
	case isa.OpSt:
		addr := v.ea(&d.ea)
		val := v.srcVal(d) & d.wmask
		err = v.store(addr, int(d.width), val)
		if err == nil && v.Hooks.OnStore != nil {
			v.Hooks.OnStore(v, in, addr, int(d.width), val)
		}
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar, isa.OpRol:
		err = v.alu(in, d)
	case isa.OpNot:
		v.Regs[d.dstReg] = ^v.Regs[d.dstReg] & d.wmask
	case isa.OpNeg:
		v.Regs[d.dstReg] = -v.Regs[d.dstReg] & d.wmask
	case isa.OpCmp:
		dv := v.Regs[d.dstReg] & d.wmask
		s := v.srcVal(d) & d.wmask
		v.setFlagsW(dv-s, d)
		v.CF = dv < s
	case isa.OpTest:
		dv := v.Regs[d.dstReg] & d.wmask
		s := v.srcVal(d) & d.wmask
		v.setFlagsW(dv&s, d)
		v.CF = false
	case isa.OpJmp:
		next = int(d.target)
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge,
		isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
		if v.condition(d.op) {
			next = int(d.target)
		}
	case isa.OpPush:
		v.Regs[isa.SP] -= 8
		err = v.store(v.Regs[isa.SP], 8, v.srcVal(d))
		if err != nil {
			v.Regs[isa.SP] += 8 // undo for clean fault retry
		}
	case isa.OpPop:
		var val uint64
		val, err = v.load(v.Regs[isa.SP], 8)
		if err == nil {
			v.Regs[d.dstReg] = val
			v.Regs[isa.SP] += 8
		}
	case isa.OpCall:
		v.Regs[isa.SP] -= 8
		err = v.store(v.Regs[isa.SP], 8, uint64(v.PC+1))
		if err != nil {
			v.Regs[isa.SP] += 8
		} else {
			next = int(d.target)
		}
	case isa.OpRet:
		var val uint64
		val, err = v.load(v.Regs[isa.SP], 8)
		if err == nil {
			v.Regs[isa.SP] += 8
			next = int(val)
		}
	case isa.OpSyscall:
		err = v.syscall()
	default:
		return fmt.Errorf("vm: unimplemented opcode %v at pc %d", in.Op, v.PC)
	}
	if err != nil {
		var f *Fault
		if errors.As(err, &f) {
			v.obs.faults.Inc()
			return f // PC untouched: resumable
		}
		return fmt.Errorf("vm: pc %d (%s): %w", v.PC, in, err)
	}
	v.PC = next
	v.Steps++
	v.obs.instructions.Inc()
	v.obs.ops[d.op].Inc()
	if v.pair != nil {
		v.pair.record(d.op)
	}
	return nil
}

// load and store route data accesses through the devirtualized flat memory
// when possible; the interface path remains for paged (SGX) memory.
func (v *VM) load(addr uint64, width int) (uint64, error) {
	if v.flat != nil {
		return v.flat.Load(addr, width)
	}
	return v.Mem.Load(addr, width)
}

func (v *VM) store(addr uint64, width int, val uint64) error {
	if v.flat != nil {
		return v.flat.Store(addr, width, val)
	}
	return v.Mem.Store(addr, width, val)
}

func (v *VM) srcVal(d *dec) uint64 {
	if d.srcIsReg {
		return v.Regs[d.srcReg]
	}
	return d.imm
}

func (v *VM) alu(in *isa.Instr, d *dec) error {
	w := int(d.width)
	src := v.srcVal(d) & d.wmask

	if d.dstIsMem {
		// Read-modify-write form (add [ftab + r*4], 1).
		addr := v.ea(&d.ea)
		old, err := v.load(addr, w)
		if err != nil {
			return err
		}
		res := aluCompute(d.op, old, src, w) & d.wmask
		if err := v.store(addr, w, res); err != nil {
			return err
		}
		if v.Hooks.OnLoad != nil {
			v.Hooks.OnLoad(v, in, addr, w, old)
		}
		if v.Hooks.OnStore != nil {
			v.Hooks.OnStore(v, in, addr, w, res)
		}
		v.setFlagsW(res, d)
		return nil
	}

	dv := v.Regs[d.dstReg] & d.wmask
	if (d.op == isa.OpDiv || d.op == isa.OpMod) && src == 0 {
		return fmt.Errorf("division by zero")
	}
	res := aluCompute(d.op, dv, src, w) & d.wmask
	v.Regs[d.dstReg] = res
	v.setFlagsW(res, d)
	if d.op == isa.OpSub {
		v.CF = dv < src
	}
	return nil
}

func aluCompute(op isa.Op, d, s uint64, w int) uint64 {
	bits := uint(w * 8)
	switch op {
	case isa.OpAdd:
		return d + s
	case isa.OpSub:
		return d - s
	case isa.OpMul:
		return d * s
	case isa.OpDiv:
		return d / s
	case isa.OpMod:
		return d % s
	case isa.OpAnd:
		return d & s
	case isa.OpOr:
		return d | s
	case isa.OpXor:
		return d ^ s
	case isa.OpShl:
		if s >= uint64(bits) {
			return 0
		}
		return d << s
	case isa.OpShr:
		if s >= uint64(bits) {
			return 0
		}
		return d >> s
	case isa.OpSar:
		sh := s
		if sh >= uint64(bits) {
			sh = uint64(bits) - 1
		}
		signed := int64(d<<(64-bits)) >> (64 - bits) // sign-extend from width
		return uint64(signed>>sh) & mask(w)
	case isa.OpRol:
		sh := s % uint64(bits)
		return (d<<sh | d>>(uint64(bits)-sh))
	default:
		panic(fmt.Sprintf("vm: aluCompute called with %v", op))
	}
}

func (v *VM) condition(op isa.Op) bool {
	switch op {
	case isa.OpJe:
		return v.ZF
	case isa.OpJne:
		return !v.ZF
	case isa.OpJl:
		return v.SF
	case isa.OpJle:
		return v.SF || v.ZF
	case isa.OpJg:
		return !v.SF && !v.ZF
	case isa.OpJge:
		return !v.SF
	case isa.OpJb:
		return v.CF
	case isa.OpJbe:
		return v.CF || v.ZF
	case isa.OpJa:
		return !v.CF && !v.ZF
	case isa.OpJae:
		return !v.CF
	default:
		panic(fmt.Sprintf("vm: condition called with %v", op))
	}
}

func (v *VM) syscall() error {
	switch v.Regs[isa.R0] {
	case SysRead:
		buf, n := v.Regs[isa.R2], int(v.Regs[isa.R3])
		avail := len(v.input) - v.inputPos
		if n > avail {
			n = avail
		}
		first := v.inputPos + 1
		if v.flat != nil && n > 0 {
			// Bulk copy on flat memory: syscall stores bypass data-access
			// hooks, so one WriteBytes is observationally identical to the
			// byte loop (an out-of-range error is fatal either way).
			if err := v.flat.WriteBytes(buf, v.input[v.inputPos:v.inputPos+n]); err != nil {
				return err
			}
		} else {
			// Per-byte path for paged memory: a mid-copy fault must leave
			// the earlier bytes written, exactly as before.
			for i := 0; i < n; i++ {
				if err := v.Mem.Store(buf+uint64(i), 1, uint64(v.input[v.inputPos+i])); err != nil {
					return err
				}
			}
		}
		v.inputPos += n
		v.Regs[isa.R0] = uint64(n)
		v.obs.sysRead.Inc()
		if n > 0 && v.Hooks.OnSyscallRead != nil {
			v.Hooks.OnSyscallRead(v, buf, n, first)
		}
	case SysWrite:
		buf, n := v.Regs[isa.R2], int(v.Regs[isa.R3])
		if v.flat != nil && n > 0 {
			off, err := v.flat.offset(buf, n)
			if err != nil {
				return err
			}
			v.output = append(v.output, v.flat.data[off:off+uint64(n)]...)
		} else {
			for i := 0; i < n; i++ {
				b, err := v.Mem.Load(buf+uint64(i), 1)
				if err != nil {
					return err
				}
				v.output = append(v.output, byte(b))
			}
		}
		v.Regs[isa.R0] = uint64(n)
		v.obs.sysWrite.Inc()
	case SysExit:
		v.ExitCode = v.Regs[isa.R1]
		v.Halted = true
		v.obs.sysExit.Inc()
	default:
		return fmt.Errorf("unknown syscall %d", v.Regs[isa.R0])
	}
	return nil
}

// EffectiveAddr computes the address of a memory operand from current
// register state.
func (v *VM) EffectiveAddr(m isa.MemRef) uint64 {
	addr := uint64(m.Disp)
	if m.HasBase {
		addr += v.Regs[m.Base]
	}
	if m.HasIndex {
		addr += v.Regs[m.Index] * uint64(m.Scale)
	}
	return addr
}

func (v *VM) operandValue(o isa.Operand) uint64 {
	switch o.Kind {
	case isa.KindReg:
		return v.Regs[o.Reg]
	case isa.KindImm:
		return uint64(o.Imm)
	default:
		panic("vm: operandValue on memory operand")
	}
}

func (v *VM) setReg(r isa.Reg, val uint64) { v.Regs[r] = val }

func (v *VM) setFlags(res uint64, w int) {
	res = truncate(res, w)
	v.ZF = res == 0
	v.SF = res&(1<<uint(w*8-1)) != 0
}

// setFlagsW is setFlags with the width mask and sign bit pre-computed.
func (v *VM) setFlagsW(res uint64, d *dec) {
	res &= d.wmask
	v.ZF = res == 0
	v.SF = res&d.sbit != 0
}

func truncate(v uint64, w int) uint64 { return v & mask(w) }

func mask(w int) uint64 {
	if w >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w*8)) - 1
}
