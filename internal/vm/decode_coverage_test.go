package vm

import (
	"math/rand"
	"testing"

	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/victims"
)

// memOperand returns the instruction's memory operand, if it has one.
func memOperand(in *isa.Instr) (isa.MemRef, bool) {
	if in.Src.Kind == isa.KindMem {
		return in.Src.Mem, true
	}
	if in.Dst.Kind == isa.KindMem {
		return in.Dst.Mem, true
	}
	return isa.MemRef{}, false
}

// TestDecodeCoverage walks every victim program and asserts that every
// instruction — every opcode and every effective-address mode the
// victims use — reaches a decoded form and a compiled step function.
// It also checks that the victim corpus collectively exercises all four
// EA modes, including eaIndex (index*scale+disp with no base register):
// that mode used to be dead weight in the decoder until LZWHashProbe's
// [htab + r6*8] probe; this test keeps it reachable.
func TestDecodeCoverage(t *testing.T) {
	opsSeen := map[isa.Op]bool{}
	modesSeen := map[uint8]bool{}

	for name, prog := range victims.All() {
		dec := decodeProgram(prog)
		if len(dec) != len(prog.Instrs) {
			t.Fatalf("%s: decoded %d of %d instructions", name, len(dec), len(prog.Instrs))
		}
		eng := engineFor(prog)
		if len(eng.fns) != len(prog.Instrs) {
			t.Fatalf("%s: compiled %d of %d instructions", name, len(eng.fns), len(prog.Instrs))
		}
		for pc := range prog.Instrs {
			in := &prog.Instrs[pc]
			d := &dec[pc]
			if d.op != in.Op {
				t.Errorf("%s pc %d: decoded op %v, want %v", name, pc, d.op, in.Op)
			}
			if eng.fns[pc] == nil {
				t.Errorf("%s pc %d: no compiled step for %v", name, pc, in.Op)
			}
			opsSeen[in.Op] = true
			if m, ok := memOperand(in); ok {
				e := decodeEA(m)
				modesSeen[e.mode] = true
				switch {
				case m.HasBase && m.HasIndex:
					if e.mode != eaBaseIndex {
						t.Errorf("%s pc %d: base+index decoded as mode %d", name, pc, e.mode)
					}
				case m.HasBase:
					if e.mode != eaBase {
						t.Errorf("%s pc %d: base-only decoded as mode %d", name, pc, e.mode)
					}
				case m.HasIndex:
					if e.mode != eaIndex {
						t.Errorf("%s pc %d: index-only decoded as mode %d", name, pc, e.mode)
					}
				default:
					if e.mode != eaDisp {
						t.Errorf("%s pc %d: disp-only decoded as mode %d", name, pc, e.mode)
					}
				}
			}
		}
	}

	// The victims address tables as symbol+index ([ftab + r2*4] decodes
	// to eaIndex: the symbol is a displacement, not a base register), so
	// the corpus covers disp, base, and index modes; base+index needs two
	// registers and is exercised by an inline program below.
	for _, mode := range []struct {
		m    uint8
		name string
	}{{eaDisp, "disp"}, {eaBase, "base"}, {eaIndex, "index(no base)"}} {
		if !modesSeen[mode.m] {
			t.Errorf("victim corpus never exercises EA mode %s", mode.name)
		}
	}
	baseIndex, err := isa.Assemble("baseindex.zasm", `
.data buf 128 align=64
main:
  lea r1, [buf]
  mov r2, 3
  ld.8 r3, [r1 + r2*8]
  halt
`)
	if err != nil {
		t.Fatalf("base+index program: %v", err)
	}
	m, ok := memOperand(&baseIndex.Instrs[2])
	if !ok || decodeEA(m).mode != eaBaseIndex {
		t.Fatalf("[r1 + r2*8] did not decode to eaBaseIndex")
	}
	if v, err := NewFlat(baseIndex); err != nil || v.Run() != nil {
		t.Fatalf("base+index program failed to run (err=%v)", err)
	}
	// The ops the paper's gadget miniatures are built from; a victim edit
	// that drops one silently shrinks what the differential tests cover.
	for _, op := range []isa.Op{
		isa.OpMov, isa.OpLea, isa.OpLd, isa.OpSt, isa.OpAdd, isa.OpSub,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpCmp, isa.OpJne, isa.OpSyscall, isa.OpHalt,
	} {
		if !opsSeen[op] {
			t.Errorf("victim corpus never uses op %v", op)
		}
	}
}

// TestDecodedEAMatchesEffectiveAddr drives ea() and EffectiveAddr over
// every victim memory operand with randomized register files: the
// pre-decoded shift-based form must agree with the interpreter's
// flag-based form on every MemRef the assembler can produce.
func TestDecodedEAMatchesEffectiveAddr(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for name, prog := range victims.All() {
		v, err := NewFlat(prog)
		if err != nil {
			t.Fatalf("NewFlat(%s): %v", name, err)
		}
		for trial := 0; trial < 64; trial++ {
			for r := range v.Regs {
				v.Regs[r] = rng.Uint64()
			}
			for pc := range prog.Instrs {
				m, ok := memOperand(&prog.Instrs[pc])
				if !ok {
					continue
				}
				e := decodeEA(m)
				if got, want := v.ea(&e), v.EffectiveAddr(m); got != want {
					t.Fatalf("%s pc %d trial %d: ea()=%#x, EffectiveAddr=%#x", name, pc, trial, got, want)
				}
			}
		}
	}
}
