package vm

import (
	"testing"

	"github.com/zipchannel/zipchannel/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble("test.zasm", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBlocksPartition(t *testing.T) {
	// entry, a two-block loop, and an exit path: leaders are instruction
	// 0, the loop target, and the instruction after each terminator.
	p := mustAssemble(t, `
main:
  mov r1, 10
loop:
  sub r1, 1
  cmp r1, 0
  jg loop
  mov r2, 1
  halt
`)
	blocks := Blocks(p)
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	// Blocks must tile the program contiguously.
	if blocks[0].Start != 0 {
		t.Fatalf("first block starts at %d", blocks[0].Start)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Start != blocks[i-1].End {
			t.Fatalf("gap between blocks %d and %d", i-1, i)
		}
	}
	if blocks[len(blocks)-1].End != len(p.Instrs) {
		t.Fatalf("last block ends at %d, program has %d instrs", blocks[len(blocks)-1].End, len(p.Instrs))
	}
	// Every jump target must be a block leader, and every terminator a
	// block end.
	leaders := map[int]bool{}
	for _, b := range blocks {
		leaders[b.Start] = true
	}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if in.Op.IsJump() && !leaders[in.Target] {
			t.Errorf("jump target %d is not a block leader", in.Target)
		}
		if isTerminator(in.Op) {
			end := false
			for _, b := range blocks {
				if b.End == pc+1 {
					end = true
				}
			}
			if !end {
				t.Errorf("terminator at pc %d does not end a block", pc)
			}
		}
	}
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Engine
	}{{"auto", EngineAuto}, {"interp", EngineInterp}, {"compiled", EngineCompiled}} {
		got, err := ParseEngine(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", tc.s, got, err, tc.want)
		}
		if got.String() != tc.s {
			t.Errorf("Engine(%v).String() = %q, want %q", got, got.String(), tc.s)
		}
	}
	if _, err := ParseEngine("jit"); err == nil {
		t.Error("ParseEngine(\"jit\") should fail")
	}
}

func TestDefaultEngine(t *testing.T) {
	old := DefaultEngine()
	defer SetDefaultEngine(old)

	SetDefaultEngine(EngineInterp)
	p := mustAssemble(t, "main:\n  mov r1, 1\n  halt\n")
	v, err := NewFlat(p)
	if err != nil {
		t.Fatal(err)
	}
	if v.Engine != EngineInterp {
		t.Fatalf("New did not seed Engine from the process default: got %v", v.Engine)
	}
}

func TestPairProfileForcesInterp(t *testing.T) {
	p := mustAssemble(t, `
main:
  mov r1, 3
loop:
  sub r1, 1
  cmp r1, 0
  jg loop
  halt
`)
	v, err := NewFlat(p)
	if err != nil {
		t.Fatal(err)
	}
	v.AttachPairProfile()
	if v.useCompiled() {
		t.Fatal("pair profiling must force the interpreter")
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	pairs := v.PairProfile()
	if len(pairs) == 0 {
		t.Fatal("no pairs recorded")
	}
	var total uint64
	for i, pc := range pairs {
		total += pc.N
		if i > 0 && pairs[i-1].N < pc.N {
			t.Fatal("pairs not sorted most-frequent first")
		}
	}
	if total != v.Steps-1 {
		t.Fatalf("pair count total %d, want steps-1 = %d", total, v.Steps-1)
	}
	// The loop's hot pair must dominate: sub->cmp or cmp->jg.
	hot := pairs[0]
	if !(hot.First == isa.OpSub && hot.Second == isa.OpCmp) &&
		!(hot.First == isa.OpCmp && hot.Second == isa.OpJg) &&
		!(hot.First == isa.OpJg && hot.Second == isa.OpSub) {
		t.Errorf("unexpected hottest pair %v->%v", hot.First, hot.Second)
	}
}
