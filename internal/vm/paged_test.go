package vm

import (
	"errors"
	"testing"

	"github.com/zipchannel/zipchannel/internal/isa"
)

func TestPagedBasicRW(t *testing.T) {
	m := NewPagedMemory()
	m.Map(4, 100, PermRW) // vaddr 0x4000 -> frame 100
	if err := m.Store(4*PageSize+8, 4, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(4*PageSize+8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Errorf("load = %#x", v)
	}
}

func TestPagedFaultOnPerm(t *testing.T) {
	m := NewPagedMemory()
	m.Map(1, 5, PermRead)
	if _, err := m.Load(PageSize, 1); err != nil {
		t.Fatalf("read should succeed: %v", err)
	}
	err := m.Store(PageSize+12, 1, 1)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if !f.Write || f.Addr != PageSize+12 {
		t.Errorf("fault = %+v", f)
	}
	// Revoking read must fault loads too.
	if err := m.Protect(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(PageSize, 1); !errors.As(err, &f) {
		t.Errorf("want Fault after protect, got %v", err)
	}
	// Restore and retry.
	if err := m.Protect(1, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(PageSize+12, 1, 1); err != nil {
		t.Errorf("store after restore: %v", err)
	}
}

func TestPagedUnmapped(t *testing.T) {
	m := NewPagedMemory()
	if _, err := m.Load(0x9999, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("want ErrOutOfRange, got %v", err)
	}
}

func TestPagedCrossPageRejected(t *testing.T) {
	m := NewPagedMemory()
	m.Map(0, 1, PermRW)
	m.Map(1, 2, PermRW)
	if _, err := m.Load(PageSize-2, 4); err == nil {
		t.Error("cross-page access should be rejected")
	}
}

func TestPagedRemapPreservesContents(t *testing.T) {
	m := NewPagedMemory()
	m.Map(2, 10, PermRW)
	if err := m.Store(2*PageSize+100, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if err := m.Remap(2, 99); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(2*PageSize+100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Errorf("contents lost after remap: %#x", v)
	}
	if f, _ := m.FrameOf(2 * PageSize); f != 99 {
		t.Errorf("frame = %d, want 99", f)
	}
}

func TestPagedObserverSeesPhysical(t *testing.T) {
	m := NewPagedMemory()
	m.Map(3, 7, PermRW)
	var got []uint64
	m.SetObserver(func(paddr uint64, _ int, _ bool) { got = append(got, paddr) })
	if _, err := m.Load(3*PageSize+5, 1); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7*PageSize+5 {
		t.Errorf("observer saw %#v, want [%#x]", got, 7*PageSize+5)
	}
}

func TestPagedWriteReadBytesAcrossPages(t *testing.T) {
	m := NewPagedMemory()
	m.Map(0, 1, PermRW)
	m.Map(1, 2, PermRW)
	data := make([]byte, PageSize+10)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.WriteBytes(5, data); err != nil {
		t.Fatal(err)
	}
	back, err := m.ReadBytes(5, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, back[i], data[i])
		}
	}
}

// The controlled-channel pattern: run a VM on paged memory, fault on a
// protected page, restore permission, resume, and complete.
func TestVMFaultResume(t *testing.T) {
	prog := isa.MustAssemble("fault", `
.base 0x10000
.data buf 64
main:
  mov r1, 1
  st.1 [buf], 77
  mov r2, 2
  halt
`)
	m := NewPagedMemory()
	vpn := prog.DataBase / PageSize
	m.Map(vpn, 1, PermRead) // data page read-only
	// Stack page.
	v, err := New(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	err = v.Run()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if f.Addr != prog.MustSymbol("buf").Addr {
		t.Errorf("fault addr = %#x, want buf", f.Addr)
	}
	if v.Regs[isa.R1] != 1 || v.Regs[isa.R2] != 0 {
		t.Error("fault should land between mov r1 and mov r2")
	}
	if err := m.Protect(vpn, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := m.Load(prog.MustSymbol("buf").Addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 || v.Regs[isa.R2] != 2 {
		t.Error("store did not complete after resume")
	}
}
