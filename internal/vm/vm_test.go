package vm

import (
	"errors"
	"testing"

	"github.com/zipchannel/zipchannel/internal/isa"
)

func runSrc(t *testing.T, src string, input []byte) *VM {
	t.Helper()
	prog, err := isa.Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	v, err := NewFlat(prog)
	if err != nil {
		t.Fatalf("NewFlat: %v", err)
	}
	v.SetInput(input)
	if err := v.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	v := runSrc(t, `
main:
  mov r1, 10
  add r1, 32     ; 42
  mov r2, r1
  sub r2, 2      ; 40
  mul r2, 3      ; 120
  mov r3, r2
  div r3, 7      ; 17
  mov r4, r2
  mod r4, 7      ; 1
  halt
`, nil)
	for _, tc := range []struct {
		reg  isa.Reg
		want uint64
	}{{isa.R1, 42}, {isa.R2, 120}, {isa.R3, 17}, {isa.R4, 1}} {
		if v.Regs[tc.reg] != tc.want {
			t.Errorf("r%d = %d, want %d", tc.reg, v.Regs[tc.reg], tc.want)
		}
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	v := runSrc(t, `
main:
  mov r1, 0xf0f0
  and r1, 0xff00   ; 0xf000
  mov r2, 0x0f
  or r2, 0xf0      ; 0xff
  mov r3, 0xaa
  xor r3, 0xff     ; 0x55
  mov r4, 1
  shl r4, 12       ; 0x1000
  mov r5, 0x1000
  shr r5, 4        ; 0x100
  mov r6, 0x80
  sar.1 r6, 3      ; 0xf0 (sign-extended at byte width)
  mov r7, 0x81
  rol.1 r7, 1      ; 0x03
  halt
`, nil)
	for _, tc := range []struct {
		reg  isa.Reg
		want uint64
	}{
		{isa.R1, 0xf000}, {isa.R2, 0xff}, {isa.R3, 0x55},
		{isa.R4, 0x1000}, {isa.R5, 0x100}, {isa.R6, 0xf0}, {isa.R7, 0x03},
	} {
		if v.Regs[tc.reg] != tc.want {
			t.Errorf("r%d = %#x, want %#x", tc.reg, v.Regs[tc.reg], tc.want)
		}
	}
}

func TestNarrowWidthZeroExtend(t *testing.T) {
	v := runSrc(t, `
main:
  mov r1, 0x1234
  mov.1 r2, r1    ; 0x34
  mov r3, 0xffff
  add.1 r3, 1     ; 0x00 (wraps at byte width, zero-extended)
  halt
`, nil)
	if v.Regs[isa.R2] != 0x34 {
		t.Errorf("r2 = %#x, want 0x34", v.Regs[isa.R2])
	}
	if v.Regs[isa.R3] != 0 {
		t.Errorf("r3 = %#x, want 0", v.Regs[isa.R3])
	}
}

func TestLoadStore(t *testing.T) {
	v := runSrc(t, `
.data buf 64
main:
  mov r1, 0x11223344aabbccdd
  st.8 [buf], r1
  ld.4 r2, [buf]        ; 0xaabbccdd
  ld.2 r3, [buf + 2]    ; 0xaabb
  ld.1 r4, [buf + 7]    ; 0x11
  mov r5, 3
  st.1 [buf + r5*2 + 1], 0x99   ; buf[7] = 0x99
  ld.1 r6, [buf + 7]
  halt
`, nil)
	for _, tc := range []struct {
		reg  isa.Reg
		want uint64
	}{{isa.R2, 0xaabbccdd}, {isa.R3, 0xaabb}, {isa.R4, 0x11}, {isa.R6, 0x99}} {
		if v.Regs[tc.reg] != tc.want {
			t.Errorf("r%d = %#x, want %#x", tc.reg, v.Regs[tc.reg], tc.want)
		}
	}
}

func TestMemoryDestALU(t *testing.T) {
	v := runSrc(t, `
.data ctr 16
main:
  st.4 [ctr], 5
  add.4 [ctr], 3
  add.4 [ctr], 1
  ld.4 r1, [ctr]
  halt
`, nil)
	if v.Regs[isa.R1] != 9 {
		t.Errorf("ctr = %d, want 9", v.Regs[isa.R1])
	}
}

func TestConditionals(t *testing.T) {
	// Compute max(7, 12) unsigned and signed min(-1, 3) at byte width.
	v := runSrc(t, `
main:
  mov r1, 7
  mov r2, 12
  mov r3, r1
  cmp r1, r2
  ja done1
  mov r3, r2
done1:
  mov r4, 0xff      ; -1 as a byte
  mov r5, 3
  mov r6, r5
  cmp.1 r4, r5
  jge done2
  mov r6, r4
done2:
  halt
`, nil)
	if v.Regs[isa.R3] != 12 {
		t.Errorf("unsigned max = %d, want 12", v.Regs[isa.R3])
	}
	if v.Regs[isa.R6] != 0xff {
		t.Errorf("signed min = %#x, want 0xff", v.Regs[isa.R6])
	}
}

func TestLoopSum(t *testing.T) {
	v := runSrc(t, `
main:
  mov r1, 0    ; i
  mov r2, 0    ; sum
loop:
  add r2, r1
  add r1, 1
  cmp r1, 101
  jne loop
  halt
`, nil)
	if v.Regs[isa.R2] != 5050 {
		t.Errorf("sum = %d, want 5050", v.Regs[isa.R2])
	}
}

func TestCallRetAndStack(t *testing.T) {
	v := runSrc(t, `
.entry main
double:
  add r1, r1
  ret
main:
  mov r1, 21
  call double
  push r1
  mov r1, 0
  pop r2
  halt
`, nil)
	if v.Regs[isa.R2] != 42 {
		t.Errorf("r2 = %d, want 42", v.Regs[isa.R2])
	}
}

func TestSyscallReadWrite(t *testing.T) {
	v := runSrc(t, `
.data buf 32
main:
  mov r0, 0      ; read
  mov r1, 0
  mov r2, 0
  lea r2, [buf]
  mov r3, 5
  syscall
  mov r4, r0     ; bytes read
  mov r0, 1      ; write them back
  lea r2, [buf]
  mov r3, r4
  syscall
  mov r0, 2
  mov r1, 7
  syscall        ; exit(7)
`, []byte("hello world"))
	if v.Regs[isa.R4] != 5 {
		t.Errorf("read returned %d, want 5", v.Regs[isa.R4])
	}
	if string(v.Output()) != "hello" {
		t.Errorf("output = %q, want hello", v.Output())
	}
	if v.ExitCode != 7 {
		t.Errorf("exit code = %d, want 7", v.ExitCode)
	}
	if !v.Halted {
		t.Error("machine should be halted")
	}
}

func TestReadEOF(t *testing.T) {
	v := runSrc(t, `
.data buf 8
main:
  mov r0, 0
  lea r2, [buf]
  mov r3, 8
  syscall
  mov r4, r0
  mov r0, 0
  lea r2, [buf]
  mov r3, 8
  syscall
  mov r5, r0
  halt
`, []byte("abc"))
	if v.Regs[isa.R4] != 3 {
		t.Errorf("first read = %d, want 3", v.Regs[isa.R4])
	}
	if v.Regs[isa.R5] != 0 {
		t.Errorf("second read = %d, want 0 (EOF)", v.Regs[isa.R5])
	}
}

func TestHooksFire(t *testing.T) {
	prog := isa.MustAssemble("hooks", `
.data buf 16
main:
  mov r0, 0
  lea r2, [buf]
  mov r3, 4
  syscall
  ld.1 r1, [buf]
  st.1 [buf + 8], r1
  halt
`)
	v, err := NewFlat(prog)
	if err != nil {
		t.Fatal(err)
	}
	v.SetInput([]byte("WXYZ"))
	var instrs, loads, stores, reads int
	var firstTag int
	v.Hooks = Hooks{
		BeforeInstr: func(*VM, *isa.Instr) { instrs++ },
		OnLoad:      func(_ *VM, _ *isa.Instr, _ uint64, _ int, val uint64) { loads++; _ = val },
		OnStore:     func(*VM, *isa.Instr, uint64, int, uint64) { stores++ },
		OnSyscallRead: func(_ *VM, _ uint64, n, first int) {
			reads += n
			firstTag = first
		},
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if instrs != 7 {
		t.Errorf("BeforeInstr fired %d times, want 7", instrs)
	}
	if loads != 1 || stores != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", loads, stores)
	}
	if reads != 4 || firstTag != 1 {
		t.Errorf("reads=%d firstTag=%d, want 4/1", reads, firstTag)
	}
}

func TestRunawayGuard(t *testing.T) {
	prog := isa.MustAssemble("spin", "main:\n jmp main\n")
	v, err := NewFlat(prog)
	if err != nil {
		t.Fatal(err)
	}
	v.MaxSteps = 1000
	err = v.Run()
	if !errors.Is(err, ErrRunaway) {
		t.Errorf("err = %v, want ErrRunaway", err)
	}
}

func TestDivByZero(t *testing.T) {
	prog := isa.MustAssemble("dz", "main:\n mov r1, 1\n mov r2, 0\n div r1, r2\n halt\n")
	v, _ := NewFlat(prog)
	if err := v.Run(); err == nil {
		t.Error("division by zero should error")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	prog := isa.MustAssemble("oor", "main:\n ld.1 r1, [r2]\n halt\n")
	v, _ := NewFlat(prog) // r2 = 0, below DataBase
	if err := v.Run(); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v, want ErrOutOfRange", err)
	}
}

func TestStepOnHalted(t *testing.T) {
	prog := isa.MustAssemble("h", "main:\n halt\n")
	v, _ := NewFlat(prog)
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if err := v.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}
