package vm

import (
	"math/bits"
	"sync"

	"github.com/zipchannel/zipchannel/internal/isa"
)

// Pre-decoded instruction forms. The isa.Instr struct is built for
// assembly/disassembly fidelity, not for interpretation: every operand
// access re-branches on operand kind, addressing-mode flags, and width.
// decodeProgram flattens each instruction once into a compact dec record —
// operand kind resolved to a boolean, width resolved to a mask, the
// effective-address expression classified into one of four modes with the
// scale turned into a shift — so Step's dispatch reads pre-computed fields
// instead of re-deriving them hundreds of millions of times.

// Effective-address modes. The register+disp form (eaBase) — the
// ftab/head/htab accesses of every victim gadget — costs a single add at
// run time. eaDisp doubles as the zero value: an instruction with no
// memory operand decodes to a harmless absolute-zero EA that nothing
// reads. eaIndex (index*scale+disp, no base) is real, not a leftover:
// the assembler folds data symbols into Disp, so `[htab + r6*8]` decodes
// to HasIndex without HasBase (see TestDecodeCoverage).
const (
	eaDisp uint8 = iota
	eaBase
	eaBaseIndex
	eaIndex
)

type eaDec struct {
	mode  uint8
	base  isa.Reg
	index isa.Reg
	shift uint8 // log2(scale)
	disp  uint64
}

type dec struct {
	op       isa.Op
	width    uint8
	dstIsMem bool
	srcIsReg bool
	dstReg   isa.Reg
	srcReg   isa.Reg
	wmask    uint64 // mask for the operand width
	sbit     uint64 // sign bit at the operand width
	imm      uint64 // immediate source value, pre-extended
	ea       eaDec  // the instruction's (single) memory operand, if any
	target   int32
}

func decodeEA(m isa.MemRef) eaDec {
	e := eaDec{disp: uint64(m.Disp)}
	if m.HasIndex {
		e.index = m.Index
		e.shift = uint8(bits.TrailingZeros8(m.Scale))
	}
	switch {
	case m.HasBase && m.HasIndex:
		e.mode = eaBaseIndex
		e.base = m.Base
	case m.HasBase:
		e.mode = eaBase
		e.base = m.Base
	case m.HasIndex:
		e.mode = eaIndex
	default:
		e.mode = eaDisp
	}
	return e
}

// ea computes the effective address from the pre-decoded form; it must
// agree with VM.EffectiveAddr on every MemRef the assembler can produce
// (scale restricted to 1/2/4/8).
func (v *VM) ea(e *eaDec) uint64 {
	switch e.mode {
	case eaBase:
		return v.Regs[e.base] + e.disp
	case eaBaseIndex:
		return v.Regs[e.base] + v.Regs[e.index]<<e.shift + e.disp
	case eaIndex:
		return v.Regs[e.index]<<e.shift + e.disp
	default:
		return e.disp
	}
}

func decodeInstr(in *isa.Instr) dec {
	d := dec{
		op:     in.Op,
		width:  in.Width,
		wmask:  mask(int(in.Width)),
		sbit:   1 << (uint(in.Width)*8 - 1),
		dstReg: in.Dst.Reg,
		target: int32(in.Target),
	}
	switch in.Src.Kind {
	case isa.KindReg:
		d.srcIsReg = true
		d.srcReg = in.Src.Reg
	case isa.KindImm:
		d.imm = uint64(in.Src.Imm)
	case isa.KindMem:
		d.ea = decodeEA(in.Src.Mem)
	}
	if in.Dst.Kind == isa.KindMem {
		d.dstIsMem = true
		d.ea = decodeEA(in.Dst.Mem)
	}
	return d
}

// decCache memoizes decoded programs by identity. Programs are assembled
// once and never mutated afterwards, so the cache stays valid for the
// process lifetime and is shared by every VM (parallel tasks included).
var decCache sync.Map // *isa.Program -> []dec

func decodeProgram(p *isa.Program) []dec {
	if d, ok := decCache.Load(p); ok {
		return d.([]dec)
	}
	ds := make([]dec, len(p.Instrs))
	for i := range p.Instrs {
		ds[i] = decodeInstr(&p.Instrs[i])
	}
	actual, _ := decCache.LoadOrStore(p, ds)
	return actual.([]dec)
}
