package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/zipchannel/zipchannel/internal/isa"
)

// The compiled engine: pre-decoded programs are lowered once into threaded
// code — one Go closure per instruction with its operands, width masks,
// and effective-address mode burned in, chained by direct next-pc returns —
// plus superinstructions that fuse adjacent straight-line pairs (the
// add/cmp/jcc and load/op/store sequences that the opcode-pair profile
// shows dominate every victim gadget; see AttachPairProfile) into a single
// closure, halving dispatch on hot loops.
//
// Execution is block-at-a-time (block.go): the run loop enters a basic
// block, runs its closure chain without maintaining v.PC or consulting
// hooks, and tallies the block's retired-instruction counters in one shot
// at the end. Instrumented runs (any per-instruction hook installed) fall
// back to the interpreter's Step for exact hook ordering — unless the
// Hooks.OnBlock client approves the fast path for a specific block, which
// is how the taint analyzer skips blocks whose taint transfer function is
// a no-op (internal/core).
//
// The engine requires flat memory; paged (SGX) machines always interpret.
// Observable behavior is bit-identical to the interpreter: same register,
// flag, memory, and output state, same v.Steps accounting, same error
// text with the same faulting PC, and same obs counter totals. The
// all-victims differential test and FuzzVMDifferential (internal/core)
// enforce this.

// Engine selects how Run executes a program.
type Engine uint8

// Engine choices. The zero value (EngineAuto) picks the compiled engine
// whenever the machine is eligible (flat memory), which is the default
// everywhere; EngineInterp forces the interpreter, kept for differential
// runs and the opcode-pair profile.
const (
	EngineAuto Engine = iota
	EngineInterp
	EngineCompiled
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineInterp:
		return "interp"
	case EngineCompiled:
		return "compiled"
	default:
		return "auto"
	}
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "interp":
		return EngineInterp, nil
	case "compiled":
		return EngineCompiled, nil
	case "", "auto":
		return EngineAuto, nil
	}
	return EngineAuto, fmt.Errorf("vm: unknown engine %q (want interp or compiled)", s)
}

// defaultEngine is the process-wide default applied to newly created VMs
// (CLIs set it from their -engine flag before running).
var defaultEngine atomic.Int32

// SetDefaultEngine sets the engine newly created VMs start with.
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the engine newly created VMs start with.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// stepFn executes one instruction (or one fused pair) against v and
// returns the next pc. On error it leaves v.PC at the failing
// instruction, exactly like the interpreter.
type stepFn func(v *VM) (int, error)

// body is the side-effect part of a non-control instruction, shared
// between the single-instruction wrapper and fused superinstructions.
type body func(v *VM) error

type opCount struct {
	op isa.Op
	n  uint64
}

// blockTally is a block's precomputed contribution to the obs dispatch
// counters, applied in one shot after a fast block execution.
type blockTally struct {
	n   uint64
	ops []opCount
}

type engine struct {
	fns     []stepFn
	blocks  []Block
	blockOf []int32
	tallies []blockTally
}

// engCache memoizes compiled engines by program identity (programs are
// assembled once and never mutated), shared by every VM.
var engCache sync.Map // *isa.Program -> *engine

func engineFor(p *isa.Program) *engine {
	if e, ok := engCache.Load(p); ok {
		return e.(*engine)
	}
	e := compile(p)
	actual, _ := engCache.LoadOrStore(p, e)
	return actual.(*engine)
}

// compile lowers a program into threaded code.
func compile(p *isa.Program) *engine {
	dec := decodeProgram(p)
	bi := blockInfoFor(p)
	e := &engine{
		fns:     make([]stepFn, len(p.Instrs)),
		blocks:  bi.blocks,
		blockOf: bi.blockOf,
		tallies: make([]blockTally, len(bi.blocks)),
	}
	for i, b := range e.blocks {
		e.tallies[i] = tallyOf(dec, b)
		e.compileBlock(p, dec, b)
	}
	return e
}

func tallyOf(dec []dec, b Block) blockTally {
	t := blockTally{n: uint64(b.End - b.Start)}
	var counts [isa.NumOps]uint64
	for pc := b.Start; pc < b.End; pc++ {
		counts[dec[pc].op]++
	}
	for op, n := range counts {
		if n > 0 {
			t.ops = append(t.ops, opCount{op: isa.Op(op), n: n})
		}
	}
	return t
}

// compileBlock fills e.fns for [b.Start, b.End): specialized bodies
// wrapped with budget/step accounting, pairwise-fused where two
// straight-line bodies are adjacent, and a fused compare-and-branch when
// the block ends with cmp/test + jcc.
func (e *engine) compileBlock(p *isa.Program, dec []dec, b Block) {
	// Every pc gets its single-instruction form first, so mid-block entry
	// (a resumed machine) and the second slot of a fused pair stay valid.
	for pc := b.Start; pc < b.End; pc++ {
		e.fns[pc] = compileOne(p, dec, pc)
	}
	// Superinstruction pass: greedy left-to-right pairing of adjacent
	// non-control bodies, then the compare-and-branch fusion at the end.
	pc := b.Start
	for pc+1 < b.End {
		d0, d1 := &dec[pc], &dec[pc+1]
		if isControl(d0.op) {
			pc++
			continue
		}
		if (d0.op == isa.OpCmp || d0.op == isa.OpTest) && d1.op.IsCondJump() {
			b0 := makeBody(p, dec, pc)
			e.fns[pc] = fuseCmpJcc(p, pc, b0, condFns[d1.op], int(d1.target))
			pc += 2
			continue
		}
		if !isControl(d1.op) {
			b0, b1 := makeBody(p, dec, pc), makeBody(p, dec, pc+1)
			e.fns[pc] = fuseSeq(p, pc, b0, b1)
			pc += 2
			continue
		}
		pc++
	}
}

// isControl reports whether the op needs a dedicated control wrapper
// (it cannot be expressed as a straight-line body returning pc+1).
func isControl(op isa.Op) bool {
	return op.IsJump() || op == isa.OpRet || op == isa.OpHalt || op == isa.OpSyscall
}

func runawayErr(steps uint64) error {
	return fmt.Errorf("%w after %d steps", ErrRunaway, steps)
}

func execErr(p *isa.Program, pc int, err error) error {
	return fmt.Errorf("vm: pc %d (%s): %w", pc, &p.Instrs[pc], err)
}

// compileOne builds the single-instruction stepFn for pc.
func compileOne(p *isa.Program, dec []dec, pc int) stepFn {
	d := &dec[pc]
	switch d.op {
	case isa.OpHalt:
		return func(v *VM) (int, error) {
			if v.Steps >= v.MaxSteps {
				v.PC = pc
				return 0, runawayErr(v.Steps)
			}
			v.Halted = true
			v.Steps++
			return pc + 1, nil
		}
	case isa.OpJmp:
		target := int(d.target)
		return func(v *VM) (int, error) {
			if v.Steps >= v.MaxSteps {
				v.PC = pc
				return 0, runawayErr(v.Steps)
			}
			v.Steps++
			return target, nil
		}
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge,
		isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
		target := int(d.target)
		cond := condFns[d.op]
		return func(v *VM) (int, error) {
			if v.Steps >= v.MaxSteps {
				v.PC = pc
				return 0, runawayErr(v.Steps)
			}
			v.Steps++
			if cond(v) {
				return target, nil
			}
			return pc + 1, nil
		}
	case isa.OpCall:
		target := int(d.target)
		return func(v *VM) (int, error) {
			if v.Steps >= v.MaxSteps {
				v.PC = pc
				return 0, runawayErr(v.Steps)
			}
			v.Regs[isa.SP] -= 8
			if err := v.flat.Store(v.Regs[isa.SP], 8, uint64(pc+1)); err != nil {
				v.Regs[isa.SP] += 8
				v.PC = pc
				return 0, execErr(p, pc, err)
			}
			v.Steps++
			return target, nil
		}
	case isa.OpRet:
		return func(v *VM) (int, error) {
			if v.Steps >= v.MaxSteps {
				v.PC = pc
				return 0, runawayErr(v.Steps)
			}
			val, err := v.flat.Load(v.Regs[isa.SP], 8)
			if err != nil {
				v.PC = pc
				return 0, execErr(p, pc, err)
			}
			v.Regs[isa.SP] += 8
			v.Steps++
			return int(val), nil
		}
	case isa.OpSyscall:
		return func(v *VM) (int, error) {
			if v.Steps >= v.MaxSteps {
				v.PC = pc
				return 0, runawayErr(v.Steps)
			}
			// Hooks reachable through the syscall (OnSyscallRead) see the
			// correct pc, as under the interpreter.
			v.PC = pc
			if err := v.syscall(); err != nil {
				return 0, execErr(p, pc, err)
			}
			v.Steps++
			return pc + 1, nil
		}
	default:
		return wrapSeq(p, pc, makeBody(p, dec, pc))
	}
}

// wrapSeq turns a straight-line body into a stepFn with the
// interpreter's budget check and step accounting.
func wrapSeq(p *isa.Program, pc int, b body) stepFn {
	next := pc + 1
	return func(v *VM) (int, error) {
		if v.Steps >= v.MaxSteps {
			v.PC = pc
			return 0, runawayErr(v.Steps)
		}
		if err := b(v); err != nil {
			v.PC = pc
			return 0, execErr(p, pc, err)
		}
		v.Steps++
		return next, nil
	}
}

// fuseSeq is the generic two-wide superinstruction: both sub-instructions
// keep their own budget check and step increment, so runaway timing and
// error attribution are bit-identical to unfused execution.
func fuseSeq(p *isa.Program, pc int, b0, b1 body) stepFn {
	pc1 := pc + 1
	next := pc + 2
	return func(v *VM) (int, error) {
		if v.Steps >= v.MaxSteps {
			v.PC = pc
			return 0, runawayErr(v.Steps)
		}
		if err := b0(v); err != nil {
			v.PC = pc
			return 0, execErr(p, pc, err)
		}
		v.Steps++
		if v.Steps >= v.MaxSteps {
			v.PC = pc1
			return 0, runawayErr(v.Steps)
		}
		if err := b1(v); err != nil {
			v.PC = pc1
			return 0, execErr(p, pc1, err)
		}
		v.Steps++
		return next, nil
	}
}

// fuseCmpJcc is the compare-and-branch superinstruction (the cmp/jcc and
// test/jcc pairs ending nearly every loop). Flags are still materialized:
// later instructions and final machine state must see them.
func fuseCmpJcc(p *isa.Program, pc int, cmpBody body, cond func(*VM) bool, target int) stepFn {
	pcJ := pc + 1
	fall := pc + 2
	return func(v *VM) (int, error) {
		if v.Steps >= v.MaxSteps {
			v.PC = pc
			return 0, runawayErr(v.Steps)
		}
		if err := cmpBody(v); err != nil {
			v.PC = pc
			return 0, execErr(p, pc, err)
		}
		v.Steps++
		if v.Steps >= v.MaxSteps {
			v.PC = pcJ
			return 0, runawayErr(v.Steps)
		}
		v.Steps++
		if cond(v) {
			return target, nil
		}
		return fall, nil
	}
}

// condFns are the branch predicates, one closure per conditional opcode
// (mirrors VM.condition).
var condFns = [isa.NumOps]func(*VM) bool{
	isa.OpJe:  func(v *VM) bool { return v.ZF },
	isa.OpJne: func(v *VM) bool { return !v.ZF },
	isa.OpJl:  func(v *VM) bool { return v.SF },
	isa.OpJle: func(v *VM) bool { return v.SF || v.ZF },
	isa.OpJg:  func(v *VM) bool { return !v.SF && !v.ZF },
	isa.OpJge: func(v *VM) bool { return !v.SF },
	isa.OpJb:  func(v *VM) bool { return v.CF },
	isa.OpJbe: func(v *VM) bool { return v.CF || v.ZF },
	isa.OpJa:  func(v *VM) bool { return !v.CF && !v.ZF },
	isa.OpJae: func(v *VM) bool { return !v.CF },
}

// mkEA builds the effective-address closure for a pre-decoded memory
// operand, one branch-free form per addressing mode.
func mkEA(e eaDec) func(*VM) uint64 {
	base, index, shift, disp := e.base, e.index, e.shift, e.disp
	switch e.mode {
	case eaBase:
		return func(v *VM) uint64 { return v.Regs[base] + disp }
	case eaBaseIndex:
		return func(v *VM) uint64 { return v.Regs[base] + v.Regs[index]<<shift + disp }
	case eaIndex:
		return func(v *VM) uint64 { return v.Regs[index]<<shift + disp }
	default: // eaDisp
		return func(v *VM) uint64 { return disp }
	}
}

// makeBody builds the specialized side-effect closure for a non-control
// instruction. Each case mirrors the corresponding interpreter arm in
// Step exactly; the difference is that operand kind, width mask, and
// addressing mode are resolved here, once, instead of per execution.
func makeBody(p *isa.Program, dec []dec, pc int) body {
	d := &dec[pc]
	wmask, sbit := d.wmask, d.sbit
	w := int(d.width)
	dst, src := d.dstReg, d.srcReg
	imm := d.imm

	switch op := d.op; op {
	case isa.OpNop:
		return func(*VM) error { return nil }

	case isa.OpMov:
		if d.srcIsReg {
			return func(v *VM) error { v.Regs[dst] = v.Regs[src] & wmask; return nil }
		}
		immM := imm & wmask
		return func(v *VM) error { v.Regs[dst] = immM; return nil }

	case isa.OpLea:
		ea := mkEA(d.ea)
		return func(v *VM) error { v.Regs[dst] = ea(v); return nil }

	case isa.OpLd:
		ea := mkEA(d.ea)
		return func(v *VM) error {
			val, err := v.flat.Load(ea(v), w)
			if err != nil {
				return err
			}
			v.Regs[dst] = val
			return nil
		}

	case isa.OpSt:
		ea := mkEA(d.ea)
		if d.srcIsReg {
			return func(v *VM) error { return v.flat.Store(ea(v), w, v.Regs[src]&wmask) }
		}
		immM := imm & wmask
		return func(v *VM) error { return v.flat.Store(ea(v), w, immM) }

	case isa.OpNot:
		return func(v *VM) error { v.Regs[dst] = ^v.Regs[dst] & wmask; return nil }

	case isa.OpNeg:
		return func(v *VM) error { v.Regs[dst] = -v.Regs[dst] & wmask; return nil }

	case isa.OpCmp:
		if d.srcIsReg {
			return func(v *VM) error {
				dv, s := v.Regs[dst]&wmask, v.Regs[src]&wmask
				res := (dv - s) & wmask
				v.ZF, v.SF, v.CF = res == 0, res&sbit != 0, dv < s
				return nil
			}
		}
		immM := imm & wmask
		return func(v *VM) error {
			dv := v.Regs[dst] & wmask
			res := (dv - immM) & wmask
			v.ZF, v.SF, v.CF = res == 0, res&sbit != 0, dv < immM
			return nil
		}

	case isa.OpTest:
		if d.srcIsReg {
			return func(v *VM) error {
				res := v.Regs[dst] & v.Regs[src] & wmask
				v.ZF, v.SF, v.CF = res == 0, res&sbit != 0, false
				return nil
			}
		}
		immM := imm & wmask
		return func(v *VM) error {
			res := v.Regs[dst] & immM & wmask
			v.ZF, v.SF, v.CF = res == 0, res&sbit != 0, false
			return nil
		}

	case isa.OpPush:
		if d.srcIsReg {
			return func(v *VM) error {
				v.Regs[isa.SP] -= 8
				if err := v.flat.Store(v.Regs[isa.SP], 8, v.Regs[src]); err != nil {
					v.Regs[isa.SP] += 8
					return err
				}
				return nil
			}
		}
		return func(v *VM) error {
			v.Regs[isa.SP] -= 8
			if err := v.flat.Store(v.Regs[isa.SP], 8, imm); err != nil {
				v.Regs[isa.SP] += 8
				return err
			}
			return nil
		}

	case isa.OpPop:
		return func(v *VM) error {
			val, err := v.flat.Load(v.Regs[isa.SP], 8)
			if err != nil {
				return err
			}
			v.Regs[dst] = val
			v.Regs[isa.SP] += 8
			return nil
		}

	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar, isa.OpRol:
		if d.dstIsMem {
			return makeMemALU(d, op, w, wmask, sbit)
		}
		return makeRegALU(d, op, w, wmask, sbit)

	default:
		// Unreachable for the current ISA; keep the interpreter's error.
		return func(*VM) error {
			return fmt.Errorf("unimplemented opcode %v", op)
		}
	}
}

// makeRegALU specializes the hot register-destination ALU forms inline
// and routes the rest through aluCompute, matching VM.alu bit for bit
// (flag updates, sub's carry, division-by-zero).
func makeRegALU(d *dec, op isa.Op, w int, wmask, sbit uint64) body {
	dst, src := d.dstReg, d.srcReg
	if d.srcIsReg {
		switch op {
		case isa.OpAdd:
			return func(v *VM) error {
				res := (v.Regs[dst] + v.Regs[src]) & wmask
				v.Regs[dst] = res
				v.ZF, v.SF = res == 0, res&sbit != 0
				return nil
			}
		case isa.OpSub:
			return func(v *VM) error {
				dv, s := v.Regs[dst]&wmask, v.Regs[src]&wmask
				res := (dv - s) & wmask
				v.Regs[dst] = res
				v.ZF, v.SF, v.CF = res == 0, res&sbit != 0, dv < s
				return nil
			}
		case isa.OpXor:
			return func(v *VM) error {
				res := (v.Regs[dst] ^ v.Regs[src]) & wmask
				v.Regs[dst] = res
				v.ZF, v.SF = res == 0, res&sbit != 0
				return nil
			}
		case isa.OpAnd:
			return func(v *VM) error {
				res := v.Regs[dst] & v.Regs[src] & wmask
				v.Regs[dst] = res
				v.ZF, v.SF = res == 0, res&sbit != 0
				return nil
			}
		case isa.OpOr:
			return func(v *VM) error {
				res := (v.Regs[dst] | v.Regs[src]) & wmask
				v.Regs[dst] = res
				v.ZF, v.SF = res == 0, res&sbit != 0
				return nil
			}
		}
		return func(v *VM) error {
			dv, s := v.Regs[dst]&wmask, v.Regs[src]&wmask
			if (op == isa.OpDiv || op == isa.OpMod) && s == 0 {
				return fmt.Errorf("division by zero")
			}
			res := aluCompute(op, dv, s, w) & wmask
			v.Regs[dst] = res
			v.ZF, v.SF = res == 0, res&sbit != 0
			return nil
		}
	}
	immM := d.imm & wmask
	switch op {
	case isa.OpAdd:
		return func(v *VM) error {
			res := (v.Regs[dst] + immM) & wmask
			v.Regs[dst] = res
			v.ZF, v.SF = res == 0, res&sbit != 0
			return nil
		}
	case isa.OpSub:
		return func(v *VM) error {
			dv := v.Regs[dst] & wmask
			res := (dv - immM) & wmask
			v.Regs[dst] = res
			v.ZF, v.SF, v.CF = res == 0, res&sbit != 0, dv < immM
			return nil
		}
	case isa.OpXor:
		return func(v *VM) error {
			res := (v.Regs[dst] ^ immM) & wmask
			v.Regs[dst] = res
			v.ZF, v.SF = res == 0, res&sbit != 0
			return nil
		}
	case isa.OpAnd:
		return func(v *VM) error {
			res := v.Regs[dst] & immM & wmask
			v.Regs[dst] = res
			v.ZF, v.SF = res == 0, res&sbit != 0
			return nil
		}
	case isa.OpShl:
		if n := immM; n < uint64(w*8) {
			sh := uint(n)
			return func(v *VM) error {
				res := (v.Regs[dst] & wmask) << sh & wmask
				v.Regs[dst] = res
				v.ZF, v.SF = res == 0, res&sbit != 0
				return nil
			}
		}
	case isa.OpShr:
		if n := immM; n < uint64(w*8) {
			sh := uint(n)
			return func(v *VM) error {
				res := (v.Regs[dst] & wmask) >> sh
				v.Regs[dst] = res
				v.ZF, v.SF = res == 0, res&sbit != 0
				return nil
			}
		}
	}
	return func(v *VM) error {
		dv := v.Regs[dst] & wmask
		if (op == isa.OpDiv || op == isa.OpMod) && immM == 0 {
			return fmt.Errorf("division by zero")
		}
		res := aluCompute(op, dv, immM, w) & wmask
		v.Regs[dst] = res
		v.ZF, v.SF = res == 0, res&sbit != 0
		return nil
	}
}

// makeMemALU is the read-modify-write form (add [ftab + r*4], 1).
// Mirrors VM.alu's memory-destination arm: no carry flag, flags from the
// stored result. Fast bodies never fire OnLoad/OnStore — a machine with
// data hooks installed never reaches the fast path.
func makeMemALU(d *dec, op isa.Op, w int, wmask, sbit uint64) body {
	ea := mkEA(d.ea)
	src := d.srcReg
	srcIsReg := d.srcIsReg
	immM := d.imm & wmask
	return func(v *VM) error {
		s := immM
		if srcIsReg {
			s = v.Regs[src] & wmask
		}
		addr := ea(v)
		old, err := v.flat.Load(addr, w)
		if err != nil {
			return err
		}
		res := aluCompute(op, old, s, w) & wmask
		if err := v.flat.Store(addr, w, res); err != nil {
			return err
		}
		v.ZF, v.SF = res == 0, res&sbit != 0
		return nil
	}
}

// runCompiled is the block-at-a-time dispatch loop.
func (v *VM) runCompiled(eng *engine) error {
	// Any per-instruction hook forces the precise (interpreter) path for a
	// block, unless the OnBlock client waives observation for it.
	instrumented := v.Hooks.BeforeInstr != nil || v.Hooks.OnLoad != nil || v.Hooks.OnStore != nil
	n := len(v.Prog.Instrs)
	for !v.Halted {
		pc := v.PC
		if pc < 0 || pc >= n {
			return fmt.Errorf("vm: pc %d outside program (%d instrs)", pc, n)
		}
		bi := eng.blockOf[pc]
		b := &eng.blocks[bi]
		precise := instrumented
		if precise && v.Hooks.OnBlock != nil && pc == b.Start {
			precise = v.Hooks.OnBlock(v, int(bi))
		}
		if precise || pc != b.Start {
			// Interpreter path through this block: exact hook ordering and
			// per-instruction counters. Re-enters the dispatch loop when
			// control leaves the block or loops back to its start (so the
			// OnBlock decision is refreshed every iteration).
			for {
				if err := v.Step(); err != nil {
					return err
				}
				if v.Halted || v.PC <= b.Start || v.PC >= b.End {
					break
				}
			}
			continue
		}
		// Threaded fast path: no hooks, no PC maintenance; counters are
		// tallied per block.
		for {
			next, err := eng.fns[pc](v)
			if err != nil {
				v.tallyRange(b.Start, v.PC)
				return err
			}
			if next <= pc || next >= b.End {
				v.tallyBlock(eng, bi)
				v.PC = next
				break
			}
			pc = next
		}
	}
	return nil
}

// tallyBlock adds one full fast execution of block bi to the obs
// counters, equivalent to the interpreter's per-instruction increments.
func (v *VM) tallyBlock(eng *engine, bi int32) {
	if v.obs.instructions == nil {
		return
	}
	t := &eng.tallies[bi]
	v.obs.instructions.Add(t.n)
	for _, oc := range t.ops {
		v.obs.ops[oc.op].Add(oc.n)
	}
}

// tallyRange counts a partial fast block execution [from, to) after a
// mid-block error (the failing instruction is not retired, matching the
// interpreter).
func (v *VM) tallyRange(from, to int) {
	if v.obs.instructions == nil || to <= from {
		return
	}
	v.obs.instructions.Add(uint64(to - from))
	for pc := from; pc < to; pc++ {
		v.obs.ops[v.dec[pc].op].Inc()
	}
}
