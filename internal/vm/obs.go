package vm

import (
	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// vmObs holds the VM's pre-resolved instruments. Counters are nil until
// AttachObs runs; obs instrument methods are no-ops on nil, so the hot
// path needs no conditionals. The per-step counters (instructions, opcode
// dispatch) are private CounterShard slots rather than the shared
// counters, so VMs running in parallel tasks do not bounce one cache line
// per retired instruction.
type vmObs struct {
	instructions *obs.CounterShard
	faults       *obs.Counter
	sysRead      *obs.Counter
	sysWrite     *obs.Counter
	sysExit      *obs.Counter
	ops          [isa.NumOps]*obs.CounterShard
}

// AttachObs registers the VM's telemetry on reg: vm.instructions (retired),
// vm.faults, vm.sys.{read,write,exit}, and a per-opcode dispatch counter
// vm.op.<mnemonic>. Instruments are resolved once here so Step pays a
// single uncontended atomic add per event. A nil registry detaches cleanly.
func (v *VM) AttachObs(reg *obs.Registry) {
	v.obs.instructions = reg.Counter("vm.instructions").Shard()
	v.obs.faults = reg.Counter("vm.faults")
	v.obs.sysRead = reg.Counter("vm.sys.read")
	v.obs.sysWrite = reg.Counter("vm.sys.write")
	v.obs.sysExit = reg.Counter("vm.sys.exit")
	for op := 0; op < isa.NumOps; op++ {
		v.obs.ops[op] = reg.Counter("vm.op." + isa.Op(op).String()).Shard()
	}
}
