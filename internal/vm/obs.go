package vm

import (
	"sort"

	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// vmObs holds the VM's pre-resolved instruments. Counters are nil until
// AttachObs runs; obs instrument methods are no-ops on nil, so the hot
// path needs no conditionals. The per-step counters (instructions, opcode
// dispatch) are private CounterShard slots rather than the shared
// counters, so VMs running in parallel tasks do not bounce one cache line
// per retired instruction.
type vmObs struct {
	instructions *obs.CounterShard
	faults       *obs.Counter
	sysRead      *obs.Counter
	sysWrite     *obs.Counter
	sysExit      *obs.Counter
	ops          [isa.NumOps]*obs.CounterShard
}

// AttachObs registers the VM's telemetry on reg: vm.instructions (retired),
// vm.faults, vm.sys.{read,write,exit}, and a per-opcode dispatch counter
// vm.op.<mnemonic>. Instruments are resolved once here so Step pays a
// single uncontended atomic add per event. A nil registry detaches cleanly.
func (v *VM) AttachObs(reg *obs.Registry) {
	v.obs.instructions = reg.Counter("vm.instructions").Shard()
	v.obs.faults = reg.Counter("vm.faults")
	v.obs.sysRead = reg.Counter("vm.sys.read")
	v.obs.sysWrite = reg.Counter("vm.sys.write")
	v.obs.sysExit = reg.Counter("vm.sys.exit")
	for op := 0; op < isa.NumOps; op++ {
		v.obs.ops[op] = reg.Counter("vm.op." + isa.Op(op).String()).Shard()
	}
}

// pairProfile counts retired dynamic opcode pairs (the opcode of each
// instruction and of the one retired immediately before it, across
// control flow). It is the measurement behind the compiled engine's
// superinstruction selection: the hottest pairs become fused closures
// (compile.go). Counts accumulate in a flat array during the run — a
// per-pair counter lookup in Step would perturb the very dispatch cost
// being measured — and flush to vm.pair.<a>.<b> counters on demand.
type pairProfile struct {
	counts  [isa.NumOps][isa.NumOps]uint64
	prev    isa.Op
	hasPrev bool
}

func (p *pairProfile) record(op isa.Op) {
	if p.hasPrev {
		p.counts[p.prev][op]++
	}
	p.prev, p.hasPrev = op, true
}

// AttachPairProfile starts opcode-pair profiling on the VM. Profiling is
// interpreter-only: attaching it forces Run onto the interpreter (the
// compiled engine's fused pairs would erase the boundary being counted).
// Call FlushPairProfile or PairProfile after the run for the counts.
func (v *VM) AttachPairProfile() {
	v.pair = &pairProfile{}
}

// PairCount is one dynamic opcode pair and how often it retired.
type PairCount struct {
	First, Second isa.Op
	N             uint64
}

// PairProfile returns the recorded opcode pairs, most frequent first
// (ties broken by opcode order for determinism). Nil if no profile was
// attached.
func (v *VM) PairProfile() []PairCount {
	if v.pair == nil {
		return nil
	}
	var out []PairCount
	for a := 0; a < isa.NumOps; a++ {
		for b := 0; b < isa.NumOps; b++ {
			if n := v.pair.counts[a][b]; n > 0 {
				out = append(out, PairCount{First: isa.Op(a), Second: isa.Op(b), N: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Second < out[j].Second
	})
	return out
}

// FlushPairProfile publishes the recorded pair counts as
// vm.pair.<first>.<second> counters on reg. Separate from recording so
// the profiled run pays one array increment per instruction, not a
// registry lookup.
func (v *VM) FlushPairProfile(reg *obs.Registry) {
	if v.pair == nil || reg == nil {
		return
	}
	for _, pc := range v.PairProfile() {
		reg.Counter("vm.pair." + pc.First.String() + "." + pc.Second.String()).Add(pc.N)
	}
}
