// Package vm implements the interpreter for the isa package: a 64-bit
// machine with x86-like flags, a pluggable memory subsystem (flat memory
// for analysis runs, paged memory with permissions for the SGX enclave
// simulation), DynamoRIO-style instrumentation hooks, and a minimal
// read/write/exit syscall interface.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the size of a virtual memory page, matching x86.
const PageSize = 4096

// Fault describes a memory access that violated page permissions. It is the
// simulated analogue of a SIGSEGV delivered to the attacker's handler.
type Fault struct {
	Addr  uint64 // faulting virtual address (full precision; sgx masks it)
	Write bool   // true for stores, false for loads
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("page fault: %s at %#x", kind, f.Addr)
}

// ErrOutOfRange reports an access outside the allocated address space.
var ErrOutOfRange = errors.New("vm: address out of range")

// Memory is the interface between the CPU and the memory subsystem.
// Load zero-extends; width is 1, 2, 4, or 8 bytes.
type Memory interface {
	Load(addr uint64, width int) (uint64, error)
	Store(addr uint64, width int, val uint64) error
}

// FlatMemory is a permissionless byte-addressed memory for TaintChannel
// analysis runs, spanning [base, base+len).
type FlatMemory struct {
	base uint64
	data []byte
}

// NewFlatMemory allocates size bytes of zeroed memory starting at base.
func NewFlatMemory(base, size uint64) *FlatMemory {
	return &FlatMemory{base: base, data: make([]byte, size)}
}

// Base returns the lowest valid address.
func (m *FlatMemory) Base() uint64 { return m.base }

// Size returns the number of addressable bytes.
func (m *FlatMemory) Size() uint64 { return uint64(len(m.data)) }

// Load implements Memory.
func (m *FlatMemory) Load(addr uint64, width int) (uint64, error) {
	off, err := m.offset(addr, width)
	if err != nil {
		return 0, err
	}
	return leLoad(m.data[off:], width), nil
}

// Store implements Memory.
func (m *FlatMemory) Store(addr uint64, width int, val uint64) error {
	off, err := m.offset(addr, width)
	if err != nil {
		return err
	}
	leStore(m.data[off:], width, val)
	return nil
}

// WriteBytes copies raw bytes into memory (program .init data, input
// staging). It bypasses hooks.
func (m *FlatMemory) WriteBytes(addr uint64, b []byte) error {
	off, err := m.offset(addr, len(b))
	if err != nil {
		return err
	}
	copy(m.data[off:], b)
	return nil
}

// ReadBytes copies size raw bytes out of memory.
func (m *FlatMemory) ReadBytes(addr uint64, size int) ([]byte, error) {
	off, err := m.offset(addr, size)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, m.data[off:])
	return out, nil
}

func (m *FlatMemory) offset(addr uint64, width int) (uint64, error) {
	if addr < m.base || addr+uint64(width) > m.base+uint64(len(m.data)) {
		return 0, m.rangeErr(addr, width)
	}
	return addr - m.base, nil
}

// rangeErr is kept out of offset so the bounds check inlines into
// Load/Store (fmt.Errorf in the error branch otherwise blows the budget).
//
//go:noinline
func (m *FlatMemory) rangeErr(addr uint64, width int) error {
	return fmt.Errorf("%w: %#x (width %d)", ErrOutOfRange, addr, width)
}

func leLoad(b []byte, width int) uint64 {
	switch width {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func leStore(b []byte, width int, v uint64) {
	switch width {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		for i := 0; i < width; i++ {
			b[i] = byte(v >> (8 * i))
		}
	}
}
