package vm

import (
	"sync"

	"github.com/zipchannel/zipchannel/internal/isa"
)

// Basic-block discovery over an assembled program. Blocks are the unit of
// the compiled engine's dispatch (compile.go) and of the analyzer's
// batched taint transfer functions (internal/core): a maximal run of
// straight-line instructions that control flow can only enter at the
// first instruction and only leave after the last.
//
// Leaders (block starts) are the program entry, instruction 0, every
// jump/call target, and the instruction after every terminator.
// Terminators are all control transfers (jmp/jcc/call/ret), halt, and
// syscall — syscall ends a block both because sys_exit halts the machine
// and because the taint analyzer must observe read syscalls precisely
// (they are the taint source).

// Block is one basic block: instructions [Start, End) of the program.
// A block either ends with a terminator or falls through into the next
// block's leader.
type Block struct {
	Start, End int
}

// isTerminator reports whether the opcode ends a basic block.
func isTerminator(op isa.Op) bool {
	return op.IsJump() || op == isa.OpRet || op == isa.OpHalt || op == isa.OpSyscall
}

// blocksOf computes the block partition and the pc -> block-index map.
func blocksOf(p *isa.Program) ([]Block, []int32) {
	n := len(p.Instrs)
	leader := make([]bool, n)
	if n == 0 {
		return nil, nil
	}
	leader[0] = true
	if p.Entry >= 0 && p.Entry < n {
		leader[p.Entry] = true
	}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if in.Op.IsJump() {
			if in.Target >= 0 && in.Target < n {
				leader[in.Target] = true
			}
		}
		if isTerminator(in.Op) && pc+1 < n {
			leader[pc+1] = true
		}
	}
	var blocks []Block
	blockOf := make([]int32, n)
	start := 0
	for pc := 0; pc < n; pc++ {
		if pc > start && leader[pc] {
			blocks = append(blocks, Block{Start: start, End: pc})
			start = pc
		}
		if isTerminator(p.Instrs[pc].Op) && pc+1 > start {
			blocks = append(blocks, Block{Start: start, End: pc + 1})
			start = pc + 1
		}
	}
	if start < n {
		blocks = append(blocks, Block{Start: start, End: n})
	}
	for i, b := range blocks {
		for pc := b.Start; pc < b.End; pc++ {
			blockOf[pc] = int32(i)
		}
	}
	return blocks, blockOf
}

// blockCache memoizes block partitions by program identity, like decCache:
// programs are assembled once and never mutated.
var blockCache sync.Map // *isa.Program -> blockInfo

type blockInfo struct {
	blocks  []Block
	blockOf []int32
}

// Blocks returns the basic-block partition of p. The result is shared and
// must not be mutated. The same partition indexes the compiled engine's
// per-block state and the analyzer's taint transfer functions, so block
// IDs agree across packages.
func Blocks(p *isa.Program) []Block {
	bi := blockInfoFor(p)
	return bi.blocks
}

func blockInfoFor(p *isa.Program) blockInfo {
	if v, ok := blockCache.Load(p); ok {
		return v.(blockInfo)
	}
	blocks, blockOf := blocksOf(p)
	actual, _ := blockCache.LoadOrStore(p, blockInfo{blocks: blocks, blockOf: blockOf})
	return actual.(blockInfo)
}
