package sgx

import (
	"fmt"

	"github.com/zipchannel/zipchannel/internal/vm"
)

// Stepper2 single-steps gadget loops with two protected arrays instead of
// bzip2's three: one the loop reads (the input buffer) and one it
// dereferences at a secret-dependent index (the table). The zlib
// INSERT_STRING loop (read window, store head[ins_h]) and the ncompress
// probe loop (read inputbuf, probe htab[hp]) both fit this shape, which
// lets the §V attack machinery extract their inputs end to end — the
// extension the paper's §IV-E survey implies but only demonstrates for
// bzip2.
type Stepper2 struct {
	e              *Enclave
	readSym        string // array the loop reads sequentially
	tableSym       string // array indexed by the secret-derived value
	tableWriteOnly bool   // true when only stores to the table should fault

	// OnTransition mirrors Stepper.OnTransition.
	OnTransition func()

	started bool
	obs     stepperObs
}

// NewStepper2 builds the two-array stepper. If tableWriteOnly is true the
// table keeps read permission while stepping (zlib's head is only
// written); otherwise all access faults (ncompress's htab is probed by
// loads).
func NewStepper2(e *Enclave, readSym, tableSym string, tableWriteOnly bool) *Stepper2 {
	return &Stepper2{e: e, readSym: readSym, tableSym: tableSym, tableWriteOnly: tableWriteOnly}
}

func (s *Stepper2) transition() {
	s.obs.transitions.Inc()
	if s.OnTransition != nil {
		s.OnTransition()
	}
}

func (s *Stepper2) tableRevokedPerm() vm.Perm {
	if s.tableWriteOnly {
		return vm.PermRead
	}
	return 0
}

// Start runs the enclave (input read, any init that touches only the
// read-array) until the first table access faults. It returns that first
// faulting table page, or ok=false if the enclave halted first.
func (s *Stepper2) Start() (firstPage uint64, ok bool, err error) {
	if err := s.e.Protect(s.tableSym, s.tableRevokedPerm()); err != nil {
		return 0, false, err
	}
	s.transition()
	f, err := s.e.Resume()
	if err != nil {
		return 0, false, err
	}
	if f == nil {
		return 0, false, nil
	}
	s.started = true
	s.obs.starts.Inc()
	return f.PageBase, true, nil
}

// Step advances one loop iteration from a table-access fault:
//
//  1. prime(tablePage) runs with the enclave stopped at the faulting
//     table access (whose page the caller got from Start or the previous
//     Step).
//  2. Table permission is restored and the read-array revoked; the table
//     access executes (the only table access between prime and probe),
//     the loop wraps, and the next read-array load faults.
//  3. probe() runs.
//  4. The read-array is restored and the table revoked again; execution
//     proceeds to the next table access, whose page is returned.
//
// done=true means the enclave halted (no further table accesses).
func (s *Stepper2) Step(prime func(), probe func()) (nextPage uint64, done bool, err error) {
	if !s.started {
		return 0, false, fmt.Errorf("%w: Step before Start", ErrProtocol)
	}
	if prime != nil {
		prime()
	}

	// Let the table access through; stop at the next input read.
	if err := s.e.Protect(s.tableSym, vm.PermRW); err != nil {
		return 0, false, err
	}
	if err := s.e.Protect(s.readSym, 0); err != nil {
		return 0, false, err
	}
	s.transition()
	f, err := s.e.Resume()
	if err != nil {
		return 0, false, err
	}

	if probe != nil {
		probe()
	}
	s.obs.iterations.Inc()

	if f == nil {
		return 0, true, nil // halted: that table access was the last
	}
	if f.Write {
		return 0, false, fmt.Errorf("%w: expected read fault on %s", ErrProtocol, s.readSym)
	}

	// Re-arm the table and run to its next access.
	if err := s.e.Protect(s.readSym, vm.PermRW); err != nil {
		return 0, false, err
	}
	if err := s.e.Protect(s.tableSym, s.tableRevokedPerm()); err != nil {
		return 0, false, err
	}
	s.transition()
	f, err = s.e.Resume()
	if err != nil {
		return 0, false, err
	}
	if f == nil {
		return 0, true, nil // halted after the last input byte
	}
	return f.PageBase, false, nil
}

// DryTransition replays one permission-flip's worth of transition noise
// without advancing the victim, for frame vetting (§V-C2).
func (s *Stepper2) DryTransition() {
	s.transition()
}
