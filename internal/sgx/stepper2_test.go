package sgx

import (
	"errors"
	"testing"

	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// The two-array stepper must expose one head-table page per zlib loop
// iteration, matching the ground-truth rolling hash.
func TestStepper2SingleStepsZlib(t *testing.T) {
	prog := victims.ZlibInsertString()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("pack my box with five dozen liquor jugs")
	e.VM.SetInput(input)

	st := NewStepper2(e, "window", "head", true)
	var transitions int
	st.OnTransition = func() { transitions++ }
	st.DryTransition()
	if transitions != 1 {
		t.Fatal("DryTransition should fire the hook")
	}

	page, ok, err := st.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if !ok {
		t.Fatal("enclave halted before the loop")
	}
	head := prog.MustSymbol("head")

	// Ground-truth hash sequence.
	h := (uint32(input[0])<<5 ^ uint32(input[1])) & 0x7fff
	var wantPages []uint64
	for i := 0; i+2 < len(input); i++ {
		h = ((h << 5) ^ uint32(input[i+2])) & 0x7fff
		wantPages = append(wantPages, (head.Addr+2*uint64(h))&^(PageSize-1))
	}

	var gotPages []uint64
	for {
		gotPages = append(gotPages, page)
		var done bool
		page, done, err = st.Step(nil, nil)
		if err != nil {
			t.Fatalf("Step %d: %v", len(gotPages), err)
		}
		if done {
			break
		}
		if len(gotPages) > len(input) {
			t.Fatal("stepper did not terminate")
		}
	}
	if len(gotPages) != len(wantPages) {
		t.Fatalf("observed %d iterations, want %d", len(gotPages), len(wantPages))
	}
	for k := range wantPages {
		if gotPages[k] != wantPages[k] {
			t.Errorf("iteration %d: page %#x, want %#x", k, gotPages[k], wantPages[k])
		}
	}
}

// The load-probing variant (htab) must single-step the lzw victim and
// leave its semantics intact.
func TestStepper2LZWSemanticsPreserved(t *testing.T) {
	prog := victims.LZWHashProbe()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 8192))
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("abcabcabc")
	e.VM.SetInput(input)
	st := NewStepper2(e, "inputbuf", "htab", false)
	_, ok, err := st.Start()
	if err != nil || !ok {
		t.Fatalf("Start: ok=%v err=%v", ok, err)
	}
	steps := 0
	for {
		_, done, err := st.Step(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
		if steps > len(input)+2 {
			t.Fatal("runaway stepper")
		}
	}
	if steps != len(input)-1 {
		t.Errorf("stepped %d iterations, want %d (one per byte after the first)", steps, len(input)-1)
	}
	if !e.Halted() {
		t.Error("enclave should have halted")
	}
}

func TestStepper2StepBeforeStart(t *testing.T) {
	prog := victims.ZlibInsertString()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	st := NewStepper2(e, "window", "head", true)
	if _, _, err := st.Step(nil, nil); !errors.Is(err, ErrProtocol) {
		t.Errorf("Step before Start should be a protocol error, got %v", err)
	}
}

func TestStepper2EmptyInputHalts(t *testing.T) {
	prog := victims.ZlibInsertString()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	e.VM.SetInput([]byte("ab")) // too short for the loop
	st := NewStepper2(e, "window", "head", true)
	_, ok, err := st.Start()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("2-byte input never touches head; Start should report halt")
	}
}

func TestEnclaveProtectUnknownSymbol(t *testing.T) {
	prog := victims.ZlibInsertString()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Protect("nothere", vm.PermRW); err == nil {
		t.Error("protecting an unknown symbol should error")
	}
}

func TestEnclaveOnFaultHook(t *testing.T) {
	prog := victims.BzipFtabAligned()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	e.VM.SetInput([]byte("xy"))
	faults := 0
	e.OnFault = func() { faults++ }
	if err := e.Protect("ftab", vm.PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resume(); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Errorf("OnFault fired %d times, want 1", faults)
	}
}

func TestEnclavePhysAddr(t *testing.T) {
	prog := victims.BzipFtabAligned()
	e, err := NewEnclave(prog, NewFrameAllocator(0x9000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	block := prog.MustSymbol("block")
	pa, err := e.PhysAddr(block.Addr + 123)
	if err != nil {
		t.Fatal(err)
	}
	frame, ok := e.FrameOf(block.Addr)
	if !ok {
		t.Fatal("block page should be mapped")
	}
	want := frame*PageSize + (block.Addr+123)%PageSize
	if pa != want {
		t.Errorf("PhysAddr = %#x, want %#x", pa, want)
	}
}
