package sgx

import "github.com/zipchannel/zipchannel/internal/obs"

// enclaveObs holds the enclave's pre-resolved instruments (nil until
// AttachObs; obs methods no-op on nil).
type enclaveObs struct {
	faults    *obs.Counter
	mprotects *obs.Counter
	remaps    *obs.Counter
	faultPage *obs.Histogram
}

// AttachObs registers enclave telemetry on reg: sgx.faults (deliveries),
// sgx.mprotect (permission flips), sgx.remaps (frame moves), and the
// sgx.fault_page histogram of faulting page indexes relative to the data
// base.
func (e *Enclave) AttachObs(reg *obs.Registry) {
	e.obs.faults = reg.Counter("sgx.faults")
	e.obs.mprotects = reg.Counter("sgx.mprotect")
	e.obs.remaps = reg.Counter("sgx.remaps")
	e.obs.faultPage = reg.Histogram("sgx.fault_page")
}

// stepperObs is shared by both controlled-channel steppers; the metric
// prefix distinguishes them (sgx.step vs sgx.step2).
type stepperObs struct {
	starts      *obs.Counter
	transitions *obs.Counter
	iterations  *obs.Counter
	s0s1        *obs.Counter
	s1s2        *obs.Counter
	s2s4        *obs.Counter
}

func attachStepperObs(reg *obs.Registry, prefix string) stepperObs {
	return stepperObs{
		starts:      reg.Counter(prefix + ".starts"),
		transitions: reg.Counter(prefix + ".transitions"),
		iterations:  reg.Counter(prefix + ".iterations"),
		s0s1:        reg.Counter(prefix + ".s0_s1"),
		s1s2:        reg.Counter(prefix + ".s1_s2"),
		s2s4:        reg.Counter(prefix + ".s2_s4"),
	}
}

// AttachObs registers the Fig 5 state machine's telemetry on reg under
// sgx.step: starts, per-edge transition counts (s0_s1, s1_s2, s2_s4),
// completed iterations, and raw permission-flip transitions.
func (s *Stepper) AttachObs(reg *obs.Registry) {
	s.obs = attachStepperObs(reg, "sgx.step")
	// reg also backs the fault-path counters (sgx.step.protect_retries,
	// sgx.step.noise_storms), registered lazily on first injection so
	// fault-free runs keep their snapshots unchanged.
	s.reg = reg
}

// AttachObs registers the two-array stepper's telemetry on reg under
// sgx.step2 (the s*_s* edge counters stay zero; its protocol has a single
// resume pair per iteration).
func (s *Stepper2) AttachObs(reg *obs.Registry) {
	s.obs = attachStepperObs(reg, "sgx.step2")
}
