// Package sgx simulates the enclave environment of the paper's first
// attack (§V): victim code runs on paged memory whose page tables the
// attacker (playing the malicious OS) controls. The attacker revokes page
// permissions (mprotect) to single-step the victim, receives page faults
// whose addresses are masked to page granularity (as SGX masks them), and
// remaps physical frames for the frame-selection technique (§V-C2).
package sgx

import (
	"errors"
	"fmt"

	"github.com/zipchannel/zipchannel/internal/isa"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// PageSize re-exports the MMU page size.
const PageSize = vm.PageSize

// FrameAllocator hands out physical frame numbers from a bounded pool,
// modelling the limited EPC (128 MiB on the paper's platform).
type FrameAllocator struct {
	next, limit uint64
	free        []uint64
}

// NewFrameAllocator serves frames [start, start+count).
func NewFrameAllocator(start, count uint64) *FrameAllocator {
	return &FrameAllocator{next: start, limit: start + count}
}

// ErrNoFrames reports pool exhaustion — the paper's "exhaust all free
// physical pages" failure mode that bounds attack accuracy (§V-E).
var ErrNoFrames = errors.New("sgx: physical frame pool exhausted")

// Alloc returns a fresh frame number.
func (f *FrameAllocator) Alloc() (uint64, error) {
	if n := len(f.free); n > 0 {
		fr := f.free[n-1]
		f.free = f.free[:n-1]
		return fr, nil
	}
	if f.next >= f.limit {
		return 0, ErrNoFrames
	}
	fr := f.next
	f.next++
	return fr, nil
}

// Free returns a frame to the pool.
func (f *FrameAllocator) Free(frame uint64) { f.free = append(f.free, frame) }

// Remaining counts frames still available.
func (f *FrameAllocator) Remaining() int { return int(f.limit-f.next) + len(f.free) }

// MaskedFault is what the attacker's fault handler sees: SGX zeroes the
// low 12 address bits, so only the page base is architectural (§V-B).
type MaskedFault struct {
	PageBase uint64 // virtual page base of the faulting access
	Write    bool
}

// Enclave wraps a victim program running on attacker-controlled paging.
type Enclave struct {
	Prog *isa.Program
	VM   *vm.VM
	Mem  *vm.PagedMemory

	// OnFault, if set, runs whenever a fault is delivered, before Resume
	// returns: the hook where the simulation injects the kernel's
	// fault-handling cache footprint (the fixed-set SGX/OS noise of
	// §V-C2).
	OnFault func()

	frames *FrameAllocator
	// pageFrame records the current frame of each mapped virtual page.
	pageFrame map[uint64]uint64

	obs enclaveObs
}

// NewEnclave loads prog into a fresh paged address space, mapping every
// data page (plus a stack page) to frames from alloc.
func NewEnclave(prog *isa.Program, alloc *FrameAllocator) (*Enclave, error) {
	mem := vm.NewPagedMemory()
	e := &Enclave{Prog: prog, Mem: mem, frames: alloc, pageFrame: map[uint64]uint64{}}

	start := prog.DataBase / PageSize
	end := (prog.DataBase + prog.DataSize + PageSize - 1) / PageSize
	for vpn := start; vpn < end; vpn++ {
		fr, err := alloc.Alloc()
		if err != nil {
			return nil, fmt.Errorf("sgx: mapping enclave pages: %w", err)
		}
		mem.Map(vpn, fr, vm.PermRW)
		e.pageFrame[vpn] = fr
	}
	machine, err := vm.New(prog, mem)
	if err != nil {
		return nil, err
	}
	e.VM = machine
	return e, nil
}

// SetObserver routes the enclave's physical memory accesses to the cache
// simulator.
func (e *Enclave) SetObserver(o vm.AccessObserver) { e.Mem.SetObserver(o) }

// Protect changes permissions on every page of the named data symbol: the
// attack's mprotect primitive.
func (e *Enclave) Protect(symbol string, perm vm.Perm) error {
	sym, ok := e.Prog.Symbols[symbol]
	if !ok {
		return fmt.Errorf("sgx: no symbol %q in %q", symbol, e.Prog.Name)
	}
	e.obs.mprotects.Inc()
	return e.Mem.ProtectRange(sym.Addr, sym.Size, perm)
}

// Resume runs the enclave until it halts or faults. On a fault it returns
// the masked fault; the enclave remains resumable after the attacker
// restores permissions.
func (e *Enclave) Resume() (*MaskedFault, error) {
	err := e.VM.Run()
	if err == nil {
		return nil, nil // halted
	}
	var f *vm.Fault
	if errors.As(err, &f) {
		if e.OnFault != nil {
			e.OnFault()
		}
		e.obs.faults.Inc()
		pageBase := f.Addr &^ (PageSize - 1)
		e.obs.faultPage.Observe(int64(pageBase/PageSize) - int64(e.Prog.DataBase/PageSize))
		return &MaskedFault{PageBase: pageBase, Write: f.Write}, nil
	}
	return nil, err
}

// Halted reports whether the enclave finished.
func (e *Enclave) Halted() bool { return e.VM.Halted }

// FrameOf returns the physical frame currently backing vaddr. The
// attacker runs the OS, so this is architectural knowledge.
func (e *Enclave) FrameOf(vaddr uint64) (uint64, bool) {
	return e.Mem.FrameOf(vaddr)
}

// PhysAddr translates a virtual address (attacker = OS).
func (e *Enclave) PhysAddr(vaddr uint64) (uint64, error) {
	return e.Mem.Translate(vaddr)
}

// RemapPage moves the page containing vaddr onto a fresh frame, returning
// the new frame; the old frame returns to the pool. This is the
// frame-selection move (§V-C2).
func (e *Enclave) RemapPage(vaddr uint64) (uint64, error) {
	vpn := vaddr / PageSize
	newFrame, err := e.frames.Alloc()
	if err != nil {
		return 0, err
	}
	if err := e.Mem.Remap(vpn, newFrame); err != nil {
		e.frames.Free(newFrame)
		return 0, err
	}
	if old, ok := e.pageFrame[vpn]; ok {
		e.frames.Free(old)
	}
	e.pageFrame[vpn] = newFrame
	e.obs.remaps.Inc()
	return newFrame, nil
}

// FramesRemaining exposes pool headroom (the attack gives up searching
// for quiet frames when the pool runs dry).
func (e *Enclave) FramesRemaining() int { return e.frames.Remaining() }
