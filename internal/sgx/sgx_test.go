package sgx

import (
	"errors"
	"testing"

	"github.com/zipchannel/zipchannel/internal/victims"
	"github.com/zipchannel/zipchannel/internal/vm"
)

func TestFrameAllocator(t *testing.T) {
	fa := NewFrameAllocator(100, 3)
	a, _ := fa.Alloc()
	b, _ := fa.Alloc()
	if a == b {
		t.Error("frames should be distinct")
	}
	fa.Free(a)
	c, _ := fa.Alloc()
	if c != a {
		t.Errorf("freed frame should be reused: got %d, want %d", c, a)
	}
	if _, err := fa.Alloc(); err != nil {
		t.Errorf("third frame should still be available: %v", err)
	}
	if _, err := fa.Alloc(); !errors.Is(err, ErrNoFrames) {
		t.Errorf("pool exhaustion should return ErrNoFrames, got %v", err)
	}
}

func TestEnclaveRunsToCompletion(t *testing.T) {
	prog := victims.BzipFtabAligned()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	e.VM.SetInput([]byte("BANANA"))
	f, err := e.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if f != nil {
		t.Fatalf("unexpected fault: %+v", f)
	}
	if !e.Halted() {
		t.Error("enclave should have halted")
	}
	// The histogram counted the input pairs: check ftab["AN"] == 2.
	ftab := prog.MustSymbol("ftab")
	j := uint64('A')<<8 | uint64('N')
	v, err := e.Mem.Load(ftab.Addr+j*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf(`ftab["AN"] = %d, want 2`, v)
	}
}

func TestEnclaveMaskedFault(t *testing.T) {
	prog := victims.BzipFtabAligned()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	e.VM.SetInput([]byte("HELLO"))
	if err := e.Protect("ftab", vm.PermRead); err != nil {
		t.Fatal(err)
	}
	f, err := e.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("expected a fault on the ftab clear loop")
	}
	if f.PageBase%PageSize != 0 {
		t.Errorf("fault address %#x not page-masked", f.PageBase)
	}
	if !f.Write {
		t.Error("ftab clearing should fault on write")
	}
}

func TestEnclaveRemapKeepsContents(t *testing.T) {
	prog := victims.BzipFtabAligned()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	block := prog.MustSymbol("block")
	if err := e.Mem.WriteBytes(block.Addr, []byte("persist")); err != nil {
		t.Fatal(err)
	}
	oldFrame, _ := e.FrameOf(block.Addr)
	newFrame, err := e.RemapPage(block.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if newFrame == oldFrame {
		t.Error("remap should change the frame")
	}
	got, err := e.Mem.ReadBytes(block.Addr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Errorf("contents lost on remap: %q", got)
	}
}

// The stepper must single-step the whole loop, delivering exactly one
// ftab page per input byte, with the pages matching ground truth.
func TestStepperSingleStepsAllIterations(t *testing.T) {
	prog := victims.BzipFtabAligned()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("The quick brown fox jumps over the lazy dog")
	e.VM.SetInput(input)

	st := NewStepper(e, "quadrant", "block", "ftab")
	var transitions int
	st.OnTransition = func() { transitions++ }

	ok, err := st.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if !ok {
		t.Fatal("Start: enclave halted before the loop")
	}

	ftab := prog.MustSymbol("ftab")
	n := len(input)
	var pages []uint64
	for {
		var page uint64
		done, err := st.Step(func(p uint64) { page = p }, nil)
		if err != nil {
			t.Fatalf("Step %d: %v", len(pages), err)
		}
		pages = append(pages, page)
		if done {
			break
		}
		if len(pages) > n+1 {
			t.Fatal("stepper did not terminate")
		}
	}
	if len(pages) != n {
		t.Fatalf("observed %d iterations, want %d", len(pages), n)
	}
	// Ground truth: iteration k corresponds to i = n-1-k, j =
	// block[i]<<8 | block[(i+1)%n]; the page is of ftab.Addr + 4j.
	for k, page := range pages {
		i := n - 1 - k
		j := uint64(input[i])<<8 | uint64(input[(i+1)%n])
		want := (ftab.Addr + 4*j) &^ (PageSize - 1)
		if page != want {
			t.Errorf("iteration %d: page %#x, want %#x", k, page, want)
		}
	}
	if transitions == 0 {
		t.Error("transition hook never fired")
	}
}

// After single-stepping, the histogram must equal a natively computed one:
// stepping must not corrupt execution.
func TestStepperPreservesSemantics(t *testing.T) {
	prog := victims.BzipFtab(victims.BzipFtabOptions{FtabPad: 20})
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 8192))
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("abracadabra")
	e.VM.SetInput(input)
	st := NewStepper(e, "quadrant", "block", "ftab")
	if ok, err := st.Start(); err != nil || !ok {
		t.Fatalf("Start: ok=%v err=%v", ok, err)
	}
	for {
		done, err := st.Step(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	// Recompute expected histogram.
	n := len(input)
	want := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		j := uint64(input[i])<<8 | uint64(input[(i+1)%n])
		want[j]++
	}
	ftab := prog.MustSymbol("ftab")
	for j, cnt := range want {
		got, err := e.Mem.Load(ftab.Addr+4*j, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != cnt {
			t.Errorf("ftab[%#x] = %d, want %d", j, got, cnt)
		}
	}
}

func TestStepperEmptyInput(t *testing.T) {
	prog := victims.BzipFtabAligned()
	e, err := NewEnclave(prog, NewFrameAllocator(0x1000, 4096))
	if err != nil {
		t.Fatal(err)
	}
	e.VM.SetInput(nil)
	st := NewStepper(e, "quadrant", "block", "ftab")
	ok, err := st.Start()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("empty input should halt before the loop")
	}
	if _, err := st.Step(nil, nil); !errors.Is(err, ErrProtocol) {
		t.Errorf("Step without loop entry should be a protocol error, got %v", err)
	}
}
