package sgx

import (
	"errors"
	"fmt"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/vm"
)

// protectRetries bounds how many times a fault-injected Protect failure is
// retried. Protect only writes page permissions, so retrying is always
// safe; each retry replays one transition's worth of kernel noise — the
// cache footprint a real retried mprotect syscall would leave behind.
const protectRetries = 3

// ErrProtocol reports that the victim faulted somewhere the Fig 5 state
// machine does not expect (e.g. a different gadget layout).
var ErrProtocol = errors.New("sgx: single-step protocol violation")

// Stepper drives the controlled-channel state machine of Fig 5 over the
// bzip2 histogram gadget: by rotating revoked permissions across the
// quadrant, block, and ftab arrays — each accessed by exactly one line of
// the loop — it single-steps the enclave one loop iteration at a time and
// exposes the page of each ftab access.
type Stepper struct {
	e                     *Enclave
	quadrant, block, ftab string

	// OnTransition, if set, runs at every permission flip + resume: the
	// hook where the simulation injects the OS/SGX transition noise that
	// motivates frame selection (§V-C2).
	OnTransition func()

	// FaultProtect (error kind: sgx.stepper.protect) fails permission
	// flips, which the stepper retries up to protectRetries times;
	// FaultTransition (latency kind: sgx.stepper.transition) injects noise
	// storms — Param extra rounds of OnTransition noise in the attack
	// window, an interrupt burst landing mid-measurement. Nil or disarmed
	// points leave the protocol byte-identical to a fault-free build.
	FaultProtect    *fault.Point
	FaultTransition *fault.Point

	started bool
	obs     stepperObs
	reg     *obs.Registry // backs lazily-registered fault-path counters
}

// NewStepper builds a stepper for the three gadget arrays.
func NewStepper(e *Enclave, quadrant, block, ftab string) *Stepper {
	return &Stepper{e: e, quadrant: quadrant, block: block, ftab: ftab}
}

func (s *Stepper) transition() {
	s.obs.transitions.Inc()
	if s.OnTransition != nil {
		s.OnTransition()
	}
	if in := s.FaultTransition.Hit(); in.Kind == fault.KindLatency {
		if s.reg != nil {
			s.reg.Counter("sgx.step.noise_storms").Inc()
		}
		n := int(in.Param)
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n && s.OnTransition != nil; i++ {
			s.OnTransition()
		}
	}
}

// protect flips one array's permissions, absorbing injected failures: a
// fault-injected Protect error is retried (the flip is idempotent), and
// the failed syscall still costs a transition's worth of kernel cache
// noise, so the injected failure measurably perturbs the attack window.
func (s *Stepper) protect(symbol string, perm vm.Perm) error {
	for attempt := 0; ; attempt++ {
		if err := s.FaultProtect.Err(); err != nil {
			if attempt < protectRetries {
				if s.reg != nil {
					s.reg.Counter("sgx.step.protect_retries").Inc()
				}
				s.transition()
				continue
			}
			return fmt.Errorf("sgx: protect %s: %w", symbol, err)
		}
		return s.e.Protect(symbol, perm)
	}
}

// Start lets the enclave run its input read and ftab clearing, then stops
// it at the first quadrant store (state S0). Returns false if the enclave
// halted before reaching the loop (empty input).
func (s *Stepper) Start() (bool, error) {
	if err := s.protect(s.quadrant, vm.PermRead); err != nil {
		return false, err
	}
	s.transition()
	f, err := s.e.Resume()
	if err != nil {
		return false, err
	}
	if f == nil {
		return false, nil // halted: input too short to enter the loop
	}
	if !f.Write {
		return false, fmt.Errorf("%w: expected quadrant write fault, got read fault at %#x", ErrProtocol, f.PageBase)
	}
	s.started = true
	s.obs.starts.Inc()
	return true, nil
}

// Step advances one loop iteration. It:
//
//  1. S0->S1: restores quadrant, revokes block; the quadrant store runs,
//     the block load faults.
//  2. S1->S2: restores block, revokes ftab writes; the block load runs,
//     the ftab store faults — its masked address gives the accessed page.
//  3. calls prime(ftabPageBase): the attacker fills the monitored sets.
//  4. S2->S3->S4: restores ftab, revokes quadrant; exactly one victim
//     memory access (the ftab increment) executes before the next
//     iteration's quadrant store faults (or the loop exits and the
//     enclave halts).
//  5. calls probe(): the attacker measures.
//
// Returns done=true when the enclave halted (last iteration completed).
func (s *Stepper) Step(prime func(ftabPage uint64), probe func()) (done bool, err error) {
	if !s.started {
		return false, fmt.Errorf("%w: Step before Start", ErrProtocol)
	}
	// S0 -> S1.
	if err := s.protect(s.quadrant, vm.PermRW); err != nil {
		return false, err
	}
	if err := s.protect(s.block, 0); err != nil {
		return false, err
	}
	s.transition()
	f, err := s.e.Resume()
	if err != nil {
		return false, err
	}
	if f == nil || f.Write {
		return false, fmt.Errorf("%w: expected block read fault, got %+v", ErrProtocol, f)
	}
	s.obs.s0s1.Inc()

	// S1 -> S2.
	if err := s.protect(s.block, vm.PermRW); err != nil {
		return false, err
	}
	if err := s.protect(s.ftab, vm.PermRead); err != nil {
		return false, err
	}
	s.transition()
	f, err = s.e.Resume()
	if err != nil {
		return false, err
	}
	if f == nil || !f.Write {
		return false, fmt.Errorf("%w: expected ftab write fault, got %+v", ErrProtocol, f)
	}
	s.obs.s1s2.Inc()
	ftabPage := f.PageBase

	if prime != nil {
		prime(ftabPage)
	}

	// S2 -> S3 -> S4: the single ftab access executes. This transition's
	// own kernel footprint still pollutes the cache (the attacker "simply
	// logs any noisy cache lines ... and will treat them as false
	// positives", §V-C2), which is what frame selection compensates for.
	if err := s.protect(s.ftab, vm.PermRW); err != nil {
		return false, err
	}
	if err := s.protect(s.quadrant, vm.PermRead); err != nil {
		return false, err
	}
	s.transition()
	f, err = s.e.Resume()
	if err != nil {
		return false, err
	}

	s.obs.s2s4.Inc()
	if probe != nil {
		probe()
	}
	s.obs.iterations.Inc()

	if f == nil {
		return true, nil // enclave halted: that was the last iteration
	}
	if !f.Write {
		return false, fmt.Errorf("%w: expected quadrant write fault, got read fault", ErrProtocol)
	}
	return false, nil
}

// DryTransition repeats the S2 permission traffic without letting the
// victim touch ftab, so the attacker can observe which monitored sets the
// transition noise itself pollutes (§V-C2's frame-selection probe).
func (s *Stepper) DryTransition() {
	s.transition()
}
