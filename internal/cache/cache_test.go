package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Sets: 16, Ways: 4, Slices: 1, LineSize: 64, Jitter: 0})
}

func TestHitAfterMiss(t *testing.T) {
	c := small()
	r1 := c.Access(1, 0x1000)
	if r1.Hit {
		t.Error("first access should miss")
	}
	r2 := c.Access(1, 0x1000)
	if !r2.Hit {
		t.Error("second access should hit")
	}
	if r2.Latency >= r1.Latency {
		t.Errorf("hit latency %d should be below miss latency %d", r2.Latency, r1.Latency)
	}
	r3 := c.Access(1, 0x1030) // same line (offset 0x30 < 64)
	if !r3.Hit {
		t.Error("same-line access should hit")
	}
}

func TestFillSetThenEvict(t *testing.T) {
	c := small()
	// Addresses mapping to the same set: stride = sets * lineSize = 1024.
	base := uint64(0x4000)
	for i := 0; i < 4; i++ {
		c.Access(1, base+uint64(i)*1024)
	}
	for i := 0; i < 4; i++ {
		if !c.Contains(base + uint64(i)*1024) {
			t.Errorf("line %d should be resident after fill", i)
		}
	}
	// Fifth distinct line evicts exactly the LRU (line 0).
	r := c.Access(1, base+4*1024)
	if r.Hit {
		t.Error("fifth line should miss")
	}
	if r.Evicted != c.LineOf(base) {
		t.Errorf("evicted %#x, want LRU line %#x", r.Evicted, c.LineOf(base))
	}
	if c.Contains(base) {
		t.Error("LRU line should be gone")
	}
	if c.OccupancyOf(1, base) != 4 {
		t.Errorf("occupancy = %d, want 4", c.OccupancyOf(1, base))
	}
}

func TestLRUOrderRespectsTouches(t *testing.T) {
	c := small()
	base := uint64(0)
	for i := 0; i < 4; i++ {
		c.Access(1, base+uint64(i)*1024)
	}
	c.Access(1, base) // touch line 0: now line 1 is LRU
	r := c.Access(1, base+4*1024)
	if r.Evicted != c.LineOf(base+1024) {
		t.Errorf("evicted %#x, want line 1 (%#x)", r.Evicted, c.LineOf(base+1024))
	}
}

func TestFlushRemovesLine(t *testing.T) {
	c := small()
	c.Access(1, 0x2000)
	if !c.Contains(0x2000) {
		t.Fatal("line should be resident")
	}
	c.Flush(0x2000)
	if c.Contains(0x2000) {
		t.Error("line should be flushed")
	}
	if c.Access(1, 0x2000).Hit {
		t.Error("access after flush should miss")
	}
	if c.Flushes() != 1 {
		t.Errorf("flush count = %d", c.Flushes())
	}
}

func TestCATMaskConfinesAllocation(t *testing.T) {
	c := small()
	const (
		cosA = 1
		cosB = 2
	)
	c.SetCoSMask(cosA, 0b0011) // ways 0-1
	c.SetCoSMask(cosB, 0b1100) // ways 2-3
	c.AssignActor(10, cosA)
	c.AssignActor(20, cosB)
	// Actor 10 fills its 2 ways, then actor 20 fills its 2 ways; none of
	// actor 10's lines may be evicted by actor 20.
	for i := 0; i < 2; i++ {
		c.Access(10, uint64(i)*1024)
	}
	for i := 0; i < 8; i++ {
		r := c.Access(20, 0x100000+uint64(i)*1024)
		if r.Victim == 10 {
			t.Fatalf("CAT-isolated actor 20 evicted actor 10's line on access %d", i)
		}
	}
	for i := 0; i < 2; i++ {
		if !c.Contains(uint64(i) * 1024) {
			t.Errorf("actor 10's line %d should survive CAT-isolated pressure", i)
		}
	}
}

func TestCATSingleWay(t *testing.T) {
	// The paper reduces the cache to a single way; with one way, every
	// distinct same-set line evicts the previous.
	c := small()
	c.SetCoSMask(1, 0b0001)
	c.AssignActor(1, 1)
	c.Access(1, 0)
	c.Access(1, 1024)
	if c.Contains(0) {
		t.Error("single-way CoS must evict the previous line")
	}
}

func TestSliceHashStableAndInRange(t *testing.T) {
	c := New(Config{Sets: 64, Ways: 4, Slices: 4, Jitter: 0})
	counts := make([]int, 4)
	prop := func(addr uint64) bool {
		s := c.SliceOf(addr)
		if s < 0 || s >= 4 {
			return false
		}
		counts[s]++
		return s == c.SliceOf(addr) // deterministic
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
	for s, n := range counts {
		if n < 500 { // roughly uniform over 4000 samples
			t.Errorf("slice %d got only %d/4000 addresses", s, n)
		}
	}
}

func TestSameLineSameSet(t *testing.T) {
	c := New(Config{Sets: 64, Ways: 4, Slices: 4, Jitter: 0})
	for off := uint64(0); off < 64; off++ {
		if c.GlobalSet(0x12340) != c.GlobalSet(0x12340+off) {
			t.Fatalf("offset %d changed the set", off)
		}
	}
}

func TestReplacementPolicies(t *testing.T) {
	for _, pol := range []Policy{LRU, TreePLRU, RandomRepl} {
		t.Run(pol.String(), func(t *testing.T) {
			c := New(Config{Sets: 16, Ways: 4, Slices: 1, Replacement: pol, Jitter: 0, Seed: 42})
			// Invariant: a set never holds more lines than ways, and a
			// re-access of a resident line always hits.
			for i := 0; i < 100; i++ {
				addr := uint64(i%7) * 1024
				c.Access(1, addr)
				if !c.Access(1, addr).Hit {
					t.Fatalf("immediate re-access of %#x missed under %v", addr, pol)
				}
			}
		})
	}
}

func TestJitterBounds(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 2, Slices: 1, HitLatency: 40, MissLatency: 200, Jitter: 5, Seed: 7})
	for i := 0; i < 200; i++ {
		r := c.Access(1, 0x5000)
		if i == 0 {
			if r.Latency < 195 || r.Latency > 205 {
				t.Errorf("miss latency %d outside [195,205]", r.Latency)
			}
			continue
		}
		if r.Latency < 35 || r.Latency > 45 {
			t.Errorf("hit latency %d outside [35,45]", r.Latency)
		}
	}
}

func TestOutliers(t *testing.T) {
	c := New(Config{Sets: 16, Ways: 2, Slices: 1, OutlierProb: 0.5, Seed: 3, Jitter: 0})
	c.Access(1, 0)
	spikes := 0
	for i := 0; i < 200; i++ {
		if c.Probe(1, 0) > 400 {
			spikes++
		}
	}
	if spikes < 50 || spikes > 150 {
		t.Errorf("outlier count %d implausible for p=0.5", spikes)
	}
}

func TestNoiseTick(t *testing.T) {
	c := small()
	n := NewNoise(99, 2.5, 0, 1<<20, 11)
	total := 0
	for i := 0; i < 1000; i++ {
		total += n.Tick(c)
	}
	if total < 2000 || total > 3000 {
		t.Errorf("noise total %d, want ~2500", total)
	}
	if c.Misses() == 0 {
		t.Error("noise should cause misses")
	}
	var nilNoise *Noise
	if nilNoise.Tick(c) != 0 {
		t.Error("nil noise should be a no-op")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets should panic")
		}
	}()
	New(Config{Sets: 3})
}
