package cache

// Hierarchy models a private L1 in front of the shared LLC, with
// configurable inclusivity. Cross-core Prime+Probe (the paper's §V
// channel) works because Intel's LLC was inclusive: evicting a line from
// the LLC back-invalidates the victim's L1 copy, forcing the next victim
// access to miss into the LLC where the attacker can see it. On a
// non-inclusive LLC the victim can keep hitting in its private L1 and the
// channel starves — the architectural caveat behind "attacks, including
// ours, resort to other levels" (§VII-C).
type Hierarchy struct {
	l1s       map[int]*Cache // private L1 per actor
	llc       *Cache
	inclusive bool
	l1cfg     Config
}

// HierarchyConfig describes the two levels.
type HierarchyConfig struct {
	L1        Config // per-actor private level (defaults: 64 sets, 8 ways)
	LLC       Config
	Inclusive bool
}

// NewHierarchy builds the two-level cache.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	l1 := cfg.L1
	if l1.Sets == 0 {
		l1.Sets = 64
	}
	if l1.Ways == 0 {
		l1.Ways = 8
	}
	if l1.Slices == 0 {
		l1.Slices = 1
	}
	if l1.HitLatency == 0 {
		l1.HitLatency = 4
	}
	if l1.MissLatency == 0 {
		l1.MissLatency = 40 // an L1 miss costs roughly an LLC hit
	}
	if l1.Obs == nil {
		l1.Obs = cfg.LLC.Obs // one registry wires both levels
	}
	if l1.MetricsPrefix == "" {
		l1.MetricsPrefix = "cache.l1"
	}
	llc := cfg.LLC
	if llc.MetricsPrefix == "" {
		llc.MetricsPrefix = "cache.llc"
	}
	return &Hierarchy{
		l1s:       map[int]*Cache{},
		llc:       New(llc),
		inclusive: cfg.Inclusive,
		l1cfg:     l1,
	}
}

// LLC exposes the shared level (the attacker probes it directly).
func (h *Hierarchy) LLC() *Cache { return h.llc }

func (h *Hierarchy) l1(actor int) *Cache {
	c, ok := h.l1s[actor]
	if !ok {
		cfg := h.l1cfg
		cfg.Seed += int64(actor)
		c = New(cfg)
		h.l1s[actor] = c
	}
	return c
}

// Access performs a hierarchical access: an L1 hit never reaches the
// LLC; an L1 miss allocates in both levels. With an inclusive LLC, any
// line the LLC evicts is back-invalidated from every L1.
func (h *Hierarchy) Access(actor int, paddr uint64) Result {
	l1 := h.l1(actor)
	r1 := l1.Access(actor, paddr)
	if r1.Hit {
		return r1
	}
	r2 := h.llc.Access(actor, paddr)
	if h.inclusive && r2.Evicted != ^uint64(0) {
		evictedAddr := h.llc.AddrOfLine(r2.Evicted)
		for _, other := range h.l1s {
			other.Flush(evictedAddr)
		}
	}
	r2.Latency += r1.Latency
	return r2
}

// Flush removes the line from every level (clflush semantics).
func (h *Hierarchy) Flush(paddr uint64) {
	for _, l1 := range h.l1s {
		l1.Flush(paddr)
	}
	h.llc.Flush(paddr)
}

// Contains reports residency at any level for the given actor's view.
func (h *Hierarchy) Contains(actor int, paddr uint64) bool {
	return h.l1(actor).Contains(paddr) || h.llc.Contains(paddr)
}
