// Package cache models a sliced, set-associative last-level cache with
// way-based Intel CAT partitioning, pluggable replacement policies, and a
// noisy latency model. It is the architectural substrate for the paper's
// Prime+Probe and Flush+Reload attacks: instead of timing real loads
// (which Go's runtime would perturb, per the reproduction brief), the
// attacker observes simulated latencies whose distribution mirrors
// hardware behaviour.
package cache

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strconv"

	"github.com/zipchannel/zipchannel/internal/obs"
)

// Policy selects the replacement policy.
type Policy uint8

// Replacement policies.
const (
	LRU Policy = iota
	TreePLRU
	RandomRepl
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TreePLRU:
		return "tree-plru"
	default:
		return "random"
	}
}

// Config describes the cache geometry and timing.
type Config struct {
	LineSize    int // bytes per line (default 64)
	Sets        int // sets per slice (default 1024, power of two)
	Ways        int // associativity (default 16)
	Slices      int // LLC slices (default 4, power of two)
	Replacement Policy

	HitLatency  int // cycles (default 40)
	MissLatency int // cycles (default 200)
	Jitter      int // +- uniform cycles of measurement noise (default 5)
	// OutlierProb injects occasional large latency spikes (context
	// switches, TLB misses); default 0.
	OutlierProb float64
	// OutlierLatency is the spike magnitude (default 800).
	OutlierLatency int

	Seed int64

	// Obs receives the cache's counters (hits, misses, evictions,
	// flushes, plus per-CoS splits) under MetricsPrefix. When nil the
	// cache keeps a private registry so the accessors still work.
	Obs *obs.Registry `json:"-"`
	// MetricsPrefix names this cache level in metric keys (default
	// "cache"; the hierarchy uses "cache.l1" / "cache.llc").
	MetricsPrefix string `json:",omitempty"`
}

func (c Config) withDefaults() Config {
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	if c.Sets == 0 {
		c.Sets = 1024
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
	if c.Slices == 0 {
		c.Slices = 4
	}
	if c.HitLatency == 0 {
		c.HitLatency = 40
	}
	if c.MissLatency == 0 {
		c.MissLatency = 200
	}
	if c.Jitter == 0 {
		c.Jitter = 5
	}
	if c.OutlierLatency == 0 {
		c.OutlierLatency = 800
	}
	return c
}

// DefaultCoS is the class of service used by accessors that were not
// explicitly assigned one; its mask allows every way.
const DefaultCoS = 0

type way struct {
	valid bool
	line  uint64 // line address (paddr >> log2(lineSize))
	owner int    // actor that brought the line in
	lru   uint64 // logical timestamp for LRU
}

type set struct {
	ways []way
	plru uint64 // tree-PLRU state bits
}

// Result describes one access.
type Result struct {
	Hit     bool
	Latency int
	Set     int // global set index (slice * sets + set)
	Slice   int
	Evicted uint64 // line address evicted on miss, or ^0 if none
	Victim  int    // owner of the evicted line, -1 if none
}

// cosCounters is the per-class-of-service hit/miss split.
type cosCounters struct {
	hits, misses *obs.Counter
}

// Cache is the simulated LLC. Not safe for concurrent use: the attack
// harness interleaves victim and attacker deterministically.
type Cache struct {
	cfg    Config
	slices [][]set
	cos    map[int]uint64 // class of service -> allowed-way bitmask
	actor  map[int]int    // actor -> class of service
	clock  uint64
	rng    *rand.Rand

	reg       *obs.Registry
	prefix    string
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	flushes   *obs.Counter
	cosStats  map[int]cosCounters

	setBits   int
	lineBits  int
	sliceBits int
	sliceMask []uint64 // per slice bit: the comb of line bits whose parity it is
}

// New builds a cache from cfg (zero fields take defaults).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.Slices&(cfg.Slices-1) != 0 ||
		cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: sets (%d), slices (%d), and line size (%d) must be powers of two",
			cfg.Sets, cfg.Slices, cfg.LineSize))
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry() // private: accessors work unattached
	}
	prefix := cfg.MetricsPrefix
	if prefix == "" {
		prefix = "cache"
	}
	c := &Cache{
		cfg:       cfg,
		cos:       map[int]uint64{DefaultCoS: waymask(cfg.Ways)},
		actor:     map[int]int{},
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		reg:       reg,
		prefix:    prefix,
		hits:      reg.Counter(prefix + ".hits"),
		misses:    reg.Counter(prefix + ".misses"),
		evictions: reg.Counter(prefix + ".evictions"),
		flushes:   reg.Counter(prefix + ".flushes"),
		cosStats:  map[int]cosCounters{},
		setBits:   bits.TrailingZeros(uint(cfg.Sets)),
		lineBits:  bits.TrailingZeros(uint(cfg.LineSize)),
		sliceBits: bits.TrailingZeros(uint(cfg.Slices)),
	}
	c.slices = make([][]set, cfg.Slices)
	for s := range c.slices {
		sets := make([]set, cfg.Sets)
		for i := range sets {
			sets[i].ways = make([]way, cfg.Ways)
		}
		c.slices[s] = sets
	}
	c.sliceMask = make([]uint64, c.sliceBits)
	for b := range c.sliceMask {
		var m uint64
		for p := uint(b); p < 64; p += uint(c.sliceBits + 1) {
			m |= 1 << p
		}
		c.sliceMask[b] = m
	}
	return c
}

func waymask(n int) uint64 { return (uint64(1) << uint(n)) - 1 }

// Config returns the (defaulted) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Hits returns the cumulative hit count.
func (c *Cache) Hits() uint64 { return c.hits.Value() }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() uint64 { return c.misses.Value() }

// Evictions returns the cumulative eviction count.
func (c *Cache) Evictions() uint64 { return c.evictions.Value() }

// Flushes returns the cumulative flush count.
func (c *Cache) Flushes() uint64 { return c.flushes.Value() }

// Accesses returns hits+misses.
func (c *Cache) Accesses() uint64 { return c.Hits() + c.Misses() }

// cosOf resolves an actor's class of service.
func (c *Cache) cosOf(actor int) int {
	cos, ok := c.actor[actor]
	if !ok {
		cos = DefaultCoS
	}
	return cos
}

// cosCountersFor lazily resolves the per-CoS hit/miss counters
// (<prefix>.cos<N>.hits / .misses).
func (c *Cache) cosCountersFor(cos int) cosCounters {
	cc, ok := c.cosStats[cos]
	if !ok {
		base := c.prefix + ".cos" + strconv.Itoa(cos)
		cc = cosCounters{
			hits:   c.reg.Counter(base + ".hits"),
			misses: c.reg.Counter(base + ".misses"),
		}
		c.cosStats[cos] = cc
	}
	return cc
}

// SetCoSMask defines a class of service as a bitmask over ways; this is
// the simulated `pqos` CAT configuration the attack uses to shrink the
// effective cache and shut out system noise (§V-C1).
func (c *Cache) SetCoSMask(cos int, mask uint64) {
	c.cos[cos] = mask & waymask(c.cfg.Ways)
}

// AssignActor pins an actor (victim, attacker, noise process) to a class
// of service.
func (c *Cache) AssignActor(actor, cos int) { c.actor[actor] = cos }

func (c *Cache) maskFor(actor int) uint64 {
	m, ok := c.cos[c.cosOf(actor)]
	if !ok || m == 0 {
		m = waymask(c.cfg.Ways)
	}
	return m
}

// LineOf returns the line address of a physical address.
func (c *Cache) LineOf(paddr uint64) uint64 { return paddr >> uint(c.lineBits) }

// AddrOfLine returns the first byte address of a line address.
func (c *Cache) AddrOfLine(line uint64) uint64 { return line << uint(c.lineBits) }

// SetOf returns (slice, set) for a physical address. The set index uses
// the address bits above the line offset; the slice uses the complex
// hash.
func (c *Cache) SetOf(paddr uint64) (slice, set int) {
	line := c.LineOf(paddr)
	return c.SliceOf(paddr), int(line & uint64(c.cfg.Sets-1))
}

// SliceOf computes the slice via an xor-folding hash over the line
// address, in the spirit of the reverse-engineered Intel complex
// addressing function (Liu et al., §V-C1).
func (c *Cache) SliceOf(paddr uint64) int {
	if c.cfg.Slices == 1 {
		return 0
	}
	line := c.LineOf(paddr)
	var out int
	for b := 0; b < c.sliceBits; b++ {
		// Each slice bit is the parity of a distinct comb of line bits;
		// the combs are precomputed masks, so a bit costs one popcount.
		out |= (bits.OnesCount64(line&c.sliceMask[b]) & 1) << uint(b)
	}
	return out
}

// GlobalSet returns a single index identifying (slice, set).
func (c *Cache) GlobalSet(paddr uint64) int {
	sl, st := c.SetOf(paddr)
	return sl*c.cfg.Sets + st
}

// Access simulates one access by actor to physical address paddr and
// returns the hit/miss outcome with a noisy latency.
func (c *Cache) Access(actor int, paddr uint64) Result {
	c.clock++
	line := c.LineOf(paddr)
	sl, st := c.SetOf(paddr)
	s := &c.slices[sl][st]
	res := Result{Set: sl*c.cfg.Sets + st, Slice: sl, Evicted: ^uint64(0), Victim: -1}

	cc := c.cosCountersFor(c.cosOf(actor))
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.line == line {
			w.lru = c.clock
			c.touchPLRU(s, i)
			res.Hit = true
			res.Latency = c.latency(c.cfg.HitLatency)
			c.hits.Inc()
			cc.hits.Inc()
			return res
		}
	}

	// Miss: allocate within the actor's CAT mask.
	c.misses.Inc()
	cc.misses.Inc()
	res.Latency = c.latency(c.cfg.MissLatency)
	mask := c.maskFor(actor)
	victim := c.pickVictim(s, mask)
	w := &s.ways[victim]
	if w.valid {
		res.Evicted = w.line
		res.Victim = w.owner
		c.evictions.Inc()
	}
	*w = way{valid: true, line: line, owner: actor, lru: c.clock}
	c.touchPLRU(s, victim)
	return res
}

// Probe is like Access but reports only what a timing measurement would
// reveal: the latency. Attackers use it for the probe phase.
func (c *Cache) Probe(actor int, paddr uint64) int {
	return c.Access(actor, paddr).Latency
}

// Flush removes the line containing paddr from the cache (clflush). It
// affects all ways regardless of CoS, like the real instruction.
func (c *Cache) Flush(paddr uint64) {
	line := c.LineOf(paddr)
	sl, st := c.SetOf(paddr)
	s := &c.slices[sl][st]
	for i := range s.ways {
		if s.ways[i].valid && s.ways[i].line == line {
			s.ways[i] = way{}
			c.flushes.Inc()
			return
		}
	}
}

// Contains reports whether the line of paddr is cached (test/diagnostic
// introspection; a real attacker infers this from Probe latency).
func (c *Cache) Contains(paddr uint64) bool {
	line := c.LineOf(paddr)
	sl, st := c.SetOf(paddr)
	for _, w := range c.slices[sl][st].ways {
		if w.valid && w.line == line {
			return true
		}
	}
	return false
}

// Heatmap returns the current set occupancy: valid-line counts indexed
// [slice][set]. Exported so tools can render which sets an attack run
// actually touched.
func (c *Cache) Heatmap() [][]int {
	hm := make([][]int, len(c.slices))
	for sl, sets := range c.slices {
		hm[sl] = make([]int, len(sets))
		for st := range sets {
			n := 0
			for _, w := range sets[st].ways {
				if w.valid {
					n++
				}
			}
			hm[sl][st] = n
		}
	}
	return hm
}

// EmitHeatmap writes the occupancy heatmap as one structured trace event
// ("cache.heatmap") on the cache's registry, if a trace sink is attached.
func (c *Cache) EmitHeatmap() {
	c.reg.Emit(c.prefix+".heatmap", map[string]any{
		"prefix":    c.prefix,
		"slices":    c.cfg.Slices,
		"sets":      c.cfg.Sets,
		"ways":      c.cfg.Ways,
		"occupancy": c.Heatmap(),
	})
}

// OccupancyOf returns how many valid lines actor owns in the set of paddr.
func (c *Cache) OccupancyOf(actor int, paddr uint64) int {
	sl, st := c.SetOf(paddr)
	n := 0
	for _, w := range c.slices[sl][st].ways {
		if w.valid && w.owner == actor {
			n++
		}
	}
	return n
}

func (c *Cache) pickVictim(s *set, mask uint64) int {
	// Prefer an invalid way within the mask.
	for i := range s.ways {
		if mask&(1<<uint(i)) != 0 && !s.ways[i].valid {
			return i
		}
	}
	switch c.cfg.Replacement {
	case LRU:
		best, bestLRU := -1, ^uint64(0)
		for i := range s.ways {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if s.ways[i].lru < bestLRU {
				best, bestLRU = i, s.ways[i].lru
			}
		}
		if best >= 0 {
			return best
		}
	case TreePLRU:
		if v := c.plruVictim(s, mask); v >= 0 {
			return v
		}
	case RandomRepl:
		candidates := make([]int, 0, len(s.ways))
		for i := range s.ways {
			if mask&(1<<uint(i)) != 0 {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) > 0 {
			return candidates[c.rng.Intn(len(candidates))]
		}
	}
	return 0 // empty mask: fall back to way 0
}

// plruVictim walks the PLRU tree, constrained to ways in the mask; if the
// tree leads outside the mask it falls back to the first allowed way.
func (c *Cache) plruVictim(s *set, mask uint64) int {
	n := len(s.ways)
	idx := 1 // tree node index, 1-based heap layout
	for idx < n {
		bit := (s.plru >> uint(idx)) & 1
		idx = idx*2 + int(bit)
	}
	v := idx - n
	if v >= 0 && v < n && mask&(1<<uint(v)) != 0 {
		return v
	}
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// touchPLRU flips the tree bits away from the touched way.
func (c *Cache) touchPLRU(s *set, wayIdx int) {
	n := len(s.ways)
	idx := wayIdx + n
	for idx > 1 {
		parent := idx / 2
		bit := uint64(idx & 1) // which child we are
		// Point the parent away from us.
		if bit == 0 {
			s.plru |= 1 << uint(parent)
		} else {
			s.plru &^= 1 << uint(parent)
		}
		idx = parent
	}
}

func (c *Cache) latency(base int) int {
	lat := base
	if c.cfg.Jitter > 0 {
		lat += c.rng.Intn(2*c.cfg.Jitter+1) - c.cfg.Jitter
	}
	if c.cfg.OutlierProb > 0 && c.rng.Float64() < c.cfg.OutlierProb {
		lat += c.cfg.OutlierLatency
	}
	if lat < 1 {
		lat = 1
	}
	return lat
}
