package cache

import "math/rand"

// Noise models the "other applications and signal handlers using the same
// cache" that cause false positives in the paper's Prime+Probe phase
// (§V-C). Each Tick performs a Poisson-ish number of random accesses from
// a dedicated noise actor over a configurable physical range.
type Noise struct {
	// Actor is the cache actor id the noise runs under; assign it to a
	// separate CAT class of service to reproduce the paper's isolation.
	Actor int
	// Rate is the expected number of noise accesses per Tick.
	Rate float64
	// Lo and Hi bound the physical address range the noise touches.
	Lo, Hi uint64

	rng *rand.Rand
}

// NewNoise creates a noise source with its own deterministic stream.
func NewNoise(actor int, rate float64, lo, hi uint64, seed int64) *Noise {
	return &Noise{Actor: actor, Rate: rate, Lo: lo, Hi: hi, rng: rand.New(rand.NewSource(seed))}
}

// FixedNoise models the OS/SGX fault-handling code paths of §V-C2: every
// delivery touches the same kernel lines, so the sets they map to are
// persistently polluted — exactly the pollution the paper's frame
// selection sidesteps by remapping the monitored array onto frames whose
// sets are quiet.
type FixedNoise struct {
	Actor int
	Addrs []uint64
}

// NewFixedNoise draws count fixed kernel line addresses in [lo, hi).
func NewFixedNoise(actor, count int, lo, hi uint64, seed int64) *FixedNoise {
	rng := rand.New(rand.NewSource(seed))
	n := &FixedNoise{Actor: actor}
	for i := 0; i < count; i++ {
		a := lo + uint64(rng.Int63n(int64(hi-lo)))
		n.Addrs = append(n.Addrs, a&^63) // line-aligned
	}
	return n
}

// Tick replays the fixed access pattern.
func (n *FixedNoise) Tick(c *Cache) int {
	if n == nil {
		return 0
	}
	for _, a := range n.Addrs {
		c.Access(n.Actor, a)
	}
	return len(n.Addrs)
}

// Tick injects this tick's noise accesses into c and returns how many
// were performed.
func (n *Noise) Tick(c *Cache) int {
	if n == nil || n.Rate <= 0 || n.Hi <= n.Lo {
		return 0
	}
	// Sample a count with mean Rate: floor plus Bernoulli remainder.
	count := int(n.Rate)
	if n.rng.Float64() < n.Rate-float64(count) {
		count++
	}
	for i := 0; i < count; i++ {
		addr := n.Lo + uint64(n.rng.Int63n(int64(n.Hi-n.Lo)))
		c.Access(n.Actor, addr)
	}
	return count
}
