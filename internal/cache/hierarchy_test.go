package cache

import "testing"

const (
	hVictim   = 1
	hAttacker = 2
)

func newHier(inclusive bool) *Hierarchy {
	return NewHierarchy(HierarchyConfig{
		LLC:       Config{Sets: 64, Ways: 4, Slices: 1, Jitter: 0},
		L1:        Config{Sets: 16, Ways: 2, Slices: 1, Jitter: 0},
		Inclusive: inclusive,
	})
}

func TestHierarchyL1HitHidesFromLLC(t *testing.T) {
	h := newHier(true)
	h.Access(hVictim, 0x1000)
	beforeHits, beforeMisses := h.LLC().Hits(), h.LLC().Misses()
	for i := 0; i < 10; i++ {
		r := h.Access(hVictim, 0x1000)
		if !r.Hit {
			t.Fatal("repeat access should hit L1")
		}
	}
	if h.LLC().Hits() != beforeHits || h.LLC().Misses() != beforeMisses {
		t.Error("L1 hits must not generate LLC traffic")
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := newHier(true)
	miss := h.Access(hVictim, 0x2000)
	hit := h.Access(hVictim, 0x2000)
	if hit.Latency >= miss.Latency {
		t.Errorf("L1 hit (%d) should be cheaper than full miss (%d)", hit.Latency, miss.Latency)
	}
}

// The attack-critical property: on an inclusive LLC, evicting the
// victim's line from the LLC (by cross-core Prime) back-invalidates its
// L1 copy, so the victim's next access misses into the LLC where the
// attacker observes it. On a non-inclusive LLC the victim keeps hitting
// in L1 and the Prime+Probe channel starves.
func TestHierarchyInclusivityEnablesPrimeProbe(t *testing.T) {
	run := func(inclusive bool) (victimMissesAfterEviction bool) {
		h := newHier(inclusive)
		victimAddr := uint64(0x3000)
		h.Access(hVictim, victimAddr) // victim caches its line in L1+LLC

		// Attacker evicts the victim's line from the shared LLC by
		// filling its set (stride = sets * lineSize = 4096).
		for i := 1; i <= 4; i++ {
			h.Access(hAttacker, victimAddr+uint64(i)*4096)
		}
		if h.LLC().Contains(victimAddr) {
			t.Fatal("attacker fill should have evicted the victim's LLC line")
		}
		r := h.Access(hVictim, victimAddr)
		return !r.Hit
	}
	if !run(true) {
		t.Error("inclusive LLC: back-invalidation should force a victim miss (observable)")
	}
	if run(false) {
		t.Error("non-inclusive LLC: the victim's L1 copy should survive (channel starves)")
	}
}

func TestHierarchyFlushAllLevels(t *testing.T) {
	h := newHier(true)
	h.Access(hVictim, 0x4000)
	if !h.Contains(hVictim, 0x4000) {
		t.Fatal("line should be resident")
	}
	h.Flush(0x4000)
	if h.Contains(hVictim, 0x4000) {
		t.Error("flush should clear every level")
	}
	if h.Access(hVictim, 0x4000).Hit {
		t.Error("post-flush access should miss")
	}
}

func TestHierarchyPrivateL1s(t *testing.T) {
	h := newHier(true)
	h.Access(hVictim, 0x5000)
	victimHit := h.Access(hVictim, 0x5000) // pure L1 hit
	// The attacker's first access to the same line misses its own
	// (private) L1 and pays the trip to the shared LLC, where it hits.
	r := h.Access(hAttacker, 0x5000)
	if !r.Hit {
		t.Error("the shared LLC should serve the attacker's access")
	}
	if r.Latency <= victimHit.Latency {
		t.Errorf("attacker's L1 miss (%d cycles) should cost more than a pure L1 hit (%d)",
			r.Latency, victimHit.Latency)
	}
}
