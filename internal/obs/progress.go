package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// StartProgress launches a goroutine that writes one status line to w
// every interval until the returned stop function is called (which also
// writes a final line). render builds the line from a fresh snapshot;
// when nil, DefaultProgressLine is used. Safe on a nil registry (returns
// a no-op stop).
//
// This backs the CLIs' -progress flag: counters are atomic, so the
// reporter can read a consistent-enough view mid-attack without pausing
// the simulation.
func (r *Registry) StartProgress(w io.Writer, interval time.Duration, render func(*Snapshot) string) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if render == nil {
		render = DefaultProgressLine
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, render(r.Snapshot()))
			case <-done:
				fmt.Fprintln(w, render(r.Snapshot()))
				return
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(done)
		<-finished
	}
}

// DefaultProgressLine summarizes the largest counters as "name=value"
// pairs on one line (top 6 by value, names sorted within the line).
func DefaultProgressLine(s *Snapshot) string {
	type kv struct {
		k string
		v uint64
	}
	all := make([]kv, 0, len(s.Counters))
	for k, v := range s.Counters {
		if v > 0 {
			all = append(all, kv{k, v})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if len(all) > 6 {
		all = all[:6]
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	var b strings.Builder
	b.WriteString("progress:")
	if len(all) == 0 {
		b.WriteString(" (no counters yet)")
	}
	for _, e := range all {
		fmt.Fprintf(&b, " %s=%d", e.k, e.v)
	}
	return b.String()
}
