package obs

import (
	"sync"
	"testing"
)

func TestCounterShardValueExact(t *testing.T) {
	c := NewCounter()
	c.Add(5) // base slot

	// More owners than slots: round-robin must reuse them without losing
	// counts.
	const owners = numCounterShards*2 + 3
	var want uint64 = 5
	for i := 0; i < owners; i++ {
		s := c.Shard()
		if s == nil {
			t.Fatalf("Shard() returned nil on non-nil counter")
		}
		s.Inc()
		s.Add(uint64(i))
		want += 1 + uint64(i)
	}
	if got := c.Value(); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
}

func TestCounterShardNil(t *testing.T) {
	var c *Counter
	s := c.Shard()
	s.Inc() // must not panic
	s.Add(3)
	if c.Value() != 0 {
		t.Fatalf("nil counter Value() = %d", c.Value())
	}
}

func TestCounterShardConcurrent(t *testing.T) {
	c := NewCounter()
	const (
		workers = 8
		perG    = 10000
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.Shard()
			for j := 0; j < perG; j++ {
				s.Inc()
				c.Inc() // base slot in parallel with shards
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(2*workers*perG); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
}

func TestRegistryCounterSharedAcrossShards(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x").Shard()
	b := r.Counter("x").Shard()
	a.Inc()
	b.Inc()
	r.Counter("x").Inc()
	if got := r.Counter("x").Value(); got != 3 {
		t.Fatalf("shared counter Value() = %d, want 3", got)
	}
}
