// Package obs is the repository's unified attack-telemetry layer: a
// zero-dependency, concurrency-safe registry of counters, gauges, and
// log-bucketed histograms, plus span timers with a simulation-clock /
// wall-clock dual, an NDJSON structured-event trace sink, and a periodic
// progress reporter.
//
// The design constraints come from the attacks themselves (see ISSUE 1):
//
//   - No globals. A *Registry is created by whoever owns a run (a CLI, an
//     experiment, a test) and passed down explicitly; modules hang their
//     instruments off it at construction/attach time.
//   - Deterministic snapshots. Under a fixed seed, two runs of the same
//     attack must produce byte-identical Snapshot JSON, so everything a
//     Snapshot contains derives from simulation state only: counters,
//     gauges, and histograms over simulated quantities. Wall-clock data
//     (span durations, traces/sec) is kept out of snapshots — it is
//     available via WallTotals and the trace sink instead.
//   - Nil-safety everywhere. A nil *Registry hands out nil instruments,
//     and every instrument method is a no-op on a nil receiver, so
//     instrumented hot paths need no conditionals.
//   - Cheap hot paths. Instruments are resolved once (by name, under a
//     read-mostly registry lock) and then updated with single atomic
//     operations. Hot writers additionally take a padded per-owner shard
//     of their counter (Counter.Shard), so concurrent simulation tasks
//     increment disjoint cache lines instead of bouncing one; Value
//     remains exact at every instant (DESIGN.md §7).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry owns a namespace of metrics and the run's trace sink. All
// methods are safe for concurrent use; instruments with the same name are
// shared (two modules asking for "cache.hits" get the same counter).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	wall     map[string]*Counter // cumulative wall ns per span, not snapshotted
	simClock func() uint64
	sink     *TraceSink
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		wall:     map[string]*Counter{},
	}
}

// Counter returns (creating if needed) the named counter. Returns nil —
// a valid no-op instrument — when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok = r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil registry gives
// a no-op instrument.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok = r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil
// registry gives a no-op instrument.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok = r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// SetSimClock installs the simulation clock spans and trace events stamp
// their "sim" field with (e.g. the victim VM's retired-instruction
// count, or the cache's access clock). The function must be cheap and is
// called outside the registry lock.
func (r *Registry) SetSimClock(fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.simClock = fn
	r.mu.Unlock()
}

// SimNow reads the installed simulation clock (0 when none is set).
func (r *Registry) SimNow() uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	fn := r.simClock
	r.mu.RUnlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// SetTraceSink routes structured events (Emit, span ends) to s; nil
// detaches.
func (r *Registry) SetTraceSink(s *TraceSink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

func (r *Registry) traceSink() *TraceSink {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	s := r.sink
	r.mu.RUnlock()
	return s
}

// Emit writes one structured event to the trace sink, stamped with the
// sim clock. A nil registry or absent sink drops the event.
func (r *Registry) Emit(event string, fields map[string]any) {
	s := r.traceSink()
	if s == nil {
		return
	}
	s.Emit(event, r.SimNow(), fields)
}

// wallCounter returns the hidden wall-time accumulator for a span name.
func (r *Registry) wallCounter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.wall[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok = r.wall[name]
	if !ok {
		c = NewCounter()
		r.wall[name] = c
	}
	return c
}

// WallTotals returns cumulative wall-clock nanoseconds per span name.
// Wall time is deliberately excluded from Snapshot (it would break
// byte-identical snapshots under a fixed seed); this accessor serves
// progress lines and human diagnostics.
func (r *Registry) WallTotals() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.wall))
	for k, c := range r.wall {
		out[k] = c.Value()
	}
	return out
}

// DeclareCounters registers the named counters at zero without touching
// them. Servers call this at startup so every operational counter is
// present (at 0) from the very first scrape, instead of popping into
// existence when its first event happens — a scraper computing rates
// needs the zero point. Nil-safe.
func (r *Registry) DeclareCounters(names ...string) {
	for _, n := range names {
		r.Counter(n)
	}
}

// DeclareGauges registers the named gauges at zero (see DeclareCounters).
func (r *Registry) DeclareGauges(names ...string) {
	for _, n := range names {
		r.Gauge(n)
	}
}

// DeclareHistograms registers the named histograms empty (see
// DeclareCounters).
func (r *Registry) DeclareHistograms(names ...string) {
	for _, n := range names {
		r.Histogram(n)
	}
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// numCounterShards is the size of a counter's padded shard array. Owners
// round-robin over the slots, so up to this many concurrent writers
// increment disjoint cache lines.
const numCounterShards = 8

// CounterShard is one padded increment slot of a sharded Counter (see
// Counter.Shard). It has the same nil-safe Inc/Add surface as Counter, so
// a hot path can hold either.
type CounterShard struct {
	v atomic.Uint64
	_ [56]byte // pad to a full cache line: neighbours never false-share
}

// Inc adds one.
func (s *CounterShard) Inc() {
	if s != nil {
		s.v.Add(1)
	}
}

// Add adds n.
func (s *CounterShard) Add(n uint64) {
	if s != nil {
		s.v.Add(n)
	}
}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; all methods are no-ops on a nil receiver.
//
// Inc/Add on the counter itself hit a single shared atomic — fine for
// occasional events. Per-step writers (the VM, the cache model) call
// Shard once at attach time and increment their private slot instead;
// Value sums the base and every slot, so reads stay exact at any moment
// (a mid-run snapshot by the SGX stepper sees every completed add).
type Counter struct {
	v      atomic.Uint64
	next   atomic.Uint32
	shards atomic.Pointer[[numCounterShards]CounterShard]
}

// NewCounter creates a standalone counter (not attached to a registry).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Shard returns a padded private increment slot for one hot writer.
// Slots are assigned round-robin and may be reused by later owners; a
// shared slot is still a single atomic add. Returns nil (a valid no-op
// instrument) on a nil counter.
func (c *Counter) Shard() *CounterShard {
	if c == nil {
		return nil
	}
	arr := c.shards.Load()
	if arr == nil {
		fresh := new([numCounterShards]CounterShard)
		if c.shards.CompareAndSwap(nil, fresh) {
			arr = fresh
		} else {
			arr = c.shards.Load()
		}
	}
	return &arr[(c.next.Add(1)-1)%numCounterShards]
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	total := c.v.Load()
	if arr := c.shards.Load(); arr != nil {
		for i := range arr {
			total += arr[i].v.Load()
		}
	}
	return total
}

// Gauge is a settable float64. The zero value is ready to use; methods
// are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
