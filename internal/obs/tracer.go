package obs

import (
	"context"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the telemetry layer: a span-tree
// tracer with W3C-style trace/span IDs, propagated across process
// boundaries via the `traceparent` header and across function boundaries
// via context.Context. It extends — without replacing — the flat Span
// timer in span.go: a TraceSpan carries identity (trace ID, span ID,
// parent span ID) so the NDJSON sink records a linkable tree, while the
// metric side effects stay exactly those of Span (a ".calls" counter, a
// snapshot-visible ".sim" histogram when a simulation clock is installed,
// wall nanoseconds in the hidden wall table).
//
// The determinism contract (DESIGN.md §9):
//
//   - A nil *Tracer is a total no-op: StartSpan returns the context
//     unchanged and a nil *TraceSpan whose every method is a no-op, so a
//     run with tracing off touches neither the registry nor the sink and
//     its snapshots stay byte-identical to a build without tracing.
//   - IDs come from a seeded splitmix64 stream (IDSource), so a
//     sequential run with a fixed seed produces a reproducible ID
//     sequence; concurrent runs still get unique IDs.
//   - Only sim-clock durations enter snapshots; wall durations go to the
//     wall table and the trace sink, never the canonical snapshot.

// TraceID is a 16-byte W3C trace identifier (all-zero = absent).
type TraceID [16]byte

// SpanID is an 8-byte W3C span identifier (all-zero = absent).
type SpanID [8]byte

// String renders the 32-hex-digit form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the 16-hex-digit form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the propagated identity of one span: the trace it
// belongs to and its own ID. It is what crosses process boundaries in a
// traceparent header.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both IDs are non-zero (the W3C requirement).
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent renders the W3C header form
// "00-<32 hex trace>-<16 hex span>-01" (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header. It accepts any
// version byte (per spec, unknown versions are parsed as version 00 if
// the tail matches) and rejects malformed lengths, non-hex digits, and
// all-zero IDs.
func ParseTraceparent(h string) (SpanContext, bool) {
	// version(2) - trace(32) - span(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return SpanContext{}, false // version 00 must be exactly 55 chars
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !isHex(h[:2]) || !isHex(h[53:55]) || h[:2] == "ff" {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// IDSource generates trace and span IDs from a seeded splitmix64 stream.
// A fixed seed gives a reproducible ID sequence under sequential use
// (concurrent callers still get unique IDs, just in racy order), so trace
// output in tests and seeded runs is stable without any global state.
type IDSource struct {
	state atomic.Uint64
}

// NewIDSource creates a source seeded with seed.
func NewIDSource(seed int64) *IDSource {
	s := &IDSource{}
	s.state.Store(uint64(seed) ^ 0x9e3779b97f4a7c15)
	return s
}

// next is one splitmix64 step: an atomic stride add plus a finalizer, so
// concurrent callers draw distinct values without locking.
func (s *IDSource) next() uint64 {
	z := s.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TraceID draws a non-zero 16-byte trace ID.
func (s *IDSource) TraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[:8], s.next())
		putUint64(t[8:], s.next())
	}
	return t
}

// SpanID draws a non-zero 8-byte span ID.
func (s *IDSource) SpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putUint64(id[:], s.next())
	}
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// Tracer mints TraceSpans against one registry. A nil Tracer is a total
// no-op — the disarmed state costs nothing and writes nothing.
type Tracer struct {
	reg *Registry
	ids *IDSource
}

// NewTracer creates a tracer recording into reg with IDs seeded by seed.
func NewTracer(reg *Registry, seed int64) *Tracer {
	return &Tracer{reg: reg, ids: NewIDSource(seed)}
}

// Registry returns the registry the tracer records into (nil for a nil
// tracer).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// ctxKey types for context propagation.
type spanCtxKey struct{}
type remoteCtxKey struct{}

// ContextWithRemote marks ctx as continuing the trace described by a
// remote parent (typically a parsed incoming traceparent header). The
// next StartSpan under this context becomes a child of that remote span.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// ContextWithSpan installs sp as the current span of ctx.
func ContextWithSpan(ctx context.Context, sp *TraceSpan) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *TraceSpan {
	sp, _ := ctx.Value(spanCtxKey{}).(*TraceSpan)
	return sp
}

// StartSpan begins a named span and returns a derived context carrying
// it. Parentage, in priority order: the current span in ctx (in-process
// child), a remote SpanContext installed by ContextWithRemote (incoming
// traceparent), else a fresh root trace. On a nil tracer both returns
// are no-ops (ctx unchanged, nil span).
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	if t == nil {
		return ctx, nil
	}
	sp := &TraceSpan{
		t:         t,
		name:      name,
		wallStart: time.Now(),
	}
	switch {
	case SpanFromContext(ctx) != nil:
		parent := SpanFromContext(ctx)
		sp.sc = SpanContext{Trace: parent.sc.Trace, Span: t.ids.SpanID()}
		sp.parent = parent.sc.Span
	default:
		if remote, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok {
			sp.sc = SpanContext{Trace: remote.Trace, Span: t.ids.SpanID()}
			sp.parent = remote.Span
		} else {
			sp.sc = SpanContext{Trace: t.ids.TraceID(), Span: t.ids.SpanID()}
		}
	}
	if t.regHasClock() {
		sp.hasClock = true
		sp.simStart = t.reg.SimNow()
	}
	return ContextWithSpan(ctx, sp), sp
}

func (t *Tracer) regHasClock() bool {
	if t == nil || t.reg == nil {
		return false
	}
	t.reg.mu.RLock()
	has := t.reg.simClock != nil
	t.reg.mu.RUnlock()
	return has
}

// TraceSpan is one node of a request's span tree. All methods are no-ops
// on a nil receiver; End is idempotent.
type TraceSpan struct {
	t         *Tracer
	name      string
	sc        SpanContext
	parent    SpanID
	simStart  uint64
	wallStart time.Time
	hasClock  bool

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Context returns the span's propagated identity (zero for nil).
func (sp *TraceSpan) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return sp.sc
}

// TraceIDString returns the span's trace ID in hex ("" for nil) — the
// value used as a histogram exemplar link.
func (sp *TraceSpan) TraceIDString() string {
	if sp == nil {
		return ""
	}
	return sp.sc.Trace.String()
}

// SetAttr attaches one key/value to the span's eventual trace record.
func (sp *TraceSpan) SetAttr(key string, value any) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = map[string]any{}
	}
	sp.attrs[key] = value
	sp.mu.Unlock()
}

// End closes the span: it increments "<name>.calls", observes the sim
// duration into the snapshot-visible "<name>.sim" histogram when a sim
// clock is installed, adds wall nanoseconds to the hidden wall table,
// and emits a "span" trace event with the full identity triple when a
// sink is attached. Safe to call more than once; only the first End
// records.
func (sp *TraceSpan) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	attrs := sp.attrs
	sp.mu.Unlock()

	r := sp.t.reg
	wallNS := uint64(time.Since(sp.wallStart).Nanoseconds())
	r.Counter(sp.name + ".calls").Inc()
	r.wallCounter(sp.name).Add(wallNS)
	var simDur uint64
	if sp.hasClock {
		simDur = r.SimNow() - sp.simStart
		r.Histogram(sp.name + ".sim").Observe(int64(simDur))
	}
	if sink := r.traceSink(); sink != nil {
		fields := map[string]any{
			"name":       sp.name,
			"trace":      sp.sc.Trace.String(),
			"span":       sp.sc.Span.String(),
			"sim_cycles": simDur,
			"wall_ns":    wallNS,
		}
		if !sp.parent.IsZero() {
			fields["parent"] = sp.parent.String()
		}
		if len(attrs) > 0 {
			fields["attrs"] = attrs
		}
		sink.Emit("span", r.SimNow(), fields)
	}
}
