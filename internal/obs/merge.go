package obs

// Merge folds src's instruments into r. It is the registry half of the
// parallel experiment scheduler: each task runs against its own private
// registry, and the scheduler merges them into the run's shared registry
// in stable task order, so the merged snapshot is byte-identical to the
// one a sequential run on a single shared registry would have produced.
//
// Semantics per instrument kind:
//
//   - counters add,
//   - histograms add (counts, sums, buckets; min/max take the extremes),
//   - gauges take src's value — last-merged-wins, which reproduces the
//     last-writer-wins outcome of sequential execution when sources are
//     merged in task order,
//   - hidden wall-clock span totals add.
//
// The sim clock and trace sink are left untouched. Merging a nil src (or
// into a nil r) is a no-op. Merge does not snapshot src atomically; the
// caller must have stopped writing to src first.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]*Counter, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for k, v := range src.hists {
		hists[k] = v
	}
	wall := make(map[string]*Counter, len(src.wall))
	for k, v := range src.wall {
		wall[k] = v
	}
	src.mu.Unlock()

	for k, c := range counters {
		r.Counter(k).Add(c.Value())
	}
	for k, g := range gauges {
		r.Gauge(k).Set(g.Value())
	}
	for k, h := range hists {
		r.Histogram(k).Merge(h)
	}
	for k, c := range wall {
		r.wallCounter(k).Add(c.Value())
	}
}

// Merge folds src's observations into h: counts, sums, and buckets add;
// min/max take the extremes. No-op when either side is nil or src is
// empty. The caller must have stopped writing to src.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	n := src.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(src.sum.Load())
	for i := 0; i < numBuckets; i++ {
		if v := src.buckets[i].Load(); v > 0 {
			h.buckets[i].Add(v)
		}
	}
	for v := src.min.Load(); ; {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for v := src.max.Load(); ; {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}
