package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceSink writes structured events as NDJSON: one JSON object per
// line, keys sorted (encoding/json map order), each stamped with a
// monotonic sequence number and the registry's sim clock. It is safe for
// concurrent use; a nil sink drops events.
type TraceSink struct {
	mu  sync.Mutex
	w   io.Writer
	seq uint64
	err error
}

// NewTraceSink wraps w. The caller owns closing the underlying writer.
func NewTraceSink(w io.Writer) *TraceSink { return &TraceSink{w: w} }

// Emit writes one event line. Reserved keys "ev", "seq", and "sim" from
// fields are overwritten by the sink's own stamps. Marshal failures are
// recorded (see Err) and the offending event dropped, so instrumentation
// can never take down an attack run.
func (s *TraceSink) Emit(event string, sim uint64, fields map[string]any) {
	if s == nil {
		return
	}
	obj := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		obj[k] = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	obj["ev"] = event
	obj["seq"] = s.seq
	obj["sim"] = sim
	line, err := json.Marshal(obj)
	if err != nil {
		s.err = fmt.Errorf("obs: trace event %q: %w", event, err)
		return
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil && s.err == nil {
		s.err = err
	}
}

// Events returns how many events have been emitted.
func (s *TraceSink) Events() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Err returns the first write/marshal error, if any.
func (s *TraceSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
