package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// creating instruments by name, updating them, emitting trace events,
// running spans, and snapshotting concurrently. Run with -race; the test
// also asserts the final counts so lost updates surface without it.
func TestRegistryConcurrency(t *testing.T) {
	const goroutines = 16
	const perG = 2000

	r := NewRegistry()
	r.SetSimClock(func() uint64 { return 1 })
	var buf bytes.Buffer
	r.SetTraceSink(NewTraceSink(&buf))

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", g%4)).Inc()
				r.Gauge("g").Set(float64(i))
				r.Gauge("sum").Add(1)
				r.Histogram("h").Observe(int64(i % 100))
				if i%100 == 0 {
					r.StartSpan("span").End()
					r.Emit("tick", map[string]any{"g": g, "i": i})
				}
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("sum").Value(); got != goroutines*perG {
		t.Errorf("gauge sum = %f, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h").Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Counter("span.calls").Value(); got != goroutines*(perG/100) {
		t.Errorf("span calls = %d, want %d", got, goroutines*(perG/100))
	}
	if err := r.traceSink().Err(); err != nil {
		t.Errorf("trace sink error: %v", err)
	}
}
