package obs

import "time"

// Span is a span-style timer with a dual clock: the deterministic
// simulation clock (when the registry has one installed) and the wall
// clock. Ending a span
//
//   - increments "<name>.calls",
//   - observes the elapsed sim cycles into the "<name>.sim" histogram
//     (only when a sim clock is installed, keeping snapshots
//     deterministic),
//   - accumulates wall nanoseconds into the registry's hidden wall table
//     (WallTotals), and
//   - emits a "span" trace event when a sink is attached.
//
// Span is a value type; the zero Span (from a nil registry) is a no-op.
type Span struct {
	r         *Registry
	name      string
	simStart  uint64
	wallStart time.Time
	hasClock  bool
}

// StartSpan begins a timer. Safe on a nil registry.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	sp := Span{r: r, name: name, wallStart: time.Now()}
	r.mu.Lock()
	if r.simClock != nil {
		sp.hasClock = true
	}
	r.mu.Unlock()
	if sp.hasClock {
		sp.simStart = r.SimNow()
	}
	return sp
}

// End closes the span and records its measurements.
func (sp Span) End() {
	if sp.r == nil {
		return
	}
	wallNS := uint64(time.Since(sp.wallStart).Nanoseconds())
	sp.r.Counter(sp.name + ".calls").Inc()
	sp.r.wallCounter(sp.name).Add(wallNS)
	var simDur uint64
	if sp.hasClock {
		simDur = sp.r.SimNow() - sp.simStart
		sp.r.Histogram(sp.name + ".sim").Observe(int64(simDur))
	}
	if sink := sp.r.traceSink(); sink != nil {
		sink.Emit("span", sp.r.SimNow(), map[string]any{
			"name":       sp.name,
			"sim_cycles": simDur,
			"wall_ns":    wallNS,
		})
	}
}
