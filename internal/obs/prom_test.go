package obs

import (
	"math"
	"strings"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"server.cache.hits":   "server_cache_hits",
		"a-b c/d":             "a_b_c_d",
		"9lives":              "_9lives",
		"ok_name:with_colons": "ok_name:with_colons",
		"":                    "_",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := EscapeLabelValue("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escape = %q", got)
	}
}

// TestWritePrometheusValid renders a populated registry (with an
// exemplar) and runs the repo's own exposition parser over it.
func TestWritePrometheusValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests").Add(7)
	reg.Counter("server.cache.hits").Add(3)
	reg.Gauge("server.cache.bytes").Set(1234.5)
	h := reg.Histogram("server.request_latency_us")
	h.Observe(3)
	h.Observe(900)
	h.ObserveExemplar(5000, "4bf92f3577b34da6a3ce929d0e0e4736")

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own exposition fails own parser: %v\n%s", err, out)
	}
	byName := map[string]float64{}
	var infBucket float64
	for _, s := range samples {
		if s.Name == "server_request_latency_us_bucket" && s.Labels["le"] == "+Inf" {
			infBucket = s.Value
		}
		byName[s.Name] = s.Value
	}
	if byName["server_requests"] != 7 || byName["server_cache_hits"] != 3 {
		t.Fatalf("counter samples wrong: %v", byName)
	}
	if byName["server_cache_bytes"] != 1234.5 {
		t.Fatalf("gauge sample = %v", byName["server_cache_bytes"])
	}
	if infBucket != 3 || byName["server_request_latency_us_count"] != 3 {
		t.Fatalf("histogram totals: +Inf=%v count=%v", infBucket, byName["server_request_latency_us_count"])
	}
	if !strings.Contains(out, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 5000`) {
		t.Fatalf("exemplar missing from exposition:\n%s", out)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	bad := []string{
		"9bad_name 1",
		"name{le=\"x} 1",
		"name{bad-label=\"x\"} 1",
		"name{l=\"a\\q\"} 1",
		"name notafloat",
		"# TYPE name wat\nname 1",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3",
		"# TYPE h histogram\nh_sum 1\nh_count 0",
	}
	for _, in := range bad {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("accepted invalid exposition %q", in)
		}
	}
	good := "# HELP x something\n# TYPE x counter\nx 5 1700000000\n\nplain_untyped 1.5e3\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	// 100 observations of 100 (bucket [64,128)) and 10 of 5000
	// (bucket [4096,8192)).
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000)
	}
	var snap HistogramSnapshot
	{
		reg := NewRegistry()
		reg.Histogram("x").Merge(h)
		snap = reg.Snapshot().Histograms["x"]
	}
	p50 := snap.Quantile(0.50)
	if p50 < 64 || p50 >= 128 {
		t.Fatalf("p50 = %v, want inside [64,128)", p50)
	}
	p99 := snap.Quantile(0.99)
	if p99 < 4096 || p99 > 5000 {
		t.Fatalf("p99 = %v, want in [4096, 5000] (clamped to max)", p99)
	}
	if got := snap.Quantile(0); got != float64(snap.Min) {
		t.Fatalf("q=0 -> %v, want min %d", got, snap.Min)
	}
	if got := snap.Quantile(1); got != float64(snap.Max) {
		t.Fatalf("q=1 -> %v, want max %d", got, snap.Max)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	qs := snap.Quantiles(0.5, 0.95, 0.99)
	if len(qs) != 3 || math.IsNaN(qs[1]) {
		t.Fatalf("Quantiles = %v", qs)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(100, "trace-a")
	h.ObserveExemplar(120, "trace-b") // same bucket: last wins
	h.ObserveExemplar(9000, "")       // no trace: observation only
	ex := h.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("exemplar buckets = %v, want exactly 1", ex)
	}
	for _, e := range ex {
		if e.TraceID != "trace-b" || e.Value != 120 {
			t.Fatalf("exemplar = %+v, want last-writer trace-b/120", e)
		}
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3 (empty trace ID still observes)", h.Count())
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "t")
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram exemplars")
	}
}
