package obs

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// CLI bundles the telemetry flags shared by the cmd/ binaries:
//
//	-metrics file.json    write the final snapshot (sorted, canonical JSON)
//	-trace file.ndjson    stream trace events as NDJSON
//	-progress             periodic one-line status on stderr
//
// Usage: Bind before flag.Parse, Start after it, defer Finish.
type CLI struct {
	MetricsPath string
	TracePath   string
	Progress    bool

	reg       *Registry
	traceFile *os.File
	sink      *TraceSink
	stopProg  func()
}

// Bind registers the three flags on fs.
func (c *CLI) Bind(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsPath, "metrics", "", "write the final metrics snapshot to this JSON file")
	fs.StringVar(&c.TracePath, "trace", "", "stream trace events to this NDJSON file")
	fs.BoolVar(&c.Progress, "progress", false, "print a periodic progress line to stderr")
}

// Start builds the registry, attaching the trace sink and progress
// printer the flags ask for. Call once, after flag.Parse.
func (c *CLI) Start() (*Registry, error) {
	c.reg = NewRegistry()
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: trace file: %w", err)
		}
		c.traceFile = f
		c.sink = NewTraceSink(f)
		c.reg.SetTraceSink(c.sink)
	}
	if c.Progress {
		c.stopProg = c.reg.StartProgress(os.Stderr, 500*time.Millisecond, DefaultProgressLine)
	}
	return c.reg, nil
}

// Finish stops the progress printer, writes the metrics snapshot, and
// closes the trace file. Safe to call if Start never ran or failed.
func (c *CLI) Finish() error {
	if c.stopProg != nil {
		c.stopProg()
		c.stopProg = nil
	}
	var first error
	if c.reg != nil && c.MetricsPath != "" {
		if err := c.reg.WriteSnapshot(c.MetricsPath); err != nil {
			first = err
		}
	}
	if c.sink != nil {
		if err := c.sink.Err(); err != nil && first == nil {
			first = fmt.Errorf("obs: trace write: %w", err)
		}
	}
	if c.traceFile != nil {
		if err := c.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		c.traceFile = nil
	}
	return first
}
