package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers non-positive values (bucket 0) plus one bucket per
// power of two: bucket i (1..64) holds values v with 2^(i-1) <= v < 2^i.
const numBuckets = 65

// Histogram accumulates int64 observations into fixed log-spaced
// (power-of-two) buckets, so snapshots are deterministic under a fixed
// seed regardless of observation order. The zero value is ready to use;
// all methods are no-ops on a nil receiver.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
	// exemplars holds, per bucket, the most recent traced observation
	// that landed there (ObserveExemplar). Exemplars link slow buckets to
	// trace IDs for the Prometheus exposition and dashboards; they are
	// deliberately absent from canonical snapshots — their presence
	// depends on whether tracing is armed, and snapshots must stay
	// byte-identical either way.
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// Exemplar ties one observed value to the trace that produced it.
type Exemplar struct {
	Value   int64  `json:"value"`
	TraceID string `json:"trace_id"`
}

// NewHistogram creates a standalone histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1..64
}

// BucketLow returns the inclusive lower bound of bucket i (the key used
// in snapshots): 0 for the non-positive bucket, else 2^(i-1).
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return uint64(1) << uint(i-1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveExemplar records one value like Observe and, when traceID is
// non-empty, remembers it as the bucket's exemplar (last writer wins).
// With an empty traceID it is exactly Observe, so call sites can pass a
// possibly-absent trace ID unconditionally.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.exemplars[bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// Exemplars returns the buckets that currently hold an exemplar, keyed
// by bucket index (see BucketLow). Nil-safe; returns nil when empty.
func (h *Histogram) Exemplars() map[int]Exemplar {
	if h == nil {
		return nil
	}
	var out map[int]Exemplar
	for i := 0; i < numBuckets; i++ {
		if e := h.exemplars[i].Load(); e != nil {
			if out == nil {
				out = map[int]Exemplar{}
			}
			out[i] = *e
		}
	}
	return out
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}
