package obs

import (
	"bytes"
	"fmt"
	"testing"
)

// Merging per-task registries in task order must reproduce the snapshot
// of a sequential run on one shared registry — the property the parallel
// experiment scheduler relies on.
func TestMergeEquivalentToSharedRegistry(t *testing.T) {
	task := func(r *Registry, id int) {
		r.Counter("hits").Add(uint64(10 * (id + 1)))
		r.Counter(fmt.Sprintf("task.%d.only", id)).Inc()
		r.Gauge("last_acc").Set(float64(id) / 10)
		for v := int64(1); v < 100; v += int64(id + 1) {
			r.Histogram("lat").Observe(v)
		}
	}

	shared := NewRegistry()
	for id := 0; id < 4; id++ {
		task(shared, id)
	}
	seq, err := shared.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	merged := NewRegistry()
	regs := make([]*Registry, 4)
	for id := range regs {
		regs[id] = NewRegistry()
		task(regs[id], id)
	}
	for _, r := range regs { // stable task order
		merged.Merge(r)
	}
	par, err := merged.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Errorf("merged snapshot differs from shared-registry snapshot:\n--- shared ---\n%s\n--- merged ---\n%s", seq, par)
	}
}

func TestMergeGaugeLastWins(t *testing.T) {
	a, b, dst := NewRegistry(), NewRegistry(), NewRegistry()
	a.Gauge("acc").Set(0.25)
	b.Gauge("acc").Set(0.75)
	dst.Merge(a)
	dst.Merge(b)
	if got := dst.Gauge("acc").Value(); got != 0.75 {
		t.Errorf("gauge after merge = %v, want last-merged value 0.75", got)
	}
}

func TestMergeHistogramMinMax(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(5)
	a.Observe(100)
	b.Observe(2)
	b.Observe(40)
	a.Merge(b)
	if a.Count() != 4 || a.Sum() != 147 {
		t.Errorf("count/sum = %d/%d, want 4/147", a.Count(), a.Sum())
	}
	if a.min.Load() != 2 || a.max.Load() != 100 {
		t.Errorf("min/max = %d/%d, want 2/100", a.min.Load(), a.max.Load())
	}
}

func TestMergeEmptyHistogramIsNoop(t *testing.T) {
	dst := NewHistogram()
	dst.Observe(7)
	dst.Merge(NewHistogram())
	if dst.Count() != 1 || dst.min.Load() != 7 || dst.max.Load() != 7 {
		t.Errorf("empty merge disturbed state: count=%d min=%d max=%d",
			dst.Count(), dst.min.Load(), dst.max.Load())
	}
	// Into an empty destination: extremes come over verbatim.
	dst2 := NewHistogram()
	src := NewHistogram()
	src.Observe(-3)
	src.Observe(9)
	dst2.Merge(src)
	if dst2.min.Load() != -3 || dst2.max.Load() != 9 {
		t.Errorf("min/max = %d/%d, want -3/9", dst2.min.Load(), dst2.max.Load())
	}
}

func TestMergeWallTotalsAdd(t *testing.T) {
	a, dst := NewRegistry(), NewRegistry()
	a.wallCounter("span").Add(100)
	dst.wallCounter("span").Add(50)
	dst.Merge(a)
	if got := dst.WallTotals()["span"]; got != 150 {
		t.Errorf("wall total = %d, want 150", got)
	}
}

func TestMergeNilSafety(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(NewRegistry()) // must not panic
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Merge(nil)
	if r.Counter("c").Value() != 1 {
		t.Error("merging nil src disturbed the registry")
	}
	var nilHist *Histogram
	nilHist.Merge(NewHistogram())
	h := NewHistogram()
	h.Merge(nil)
}
