package obs

import (
	"encoding/json"
	"os"
	"strconv"
)

// HistogramSnapshot is one histogram's frozen state. Buckets map the
// inclusive power-of-two lower bound (as a decimal string; "0" collects
// non-positive values) to the bucket count; empty buckets are omitted.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Buckets map[string]uint64 `json:"buckets"`
}

// Snapshot is a canonical, frozen view of a registry. Marshalling it
// (encoding/json sorts map keys) yields a deterministic document: two
// runs of the same seeded simulation produce byte-identical output.
// Wall-clock quantities are deliberately absent (see WallTotals).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current metric state. Returns an empty
// (but usable) snapshot for a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		hs := HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Buckets: map[string]uint64{},
		}
		if hs.Count > 0 {
			hs.Min = h.min.Load()
			hs.Max = h.max.Load()
		}
		for i := 0; i < numBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets[strconv.FormatUint(BucketLow(i), 10)] = n
			}
		}
		s.Histograms[k] = hs
	}
	return s
}

// MarshalIndent renders the canonical JSON document (sorted keys,
// two-space indent, trailing newline).
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the canonical JSON document to path.
func (s *Snapshot) WriteFile(path string) error {
	b, err := s.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// WriteSnapshot freezes the registry and writes it to path; a
// convenience for the CLIs' -metrics flag.
func (r *Registry) WriteSnapshot(path string) error {
	return r.Snapshot().WriteFile(path)
}
