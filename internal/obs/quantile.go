package obs

import (
	"sort"
	"strconv"
)

// Quantile helpers over the log-bucketed histograms. The buckets are
// power-of-two ranges, so a quantile is an estimate: the returned value
// interpolates linearly inside the bucket that holds the target rank and
// is clamped to the observed [Min, Max]. That is exactly the fidelity a
// dashboard needs (p95 within one bucket's resolution) while keeping the
// histogram itself deterministic and mergeable.

// Quantile estimates the q-th quantile (0 <= q <= 1) of the snapshot's
// distribution. Returns 0 for an empty histogram. q <= 0 returns Min,
// q >= 1 returns Max.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	type bk struct {
		low   uint64
		count uint64
	}
	buckets := make([]bk, 0, len(s.Buckets))
	for k, n := range s.Buckets {
		low, err := strconv.ParseUint(k, 10, 64)
		if err != nil || n == 0 {
			continue
		}
		buckets = append(buckets, bk{low, n})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].low < buckets[j].low })

	target := q * float64(s.Count)
	cum := 0.0
	for _, b := range buckets {
		next := cum + float64(b.count)
		if next >= target {
			low := float64(b.low)
			hi := 2 * low
			if b.low == 0 {
				// Non-positive bucket: no meaningful interpolation range.
				low, hi = float64(s.Min), 1
				if low > 0 {
					low = 0
				}
			}
			frac := (target - cum) / float64(b.count)
			v := low + (hi-low)*frac
			return clampF(v, float64(s.Min), float64(s.Max))
		}
		cum = next
	}
	return float64(s.Max)
}

// Quantiles evaluates several quantiles in one pass-per-q (convenience
// for p50/p95/p99 reporting).
func (s HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
