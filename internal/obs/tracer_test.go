package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	ids := NewIDSource(7)
	sc := SpanContext{Trace: ids.TraceID(), Span: ids.SpanID()}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent form: %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: %q -> %+v ok=%v, want %+v", h, got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // bad flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
}

func TestIDSourceDeterministicAndUnique(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 10; i++ {
		if a.TraceID() != b.TraceID() || a.SpanID() != b.SpanID() {
			t.Fatal("same seed must yield the same ID sequence")
		}
	}
	seen := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		id := a.SpanID()
		if id.IsZero() || seen[id] {
			t.Fatalf("duplicate or zero span ID at %d", i)
		}
		seen[id] = true
	}
}

// TestTracerSpanTree checks the identity linkage written to the sink:
// root, child, and grandchild share a trace ID and chain their parents.
func TestTracerSpanTree(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	reg.SetTraceSink(NewTraceSink(&buf))
	tr := NewTracer(reg, 1)

	ctx, root := tr.StartSpan(context.Background(), "root")
	cctx, child := tr.StartSpan(ctx, "child")
	_, grand := tr.StartSpan(cctx, "grand")
	grand.End()
	child.End()
	root.SetAttr("codec", "lz77")
	root.End()
	root.End() // idempotent

	type rec struct {
		Name   string         `json:"name"`
		Trace  string         `json:"trace"`
		Span   string         `json:"span"`
		Parent string         `json:"parent"`
		Attrs  map[string]any `json:"attrs"`
	}
	byName := map[string]rec{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		byName[r.Name] = r
	}
	if len(byName) != 3 {
		t.Fatalf("want 3 span records, got %d (%q)", len(byName), buf.String())
	}
	rr, cc, gg := byName["root"], byName["child"], byName["grand"]
	if rr.Trace == "" || cc.Trace != rr.Trace || gg.Trace != rr.Trace {
		t.Fatalf("trace IDs diverge: root=%s child=%s grand=%s", rr.Trace, cc.Trace, gg.Trace)
	}
	if rr.Parent != "" {
		t.Fatalf("root has parent %s", rr.Parent)
	}
	if cc.Parent != rr.Span || gg.Parent != cc.Span {
		t.Fatalf("parent chain broken: child.parent=%s (want %s), grand.parent=%s (want %s)",
			cc.Parent, rr.Span, gg.Parent, cc.Span)
	}
	if rr.Attrs["codec"] != "lz77" {
		t.Fatalf("root attrs = %v", rr.Attrs)
	}
	if got := reg.Snapshot().Counters["root.calls"]; got != 1 {
		t.Fatalf("root.calls = %d, want 1 (End must be idempotent)", got)
	}
}

// TestTracerRemoteParent: an incoming traceparent continues the caller's
// trace instead of starting a new one.
func TestTracerRemoteParent(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 3)
	remote, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("fixture traceparent rejected")
	}
	ctx := ContextWithRemote(context.Background(), remote)
	_, sp := tr.StartSpan(ctx, "server.request")
	if sp.Context().Trace != remote.Trace {
		t.Fatalf("trace = %s, want caller's %s", sp.Context().Trace, remote.Trace)
	}
	if sp.parent != remote.Span {
		t.Fatalf("parent = %s, want caller's span %s", sp.parent, remote.Span)
	}
	if sp.Context().Span == remote.Span {
		t.Fatal("span must mint its own ID, not reuse the caller's")
	}
}

// TestNilTracerIsInvisible: the disarmed contract. A workload run with a
// nil tracer must leave the registry byte-identical to one that never
// called the tracing API at all.
func TestNilTracerIsInvisible(t *testing.T) {
	workload := func(tr *Tracer) *Registry {
		reg := NewRegistry()
		if tr != nil {
			t.Fatal("test wiring: workload expects the nil tracer")
		}
		for i := 0; i < 50; i++ {
			ctx, sp := tr.StartSpan(context.Background(), "op")
			_, child := tr.StartSpan(ctx, "op.inner")
			sp.SetAttr("i", i)
			reg.Counter("work.items").Inc()
			reg.Histogram("work.size").Observe(int64(i))
			child.End()
			sp.End()
		}
		return reg
	}
	plain := NewRegistry()
	for i := 0; i < 50; i++ {
		plain.Counter("work.items").Inc()
		plain.Histogram("work.size").Observe(int64(i))
	}
	traced := workload(nil)

	a, err := plain.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := traced.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("nil tracer left traces in the registry:\n--- without tracer calls\n%s\n--- with nil tracer\n%s", a, b)
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines (run
// under -race by `make race`): every span must land with a consistent
// parent and no two spans may share an ID.
func TestTracerConcurrent(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	reg.SetTraceSink(NewTraceSink(&buf))
	tr := NewTracer(reg, 9)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, sp := tr.StartSpan(context.Background(), "conc")
				_, child := tr.StartSpan(ctx, "conc.child")
				child.End()
				sp.End()
			}
		}()
	}
	wg.Wait()

	spans := map[string]string{} // span ID -> trace ID
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r struct{ Trace, Span, Parent string }
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if _, dup := spans[r.Span]; dup {
			t.Fatalf("duplicate span ID %s", r.Span)
		}
		spans[r.Span] = r.Trace
	}
	if len(spans) != 8*50*2 {
		t.Fatalf("got %d span records, want %d", len(spans), 8*50*2)
	}
}

func TestDeclare(t *testing.T) {
	reg := NewRegistry()
	reg.DeclareCounters("a.b", "c.d")
	reg.DeclareGauges("g.one")
	reg.DeclareHistograms("h.one")
	snap := reg.Snapshot()
	if v, ok := snap.Counters["a.b"]; !ok || v != 0 {
		t.Fatalf("declared counter a.b: %v %v", v, ok)
	}
	if _, ok := snap.Gauges["g.one"]; !ok {
		t.Fatal("declared gauge missing")
	}
	if h, ok := snap.Histograms["h.one"]; !ok || h.Count != 0 {
		t.Fatalf("declared histogram: %+v %v", h, ok)
	}
	var nilReg *Registry
	nilReg.DeclareCounters("x") // must not panic
}
