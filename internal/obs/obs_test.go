package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("x") != c {
		t.Error("same name should return the same counter")
	}
	if r.Counter("y").Value() != 0 {
		t.Error("fresh counter should be zero")
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("loss")
	g.Set(1.5)
	g.Add(-0.25)
	if got := g.Value(); got != 1.25 {
		t.Errorf("gauge = %f, want 1.25", got)
	}
}

func TestHistogramSemantics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{-3, 0, 1, 1, 2, 3, 4, 100, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Errorf("count = %d, want 9", h.Count())
	}
	wantSum := int64(-3 + 0 + 1 + 1 + 2 + 3 + 4 + 100 + 1<<40)
	if h.Sum() != wantSum {
		t.Errorf("sum = %d, want %d", h.Sum(), wantSum)
	}
	// Bucket layout: "0" non-positive, then [2^(i-1), 2^i).
	wantBuckets := map[int64]uint64{ // value -> expected bucket lower bound
		-3: 0, 0: 0, 1: 1, 2: 2, 3: 2, 4: 4, 100: 64, 1 << 40: 1 << 40,
	}
	for v, lo := range wantBuckets {
		if got := BucketLow(bucketIndex(v)); got != lo {
			t.Errorf("bucket of %d has lower bound %d, want %d", v, got, lo)
		}
	}
	if h.min.Load() != -3 || h.max.Load() != 1<<40 {
		t.Errorf("min/max = %d/%d", h.min.Load(), h.max.Load())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(5)
	r.Emit("ev", map[string]any{"k": 1})
	r.SetSimClock(func() uint64 { return 1 })
	r.StartSpan("sp").End()
	if r.SimNow() != 0 {
		t.Error("nil registry SimNow should be 0")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	stop := r.StartProgress(os.Stderr, time.Hour, nil)
	stop()
	var sink *TraceSink
	sink.Emit("x", 0, nil)
}

func populated() *Registry {
	r := NewRegistry()
	var sim uint64
	r.SetSimClock(func() uint64 { return sim })
	r.Counter("cache.hits").Add(120)
	r.Counter("cache.misses").Add(30)
	r.Counter("vm.instructions").Add(4096)
	r.Gauge("attack.bit_acc").Set(0.9951171875) // exactly representable
	r.Gauge("nn.loss").Set(0.125)
	h := r.Histogram("pp.probe_latency")
	for _, v := range []int64{38, 41, 44, 199, 204, 212, 0} {
		h.Observe(v)
	}
	sim = 17
	sp := r.StartSpan("attack.step")
	sim = 42
	sp.End()
	return r
}

// TestSnapshotGolden locks the canonical JSON encoding: sorted keys,
// deterministic bucket labels, no wall-clock contamination.
func TestSnapshotGolden(t *testing.T) {
	got, err := populated().Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot diverges from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if strings.Contains(string(got), "wall") {
		t.Error("snapshot must not contain wall-clock data")
	}
}

// TestSnapshotDeterminism builds the same registry twice and requires
// byte-identical marshalling.
func TestSnapshotDeterminism(t *testing.T) {
	a, err := populated().Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := populated().Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("identical runs produced different snapshots:\n%s\nvs\n%s", a, b)
	}
}

func TestSpanDualClock(t *testing.T) {
	r := NewRegistry()
	var sim uint64
	r.SetSimClock(func() uint64 { return sim })
	sp := r.StartSpan("work")
	sim += 1000
	sp.End()
	if got := r.Counter("work.calls").Value(); got != 1 {
		t.Errorf("calls = %d, want 1", got)
	}
	if got := r.Histogram("work.sim").Sum(); got != 1000 {
		t.Errorf("sim duration sum = %d, want 1000", got)
	}
	wall := r.WallTotals()
	if wall["work"] == 0 {
		t.Error("wall total should be nonzero")
	}
	// Without a sim clock, no sim histogram is created.
	r2 := NewRegistry()
	r2.StartSpan("w2").End()
	if _, ok := r2.Snapshot().Histograms["w2.sim"]; ok {
		t.Error("clockless span should not create a sim histogram")
	}
}

func TestTraceSinkNDJSON(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	r.SetTraceSink(NewTraceSink(&buf))
	var sim uint64 = 9
	r.SetSimClock(func() uint64 { return sim })
	r.Emit("probe", map[string]any{"set": 12, "hot": true})
	r.Emit("probe", map[string]any{"set": 13, "hot": false})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if obj["ev"] != "probe" || obj["sim"] != float64(9) {
			t.Errorf("line %d missing stamps: %v", i, obj)
		}
		if obj["seq"] != float64(i+1) {
			t.Errorf("line %d seq = %v, want %d", i, obj["seq"], i+1)
		}
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	r.Counter("iters").Add(7)
	stop := r.StartProgress(&buf, time.Hour, nil)
	stop()
	stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "iters=7") {
		t.Errorf("progress line missing counter: %q", out)
	}
}

func TestDefaultProgressLineEmpty(t *testing.T) {
	if got := DefaultProgressLine(NewRegistry().Snapshot()); !strings.Contains(got, "no counters") {
		t.Errorf("empty progress line = %q", got)
	}
}
