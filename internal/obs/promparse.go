package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// A minimal Prometheus text-exposition parser — the verifying half of
// prom.go, used by cmd/promcheck and the smoke-obs CI target to prove
// that what the server exposes is actually scrapeable. It checks the
// rules an external scraper would: metric-name and label-name charsets,
// label-value escaping, float-parseable values, TYPE declarations with
// known types, histogram families exposing _sum/_count and cumulative
// non-decreasing buckets ending in le="+Inf". It accepts (and skips over)
// OpenMetrics-style exemplars after a '#' on sample lines.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition parses and validates r. It returns every sample and
// the first format violation found (samples parsed so far are still
// returned, so callers can report both).
func ParseExposition(r io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var samples []PromSample
	types := map[string]string{}     // family -> declared type
	bucketCum := map[string]uint64{} // histogram family -> last cumulative bucket count
	bucketInf := map[string]bool{}   // histogram family -> saw le="+Inf"
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) ([]PromSample, error) {
			return samples, fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fail("malformed TYPE comment %q", line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return fail("TYPE declares invalid metric name %q", name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fail("unknown metric type %q", typ)
				}
				if prev, ok := types[name]; ok && prev != typ {
					return fail("metric %q re-declared as %s (was %s)", name, typ, prev)
				}
				types[name] = typ
			}
			// HELP and free comments are skipped.
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return fail("%v", err)
		}
		if fam, isBucket := strings.CutSuffix(s.Name, "_bucket"); isBucket && types[fam] == "histogram" {
			le, ok := s.Labels["le"]
			if !ok {
				return fail("histogram bucket %s without le label", s.Name)
			}
			cum := uint64(s.Value)
			if le == "+Inf" {
				bucketInf[fam] = true
			}
			if prev, seen := bucketCum[fam]; seen && cum < prev {
				return fail("histogram %s buckets not cumulative (le=%q: %d < %d)", fam, le, cum, prev)
			}
			bucketCum[fam] = cum
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		if !bucketInf[fam] {
			return samples, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", fam)
		}
		if !hasSample(samples, fam+"_sum") || !hasSample(samples, fam+"_count") {
			return samples, fmt.Errorf("histogram %s missing _sum or _count", fam)
		}
	}
	return samples, nil
}

// ValidateExposition checks format validity, discarding the samples.
func ValidateExposition(r io.Reader) error {
	_, err := ParseExposition(r)
	return err
}

func hasSample(samples []PromSample, name string) bool {
	for _, s := range samples {
		if s.Name == name {
			return true
		}
	}
	return false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.Contains(s, ":") {
		return false
	}
	return validMetricName(s)
}

// parseSampleLine parses `name[{labels}] value [timestamp] [# exemplar]`.
func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " \t")
	// Strip an OpenMetrics exemplar suffix: " # {labels} value [ts]".
	if j := strings.Index(rest, "#"); j >= 0 {
		ex := strings.TrimSpace(rest[j+1:])
		if !strings.HasPrefix(ex, "{") {
			return s, fmt.Errorf("malformed exemplar %q", ex)
		}
		if _, tail, err := parseLabels(ex); err != nil {
			return s, fmt.Errorf("exemplar labels: %v", err)
		} else if _, err := parseValueAndTimestamp(tail); err != nil {
			return s, fmt.Errorf("exemplar value: %v", err)
		}
		rest = strings.TrimSpace(rest[:j])
	}
	v, err := parseValueAndTimestamp(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parseValueAndTimestamp parses `value [timestamp]`, returning the value.
func parseValueAndTimestamp(s string) (float64, error) {
	fields := strings.Fields(s)
	if len(fields) < 1 || len(fields) > 2 {
		return 0, fmt.Errorf("expected value [timestamp], got %q", s)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return 0, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return v, nil
}

// parseLabels parses a `{name="value",...}` block, validating label names
// and escape sequences, and returns the remaining tail of the line.
func parseLabels(s string) (map[string]string, string, error) {
	if !strings.HasPrefix(s, "{") {
		return nil, s, fmt.Errorf("expected '{', got %q", s)
	}
	labels := map[string]string{}
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return nil, s, fmt.Errorf("unterminated label block")
		}
		name := s[start:i]
		if !validLabelName(name) {
			return nil, s, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return nil, s, fmt.Errorf("label %s: value must be quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, s, fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, s, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, s, fmt.Errorf("label %s: invalid escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
	}
}
