package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (content type "text/plain; version=0.0.4")
// rendered straight from the live registry, so one registry serves both
// the canonical JSON snapshot (deterministic, for tests and goldens) and
// an external scraper. Metric names are sanitized (dots become
// underscores), histograms become cumulative le-bucketed families, and
// buckets that carry an exemplar append it OpenMetrics-style:
//
//	server_request_latency_us_bucket{le="4096"} 17 # {trace_id="4bf9..."} 3801
//
// Output is sorted by metric name, so scrapes of an idle registry are
// stable line for line.

// PromContentType is the Content-Type for the exposition output.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeMetricName maps an internal dotted metric name onto the
// Prometheus name charset [a-zA-Z0-9_:], replacing every invalid rune
// with '_' and prefixing '_' if the result would start with a digit.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func EscapeLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WritePrometheus renders the registry's current state as Prometheus
// text exposition. Counters and gauges map directly; each histogram
// becomes <name>_bucket{le="..."} cumulative counts over the power-of-two
// bucket upper bounds plus <name>_sum and <name>_count. Nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, k := range sortedKeys(counters) {
		name := SanitizeMetricName(k)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, counters[k].Value())
	}
	for _, k := range sortedKeys(gauges) {
		name := SanitizeMetricName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(gauges[k].Value()))
	}
	for _, k := range sortedKeys(hists) {
		writePromHistogram(&b, SanitizeMetricName(k), hists[k])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePromHistogram renders one histogram family. Bucket i of the log
// histogram holds [2^(i-1), 2^i), so it is exposed with le = 2^i (its
// exclusive upper bound — within one observation of the inclusive
// Prometheus semantics, which is the resolution the buckets have anyway).
func writePromHistogram(b *strings.Builder, name string, h *Histogram) {
	exemplars := h.Exemplars()
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	for i := 0; i < numBuckets && i < 63; i++ {
		// Buckets 63+ (values >= 2^62) fold into the final +Inf bucket.
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		le := "1"
		if i > 0 {
			le = strconv.FormatUint(uint64(1)<<uint(i), 10)
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d", name, le, cum)
		if e, ok := exemplars[i]; ok {
			fmt.Fprintf(b, " # {trace_id=%q} %d", EscapeLabelValue(e.TraceID), e.Value)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(b, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}
