// Package corpus generates the deterministic test inputs the experiments
// use in place of the paper's external data: a 21-file collection
// mimicking the Brotli test corpus's diversity (Fig 7), a lorem-ipsum
// paragraph generator standing in for the Python lipsum utility, and the
// 5-file repetitiveness series of Fig 8.
package corpus

import (
	"math/rand"
	"strings"
)

// File is one named test input.
type File struct {
	Name string
	Data []byte
}

// loremWords is the vocabulary of the lipsum generator.
var loremWords = []string{
	"lorem", "ipsum", "dolor", "sit", "amet", "consectetur", "adipiscing",
	"elit", "sed", "do", "eiusmod", "tempor", "incididunt", "ut", "labore",
	"et", "dolore", "magna", "aliqua", "enim", "ad", "minim", "veniam",
	"quis", "nostrud", "exercitation", "ullamco", "laboris", "nisi",
	"aliquip", "ex", "ea", "commodo", "consequat", "duis", "aute", "irure",
	"in", "reprehenderit", "voluptate", "velit", "esse", "cillum", "eu",
	"fugiat", "nulla", "pariatur", "excepteur", "sint", "occaecat",
	"cupidatat", "non", "proident", "sunt", "culpa", "qui", "officia",
	"deserunt", "mollit", "anim", "id", "est", "laborum",
}

// englishWords gives the text generator a more English-like distribution.
var englishWords = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he",
	"was", "for", "on", "are", "as", "with", "his", "they", "I", "at",
	"be", "this", "have", "from", "or", "one", "had", "by", "word", "but",
	"not", "what", "all", "were", "we", "when", "your", "can", "said",
	"there", "use", "an", "each", "which", "she", "do", "how", "their",
	"if", "will", "up", "other", "about", "out", "many", "then", "them",
	"these", "so", "some", "her", "would", "make", "like", "him", "into",
	"time", "has", "look", "two", "more", "write", "go", "see", "number",
	"no", "way", "could", "people", "my", "than", "first", "water",
	"been", "call", "who", "oil", "its", "now", "find", "long", "down",
	"day", "did", "get", "come", "made", "may", "part",
}

// LoremParagraph generates one deterministic lorem-ipsum paragraph of
// roughly n words (the lipsum stand-in for Fig 8).
func LoremParagraph(rng *rand.Rand, nWords int) string {
	return paragraph(rng, nWords, loremWords)
}

// EnglishText generates deterministic English-like text of about n bytes.
func EnglishText(rng *rand.Rand, nBytes int) []byte {
	var b strings.Builder
	for b.Len() < nBytes {
		b.WriteString(paragraph(rng, 60+rng.Intn(60), englishWords))
		b.WriteString("\n\n")
	}
	return []byte(b.String())[:nBytes]
}

func paragraph(rng *rand.Rand, nWords int, vocab []string) string {
	var b strings.Builder
	sentence := 0
	for w := 0; w < nWords; w++ {
		word := vocab[rng.Intn(len(vocab))]
		if sentence == 0 {
			word = strings.ToUpper(word[:1]) + word[1:]
		}
		b.WriteString(word)
		sentence++
		if sentence >= 6+rng.Intn(10) || w == nWords-1 {
			b.WriteString(". ")
			sentence = 0
		} else {
			b.WriteString(" ")
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// BrotliLike returns the 21-file corpus for the Fig 7 fingerprinting
// experiment: the same *kinds* of files as the Brotli testdata (large
// English texts, structured/numeric data, random bytes, all-zeros,
// tiny degenerate files, repetitive data), deterministically generated.
func BrotliLike(seed int64) []File {
	rng := rand.New(rand.NewSource(seed))
	files := []File{
		{"alice29.txt", EnglishText(rng, 152089)},
		{"asyoulik.txt", EnglishText(rng, 125179)},
		{"lcet10.txt", EnglishText(rng, 426754)},
		{"plrabn12.txt", EnglishText(rng, 481861)},
		{"quickfox", []byte("The quick brown fox jumps over the lazy dog")},
		{"quickfox_repeated", repeat("The quick brown fox jumps over the lazy dog", 2048)},
		{"random_org_10k.bin", randomBytes(rng, 10000)},
		{"random_chunks", randomChunks(rng, 80000)},
		{"zeros", make([]byte, 65536)},
		{"ones_64k", repeatByte(0xff, 65536)},
		{"x", []byte("x")},
		{"xyzzy", []byte("xyzzy")},
		{"64x", repeatByte('x', 64)},
		{"ukkonooa", repeat("ukko nooa, ukko nooa on iloinen mies. ", 320)},
		{"monkey", EnglishText(rng, 843)},
		{"backward65536", backwardBytes(65536)},
		{"numbers.csv", numbersCSV(rng, 120000)},
		{"dictionary_words", wordList(rng, 90000)},
		{"html_like", htmlLike(rng, 100000)},
		{"binary_struct", binaryStruct(rng, 70000)},
		{"ab_repetitive", repeat("ab", 30000)},
	}
	return files
}

func repeat(s string, times int) []byte {
	return []byte(strings.Repeat(s, times))
}

func repeatByte(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func randomBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// randomChunks interleaves random and compressible stretches.
func randomChunks(rng *rand.Rand, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		if rng.Intn(2) == 0 {
			chunk := make([]byte, 512)
			rng.Read(chunk)
			out = append(out, chunk...)
		} else {
			out = append(out, repeatByte(byte(rng.Intn(256)), 512)...)
		}
	}
	return out[:n]
}

func backwardBytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(255 - i%256)
	}
	return out
}

func numbersCSV(rng *rand.Rand, n int) []byte {
	var b strings.Builder
	b.WriteString("id,value,flag\n")
	for i := 0; b.Len() < n; i++ {
		b.WriteString(itoa(i))
		b.WriteByte(',')
		b.WriteString(itoa(rng.Intn(100000)))
		b.WriteByte(',')
		b.WriteString(itoa(rng.Intn(2)))
		b.WriteByte('\n')
	}
	return []byte(b.String())[:n]
}

func wordList(rng *rand.Rand, n int) []byte {
	var b strings.Builder
	for b.Len() < n {
		b.WriteString(englishWords[rng.Intn(len(englishWords))])
		b.WriteByte('\n')
	}
	return []byte(b.String())[:n]
}

func htmlLike(rng *rand.Rand, n int) []byte {
	var b strings.Builder
	b.WriteString("<html><head><title>corpus</title></head><body>\n")
	for b.Len() < n {
		b.WriteString("<div class=\"para\"><p>")
		b.WriteString(paragraph(rng, 40+rng.Intn(40), englishWords))
		b.WriteString("</p></div>\n")
	}
	return []byte(b.String())[:n]
}

func binaryStruct(rng *rand.Rand, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		// Record: 4-byte magic, 4-byte length, payload of small ints.
		out = append(out, 0xCA, 0xFE, 0xBA, 0xBE)
		l := 16 + rng.Intn(48)
		out = append(out, byte(l), 0, 0, 0)
		for i := 0; i < l; i++ {
			out = append(out, byte(rng.Intn(16)))
		}
	}
	return out[:n]
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// RepetitivenessSeries generates the Fig 8 experiment's 5 files: each is
// `size` bytes assembled from random picks among the first i of 5 lipsum
// paragraphs (truncated to 20 characters each, as the paper describes),
// so file 1 is maximally repetitive and file 5 the most diverse.
func RepetitivenessSeries(seed int64, size int) []File {
	rng := rand.New(rand.NewSource(seed))
	paras := make([]string, 5)
	for i := range paras {
		p := LoremParagraph(rng, 40)
		if len(p) > 20 {
			p = p[:20]
		}
		paras[i] = p
	}
	files := make([]File, 5)
	for i := 1; i <= 5; i++ {
		var b strings.Builder
		for b.Len() < size {
			b.WriteString(paras[rng.Intn(i)])
		}
		files[i-1] = File{
			Name: "test_0000" + itoa(i) + ".txt",
			Data: []byte(b.String())[:size],
		}
	}
	return files
}
