package corpus

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBrotliLikeDeterministic(t *testing.T) {
	a := BrotliLike(1)
	b := BrotliLike(1)
	if len(a) != 21 {
		t.Fatalf("corpus has %d files, want 21", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Errorf("file %d (%s) not deterministic", i, a[i].Name)
		}
	}
	c := BrotliLike(2)
	same := 0
	for i := range a {
		if bytes.Equal(a[i].Data, c[i].Data) {
			same++
		}
	}
	// Fixed-content files (x, zeros, ...) match; generated ones must not.
	if same > 10 {
		t.Errorf("%d/21 files identical across seeds; generator ignores seed?", same)
	}
}

func TestBrotliLikeNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range BrotliLike(1) {
		if seen[f.Name] {
			t.Errorf("duplicate name %q", f.Name)
		}
		seen[f.Name] = true
		if len(f.Data) == 0 {
			t.Errorf("file %q is empty", f.Name)
		}
	}
}

func TestEnglishTextSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text := EnglishText(rng, 5000)
	if len(text) != 5000 {
		t.Errorf("size = %d, want 5000", len(text))
	}
	// Should be mostly printable ASCII words.
	letters := 0
	for _, c := range text {
		if c >= 'a' && c <= 'z' || c == ' ' {
			letters++
		}
	}
	if float64(letters)/float64(len(text)) < 0.7 {
		t.Error("English text does not look like text")
	}
}

func TestLoremParagraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := LoremParagraph(rng, 30)
	if len(p) < 100 {
		t.Errorf("paragraph suspiciously short: %q", p)
	}
	if p[0] < 'A' || p[0] > 'Z' {
		t.Errorf("paragraph should start capitalized: %q", p[:20])
	}
}

func TestRepetitivenessSeries(t *testing.T) {
	files := RepetitivenessSeries(9, 20000)
	if len(files) != 5 {
		t.Fatalf("series has %d files, want 5", len(files))
	}
	distinct := make([]int, 5)
	for i, f := range files {
		if len(f.Data) != 20000 {
			t.Errorf("file %d is %d bytes, want 20000", i, len(f.Data))
		}
		// Count distinct 20-byte chunks as a repetitiveness proxy.
		chunks := map[string]bool{}
		for off := 0; off+20 <= len(f.Data); off += 20 {
			chunks[string(f.Data[off:off+20])] = true
		}
		distinct[i] = len(chunks)
	}
	// File 1 (one paragraph) must be far more repetitive than file 5.
	if distinct[0] >= distinct[4] {
		t.Errorf("distinct chunks should increase with i: %v", distinct)
	}
	if distinct[0] > 3 {
		t.Errorf("file 1 should repeat a single truncated paragraph: %d distinct chunks", distinct[0])
	}
}

func TestRepetitivenessSeriesNames(t *testing.T) {
	files := RepetitivenessSeries(1, 1000)
	want := []string{"test_00001.txt", "test_00002.txt", "test_00003.txt", "test_00004.txt", "test_00005.txt"}
	for i, f := range files {
		if f.Name != want[i] {
			t.Errorf("file %d name = %q, want %q", i, f.Name, want[i])
		}
	}
}
