package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGateBoundsConcurrency launches far more goroutines than the gate
// admits and checks the observed high-water mark never exceeds capacity.
func TestGateBoundsConcurrency(t *testing.T) {
	const capacity, callers = 4, 64
	g := NewGate(capacity)
	if g.Capacity() != capacity {
		t.Fatalf("Capacity() = %d, want %d", g.Capacity(), capacity)
	}
	var inside, high atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Do(func() {
				n := inside.Add(1)
				for {
					old := high.Load()
					if n <= old || high.CompareAndSwap(old, n) {
						break
					}
				}
				// Busy spin briefly so overlaps actually happen.
				for j := 0; j < 1000; j++ {
					_ = j
				}
				inside.Add(-1)
			})
		}()
	}
	wg.Wait()
	if h := high.Load(); h > capacity {
		t.Fatalf("observed %d concurrent callers, gate capacity %d", h, capacity)
	}
}

// TestGatePanicReleasesSlot verifies a panicking worker does not leak
// capacity: all later calls must still be admitted.
func TestGatePanicReleasesSlot(t *testing.T) {
	g := NewGate(1)
	for i := 0; i < 3; i++ {
		func() {
			defer func() { _ = recover() }()
			g.Do(func() { panic("worker crash") })
		}()
	}
	done := make(chan struct{})
	go g.Do(func() { close(done) })
	<-done
}

// TestGateDefaultCapacity checks <=0 normalizes to GOMAXPROCS.
func TestGateDefaultCapacity(t *testing.T) {
	if got, want := NewGate(0).Capacity(), Parallelism(0); got != want {
		t.Fatalf("NewGate(0).Capacity() = %d, want %d", got, want)
	}
}
