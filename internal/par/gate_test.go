package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateBoundsConcurrency launches far more goroutines than the gate
// admits and checks the observed high-water mark never exceeds capacity.
func TestGateBoundsConcurrency(t *testing.T) {
	const capacity, callers = 4, 64
	g := NewGate(capacity)
	if g.Capacity() != capacity {
		t.Fatalf("Capacity() = %d, want %d", g.Capacity(), capacity)
	}
	var inside, high atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Do(func() {
				n := inside.Add(1)
				for {
					old := high.Load()
					if n <= old || high.CompareAndSwap(old, n) {
						break
					}
				}
				// Busy spin briefly so overlaps actually happen.
				for j := 0; j < 1000; j++ {
					_ = j
				}
				inside.Add(-1)
			})
		}()
	}
	wg.Wait()
	if h := high.Load(); h > capacity {
		t.Fatalf("observed %d concurrent callers, gate capacity %d", h, capacity)
	}
}

// TestGatePanicReleasesSlot verifies a panicking worker does not leak
// capacity: all later calls must still be admitted.
func TestGatePanicReleasesSlot(t *testing.T) {
	g := NewGate(1)
	for i := 0; i < 3; i++ {
		func() {
			defer func() { _ = recover() }()
			g.Do(func() { panic("worker crash") })
		}()
	}
	done := make(chan struct{})
	go g.Do(func() { close(done) })
	<-done
}

// TestGateDefaultCapacity checks <=0 normalizes to GOMAXPROCS.
func TestGateDefaultCapacity(t *testing.T) {
	if got, want := NewGate(0).Capacity(), Parallelism(0); got != want {
		t.Fatalf("NewGate(0).Capacity() = %d, want %d", got, want)
	}
}

// TestGateDoCtxDeadline: a saturated gate must reject a caller whose
// context expires while waiting, without running fn.
func TestGateDoCtxDeadline(t *testing.T) {
	g := NewGate(1)
	hold := make(chan struct{})
	started := make(chan struct{})
	go g.Do(func() { close(started); <-hold })
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ran := false
	err := g.DoCtx(ctx, func() { ran = true })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoCtx on saturated gate: err = %v, want DeadlineExceeded", err)
	}
	if ran {
		t.Fatal("fn ran despite expired deadline")
	}
	close(hold)

	// With the slot free again, DoCtx admits normally.
	if err := g.DoCtx(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("DoCtx after release: err=%v ran=%v", err, ran)
	}
}

// TestGateAdmitHook: a failing admit hook aborts DoCtx (fn unrun) and the
// slot is released; Do ignores hook errors but still runs the hook.
func TestGateAdmitHook(t *testing.T) {
	g := NewGate(1)
	hookErr := errors.New("injected admission failure")
	var calls atomic.Int64
	fail := true
	g.SetAdmit(func() error {
		calls.Add(1)
		if fail {
			return hookErr
		}
		return nil
	})

	ran := false
	if err := g.DoCtx(context.Background(), func() { ran = true }); !errors.Is(err, hookErr) {
		t.Fatalf("DoCtx err = %v, want hook error", err)
	}
	if ran {
		t.Fatal("fn ran despite admit failure")
	}

	fail = false
	if err := g.DoCtx(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("DoCtx with passing hook: err=%v ran=%v (slot leaked by failed admission?)", err, ran)
	}

	// Do runs the hook too (the injection point covers both entrances).
	before := calls.Load()
	g.Do(func() {})
	if calls.Load() != before+1 {
		t.Fatal("Do did not run the admit hook")
	}
}

// TestGateAdmitPanicReleasesSlot: a panicking hook must not leak capacity.
func TestGateAdmitPanicReleasesSlot(t *testing.T) {
	g := NewGate(1)
	g.SetAdmit(func() error { panic("injected hook panic") })
	for i := 0; i < 2; i++ {
		func() {
			defer func() { _ = recover() }()
			g.DoCtx(context.Background(), func() {})
		}()
	}
	g.SetAdmit(nil)
	done := make(chan struct{})
	go g.Do(func() { close(done) })
	<-done
}

// TestGateDoCtxWait: an uncontended acquire reports zero wait; a caller
// queued behind a held slot reports roughly the time it blocked.
func TestGateDoCtxWait(t *testing.T) {
	g := NewGate(1)
	wait, err := g.DoCtxWait(context.Background(), func() {})
	if err != nil || wait != 0 {
		t.Fatalf("uncontended DoCtxWait: wait=%v err=%v, want 0/nil", wait, err)
	}

	hold := make(chan struct{})
	started := make(chan struct{})
	go g.Do(func() { close(started); <-hold })
	<-started
	time.AfterFunc(30*time.Millisecond, func() { close(hold) })
	wait, err = g.DoCtxWait(context.Background(), func() {})
	if err != nil {
		t.Fatalf("queued DoCtxWait: %v", err)
	}
	if wait < 10*time.Millisecond {
		t.Fatalf("queued DoCtxWait reported wait %v, want >= 10ms of real blocking", wait)
	}

	// A caller whose context dies while queued gets the error and still a
	// meaningful wait measurement.
	hold2 := make(chan struct{})
	started2 := make(chan struct{})
	go g.Do(func() { close(started2); <-hold2 })
	<-started2
	t.Cleanup(func() { close(hold2) })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = g.DoCtxWait(ctx, func() { t.Fatal("fn must not run after ctx expiry") })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired DoCtxWait err = %v", err)
	}
}
