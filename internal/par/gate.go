package par

// Gate is a bounded-concurrency admission gate: at most Capacity callers
// execute inside Do at any moment; the rest block until a slot frees. It is
// the service-shaped sibling of ForEach — ForEach bounds a finite index
// space, Gate bounds an open-ended request stream (internal/server uses one
// to cap concurrent codec executions at -workers regardless of how many
// HTTP connections net/http has open).
type Gate struct {
	slots chan struct{}
}

// NewGate creates a gate admitting at most capacity concurrent callers;
// capacity <= 0 is normalized via Parallelism (GOMAXPROCS).
func NewGate(capacity int) *Gate {
	return &Gate{slots: make(chan struct{}, Parallelism(capacity))}
}

// Capacity reports the maximum number of concurrent callers.
func (g *Gate) Capacity() int { return cap(g.slots) }

// Do blocks until a slot is free, runs fn, and releases the slot (also on
// panic, so a crashing worker cannot leak capacity).
func (g *Gate) Do(fn func()) {
	g.slots <- struct{}{}
	defer func() { <-g.slots }()
	fn()
}
