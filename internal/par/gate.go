package par

import (
	"context"
	"time"
)

// Gate is a bounded-concurrency admission gate: at most Capacity callers
// execute inside Do at any moment; the rest block until a slot frees. It is
// the service-shaped sibling of ForEach — ForEach bounds a finite index
// space, Gate bounds an open-ended request stream (internal/server uses one
// to cap concurrent codec executions at -workers regardless of how many
// HTTP connections net/http has open).
type Gate struct {
	slots chan struct{}
	admit func() error
}

// NewGate creates a gate admitting at most capacity concurrent callers;
// capacity <= 0 is normalized via Parallelism (GOMAXPROCS).
func NewGate(capacity int) *Gate {
	return &Gate{slots: make(chan struct{}, Parallelism(capacity))}
}

// Capacity reports the maximum number of concurrent callers.
func (g *Gate) Capacity() int { return cap(g.slots) }

// SetAdmit installs a hook that runs after every slot acquisition, before
// the caller's fn. A non-nil error (or a panic) aborts the Do/DoCtx with
// the slot correctly released — this is the worker pool's fault-injection
// point (internal/server wires internal/fault here). Call before the gate
// is shared; the hook itself must be safe for concurrent use.
func (g *Gate) SetAdmit(fn func() error) { g.admit = fn }

// Do blocks until a slot is free, runs fn, and releases the slot (also on
// panic, so a crashing worker cannot leak capacity). Admission-hook errors
// are ignored; use DoCtx when the caller can handle them.
func (g *Gate) Do(fn func()) {
	g.slots <- struct{}{}
	defer func() { <-g.slots }()
	if g.admit != nil {
		g.admit()
	}
	fn()
}

// DoCtx is Do with a deadline on admission: it waits for a slot only as
// long as ctx lives (returning ctx.Err() if it expires first — a saturated
// pool cannot absorb a request past its deadline), then runs the admit
// hook (whose error aborts fn) and fn. The slot is released on every path,
// including panics from the hook or fn.
func (g *Gate) DoCtx(ctx context.Context, fn func()) error {
	_, err := g.DoCtxWait(ctx, fn)
	return err
}

// DoCtxWait is DoCtx additionally reporting how long admission blocked
// (zero when a slot was free immediately). The wait is the queueing
// delay a saturated pool imposes on this caller — the number a
// request's trace wants as its "gate wait" span and the access log
// wants per request, measured at the gate itself rather than guessed by
// the caller. The fast path costs one time.Now read beyond DoCtx.
func (g *Gate) DoCtxWait(ctx context.Context, fn func()) (wait time.Duration, err error) {
	select {
	case g.slots <- struct{}{}:
		// Slot free: no queueing delay.
	default:
		start := time.Now()
		select {
		case g.slots <- struct{}{}:
			wait = time.Since(start)
		case <-ctx.Done():
			return time.Since(start), ctx.Err()
		}
	}
	defer func() { <-g.slots }()
	if g.admit != nil {
		if err := g.admit(); err != nil {
			return wait, err
		}
	}
	fn()
	return wait, nil
}
