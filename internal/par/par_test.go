package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		if err := ForEach(p, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", p, i, h)
			}
		}
	}
}

func TestForEachDeterministicResults(t *testing.T) {
	run := func(p int) []int64 {
		out := make([]int64, 50)
		if err := ForEach(p, len(out), func(i int) error {
			out[i] = SplitSeed(42, fmt.Sprintf("trial/%d", i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, p := range []int{2, 8, 32} {
		got := run(p)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("parallelism %d: slot %d = %d, want %d", p, i, got[i], seq[i])
			}
		}
	}
}

// The reported error must be the lowest-indexed one, matching what a
// sequential loop would have returned, regardless of completion order.
func TestForEachLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, p := range []int{1, 4, 16} {
		err := ForEach(p, 20, func(i int) error {
			switch i {
			case 3:
				return errA
			case 17:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("parallelism %d: got %v, want lowest-index error %v", p, err, errA)
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0 should be a no-op, got %v", err)
	}
	ran := false
	if err := ForEach(100, 1, func(i int) error { ran = true; return nil }); err != nil || !ran {
		t.Errorf("n=1: ran=%v err=%v", ran, err)
	}
}

func TestSplitSeedStable(t *testing.T) {
	// Pinned values: the seed-splitting scheme is part of the experiment
	// output contract (changing it silently would change every manifest).
	if a, b := SplitSeed(42, "sgx"), SplitSeed(42, "sgx"); a != b {
		t.Fatalf("SplitSeed not stable: %d vs %d", a, b)
	}
	if SplitSeed(42, "sgx") == SplitSeed(42, "fig7") {
		t.Error("distinct task IDs should give distinct seeds")
	}
	if SplitSeed(42, "sgx") == SplitSeed(43, "sgx") {
		t.Error("distinct roots should give distinct seeds")
	}
}

func TestParallelism(t *testing.T) {
	if Parallelism(3) != 3 {
		t.Error("positive value should pass through")
	}
	if Parallelism(0) < 1 || Parallelism(-1) < 1 {
		t.Error("non-positive values should resolve to GOMAXPROCS >= 1")
	}
}
