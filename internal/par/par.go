// Package par is the deterministic parallelism substrate shared by the
// experiment scheduler, the end-to-end attacks, and the fingerprinting
// dataset generator. It provides exactly two things:
//
//   - ForEach, a bounded worker pool over an index space whose results
//     are deterministic by construction: every trial writes only to its
//     own slot, and the reported error is always the lowest-indexed one,
//     so outcomes are byte-identical at any parallelism level.
//   - SplitSeed, a stable (rootSeed, taskID) hash that hands every
//     parallel task its own RNG stream. Two tasks never share an RNG, so
//     scheduling order cannot leak into results.
//
// The package is deliberately tiny and dependency-free so that any layer
// (internal/experiments, internal/fingerprint, the cmd/ binaries) can use
// it without import cycles.
package par

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism normalizes a -parallel flag value: values <= 0 mean
// GOMAXPROCS, everything else is taken as-is.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(0..n-1) across at most parallelism goroutines and
// waits for all of them. Trials must be independent (each writing only
// to its own output slot); under that contract the combined result is
// identical at any parallelism level. When several trials fail, the
// error of the lowest index is returned — the same error a sequential
// loop would have hit first — so error reporting is deterministic too.
//
// parallelism <= 1 (or n <= 1) degrades to a plain loop with early exit
// on the first error.
func ForEach(parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SplitSeed derives a stable per-task seed from a root seed and a task
// identifier, via FNV-1a over the root's bytes and the ID. The same
// (root, taskID) pair always yields the same seed, and distinct task IDs
// yield independent streams, so a task's RNG does not depend on how many
// workers ran or in which order tasks completed.
func SplitSeed(root int64, taskID string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(root) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(taskID))
	return int64(h.Sum64())
}
