package recovery

import (
	"errors"
	"fmt"
)

// EntReplayer replays the LZW compressor's deterministic dictionary-entry
// sequence: given the plaintext bytes recovered so far, Ent reports the
// value the compressor's ent variable held when it consumed the next
// byte. Implemented by the lzw compressor; §IV-C's key observation is
// that the algorithm's reversibility makes this replay possible.
type EntReplayer interface {
	// Ent returns the current dictionary-entry value.
	Ent() uint32
	// Push consumes the next recovered plaintext byte, advancing the
	// dictionary state exactly as the compressor did.
	Push(c byte)
}

// ErrTraceTooShort reports an LZW trace with no observations.
var ErrTraceTooShort = errors.New("recovery: lzw trace too short")

// LZWCandidate is one of the up-to-8 recovered plaintexts (one per guess
// of the first byte's 3 unobservable bits), with a feasibility score.
type LZWCandidate struct {
	Plaintext []byte
	// FirstByteGuess is the low-3-bit guess that produced this candidate.
	FirstByteGuess byte
	// Score counts how often the replayed hash matched the observed trace
	// exactly; the "most feasible" candidate maximizes it (§IV-C).
	Score int
}

// RecoverLZW inverts an ncompress probe trace (§IV-C). The trace holds,
// per consumed input byte (from the second byte on), the observed value
// hp >> shiftLost, where hp = (c << 9) ^ ent indexed an 8-byte-entry
// hash table and the cache channel masks the low shiftLost bits of hp
// (3 for a 64-byte line over 8-byte entries).
//
// newReplayer must create a fresh dictionary replayer per candidate.
// The first byte's high 5 bits come from the first observation; its low
// 3 bits are brute-forced over all 8 possibilities, and candidates are
// scored by replay consistency.
func RecoverLZW(trace []uint64, shiftLost uint, newReplayer func(first byte) EntReplayer) ([]LZWCandidate, error) {
	if len(trace) == 0 {
		return nil, ErrTraceTooShort
	}
	// First observation: hp0 = (c1 << 9) ^ ent0 with ent0 = byte 0.
	// Observed hp0 >> 3 exposes ent0's bits 3-7 (bit 8 of hp0 is clean:
	// ent0 < 256 and c1's contribution starts at bit 9).
	first5 := byte((trace[0] << shiftLost) & 0xf8)

	var out []LZWCandidate
	for guess := byte(0); guess < 8; guess++ {
		first := first5 | guess
		rep := newReplayer(first)
		plain := []byte{first}
		score := 0
		for _, obs := range trace {
			ent := rep.Ent()
			// c sits at hp bits 9-16; the masked low bits of hp only
			// affect ent's low bits, so c is exact given ent.
			hpKnown := (obs << shiftLost) ^ uint64(ent)
			c := byte(hpKnown >> 9)
			// Consistency check: recompute the observable part of hp.
			hp := (uint64(c) << 9) ^ uint64(ent)
			if hp>>shiftLost == obs {
				score++
			}
			plain = append(plain, c)
			rep.Push(c)
		}
		out = append(out, LZWCandidate{Plaintext: plain, FirstByteGuess: guess, Score: score})
	}
	return out, nil
}

// BestLZW picks the highest-scoring candidate, breaking ties toward the
// lowest guess.
func BestLZW(cands []LZWCandidate) (LZWCandidate, error) {
	if len(cands) == 0 {
		return LZWCandidate{}, fmt.Errorf("recovery: no lzw candidates")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Score > best.Score {
			best = c
		}
	}
	return best, nil
}
