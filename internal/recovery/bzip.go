// Package recovery implements the algorithmic computations that convert
// cache-line observations back into plaintext (§IV-B, §IV-C, §IV-D and
// §V-D of the paper): the bzip2 histogram inversion with off-by-one
// ambiguity resolution, the ncompress dictionary replay with the
// 8-candidate first byte, and the zlib rolling-hash partial recovery.
package recovery

import "fmt"

// UnknownObservation marks an iteration whose cache measurement was lost
// (noise, exhausted frames); recovery treats it as unconstrained.
const UnknownObservation = int64(-1 << 62)

// BzipTrace is the attacker's view of one bzip2 histogram pass: element k
// is the byte offset from ftab's base of the cache line touched in loop
// iteration k (which processes block index i = n-1-k), or
// UnknownObservation. Offsets may be negative when ftab is not cache-line
// aligned (the line containing ftab[0] starts before ftab).
type BzipTrace []int64

// BzipResult is the recovered block with a per-byte confidence mask.
type BzipResult struct {
	Block []byte
	// Known[i] is true when the candidate set for byte i collapsed to a
	// single value; false bytes were guessed from the remaining interval.
	Known []bool
	// Corrected counts bytes that the direct observation left ambiguous
	// but the cross-iteration redundancy (§V-D's error correction)
	// collapsed to a single value.
	Corrected int
}

// KnownCount returns how many bytes were recovered with certainty.
func (r *BzipResult) KnownCount() int {
	n := 0
	for _, k := range r.Known {
		if k {
			n++
		}
	}
	return n
}

// Accuracy compares against the ground truth and returns the fraction of
// correct bytes and of correct bits.
func (r *BzipResult) Accuracy(truth []byte) (byteAcc, bitAcc float64) {
	if len(truth) == 0 {
		return 0, 0
	}
	okBytes, okBits := 0, 0
	for i := range truth {
		if i >= len(r.Block) {
			break
		}
		if r.Block[i] == truth[i] {
			okBytes++
		}
		diff := r.Block[i] ^ truth[i]
		for b := 0; b < 8; b++ {
			if diff&(1<<uint(b)) == 0 {
				okBits++
			}
		}
	}
	return float64(okBytes) / float64(len(truth)), float64(okBits) / float64(len(truth)*8)
}

// jInterval returns the inclusive range of j values compatible with a
// line offset observation: 4j lands in [off, off+lineSize-1].
func jInterval(off int64, lineSize int64) (lo, hi int) {
	l := (off + 3) / 4 // ceil(off/4); negative offsets clamp to 0 below
	h := (off + lineSize - 1) / 4
	if l < 0 {
		l = 0
	}
	if h > 0xffff {
		h = 0xffff
	}
	return int(l), int(h)
}

// RecoverBzip inverts the ftab trace (§IV-D): iteration k constrains
// j = block[i]<<8 | block[(i+1)%n] to a 16-value interval; each byte is
// constrained twice (as a high byte in iteration for i, as a low byte in
// the iteration for i-1), and the redundancy across consecutive
// iterations resolves the off-by-one ambiguity of a misaligned ftab
// (§V-D's error correction). lineSize is the cache line size (64).
func RecoverBzip(trace BzipTrace, n, lineSize int) (*BzipResult, error) {
	if len(trace) != n {
		return nil, fmt.Errorf("recovery: trace has %d observations for block of %d", len(trace), n)
	}
	if n == 0 {
		return &BzipResult{}, nil
	}
	ls := int64(lineSize)

	// Per-iteration j interval; iteration k handles block index i=n-1-k.
	type interval struct{ lo, hi int }
	jiv := make([]interval, n) // indexed by block index i
	for k := 0; k < n; k++ {
		i := n - 1 - k
		if trace[k] == UnknownObservation {
			jiv[i] = interval{0, 0xffff}
			continue
		}
		lo, hi := jInterval(trace[k], ls)
		jiv[i] = interval{lo, hi}
	}

	// Candidate sets per byte as 256-bit masks.
	cand := make([][4]uint64, n)
	full := [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	for i := range cand {
		cand[i] = full
	}
	has := func(m *[4]uint64, v int) bool { return m[v/64]&(1<<uint(v%64)) != 0 }
	unset := func(m *[4]uint64, v int) { m[v/64] &^= 1 << uint(v%64) }
	count := func(m *[4]uint64) int {
		c := 0
		for _, w := range m {
			for ; w != 0; w &= w - 1 {
				c++
			}
		}
		return c
	}

	// Initial constraint from each interval's high byte.
	for i := 0; i < n; i++ {
		lo, hi := jiv[i].lo>>8, jiv[i].hi>>8
		for v := 0; v < 256; v++ {
			if v < lo || v > hi {
				unset(&cand[i], v)
			}
		}
	}

	// Remember which bytes the direct observation alone pinned down, so
	// the result can report how many the redundancy passes corrected.
	directKnown := make([]bool, n)
	for i := 0; i < n; i++ {
		directKnown[i] = count(&cand[i]) == 1
	}

	// Arc-consistency sweeps around the ring: j_i = b[i]<<8 | b[i+1].
	for pass := 0; pass < 4; pass++ {
		changed := false
		for i := 0; i < n; i++ {
			next := (i + 1) % n
			iv := jiv[i]
			// Refine b[i]: keep x only if some y in cand[next] fits.
			for x := 0; x < 256; x++ {
				if !has(&cand[i], x) {
					continue
				}
				lo, hi := iv.lo-(x<<8), iv.hi-(x<<8)
				ok := false
				for y := max(lo, 0); y <= min(hi, 255); y++ {
					if has(&cand[next], y) {
						ok = true
						break
					}
				}
				if !ok {
					unset(&cand[i], x)
					changed = true
				}
			}
			// Refine b[next]: keep y only if some x in cand[i] fits.
			for y := 0; y < 256; y++ {
				if !has(&cand[next], y) {
					continue
				}
				ok := false
				for x := 0; x < 256; x++ {
					if !has(&cand[i], x) {
						continue
					}
					j := x<<8 | y
					if j >= iv.lo && j <= iv.hi {
						ok = true
						break
					}
				}
				if !ok {
					unset(&cand[next], y)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	res := &BzipResult{Block: make([]byte, n), Known: make([]bool, n)}
	for i := 0; i < n; i++ {
		c := count(&cand[i])
		switch {
		case c == 1:
			res.Known[i] = true
			if !directKnown[i] {
				res.Corrected++
			}
			for v := 0; v < 256; v++ {
				if has(&cand[i], v) {
					res.Block[i] = byte(v)
					break
				}
			}
		case c == 0:
			// Contradiction (noisy trace): fall back to the raw interval's
			// midpoint high byte.
			res.Block[i] = byte(((jiv[i].lo + jiv[i].hi) / 2) >> 8)
		default:
			// Ambiguous: pick the lowest candidate (§IV-D notes the
			// attacker at least knows the 0x00-0x03 vs 0xf4-0xff class).
			for v := 0; v < 256; v++ {
				if has(&cand[i], v) {
					res.Block[i] = byte(v)
					break
				}
			}
		}
	}
	return res, nil
}
