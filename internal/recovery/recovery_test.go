package recovery

import (
	"math/rand"
	"testing"
)

// bzipTraceFrom builds the attacker's observed line offsets from ground
// truth: iteration k (i = n-1-k) touches ftab + 4*j, and the attacker
// sees the containing cache line (phase = ftab base mod 64).
func bzipTraceFrom(block []byte, phase uint64) BzipTrace {
	n := len(block)
	trace := make(BzipTrace, n)
	base := uint64(0x40000) + phase // any base with the right alignment
	for k := 0; k < n; k++ {
		i := n - 1 - k
		j := uint64(block[i])<<8 | uint64(block[(i+1)%n])
		lineStart := (base + 4*j) &^ 63
		trace[k] = int64(lineStart) - int64(base)
	}
	return trace
}

func TestRecoverBzipAlignedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	block := make([]byte, 512)
	rng.Read(block)
	res, err := RecoverBzip(bzipTraceFrom(block, 0), len(block), 64)
	if err != nil {
		t.Fatal(err)
	}
	byteAcc, bitAcc := res.Accuracy(block)
	if byteAcc != 1.0 {
		t.Errorf("aligned ftab byte accuracy = %.4f, want 1.0", byteAcc)
	}
	if bitAcc != 1.0 {
		t.Errorf("aligned ftab bit accuracy = %.4f, want 1.0", bitAcc)
	}
}

func TestRecoverBzipMisalignedHighAccuracy(t *testing.T) {
	// The paper's off-by-one ambiguity: misaligned ftab still recovers
	// nearly everything thanks to cross-iteration redundancy.
	rng := rand.New(rand.NewSource(2))
	block := make([]byte, 1024)
	rng.Read(block)
	res, err := RecoverBzip(bzipTraceFrom(block, 20), len(block), 64)
	if err != nil {
		t.Fatal(err)
	}
	byteAcc, bitAcc := res.Accuracy(block)
	if byteAcc < 0.98 {
		t.Errorf("misaligned byte accuracy = %.4f, want >= 0.98", byteAcc)
	}
	if bitAcc < 0.99 {
		t.Errorf("misaligned bit accuracy = %.4f, want >= 0.99 (paper: >99%%)", bitAcc)
	}
}

func TestRecoverBzipTextInput(t *testing.T) {
	text := []byte("It was the best of times, it was the worst of times, it was the age of wisdom")
	res, err := RecoverBzip(bzipTraceFrom(text, 20), len(text), 64)
	if err != nil {
		t.Fatal(err)
	}
	byteAcc, _ := res.Accuracy(text)
	if byteAcc < 0.95 {
		t.Errorf("text byte accuracy = %.4f, want >= 0.95\nrecovered: %q", byteAcc, res.Block)
	}
}

func TestRecoverBzipWithMissingObservations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	block := make([]byte, 600)
	rng.Read(block)
	trace := bzipTraceFrom(block, 0)
	// Drop 2% of observations.
	dropped := 0
	for k := range trace {
		if rng.Float64() < 0.02 {
			trace[k] = UnknownObservation
			dropped++
		}
	}
	res, err := RecoverBzip(trace, len(block), 64)
	if err != nil {
		t.Fatal(err)
	}
	_, bitAcc := res.Accuracy(block)
	if bitAcc < 0.95 {
		t.Errorf("bit accuracy with %d dropped obs = %.4f, want >= 0.95", dropped, bitAcc)
	}
}

func TestRecoverBzipLengthMismatch(t *testing.T) {
	if _, err := RecoverBzip(BzipTrace{0, 64}, 5, 64); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRecoverBzipEmpty(t *testing.T) {
	res, err := RecoverBzip(BzipTrace{}, 0, 64)
	if err != nil || len(res.Block) != 0 {
		t.Errorf("empty recovery: res=%v err=%v", res, err)
	}
}

// --- LZW ---

// gadgetReplay mirrors the asm victim's simplified dictionary rule; the
// production replayer lives in the lzw package.
type gadgetReplay struct {
	htab map[uint64]uint64
	ent  uint32
}

func newGadgetReplay(first byte) *gadgetReplay {
	return &gadgetReplay{htab: map[uint64]uint64{}, ent: uint32(first)}
}

func (g *gadgetReplay) Ent() uint32 { return g.ent }

func (g *gadgetReplay) Push(c byte) {
	hp := (uint64(c) << 9) ^ uint64(g.ent)
	fc := (uint64(g.ent) << 8) | uint64(c)
	if g.htab[hp] == fc {
		g.ent = uint32(hp & 0xffff)
	} else {
		g.htab[hp] = fc
		g.ent = uint32(c)
	}
}

func lzwTraceFrom(input []byte) []uint64 {
	rep := newGadgetReplay(input[0])
	var trace []uint64
	for _, c := range input[1:] {
		hp := (uint64(c) << 9) ^ uint64(rep.Ent())
		trace = append(trace, hp>>3)
		rep.Push(c)
	}
	return trace
}

func TestRecoverLZWExactWithRepetition(t *testing.T) {
	// Repetition forces dictionary hits, letting the replay score
	// distinguish the 8 first-byte candidates.
	input := []byte("abcabcabcabc the rain in spain abcabc falls mainly abcabc")
	cands, err := RecoverLZW(lzwTraceFrom(input), 3, func(first byte) EntReplayer {
		return newGadgetReplay(first)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 8 {
		t.Fatalf("got %d candidates, want 8", len(cands))
	}
	best, err := BestLZW(cands)
	if err != nil {
		t.Fatal(err)
	}
	if string(best.Plaintext) != string(input) {
		t.Errorf("best candidate mismatch:\n got %q\nwant %q", best.Plaintext, input)
	}
}

func TestRecoverLZWRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	input := make([]byte, 2000)
	rng.Read(input)
	cands, err := RecoverLZW(lzwTraceFrom(input), 3, func(first byte) EntReplayer {
		return newGadgetReplay(first)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Even if candidates tie, every candidate with the correct guess must
	// reproduce the input exactly; others at least from byte 2 on until
	// divergence. Check the correct-guess candidate.
	correct := input[0] & 0x07
	for _, c := range cands {
		if c.FirstByteGuess == correct {
			if string(c.Plaintext) != string(input) {
				t.Error("correct-guess candidate should recover random input exactly")
			}
		}
	}
}

func TestRecoverLZWEmptyTrace(t *testing.T) {
	if _, err := RecoverLZW(nil, 3, nil); err == nil {
		t.Error("empty trace should error")
	}
}

// --- zlib ---

func TestRecoverZlibDirect25Percent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	input := make([]byte, 4096)
	rng.Read(input)
	rec := RecoverZlib(SimulateZlibTrace(input), len(input), 0, false)
	frac := ZlibLeakFraction(rec, input)
	// 2 of 8 bits for nearly every byte: just under 25%.
	if frac < 0.22 || frac > 0.26 {
		t.Errorf("leak fraction = %.4f, want ~0.25 (paper's 25%%)", frac)
	}
	// Every recovered bit must be correct: verify mask/value consistency.
	for i, r := range rec {
		if r.Value&^r.Mask != 0 {
			t.Fatalf("byte %d: value bits outside mask", i)
		}
		if r.Mask != 0 && r.Value != input[i]&r.Mask {
			t.Fatalf("byte %d: recovered bits wrong: got %08b want %08b (mask %08b)",
				i, r.Value, input[i]&r.Mask, r.Mask)
		}
	}
}

func TestRecoverZlibLowercaseFullRecovery(t *testing.T) {
	input := []byte("thequickbrownfoxjumpsoverthelazydogandkeepsrunningforever")
	rec := RecoverZlib(SimulateZlibTrace(input), len(input), 0x60, true)
	// Interior bytes (1..n-2) must be fully recovered.
	for i := 1; i < len(input)-1; i++ {
		if rec[i].Mask != 0xff {
			t.Errorf("byte %d mask = %08b, want ff", i, rec[i].Mask)
			continue
		}
		if rec[i].Value != input[i] {
			t.Errorf("byte %d = %q, want %q", i, rec[i].Value, input[i])
		}
	}
	frac := ZlibLeakFraction(rec, input)
	if frac < 0.9 {
		t.Errorf("charset leak fraction = %.4f, want >= 0.9 (paper: entire content)", frac)
	}
}

func TestRecoverZlibShortInput(t *testing.T) {
	rec := RecoverZlib(SimulateZlibTrace([]byte("ab")), 2, 0, false)
	for _, r := range rec {
		if r.Mask != 0 {
			t.Error("2-byte input produces no observations, nothing should be known")
		}
	}
}
