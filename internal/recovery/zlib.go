package recovery

// ZlibKnownBits is the per-byte partial information the zlib hash-head
// gadget leaks without charset assumptions (§IV-B): for each input byte,
// which bits are known and their values.
type ZlibKnownBits struct {
	Value byte // known bits' values, unknown bits zero
	Mask  byte // 1 bits are known
}

// zlib hash parameters (DEFLATE reference compressor / our lz77 package).
const (
	zlibHashShift = 5
	zlibHashMask  = 0x7fff
	// zlibObservedShift is how many low hash bits the cache channel hides:
	// the 2-byte head entries leave hash bits >= 5 observable on 64-byte
	// lines (addr = head + h*2; addr bits >= 6 visible).
	zlibObservedShift = 5
)

// RecoverZlib inverts a trace of observed hash-head lines. obs[k] is
// (h_k >> 5) where h_k is the 15-bit rolling hash after inserting input
// bytes k, k+1, k+2:
//
//	h_k = ((h_{k-1} << 5) ^ w[k+2]) & 0x7fff
//
// Without charset knowledge, bits 3-4 of each interior byte are exposed
// directly (the paper's 25%: 2 of 8 bits): h_k's bits 8-9 equal
// h_{k-1}'s bits 3-4, which are bits 3-4 of w[k+1] xor nothing (the xor
// contributions from older bytes were shifted past bit 4 already).
//
// With a known charset high-3 (e.g. 011 for lowercase ASCII), the xor of
// w's bits 5-7 into h's bits 5-7 can be undone and every interior byte is
// fully recovered (§IV-B's "leak the entire content" claim).
func RecoverZlib(obs []uint16, n int, charsetHigh3 byte, haveCharset bool) []ZlibKnownBits {
	out := make([]ZlibKnownBits, n)
	if len(obs) == 0 {
		return out
	}
	// Observation k tells us bits 5-14 of h_k. h_k's bit layout:
	//   bits 0-4:  w[k+2] bits 0-4                          (hidden)
	//   bits 5-7:  w[k+2] bits 5-7 ^ h_{k-1} bits 0-2
	//   bits 8-14: h_{k-1} bits 3-9
	// and h_{k-1} bits 0-4 = w[k+1] bits 0-4,
	//     h_{k-1} bits 3-4 = w[k+1] bits 3-4  -> direct leak via h_k bits 8-9.
	for k := 0; k < len(obs) && k+1 < n; k++ {
		h := uint32(obs[k]) << zlibObservedShift // bits 5-14 of h_k known
		byteIdx := k + 1                         // w[k+1], the "middle" byte
		// Direct bits: w[k+1] bits 3-4 from h_k bits 8-9.
		direct := byte(h>>8) & 0x03 << 3
		out[byteIdx].Value |= direct
		out[byteIdx].Mask |= 0x18

		if !haveCharset {
			continue
		}
		// Charset mode: w[k+2] bits 5-7 are known constants, so h_k bits
		// 5-7 reveal h_{k-1} bits 0-2 = w[k+1] bits 0-2.
		low3 := (byte(h>>5) ^ charsetHigh3>>5) & 0x07
		out[byteIdx].Value |= low3
		out[byteIdx].Mask |= 0x07
		// h_k bits 10-14 = h_{k-1} bits 5-9. h_{k-1} bits 5-7 =
		// w[k+1] bits 5-7 ^ h_{k-2} bits 0-2; with charset, w[k+1] bits
		// 5-7 are the known constant anyway.
		out[byteIdx].Value |= charsetHigh3 & 0xe0
		out[byteIdx].Mask |= 0xe0
	}
	return out
}

// ZlibLeakFraction returns the fraction of all input bits recovered
// correctly, given ground truth.
func ZlibLeakFraction(rec []ZlibKnownBits, truth []byte) float64 {
	if len(truth) == 0 {
		return 0
	}
	known := 0
	for i, r := range rec {
		if i >= len(truth) {
			break
		}
		for b := 0; b < 8; b++ {
			bit := byte(1) << uint(b)
			if r.Mask&bit != 0 && r.Value&bit == truth[i]&bit {
				known++
			}
		}
	}
	return float64(known) / float64(len(truth)*8)
}

// SimulateZlibTrace computes the gadget's observable trace for a given
// input: the ground-truth generator used by tests and the survey
// experiment (the lz77 package produces the same values through its
// instrumented compressor).
func SimulateZlibTrace(input []byte) []uint16 {
	if len(input) < 3 {
		return nil
	}
	h := (uint32(input[0])<<zlibHashShift ^ uint32(input[1])) & zlibHashMask
	obs := make([]uint16, 0, len(input)-2)
	for k := 0; k+2 < len(input); k++ {
		h = ((h << zlibHashShift) ^ uint32(input[k+2])) & zlibHashMask
		obs = append(obs, uint16(h>>zlibObservedShift))
	}
	return obs
}
