package recovery_test

import (
	"fmt"
	"log"

	"github.com/zipchannel/zipchannel/internal/compress/lzw"
	"github.com/zipchannel/zipchannel/internal/recovery"
)

// probeTap records the ncompress gadget's primary hash probes at
// cache-line granularity, exactly what a Prime+Probe attacker observes.
type probeTap struct{ obs []uint64 }

func (p *probeTap) Probe(hp uint64, primary bool) {
	if primary {
		p.obs = append(p.obs, hp>>3)
	}
}

// Inverting an LZW probe trace back into plaintext: replay the
// dictionary for each of the 8 first-byte candidates and keep the most
// consistent one (§IV-C of the paper).
func ExampleRecoverLZW() {
	secret := []byte("attack at dawn, attack at dawn")
	var tap probeTap
	if _, err := lzw.Compress(secret, &tap); err != nil {
		log.Fatal(err)
	}

	cands, err := recovery.RecoverLZW(tap.obs, 3, func(first byte) recovery.EntReplayer {
		return lzw.NewReplayer(first)
	})
	if err != nil {
		log.Fatal(err)
	}
	best, err := recovery.BestLZW(cands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", best.Plaintext)
	// Output:
	// attack at dawn, attack at dawn
}

// Inverting a bzip2 histogram trace: each loop iteration constrains a
// 2-byte pair to a 16-value window, and the ring of constraints pins
// every byte (§IV-D).
func ExampleRecoverBzip() {
	secret := []byte("BANANA BANDANA")
	n := len(secret)
	// What the attacker observes: the cache line of ftab + 4*j per
	// iteration, relative to a line-aligned ftab.
	trace := make(recovery.BzipTrace, n)
	for k := 0; k < n; k++ {
		i := n - 1 - k
		j := int64(secret[i])<<8 | int64(secret[(i+1)%n])
		trace[k] = (4 * j) &^ 63
	}
	res, err := recovery.RecoverBzip(trace, n, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", res.Block)
	// Output:
	// BANANA BANDANA
}
