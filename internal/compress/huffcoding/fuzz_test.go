package huffcoding

import (
	"testing"
)

// FuzzRoundTrip treats the input as a symbol stream: build a
// length-limited canonical code from its byte frequencies, encode every
// symbol, and decode the bit stream back. Exercises BuildLengths'
// frequency-halving length limiter, the canonical code assignment, and
// the LSB-first bit I/O together.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("a"))
	f.Add([]byte("aaaaaaaab"))
	f.Add([]byte("abcdefghijklmnopqrstuvwxyz"))
	f.Add([]byte{0x00, 0xff, 0x00, 0xff, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip("no symbols")
		}
		if len(data) > 64<<10 {
			data = data[:64<<10]
		}
		freq := make([]int64, 256)
		for _, b := range data {
			freq[b]++
		}
		// maxLen 0 selects MaxCodeLen; 8 forces the halving limiter into
		// its tightest feasible corner for a 256-symbol alphabet.
		for _, maxLen := range []int{0, 8} {
			lengths, err := BuildLengths(freq, maxLen)
			if err != nil {
				t.Fatalf("BuildLengths(maxLen=%d): %v", maxLen, err)
			}
			limit := maxLen
			if limit == 0 {
				limit = MaxCodeLen
			}
			for sym, l := range lengths {
				if int(l) > limit {
					t.Fatalf("symbol %d got length %d > limit %d", sym, l, limit)
				}
				if freq[sym] > 0 && l == 0 {
					t.Fatalf("symbol %d has frequency %d but no code", sym, freq[sym])
				}
			}
			enc, err := NewEncoder(lengths)
			if err != nil {
				t.Fatalf("NewEncoder(maxLen=%d): %v", maxLen, err)
			}
			var w BitWriter
			for _, b := range data {
				if err := enc.Encode(&w, int(b)); err != nil {
					t.Fatalf("Encode(%d): %v", b, err)
				}
			}
			dec, err := NewDecoder(lengths)
			if err != nil {
				t.Fatalf("NewDecoder(maxLen=%d): %v", maxLen, err)
			}
			r := NewBitReader(w.Bytes())
			for i, b := range data {
				sym, err := dec.Decode(r)
				if err != nil {
					t.Fatalf("Decode symbol %d: %v", i, err)
				}
				if sym != int(b) {
					t.Fatalf("symbol %d: decoded %d, want %d", i, sym, b)
				}
			}
		}
	})
}
