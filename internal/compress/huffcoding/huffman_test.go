package huffcoding

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitIORoundTrip(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b101, 3)
	w.WriteBits(0xff, 8)
	w.WriteBits(0, 1)
	w.WriteBits(0x12345, 20)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("got %b", v)
	}
	if v, _ := r.ReadBits(8); v != 0xff {
		t.Errorf("got %x", v)
	}
	if v, _ := r.ReadBits(1); v != 0 {
		t.Errorf("got %d", v)
	}
	if v, _ := r.ReadBits(20); v != 0x12345 {
		t.Errorf("got %x", v)
	}
	if _, err := r.ReadBits(8); !errors.Is(err, ErrUnexpectedEOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBitIOPropertyRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		vals := make([]uint32, n)
		widths := make([]uint, n)
		var w BitWriter
		for i := 0; i < n; i++ {
			widths[i] = 1 + uint(rng.Intn(32))
			vals[i] = rng.Uint32() & ((1 << widths[i]) - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewBitReader(w.Bytes())
		for i := 0; i < n; i++ {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildLengthsBasic(t *testing.T) {
	freq := []int64{45, 13, 12, 16, 9, 5}
	lengths, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	// The most frequent symbol must have the shortest code.
	for i := 1; i < len(freq); i++ {
		if lengths[0] > lengths[i] {
			t.Errorf("symbol 0 (freq 45) has longer code (%d) than symbol %d (%d)",
				lengths[0], i, lengths[i])
		}
	}
	// Kraft equality for a complete tree.
	sum := 0.0
	for _, l := range lengths {
		if l > 0 {
			sum += 1 / float64(int(1)<<l)
		}
	}
	if sum != 1.0 {
		t.Errorf("Kraft sum = %f, want 1.0", sum)
	}
}

func TestBuildLengthsSingleSymbol(t *testing.T) {
	lengths, err := BuildLengths([]int64{0, 7, 0}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lengths[1] != 1 || lengths[0] != 0 || lengths[2] != 0 {
		t.Errorf("lengths = %v", lengths)
	}
}

func TestBuildLengthsEmpty(t *testing.T) {
	if _, err := BuildLengths([]int64{0, 0}, 15); !errors.Is(err, ErrBadLengths) {
		t.Errorf("want ErrBadLengths, got %v", err)
	}
}

func TestBuildLengthsLimit(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; the limiter must cap.
	freq := make([]int64, 30)
	a, b := int64(1), int64(1)
	for i := range freq {
		freq[i] = a
		a, b = b, a+b
	}
	lengths, err := BuildLengths(freq, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lengths {
		if l > 10 {
			t.Errorf("symbol %d: length %d exceeds limit 10", i, l)
		}
		if l == 0 {
			t.Errorf("symbol %d lost its code", i)
		}
	}
	// Must still be decodable (Kraft <= 1).
	if _, err := NewDecoder(lengths); err != nil {
		t.Errorf("limited lengths are not decodable: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nsym := 2 + rng.Intn(64)
		freq := make([]int64, nsym)
		for i := range freq {
			freq[i] = int64(rng.Intn(1000)) // some may be zero
		}
		freq[0]++ // ensure at least one
		freq[1]++ // and at least two for a real tree
		lengths, err := BuildLengths(freq, 15)
		if err != nil {
			return false
		}
		enc, err := NewEncoder(lengths)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(lengths)
		if err != nil {
			return false
		}
		// Encode a random symbol stream (only symbols with codes).
		var syms []int
		for i := 0; i < 200; i++ {
			s := rng.Intn(nsym)
			if lengths[s] == 0 {
				continue
			}
			syms = append(syms, s)
		}
		var w BitWriter
		for _, s := range syms {
			if err := enc.Encode(&w, s); err != nil {
				return false
			}
		}
		r := NewBitReader(w.Bytes())
		for _, want := range syms {
			got, err := dec.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalCodesArePrefixFree(t *testing.T) {
	freq := []int64{10, 20, 30, 40, 5, 5, 7, 100}
	lengths, err := BuildLengths(freq, 15)
	if err != nil {
		t.Fatal(err)
	}
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		for j := range codes {
			if i == j || lengths[i] == 0 || lengths[j] == 0 {
				continue
			}
			li, lj := int(lengths[i]), int(lengths[j])
			if li > lj {
				continue
			}
			if codes[j]>>(uint(lj-li)) == codes[i] {
				t.Errorf("code %d (%0*b) is a prefix of code %d (%0*b)",
					i, li, codes[i], j, lj, codes[j])
			}
		}
	}
}

func TestDecoderRejectsOversubscribed(t *testing.T) {
	if _, err := NewDecoder([]uint8{1, 1, 1}); !errors.Is(err, ErrBadLengths) {
		t.Errorf("want ErrBadLengths, got %v", err)
	}
}

func TestEncodeUnusedSymbol(t *testing.T) {
	enc, err := NewEncoder([]uint8{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	var w BitWriter
	if err := enc.Encode(&w, 2); !errors.Is(err, ErrBadLengths) {
		t.Errorf("want ErrBadLengths, got %v", err)
	}
}
