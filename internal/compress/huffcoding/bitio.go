// Package huffcoding provides the bit-level I/O and canonical Huffman
// coding shared by the lz77 (DEFLATE-style) and bwt (bzip2-style)
// compressors.
package huffcoding

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF reports a truncated bit stream.
var ErrUnexpectedEOF = errors.New("huffcoding: unexpected end of bit stream")

// BitWriter packs bits LSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	cur  uint64
	nCur uint
}

// WriteBits appends the low n bits of v (n <= 32).
func (w *BitWriter) WriteBits(v uint32, n uint) {
	w.cur |= uint64(v&((1<<n)-1)) << w.nCur
	w.nCur += n
	for w.nCur >= 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur >>= 8
		w.nCur -= 8
	}
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(b uint32) { w.WriteBits(b, 1) }

// Bytes flushes any partial byte (zero-padded) and returns the stream.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// BitReader consumes bits LSB-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int
	cur  uint64
	nCur uint
}

// NewBitReader wraps b.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// ReadBits consumes n bits (n <= 32).
func (r *BitReader) ReadBits(n uint) (uint32, error) {
	for r.nCur < n {
		if r.pos >= len(r.buf) {
			return 0, ErrUnexpectedEOF
		}
		r.cur |= uint64(r.buf[r.pos]) << r.nCur
		r.pos++
		r.nCur += 8
	}
	v := uint32(r.cur & ((1 << n) - 1))
	r.cur >>= n
	r.nCur -= n
	return v, nil
}

// ReadBit consumes one bit.
func (r *BitReader) ReadBit() (uint32, error) { return r.ReadBits(1) }

// Offset returns how many whole bits have been consumed.
func (r *BitReader) Offset() int { return r.pos*8 - int(r.nCur) }

func (r *BitReader) String() string {
	return fmt.Sprintf("BitReader{%d/%d bytes}", r.pos, len(r.buf))
}
