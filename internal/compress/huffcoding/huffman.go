package huffcoding

import (
	"container/heap"
	"errors"
	"fmt"
)

// MaxCodeLen is the longest canonical code we emit, matching DEFLATE.
const MaxCodeLen = 15

// ErrBadLengths reports an invalid (non-prefix-complete) length set.
var ErrBadLengths = errors.New("huffcoding: invalid code lengths")

type hnode struct {
	freq        int64
	sym         int // leaf symbol, -1 for internal
	left, right int // node indices, -1 for leaves
}

type nodeHeap struct {
	nodes *[]hnode
	order []int
}

func (h nodeHeap) Len() int { return len(h.order) }
func (h nodeHeap) Less(i, j int) bool {
	a, b := (*h.nodes)[h.order[i]], (*h.nodes)[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return h.order[i] < h.order[j] // deterministic tie-break
}
func (h nodeHeap) Swap(i, j int)       { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x interface{}) { h.order = append(h.order, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// BuildLengths computes Huffman code lengths for the given symbol
// frequencies, limited to maxLen bits. Symbols with zero frequency get
// length 0 (no code). At least one symbol must have nonzero frequency.
// Length limiting uses bzip2's approach: halve the frequencies and
// rebuild until the tree fits.
func BuildLengths(freq []int64, maxLen int) ([]uint8, error) {
	if maxLen <= 0 || maxLen > MaxCodeLen {
		maxLen = MaxCodeLen
	}
	n := len(freq)
	lengths := make([]uint8, n)
	work := make([]int64, n)
	copy(work, freq)

	alive := 0
	for _, f := range work {
		if f > 0 {
			alive++
		}
	}
	if alive == 0 {
		return nil, fmt.Errorf("%w: no symbols", ErrBadLengths)
	}
	if alive == 1 {
		for i, f := range work {
			if f > 0 {
				lengths[i] = 1
			}
		}
		return lengths, nil
	}

	for attempt := 0; ; attempt++ {
		nodes := make([]hnode, 0, 2*n)
		h := &nodeHeap{nodes: &nodes}
		for i, f := range work {
			if f > 0 {
				nodes = append(nodes, hnode{freq: f, sym: i, left: -1, right: -1})
				h.order = append(h.order, len(nodes)-1)
			}
		}
		heap.Init(h)
		for h.Len() > 1 {
			a := heap.Pop(h).(int)
			b := heap.Pop(h).(int)
			nodes = append(nodes, hnode{freq: nodes[a].freq + nodes[b].freq, sym: -1, left: a, right: b})
			heap.Push(h, len(nodes)-1)
		}
		root := h.order[0]
		over := false
		var walk func(i, depth int)
		walk = func(i, depth int) {
			nd := nodes[i]
			if nd.sym >= 0 {
				if depth > maxLen {
					over = true
					depth = maxLen
				}
				lengths[nd.sym] = uint8(depth)
				return
			}
			walk(nd.left, depth+1)
			walk(nd.right, depth+1)
		}
		walk(root, 0)
		if !over {
			return lengths, nil
		}
		if attempt > 32 {
			return nil, fmt.Errorf("%w: cannot limit lengths to %d bits", ErrBadLengths, maxLen)
		}
		// Flatten the distribution and retry (bzip2's trick).
		for i := range work {
			if work[i] > 0 {
				work[i] = work[i]/2 + 1
			}
		}
	}
}

// CanonicalCodes assigns canonical codes (MSB-first) to the given
// lengths: shorter codes first, ties broken by symbol order.
func CanonicalCodes(lengths []uint8) ([]uint32, error) {
	var count [MaxCodeLen + 1]int
	for _, l := range lengths {
		if int(l) > MaxCodeLen {
			return nil, fmt.Errorf("%w: length %d", ErrBadLengths, l)
		}
		count[l]++
	}
	count[0] = 0
	var next [MaxCodeLen + 2]uint32
	code := uint32(0)
	for l := 1; l <= MaxCodeLen; l++ {
		code = (code + uint32(count[l-1])) << 1
		next[l] = code
	}
	codes := make([]uint32, len(lengths))
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		codes[sym] = next[l]
		if next[l] >= 1<<l {
			return nil, fmt.Errorf("%w: over-subscribed at length %d", ErrBadLengths, l)
		}
		next[l]++
	}
	return codes, nil
}

// Encoder writes symbols as canonical Huffman codes.
type Encoder struct {
	lengths []uint8
	codes   []uint32
}

// NewEncoder builds an encoder from code lengths.
func NewEncoder(lengths []uint8) (*Encoder, error) {
	codes, err := CanonicalCodes(lengths)
	if err != nil {
		return nil, err
	}
	return &Encoder{lengths: lengths, codes: codes}, nil
}

// Encode writes the code for sym (MSB-first).
func (e *Encoder) Encode(w *BitWriter, sym int) error {
	l := e.lengths[sym]
	if l == 0 {
		return fmt.Errorf("%w: symbol %d has no code", ErrBadLengths, sym)
	}
	code := e.codes[sym]
	for i := int(l) - 1; i >= 0; i-- {
		w.WriteBit((code >> uint(i)) & 1)
	}
	return nil
}

// CodeLen returns sym's code length in bits (0 = unused symbol).
func (e *Encoder) CodeLen(sym int) int { return int(e.lengths[sym]) }

// Decoder reads canonical Huffman codes bit by bit using per-length
// first-code/offset tables (the zlib decode structure).
type Decoder struct {
	counts  [MaxCodeLen + 1]int
	symbols []int // symbols sorted by (length, symbol)
}

// NewDecoder builds a decoder from the same lengths the encoder used.
func NewDecoder(lengths []uint8) (*Decoder, error) {
	d := &Decoder{}
	for _, l := range lengths {
		if int(l) > MaxCodeLen {
			return nil, fmt.Errorf("%w: length %d", ErrBadLengths, l)
		}
		d.counts[l]++
	}
	d.counts[0] = 0
	// Validate Kraft sum <= 1.
	left := 1
	for l := 1; l <= MaxCodeLen; l++ {
		left <<= 1
		left -= d.counts[l]
		if left < 0 {
			return nil, fmt.Errorf("%w: over-subscribed", ErrBadLengths)
		}
	}
	var offs [MaxCodeLen + 2]int
	for l := 1; l <= MaxCodeLen; l++ {
		offs[l+1] = offs[l] + d.counts[l]
	}
	d.symbols = make([]int, offs[MaxCodeLen+1])
	idx := offs
	for sym, l := range lengths {
		if l > 0 {
			d.symbols[idx[l]] = sym
			idx[l]++
		}
	}
	return d, nil
}

// Decode consumes one code from r and returns its symbol.
func (d *Decoder) Decode(r *BitReader) (int, error) {
	code, first, index := 0, 0, 0
	for l := 1; l <= MaxCodeLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code |= int(b)
		count := d.counts[l]
		if code-first < count {
			return d.symbols[index+code-first], nil
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return 0, fmt.Errorf("%w: invalid code", ErrBadLengths)
}
