package lz77

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/zipchannel/zipchannel/internal/corpus"
)

// traceRecorder captures the INSERT_STRING stream, the secret-dependent
// access sequence the survey experiment recovers from.
type traceRecorder struct {
	events []traceEvent
}

type traceEvent struct {
	insH uint32
	pos  int
}

func (t *traceRecorder) HeadInsert(insH uint32, pos int) {
	t.events = append(t.events, traceEvent{insH, pos})
}

func matcherCorpora(t *testing.T) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 8192)
	rng.Read(random)
	lower := make([]byte, 8192)
	for i := range lower {
		lower[i] = byte('a' + rng.Intn(26))
	}
	cases := map[string][]byte{
		"empty":      nil,
		"single":     {'z'},
		"tiny":       []byte("aaa"),
		"random":     random,
		"lowercase":  lower,
		"repetitive": bytes.Repeat([]byte("abcdefgh"), 1024),
		"runs":       bytes.Repeat([]byte{0}, 8192),
		"english":    corpus.EnglishText(rand.New(rand.NewSource(11)), 8192),
	}
	for _, f := range corpus.BrotliLike(3) {
		cases["brotli/"+f.Name] = f.Data
	}
	return cases
}

// TestMatcherDifferential proves the optimized matcher is output- and
// trace-identical to the reference matcher on the seed corpora: the
// compressed bytes match exactly, and the HeadInsert gadget stream (the
// head[ins_h] accesses of Fig 2) fires with the same hashes at the same
// positions in the same order, for both greedy and lazy matching.
func TestMatcherDifferential(t *testing.T) {
	for name, data := range matcherCorpora(t) {
		for _, lazy := range []bool{false, true} {
			mode := "greedy"
			if lazy {
				mode = "lazy"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				var refTrace, fastTrace traceRecorder
				ref, err := Compress(data, Options{Lazy: lazy, Tracer: &refTrace, useRefMatcher: true})
				if err != nil {
					t.Fatalf("reference Compress: %v", err)
				}
				fast, err := Compress(data, Options{Lazy: lazy, Tracer: &fastTrace})
				if err != nil {
					t.Fatalf("optimized Compress: %v", err)
				}
				if !bytes.Equal(ref, fast) {
					t.Fatalf("compressed output differs: ref %d bytes, fast %d bytes", len(ref), len(fast))
				}
				if len(refTrace.events) != len(fastTrace.events) {
					t.Fatalf("trace length differs: ref %d, fast %d", len(refTrace.events), len(fastTrace.events))
				}
				for i := range refTrace.events {
					if refTrace.events[i] != fastTrace.events[i] {
						t.Fatalf("trace diverges at event %d: ref %+v, fast %+v",
							i, refTrace.events[i], fastTrace.events[i])
					}
				}
				back, err := Decompress(fast)
				if err != nil {
					t.Fatalf("Decompress: %v", err)
				}
				if !bytes.Equal(back, data) {
					t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(back))
				}
			})
		}
	}
}

// TestMatchLen pins matchLen (the word-at-a-time extension) against the
// byte-at-a-time definition on random windows.
func TestMatchLen(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := make([]byte, 2048)
	rng.Read(src)
	// Plant long self-similarity so extensions of every length occur.
	copy(src[1024:], src[:768])
	for trial := 0; trial < 5000; trial++ {
		pos := 1 + rng.Intn(len(src)-1)
		cand := rng.Intn(pos)
		maxLen := len(src) - pos
		if maxLen > MaxMatch {
			maxLen = MaxMatch
		}
		want := 0
		for want < maxLen && src[cand+want] == src[pos+want] {
			want++
		}
		if got := matchLen(src, cand, pos, maxLen); got != want {
			t.Fatalf("matchLen(cand=%d, pos=%d, max=%d) = %d, want %d", cand, pos, maxLen, got, want)
		}
	}
}

// TestCodeTables pins the O(1) length/distance code lookups against the
// linear-scan definition over their full domains.
func TestCodeTables(t *testing.T) {
	for l := MinMatch; l <= MaxMatch; l++ {
		want := 0
		for i := len(lengthCodes) - 1; i >= 0; i-- {
			if l >= lengthCodes[i].base {
				want = i
				break
			}
		}
		if got := lengthCode(l); got != want {
			t.Fatalf("lengthCode(%d) = %d, want %d", l, got, want)
		}
	}
	for d := 1; d <= WindowSize; d++ {
		want := 0
		for i := len(distCodes) - 1; i >= 0; i-- {
			if d >= distCodes[i].base {
				want = i
				break
			}
		}
		if got := distCode(d); got != want {
			t.Fatalf("distCode(%d) = %d, want %d", d, got, want)
		}
	}
}
