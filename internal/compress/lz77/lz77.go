// Package lz77 implements a DEFLATE-style LZ77 compressor and
// decompressor with the exact hash-head structure the paper analyzes in
// Zlib (§IV-B): repetitions are found through a chained hash table whose
// hash is the 15-bit rolling function of three consecutive input bytes,
//
//	ins_h = ((ins_h << HashShift) ^ window[i+2]) & HashMask,
//
// and every INSERT_STRING updates head[ins_h] — the input-dependent store
// of Listing 1/Fig 2. A Tracer hook exposes those hash values so the
// survey experiment can feed the recovery code with the compressor's real
// access stream.
package lz77

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"github.com/zipchannel/zipchannel/internal/compress/huffcoding"
)

// Hash parameters, matching zlib's deflate with a 15-bit table.
const (
	HashBits  = 15
	HashShift = 5
	HashMask  = (1 << HashBits) - 1
	HashSize  = 1 << HashBits
)

// Matching parameters, matching DEFLATE.
const (
	MinMatch    = 3
	MaxMatch    = 258
	WindowSize  = 32768
	maxChainLen = 256 // how many chain links to follow per match attempt
)

// Tracer observes the compressor's secret-dependent accesses.
type Tracer interface {
	// HeadInsert fires on every head[ins_h] update with the full 15-bit
	// hash; the cache channel exposes ins_h >> 5 of it.
	HeadInsert(insH uint32, pos int)
}

// MatchStats accumulates the matcher's actual work during one Compress
// call: every counter below is incremented by real control flow in the
// hash-chain walk, so a cost model built on top of them inherits the
// same input dependence that makes compression time a side channel
// (Schwarzl et al.) — it is measured work, not a synthetic estimate.
// Counts reflect whichever matcher variant ran (the fast matcher skips
// extensions the reference one performs; selection stays identical).
type MatchStats struct {
	// Inserts is the number of INSERT_STRING executions (head/prev
	// updates) — one per position the matcher visited.
	Inserts int64
	// ChainFollows is the number of hash-chain candidates examined
	// across all match attempts.
	ChainFollows int64
	// MatchCmps is the number of bytes confirmed equal while extending
	// candidates (the matchLen walk).
	MatchCmps int64
	// Tokens is the number of literal + match tokens emitted.
	Tokens int64
	// MatchBytes is the number of input bytes covered by match tokens.
	MatchBytes int64
}

// nil-safe increment helpers so the hot path stays branch-cheap.
func (s *MatchStats) insert() {
	if s != nil {
		s.Inserts++
	}
}

func (s *MatchStats) follow() {
	if s != nil {
		s.ChainFollows++
	}
}

func (s *MatchStats) cmp(n int) {
	if s != nil {
		s.MatchCmps += int64(n)
	}
}

// Options tunes compression.
type Options struct {
	// Lazy enables zlib's deflate_slow lazy matching.
	Lazy bool
	// Tracer, if non-nil, receives gadget events.
	Tracer Tracer
	// Stats, if non-nil, accumulates the matcher's work counters (see
	// MatchStats). Purely additive: enabling it never changes the token
	// stream or output bytes.
	Stats *MatchStats
	// useRefMatcher selects the reference (byte-at-a-time) longest-match
	// scan instead of the optimized one. The two are selection-identical
	// by construction (see bestMatch); the differential test keeps that
	// honest on real corpora. In-package only.
	useRefMatcher bool
}

// Token stream symbols: literals 0-255, EOB 256, then length codes.
const (
	symEOB      = 256
	numLitLen   = 286
	numDistSyms = 30
)

// DEFLATE length code table: code -> (base length, extra bits).
var lengthCodes = [29]struct {
	base  int
	extra uint
}{
	{3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0}, {8, 0}, {9, 0}, {10, 0},
	{11, 1}, {13, 1}, {15, 1}, {17, 1}, {19, 2}, {23, 2}, {27, 2}, {31, 2},
	{35, 3}, {43, 3}, {51, 3}, {59, 3}, {67, 4}, {83, 4}, {99, 4}, {115, 4},
	{131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}

// DEFLATE distance code table: code -> (base distance, extra bits).
var distCodes = [30]struct {
	base  int
	extra uint
}{
	{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 1}, {7, 1}, {9, 2}, {13, 2},
	{17, 3}, {25, 3}, {33, 4}, {49, 4}, {65, 5}, {97, 5}, {129, 6}, {193, 6},
	{257, 7}, {385, 7}, {513, 8}, {769, 8}, {1025, 9}, {1537, 9},
	{2049, 10}, {3073, 10}, {4097, 11}, {6145, 11}, {8193, 12}, {12289, 12},
	{16385, 13}, {24577, 13},
}

// O(1) code lookups, built once from the tables above (zlib keeps the
// same two arrays as _length_code and _dist_code). Lengths index
// directly; distances use a split table — direct for d <= 256, then one
// entry per 128-distance block, which is exact because every distance
// code base above 256 is 1 mod 128.
var (
	lengthCodeTab [MaxMatch + 1]uint8
	distCodeSmall [257]uint8
	distCodeLarge [256]uint8
)

func init() {
	for l := MinMatch; l <= MaxMatch; l++ {
		for i := len(lengthCodes) - 1; i >= 0; i-- {
			if l >= lengthCodes[i].base {
				lengthCodeTab[l] = uint8(i)
				break
			}
		}
	}
	code := func(d int) uint8 {
		for i := len(distCodes) - 1; i >= 0; i-- {
			if d >= distCodes[i].base {
				return uint8(i)
			}
		}
		return 0
	}
	for d := 1; d <= 256; d++ {
		distCodeSmall[d] = code(d)
	}
	for b := 2; b < 256; b++ {
		distCodeLarge[b] = code(b<<7 + 1)
	}
}

func lengthCode(l int) int {
	if l >= MinMatch && l <= MaxMatch {
		return int(lengthCodeTab[l])
	}
	return 0
}

func distCode(d int) int {
	if d <= 0 {
		return 0
	}
	if d <= 256 {
		return int(distCodeSmall[d])
	}
	if b := (d - 1) >> 7; b < 256 {
		return int(distCodeLarge[b])
	}
	return len(distCodes) - 1
}

type token struct {
	lit      byte
	length   int // 0 for literals
	distance int
}

// Compress encodes src. The output format is a self-contained
// DEFLATE-style stream: a header with the two code-length tables, then
// Huffman-coded literal/length and distance symbols with DEFLATE's extra
// bits. (Unlike real DEFLATE there is a single dynamic block and lengths
// are stored flat — documented divergence, see DESIGN.md.)
func Compress(src []byte, opts Options) ([]byte, error) {
	tokens := tokenize(src, opts)
	if s := opts.Stats; s != nil {
		s.Tokens += int64(len(tokens))
		for _, t := range tokens {
			s.MatchBytes += int64(t.length)
		}
	}

	// Frequencies for the two trees.
	litFreq := make([]int64, numLitLen)
	distFreq := make([]int64, numDistSyms)
	for _, t := range tokens {
		if t.length == 0 {
			litFreq[t.lit]++
		} else {
			litFreq[257+lengthCode(t.length)]++
			distFreq[distCode(t.distance)]++
		}
	}
	litFreq[symEOB]++
	hasMatches := false
	for _, f := range distFreq {
		if f > 0 {
			hasMatches = true
			break
		}
	}
	if !hasMatches {
		distFreq[0] = 1 // keep the distance tree valid
	}

	litLens, err := huffcoding.BuildLengths(litFreq, huffcoding.MaxCodeLen)
	if err != nil {
		return nil, fmt.Errorf("lz77: literal tree: %w", err)
	}
	distLens, err := huffcoding.BuildLengths(distFreq, huffcoding.MaxCodeLen)
	if err != nil {
		return nil, fmt.Errorf("lz77: distance tree: %w", err)
	}
	litEnc, err := huffcoding.NewEncoder(litLens)
	if err != nil {
		return nil, err
	}
	distEnc, err := huffcoding.NewEncoder(distLens)
	if err != nil {
		return nil, err
	}

	var w huffcoding.BitWriter
	w.WriteBits(uint32(len(src)), 32)
	for _, l := range litLens {
		w.WriteBits(uint32(l), 4)
	}
	for _, l := range distLens {
		w.WriteBits(uint32(l), 4)
	}
	for _, t := range tokens {
		if t.length == 0 {
			if err := litEnc.Encode(&w, int(t.lit)); err != nil {
				return nil, err
			}
			continue
		}
		lc := lengthCode(t.length)
		if err := litEnc.Encode(&w, 257+lc); err != nil {
			return nil, err
		}
		w.WriteBits(uint32(t.length-lengthCodes[lc].base), lengthCodes[lc].extra)
		dc := distCode(t.distance)
		if err := distEnc.Encode(&w, dc); err != nil {
			return nil, err
		}
		w.WriteBits(uint32(t.distance-distCodes[dc].base), distCodes[dc].extra)
	}
	if err := litEnc.Encode(&w, symEOB); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// tokenize runs the hash-chain matcher, firing the gadget tracer on every
// INSERT_STRING.
func tokenize(src []byte, opts Options) []token {
	var tokens []token
	if len(src) == 0 {
		return tokens
	}

	head := make([]int32, HashSize)
	prev := make([]int32, len(src))
	for i := range head {
		head[i] = -1
	}

	var insH uint32
	if len(src) >= 2 {
		insH = (uint32(src[0])<<HashShift ^ uint32(src[1])) & HashMask
	}
	insert := func(pos int) int32 {
		insH = ((insH << HashShift) ^ uint32(src[pos+2])) & HashMask
		if opts.Tracer != nil {
			opts.Tracer.HeadInsert(insH, pos)
		}
		opts.Stats.insert()
		h := head[insH]
		prev[pos] = h
		head[insH] = int32(pos)
		return h
	}

	bestMatch := bestMatchFast
	if opts.useRefMatcher {
		bestMatch = bestMatchRef
	}

	pos := 0
	prevLen, prevDist := 0, 0
	havePrev := false
	for pos < len(src) {
		var length, dist int
		if pos+MinMatch <= len(src) && pos+2 < len(src) {
			chain := insert(pos)
			length, dist = bestMatch(src, prev, pos, chain, opts.Stats)
		}
		if !opts.Lazy {
			if length >= MinMatch {
				tokens = append(tokens, token{length: length, distance: dist})
				// Insert the skipped positions to keep chains fresh.
				for k := pos + 1; k < pos+length && k+2 < len(src); k++ {
					insert(k)
				}
				pos += length
			} else {
				tokens = append(tokens, token{lit: src[pos]})
				pos++
			}
			continue
		}
		// deflate_slow: defer emitting a match by one byte to see if the
		// next position matches longer.
		if havePrev {
			if length > prevLen {
				// Previous position becomes a literal; current match is
				// kept pending.
				tokens = append(tokens, token{lit: src[pos-1]})
				prevLen, prevDist = length, dist
				pos++
				continue
			}
			tokens = append(tokens, token{length: prevLen, distance: prevDist})
			for k := pos + 1; k < pos-1+prevLen && k+2 < len(src); k++ {
				insert(k)
			}
			pos = pos - 1 + prevLen
			havePrev = false
			continue
		}
		if length >= MinMatch {
			prevLen, prevDist = length, dist
			havePrev = true
			pos++
			continue
		}
		tokens = append(tokens, token{lit: src[pos]})
		pos++
	}
	if havePrev {
		tokens = append(tokens, token{length: prevLen, distance: prevDist})
	}
	return tokens
}

// bestMatchRef is the reference longest-match scan: walk the hash chain
// newest to oldest, extend each candidate byte by byte, keep the first
// candidate that achieves each strictly greater length. Retained for the
// differential test (Options.useRefMatcher).
func bestMatchRef(src []byte, prev []int32, pos int, chain int32, stats *MatchStats) (length, dist int) {
	limit := pos - WindowSize
	maxLen := len(src) - pos
	if maxLen > MaxMatch {
		maxLen = MaxMatch
	}
	if maxLen < MinMatch {
		return 0, 0
	}
	for tries := 0; chain >= 0 && int(chain) > limit && tries < maxChainLen; tries++ {
		cand := int(chain)
		stats.follow()
		l := 0
		for l < maxLen && src[cand+l] == src[pos+l] {
			l++
		}
		stats.cmp(l)
		if l > length {
			length, dist = l, pos-cand
			if l == maxLen {
				break
			}
		}
		chain = prev[cand]
	}
	if length < MinMatch {
		return 0, 0
	}
	return length, dist
}

// bestMatchFast is selection-identical to bestMatchRef but cheaper per
// candidate, borrowing zlib's longest_match structure:
//
//   - scan-end rejection: a candidate can only beat the current best
//     length L by matching at least L+1 bytes, which requires
//     src[cand+L] == src[pos+L]; when that byte differs the candidate is
//     skipped without extending. Skipped candidates would have produced
//     l <= L in the reference scan and therefore never update (length,
//     dist), so the surviving winner — first strictly-longer candidate in
//     chain order — is unchanged.
//   - word-at-a-time extension: the match is extended 8 bytes per
//     comparison with an XOR + trailing-zero count, falling back to the
//     byte loop near the buffer end. The computed l is exactly the
//     reference scan's l.
//
// The chain walk itself (start, order, try budget, window limit, early
// break at maxLen) is byte-for-byte the reference loop, so both variants
// also touch prev[] identically.
func bestMatchFast(src []byte, prev []int32, pos int, chain int32, stats *MatchStats) (length, dist int) {
	limit := pos - WindowSize
	maxLen := len(src) - pos
	if maxLen > MaxMatch {
		maxLen = MaxMatch
	}
	if maxLen < MinMatch {
		return 0, 0
	}
	for tries := 0; chain >= 0 && int(chain) > limit && tries < maxChainLen; tries++ {
		cand := int(chain)
		stats.follow()
		// Scan-end rejection. length < maxLen here (a best of maxLen breaks
		// out below), so pos+length is in bounds.
		if length > 0 && src[cand+length] != src[pos+length] {
			chain = prev[cand]
			continue
		}
		l := matchLen(src, cand, pos, maxLen)
		stats.cmp(l)
		if l > length {
			length, dist = l, pos-cand
			if l == maxLen {
				break
			}
		}
		chain = prev[cand]
	}
	if length < MinMatch {
		return 0, 0
	}
	return length, dist
}

// matchLen returns the length of the common prefix of src[cand:] and
// src[pos:], capped at maxLen, comparing 8 bytes at a time while both
// windows allow it.
func matchLen(src []byte, cand, pos, maxLen int) int {
	l := 0
	for l+8 <= maxLen && pos+l+8 <= len(src) {
		x := binary.LittleEndian.Uint64(src[cand+l:]) ^ binary.LittleEndian.Uint64(src[pos+l:])
		if x != 0 {
			return l + bits.TrailingZeros64(x)>>3
		}
		l += 8
	}
	for l < maxLen && src[cand+l] == src[pos+l] {
		l++
	}
	return l
}

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("lz77: corrupt stream")

// maxPrealloc bounds how much output buffer the decoder reserves on the
// word of the stream's (attacker-controlled) size header alone.
const maxPrealloc = 1 << 20

// Decompress inverts Compress.
func Decompress(data []byte) ([]byte, error) {
	r := huffcoding.NewBitReader(data)
	size, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	litLens := make([]uint8, numLitLen)
	for i := range litLens {
		v, err := r.ReadBits(4)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		litLens[i] = uint8(v)
	}
	distLens := make([]uint8, numDistSyms)
	for i := range distLens {
		v, err := r.ReadBits(4)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		distLens[i] = uint8(v)
	}
	litDec, err := huffcoding.NewDecoder(litLens)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	distDec, err := huffcoding.NewDecoder(distLens)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	// size is untrusted header data: clamp the pre-allocation so a
	// corrupted stream cannot demand gigabytes up front. The appends
	// below grow as needed and the EOB size check still enforces the
	// exact length, so valid streams are unaffected.
	capHint := int64(size)
	if capHint > maxPrealloc {
		capHint = maxPrealloc
	}
	out := make([]byte, 0, capHint)
	for {
		sym, err := litDec.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		switch {
		case sym < 256:
			out = append(out, byte(sym))
		case sym == symEOB:
			if uint32(len(out)) != size {
				return nil, fmt.Errorf("%w: size mismatch: %d != %d", ErrCorrupt, len(out), size)
			}
			return out, nil
		default:
			lc := sym - 257
			if lc >= len(lengthCodes) {
				return nil, fmt.Errorf("%w: bad length code %d", ErrCorrupt, lc)
			}
			extra, err := r.ReadBits(lengthCodes[lc].extra)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			length := lengthCodes[lc].base + int(extra)
			dc, err := distDec.Decode(r)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if dc >= len(distCodes) {
				return nil, fmt.Errorf("%w: bad distance code %d", ErrCorrupt, dc)
			}
			dextra, err := r.ReadBits(distCodes[dc].extra)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			dist := distCodes[dc].base + int(dextra)
			if dist > len(out) {
				return nil, fmt.Errorf("%w: distance %d beyond output %d", ErrCorrupt, dist, len(out))
			}
			for i := 0; i < length; i++ {
				out = append(out, out[len(out)-dist])
			}
		}
	}
}
