// Package lz77 implements a DEFLATE-style LZ77 compressor and
// decompressor with the exact hash-head structure the paper analyzes in
// Zlib (§IV-B): repetitions are found through a chained hash table whose
// hash is the 15-bit rolling function of three consecutive input bytes,
//
//	ins_h = ((ins_h << HashShift) ^ window[i+2]) & HashMask,
//
// and every INSERT_STRING updates head[ins_h] — the input-dependent store
// of Listing 1/Fig 2. A Tracer hook exposes those hash values so the
// survey experiment can feed the recovery code with the compressor's real
// access stream.
package lz77

import (
	"errors"
	"fmt"

	"github.com/zipchannel/zipchannel/internal/compress/huffcoding"
)

// Hash parameters, matching zlib's deflate with a 15-bit table.
const (
	HashBits  = 15
	HashShift = 5
	HashMask  = (1 << HashBits) - 1
	HashSize  = 1 << HashBits
)

// Matching parameters, matching DEFLATE.
const (
	MinMatch    = 3
	MaxMatch    = 258
	WindowSize  = 32768
	maxChainLen = 256 // how many chain links to follow per match attempt
)

// Tracer observes the compressor's secret-dependent accesses.
type Tracer interface {
	// HeadInsert fires on every head[ins_h] update with the full 15-bit
	// hash; the cache channel exposes ins_h >> 5 of it.
	HeadInsert(insH uint32, pos int)
}

// Options tunes compression.
type Options struct {
	// Lazy enables zlib's deflate_slow lazy matching.
	Lazy bool
	// Tracer, if non-nil, receives gadget events.
	Tracer Tracer
}

// Token stream symbols: literals 0-255, EOB 256, then length codes.
const (
	symEOB      = 256
	numLitLen   = 286
	numDistSyms = 30
)

// DEFLATE length code table: code -> (base length, extra bits).
var lengthCodes = [29]struct {
	base  int
	extra uint
}{
	{3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0}, {8, 0}, {9, 0}, {10, 0},
	{11, 1}, {13, 1}, {15, 1}, {17, 1}, {19, 2}, {23, 2}, {27, 2}, {31, 2},
	{35, 3}, {43, 3}, {51, 3}, {59, 3}, {67, 4}, {83, 4}, {99, 4}, {115, 4},
	{131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}

// DEFLATE distance code table: code -> (base distance, extra bits).
var distCodes = [30]struct {
	base  int
	extra uint
}{
	{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 1}, {7, 1}, {9, 2}, {13, 2},
	{17, 3}, {25, 3}, {33, 4}, {49, 4}, {65, 5}, {97, 5}, {129, 6}, {193, 6},
	{257, 7}, {385, 7}, {513, 8}, {769, 8}, {1025, 9}, {1537, 9},
	{2049, 10}, {3073, 10}, {4097, 11}, {6145, 11}, {8193, 12}, {12289, 12},
	{16385, 13}, {24577, 13},
}

func lengthCode(l int) int {
	for i := len(lengthCodes) - 1; i >= 0; i-- {
		if l >= lengthCodes[i].base {
			return i
		}
	}
	return 0
}

func distCode(d int) int {
	for i := len(distCodes) - 1; i >= 0; i-- {
		if d >= distCodes[i].base {
			return i
		}
	}
	return 0
}

type token struct {
	lit      byte
	length   int // 0 for literals
	distance int
}

// Compress encodes src. The output format is a self-contained
// DEFLATE-style stream: a header with the two code-length tables, then
// Huffman-coded literal/length and distance symbols with DEFLATE's extra
// bits. (Unlike real DEFLATE there is a single dynamic block and lengths
// are stored flat — documented divergence, see DESIGN.md.)
func Compress(src []byte, opts Options) ([]byte, error) {
	tokens := tokenize(src, opts)

	// Frequencies for the two trees.
	litFreq := make([]int64, numLitLen)
	distFreq := make([]int64, numDistSyms)
	for _, t := range tokens {
		if t.length == 0 {
			litFreq[t.lit]++
		} else {
			litFreq[257+lengthCode(t.length)]++
			distFreq[distCode(t.distance)]++
		}
	}
	litFreq[symEOB]++
	hasMatches := false
	for _, f := range distFreq {
		if f > 0 {
			hasMatches = true
			break
		}
	}
	if !hasMatches {
		distFreq[0] = 1 // keep the distance tree valid
	}

	litLens, err := huffcoding.BuildLengths(litFreq, huffcoding.MaxCodeLen)
	if err != nil {
		return nil, fmt.Errorf("lz77: literal tree: %w", err)
	}
	distLens, err := huffcoding.BuildLengths(distFreq, huffcoding.MaxCodeLen)
	if err != nil {
		return nil, fmt.Errorf("lz77: distance tree: %w", err)
	}
	litEnc, err := huffcoding.NewEncoder(litLens)
	if err != nil {
		return nil, err
	}
	distEnc, err := huffcoding.NewEncoder(distLens)
	if err != nil {
		return nil, err
	}

	var w huffcoding.BitWriter
	w.WriteBits(uint32(len(src)), 32)
	for _, l := range litLens {
		w.WriteBits(uint32(l), 4)
	}
	for _, l := range distLens {
		w.WriteBits(uint32(l), 4)
	}
	for _, t := range tokens {
		if t.length == 0 {
			if err := litEnc.Encode(&w, int(t.lit)); err != nil {
				return nil, err
			}
			continue
		}
		lc := lengthCode(t.length)
		if err := litEnc.Encode(&w, 257+lc); err != nil {
			return nil, err
		}
		w.WriteBits(uint32(t.length-lengthCodes[lc].base), lengthCodes[lc].extra)
		dc := distCode(t.distance)
		if err := distEnc.Encode(&w, dc); err != nil {
			return nil, err
		}
		w.WriteBits(uint32(t.distance-distCodes[dc].base), distCodes[dc].extra)
	}
	if err := litEnc.Encode(&w, symEOB); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// tokenize runs the hash-chain matcher, firing the gadget tracer on every
// INSERT_STRING.
func tokenize(src []byte, opts Options) []token {
	var tokens []token
	if len(src) == 0 {
		return tokens
	}

	head := make([]int32, HashSize)
	prev := make([]int32, len(src))
	for i := range head {
		head[i] = -1
	}

	var insH uint32
	if len(src) >= 2 {
		insH = (uint32(src[0])<<HashShift ^ uint32(src[1])) & HashMask
	}
	insert := func(pos int) int32 {
		insH = ((insH << HashShift) ^ uint32(src[pos+2])) & HashMask
		if opts.Tracer != nil {
			opts.Tracer.HeadInsert(insH, pos)
		}
		h := head[insH]
		prev[pos] = h
		head[insH] = int32(pos)
		return h
	}

	bestMatch := func(pos int, chain int32) (length, dist int) {
		limit := pos - WindowSize
		maxLen := len(src) - pos
		if maxLen > MaxMatch {
			maxLen = MaxMatch
		}
		if maxLen < MinMatch {
			return 0, 0
		}
		for tries := 0; chain >= 0 && int(chain) > limit && tries < maxChainLen; tries++ {
			cand := int(chain)
			l := 0
			for l < maxLen && src[cand+l] == src[pos+l] {
				l++
			}
			if l > length {
				length, dist = l, pos-cand
				if l == maxLen {
					break
				}
			}
			chain = prev[cand]
		}
		if length < MinMatch {
			return 0, 0
		}
		return length, dist
	}

	pos := 0
	prevLen, prevDist := 0, 0
	havePrev := false
	for pos < len(src) {
		var length, dist int
		if pos+MinMatch <= len(src) && pos+2 < len(src) {
			chain := insert(pos)
			length, dist = bestMatch(pos, chain)
		}
		if !opts.Lazy {
			if length >= MinMatch {
				tokens = append(tokens, token{length: length, distance: dist})
				// Insert the skipped positions to keep chains fresh.
				for k := pos + 1; k < pos+length && k+2 < len(src); k++ {
					insert(k)
				}
				pos += length
			} else {
				tokens = append(tokens, token{lit: src[pos]})
				pos++
			}
			continue
		}
		// deflate_slow: defer emitting a match by one byte to see if the
		// next position matches longer.
		if havePrev {
			if length > prevLen {
				// Previous position becomes a literal; current match is
				// kept pending.
				tokens = append(tokens, token{lit: src[pos-1]})
				prevLen, prevDist = length, dist
				pos++
				continue
			}
			tokens = append(tokens, token{length: prevLen, distance: prevDist})
			for k := pos + 1; k < pos-1+prevLen && k+2 < len(src); k++ {
				insert(k)
			}
			pos = pos - 1 + prevLen
			havePrev = false
			continue
		}
		if length >= MinMatch {
			prevLen, prevDist = length, dist
			havePrev = true
			pos++
			continue
		}
		tokens = append(tokens, token{lit: src[pos]})
		pos++
	}
	if havePrev {
		tokens = append(tokens, token{length: prevLen, distance: prevDist})
	}
	return tokens
}

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("lz77: corrupt stream")

// Decompress inverts Compress.
func Decompress(data []byte) ([]byte, error) {
	r := huffcoding.NewBitReader(data)
	size, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	litLens := make([]uint8, numLitLen)
	for i := range litLens {
		v, err := r.ReadBits(4)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		litLens[i] = uint8(v)
	}
	distLens := make([]uint8, numDistSyms)
	for i := range distLens {
		v, err := r.ReadBits(4)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		distLens[i] = uint8(v)
	}
	litDec, err := huffcoding.NewDecoder(litLens)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	distDec, err := huffcoding.NewDecoder(distLens)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	out := make([]byte, 0, size)
	for {
		sym, err := litDec.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		switch {
		case sym < 256:
			out = append(out, byte(sym))
		case sym == symEOB:
			if uint32(len(out)) != size {
				return nil, fmt.Errorf("%w: size mismatch: %d != %d", ErrCorrupt, len(out), size)
			}
			return out, nil
		default:
			lc := sym - 257
			if lc >= len(lengthCodes) {
				return nil, fmt.Errorf("%w: bad length code %d", ErrCorrupt, lc)
			}
			extra, err := r.ReadBits(lengthCodes[lc].extra)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			length := lengthCodes[lc].base + int(extra)
			dc, err := distDec.Decode(r)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if dc >= len(distCodes) {
				return nil, fmt.Errorf("%w: bad distance code %d", ErrCorrupt, dc)
			}
			dextra, err := r.ReadBits(distCodes[dc].extra)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			dist := distCodes[dc].base + int(dextra)
			if dist > len(out) {
				return nil, fmt.Errorf("%w: distance %d beyond output %d", ErrCorrupt, dist, len(out))
			}
			for i := 0; i < length; i++ {
				out = append(out, out[len(out)-dist])
			}
		}
	}
}
