package lz77

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/zipchannel/zipchannel/internal/recovery"
)

func roundTrip(t *testing.T, src []byte, opts Options) []byte {
	t.Helper()
	comp, err := Compress(src, opts)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(back), len(src))
	}
	return comp
}

func TestRoundTripBasic(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"one":       {42},
		"two":       []byte("ab"),
		"repeat":    bytes.Repeat([]byte("abc"), 1000),
		"text":      []byte("the quick brown fox jumps over the lazy dog, the quick brown fox again"),
		"zeros":     make([]byte, 5000),
		"alternate": bytes.Repeat([]byte{0, 255}, 2000),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			roundTrip(t, src, Options{})
			roundTrip(t, src, Options{Lazy: true})
		})
	}
}

func TestRoundTripRandom(t *testing.T) {
	prop := func(seed int64, lazy bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8192)
		src := make([]byte, n)
		// Mix of random and repetitive sections.
		for i := 0; i < n; {
			if rng.Intn(2) == 0 {
				run := min(rng.Intn(300)+1, n-i)
				b := byte(rng.Intn(256))
				for j := 0; j < run; j++ {
					src[i+j] = b
				}
				i += run
			} else {
				src[i] = byte(rng.Intn(256))
				i++
			}
		}
		comp, err := Compress(src, Options{Lazy: lazy})
		if err != nil {
			return false
		}
		back, err := Decompress(comp)
		return err == nil && bytes.Equal(back, src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	src := []byte(strings.Repeat("compression leaks through caches. ", 500))
	comp := roundTrip(t, src, Options{Lazy: true})
	if len(comp) >= len(src)/3 {
		t.Errorf("repetitive text compressed to %d/%d bytes; expected < 1/3", len(comp), len(src))
	}
}

func TestLazyMatchingNoWorse(t *testing.T) {
	src := []byte(strings.Repeat("abcde abcdef abcdefg ", 300))
	greedy, _ := Compress(src, Options{})
	lazy, _ := Compress(src, Options{Lazy: true})
	if len(lazy) > len(greedy)+16 {
		t.Errorf("lazy (%d) much worse than greedy (%d)", len(lazy), len(greedy))
	}
}

// traceCollector records the gadget's hash stream.
type traceCollector struct {
	hashes []uint32
	pos    []int
}

func (tc *traceCollector) HeadInsert(h uint32, pos int) {
	tc.hashes = append(tc.hashes, h)
	tc.pos = append(tc.pos, pos)
}

// The compressor's own INSERT_STRING stream must match the reference
// rolling hash — the bridge between the real compressor and the recovery
// model (E4's survey).
func TestTracerMatchesReferenceHash(t *testing.T) {
	src := []byte("taint tracking finds the gadget in the hash head table")
	var tc traceCollector
	if _, err := Compress(src, Options{Tracer: &tc}); err != nil {
		t.Fatal(err)
	}
	// Reference: h after inserting position p covers src[p..p+2].
	h := (uint32(src[0])<<HashShift ^ uint32(src[1])) & HashMask
	ref := map[int]uint32{}
	for p := 0; p+2 < len(src); p++ {
		h = ((h << HashShift) ^ uint32(src[p+2])) & HashMask
		ref[p] = h
	}
	if len(tc.hashes) == 0 {
		t.Fatal("tracer saw no inserts")
	}
	for k, p := range tc.pos {
		want, ok := ref[p]
		if !ok {
			t.Fatalf("insert at unexpected position %d", p)
		}
		if tc.hashes[k] != want {
			t.Errorf("insert %d (pos %d): hash %#x, want %#x", k, p, tc.hashes[k], want)
		}
	}
}

// End-to-end leak check (E4, zlib row): feed the real compressor's hash
// trace through the recovery code.
func TestSurveyRecoveryFromCompressorTrace(t *testing.T) {
	src := []byte("thisisalonglowercasestringwithoutspacesthatkeepsgoingandgoing")
	var tc traceCollector
	if _, err := Compress(src, Options{Tracer: &tc}); err != nil {
		t.Fatal(err)
	}
	// Sequential inserts: positions 0..n-3 in order (greedy inserts
	// skipped positions too, so every position up to n-3 appears).
	obs := make([]uint16, 0, len(tc.hashes))
	seen := map[int]bool{}
	for k, p := range tc.pos {
		if !seen[p] {
			seen[p] = true
			obs = append(obs, uint16(tc.hashes[k]>>5))
		}
	}
	rec := recovery.RecoverZlib(obs, len(src), 0x60, true)
	frac := recovery.ZlibLeakFraction(rec, src)
	if frac < 0.9 {
		t.Errorf("leak fraction from real compressor trace = %.3f, want >= 0.9", frac)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	comp, err := Compress([]byte("hello hello hello"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)/2] },
		func(b []byte) []byte { return nil },
		func(b []byte) []byte { b[4] ^= 0xff; return b },
	} {
		c := append([]byte(nil), comp...)
		if _, err := Decompress(mutate(c)); err == nil {
			t.Error("corrupt stream should not decompress cleanly")
		}
	}
}

func TestMatchAtWindowBoundary(t *testing.T) {
	// A repetition just within and just beyond the 32K window.
	src := make([]byte, WindowSize+600)
	copy(src, []byte("unique-prefix-0123456789"))
	copy(src[WindowSize+300:], []byte("unique-prefix-0123456789"))
	roundTrip(t, src, Options{Lazy: true})
}
