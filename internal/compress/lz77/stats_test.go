package lz77

import (
	"bytes"
	"testing"
)

// TestMatchStatsAdditive pins the two properties the pagestore cost
// model depends on: enabling Stats never changes the output bytes, and
// the counters reflect real matcher work (non-zero on compressible
// input, tokens bounded by input length).
func TestMatchStatsAdditive(t *testing.T) {
	src := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 40)
	plain, err := Compress(src, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	var st MatchStats
	counted, err := Compress(src, Options{Lazy: true, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, counted) {
		t.Fatal("enabling Stats changed the output bytes")
	}
	if st.Inserts == 0 || st.ChainFollows == 0 || st.MatchCmps == 0 || st.Tokens == 0 || st.MatchBytes == 0 {
		t.Fatalf("expected all counters non-zero on repetitive input, got %+v", st)
	}
	if st.Tokens > int64(len(src)) {
		t.Fatalf("tokens %d exceeds input length %d", st.Tokens, len(src))
	}
	if st.MatchBytes > int64(len(src)) {
		t.Fatalf("match bytes %d exceeds input length %d", st.MatchBytes, len(src))
	}
	if st.Inserts > int64(len(src)) {
		t.Fatalf("inserts %d exceeds input length %d", st.Inserts, len(src))
	}
}

// TestMatchStatsAccumulates checks a reused MatchStats keeps summing
// across calls (the pagestore accumulates one struct per store op).
func TestMatchStatsAccumulates(t *testing.T) {
	src := bytes.Repeat([]byte("abcabcabc"), 30)
	var once MatchStats
	if _, err := Compress(src, Options{Lazy: true, Stats: &once}); err != nil {
		t.Fatal(err)
	}
	var twice MatchStats
	for i := 0; i < 2; i++ {
		if _, err := Compress(src, Options{Lazy: true, Stats: &twice}); err != nil {
			t.Fatal(err)
		}
	}
	if twice.Inserts != 2*once.Inserts || twice.Tokens != 2*once.Tokens {
		t.Fatalf("stats did not accumulate: once=%+v twice=%+v", once, twice)
	}
}
