package lz77

import (
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"testing"
)

// TestDifferentialFlate cross-checks our DEFLATE-style compressor
// against the standard library's on the same inputs. The two emit
// different container formats (we use a single dynamic block with flat
// code lengths), so the comparison is behavioural, not bitwise: both
// must round-trip exactly, and our compressed sizes must track
// stdlib's within a sanity band — catching both "matches never found"
// regressions (output balloons toward raw size on redundant input) and
// "phantom matches" ones (output implausibly beats flate on random
// input).
func TestDifferentialFlate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 4096)
	rng.Read(random)
	lower := make([]byte, 4096)
	for i := range lower {
		lower[i] = byte('a' + rng.Intn(26))
	}
	sentence := []byte("the compression oracle leaks one histogram line per input byte; ")

	// Our container always ships a full flat code-length table; measure
	// that fixed overhead off the empty input so the size band below
	// compares payload against payload.
	hdr, err := Compress(nil, Options{})
	if err != nil {
		t.Fatalf("Compress(nil): %v", err)
	}
	overhead := len(hdr)

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"single", []byte{'x'}},
		{"random", random},
		{"lowercase", lower},
		{"repetitive", bytes.Repeat([]byte("abcdefgh"), 512)},
		{"text", bytes.Repeat(sentence, 60)},
		{"runs", bytes.Repeat([]byte{0}, 4096)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ours, err := Compress(tc.data, Options{Lazy: true})
			if err != nil {
				t.Fatalf("Compress: %v", err)
			}
			back, err := Decompress(ours)
			if err != nil {
				t.Fatalf("Decompress: %v", err)
			}
			if !bytes.Equal(back, tc.data) {
				t.Fatalf("our round trip mismatch: %d bytes in, %d out", len(tc.data), len(back))
			}

			var fbuf bytes.Buffer
			fw, err := flate.NewWriter(&fbuf, flate.DefaultCompression)
			if err != nil {
				t.Fatalf("flate.NewWriter: %v", err)
			}
			if _, err := fw.Write(tc.data); err != nil {
				t.Fatalf("flate write: %v", err)
			}
			if err := fw.Close(); err != nil {
				t.Fatalf("flate close: %v", err)
			}
			fr := flate.NewReader(bytes.NewReader(fbuf.Bytes()))
			fback, err := io.ReadAll(fr)
			if err != nil {
				t.Fatalf("flate read: %v", err)
			}
			if !bytes.Equal(fback, tc.data) {
				t.Fatalf("flate round trip mismatch: %d bytes in, %d out", len(tc.data), len(fback))
			}

			// Size sanity: flat code lengths cost us entropy-coding
			// efficiency but never match-finding ability, so stay within
			// 2x of flate plus small-input overhead — and never beat
			// flate by more than the same band (that would mean we
			// "compressed" something flate's bit-exact matcher could not,
			// i.e. a corrupt token stream the decoder happens to accept).
			oursN, flateN := len(ours)-overhead, fbuf.Len()
			if oursN > 2*flateN+64 {
				t.Errorf("our payload %d bytes vs flate %d: more than 2x+64 worse", oursN, flateN)
			}
			if flateN > 2*oursN+64 {
				t.Errorf("our payload %d bytes vs flate %d: implausibly better than flate", oursN, flateN)
			}
			if len(tc.data) >= 4096 && tc.name == "repetitive" && len(ours) >= len(tc.data)/3 {
				t.Errorf("repetitive input compressed to %d/%d: match finder regressed", len(ours), len(tc.data))
			}
		})
	}
}
