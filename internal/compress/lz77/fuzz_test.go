package lz77

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip asserts Decompress(Compress(x)) == x for arbitrary
// inputs, in both greedy and lazy matching modes. The leak tracer is
// observe-only, so a round-trip failure here is a codec bug, not a
// side-channel artifact.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add([]byte("abcabcabcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 300))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			data = data[:64<<10]
		}
		for _, lazy := range []bool{false, true} {
			comp, err := Compress(data, Options{Lazy: lazy})
			if err != nil {
				t.Fatalf("Compress(lazy=%v, %d bytes): %v", lazy, len(data), err)
			}
			got, err := Decompress(comp)
			if err != nil {
				t.Fatalf("Decompress(lazy=%v, %d bytes): %v", lazy, len(data), err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip mismatch (lazy=%v): %d bytes in, %d out", lazy, len(data), len(got))
			}
		}
	})
}
