// Package lzw implements an ncompress-style LZW compressor and
// decompressor with the exact hash-probe structure the paper analyzes
// (§IV-C, Listing 2): each consumed input byte probes
//
//	hp = (c << 9) ^ ent
//
// in an open-addressed hash table, leaking hp (minus the cache line's low
// bits) through the cache channel. The Replayer type re-derives the
// compressor's deterministic ent sequence from recovered plaintext, which
// is what makes full input recovery possible.
package lzw

import (
	"errors"
	"fmt"

	"github.com/zipchannel/zipchannel/internal/compress/huffcoding"
)

// Dictionary geometry, following ncompress with the paper's 9-bit probe
// shift.
const (
	ProbeShift = 9
	MaxBits    = 16
	MaxCodes   = 1 << MaxBits
	firstFree  = 257 // 0-255 literals, 256 = CLEAR
	clearCode  = 256
	initWidth  = 9
	// HTabSize covers hp = (c<<9)^ent for 8-bit c and 16-bit ent.
	HTabSize = 1 << 17
)

// Tracer observes the compressor's secret-dependent hash probes.
type Tracer interface {
	// Probe fires for each hash-table probe with the full hp value;
	// primary marks the first probe for the current input byte (the
	// Listing 2 access recovery relies on).
	Probe(hp uint64, primary bool)
}

// dict is the shared compressor state: Compress and Replayer step it
// identically, so the recovery replay cannot diverge from the encoder.
type dict struct {
	htab    []int64 // stored fcode, -1 = free
	codetab []uint16
	ent     uint32
	next    int
	started bool
	tracer  Tracer
}

func newDict(tracer Tracer) *dict {
	d := &dict{
		htab:    make([]int64, HTabSize),
		codetab: make([]uint16, HTabSize),
		next:    firstFree,
		tracer:  tracer,
	}
	for i := range d.htab {
		d.htab[i] = -1
	}
	return d
}

func (d *dict) reset() {
	for i := range d.htab {
		d.htab[i] = -1
	}
	d.next = firstFree
}

// step consumes one input byte. It returns (emit, code, full): when emit
// is true the compressor outputs code before switching to the new string;
// full reports that the code space just filled (caller emits CLEAR and
// resets).
func (d *dict) step(c byte) (emit bool, code uint16, full bool) {
	if !d.started {
		d.started = true
		d.ent = uint32(c)
		return false, 0, false
	}
	fcode := int64(d.ent)<<8 | int64(c)
	hp := (uint64(c) << ProbeShift) ^ uint64(d.ent)
	if d.tracer != nil {
		d.tracer.Probe(hp, true)
	}
	if d.htab[hp] == fcode {
		d.ent = uint32(d.codetab[hp])
		return false, 0, false
	}
	if d.htab[hp] >= 0 {
		// Secondary probing, ncompress style. ncompress relies on a prime
		// HSIZE so that any displacement cycles through the whole table;
		// with our power-of-two table the displacement must be odd for
		// the same guarantee (an even stride over 2^17 slots visits only
		// a subgroup and can spin forever once that subgroup fills).
		disp := ((uint64(HTabSize) - hp) % HTabSize) | 1
		for {
			if hp < disp {
				hp += HTabSize
			}
			hp -= disp
			if d.tracer != nil {
				d.tracer.Probe(hp, false)
			}
			if d.htab[hp] == fcode {
				d.ent = uint32(d.codetab[hp])
				return false, 0, false
			}
			if d.htab[hp] < 0 {
				break
			}
		}
	}
	// Free slot: output the current string's code, insert, restart at c.
	code = uint16(d.ent)
	if d.next < MaxCodes {
		d.htab[hp] = fcode
		d.codetab[hp] = uint16(d.next)
		d.next++
	}
	full = d.next >= MaxCodes
	d.ent = uint32(c)
	return true, code, full
}

// Compress encodes src: a 4-byte length header, then variable-width
// (9..16 bit) codes, with CLEAR emitted when the code space fills.
func Compress(src []byte, tracer Tracer) ([]byte, error) {
	var w huffcoding.BitWriter
	w.WriteBits(uint32(len(src)), 32)
	d := newDict(tracer)
	width := uint(initWidth)

	emit := func(code uint16) {
		// Width grows when the next code to be assigned no longer fits;
		// the decoder mirrors this one entry earlier (it lags one insert).
		w.WriteBits(uint32(code), width)
	}
	for _, c := range src {
		doEmit, code, full := d.step(c)
		if doEmit {
			emit(code)
			if full {
				emit(clearCode)
				d.reset()
				width = initWidth
			} else if d.next > (1 << width) {
				width++
			}
		}
	}
	if d.started {
		emit(uint16(d.ent))
	}
	return w.Bytes(), nil
}

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("lzw: corrupt stream")

// maxPrealloc bounds how much output buffer the decoder reserves on the
// word of the stream's (attacker-controlled) size header alone.
const maxPrealloc = 1 << 20

// Decompress inverts Compress.
func Decompress(data []byte) ([]byte, error) {
	r := huffcoding.NewBitReader(data)
	size, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// size is untrusted header data: clamp the pre-allocation so a
	// corrupted stream cannot demand gigabytes up front (the decode
	// loop appends and re-checks the exact size at the end).
	capHint := int64(size)
	if capHint > maxPrealloc {
		capHint = maxPrealloc
	}
	out := make([]byte, 0, capHint)
	if size == 0 {
		return out, nil
	}

	prefix := make([]uint16, MaxCodes)
	suffix := make([]byte, MaxCodes)
	next := firstFree
	width := uint(initWidth)

	expand := func(code int) ([]byte, error) {
		var stack []byte
		for code >= 256 {
			if code >= next {
				return nil, fmt.Errorf("%w: code %d >= next %d", ErrCorrupt, code, next)
			}
			stack = append(stack, suffix[code])
			code = int(prefix[code])
		}
		stack = append(stack, byte(code))
		// Reverse.
		for i, j := 0, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
		return stack, nil
	}

	readCode := func() (int, error) {
		v, err := r.ReadBits(width)
		return int(v), err
	}

	prevCode := -1
	var prevStr []byte
	for uint32(len(out)) < size {
		code, err := readCode()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if code == clearCode {
			next = firstFree
			width = initWidth
			prevCode = -1
			continue
		}
		var str []byte
		switch {
		case prevCode < 0:
			if code > 255 {
				return nil, fmt.Errorf("%w: first code %d not a literal", ErrCorrupt, code)
			}
			str = []byte{byte(code)}
		case code < next:
			str, err = expand(code)
			if err != nil {
				return nil, err
			}
		case code == next:
			// KwKwK: the code being defined right now.
			str = append(append([]byte{}, prevStr...), prevStr[0])
		default:
			return nil, fmt.Errorf("%w: code %d ahead of dictionary (%d)", ErrCorrupt, code, next)
		}
		out = append(out, str...)
		if prevCode >= 0 && next < MaxCodes {
			prefix[next] = uint16(prevCode)
			suffix[next] = str[0]
			next++
			// Mirror the encoder's width growth: the encoder is one
			// insert ahead of the decoder at each code boundary.
			if next+1 > (1<<width) && width < MaxBits {
				width++
			}
		}
		prevCode = code
		prevStr = str
	}
	if uint32(len(out)) != size {
		return nil, fmt.Errorf("%w: size mismatch %d != %d", ErrCorrupt, len(out), size)
	}
	return out, nil
}

// Replayer reproduces the compressor's ent sequence from plaintext: the
// recovery.EntReplayer for this implementation (§IV-C's "knowledge of all
// previous input bytes allows the attacker to compute all dictionary
// entries in the same manner as the compressor").
type Replayer struct {
	d *dict
}

// NewReplayer starts a replay with the (guessed) first plaintext byte.
func NewReplayer(first byte) *Replayer {
	rep := &Replayer{d: newDict(nil)}
	rep.d.step(first)
	return rep
}

// Ent returns the ent value the compressor holds before consuming the
// next byte.
func (r *Replayer) Ent() uint32 { return r.d.ent }

// Push advances the replayed dictionary by one plaintext byte.
func (r *Replayer) Push(c byte) {
	_, _, full := r.d.step(c)
	if full {
		r.d.reset()
	}
}
