package lzw

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/zipchannel/zipchannel/internal/recovery"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp, err := Compress(src, nil)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("round trip mismatch: %d bytes vs %d", len(back), len(src))
	}
	return comp
}

func TestRoundTripBasic(t *testing.T) {
	cases := map[string][]byte{
		"empty":   nil,
		"one":     {7},
		"two":     []byte("ab"),
		"kwkwk":   []byte("aaaaaaaaaaaa"), // exercises the code==next case
		"text":    []byte("to be or not to be, that is the question to be answered"),
		"zeros":   make([]byte, 10000),
		"repeats": bytes.Repeat([]byte("abcabcabd"), 500),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, src) })
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20000)
		src := make([]byte, n)
		alphabet := 1 + rng.Intn(255)
		for i := range src {
			src[i] = byte(rng.Intn(alphabet))
		}
		comp, err := Compress(src, nil)
		if err != nil {
			return false
		}
		back, err := Decompress(comp)
		return err == nil && bytes.Equal(back, src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDictionaryFillTriggersClear(t *testing.T) {
	// A long low-redundancy stream forces > 65279 dictionary inserts.
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, 300000)
	rng.Read(src)
	roundTrip(t, src)
}

func TestCompressionRatioOnText(t *testing.T) {
	src := []byte(strings.Repeat("the dictionary maps strings to codes. ", 800))
	comp := roundTrip(t, src)
	if len(comp) > len(src)/2 {
		t.Errorf("repetitive text compressed to %d/%d; want < 1/2", len(comp), len(src))
	}
}

type probeTrace struct {
	primary []uint64
	all     int
}

func (p *probeTrace) Probe(hp uint64, primary bool) {
	if primary {
		p.primary = append(p.primary, hp)
	}
	p.all++
}

func TestTracerPrimaryProbesMatchFormula(t *testing.T) {
	src := []byte("probe formula check with some repeated text, repeated text")
	var tr probeTrace
	if _, err := Compress(src, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.primary) != len(src)-1 {
		t.Fatalf("got %d primary probes, want %d (one per byte after the first)",
			len(tr.primary), len(src)-1)
	}
	// Re-derive with the Replayer: hp = (c<<9) ^ ent.
	rep := NewReplayer(src[0])
	for i, c := range src[1:] {
		want := (uint64(c) << ProbeShift) ^ uint64(rep.Ent())
		if tr.primary[i] != want {
			t.Fatalf("probe %d: hp = %#x, want %#x", i, tr.primary[i], want)
		}
		rep.Push(c)
	}
}

// E4's ncompress row: full recovery from the real compressor's probe
// trace at cache-line granularity (hp >> 3 observed).
func TestFullRecoveryFromCompressorTrace(t *testing.T) {
	inputs := [][]byte{
		[]byte("the rain in spain falls mainly on the plain, again and again and again"),
		bytes.Repeat([]byte("abcdefg"), 100),
	}
	rng := rand.New(rand.NewSource(11))
	random := make([]byte, 3000)
	rng.Read(random)
	inputs = append(inputs, random)

	for i, src := range inputs {
		var tr probeTrace
		if _, err := Compress(src, &tr); err != nil {
			t.Fatal(err)
		}
		obs := make([]uint64, len(tr.primary))
		for k, hp := range tr.primary {
			obs[k] = hp >> 3 // 64-byte lines over 8-byte htab entries
		}
		cands, err := recovery.RecoverLZW(obs, 3, func(first byte) recovery.EntReplayer {
			return NewReplayer(first)
		})
		if err != nil {
			t.Fatal(err)
		}
		// The candidate with the correct first-byte guess must be exact.
		correct := src[0] & 0x07
		found := false
		for _, c := range cands {
			if c.FirstByteGuess == correct {
				found = true
				if !bytes.Equal(c.Plaintext, src) {
					t.Errorf("input %d: correct-guess candidate differs from plaintext", i)
				}
			}
		}
		if !found {
			t.Fatalf("input %d: no candidate with correct guess", i)
		}
		// And scoring should select it (or an equally-exact tie).
		best, err := recovery.BestLZW(cands)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(best.Plaintext[1:], src[1:]) {
			t.Errorf("input %d: best candidate wrong beyond first byte", i)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	comp, err := Compress([]byte("hello hello hello hello"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:3]); err == nil {
		t.Error("truncated header should fail")
	}
	if _, err := Decompress(comp[:len(comp)-2]); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestReplayerMatchesCompressorThroughClear(t *testing.T) {
	// Cross the dictionary-full boundary and verify the replayer stays in
	// lockstep with the compressor's tracer.
	rng := rand.New(rand.NewSource(21))
	src := make([]byte, 200000)
	rng.Read(src)
	var tr probeTrace
	if _, err := Compress(src, &tr); err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer(src[0])
	for i, c := range src[1:] {
		want := (uint64(c) << ProbeShift) ^ uint64(rep.Ent())
		if tr.primary[i] != want {
			t.Fatalf("divergence at byte %d (after %d bytes)", i, i)
		}
		rep.Push(c)
	}
}
