package lzw

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip asserts Decompress(Compress(x)) == x for arbitrary
// inputs, across dictionary resets and code-width growth.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add([]byte("TOBEORNOTTOBEORTOBEORNOT"))
	f.Add(bytes.Repeat([]byte("ab"), 200))
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x00, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			data = data[:64<<10]
		}
		comp, err := Compress(data, nil)
		if err != nil {
			t.Fatalf("Compress(%d bytes): %v", len(data), err)
		}
		got, err := Decompress(comp)
		if err != nil {
			t.Fatalf("Decompress(%d bytes): %v", len(data), err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(got))
		}
	})
}
