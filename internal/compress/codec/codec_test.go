package codec

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistryOrder pins the paper's §IV presentation order; survey tables
// and flag help are derived from it.
func TestRegistryOrder(t *testing.T) {
	want := []string{"lz77", "lzw", "bwt"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if s := NamesString(); s != "lz77, lzw, bwt" {
		t.Fatalf("NamesString() = %q", s)
	}
}

// TestRoundTrip runs every registered codec's default pair over a mixed
// input and requires exact recovery.
func TestRoundTrip(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 64) + "\x00\xff\x80tail")
	for _, c := range All() {
		comp, err := c.Compress(src)
		if err != nil {
			t.Fatalf("%s: compress: %v", c.Name, err)
		}
		back, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("%s: decompress: %v", c.Name, err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("%s: round trip mismatch: %d bytes in, %d bytes back", c.Name, len(src), len(back))
		}
	}
}

// TestLookup covers hits, misses, and the Family labels the survey prints.
func TestLookup(t *testing.T) {
	for _, tc := range []struct{ name, family string }{
		{"lz77", "LZ77/zlib"},
		{"lzw", "LZ78/lzw"},
		{"bwt", "BWT/bzip2"},
	} {
		c, ok := Lookup(tc.name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", tc.name)
		}
		if c.Family != tc.family {
			t.Fatalf("Lookup(%q).Family = %q, want %q", tc.name, c.Family, tc.family)
		}
	}
	if _, ok := Lookup("gzip"); ok {
		t.Fatal("Lookup(gzip) should miss")
	}
}

// TestAllIsACopy guards against callers mutating the registry through All.
func TestAllIsACopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if Names()[0] != "lz77" {
		t.Fatal("All() aliases the registry")
	}
}
