// Package codec is the shared registry of the repository's three
// paper-faithful compressors (the §IV study subjects): name → default-option
// Compress/Decompress pair. It exists so the CLI (cmd/zipcomp), the HTTP
// service (internal/server), and the §IV survey experiment all enumerate and
// dispatch the same algorithm set from one place instead of each carrying a
// per-algorithm switch statement.
//
// The registry is fixed at compile time and ordered as the paper presents the
// families (§IV-B zlib, §IV-C ncompress, §IV-D bzip2), so any table or flag
// help derived from Names()/All() keeps the paper's ordering.
package codec

import (
	"strings"

	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/compress/lz77"
	"github.com/zipchannel/zipchannel/internal/compress/lzw"
)

// Codec bundles one algorithm's wire name, the paper's family label, and its
// default-option Compress/Decompress pair. The defaults match what
// cmd/zipcomp and bench_test.go have always used (lazy matching for lz77, no
// tracer for lzw, default block size for bwt), so data compressed by any
// caller of the registry round-trips through any other.
type Codec struct {
	// Name is the wire/flag name: "lz77", "lzw", or "bwt".
	Name string
	// Family is the paper's name for the algorithm family (§IV table).
	Family string
	// Compress compresses src with the codec's default options.
	Compress func(src []byte) ([]byte, error)
	// Decompress inverts Compress.
	Decompress func(data []byte) ([]byte, error)
}

// registry holds the codecs in the paper's §IV presentation order.
var registry = []Codec{
	{
		Name:   "lz77",
		Family: "LZ77/zlib",
		Compress: func(src []byte) ([]byte, error) {
			return lz77.Compress(src, lz77.Options{Lazy: true})
		},
		Decompress: lz77.Decompress,
	},
	{
		Name:   "lzw",
		Family: "LZ78/lzw",
		Compress: func(src []byte) ([]byte, error) {
			return lzw.Compress(src, nil)
		},
		Decompress: lzw.Decompress,
	},
	{
		Name:   "bwt",
		Family: "BWT/bzip2",
		Compress: func(src []byte) ([]byte, error) {
			return bwt.Compress(src, bwt.Options{})
		},
		Decompress: bwt.Decompress,
	},
}

// All returns the registered codecs in registry (paper) order. The slice is
// a copy; callers may reorder it freely.
func All() []Codec {
	out := make([]Codec, len(registry))
	copy(out, registry)
	return out
}

// Names returns the codec wire names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, c := range registry {
		out[i] = c.Name
	}
	return out
}

// NamesString renders the names as "lz77, lzw, bwt" for flag help and error
// messages.
func NamesString() string {
	return strings.Join(Names(), ", ")
}

// Lookup finds a codec by wire name.
func Lookup(name string) (Codec, bool) {
	for _, c := range registry {
		if c.Name == name {
			return c, true
		}
	}
	return Codec{}, false
}
