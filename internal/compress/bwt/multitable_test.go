package bwt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/zipchannel/zipchannel/internal/compress/huffcoding"
)

func TestNumTablesHeuristic(t *testing.T) {
	cases := []struct{ n, want int }{
		{10, 2}, {199, 2}, {200, 3}, {599, 3}, {600, 4}, {1199, 4},
		{1200, 5}, {2399, 5}, {2400, 6}, {100000, 6},
	}
	for _, c := range cases {
		if got := numTablesFor(c.n); got != c.want {
			t.Errorf("numTablesFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBuildTablesCoverUsedSymbols(t *testing.T) {
	// A stream whose front and back have very different distributions:
	// the tables should specialize, but every table must still encode
	// every used symbol.
	var syms []uint16
	for i := 0; i < 500; i++ {
		syms = append(syms, uint16(2+i%3)) // small symbols up front
	}
	for i := 0; i < 500; i++ {
		syms = append(syms, uint16(200+i%5)) // large symbols at the back
	}
	syms = append(syms, symEOB)
	lengths, selectors, err := buildTables(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(selectors) != (len(syms)+groupSize-1)/groupSize {
		t.Errorf("selector count = %d", len(selectors))
	}
	used := map[uint16]bool{}
	for _, s := range syms {
		used[s] = true
	}
	for ti, l := range lengths {
		for s := range used {
			if l[s] == 0 {
				t.Errorf("table %d cannot encode used symbol %d", ti, s)
			}
		}
	}
	// The front and back groups should not all share one table.
	if selectors[0] == selectors[len(selectors)-2] {
		t.Log("note: front and back groups share a table (allowed, but specialization expected)")
	}
}

func TestMultiTableEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(4000)
		syms := make([]uint16, 0, n+1)
		for i := 0; i < n; i++ {
			// Phase-dependent distribution to exercise selectors.
			if (i/200)%2 == 0 {
				syms = append(syms, uint16(rng.Intn(8)))
			} else {
				syms = append(syms, uint16(100+rng.Intn(100)))
			}
		}
		syms = append(syms, symEOB)
		var w huffcoding.BitWriter
		if err := encodeMultiTable(&w, syms); err != nil {
			t.Fatal(err)
		}
		back, err := decodeMultiTable(huffcoding.NewBitReader(w.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(syms) {
			t.Fatalf("trial %d: got %d symbols, want %d", trial, len(back), len(syms))
		}
		for i := range syms {
			if back[i] != syms[i] {
				t.Fatalf("trial %d: symbol %d differs", trial, i)
			}
		}
	}
}

func TestMultiTableBeatsWorseSingleTableOnPhasedData(t *testing.T) {
	// Phase-shifting data is where multiple tables pay off: compare the
	// full pipeline against itself to make sure the selectors actually
	// vary (specialization happened).
	src := []byte(strings.Repeat("aaaaabbbbb", 800) + strings.Repeat("{\"k\":12345}", 700))
	comp, err := Compress(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("round trip failed")
	}
	if len(comp) > len(src)/2 {
		t.Errorf("phased data compressed to %d/%d", len(comp), len(src))
	}
}

func TestDecodeMultiTableCorrupt(t *testing.T) {
	var w huffcoding.BitWriter
	if err := encodeMultiTable(&w, []uint16{1, 2, 3, symEOB}); err != nil {
		t.Fatal(err)
	}
	good := w.Bytes()
	if _, err := decodeMultiTable(huffcoding.NewBitReader(good[:1])); err == nil {
		t.Error("truncated header should fail")
	}
	if _, err := decodeMultiTable(huffcoding.NewBitReader(good[:len(good)-1])); err == nil {
		t.Error("missing EOB should fail")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0xff // nTables = 7 > max
	if _, err := decodeMultiTable(huffcoding.NewBitReader(bad)); err == nil {
		t.Error("bad table count should fail")
	}
}
