package bwt

// Move-to-front and zero-run (RUNA/RUNB) coding: the post-BWT entropy
// stages of bzip2. The MTF output is dominated by zeros; zero runs are
// encoded in bijective base 2 over two dedicated symbols, exactly as
// bzip2 does.

// Symbol alphabet after zero-run coding: RUNA, RUNB, then MTF values
// 1..255 shifted by one, then EOB.
const (
	symRunA   = 0
	symRunB   = 1
	symEOB    = 258
	numMTFSym = 259
)

// mtfEncode applies a 256-symbol move-to-front transform.
func mtfEncode(src []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, b := range src {
		var pos int
		for table[pos] != b {
			pos++
		}
		out[i] = byte(pos)
		copy(table[1:pos+1], table[:pos])
		table[0] = b
	}
	return out
}

// mtfDecode inverts mtfEncode.
func mtfDecode(src []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, pos := range src {
		b := table[pos]
		out[i] = b
		copy(table[1:int(pos)+1], table[:int(pos)])
		table[0] = b
	}
	return out
}

// zrleEncode converts MTF output to the RUNA/RUNB symbol stream: runs of
// zeros become bijective-base-2 digits, nonzero value v becomes symbol
// v+1, and EOB terminates.
func zrleEncode(mtf []byte) []uint16 {
	out := make([]uint16, 0, len(mtf)/2+2)
	emitRun := func(r int) {
		for r > 0 {
			if r&1 == 1 {
				out = append(out, symRunA)
				r = (r - 1) / 2
			} else {
				out = append(out, symRunB)
				r = (r - 2) / 2
			}
		}
	}
	run := 0
	for _, v := range mtf {
		if v == 0 {
			run++
			continue
		}
		emitRun(run)
		run = 0
		out = append(out, uint16(v)+1)
	}
	emitRun(run)
	out = append(out, symEOB)
	return out
}

// zrleDecode inverts zrleEncode, stopping at EOB. It returns the MTF
// byte stream and the number of symbols consumed.
func zrleDecode(syms []uint16) ([]byte, int, error) {
	var out []byte
	run, mult := 0, 1
	flush := func() {
		for i := 0; i < run; i++ {
			out = append(out, 0)
		}
		run, mult = 0, 1
	}
	for i, s := range syms {
		switch {
		case s == symRunA:
			run += mult
			mult *= 2
		case s == symRunB:
			run += 2 * mult
			mult *= 2
		case s == symEOB:
			flush()
			return out, i + 1, nil
		case int(s) < numMTFSym:
			flush()
			out = append(out, byte(s-1))
		default:
			return nil, 0, ErrCorrupt
		}
	}
	return nil, 0, ErrCorrupt
}
