package bwt

import "fmt"

// rle1Encode performs bzip2's initial run-length encoding: any run of 4
// to 255 identical bytes becomes the 4 bytes followed by a count of the
// extras (0-251). This is the step that precedes the BWT; the paper
// treats its output as "the input" (§IV-D). Greedy run detection
// guarantees two adjacent encoded runs never share a byte value, which
// makes decoding unambiguous.
func rle1Encode(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(src)/4)
	i := 0
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 255 {
			run++
		}
		if run >= 4 {
			out = append(out, b, b, b, b, byte(run-4))
		} else {
			for k := 0; k < run; k++ {
				out = append(out, b)
			}
		}
		i += run
	}
	return out
}

// rle1Decode inverts rle1Encode: after copying four identical bytes in a
// row, the next byte is the count of extra repeats.
func rle1Decode(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src))
	run := 0
	var prev byte
	for i := 0; i < len(src); {
		b := src[i]
		i++
		if run > 0 && b == prev {
			run++
		} else {
			run = 1
			prev = b
		}
		out = append(out, b)
		if run == 4 {
			if i >= len(src) {
				return nil, fmt.Errorf("%w: rle1 run missing count byte", ErrCorrupt)
			}
			extra := int(src[i])
			i++
			for k := 0; k < extra; k++ {
				out = append(out, b)
			}
			run = 0
		}
	}
	return out, nil
}
