// Package bwt implements a bzip2-style block-sorting compressor and
// decompressor: RLE1, the Burrows-Wheeler transform with bzip2's
// mainSort/fallbackSort split (Fig 6 of the paper), move-to-front,
// zero-run coding, and canonical Huffman.
//
// Two properties of the original that the paper attacks are preserved
// faithfully:
//
//   - mainSort builds the 65537-entry 2-byte frequency table with the
//     sliding-pair loop of Listing 3 (§IV-D) — every ftab increment is
//     visible to the Tracer, which is how the survey and the SGX attack
//     couple to the real compressor; and
//   - the sorting control flow diverges on the input (Fig 6): full blocks
//     enter mainSort and abandon to fallbackSort when too repetitive,
//     short tail blocks go straight to fallbackSort — the §VI
//     fingerprinting signal.
package bwt

import (
	"errors"
	"fmt"

	"github.com/zipchannel/zipchannel/internal/compress/huffcoding"
)

// DefaultBlockSize is the per-block input size the paper describes
// ("Each block is 10,000 bytes", §VI).
const DefaultBlockSize = 10000

// DefaultWorkFactor scales mainSort's comparison budget (budget =
// WorkFactor * blockLen), the knob behind "too repetitive" abandonment.
const DefaultWorkFactor = 30

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("bwt: corrupt stream")

// Tracer observes the compressor's input-dependent behaviour. All methods
// may be called many times; implementations must be cheap.
type Tracer interface {
	// BlockStart fires before each block with its index and raw size.
	BlockStart(index, rawLen int)
	// MainSortEnter fires when a block enters mainSort (Fig 6).
	MainSortEnter()
	// MainSortAbandon fires when mainSort gives up mid-way.
	MainSortAbandon(workDone int)
	// FallbackSortEnter fires when a block (or an abandoned block)
	// enters fallbackSort.
	FallbackSortEnter()
	// FtabInc fires per frequency-table increment with the 2-byte pair
	// index j — the Listing 3 gadget stream.
	FtabInc(j uint16)
	// Work reports abstract work units, the timeline currency for the
	// fingerprinting attack's timing model.
	Work(units int)
}

// BaseTracer is a no-op Tracer for embedding.
type BaseTracer struct{}

// BlockStart implements Tracer.
func (BaseTracer) BlockStart(int, int) {}

// MainSortEnter implements Tracer.
func (BaseTracer) MainSortEnter() {}

// MainSortAbandon implements Tracer.
func (BaseTracer) MainSortAbandon(int) {}

// FallbackSortEnter implements Tracer.
func (BaseTracer) FallbackSortEnter() {}

// FtabInc implements Tracer.
func (BaseTracer) FtabInc(uint16) {}

// Work implements Tracer.
func (BaseTracer) Work(int) {}

// Options tunes compression.
type Options struct {
	// BlockSize is the input bytes per block (default 10000).
	BlockSize int
	// WorkFactor scales mainSort's budget (default 30).
	WorkFactor int
	// Tracer observes input-dependent behaviour (may be nil).
	Tracer Tracer
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.WorkFactor <= 0 {
		o.WorkFactor = DefaultWorkFactor
	}
	return o
}

const magic = 0x425a4732 // "BZG2"

// Compress encodes src.
func Compress(src []byte, opts Options) ([]byte, error) {
	opts = opts.withDefaults()
	var w huffcoding.BitWriter
	w.WriteBits(magic, 32)
	nBlocks := (len(src) + opts.BlockSize - 1) / opts.BlockSize
	w.WriteBits(uint32(nBlocks), 32)

	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * opts.BlockSize
		hi := min(lo+opts.BlockSize, len(src))
		raw := src[lo:hi]
		if opts.Tracer != nil {
			opts.Tracer.BlockStart(bi, len(raw))
		}
		if err := compressBlock(&w, raw, hi-lo == opts.BlockSize, opts); err != nil {
			return nil, fmt.Errorf("bwt: block %d: %w", bi, err)
		}
	}
	return w.Bytes(), nil
}

func compressBlock(w *huffcoding.BitWriter, raw []byte, fullSize bool, opts Options) error {
	block := rle1Encode(raw)
	n := len(block)

	// Forward BWT: Fig 6 control flow lives in sortBlock.
	ptr := sortBlock(block, fullSize, opts.WorkFactor, opts.Tracer)
	last := make([]byte, n)
	origPtr := uint32(0)
	for i, p := range ptr {
		last[i] = block[(int(p)+n-1)%n]
		if p == 0 {
			origPtr = uint32(i)
		}
	}

	syms := zrleEncode(mtfEncode(last))

	w.WriteBits(uint32(n), 32)
	w.WriteBits(origPtr, 32)
	// Entropy stage: bzip2's multi-table Huffman with per-group selectors
	// (multitable.go).
	return encodeMultiTable(w, syms)
}

// Decompress inverts Compress.
func Decompress(data []byte) ([]byte, error) {
	r := huffcoding.NewBitReader(data)
	m, err := r.ReadBits(32)
	if err != nil || m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	nBlocks, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var out []byte
	for bi := uint32(0); bi < nBlocks; bi++ {
		raw, err := decompressBlock(r)
		if err != nil {
			return nil, fmt.Errorf("bwt: block %d: %w", bi, err)
		}
		out = append(out, raw...)
	}
	return out, nil
}

func decompressBlock(r *huffcoding.BitReader) ([]byte, error) {
	n32, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n := int(n32)
	origPtr, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	syms, err := decodeMultiTable(r)
	if err != nil {
		return nil, err
	}
	mtf, _, err := zrleDecode(syms)
	if err != nil {
		return nil, err
	}
	last := mtfDecode(mtf)
	if len(last) != n {
		return nil, fmt.Errorf("%w: block length %d != %d", ErrCorrupt, len(last), n)
	}
	if n == 0 {
		return nil, nil
	}
	if int(origPtr) >= n {
		return nil, fmt.Errorf("%w: origPtr out of range", ErrCorrupt)
	}
	block := inverseBWT(last, int(origPtr))
	return rle1Decode(block)
}

// inverseBWT reconstructs the block from its BWT last column and the row
// index of the original rotation, via the standard LF mapping.
func inverseBWT(last []byte, origPtr int) []byte {
	n := len(last)
	var cftab [257]int
	for _, b := range last {
		cftab[int(b)+1]++
	}
	for i := 1; i <= 256; i++ {
		cftab[i] += cftab[i-1]
	}
	tt := make([]int32, n)
	for i, b := range last {
		tt[cftab[b]] = int32(i)
		cftab[b]++
	}
	out := make([]byte, n)
	p := tt[origPtr]
	for k := 0; k < n; k++ {
		out[k] = last[p]
		p = tt[p]
	}
	return out
}
