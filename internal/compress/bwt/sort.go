package bwt

import (
	"errors"
	"sort"
)

// errAbandon is the internal signal that mainSort's work budget was
// exhausted by a too-repetitive block (Fig 6's "abandon mainSort
// mid-way and continue with fallbackSort").
var errAbandon = errors.New("bwt: mainSort abandoned")

// FtabSize is the 2-byte-pair frequency table size (65536 pairs plus the
// cumulative-sum slot, as in bzip2's 65537-entry ftab).
const FtabSize = 65537

// mainSort sorts all rotations of block using bzip2's strategy: a
// frequency table over 2-byte prefixes (the §IV-D gadget — every
// increment is reported to the tracer), bucket placement, then per-bucket
// comparison sorting under a work budget. It returns the sorted rotation
// indices, or errAbandon when the budget is exhausted.
func mainSort(block []byte, workLimit int, tr Tracer) ([]int32, error) {
	n := len(block)
	if n == 0 {
		return nil, nil
	}

	// Listing 3: the 2-byte frequency table, built in reverse order with
	// j carrying a sliding byte pair.
	ftab := make([]int32, FtabSize)
	j := uint32(block[0]) << 8
	for i := n - 1; i >= 0; i-- {
		j = (j >> 8) | (uint32(block[i]) << 8)
		if tr != nil {
			tr.FtabInc(uint16(j))
		}
		ftab[j]++
	}
	if tr != nil {
		tr.Work(n)
	}

	// Bucket boundaries: cumulative counts.
	starts := make([]int32, FtabSize)
	var sum int32
	for k := 0; k < FtabSize; k++ {
		starts[k] = sum
		if k < FtabSize-1 {
			sum += ftab[k]
		}
	}

	// Place each rotation into its 2-byte bucket.
	ptr := make([]int32, n)
	fill := make([]int32, FtabSize)
	copy(fill, starts)
	for i := 0; i < n; i++ {
		pair := uint32(block[i])<<8 | uint32(block[(i+1)%n])
		ptr[fill[pair]] = int32(i)
		fill[pair]++
	}

	// Sort inside each bucket by full rotation order, under a budget.
	work := 0
	budget := workLimit
	var abandoned bool
	cmp := func(a, b int32) bool {
		// Compare rotations starting at a and b beyond their shared
		// 2-byte prefix.
		for k := 0; k < n; k++ {
			ca := block[(int(a)+k)%n]
			cb := block[(int(b)+k)%n]
			work++
			if ca != cb {
				return ca < cb
			}
		}
		return a < b // identical rotations: stable by index
	}
	for pair := 0; pair < FtabSize-1 && !abandoned; pair++ {
		lo, hi := starts[pair], fill[pair]
		if hi-lo <= 1 {
			continue
		}
		bucket := ptr[lo:hi]
		sort.Slice(bucket, func(x, y int) bool { return cmp(bucket[x], bucket[y]) })
		if work > budget {
			abandoned = true
		}
	}
	if tr != nil {
		tr.Work(work)
	}
	if abandoned {
		if tr != nil {
			tr.MainSortAbandon(work)
		}
		return nil, errAbandon
	}
	return ptr, nil
}

// fallbackSort is the guaranteed-progress sorter bzip2 retreats to: here a
// Manber-Myers prefix-doubling sort over rotations, O(n log^2 n)
// regardless of repetitiveness.
func fallbackSort(block []byte, tr Tracer) []int32 {
	n := len(block)
	if n == 0 {
		return nil
	}
	rank := make([]int32, n)
	tmp := make([]int32, n)
	idx := make([]int32, n)
	for i := 0; i < n; i++ {
		idx[i] = int32(i)
		rank[i] = int32(block[i])
	}
	work := 0
	for k := 1; ; k *= 2 {
		key := func(i int32) (int32, int32) {
			return rank[i], rank[(int(i)+k)%n]
		}
		sort.Slice(idx, func(x, y int) bool {
			ax, bx := key(idx[x])
			ay, by := key(idx[y])
			work++
			if ax != ay {
				return ax < ay
			}
			return bx < by
		})
		tmp[idx[0]] = 0
		for i := 1; i < n; i++ {
			a1, b1 := key(idx[i-1])
			a2, b2 := key(idx[i])
			tmp[idx[i]] = tmp[idx[i-1]]
			if a1 != a2 || b1 != b2 {
				tmp[idx[i]]++
			}
		}
		copy(rank, tmp)
		if int(rank[idx[n-1]]) == n-1 {
			break
		}
		if k >= n {
			break
		}
	}
	if tr != nil {
		tr.Work(work)
	}
	return idx
}

// sortBlock applies the Fig 6 control flow: full-size blocks start in
// mainSort and may abandon to fallbackSort; short blocks go straight to
// fallbackSort.
func sortBlock(block []byte, fullSize bool, workFactor int, tr Tracer) []int32 {
	if fullSize {
		if tr != nil {
			tr.MainSortEnter()
		}
		ptr, err := mainSort(block, workFactor*len(block), tr)
		if err == nil {
			return ptr
		}
		// Too repetitive: retreat (Fig 6).
	}
	if tr != nil {
		tr.FallbackSortEnter()
	}
	return fallbackSort(block, tr)
}
