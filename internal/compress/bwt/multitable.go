package bwt

import (
	"fmt"

	"github.com/zipchannel/zipchannel/internal/compress/huffcoding"
)

// bzip2's entropy stage does not use one Huffman table: it splits the
// symbol stream into groups of 50 and selects, per group, one of up to 6
// tables, refined over several passes so each table specializes on a
// region of the stream (the front of a block after MTF looks very
// different from the back). This file implements that scheme: table
// initialization by frequency partition, iterative reassignment, and the
// selector-annotated encoding.

const (
	// groupSize is bzip2's G_SIZE.
	groupSize = 50
	// maxTables is bzip2's N_GROUPS.
	maxTables = 6
)

// numTablesFor mirrors bzip2's table-count heuristic.
func numTablesFor(nSyms int) int {
	switch {
	case nSyms < 200:
		return 2
	case nSyms < 600:
		return 3
	case nSyms < 1200:
		return 4
	case nSyms < 2400:
		return 5
	default:
		return maxTables
	}
}

// buildTables partitions the symbol stream into groups, assigns each
// group to one of nTables Huffman tables, and refines tables and
// assignments over a few passes (bzip2 uses N_ITERS = 4).
func buildTables(syms []uint16) (lengths [][]uint8, selectors []uint8, err error) {
	nGroups := (len(syms) + groupSize - 1) / groupSize
	nTables := numTablesFor(len(syms))

	// Global frequency, and the used-symbol set every table must cover.
	globalFreq := make([]int64, numMTFSym)
	for _, s := range syms {
		globalFreq[s]++
	}

	// Initial partition: split the alphabet into nTables contiguous
	// ranges of roughly equal total frequency (bzip2's initial split),
	// and give table t high affinity for its range.
	var total int64
	for _, f := range globalFreq {
		total += f
	}
	lengths = make([][]uint8, nTables)
	rangeStart := 0
	var acc int64
	tbl := 0
	bounds := make([]int, nTables+1)
	bounds[0] = 0
	for sym := 0; sym < numMTFSym && tbl < nTables-1; sym++ {
		acc += globalFreq[sym]
		if acc >= total*int64(tbl+1)/int64(nTables) {
			tbl++
			bounds[tbl] = sym + 1
		}
	}
	bounds[nTables] = numMTFSym
	_ = rangeStart
	for t := 0; t < nTables; t++ {
		// Seed lengths: short codes inside the table's range, long outside.
		l := make([]uint8, numMTFSym)
		for sym := 0; sym < numMTFSym; sym++ {
			if sym >= bounds[t] && sym < bounds[t+1] {
				l[sym] = 4
			} else {
				l[sym] = 12
			}
		}
		lengths[t] = l
	}

	selectors = make([]uint8, nGroups)
	for iter := 0; iter < 4; iter++ {
		// Assign each group to its cheapest table.
		tableFreq := make([][]int64, nTables)
		for t := range tableFreq {
			tableFreq[t] = make([]int64, numMTFSym)
		}
		for g := 0; g < nGroups; g++ {
			lo := g * groupSize
			hi := min(lo+groupSize, len(syms))
			best, bestCost := 0, int(^uint(0)>>1)
			for t := 0; t < nTables; t++ {
				cost := 0
				for _, s := range syms[lo:hi] {
					cl := int(lengths[t][s])
					if cl == 0 {
						cl = 20 // unusable symbol: strongly discourage
					}
					cost += cl
				}
				if cost < bestCost {
					best, bestCost = t, cost
				}
			}
			selectors[g] = uint8(best)
			for _, s := range syms[lo:hi] {
				tableFreq[best][s]++
			}
		}
		// Rebuild each table from the groups it won. Every globally used
		// symbol gets at least frequency 1 so each table can encode any
		// group it might be assigned next round (bzip2 does the same).
		for t := 0; t < nTables; t++ {
			freq := tableFreq[t]
			for sym, f := range globalFreq {
				if f > 0 && freq[sym] == 0 {
					freq[sym] = 1
				}
			}
			newLens, err := huffcoding.BuildLengths(freq, huffcoding.MaxCodeLen)
			if err != nil {
				return nil, nil, fmt.Errorf("bwt: table %d: %w", t, err)
			}
			lengths[t] = newLens
		}
	}
	return lengths, selectors, nil
}

// encodeMultiTable writes the selector-annotated symbol stream:
// [nTables:3][nGroups:32][selectors:3 bits each][tables' lengths:4 bits
// each][symbols]. (Real bzip2 MTF-codes the selectors and delta-codes
// the lengths; we store them flat — documented divergence.)
func encodeMultiTable(w *huffcoding.BitWriter, syms []uint16) error {
	lengths, selectors, err := buildTables(syms)
	if err != nil {
		return err
	}
	encs := make([]*huffcoding.Encoder, len(lengths))
	for t, l := range lengths {
		enc, err := huffcoding.NewEncoder(l)
		if err != nil {
			return err
		}
		encs[t] = enc
	}

	w.WriteBits(uint32(len(lengths)), 3)
	w.WriteBits(uint32(len(selectors)), 32)
	for _, sel := range selectors {
		w.WriteBits(uint32(sel), 3)
	}
	for _, l := range lengths {
		for _, v := range l {
			w.WriteBits(uint32(v), 4)
		}
	}
	for g := 0; g < len(selectors); g++ {
		lo := g * groupSize
		hi := min(lo+groupSize, len(syms))
		enc := encs[selectors[g]]
		for _, s := range syms[lo:hi] {
			if err := enc.Encode(w, int(s)); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeMultiTable reads the stream written by encodeMultiTable, stopping
// at the EOB symbol.
func decodeMultiTable(r *huffcoding.BitReader) ([]uint16, error) {
	nTables, err := r.ReadBits(3)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if nTables == 0 || nTables > maxTables {
		return nil, fmt.Errorf("%w: %d tables", ErrCorrupt, nTables)
	}
	nGroups, err := r.ReadBits(32)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if nGroups > 1<<24 {
		return nil, fmt.Errorf("%w: %d groups", ErrCorrupt, nGroups)
	}
	selectors := make([]uint8, nGroups)
	for i := range selectors {
		v, err := r.ReadBits(3)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if v >= nTables {
			return nil, fmt.Errorf("%w: selector %d of %d tables", ErrCorrupt, v, nTables)
		}
		selectors[i] = uint8(v)
	}
	decs := make([]*huffcoding.Decoder, nTables)
	for t := range decs {
		lens := make([]uint8, numMTFSym)
		for i := range lens {
			v, err := r.ReadBits(4)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			lens[i] = uint8(v)
		}
		dec, err := huffcoding.NewDecoder(lens)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		decs[t] = dec
	}

	var syms []uint16
	for g := 0; g < int(nGroups); g++ {
		dec := decs[selectors[g]]
		for k := 0; k < groupSize; k++ {
			s, err := dec.Decode(r)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			syms = append(syms, uint16(s))
			if s == symEOB {
				return syms, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: missing EOB", ErrCorrupt)
}
