package bwt

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip asserts Decompress(Compress(x)) == x for arbitrary
// inputs, at the default block size and at a small one that forces
// multi-block streams (and with it the fallbackSort path for short
// tails).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add([]byte("banana banana banana"))
	f.Add(bytes.Repeat([]byte{0xaa}, 600))
	f.Add([]byte("abracadabra abracadabra abracadabra"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			data = data[:64<<10]
		}
		for _, blockSize := range []int{0, 256} {
			comp, err := Compress(data, Options{BlockSize: blockSize})
			if err != nil {
				t.Fatalf("Compress(block=%d, %d bytes): %v", blockSize, len(data), err)
			}
			got, err := Decompress(comp)
			if err != nil {
				t.Fatalf("Decompress(block=%d, %d bytes): %v", blockSize, len(data), err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip mismatch (block=%d): %d bytes in, %d out", blockSize, len(data), len(got))
			}
		}
	})
}
