package bwt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte, opts Options) []byte {
	t.Helper()
	comp, err := Compress(src, opts)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(back), len(src))
	}
	return comp
}

func TestRLE1RoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		[]byte("abc"),
		[]byte("aaaa"),
		[]byte("aaaaa"),
		bytes.Repeat([]byte{'x'}, 255),
		bytes.Repeat([]byte{'x'}, 256),
		bytes.Repeat([]byte{'x'}, 1000),
		[]byte("aaabbbbcccccdddddddd"),
	}
	for _, src := range cases {
		enc := rle1Encode(src)
		dec, err := rle1Decode(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", src, err)
		}
		if !bytes.Equal(dec, src) {
			t.Errorf("rle1 round trip failed for %d bytes", len(src))
		}
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5000)
		src := make([]byte, n)
		for i := 0; i < n; {
			run := min(1+rng.Intn(400), n-i)
			b := byte(rng.Intn(4))
			for j := 0; j < run; j++ {
				src[i+j] = b
			}
			i += run
		}
		dec, err := rle1Decode(rle1Encode(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMTFRoundTrip(t *testing.T) {
	prop := func(src []byte) bool {
		return bytes.Equal(mtfDecode(mtfEncode(src)), src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZRLERoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		mtf := make([]byte, n)
		for i := range mtf {
			if rng.Intn(3) > 0 {
				mtf[i] = 0 // zero-dominated, like real MTF output
			} else {
				mtf[i] = byte(1 + rng.Intn(255))
			}
		}
		syms := zrleEncode(mtf)
		dec, used, err := zrleDecode(syms)
		return err == nil && used == len(syms) && bytes.Equal(dec, mtf)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInverseBWTKnownVector(t *testing.T) {
	// BANANA's BWT (rotation sort) is NNBAAA with the original at row 3.
	block := []byte("BANANA")
	ptr := fallbackSort(block, nil)
	n := len(block)
	last := make([]byte, n)
	orig := 0
	for i, p := range ptr {
		last[i] = block[(int(p)+n-1)%n]
		if p == 0 {
			orig = i
		}
	}
	if string(last) != "NNBAAA" {
		t.Errorf("BWT(BANANA) = %q, want NNBAAA", last)
	}
	if got := inverseBWT(last, orig); string(got) != "BANANA" {
		t.Errorf("inverse BWT = %q", got)
	}
}

func TestSortersAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		block := make([]byte, n)
		alpha := 1 + rng.Intn(8)
		for i := range block {
			block[i] = byte(rng.Intn(alpha))
		}
		mp, err := mainSort(block, 1<<40, nil) // effectively unlimited budget
		if err != nil {
			return false
		}
		fp := fallbackSort(block, nil)
		// Rotation *content* order must agree; equal rotations may park in
		// either index order, so compare the rotations themselves.
		for i := range mp {
			if mp[i] == fp[i] {
				continue
			}
			for k := 0; k < n; k++ {
				a := block[(int(mp[i])+k)%n]
				b := block[(int(fp[i])+k)%n]
				if a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripBasic(t *testing.T) {
	cases := map[string][]byte{
		"empty":      nil,
		"one":        {9},
		"banana":     []byte("BANANA"),
		"text":       []byte(strings.Repeat("block sorting brings similar contexts together. ", 300)),
		"zeros":      make([]byte, 30000),
		"multiblock": bytes.Repeat([]byte("0123456789abcdef"), 2000), // > 3 blocks
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, src, Options{}) })
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30000)
		src := make([]byte, n)
		alpha := 1 + rng.Intn(255)
		for i := range src {
			src[i] = byte(rng.Intn(alpha))
		}
		comp, err := Compress(src, Options{})
		if err != nil {
			return false
		}
		back, err := Decompress(comp)
		return err == nil && bytes.Equal(back, src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCompressionRatioOnText(t *testing.T) {
	src := []byte(strings.Repeat("the burrows-wheeler transform groups similar characters. ", 600))
	comp := roundTrip(t, src, Options{})
	if len(comp) > len(src)/3 {
		t.Errorf("text compressed to %d/%d; want < 1/3", len(comp), len(src))
	}
}

// collector implements Tracer for control-flow tests.
type collector struct {
	BaseTracer
	blocks    int
	mainEnter int
	fallback  int
	abandons  int
	ftab      []uint16
	work      int
}

func (c *collector) BlockStart(int, int) { c.blocks++ }
func (c *collector) MainSortEnter()      { c.mainEnter++ }
func (c *collector) MainSortAbandon(int) { c.abandons++ }
func (c *collector) FallbackSortEnter()  { c.fallback++ }
func (c *collector) FtabInc(j uint16)    { c.ftab = append(c.ftab, j) }
func (c *collector) Work(n int)          { c.work += n }

// Fig 6: full blocks go to mainSort; the short tail goes straight to
// fallbackSort.
func TestControlFlowFullVsShortBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	src := make([]byte, 25000) // 2 full 10k blocks + 5k tail
	rng.Read(src)
	var c collector
	roundTrip(t, src, Options{Tracer: &c})
	if c.blocks != 3 {
		t.Fatalf("blocks = %d, want 3", c.blocks)
	}
	if c.mainEnter != 2 {
		t.Errorf("mainSort entries = %d, want 2 (full blocks only)", c.mainEnter)
	}
	if c.fallback != 1 {
		t.Errorf("fallbackSort entries = %d, want 1 (the tail)", c.fallback)
	}
	if c.abandons != 0 {
		t.Errorf("random data should not abandon mainSort (%d)", c.abandons)
	}
}

// Fig 6: too-repetitive full blocks abandon mainSort mid-way.
func TestControlFlowAbandonOnRepetitiveInput(t *testing.T) {
	src := bytes.Repeat([]byte("ab"), 10000) // 2 highly repetitive blocks
	var c collector
	roundTrip(t, src, Options{Tracer: &c, WorkFactor: 2})
	if c.mainEnter == 0 {
		t.Fatal("full repetitive blocks should still enter mainSort first")
	}
	if c.abandons == 0 {
		t.Error("repetitive input should abandon mainSort (Fig 6)")
	}
	if c.fallback != c.abandons {
		t.Errorf("each abandon should fall back: %d abandons, %d fallbacks", c.abandons, c.fallback)
	}
}

// The ftab trace must match Listing 3's ground truth: iteration k handles
// i = n-1-k with j = block[i]<<8 | block[(i+1)%n], over the RLE1'd block.
func TestFtabTraceMatchesGroundTruth(t *testing.T) {
	src := []byte("ILLINOIS IS REPETITIVE ENOUGH TO BE INTERESTING")
	var c collector
	// BlockSize = len(src) makes the block "full", entering mainSort
	// (short blocks go straight to fallbackSort and build no ftab).
	if _, err := Compress(src, Options{Tracer: &c, BlockSize: len(src)}); err != nil {
		t.Fatal(err)
	}
	block := rle1Encode(src)
	n := len(block)
	if len(c.ftab) != n {
		t.Fatalf("ftab trace has %d entries, want %d", len(c.ftab), n)
	}
	for k := 0; k < n; k++ {
		i := n - 1 - k
		want := uint16(block[i])<<8 | uint16(block[(i+1)%n])
		if c.ftab[k] != want {
			t.Errorf("ftab[%d] = %#x, want %#x", k, c.ftab[k], want)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	comp, err := Compress([]byte("some data to compress, repeated, repeated"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:8]); err == nil {
		t.Error("truncated stream should fail")
	}
	bad := append([]byte(nil), comp...)
	bad[0] ^= 0xff
	if _, err := Decompress(bad); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Decompress(nil); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestWorkReported(t *testing.T) {
	var c collector
	src := bytes.Repeat([]byte("workload "), 2000)
	if _, err := Compress(src, Options{Tracer: &c}); err != nil {
		t.Fatal(err)
	}
	if c.work == 0 {
		t.Error("tracer should receive work units")
	}
}
