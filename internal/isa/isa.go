// Package isa defines the instruction set of the simulated machine that
// stands in for the paper's x86 targets: a 64-bit register architecture
// with x86-style base+index*scale+disp addressing, narrow (1/2/4/8-byte)
// operations, flags, and a read/write/exit syscall interface.
//
// The leakage gadgets that TaintChannel analyzes (zlib INSERT_STRING,
// ncompress htab probe, bzip2 ftab histogram, AES T-table round, memcpy)
// are written in this assembly; see package victims.
package isa

import "fmt"

// Reg names one of the 16 general-purpose 64-bit registers. R15 is used as
// the stack pointer by convention (push/pop/call/ret).
type Reg uint8

// General-purpose registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	SP // stack pointer (r15)

	NumRegs = 16
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes.
const (
	OpNop Op = iota
	OpMov    // mov dst, src        (reg <- reg/imm)
	OpLd     // ld.w dst, [mem]     (zero-extending load)
	OpSt     // st.w [mem], src     (narrow store)
	OpLea    // lea dst, [mem]      (effective address)
	OpAdd
	OpSub
	OpMul
	OpDiv // unsigned divide, dst <- dst / src
	OpMod // unsigned remainder
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpShl
	OpShr
	OpSar
	OpRol
	OpCmp  // sets flags from dst - src
	OpTest // sets flags from dst & src
	OpJmp
	OpJe
	OpJne
	OpJl  // signed <
	OpJle // signed <=
	OpJg  // signed >
	OpJge // signed >=
	OpJb  // unsigned <
	OpJbe // unsigned <=
	OpJa  // unsigned >
	OpJae // unsigned >=
	OpCall
	OpRet
	OpPush
	OpPop
	OpSyscall
	OpHalt

	numOps
)

// NumOps is the number of defined opcodes, for building per-opcode
// lookup tables (e.g. dispatch counters) outside this package.
const NumOps = int(numOps)

var opNames = [numOps]string{
	OpNop: "nop", OpMov: "mov", OpLd: "ld", OpSt: "st", OpLea: "lea",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not", OpNeg: "neg",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpRol: "rol",
	OpCmp: "cmp", OpTest: "test",
	OpJmp: "jmp", OpJe: "je", OpJne: "jne",
	OpJl: "jl", OpJle: "jle", OpJg: "jg", OpJge: "jge",
	OpJb: "jb", OpJbe: "jbe", OpJa: "ja", OpJae: "jae",
	OpCall: "call", OpRet: "ret", OpPush: "push", OpPop: "pop",
	OpSyscall: "syscall", OpHalt: "halt",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsJump reports whether the opcode is a (conditional) jump or call.
func (o Op) IsJump() bool {
	return (o >= OpJmp && o <= OpJae) || o == OpCall
}

// IsCondJump reports whether the opcode is a conditional jump.
func (o Op) IsCondJump() bool { return o > OpJmp && o <= OpJae }

// OperandKind distinguishes operand encodings.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// MemRef is an x86-style memory operand: base + index*scale + disp. Disp
// absorbs resolved data-symbol addresses.
type MemRef struct {
	Base     Reg
	Index    Reg
	HasBase  bool
	HasIndex bool
	Scale    uint8 // 1, 2, 4, or 8
	Disp     int64
	Symbol   string // data symbol the displacement was resolved from, if any
	SymAddr  int64  // the symbol's resolved address (folded into Disp)
}

// Operand is a register, immediate, or memory reference.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  MemRef
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp returns a memory operand.
func MemOp(m MemRef) Operand { return Operand{Kind: KindMem, Mem: m} }

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	Width  uint8 // operand width in bytes: 1, 2, 4, or 8
	Dst    Operand
	Src    Operand
	Target int    // resolved instruction index for jumps/calls
	Label  string // textual jump target, kept for disassembly
	Line   int    // 1-based source line in the assembly text
}

// Symbol describes one .data allocation in the program's data segment.
type Symbol struct {
	Name string
	Addr uint64 // absolute virtual address
	Size uint64
}

// Program is an assembled unit: code, entry point, and data layout.
type Program struct {
	Name     string
	Instrs   []Instr
	Entry    int
	Symbols  map[string]Symbol
	DataBase uint64 // virtual address where the data segment starts
	DataSize uint64 // total bytes of .data allocations (including padding)
	Init     []DataInit
}

// DataInit is a byte string copied into the data segment before execution.
type DataInit struct {
	Addr  uint64
	Bytes []byte
}

// SymbolAt returns the data symbol containing the given address, if any.
func (p *Program) SymbolAt(addr uint64) (Symbol, bool) {
	for _, s := range p.Symbols {
		if addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return Symbol{}, false
}

// MustSymbol returns the named symbol or panics; intended for tests and
// victim-program setup where the symbol is known to exist.
func (p *Program) MustSymbol(name string) Symbol {
	s, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("isa: program %q has no symbol %q", p.Name, name))
	}
	return s
}
