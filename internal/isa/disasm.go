package isa

import (
	"fmt"
	"strings"
)

// String renders the operand in assembler syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		if o.Imm < 0 || o.Imm > 9 {
			return fmt.Sprintf("0x%x", uint64(o.Imm))
		}
		return fmt.Sprintf("%d", o.Imm)
	case KindMem:
		return o.Mem.String()
	default:
		return "?"
	}
}

// String renders the memory reference in assembler syntax, preferring the
// symbolic form when the displacement came from a data symbol.
func (m MemRef) String() string {
	var parts []string
	disp := m.Disp
	if m.Symbol != "" {
		parts = append(parts, m.Symbol)
		disp -= m.SymAddr
	}
	if m.HasBase {
		parts = append(parts, m.Base.String())
	}
	if m.HasIndex {
		if m.Scale != 1 {
			parts = append(parts, fmt.Sprintf("%s*%d", m.Index, m.Scale))
		} else {
			parts = append(parts, m.Index.String())
		}
	}
	if disp != 0 || len(parts) == 0 {
		if disp < 0 {
			parts = append(parts, fmt.Sprintf("-0x%x", uint64(-disp)))
		} else {
			parts = append(parts, fmt.Sprintf("0x%x", uint64(disp)))
		}
	}
	return "[" + strings.Join(parts, "+") + "]"
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	mnem := in.Op.String()
	if in.Width != 8 && widthMatters(in.Op) {
		mnem = fmt.Sprintf("%s.%d", mnem, in.Width)
	}
	switch {
	case in.Op.IsJump():
		return fmt.Sprintf("%s %s", mnem, in.Label)
	case in.Op == OpNop || in.Op == OpRet || in.Op == OpSyscall || in.Op == OpHalt:
		return mnem
	case in.Op == OpNot || in.Op == OpNeg || in.Op == OpPop:
		return fmt.Sprintf("%s %s", mnem, in.Dst)
	case in.Op == OpPush:
		return fmt.Sprintf("%s %s", mnem, in.Src)
	default:
		return fmt.Sprintf("%s %s, %s", mnem, in.Dst, in.Src)
	}
}

func widthMatters(op Op) bool {
	switch op {
	case OpJmp, OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpJb, OpJbe, OpJa, OpJae,
		OpCall, OpRet, OpNop, OpSyscall, OpHalt:
		return false
	}
	return true
}

// Disassemble renders the whole program, one instruction per line, with
// instruction indices and jump targets resolved back to index form.
func Disassemble(p *Program) string {
	var b strings.Builder
	for i, in := range p.Instrs {
		marker := "  "
		if i == p.Entry {
			marker = "=>"
		}
		fmt.Fprintf(&b, "%s %4d: %s", marker, i, in)
		if in.Op.IsJump() {
			fmt.Fprintf(&b, "  ; -> %d", in.Target)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
