package isa

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrAssemble wraps all assembler failures.
var ErrAssemble = errors.New("assemble")

// DefaultDataBase is the virtual address of the data segment unless the
// source overrides it with a .base directive. Code is not addressable; only
// data lives in the address space.
const DefaultDataBase uint64 = 0x10000

type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string {
	return fmt.Sprintf("line %d: %s", e.line, e.msg)
}

func (e *asmError) Unwrap() error { return ErrAssemble }

// Assemble translates assembly text into a Program. The syntax is
// line-oriented:
//
//	; comment                         (also "#" and "//")
//	.base 0x10000                     data segment base address
//	.entry main                       entry label (default: first instr)
//	.const HSIZE 65536                named immediate
//	.data ftab 262148 align=64        reserve bytes, optional alignment
//	.init msg "hello"                 initialize a symbol's bytes
//	label:
//	  mov r1, 0x7fff                  default width 8; suffix .1/.2/.4/.8
//	  ld.2 r2, [head + r3*2 + 8]
//	  st.4 [ftab + r4*4], r5
//	  jne loop
//	  syscall
//	  halt
func Assemble(name, src string) (*Program, error) {
	a := &assembler{
		prog: &Program{
			Name:     name,
			Symbols:  map[string]Symbol{},
			DataBase: DefaultDataBase,
			Entry:    0,
		},
		consts: map[string]int64{},
		labels: map[string]int{},
	}
	if err := a.run(src); err != nil {
		return nil, fmt.Errorf("%w: program %q: %w", ErrAssemble, name, err)
	}
	return a.prog, nil
}

// MustAssemble assembles or panics; for static victim programs whose text
// is compiled into the binary and covered by tests.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

type pendingData struct {
	name  string
	size  uint64
	align uint64
	line  int
}

type assembler struct {
	prog   *Program
	consts map[string]int64
	labels map[string]int
	data   []pendingData
	inits  []struct {
		sym   string
		bytes []byte
		line  int
	}
	entryLabel string
	entryLine  int
}

func (a *assembler) run(src string) error {
	lines := strings.Split(src, "\n")
	// Pass 1: directives, labels, raw instruction parse (targets as labels).
	for i, raw := range lines {
		line := i + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			if err := a.directive(text, line); err != nil {
				return err
			}
			continue
		}
		for {
			colon := strings.Index(text, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(text[:colon])
			if !isIdent(label) {
				return &asmError{line, fmt.Sprintf("invalid label %q", label)}
			}
			if _, dup := a.labels[label]; dup {
				return &asmError{line, fmt.Sprintf("duplicate label %q", label)}
			}
			a.labels[label] = len(a.prog.Instrs)
			text = strings.TrimSpace(text[colon+1:])
			if text == "" {
				break
			}
		}
		if text == "" {
			continue
		}
		in, err := a.parseInstr(text, line)
		if err != nil {
			return err
		}
		a.prog.Instrs = append(a.prog.Instrs, in)
	}

	if err := a.layoutData(); err != nil {
		return err
	}
	if err := a.applyInits(); err != nil {
		return err
	}

	// Pass 2: resolve labels and data symbols.
	for idx := range a.prog.Instrs {
		in := &a.prog.Instrs[idx]
		if in.Op.IsJump() {
			tgt, ok := a.labels[in.Label]
			if !ok {
				return &asmError{in.Line, fmt.Sprintf("undefined label %q", in.Label)}
			}
			in.Target = tgt
		}
		for _, opnd := range []*Operand{&in.Dst, &in.Src} {
			if opnd.Kind != KindMem || opnd.Mem.Symbol == "" {
				continue
			}
			sym, ok := a.prog.Symbols[opnd.Mem.Symbol]
			if !ok {
				return &asmError{in.Line, fmt.Sprintf("undefined data symbol %q", opnd.Mem.Symbol)}
			}
			opnd.Mem.Disp += int64(sym.Addr)
			opnd.Mem.SymAddr = int64(sym.Addr)
		}
	}

	if a.entryLabel != "" {
		e, ok := a.labels[a.entryLabel]
		if !ok {
			return &asmError{a.entryLine, fmt.Sprintf("undefined entry label %q", a.entryLabel)}
		}
		a.prog.Entry = e
	}
	if len(a.prog.Instrs) == 0 {
		return &asmError{1, "program has no instructions"}
	}
	return nil
}

func (a *assembler) layoutData() error {
	addr := a.prog.DataBase
	for _, d := range a.data {
		if d.align > 1 {
			addr = (addr + d.align - 1) &^ (d.align - 1)
		}
		a.prog.Symbols[d.name] = Symbol{Name: d.name, Addr: addr, Size: d.size}
		addr += d.size
	}
	a.prog.DataSize = addr - a.prog.DataBase
	return nil
}

func (a *assembler) applyInits() error {
	for _, init := range a.inits {
		sym, ok := a.prog.Symbols[init.sym]
		if !ok {
			return &asmError{init.line, fmt.Sprintf("cannot .init undefined symbol %q", init.sym)}
		}
		if uint64(len(init.bytes)) > sym.Size {
			return &asmError{init.line, fmt.Sprintf(".init data (%d bytes) exceeds symbol %q size %d", len(init.bytes), init.sym, sym.Size)}
		}
		a.prog.Init = append(a.prog.Init, DataInit{Addr: sym.Addr, Bytes: init.bytes})
	}
	return nil
}

func (a *assembler) directive(text string, line int) error {
	fields := strings.Fields(text)
	switch fields[0] {
	case ".base":
		if len(fields) != 2 {
			return &asmError{line, ".base needs one address"}
		}
		v, err := a.parseInt(fields[1], line)
		if err != nil {
			return err
		}
		a.prog.DataBase = uint64(v)
	case ".entry":
		if len(fields) != 2 {
			return &asmError{line, ".entry needs one label"}
		}
		a.entryLabel, a.entryLine = fields[1], line
	case ".const":
		if len(fields) != 3 {
			return &asmError{line, ".const needs a name and a value"}
		}
		v, err := a.parseInt(fields[2], line)
		if err != nil {
			return err
		}
		a.consts[fields[1]] = v
	case ".data":
		if len(fields) < 3 {
			return &asmError{line, ".data needs a name and a size"}
		}
		size, err := a.parseInt(fields[2], line)
		if err != nil {
			return err
		}
		if size <= 0 {
			return &asmError{line, ".data size must be positive"}
		}
		d := pendingData{name: fields[1], size: uint64(size), align: 1, line: line}
		for _, extra := range fields[3:] {
			val, found := strings.CutPrefix(extra, "align=")
			if !found {
				return &asmError{line, fmt.Sprintf("unknown .data option %q", extra)}
			}
			al, err := a.parseInt(val, line)
			if err != nil {
				return err
			}
			if al <= 0 || al&(al-1) != 0 {
				return &asmError{line, "alignment must be a power of two"}
			}
			d.align = uint64(al)
		}
		if !isIdent(d.name) {
			return &asmError{line, fmt.Sprintf("invalid symbol name %q", d.name)}
		}
		for _, prev := range a.data {
			if prev.name == d.name {
				return &asmError{line, fmt.Sprintf("duplicate .data symbol %q", d.name)}
			}
		}
		a.data = append(a.data, d)
	case ".init":
		rest := strings.TrimSpace(strings.TrimPrefix(text, ".init"))
		name, val, ok := strings.Cut(rest, " ")
		if !ok {
			return &asmError{line, ".init needs a symbol and a value"}
		}
		val = strings.TrimSpace(val)
		var data []byte
		if strings.HasPrefix(val, `"`) {
			s, err := strconv.Unquote(val)
			if err != nil {
				return &asmError{line, fmt.Sprintf("bad string literal: %v", err)}
			}
			data = []byte(s)
		} else {
			for _, tok := range strings.Fields(val) {
				v, err := a.parseInt(tok, line)
				if err != nil {
					return err
				}
				if v < 0 || v > 255 {
					return &asmError{line, fmt.Sprintf("byte value %d out of range", v)}
				}
				data = append(data, byte(v))
			}
		}
		a.inits = append(a.inits, struct {
			sym   string
			bytes []byte
			line  int
		}{name, data, line})
	default:
		return &asmError{line, fmt.Sprintf("unknown directive %q", fields[0])}
	}
	return nil
}

func (a *assembler) parseInstr(text string, line int) (Instr, error) {
	mnem := text
	rest := ""
	if sp := strings.IndexAny(text, " \t"); sp >= 0 {
		mnem, rest = text[:sp], strings.TrimSpace(text[sp+1:])
	}
	width := uint8(8)
	if dot := strings.Index(mnem, "."); dot >= 0 {
		w, err := strconv.Atoi(mnem[dot+1:])
		if err != nil || (w != 1 && w != 2 && w != 4 && w != 8) {
			return Instr{}, &asmError{line, fmt.Sprintf("bad width suffix in %q", mnem)}
		}
		width = uint8(w)
		mnem = mnem[:dot]
	}
	op, ok := opByName(mnem)
	if !ok {
		return Instr{}, &asmError{line, fmt.Sprintf("unknown mnemonic %q", mnem)}
	}
	in := Instr{Op: op, Width: width, Line: line}

	operands, err := splitOperands(rest)
	if err != nil {
		return Instr{}, &asmError{line, err.Error()}
	}
	parse := func(s string) (Operand, error) {
		o, err := a.parseOperand(s, line)
		if err != nil {
			return Operand{}, err
		}
		return o, nil
	}

	switch op {
	case OpNop, OpRet, OpSyscall, OpHalt:
		if len(operands) != 0 {
			return Instr{}, &asmError{line, mnem + " takes no operands"}
		}
	case OpJmp, OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpJb, OpJbe, OpJa, OpJae, OpCall:
		if len(operands) != 1 || !isIdent(operands[0]) {
			return Instr{}, &asmError{line, mnem + " needs one label operand"}
		}
		in.Label = operands[0]
	case OpNot, OpNeg:
		if len(operands) != 1 {
			return Instr{}, &asmError{line, mnem + " needs one register operand"}
		}
		o, err := parse(operands[0])
		if err != nil {
			return Instr{}, err
		}
		if o.Kind != KindReg {
			return Instr{}, &asmError{line, mnem + " operand must be a register"}
		}
		in.Dst = o
	case OpPush:
		if len(operands) != 1 {
			return Instr{}, &asmError{line, "push needs one operand"}
		}
		o, err := parse(operands[0])
		if err != nil {
			return Instr{}, err
		}
		if o.Kind == KindMem {
			return Instr{}, &asmError{line, "push memory operand not supported"}
		}
		in.Src = o
	case OpPop:
		if len(operands) != 1 {
			return Instr{}, &asmError{line, "pop needs one register operand"}
		}
		o, err := parse(operands[0])
		if err != nil {
			return Instr{}, err
		}
		if o.Kind != KindReg {
			return Instr{}, &asmError{line, "pop operand must be a register"}
		}
		in.Dst = o
	default: // two-operand forms
		if len(operands) != 2 {
			return Instr{}, &asmError{line, mnem + " needs two operands"}
		}
		dst, err := parse(operands[0])
		if err != nil {
			return Instr{}, err
		}
		src, err := parse(operands[1])
		if err != nil {
			return Instr{}, err
		}
		in.Dst, in.Src = dst, src
		if err := checkShape(op, in, line); err != nil {
			return Instr{}, err
		}
	}
	return in, nil
}

func checkShape(op Op, in Instr, line int) error {
	switch op {
	case OpLd, OpLea:
		if in.Dst.Kind != KindReg || in.Src.Kind != KindMem {
			return &asmError{line, op.String() + " needs: reg, [mem]"}
		}
	case OpSt:
		if in.Dst.Kind != KindMem || in.Src.Kind == KindMem {
			return &asmError{line, "st needs: [mem], reg|imm"}
		}
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		// Read-modify-write memory destinations are allowed, reproducing
		// the paper's `add $1, (%rsi,%rcx,4)` ftab gadget (Fig 4).
		if in.Dst.Kind == KindMem {
			if in.Src.Kind == KindMem {
				return &asmError{line, op.String() + " cannot have two memory operands"}
			}
			return nil
		}
		if in.Dst.Kind != KindReg || in.Src.Kind == KindMem {
			return &asmError{line, op.String() + " needs: reg, reg|imm or [mem], reg|imm"}
		}
	default:
		if in.Dst.Kind != KindReg || in.Src.Kind == KindMem {
			return &asmError{line, op.String() + " needs: reg, reg|imm"}
		}
	}
	return nil
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, errors.New("unbalanced ']'")
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, errors.New("unbalanced '['")
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

func (a *assembler) parseOperand(s string, line int) (Operand, error) {
	if s == "" {
		return Operand{}, &asmError{line, "empty operand"}
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return Operand{}, &asmError{line, fmt.Sprintf("bad memory operand %q", s)}
		}
		m, err := a.parseMem(s[1:len(s)-1], line)
		if err != nil {
			return Operand{}, err
		}
		return MemOp(m), nil
	}
	if r, ok := regByName(s); ok {
		return RegOp(r), nil
	}
	v, err := a.parseInt(s, line)
	if err != nil {
		return Operand{}, err
	}
	return ImmOp(v), nil
}

func (a *assembler) parseMem(expr string, line int) (MemRef, error) {
	var m MemRef
	m.Scale = 1
	terms := splitTerms(expr)
	if len(terms) == 0 {
		return m, &asmError{line, "empty memory expression"}
	}
	for _, t := range terms {
		body := strings.TrimSpace(t.body)
		if body == "" {
			return m, &asmError{line, fmt.Sprintf("bad memory expression %q", expr)}
		}
		if star := strings.Index(body, "*"); star >= 0 {
			rname := strings.TrimSpace(body[:star])
			sstr := strings.TrimSpace(body[star+1:])
			r, ok := regByName(rname)
			if !ok {
				return m, &asmError{line, fmt.Sprintf("bad index register %q", rname)}
			}
			sc, err := a.parseInt(sstr, line)
			if err != nil {
				return m, err
			}
			if sc != 1 && sc != 2 && sc != 4 && sc != 8 {
				return m, &asmError{line, fmt.Sprintf("scale must be 1/2/4/8, got %d", sc)}
			}
			if t.neg {
				return m, &asmError{line, "negative index term not supported"}
			}
			if m.HasIndex {
				return m, &asmError{line, "multiple index terms"}
			}
			m.Index, m.HasIndex, m.Scale = r, true, uint8(sc)
			continue
		}
		if r, ok := regByName(body); ok {
			if t.neg {
				return m, &asmError{line, "negative register term not supported"}
			}
			switch {
			case !m.HasBase:
				m.Base, m.HasBase = r, true
			case !m.HasIndex:
				m.Index, m.HasIndex, m.Scale = r, true, 1
			default:
				return m, &asmError{line, "too many register terms"}
			}
			continue
		}
		if isIdent(body) {
			if m.Symbol != "" {
				return m, &asmError{line, "multiple symbols in memory expression"}
			}
			if t.neg {
				return m, &asmError{line, "negative symbol term not supported"}
			}
			m.Symbol = body
			continue
		}
		v, err := a.parseInt(body, line)
		if err != nil {
			return m, err
		}
		if t.neg {
			v = -v
		}
		m.Disp += v
	}
	return m, nil
}

type term struct {
	body string
	neg  bool
}

func splitTerms(expr string) []term {
	var out []term
	cur := strings.Builder{}
	neg := false
	flush := func(nextNeg bool) {
		if s := strings.TrimSpace(cur.String()); s != "" {
			out = append(out, term{s, neg})
		}
		cur.Reset()
		neg = nextNeg
	}
	for i := 0; i < len(expr); i++ {
		switch expr[i] {
		case '+':
			flush(false)
		case '-':
			if strings.TrimSpace(cur.String()) == "" && len(out) == 0 {
				neg = true // leading minus
			} else {
				flush(true)
			}
		default:
			cur.WriteByte(expr[i])
		}
	}
	flush(false)
	return out
}

func (a *assembler) parseInt(s string, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if v, ok := a.consts[s]; ok {
		return v, nil
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, &asmError{line, fmt.Sprintf("bad char literal %s", s)}
		}
		return int64(body[0]), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, &asmError{line, fmt.Sprintf("bad integer %q", s)}
	}
	out := int64(v)
	if neg {
		out = -out
	}
	return out, nil
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Reject register names and keywords.
	if _, isReg := regByName(s); isReg {
		return false
	}
	return true
}

func opByName(s string) (Op, bool) {
	for op := Op(0); op < numOps; op++ {
		if opNames[op] == s {
			return op, true
		}
	}
	return 0, false
}

func regByName(s string) (Reg, bool) {
	if s == "sp" {
		return SP, true
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return Reg(n), true
		}
	}
	return 0, false
}
