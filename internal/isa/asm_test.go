package isa

import (
	"errors"
	"strings"
	"testing"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
; simple counting loop
.entry main
.data buf 256 align=64
main:
  mov r1, 0
loop:
  st.1 [buf + r1], r1
  add r1, 1
  cmp r1, 0x10
  jne loop
  halt
`
	p, err := Assemble("basic", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Instrs) != 6 {
		t.Fatalf("got %d instructions, want 6", len(p.Instrs))
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0", p.Entry)
	}
	jne := p.Instrs[4]
	if jne.Op != OpJne || jne.Target != 1 {
		t.Errorf("jne target = %d, want 1", jne.Target)
	}
	sym := p.MustSymbol("buf")
	if sym.Addr%64 != 0 {
		t.Errorf("buf addr %#x not 64-aligned", sym.Addr)
	}
	if sym.Size != 256 {
		t.Errorf("buf size = %d, want 256", sym.Size)
	}
	st := p.Instrs[1]
	if st.Op != OpSt || st.Width != 1 {
		t.Errorf("st parsed as %+v", st)
	}
	if st.Dst.Mem.Disp != int64(sym.Addr) {
		t.Errorf("symbol displacement = %#x, want %#x", st.Dst.Mem.Disp, sym.Addr)
	}
}

func TestAssembleDataLayout(t *testing.T) {
	src := `
.base 0x20000
.data a 10
.data b 100 align=64
.data c 8
main:
  halt
`
	p, err := Assemble("layout", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	a := p.MustSymbol("a")
	b := p.MustSymbol("b")
	c := p.MustSymbol("c")
	if a.Addr != 0x20000 {
		t.Errorf("a at %#x, want 0x20000", a.Addr)
	}
	if b.Addr != 0x20040 { // 0x2000a rounded up to 64
		t.Errorf("b at %#x, want 0x20040", b.Addr)
	}
	if c.Addr != b.Addr+100 {
		t.Errorf("c at %#x, want %#x", c.Addr, b.Addr+100)
	}
	if p.DataSize != c.Addr+8-0x20000 {
		t.Errorf("DataSize = %d", p.DataSize)
	}
}

func TestAssembleConstAndChar(t *testing.T) {
	src := `
.const MASK 0x7fff
main:
  mov r1, MASK
  mov r2, 'a'
  halt
`
	p, err := Assemble("const", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Instrs[0].Src.Imm != 0x7fff {
		t.Errorf("const = %#x, want 0x7fff", p.Instrs[0].Src.Imm)
	}
	if p.Instrs[1].Src.Imm != 'a' {
		t.Errorf("char = %d, want %d", p.Instrs[1].Src.Imm, 'a')
	}
}

func TestAssembleInit(t *testing.T) {
	src := `
.data msg 16
.init msg "hi\n"
.data raw 4
.init raw 1 2 0xff
main:
  halt
`
	p, err := Assemble("init", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Init) != 2 {
		t.Fatalf("got %d inits, want 2", len(p.Init))
	}
	if string(p.Init[0].Bytes) != "hi\n" {
		t.Errorf("string init = %q", p.Init[0].Bytes)
	}
	if p.Init[1].Bytes[2] != 0xff {
		t.Errorf("raw init = %v", p.Init[1].Bytes)
	}
}

func TestAssembleMemOperandForms(t *testing.T) {
	src := `
.data tab 64
main:
  ld.2 r1, [tab + r2*2 + 8]
  ld.4 r3, [r4 + r5*4]
  ld.8 r6, [r7]
  ld.1 r8, [tab]
  st.8 [r1 + 16], r2
  halt
`
	p, err := Assemble("mem", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := p.Instrs[0].Src.Mem
	if !m.HasIndex || m.Index != R2 || m.Scale != 2 {
		t.Errorf("index parse: %+v", m)
	}
	tab := p.MustSymbol("tab")
	if m.Disp != int64(tab.Addr)+8 {
		t.Errorf("disp = %#x, want %#x", m.Disp, tab.Addr+8)
	}
	m2 := p.Instrs[1].Src.Mem
	if !m2.HasBase || m2.Base != R4 || m2.Index != R5 || m2.Scale != 4 {
		t.Errorf("base+index parse: %+v", m2)
	}
	m4 := p.Instrs[4].Dst.Mem
	if !m4.HasBase || m4.Base != R1 || m4.Disp != 16 {
		t.Errorf("base+disp parse: %+v", m4)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "main:\n frob r1, r2\n"},
		{"undefined label", "main:\n jmp nowhere\n"},
		{"undefined symbol", "main:\n ld.1 r1, [nothing]\n halt\n"},
		{"bad width", "main:\n mov.3 r1, r2\n"},
		{"dup label", "a:\n nop\na:\n halt\n"},
		{"dup data", ".data x 8\n.data x 8\nmain:\n halt\n"},
		{"bad scale", ".data t 8\nmain:\n ld.1 r1, [t + r2*3]\n halt\n"},
		{"mem to mem", ".data t 8\nmain:\n st.1 [t], [t]\n"},
		{"imm dest", "main:\n add 5, r1\n"},
		{"empty program", "; nothing\n"},
		{"bad align", ".data t 8 align=3\nmain:\n halt\n"},
		{"init overflow", ".data t 2\n.init t \"toolong\"\nmain:\n halt\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("bad", tc.src)
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !errors.Is(err, ErrAssemble) {
				t.Errorf("error %v is not ErrAssemble", err)
			}
		})
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
.data tab 64 align=64
main:
  mov r1, 0
  ld.2 r2, [tab + r1*2]
  xor r2, r1
  shl.2 r2, 5
  and r2, 0x7fff
  st.2 [tab + r2*2], r1
  add r1, 1
  cmp r1, 32
  jl main
  push r1
  pop r2
  not r2
  halt
`
	p, err := Assemble("round", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	text := Disassemble(p)
	for _, want := range []string{"mov r1, 0", "ld.2 r2,", "jl main", "halt", "=>"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
	// Re-assembling the disassembly of reg/imm instructions should parse.
	for i, in := range p.Instrs {
		if in.Op.IsJump() {
			continue // labels render fine but need context
		}
		one := "main:\n  " + in.String() + "\n  halt\n"
		// Memory operands with symbols resolve to absolute displacements on
		// re-parse; just check the text parses.
		one = strings.ReplaceAll(one, "tab+", "")
		if _, err := Assemble("re", one); err != nil {
			t.Errorf("instr %d (%s) does not re-assemble: %v", i, in, err)
		}
	}
}

func TestSymbolAt(t *testing.T) {
	p := MustAssemble("symat", ".data a 16\n.data b 16\nmain:\n halt\n")
	a := p.MustSymbol("a")
	s, ok := p.SymbolAt(a.Addr + 5)
	if !ok || s.Name != "a" {
		t.Errorf("SymbolAt(a+5) = %v, %v", s, ok)
	}
	if _, ok := p.SymbolAt(0x1); ok {
		t.Error("SymbolAt(0x1) should miss")
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble("inline", "main: mov r1, 1\n halt\n")
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Instrs) != 2 {
		t.Fatalf("got %d instrs, want 2", len(p.Instrs))
	}
}

func TestNegativeDisp(t *testing.T) {
	p, err := Assemble("neg", "main:\n ld.8 r1, [r2 - 8]\n halt\n")
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Instrs[0].Src.Mem.Disp != -8 {
		t.Errorf("disp = %d, want -8", p.Instrs[0].Src.Mem.Disp)
	}
}
