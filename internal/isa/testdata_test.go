package isa_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/zipchannel/zipchannel/internal/isa"
)

// The shipped sample gadget (used in the taintchannel CLI's -file docs)
// must keep assembling.
func TestShippedSampleGadgetAssembles(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "toy_gadget.zasm")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	prog, err := isa.Assemble("toy_gadget", string(src))
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if _, ok := prog.Symbols["table"]; !ok {
		t.Error("sample should declare the table symbol")
	}
	if len(prog.Instrs) < 5 {
		t.Errorf("sample has only %d instructions", len(prog.Instrs))
	}
}
