package pagestore

import (
	"bytes"
	"errors"
	"testing"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
)

// FuzzPageRoundTrip drives the page encode/decode path with arbitrary
// page bodies and arbitrary corruption of the pooled compressed bytes:
// a clean page must round-trip exactly through every codec, and a
// corrupted compressed page must surface ErrCorrupt — never panic, and
// never return silently wrong bytes (the SHA-256 recorded at store time
// backstops decoders that happen to accept the damaged stream).
func FuzzPageRoundTrip(f *testing.F) {
	f.Add([]byte(""), uint8(0), uint16(0), uint8(0))
	f.Add([]byte("key=SUPERSECRET and the rest of the page"), uint8(1), uint16(3), uint8(0xff))
	f.Add(bytes.Repeat([]byte("abc"), 200), uint8(2), uint16(17), uint8(1))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00}, uint8(0), uint16(999), uint8(0x80))
	f.Fuzz(func(t *testing.T, data []byte, codecSel uint8, corruptAt uint16, corruptXor uint8) {
		names := codec.Names()
		name := names[int(codecSel)%len(names)]
		s := New(Config{PageSize: 1024, Codec: name})
		if len(data) > 1024 {
			data = data[:1024]
		}
		if _, err := s.Write("p", data); err != nil {
			t.Fatalf("Write(%s, %d bytes): %v", name, len(data), err)
		}
		got, _, err := s.Read("p")
		if err != nil {
			t.Fatalf("clean Read(%s): %v", name, err)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("round trip mismatch (%s)", name)
		}

		// Corrupt the pooled compressed bytes directly and re-read: the
		// store must detect it (or, if the flip lands on a byte the
		// decoder normalizes away, still produce the exact plaintext).
		p := s.pages["p"]
		if len(p.comp) == 0 {
			return
		}
		idx := int(corruptAt) % len(p.comp)
		flip := corruptXor
		if flip == 0 {
			flip = 1
		}
		p.comp[idx] ^= flip
		got2, _, err := s.Read("p")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt Read(%s): err = %v, want ErrCorrupt", name, err)
			}
			return
		}
		if !bytes.Equal(got2[:len(data)], data) {
			t.Fatalf("corrupt page read back silently wrong bytes (%s)", name)
		}
	})
}
