// Package pagestore is a simulated compressed-RAM page store — the
// ZRAM/zswap-shaped tier the memory-compression timing attacks of
// Schwarzl et al. (PAPERS.md) target. Pages are fixed-size, stored
// compressed in a byte-budgeted pool, and every store/load is charged a
// sim-step cost derived from the compressor's actual matcher work (see
// cost.go), so "how long did storing this page take" carries the same
// data-dependent signal a wall-clock timer sees against real kernel
// memory compression.
//
// The threat model is co-location: a page may hold bytes from more than
// one tenant (Plant), the attacker can rewrite only its own region and
// read back only its own region, but the page is compressed as one
// unit — so the *time* to store it depends on cross-tenant redundancy
// between the attacker's bytes and the secret. internal/zipchannel
// turns that into byte-by-byte secret recovery.
//
// Determinism contract (matching the rest of the repo): identical call
// sequences produce identical pages, identical step counts, and
// identical metric snapshots; fault points (pagestore.store,
// pagestore.load, pagestore.writeback) are invisible when disarmed.
package pagestore

import (
	"container/list"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// Defaults.
const (
	DefaultPageSize  = 4096
	DefaultPoolBytes = 1 << 20
	DefaultCodec     = "lz77"
)

// Sentinel errors.
var (
	// ErrNotFound reports a load of a page never stored.
	ErrNotFound = errors.New("pagestore: page not found")
	// ErrTooLarge reports a write larger than the page (or, for a
	// planted page, larger than the attacker-owned region).
	ErrTooLarge = errors.New("pagestore: data exceeds page capacity")
	// ErrCorrupt reports that a page failed integrity verification on
	// load — the compressed bytes no longer decompress to the plaintext
	// whose SHA-256 was recorded at store time.
	ErrCorrupt = errors.New("pagestore: corrupt page")
	// ErrUnknownCodec reports a codec name outside the registry.
	ErrUnknownCodec = errors.New("pagestore: unknown codec")
	// ErrBadPlant reports an invalid Plant layout.
	ErrBadPlant = errors.New("pagestore: invalid plant layout")
)

// Config configures a Store. Zero values take the defaults above.
type Config struct {
	// PageSize is the fixed plaintext page size in bytes.
	PageSize int
	// PoolBytes is the compressed pool's byte budget; pages beyond it
	// are written back (LRU) to the backing tier.
	PoolBytes int64
	// Codec names the registry codec new pages compress with.
	Codec string
	// Obs, if non-nil, receives the store's metrics under pagestore.*.
	Obs *obs.Registry
	// Faults, if non-nil, provides the pagestore.store / pagestore.load
	// / pagestore.writeback injection points.
	Faults *fault.Registry
}

// PageInfo describes one page after a store or load — notably Steps,
// the sim-step cost of the operation, which is the quantity the
// compression-time oracle observes remotely.
type PageInfo struct {
	Codec         string
	PlainLen      int // always the page size
	CompressedLen int
	Steps         int64
	Ratio         float64 // PlainLen / CompressedLen
	Dirty         bool
	WrittenBack   bool
}

// page is one page-table entry.
type page struct {
	id          string
	codec       string
	comp        []byte // compressed bytes; nil while written back
	sum         [sha256.Size]byte
	compLen     int
	dirty       bool // modified since last writeback
	writtenBack bool // compressed bytes live in backing, not the pool
	storeSteps  int64
	loadSteps   int64
	// Co-location (Plant): attacker-writable prefix length and the
	// secret bytes that share the page. attackerLen == 0 means the
	// whole page is the caller's.
	attackerLen int
	secret      []byte
	elem        *list.Element // position in the pool LRU; nil when written back
}

// Store is the page store. All methods are safe for concurrent use;
// operations are serialized, so a fixed sequence of calls is
// deterministic regardless of the HTTP-level concurrency above it.
type Store struct {
	mu       sync.Mutex
	pageSize int
	poolMax  int64
	codec    string

	pages   map[string]*page
	lru     *list.List // front = most recent; values are *page
	poolUse int64
	backing map[string][]byte // written-back compressed pages
	steps   int64             // total sim steps charged

	storeFault     *fault.Point
	loadFault      *fault.Point
	writebackFault *fault.Point

	stores      *obs.Counter
	loads       *obs.Counter
	storeSteps  *obs.Counter
	loadSteps   *obs.Counter
	writebacks  *obs.Counter
	faultIns    *obs.Counter
	corrupt     *obs.Counter
	wbFailures  *obs.Counter
	poolBytesG  *obs.Gauge
	poolPagesG  *obs.Gauge
	totalPagesG *obs.Gauge
	ratioG      *obs.Gauge
	plainTotal  int64
	compTotal   int64
}

// New creates a Store. An unknown cfg.Codec is reported on first use,
// not here, matching the registry's lazy validation elsewhere.
func New(cfg Config) *Store {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.PoolBytes <= 0 {
		cfg.PoolBytes = DefaultPoolBytes
	}
	if cfg.Codec == "" {
		cfg.Codec = DefaultCodec
	}
	s := &Store{
		pageSize: cfg.PageSize,
		poolMax:  cfg.PoolBytes,
		codec:    cfg.Codec,
		pages:    map[string]*page{},
		lru:      list.New(),
		backing:  map[string][]byte{},

		storeFault:     cfg.Faults.Point("pagestore.store"),
		loadFault:      cfg.Faults.Point("pagestore.load"),
		writebackFault: cfg.Faults.Point("pagestore.writeback"),

		stores:      cfg.Obs.Counter("pagestore.stores"),
		loads:       cfg.Obs.Counter("pagestore.loads"),
		storeSteps:  cfg.Obs.Counter("pagestore.store_steps"),
		loadSteps:   cfg.Obs.Counter("pagestore.load_steps"),
		writebacks:  cfg.Obs.Counter("pagestore.writebacks"),
		faultIns:    cfg.Obs.Counter("pagestore.faultins"),
		corrupt:     cfg.Obs.Counter("pagestore.corrupt_detected"),
		wbFailures:  cfg.Obs.Counter("pagestore.writeback_failures"),
		poolBytesG:  cfg.Obs.Gauge("pagestore.pool_bytes"),
		poolPagesG:  cfg.Obs.Gauge("pagestore.pool_pages"),
		totalPagesG: cfg.Obs.Gauge("pagestore.pages"),
		ratioG:      cfg.Obs.Gauge("pagestore.ratio"),
	}
	return s
}

// PageSize returns the fixed plaintext page size.
func (s *Store) PageSize() int { return s.pageSize }

// Steps returns the total sim steps charged across all operations —
// the store's deterministic clock, used by replay checks.
func (s *Store) Steps() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// Pages returns the number of page-table entries.
func (s *Store) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// PoolBytes returns the compressed pool's current occupancy.
func (s *Store) PoolBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poolUse
}

// Write stores data into the page, creating it on first use. For a
// planted page only the attacker-owned prefix is writable: data
// replaces that region, the co-located secret and padding are
// preserved, and the whole page is recompressed as one unit — the
// co-location gadget. Returns the page's post-store info; info.Steps is
// the store's cost, the remote oracle's reading.
func (s *Store) Write(id string, data []byte) (PageInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	p := s.pages[id]
	capacity := s.pageSize
	if p != nil && p.attackerLen > 0 {
		capacity = p.attackerLen
	}
	if len(data) > capacity {
		return PageInfo{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), capacity)
	}

	in := s.storeFault.Hit()
	switch in.Kind {
	case fault.KindError:
		return PageInfo{}, in.Error()
	case fault.KindPanic:
		panic(fmt.Sprintf("pagestore: injected panic at %s", in.Point))
	case fault.KindLatency:
		s.steps += int64(in.Param)
	}

	if p == nil {
		p = &page{id: id, codec: s.codec}
		s.pages[id] = p
	}

	plain := s.assemble(p, data)
	comp, steps, err := compressPage(p.codec, plain)
	if err != nil {
		return PageInfo{}, err
	}
	p.sum = sha256.Sum256(plain)
	// A store-time corruption damages the compressed bytes as they land
	// in the pool; the recorded sum is of the true plaintext, so the
	// damage is caught on the next load.
	if in.Kind == fault.KindCorrupt {
		comp = in.CorruptCopy(comp)
	}
	s.replaceComp(p, comp)
	p.dirty = true
	p.storeSteps = steps
	s.steps += steps
	s.plainTotal += int64(s.pageSize)
	s.compTotal += int64(len(comp))

	s.stores.Inc()
	s.storeSteps.Add(uint64(steps))
	s.evictOver()
	s.refreshGauges()
	return s.infoLocked(p, steps), nil
}

// Read returns the page's caller-visible bytes: the full page for a
// normal page, only the attacker-owned prefix for a planted one (the
// co-located secret never crosses the API). The page is decompressed,
// verified against its stored SHA-256, and faulted back into the pool
// if it had been written back.
func (s *Store) Read(id string) ([]byte, PageInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	p := s.pages[id]
	if p == nil {
		return nil, PageInfo{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}

	comp := p.comp
	if p.writtenBack {
		comp = s.backing[id]
		s.faultIns.Inc()
	}

	extra := int64(0)
	if in := s.loadFault.Hit(); in.Fired() {
		switch in.Kind {
		case fault.KindError:
			return nil, PageInfo{}, in.Error()
		case fault.KindPanic:
			panic(fmt.Sprintf("pagestore: injected panic at %s", in.Point))
		case fault.KindLatency:
			extra = int64(in.Param)
		case fault.KindCorrupt:
			// Transient read-path corruption (a bad DMA, a bit flip on
			// the swap bus): this read sees damaged bytes, the stored
			// copy is intact, so a retry can succeed.
			comp = in.CorruptCopy(comp)
		}
	}

	plain, steps, err := decompressPage(p.codec, comp)
	if err == nil && sha256.Sum256(plain) != p.sum {
		err = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			s.corrupt.Inc()
		}
		return nil, PageInfo{}, err
	}

	// Fault the page back into the pool and refresh recency.
	if p.writtenBack {
		p.writtenBack = false
		delete(s.backing, id)
		s.replaceComp(p, comp)
		p.dirty = false // pool copy matches what backing held
		s.evictOver()
	} else if p.elem != nil {
		s.lru.MoveToFront(p.elem)
	}

	steps += extra
	p.loadSteps = steps
	s.steps += steps
	s.loads.Inc()
	s.loadSteps.Add(uint64(steps))
	s.refreshGauges()

	out := plain
	if p.attackerLen > 0 {
		out = plain[:p.attackerLen]
	}
	return out, s.infoLocked(p, steps), nil
}

// Plant creates a co-located page: the first attackerLen bytes are the
// attacker-writable region (initially zero), immediately followed by
// the victim's secret, then zero padding. This is the deliberately
// adversarial page layout of the Schwarzl et al. attacks — two tenants'
// bytes inside one compression unit.
func (s *Store) Plant(id string, attackerLen int, secret []byte) (PageInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if attackerLen <= 0 || attackerLen+len(secret) > s.pageSize {
		return PageInfo{}, fmt.Errorf("%w: attackerLen %d + secret %d vs page %d",
			ErrBadPlant, attackerLen, len(secret), s.pageSize)
	}
	if _, exists := s.pages[id]; exists {
		return PageInfo{}, fmt.Errorf("%w: page %q already exists", ErrBadPlant, id)
	}
	p := &page{
		id:          id,
		codec:       s.codec,
		attackerLen: attackerLen,
		secret:      append([]byte(nil), secret...),
	}
	s.pages[id] = p

	plain := s.assemble(p, nil)
	comp, steps, err := compressPage(p.codec, plain)
	if err != nil {
		delete(s.pages, id)
		return PageInfo{}, err
	}
	p.sum = sha256.Sum256(plain)
	s.replaceComp(p, comp)
	p.dirty = true
	p.storeSteps = steps
	s.steps += steps
	s.plainTotal += int64(s.pageSize)
	s.compTotal += int64(len(comp))
	s.stores.Inc()
	s.storeSteps.Add(uint64(steps))
	s.evictOver()
	s.refreshGauges()
	return s.infoLocked(p, steps), nil
}

// Info returns the page's current info without touching recency or
// charging steps (Steps is the last store's cost).
func (s *Store) Info(id string) (PageInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pages[id]
	if p == nil {
		return PageInfo{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s.infoLocked(p, p.storeSteps), nil
}

// assemble builds the page plaintext for a write of data into p.
// Normal page: data then zero padding. Planted page: data zero-padded
// to the attacker region, then the secret, then zero padding.
func (s *Store) assemble(p *page, data []byte) []byte {
	plain := make([]byte, s.pageSize)
	copy(plain, data)
	if p.attackerLen > 0 {
		copy(plain[p.attackerLen:], p.secret)
	}
	return plain
}

// replaceComp swaps p's pooled compressed bytes, maintaining pool
// accounting and LRU position (front = most recent).
func (s *Store) replaceComp(p *page, comp []byte) {
	if p.elem != nil {
		s.poolUse -= int64(len(p.comp))
		s.lru.Remove(p.elem)
		p.elem = nil
	}
	p.comp = comp
	p.compLen = len(comp)
	p.writtenBack = false
	p.elem = s.lru.PushFront(p)
	s.poolUse += int64(len(comp))
}

// evictOver writes back least-recently-used pages until the pool fits
// its budget. A writeback fault of KindError keeps the page pooled (the
// backing tier refused the write — retried on a later eviction pass);
// KindCorrupt damages the backing copy, caught on fault-in by the
// checksum; KindLatency charges extra steps.
func (s *Store) evictOver() {
	for s.poolUse > s.poolMax && s.lru.Len() > 1 {
		elem := s.lru.Back()
		p := elem.Value.(*page)
		if in := s.writebackFault.Hit(); in.Fired() {
			switch in.Kind {
			case fault.KindError:
				s.wbFailures.Inc()
				// Refresh so the next eviction pass tries a different
				// victim; without this a permanently failing backing
				// tier would spin on one page.
				s.lru.MoveToFront(elem)
				return
			case fault.KindLatency:
				s.steps += int64(in.Param)
			case fault.KindCorrupt:
				s.backing[p.id] = in.CorruptCopy(p.comp)
				s.finishWriteback(p, elem)
				continue
			}
		}
		s.backing[p.id] = p.comp
		s.finishWriteback(p, elem)
	}
}

func (s *Store) finishWriteback(p *page, elem *list.Element) {
	s.poolUse -= int64(len(p.comp))
	s.lru.Remove(elem)
	p.elem = nil
	p.comp = nil
	p.writtenBack = true
	p.dirty = false
	s.writebacks.Inc()
}

func (s *Store) infoLocked(p *page, steps int64) PageInfo {
	info := PageInfo{
		Codec:         p.codec,
		PlainLen:      s.pageSize,
		CompressedLen: p.compLen,
		Steps:         steps,
		Dirty:         p.dirty,
		WrittenBack:   p.writtenBack,
	}
	if p.compLen > 0 {
		info.Ratio = float64(s.pageSize) / float64(p.compLen)
	}
	return info
}

func (s *Store) refreshGauges() {
	s.poolBytesG.Set(float64(s.poolUse))
	s.poolPagesG.Set(float64(s.lru.Len()))
	s.totalPagesG.Set(float64(len(s.pages)))
	if s.compTotal > 0 {
		s.ratioG.Set(float64(s.plainTotal) / float64(s.compTotal))
	}
}
