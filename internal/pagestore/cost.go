package pagestore

import (
	"fmt"

	"github.com/zipchannel/zipchannel/internal/compress/bwt"
	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/compress/lz77"
	"github.com/zipchannel/zipchannel/internal/compress/lzw"
)

// The cost model: sim steps charged per store/load, derived from the
// compressors' *actual* work rather than a synthetic per-byte constant.
// This is the load-bearing property of the subsystem — the
// compression-time side channel (Schwarzl et al., PAPERS.md) only
// exists because the time a real compressor spends depends on the data
// it compresses, and here that dependence is inherited directly from
// the matcher: every step below is charged because a specific piece of
// real control flow ran (a hash-chain dereference, a match extension, a
// token encode), so the oracle an attacker reads is the same shape a
// wall-clock timer would see against zlib-backed ZRAM.
//
// Weights are small integers chosen to mirror the relative cost of the
// underlying operations in a real implementation:
//
//   - stepsPerInsert (1): INSERT_STRING is two array stores.
//   - stepsPerFollow (2): each chain candidate is a dependent pointer
//     chase plus a bounds/window check — the classic cache-miss-prone
//     walk of deflate's longest_match.
//   - one step per 8 compared bytes: match extension is word-at-a-time.
//   - stepsPerToken (24): per-symbol entropy coding (two Huffman table
//     lookups, extra-bit computation, bit-writer pushes) dominates the
//     emit path; this is also what makes the CRIME-style oracle robust,
//     because a one-token difference survives byte-granularity output
//     rounding that can hide a saved literal.
//   - stepsPerOutByte (8): bit packing and buffer writes are per output
//     byte, making store time grow with incompressibility.
//
// lzw charges its dictionary probes (the §IV-C hash walk) and bwt its
// suffix-sort Work units (the §IV-D main/fallback sort effort), so all
// three codecs expose a real, data-dependent timing surface.
const (
	stepsPerInsert  = 1
	stepsPerFollow  = 2
	stepsPerCmpWord = 1  // per 8 compared bytes
	stepsPerToken   = 24
	stepsPerOutByte = 8
	stepsPerProbe   = 2 // lzw dictionary probe: hash + table load
	stepsPerWork    = 1 // bwt sort work unit

	// Load cost: decompression has no matcher — it is a linear copy
	// loop, 2 steps per compressed input byte (bit-reader pulls) and 4
	// per output byte (Huffman decode + append).
	loadStepsPerCompByte  = 2
	loadStepsPerPlainByte = 4
)

// probeCounter tallies lzw dictionary probes.
type probeCounter struct{ n int64 }

func (p *probeCounter) Probe(uint64, bool) { p.n++ }

// workCounter tallies bwt sort work units.
type workCounter struct {
	bwt.BaseTracer
	units int64
}

func (w *workCounter) Work(units int) { w.units += int64(units) }

// compressPage compresses one plaintext page with the named codec's
// default options (so the bytes are identical to what codec.Lookup
// produces) while accounting the work actually performed, and returns
// the compressed bytes plus the sim-step cost of the store.
func compressPage(name string, src []byte) (comp []byte, steps int64, err error) {
	switch name {
	case "lz77":
		var st lz77.MatchStats
		comp, err = lz77.Compress(src, lz77.Options{Lazy: true, Stats: &st})
		if err != nil {
			return nil, 0, err
		}
		steps = st.Inserts*stepsPerInsert +
			st.ChainFollows*stepsPerFollow +
			(st.MatchCmps/8)*stepsPerCmpWord +
			st.Tokens*stepsPerToken +
			int64(len(comp))*stepsPerOutByte
	case "lzw":
		var pc probeCounter
		comp, err = lzw.Compress(src, &pc)
		if err != nil {
			return nil, 0, err
		}
		steps = int64(len(src)) + // per-input-byte hash update
			pc.n*stepsPerProbe +
			int64(len(comp))*stepsPerOutByte
	case "bwt":
		var wc workCounter
		comp, err = bwt.Compress(src, bwt.Options{Tracer: &wc})
		if err != nil {
			return nil, 0, err
		}
		steps = wc.units*stepsPerWork +
			int64(len(comp))*stepsPerOutByte
	default:
		return nil, 0, fmt.Errorf("%w: %q (have %s)", ErrUnknownCodec, name, codec.NamesString())
	}
	return comp, steps, nil
}

// decompressPage inverts compressPage via the codec registry, charging
// the linear load cost. A corrupt stream must error, never panic: the
// decoders return ErrCorrupt-style errors on everything the fuzzers
// have found, and the recover below converts any escape hatch into an
// error so a hostile pool byte-flip can never take the store down.
func decompressPage(name string, comp []byte) (plain []byte, steps int64, err error) {
	c, ok := codec.Lookup(name)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
	}
	defer func() {
		if r := recover(); r != nil {
			plain, steps = nil, 0
			err = fmt.Errorf("%w: decoder panic: %v", ErrCorrupt, r)
		}
	}()
	plain, err = c.Decompress(comp)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	steps = int64(len(comp))*loadStepsPerCompByte + int64(len(plain))*loadStepsPerPlainByte
	return plain, steps, nil
}
