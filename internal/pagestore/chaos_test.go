package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

// TestChaosPageStoreFaultStorm drives a mixed store/load workload with
// latency, corruption, and writeback faults armed on every pagestore
// point at once. Invariants under chaos: the store never panics, every
// successful Read returns exactly the bytes last written (the SHA-256
// backstop — corruption is detected, never silently served), detected
// corruption is counted, and the armed run itself replays
// deterministically (same seed, same faults → same steps and metrics).
func TestChaosPageStoreFaultStorm(t *testing.T) {
	storm := func() (int64, string, uint64) {
		freg := fault.NewRegistry(1234)
		if err := freg.ArmAll("pagestore.store=latency:0.2:1000," +
			"pagestore.load=corrupt:0.3," +
			"pagestore.writeback=error:0.25," +
			"pagestore.writeback=corrupt:0.5"); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		s := New(Config{PageSize: 512, PoolBytes: 2048, Obs: reg, Faults: freg})
		rng := rand.New(rand.NewSource(77))
		want := map[string][]byte{} // last successfully written body per page
		var corrupts, wbFails int
		for i := 0; i < 600; i++ {
			id := fmt.Sprintf("p%d", rng.Intn(12))
			if rng.Intn(3) == 0 && len(want[id]) > 0 {
				got, _, err := s.Read(id)
				switch {
				case err == nil:
					if !bytes.Equal(got[:len(want[id])], want[id]) {
						t.Fatalf("iteration %d: Read(%s) served wrong bytes under chaos", i, id)
					}
				case errors.Is(err, ErrCorrupt):
					corrupts++
				case errors.Is(err, fault.ErrInjected):
					// injected load error: acceptable
				default:
					t.Fatalf("iteration %d: unexpected Read error: %v", i, err)
				}
				continue
			}
			body := make([]byte, 100+rng.Intn(400))
			rng.Read(body)
			if _, err := s.Write(id, body); err != nil {
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("iteration %d: unexpected Write error: %v", i, err)
				}
				continue
			}
			want[id] = body
		}
		snap := reg.Snapshot()
		wbFails = int(snap.Counters["pagestore.writeback_failures"])
		if corrupts == 0 {
			t.Fatal("corrupt faults armed at 0.3 but no corruption detected")
		}
		if snap.Counters["pagestore.corrupt_detected"] == 0 {
			t.Fatal("corrupt_detected counter still zero")
		}
		if wbFails == 0 {
			t.Fatal("writeback error faults armed but no failures counted")
		}
		js, err := snap.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return s.Steps(), string(js), snap.Counters["pagestore.stores"]
	}
	steps1, snap1, stores1 := storm()
	steps2, snap2, _ := storm()
	if steps1 != steps2 || snap1 != snap2 {
		t.Fatal("armed chaos run did not replay deterministically")
	}
	if stores1 == 0 {
		t.Fatal("storm made no progress")
	}
}

// TestChaosPageStoreTransientCorruptRecovers pins the read-path
// corruption semantics the zipload re-read recovery depends on: a
// corrupt fault damages one read, not the stored page, so a clean retry
// serves the original bytes.
func TestChaosPageStoreTransientCorruptRecovers(t *testing.T) {
	freg := fault.NewRegistry(5)
	freg.Arm("pagestore.load", fault.Spec{Kind: fault.KindCorrupt, Every: 2})
	s := New(Config{Faults: freg})
	body := bytes.Repeat([]byte("page body "), 40)
	if _, err := s.Write("p", body); err != nil {
		t.Fatal(err)
	}
	var sawCorrupt, sawClean bool
	for i := 0; i < 10; i++ {
		got, _, err := s.Read("p")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatal(err)
			}
			sawCorrupt = true
			continue
		}
		if !bytes.Equal(got[:len(body)], body) {
			t.Fatal("clean read after corrupt read returned wrong bytes")
		}
		sawClean = true
	}
	if !sawCorrupt || !sawClean {
		t.Fatalf("every-2nd corrupt fault: sawCorrupt=%v sawClean=%v", sawCorrupt, sawClean)
	}
}
