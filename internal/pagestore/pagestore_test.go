package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/zipchannel/zipchannel/internal/compress/codec"
	"github.com/zipchannel/zipchannel/internal/fault"
	"github.com/zipchannel/zipchannel/internal/obs"
)

func TestWriteReadRoundTrip(t *testing.T) {
	for _, name := range codec.Names() {
		t.Run(name, func(t *testing.T) {
			s := New(Config{Codec: name})
			data := []byte("hello compressed world, hello compressed world")
			info, err := s.Write("p1", data)
			if err != nil {
				t.Fatal(err)
			}
			if info.Steps <= 0 {
				t.Fatalf("store steps = %d, want > 0", info.Steps)
			}
			if info.CompressedLen <= 0 || info.Ratio <= 0 {
				t.Fatalf("bad info %+v", info)
			}
			got, rinfo, err := s.Read("p1")
			if err != nil {
				t.Fatal(err)
			}
			if rinfo.Steps <= 0 {
				t.Fatalf("load steps = %d, want > 0", rinfo.Steps)
			}
			if len(got) != s.PageSize() {
				t.Fatalf("read %d bytes, want full page %d", len(got), s.PageSize())
			}
			if !bytes.Equal(got[:len(data)], data) {
				t.Fatal("page data mismatch")
			}
			for _, b := range got[len(data):] {
				if b != 0 {
					t.Fatal("page padding not zero")
				}
			}
		})
	}
}

func TestReadMissing(t *testing.T) {
	s := New(Config{})
	if _, _, err := s.Read("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestWriteTooLarge(t *testing.T) {
	s := New(Config{PageSize: 128})
	if _, err := s.Write("p", make([]byte, 129)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestUnknownCodec(t *testing.T) {
	s := New(Config{Codec: "zstd"})
	if _, err := s.Write("p", []byte("x")); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("err = %v, want ErrUnknownCodec", err)
	}
}

// Store cost must depend on page content — compressible pages take
// fewer steps than incompressible ones. This is the side channel.
func TestStepsAreDataDependent(t *testing.T) {
	s := New(Config{})
	zeros := make([]byte, 2048)
	rnd := make([]byte, 2048)
	rng := rand.New(rand.NewSource(1))
	rng.Read(rnd)
	zi, err := s.Write("zeros", zeros)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := s.Write("random", rnd)
	if err != nil {
		t.Fatal(err)
	}
	if zi.Steps >= ri.Steps {
		t.Fatalf("compressible page cost %d >= incompressible %d", zi.Steps, ri.Steps)
	}
	if zi.CompressedLen >= ri.CompressedLen {
		t.Fatalf("compressible page len %d >= incompressible %d", zi.CompressedLen, ri.CompressedLen)
	}
}

// Byte-budgeted pool: writing more compressed bytes than the budget
// writes back LRU pages, and reading a written-back page faults it in
// with content intact.
func TestLRUWritebackAndFaultIn(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{PageSize: 512, PoolBytes: 1500, Obs: reg})
	rng := rand.New(rand.NewSource(2))
	bodies := map[string][]byte{}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("p%d", i)
		body := make([]byte, 512)
		rng.Read(body) // incompressible: each page ~fills its share
		bodies[id] = body
		if _, err := s.Write(id, body); err != nil {
			t.Fatal(err)
		}
	}
	if s.PoolBytes() > 1500 {
		t.Fatalf("pool %d over budget", s.PoolBytes())
	}
	snap := reg.Snapshot()
	if snap.Counters["pagestore.writebacks"] == 0 {
		t.Fatal("expected writebacks")
	}
	// The oldest page must have been written back; reading it still works.
	info, err := s.Info("p0")
	if err != nil {
		t.Fatal(err)
	}
	if !info.WrittenBack {
		t.Fatal("p0 should be written back")
	}
	got, rinfo, err := s.Read("p0")
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.WrittenBack {
		t.Fatal("p0 should be faulted back in after read")
	}
	if !bytes.Equal(got, bodies["p0"]) {
		t.Fatal("faulted-in page content mismatch")
	}
	if reg.Snapshot().Counters["pagestore.faultins"] == 0 {
		t.Fatal("expected a faultin")
	}
}

func TestPlantIsolation(t *testing.T) {
	s := New(Config{})
	secret := []byte("key=TOPSECRETVALUE")
	if _, err := s.Plant("victim", 64, secret); err != nil {
		t.Fatal(err)
	}
	// Reads return only the attacker region.
	got, _, err := s.Read("victim")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("planted read returned %d bytes, want attacker region 64", len(got))
	}
	if bytes.Contains(got, secret) {
		t.Fatal("secret leaked through Read")
	}
	// Writes are confined to the attacker region.
	if _, err := s.Write("victim", make([]byte, 65)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized planted write: err = %v, want ErrTooLarge", err)
	}
	// The secret survives attacker rewrites (checksum still validates,
	// so the assembled page still contains it).
	if _, err := s.Write("victim", []byte("attacker bytes here")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Read("victim"); err != nil {
		t.Fatal(err)
	}
}

func TestPlantValidation(t *testing.T) {
	s := New(Config{PageSize: 128})
	if _, err := s.Plant("v", 0, []byte("s")); !errors.Is(err, ErrBadPlant) {
		t.Fatal("attackerLen 0 accepted")
	}
	if _, err := s.Plant("v", 120, make([]byte, 16)); !errors.Is(err, ErrBadPlant) {
		t.Fatal("overflowing plant accepted")
	}
	if _, err := s.Plant("v", 64, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Plant("v", 64, []byte("s")); !errors.Is(err, ErrBadPlant) {
		t.Fatal("double plant accepted")
	}
}

// Co-location signal: a page whose attacker region repeats the secret
// compresses in fewer steps than one with unrelated attacker bytes.
func TestColocationSignal(t *testing.T) {
	secret := []byte("key=S3CR3TPAYLOAD00")
	mk := func() *Store {
		s := New(Config{})
		if _, err := s.Plant("v", 64, secret); err != nil {
			t.Fatal(err)
		}
		return s
	}
	sMatch := mk()
	mi, err := sMatch.Write("v", append([]byte(nil), secret...))
	if err != nil {
		t.Fatal(err)
	}
	sMiss := mk()
	ui, err := sMiss.Write("v", []byte("unrelated-attacker-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if mi.Steps >= ui.Steps {
		t.Fatalf("matching attacker bytes cost %d >= non-matching %d — no co-location signal", mi.Steps, ui.Steps)
	}
}

// Determinism: the same call sequence yields identical steps, infos,
// and metric snapshots; disarmed fault registries are invisible.
func TestDeterministicReplay(t *testing.T) {
	run := func(freg *fault.Registry) (int64, string) {
		reg := obs.NewRegistry()
		s := New(Config{PageSize: 256, PoolBytes: 1024, Obs: reg, Faults: freg})
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 20; i++ {
			id := fmt.Sprintf("p%d", i%6)
			body := make([]byte, 200)
			rng.Read(body)
			if _, err := s.Write(id, body); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if _, _, err := s.Read(fmt.Sprintf("p%d", (i+1)%6)); err != nil && !errors.Is(err, ErrNotFound) {
					t.Fatal(err)
				}
			}
		}
		snap, err := reg.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return s.Steps(), string(snap)
	}
	s1, snap1 := run(nil)
	s2, snap2 := run(nil)
	s3, snap3 := run(fault.NewRegistry(42)) // disarmed registry
	if s1 != s2 || snap1 != snap2 {
		t.Fatal("replay diverged")
	}
	if s1 != s3 || snap1 != snap3 {
		t.Fatal("disarmed fault registry perturbed the run")
	}
}

func TestStoreFaultError(t *testing.T) {
	freg := fault.NewRegistry(1)
	freg.Arm("pagestore.store", fault.Spec{Kind: fault.KindError, Every: 2})
	s := New(Config{Faults: freg})
	if _, err := s.Write("a", []byte("x")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if _, err := s.Write("b", []byte("x")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("second write: err = %v, want injected", err)
	}
}

func TestLoadCorruptDetected(t *testing.T) {
	freg := fault.NewRegistry(1)
	freg.Arm("pagestore.load", fault.Spec{Kind: fault.KindCorrupt, Every: 1})
	reg := obs.NewRegistry()
	s := New(Config{Obs: reg, Faults: freg})
	if _, err := s.Write("a", bytes.Repeat([]byte("abc"), 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Read("a"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if reg.Snapshot().Counters["pagestore.corrupt_detected"] == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestWritebackCorruptDetectedOnFaultIn(t *testing.T) {
	freg := fault.NewRegistry(5)
	freg.Arm("pagestore.writeback", fault.Spec{Kind: fault.KindCorrupt, Every: 1})
	reg := obs.NewRegistry()
	s := New(Config{PageSize: 256, PoolBytes: 600, Obs: reg, Faults: freg})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		body := make([]byte, 256)
		rng.Read(body)
		if _, err := s.Write(fmt.Sprintf("p%d", i), body); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.Info("p0")
	if err != nil {
		t.Fatal(err)
	}
	if !info.WrittenBack {
		t.Skip("p0 not written back under this layout") // defensive; should not happen
	}
	if _, _, err := s.Read("p0"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt from corrupted backing copy", err)
	}
}

func TestStoreLatencyFaultAddsSteps(t *testing.T) {
	run := func(arm bool) int64 {
		freg := fault.NewRegistry(9)
		if arm {
			freg.Arm("pagestore.store", fault.Spec{Kind: fault.KindLatency, Every: 1, Param: 5000})
		}
		s := New(Config{Faults: freg})
		if _, err := s.Write("a", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		return s.Steps()
	}
	clean, slow := run(false), run(true)
	if slow != clean+5000 {
		t.Fatalf("latency fault: steps %d, want %d", slow, clean+5000)
	}
}
