package fault

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/zipchannel/zipchannel/internal/obs"
)

// Two registries with the same seed and arming must make identical
// decision sequences at every point — the replay contract.
func TestDeterministicReplay(t *testing.T) {
	sequence := func() []Kind {
		r := NewRegistry(42)
		r.Arm("a.b.c", Spec{Kind: KindError, Prob: 0.3})
		r.Arm("a.b.c", Spec{Kind: KindLatency, Prob: 0.2, Param: 100})
		r.Arm("x.y.z", Spec{Kind: KindCorrupt, Prob: 0.5})
		var kinds []Kind
		pa, px := r.Point("a.b.c"), r.Point("x.y.z")
		for i := 0; i < 200; i++ {
			kinds = append(kinds, pa.Hit().Kind, px.Hit().Kind)
		}
		return kinds
	}
	first, second := sequence(), sequence()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, first[i], second[i])
		}
	}
}

// A point's stream depends only on (seed, name): arming or hitting other
// points must not perturb it.
func TestPointStreamsIndependent(t *testing.T) {
	solo := NewRegistry(7)
	solo.Arm("p.q", Spec{Kind: KindError, Prob: 0.25})
	var want []bool
	p := solo.Point("p.q")
	for i := 0; i < 100; i++ {
		want = append(want, p.Hit().Fired())
	}

	crowded := NewRegistry(7)
	crowded.Arm("p.q", Spec{Kind: KindError, Prob: 0.25})
	crowded.Arm("other.point", Spec{Kind: KindPanic, Prob: 0.9})
	q := crowded.Point("p.q")
	other := crowded.Point("other.point")
	for i := 0; i < 100; i++ {
		func() {
			defer func() { recover() }()
			other.Err()
		}()
		if got := q.Hit().Fired(); got != want[i] {
			t.Fatalf("hit %d: crowded registry diverged from solo stream", i)
		}
	}
}

func TestEverySchedule(t *testing.T) {
	r := NewRegistry(1)
	r.Arm("p", Spec{Kind: KindError, Every: 3})
	p := r.Point("p")
	for i := 1; i <= 12; i++ {
		fired := p.Hit().Fired()
		if want := i%3 == 0; fired != want {
			t.Fatalf("hit %d: fired=%v, want %v", i, fired, want)
		}
	}
	if hits, fired := p.Stats(); hits != 12 || fired != 4 {
		t.Fatalf("stats = (%d, %d), want (12, 4)", hits, fired)
	}
}

func TestDisarmedPointIsClean(t *testing.T) {
	r := NewRegistry(9)
	p := r.Point("never.armed")
	for i := 0; i < 50; i++ {
		if p.Hit().Fired() {
			t.Fatal("disarmed point fired")
		}
		if err := p.Err(); err != nil {
			t.Fatalf("disarmed Err: %v", err)
		}
	}
	if hits, _ := p.Stats(); hits != 0 {
		t.Fatalf("disarmed point counted %d hits; want 0 (invisible when off)", hits)
	}
}

func TestNilRegistryAndPoint(t *testing.T) {
	var r *Registry
	p := r.Point("anything")
	if p != nil {
		t.Fatal("nil registry should hand out nil points")
	}
	if p.Hit().Fired() || p.Err() != nil || p.Name() != "" {
		t.Fatal("nil point must be permanently clean")
	}
	if h, f := p.Stats(); h != 0 || f != 0 {
		t.Fatal("nil point stats should be zero")
	}
	r.Arm("x", Spec{Kind: KindError, Prob: 1}) // must not panic
	if got := r.Armed(); got != nil {
		t.Fatalf("nil registry Armed = %v", got)
	}
}

func TestErrAndPanicKinds(t *testing.T) {
	r := NewRegistry(3)
	r.Arm("always.err", Spec{Kind: KindError, Prob: 1})
	if err := r.Point("always.err").Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", err)
	}
	if !strings.Contains(r.Point("always.err").Err().Error(), "always.err") {
		t.Fatal("injected error should name its point")
	}

	r.Arm("always.panic", Spec{Kind: KindPanic, Prob: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic kind did not panic")
			}
		}()
		r.Point("always.panic").Err()
	}()
}

func TestCorruptCopy(t *testing.T) {
	r := NewRegistry(5)
	r.Arm("c", Spec{Kind: KindCorrupt, Prob: 1})
	p := r.Point("c")
	orig := []byte("the payload under corruption")
	for i := 0; i < 64; i++ {
		in := p.Hit()
		if in.Kind != KindCorrupt {
			t.Fatal("corrupt point did not fire")
		}
		got := in.CorruptCopy(orig)
		if bytes.Equal(got, orig) {
			t.Fatal("CorruptCopy returned identical bytes")
		}
		diff := 0
		for j := range got {
			if got[j] != orig[j] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("CorruptCopy changed %d bytes, want exactly 1", diff)
		}
		if !bytes.Equal(orig, []byte("the payload under corruption")) {
			t.Fatal("CorruptCopy mutated the input slice")
		}
	}
	// Clean and empty payloads pass through untouched.
	if got := (Injection{}).CorruptCopy(orig); !bytes.Equal(got, orig) {
		t.Fatal("clean injection should not corrupt")
	}
	if got := p.Hit().CorruptCopy(nil); got != nil {
		t.Fatal("empty payload should pass through")
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRegistry(11)
	r.Arm("j", Spec{Kind: KindLatency, Prob: 1, Param: 40})
	p := r.Point("j")
	sawNeg, sawPos := false, false
	for i := 0; i < 256; i++ {
		j := p.Hit().Jitter()
		if j < -40 || j > 40 {
			t.Fatalf("jitter %d out of [-40, 40]", j)
		}
		sawNeg = sawNeg || j < 0
		sawPos = sawPos || j > 0
	}
	if !sawNeg || !sawPos {
		t.Error("jitter should be zero-centered (saw both signs over 256 draws)")
	}
	if (Injection{Kind: KindError}).Jitter() != 0 {
		t.Error("non-latency injection must have zero jitter")
	}
}

func TestArmAllDSL(t *testing.T) {
	r := NewRegistry(2)
	err := r.ArmAll("server.codec.compress=error:0.1, server.cache.get=corrupt:0.05 ,server.gate.acquire=latency:0.5:2000,sgx.stepper.protect=error@7,always.on=panic")
	if err != nil {
		t.Fatalf("ArmAll: %v", err)
	}
	armed := r.Armed()
	want := []string{
		"always.on=panic:1",
		"server.cache.get=corrupt:0.05",
		"server.codec.compress=error:0.1",
		"server.gate.acquire=latency:0.5:2000",
		"sgx.stepper.protect=error@7",
	}
	if len(armed) != len(want) {
		t.Fatalf("Armed = %v, want %v", armed, want)
	}
	for i := range want {
		if armed[i] != want[i] {
			t.Fatalf("Armed[%d] = %q, want %q", i, armed[i], want[i])
		}
	}
	// The latency arming actually carries its param through.
	in := r.Point("server.gate.acquire").Hit()
	for !in.Fired() {
		in = r.Point("server.gate.acquire").Hit()
	}
	if in.Kind != KindLatency || in.Param != 2000 {
		t.Fatalf("latency injection = %+v, want kind=latency param=2000", in)
	}
}

func TestArmAllRejectsBadSpecs(t *testing.T) {
	for _, bad := range []string{
		"nameonly",
		"p=", "=error",
		"p=explode:0.1",
		"p=error:1.5",
		"p=error:x",
		"p=error@0",
		"p=error@x",
		"p=latency:0.1:zz",
		"p=error:0.1:5:9",
		"p=error@3:5:9",
	} {
		if err := NewRegistry(0).ArmAll(bad); err == nil {
			t.Errorf("ArmAll(%q) accepted a bad spec", bad)
		}
	}
	if err := NewRegistry(0).ArmAll(" , ,"); err != nil {
		t.Errorf("empty elements should be skipped: %v", err)
	}
}

// Armed points mirror hit/injected counts into obs; disarmed points stay
// out of the snapshot entirely.
func TestObsMirroring(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRegistry(4)
	r.AttachObs(reg)
	r.Arm("armed.pt", Spec{Kind: KindError, Every: 2})
	r.Point("quiet.pt") // registered but never armed
	p := r.Point("armed.pt")
	for i := 0; i < 10; i++ {
		p.Hit()
		r.Point("quiet.pt").Hit()
	}
	snap := reg.Snapshot()
	if got := snap.Counters["fault.armed.pt.hits"]; got != 10 {
		t.Errorf("fault.armed.pt.hits = %d, want 10", got)
	}
	if got := snap.Counters["fault.armed.pt.injected"]; got != 5 {
		t.Errorf("fault.armed.pt.injected = %d, want 5", got)
	}
	for name := range snap.Counters {
		if strings.Contains(name, "quiet.pt") {
			t.Errorf("disarmed point leaked counter %s into the snapshot", name)
		}
	}

	// AttachObs after arming also wires the counters.
	reg2 := obs.NewRegistry()
	r2 := NewRegistry(4)
	r2.Arm("late.pt", Spec{Kind: KindError, Prob: 0})
	r2.AttachObs(reg2)
	r2.Point("late.pt").Hit()
	if got := reg2.Snapshot().Counters["fault.late.pt.hits"]; got != 1 {
		t.Errorf("late AttachObs: hits = %d, want 1", got)
	}
}

// Concurrent hits on one point must be safe (run under -race) and account
// exactly.
func TestConcurrentHits(t *testing.T) {
	r := NewRegistry(6)
	r.Arm("hot", Spec{Kind: KindError, Every: 4})
	p := r.Point("hot")
	const goroutines, per = 8, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Hit()
			}
		}()
	}
	wg.Wait()
	hits, fired := p.Stats()
	if hits != goroutines*per {
		t.Fatalf("hits = %d, want %d", hits, goroutines*per)
	}
	if fired != goroutines*per/4 {
		t.Fatalf("fired = %d, want %d (every-4 schedule is exact regardless of interleaving)", fired, goroutines*per/4)
	}
}
