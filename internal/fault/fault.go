// Package fault is the repository's deterministic fault-injection layer:
// a seeded registry of named injection points that the production-shaped
// layers (internal/server, internal/par, internal/sgx, internal/attacker)
// consult at the places where a real deployment can fail — codec workers,
// the response cache, worker-pool admission, SGX fault delivery, and the
// attacker's timer reads.
//
// Design constraints, mirroring internal/obs:
//
//   - No globals. A *Registry is created by whoever owns a run (a CLI
//     flag, a chaos test) and handed down explicitly. A nil *Registry
//     hands out nil *Points, and every Point method is a no-op on a nil
//     receiver, so instrumented paths need no conditionals and cost one
//     nil check when injection is disabled.
//   - Deterministic streams. Every point draws its decisions from a
//     private RNG seeded with par.SplitSeed(rootSeed, pointName), so the
//     n-th hit of a given point makes the same decision in every run
//     with the same seed and arming — runs replay exactly, and arming a
//     new point never perturbs another point's stream.
//   - Disarmed means invisible. A point that never fires registers no
//     obs counters and injects nothing; with all faults disarmed every
//     output byte of the host program is identical to a build without
//     the layer.
//
// Injection points are named <layer>.<component>.<operation>, e.g.
// server.codec.compress, server.cache.get, server.gate.acquire,
// sgx.stepper.protect, attacker.pp.timer (see DESIGN.md §8 for the
// full inventory and each site's supported kinds).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/zipchannel/zipchannel/internal/obs"
	"github.com/zipchannel/zipchannel/internal/par"
)

// ErrInjected is the error value surfaced by KindError injections (wrapped
// with the point name). Sites and their callers classify injected errors as
// transient — errors.Is(err, ErrInjected) — and retry or degrade rather
// than treating them as bad input.
var ErrInjected = errors.New("fault: injected error")

// Kind enumerates what an armed point injects. KindNone is the zero value
// carried by a clean Injection.
type Kind int

const (
	KindNone Kind = iota
	// KindError makes the site fail with ErrInjected.
	KindError
	// KindLatency adds Param latency units. The unit is the site's: sim
	// steps or probe cycles inside the simulation, microseconds in the
	// HTTP server.
	KindLatency
	// KindPanic makes the site panic (the recovery middleware / breaker
	// must contain it).
	KindPanic
	// KindCorrupt flips one byte of the site's payload (via CorruptCopy).
	KindCorrupt
)

var kindNames = map[string]Kind{
	"error":   KindError,
	"latency": KindLatency,
	"panic":   KindPanic,
	"corrupt": KindCorrupt,
}

func (k Kind) String() string {
	for name, kk := range kindNames {
		if kk == k {
			return name
		}
	}
	return "none"
}

// Spec is one arming of a point: a kind, a trigger (probability per hit,
// or every Nth hit), and a kind-specific parameter.
type Spec struct {
	Kind Kind
	// Prob fires the fault on each hit with this probability (used when
	// Every == 0).
	Prob float64
	// Every fires the fault deterministically on every Every-th hit
	// (1-based: Every=3 fires on hits 3, 6, 9, ...). Takes precedence
	// over Prob.
	Every uint64
	// Param is the kind's parameter: latency units for KindLatency,
	// maximum |jitter| for Injection.Jitter; ignored by error/panic.
	Param uint64
}

// Injection is the outcome of one Point.Hit: the zero value means clean.
type Injection struct {
	Kind  Kind
	Point string // name of the point that fired
	Param uint64
	// Rand is a pseudorandom payload drawn from the point's stream at
	// fire time; CorruptCopy and Jitter derive their randomness from it
	// so sites need no RNG of their own.
	Rand uint64
}

// Fired reports whether any fault fired.
func (in Injection) Fired() bool { return in.Kind != KindNone }

// Error returns the injected error for KindError (nil otherwise).
func (in Injection) Error() error {
	if in.Kind != KindError {
		return nil
	}
	return fmt.Errorf("%w at %s", ErrInjected, in.Point)
}

// Jitter derives a zero-centered jitter in [-Param, +Param] from the
// injection's random payload (for timer-noise sites).
func (in Injection) Jitter() int64 {
	if in.Kind != KindLatency || in.Param == 0 {
		return 0
	}
	span := 2*in.Param + 1
	return int64(in.Rand%span) - int64(in.Param)
}

// CorruptCopy returns b with one byte flipped (never a no-op flip), as a
// fresh copy so shared buffers are not mutated in place. Returns b
// unchanged when the injection is not a corruption or b is empty.
func (in Injection) CorruptCopy(b []byte) []byte {
	if in.Kind != KindCorrupt || len(b) == 0 {
		return b
	}
	out := make([]byte, len(b))
	copy(out, b)
	idx := int(in.Rand % uint64(len(b)))
	out[idx] ^= byte(1 + (in.Rand>>32)%255)
	return out
}

// Point is one named injection site. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type Point struct {
	name string

	mu    sync.Mutex
	specs []Spec
	rng   *rand.Rand
	hits  uint64
	fired uint64

	hitsC  *obs.Counter // non-nil once armed with an attached obs registry
	firedC *obs.Counter
}

// Name returns the point's registered name ("" for a nil point).
func (p *Point) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Hit consumes one decision from the point's deterministic stream and
// returns the injection to apply (zero Injection when clean or disarmed).
// When several specs are armed on one point they are evaluated in arming
// order and the first that fires wins.
func (p *Point) Hit() Injection {
	if p == nil {
		return Injection{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.specs) == 0 {
		return Injection{}
	}
	p.hits++
	p.hitsC.Inc()
	for _, s := range p.specs {
		fire := false
		if s.Every > 0 {
			fire = p.hits%s.Every == 0
		} else {
			fire = p.rng.Float64() < s.Prob
		}
		if fire {
			p.fired++
			p.firedC.Inc()
			return Injection{Kind: s.Kind, Point: p.name, Param: s.Param, Rand: p.rng.Uint64()}
		}
	}
	return Injection{}
}

// Err consumes one hit and returns the injected error for error faults,
// panicking for panic faults; latency and corruption armings are ignored
// by this accessor (for sites that can only fail, like pool admission).
func (p *Point) Err() error {
	in := p.Hit()
	switch in.Kind {
	case KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", in.Point))
	case KindError:
		return in.Error()
	}
	return nil
}

// Stats reports how often the point was consulted and how often it fired.
func (p *Point) Stats() (hits, fired uint64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.fired
}

// Registry owns a namespace of injection points sharing one root seed.
type Registry struct {
	seed int64

	mu     sync.Mutex
	points map[string]*Point
	obs    *obs.Registry
}

// NewRegistry creates an empty registry whose points derive their streams
// from seed via par.SplitSeed.
func NewRegistry(seed int64) *Registry {
	return &Registry{seed: seed, points: map[string]*Point{}}
}

// AttachObs makes armed points mirror their hit/fire counts into reg as
// fault.<point>.hits and fault.<point>.injected. Counters are registered
// lazily on Arm, so a registry with nothing armed leaves reg untouched
// (and metric snapshots byte-identical to a fault-free build).
func (r *Registry) AttachObs(reg *obs.Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = reg
	for name, p := range r.points {
		p.mu.Lock()
		if len(p.specs) > 0 {
			p.hitsC = reg.Counter("fault." + name + ".hits")
			p.firedC = reg.Counter("fault." + name + ".injected")
		}
		p.mu.Unlock()
	}
}

// Point returns (registering if needed) the named injection point. A nil
// registry returns a nil point — a valid, permanently-clean site handle.
func (r *Registry) Point(name string) *Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pointLocked(name)
}

func (r *Registry) pointLocked(name string) *Point {
	p, ok := r.points[name]
	if !ok {
		p = &Point{
			name: name,
			rng:  rand.New(rand.NewSource(par.SplitSeed(r.seed, name))),
		}
		r.points[name] = p
	}
	return p
}

// Arm adds spec to the named point (specs stack; first-to-fire wins).
func (r *Registry) Arm(name string, spec Spec) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.pointLocked(name)
	p.mu.Lock()
	p.specs = append(p.specs, spec)
	if r.obs != nil && p.hitsC == nil {
		p.hitsC = r.obs.Counter("fault." + name + ".hits")
		p.firedC = r.obs.Counter("fault." + name + ".injected")
	}
	p.mu.Unlock()
}

// ArmAll parses and arms a comma-separated fault list (the -faults CLI
// flag). Each element is
//
//	<point>=<kind>:<prob>[:<param>]   fire with probability per hit
//	<point>=<kind>@<n>[:<param>]      fire on every n-th hit
//	<point>=<kind>                    fire on every hit
//
// e.g. "server.codec.compress=error:0.1,server.cache.get=corrupt:0.05,
// server.gate.acquire=latency:0.05:2000,sgx.stepper.protect=error@7".
func (r *Registry) ArmAll(list string) error {
	if r == nil {
		return errors.New("fault: ArmAll on nil registry")
	}
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		spec, name, err := parseSpec(item)
		if err != nil {
			return err
		}
		r.Arm(name, spec)
	}
	return nil
}

// parseSpec parses one <point>=<kind>... element.
func parseSpec(item string) (Spec, string, error) {
	name, rest, ok := strings.Cut(item, "=")
	if !ok || name == "" || rest == "" {
		return Spec{}, "", fmt.Errorf("fault: bad spec %q (want point=kind:prob[:param] or point=kind@n[:param])", item)
	}
	parts := strings.Split(rest, ":")
	head := parts[0]
	spec := Spec{Prob: 1}

	kindStr, everyStr, hasEvery := strings.Cut(head, "@")
	kind, ok := kindNames[kindStr]
	if !ok {
		return Spec{}, "", fmt.Errorf("fault: unknown kind %q in %q (have error, latency, panic, corrupt)", kindStr, item)
	}
	spec.Kind = kind
	if hasEvery {
		n, err := strconv.ParseUint(everyStr, 10, 64)
		if err != nil || n == 0 {
			return Spec{}, "", fmt.Errorf("fault: bad @every count in %q", item)
		}
		spec.Every = n
		if len(parts) > 2 {
			return Spec{}, "", fmt.Errorf("fault: too many fields in %q", item)
		}
		if len(parts) == 2 {
			param, err := strconv.ParseUint(parts[1], 10, 64)
			if err != nil {
				return Spec{}, "", fmt.Errorf("fault: bad param in %q", item)
			}
			spec.Param = param
		}
		return spec, name, nil
	}

	if len(parts) > 3 {
		return Spec{}, "", fmt.Errorf("fault: too many fields in %q", item)
	}
	if len(parts) >= 2 {
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return Spec{}, "", fmt.Errorf("fault: bad probability in %q (want 0..1)", item)
		}
		spec.Prob = prob
	}
	if len(parts) == 3 {
		param, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return Spec{}, "", fmt.Errorf("fault: bad param in %q", item)
		}
		spec.Param = param
	}
	return spec, name, nil
}

// Armed returns a sorted human-readable description of every armed point,
// for startup logging ("what chaos is live in this process").
func (r *Registry) Armed() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name, p := range r.points {
		p.mu.Lock()
		for _, s := range p.specs {
			var trig string
			if s.Every > 0 {
				trig = fmt.Sprintf("@%d", s.Every)
			} else {
				trig = fmt.Sprintf(":%g", s.Prob)
			}
			if s.Param != 0 {
				trig += fmt.Sprintf(":%d", s.Param)
			}
			out = append(out, fmt.Sprintf("%s=%s%s", name, s.Kind, trig))
		}
		p.mu.Unlock()
	}
	sort.Strings(out)
	return out
}
