// Package nn implements the small feed-forward network the fingerprinting
// attack trains on Flush+Reload traces (§VI). It stands in for the
// paper's PyTorch DNN: dense layers with ReLU, softmax cross-entropy,
// minibatch SGD, and a confusion-matrix evaluator — all deterministic
// given a seed.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadShape reports inconsistent layer or sample dimensions.
var ErrBadShape = errors.New("nn: bad shape")

// Sample is one training example: a feature vector and its class label.
type Sample struct {
	X     []float64
	Label int
}

// MLP is a multi-layer perceptron with ReLU hidden activations and a
// softmax output.
type MLP struct {
	sizes   []int
	weights [][]float64 // layer l: sizes[l+1] x sizes[l], row-major
	biases  [][]float64
	rng     *rand.Rand
}

// New builds an MLP with the given layer sizes (input, hidden..., output)
// and He-initialized weights.
func New(seed int64, sizes ...int) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("%w: need at least input and output layers", ErrBadShape)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("%w: non-positive layer size", ErrBadShape)
		}
	}
	m := &MLP{sizes: sizes, rng: rand.New(rand.NewSource(seed))}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2.0 / float64(in))
		for i := range w {
			w[i] = m.rng.NormFloat64() * scale
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, out))
	}
	return m, nil
}

// NumClasses returns the output layer width.
func (m *MLP) NumClasses() int { return m.sizes[len(m.sizes)-1] }

// forward returns all layer activations (post-ReLU for hidden layers,
// raw logits for the last).
func (m *MLP) forward(x []float64) [][]float64 {
	acts := [][]float64{x}
	for l := range m.weights {
		in, out := m.sizes[l], m.sizes[l+1]
		a := acts[l]
		z := make([]float64, out)
		w := m.weights[l]
		for o := 0; o < out; o++ {
			sum := m.biases[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range a {
				sum += row[i] * v
			}
			if l < len(m.weights)-1 && sum < 0 {
				sum = 0 // ReLU
			}
			z[o] = sum
		}
		acts = append(acts, z)
	}
	return acts
}

// Predict returns the most likely class for x.
func (m *MLP) Predict(x []float64) (int, error) {
	if len(x) != m.sizes[0] {
		return 0, fmt.Errorf("%w: input %d, want %d", ErrBadShape, len(x), m.sizes[0])
	}
	acts := m.forward(x)
	logits := acts[len(acts)-1]
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best, nil
}

// Probabilities returns the softmax distribution for x.
func (m *MLP) Probabilities(x []float64) ([]float64, error) {
	if len(x) != m.sizes[0] {
		return nil, fmt.Errorf("%w: input %d, want %d", ErrBadShape, len(x), m.sizes[0])
	}
	acts := m.forward(x)
	return softmax(acts[len(acts)-1]), nil
}

func softmax(logits []float64) []float64 {
	maxV := logits[0]
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxV)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// TrainConfig tunes SGD.
type TrainConfig struct {
	Epochs    int     // default 20
	BatchSize int     // default 16
	LR        float64 // default 0.01
	// LRDecay multiplies LR each epoch (default 1.0 = constant).
	LRDecay float64
	// Verbose, if non-nil, receives per-epoch loss lines.
	Verbose func(epoch int, loss float64)
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.LRDecay == 0 {
		c.LRDecay = 1.0
	}
	return c
}

// Train runs minibatch SGD with softmax cross-entropy loss and returns
// the final average loss.
func (m *MLP) Train(samples []Sample, cfg TrainConfig) (float64, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return 0, fmt.Errorf("%w: no samples", ErrBadShape)
	}
	for _, s := range samples {
		if len(s.X) != m.sizes[0] {
			return 0, fmt.Errorf("%w: sample input %d, want %d", ErrBadShape, len(s.X), m.sizes[0])
		}
		if s.Label < 0 || s.Label >= m.NumClasses() {
			return 0, fmt.Errorf("%w: label %d outside %d classes", ErrBadShape, s.Label, m.NumClasses())
		}
	}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	lr := cfg.LR
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(idx))
			epochLoss += m.sgdStep(samples, idx[start:end], lr)
		}
		lastLoss = epochLoss / float64(len(samples))
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, lastLoss)
		}
		lr *= cfg.LRDecay
	}
	return lastLoss, nil
}

// sgdStep accumulates gradients over one minibatch and applies them.
func (m *MLP) sgdStep(samples []Sample, batch []int, lr float64) float64 {
	gradW := make([][]float64, len(m.weights))
	gradB := make([][]float64, len(m.biases))
	for l := range m.weights {
		gradW[l] = make([]float64, len(m.weights[l]))
		gradB[l] = make([]float64, len(m.biases[l]))
	}
	var loss float64
	for _, si := range batch {
		s := samples[si]
		acts := m.forward(s.X)
		probs := softmax(acts[len(acts)-1])
		loss += -math.Log(math.Max(probs[s.Label], 1e-12))

		// Backprop. delta over logits:
		delta := make([]float64, len(probs))
		copy(delta, probs)
		delta[s.Label] -= 1

		for l := len(m.weights) - 1; l >= 0; l-- {
			in, out := m.sizes[l], m.sizes[l+1]
			a := acts[l]
			w := m.weights[l]
			var prev []float64
			if l > 0 {
				prev = make([]float64, in)
			}
			for o := 0; o < out; o++ {
				d := delta[o]
				gradB[l][o] += d
				row := gradW[l][o*in : (o+1)*in]
				wrow := w[o*in : (o+1)*in]
				for i, v := range a {
					row[i] += d * v
					if prev != nil {
						prev[i] += d * wrow[i]
					}
				}
			}
			if prev != nil {
				// ReLU derivative on the hidden activation.
				for i := range prev {
					if acts[l][i] <= 0 {
						prev[i] = 0
					}
				}
				delta = prev
			}
		}
	}
	scale := lr / float64(len(batch))
	for l := range m.weights {
		for i := range m.weights[l] {
			m.weights[l][i] -= scale * gradW[l][i]
		}
		for i := range m.biases[l] {
			m.biases[l][i] -= scale * gradB[l][i]
		}
	}
	return loss
}

// Accuracy evaluates top-1 accuracy over samples.
func (m *MLP) Accuracy(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, nil
	}
	correct := 0
	for _, s := range samples {
		p, err := m.Predict(s.X)
		if err != nil {
			return 0, err
		}
		if p == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

// ConfusionMatrix returns M where M[actual][predicted] is the fraction of
// class `actual` samples predicted as `predicted` — the layout of the
// paper's Figs 7 and 8.
func (m *MLP) ConfusionMatrix(samples []Sample) ([][]float64, error) {
	n := m.NumClasses()
	counts := make([][]float64, n)
	totals := make([]float64, n)
	for i := range counts {
		counts[i] = make([]float64, n)
	}
	for _, s := range samples {
		p, err := m.Predict(s.X)
		if err != nil {
			return nil, err
		}
		counts[s.Label][p]++
		totals[s.Label]++
	}
	for i := range counts {
		if totals[i] > 0 {
			for j := range counts[i] {
				counts[i][j] /= totals[i]
			}
		}
	}
	return counts, nil
}

// Split partitions samples into train/eval/test sets with the given
// fractions (the remainder goes to test), shuffled deterministically.
func Split(samples []Sample, trainFrac, evalFrac float64, seed int64) (train, eval, test []Sample) {
	idx := rand.New(rand.NewSource(seed)).Perm(len(samples))
	nTrain := int(float64(len(samples)) * trainFrac)
	nEval := int(float64(len(samples)) * evalFrac)
	for k, i := range idx {
		switch {
		case k < nTrain:
			train = append(train, samples[i])
		case k < nTrain+nEval:
			eval = append(eval, samples[i])
		default:
			test = append(test, samples[i])
		}
	}
	return train, eval, test
}
