package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 10); !errors.Is(err, ErrBadShape) {
		t.Errorf("single layer should fail: %v", err)
	}
	if _, err := New(1, 10, 0, 2); !errors.Is(err, ErrBadShape) {
		t.Errorf("zero layer should fail: %v", err)
	}
	if _, err := New(1, 10, 5, 2); err != nil {
		t.Errorf("valid shape failed: %v", err)
	}
}

func TestPredictShapeCheck(t *testing.T) {
	m, _ := New(1, 4, 2)
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("wrong input size should fail: %v", err)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	m, _ := New(2, 6, 8, 3)
	p, err := m.Probabilities([]float64{0.5, -1, 2, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability %f out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %f", sum)
	}
}

// XOR: the canonical non-linearly-separable sanity check.
func TestTrainXOR(t *testing.T) {
	samples := []Sample{
		{X: []float64{0, 0}, Label: 0},
		{X: []float64{0, 1}, Label: 1},
		{X: []float64{1, 0}, Label: 1},
		{X: []float64{1, 1}, Label: 0},
	}
	m, err := New(3, 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(samples, TrainConfig{Epochs: 2000, BatchSize: 4, LR: 0.3}); err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(samples)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1.0 {
		t.Errorf("XOR accuracy = %.2f, want 1.0", acc)
	}
}

// Separable clusters must be learned quickly and generalize.
func TestTrainClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	centers := [][]float64{{2, 2, 0}, {-2, 2, 1}, {0, -3, 2}}
	gen := func(n int) []Sample {
		var out []Sample
		for i := 0; i < n; i++ {
			c := centers[rng.Intn(len(centers))]
			out = append(out, Sample{
				X:     []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5},
				Label: int(c[2]),
			})
		}
		return out
	}
	train, test := gen(300), gen(100)
	m, _ := New(7, 2, 16, 3)
	loss, err := m.Train(train, TrainConfig{Epochs: 60, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.3 {
		t.Errorf("final loss = %.3f, want < 0.3", loss)
	}
	acc, _ := m.Accuracy(test)
	if acc < 0.95 {
		t.Errorf("cluster test accuracy = %.2f, want >= 0.95", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	m, _ := New(1, 2, 2)
	if _, err := m.Train(nil, TrainConfig{}); !errors.Is(err, ErrBadShape) {
		t.Error("empty training set should fail")
	}
	bad := []Sample{{X: []float64{1}, Label: 0}}
	if _, err := m.Train(bad, TrainConfig{}); !errors.Is(err, ErrBadShape) {
		t.Error("wrong input width should fail")
	}
	badLabel := []Sample{{X: []float64{1, 2}, Label: 7}}
	if _, err := m.Train(badLabel, TrainConfig{}); !errors.Is(err, ErrBadShape) {
		t.Error("out-of-range label should fail")
	}
}

func TestConfusionMatrixRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples []Sample
	for i := 0; i < 60; i++ {
		label := i % 3
		samples = append(samples, Sample{
			X:     []float64{float64(label) + rng.NormFloat64()*0.1, 0},
			Label: label,
		})
	}
	m, _ := New(11, 2, 8, 3)
	if _, err := m.Train(samples, TrainConfig{Epochs: 80, LR: 0.1}); err != nil {
		t.Fatal(err)
	}
	cm, err := m.ConfusionMatrix(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range cm {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %f", i, sum)
		}
	}
	// Well-separated 1-D clusters: diagonal should dominate.
	for i := range cm {
		if cm[i][i] < 0.9 {
			t.Errorf("diagonal [%d][%d] = %.2f, want >= 0.9", i, i, cm[i][i])
		}
	}
}

func TestSplitFractions(t *testing.T) {
	samples := make([]Sample, 100)
	for i := range samples {
		samples[i] = Sample{X: []float64{float64(i)}, Label: 0}
	}
	train, eval, test := Split(samples, 0.8, 0.1, 1)
	if len(train) != 80 || len(eval) != 10 || len(test) != 10 {
		t.Errorf("split = %d/%d/%d, want 80/10/10", len(train), len(eval), len(test))
	}
	// No overlap, full coverage.
	seen := map[float64]bool{}
	for _, set := range [][]Sample{train, eval, test} {
		for _, s := range set {
			if seen[s.X[0]] {
				t.Fatalf("sample %v appears twice", s.X)
			}
			seen[s.X[0]] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("split covers %d/100 samples", len(seen))
	}
}

func TestDeterministicTraining(t *testing.T) {
	samples := []Sample{
		{X: []float64{1, 0}, Label: 0},
		{X: []float64{0, 1}, Label: 1},
	}
	run := func() []float64 {
		m, _ := New(42, 2, 4, 2)
		if _, err := m.Train(samples, TrainConfig{Epochs: 10}); err != nil {
			t.Fatal(err)
		}
		p, _ := m.Probabilities([]float64{1, 0})
		return p
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is not deterministic for a fixed seed")
		}
	}
}
